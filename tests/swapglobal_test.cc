// Swap-global privatization tests (paper §3.1.1): the registry-based
// Global<T> scheme and the real ELF GOT swap.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "pup/pup.h"
#include "swapglobal/elf_got.h"
#include "swapglobal/global.h"
#include "ult/scheduler.h"

namespace {

using mfc::swapglobal::attach;
using mfc::swapglobal::Global;
using mfc::swapglobal::GlobalSet;
using mfc::swapglobal::GotCopies;
using mfc::swapglobal::GotView;

// Statics: registered before any GlobalSet exists.
Global<int> g_counter{7};
Global<std::string> g_name{"default"};

TEST(SwapGlobal, FallsBackToSharedDefaultOutsideThreads) {
  EXPECT_EQ(GlobalSet::current(), nullptr);
  EXPECT_EQ(g_counter.get(), 7);
  EXPECT_EQ(g_name.get(), "default");
}

TEST(SwapGlobal, EachSetHasPrivateValues) {
  GlobalSet a, b;
  GlobalSet::install(&a);
  g_counter.get() = 11;
  g_name.get() = "alpha";
  GlobalSet::install(&b);
  EXPECT_EQ(g_counter.get(), 7) << "set b must start from the default";
  g_counter.get() = 22;
  GlobalSet::install(&a);
  EXPECT_EQ(g_counter.get(), 11);
  EXPECT_EQ(g_name.get(), "alpha");
  GlobalSet::install(nullptr);
  EXPECT_EQ(g_counter.get(), 7) << "shared default untouched";
}

TEST(SwapGlobal, SchedulerSwapsSetsBetweenThreads) {
  // Two threads increment "the same" global; privatization keeps the counts
  // separate across interleaved yields — the §3.1.1 goal.
  mfc::ult::Scheduler sched;
  GlobalSet set_a, set_b;
  int seen_a = -1, seen_b = -1;
  mfc::ult::StandardThread ta([&] {
    for (int i = 0; i < 5; ++i) {
      g_counter.get() += 1;
      sched.yield();
    }
    seen_a = g_counter.get();
  });
  mfc::ult::StandardThread tb([&] {
    for (int i = 0; i < 5; ++i) {
      g_counter.get() += 100;
      sched.yield();
    }
    seen_b = g_counter.get();
  });
  attach(&ta, &set_a);
  attach(&tb, &set_b);
  sched.ready(&ta);
  sched.ready(&tb);
  sched.run_until_idle();
  EXPECT_EQ(seen_a, 7 + 5);
  EXPECT_EQ(seen_b, 7 + 500);
  EXPECT_EQ(g_counter.get(), 7);  // shared default never touched
}

TEST(SwapGlobal, SetsPupRoundTrip) {
  GlobalSet src;
  GlobalSet::install(&src);
  g_counter.get() = 1234;
  g_name.get() = "migrated";
  GlobalSet::install(nullptr);

  auto bytes = mfc::pup::to_bytes(src);
  GlobalSet dst;
  mfc::pup::from_bytes(bytes, dst);
  GlobalSet::install(&dst);
  EXPECT_EQ(g_counter.get(), 1234);
  EXPECT_EQ(g_name.get(), "migrated");
  GlobalSet::install(nullptr);
}

// ---- Privatized globals crossing a migration (memalias + swapglobal) ----

TEST(SwapGlobalMigrate, MemAliasThreadCarriesPrivateGlobalsAcrossMigration) {
  // A thread with a privatized global set migrates via the memory-alias
  // technique. The runtime ships the GlobalSet alongside the thread image
  // (GlobalSet::pup) and re-attaches the switch hook on the destination —
  // hooks are per-thread scheduler state, not part of the packed image.
  mfc::ult::Scheduler sched;
  int before = -1, after = -1;
  std::string name_after;
  const GlobalSet* set_in_thread = nullptr;
  auto* t = new mfc::migrate::MemAliasThread([&] {
    g_counter.get() = 4321;
    g_name.get() = "voyager";
    before = g_counter.get();
    mfc::ult::suspend();  // docked: migration happens here
    set_in_thread = GlobalSet::current();
    after = g_counter.get();
    name_after = g_name.get();
  });
  GlobalSet src;
  attach(t, &src);
  sched.ready(t);
  sched.run_until_idle();  // phase 1 writes privates, then docks

  ASSERT_EQ(before, 4321);
  EXPECT_EQ(g_counter.get(), 7) << "suspended thread's set must be swapped out";

  // Source PE: pack the thread and pup its global set separately.
  auto set_bytes = mfc::pup::to_bytes(src);
  mfc::migrate::ThreadImage image = t->pack();
  delete t;
  auto wire = mfc::pup::to_bytes(image);

  // Destination PE: rebuild image + set, re-attach, resume on a new
  // scheduler (a different kernel-thread context in the real machine).
  mfc::migrate::ThreadImage arrived;
  mfc::pup::from_bytes(wire, arrived);
  auto* t2 = mfc::migrate::MigratableThread::unpack(std::move(arrived), 1);
  GlobalSet dst;
  mfc::pup::from_bytes(set_bytes, dst);
  attach(t2, &dst);
  mfc::ult::Scheduler dest_sched;
  dest_sched.ready(t2);
  dest_sched.run_until_idle();
  delete t2;

  EXPECT_EQ(set_in_thread, &dst)
      << "resumed thread must see the destination PE's global table";
  EXPECT_EQ(after, 4321) << "private value lost across migration";
  EXPECT_EQ(name_after, "voyager");
  EXPECT_EQ(g_counter.get(), 7) << "shared default untouched throughout";
  EXPECT_EQ(GlobalSet::current(), nullptr);
}

// ---- Real ELF GOT swapping ----

class GotFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    handle_ = dlopen(SGTEST_LIB_PATH, RTLD_NOW | RTLD_LOCAL);
    ASSERT_NE(handle_, nullptr) << dlerror();
    get_counter_ = reinterpret_cast<int (*)()>(dlsym(handle_, "sgtest_get_counter"));
    set_counter_ = reinterpret_cast<void (*)(int)>(dlsym(handle_, "sgtest_set_counter"));
    increment_ = reinterpret_cast<void (*)()>(dlsym(handle_, "sgtest_increment"));
    sum_values_ = reinterpret_cast<double (*)()>(dlsym(handle_, "sgtest_sum_values"));
    scale_values_ = reinterpret_cast<void (*)(double)>(dlsym(handle_, "sgtest_scale_values"));
    ASSERT_NE(get_counter_, nullptr);
  }
  void TearDown() override { dlclose(handle_); }

  static bool sg_filter(const char* name) {
    return std::strncmp(name, "sgtest_", 7) == 0;
  }

  void* handle_ = nullptr;
  int (*get_counter_)() = nullptr;
  void (*set_counter_)(int) = nullptr;
  void (*increment_)() = nullptr;
  double (*sum_values_)() = nullptr;
  void (*scale_values_)(double) = nullptr;
};

TEST_F(GotFixture, ScanFindsTheLibraryGlobals) {
  GotView view(handle_, sg_filter);
  ASSERT_EQ(view.vars().size(), 2u);
  bool found_counter = false, found_values = false;
  for (const auto& var : view.vars()) {
    if (var.name == "sgtest_counter") {
      found_counter = true;
      EXPECT_EQ(var.size, sizeof(int));
    }
    if (var.name == "sgtest_values") {
      found_values = true;
      EXPECT_EQ(var.size, 4 * sizeof(double));
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_values);
}

TEST_F(GotFixture, GotSwapPrivatizesUnmodifiedCode) {
  GotView view(handle_, sg_filter);
  ASSERT_EQ(view.vars().size(), 2u);
  EXPECT_EQ(get_counter_(), 100);

  // Two "threads": private copies of every global in the library.
  GotCopies thread_a = view.make_copies();
  GotCopies thread_b = view.make_copies();

  view.install(thread_a);
  set_counter_(1);
  scale_values_(10.0);
  EXPECT_EQ(get_counter_(), 1);
  EXPECT_DOUBLE_EQ(sum_values_(), 100.0);

  view.install(thread_b);  // the scheduler's "swap the GOT"
  EXPECT_EQ(get_counter_(), 100) << "thread b sees pristine values";
  EXPECT_DOUBLE_EQ(sum_values_(), 10.0);
  increment_();
  EXPECT_EQ(get_counter_(), 101);

  view.install(thread_a);
  EXPECT_EQ(get_counter_(), 1) << "thread a state preserved across swap";

  view.restore();
  EXPECT_EQ(get_counter_(), 100) << "original storage untouched throughout";
  EXPECT_DOUBLE_EQ(sum_values_(), 10.0);
}

TEST_F(GotFixture, UnfilteredScanIsSaneAndRestorable) {
  GotView view(handle_);  // every object symbol, not just sgtest_
  EXPECT_GE(view.vars().size(), 2u);
  GotCopies copies = view.make_copies();
  view.install(copies);
  EXPECT_EQ(get_counter_(), 100);  // copies initialized from live values
  view.restore();
  EXPECT_EQ(get_counter_(), 100);
}

}  // namespace
