// Dirty-page tracker unit tests (labeled migrate-perf).
//
// The contract the incremental checkpoint path leans on: after arm(),
// touching N distinct pages of a tracked range marks exactly N pages — a
// second write to an already-dirty page is free and uncounted — and a
// fresh arm() starts from zero. The faulting tests drive the real
// mprotect + SIGSEGV write barrier, so they are compiled out under
// ThreadSanitizer (MFC_TSAN), whose runtime owns signal dispatch; the
// storm driver skips arming under tsan for the same reason.
#include "ft/pagetrack.h"

#include <gtest/gtest.h>

#include <sys/mman.h>

#include <cstring>

namespace {

using mfc::ft::DirtyTracker;

class PageTrack : public ::testing::Test {
 protected:
  void SetUp() override {
    pg_ = DirtyTracker::page_bytes();
    base_ = static_cast<char*>(mmap(nullptr, kPages * pg_,
                                    PROT_READ | PROT_WRITE,
                                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
    ASSERT_NE(base_, MAP_FAILED);
    std::memset(base_, 0x11, kPages * pg_);  // fully populated before tracking
    DirtyTracker::bind_thread();
  }
  void TearDown() override { munmap(base_, kPages * pg_); }

  static constexpr std::size_t kPages = 16;
  std::size_t pg_ = 0;
  char* base_ = nullptr;
};

TEST_F(PageTrack, TrackWithoutArmIsInert) {
  DirtyTracker t;
  t.track(base_, kPages * pg_);
  EXPECT_TRUE(t.tracking(base_));
  EXPECT_EQ(t.tracked_ranges(), 1u);
  EXPECT_FALSE(t.armed());
  base_[3 * pg_] = 42;  // no barrier installed: plain write, no marks
  EXPECT_EQ(t.dirty_total(), 0u);
  t.untrack(base_);
  EXPECT_FALSE(t.tracking(base_));
  EXPECT_EQ(t.tracked_ranges(), 0u);
}

TEST_F(PageTrack, ProbeIsCallable) {
  // Result is kernel-dependent; the probe just must not crash or leak fds.
  for (int i = 0; i < 4; ++i) (void)DirtyTracker::userfaultfd_wp_available();
}

#ifndef MFC_TSAN

TEST_F(PageTrack, TouchingNPagesMarksExactlyN) {
  DirtyTracker t;
  t.track(base_, kPages * pg_);
  t.arm();
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.dirty_total(), 0u);

  base_[2 * pg_] = 1;             // first byte of a page
  base_[7 * pg_ + 123] = 2;       // middle of a page
  base_[11 * pg_ + pg_ - 1] = 3;  // last byte of a page
  base_[7 * pg_ + 200] = 4;       // re-dirty: already unprotected, no fault

  EXPECT_EQ(t.dirty_pages_in(base_, kPages * pg_), 3u);
  EXPECT_EQ(t.dirty_total(), 3u);
  EXPECT_TRUE(t.any_dirty(base_ + 2 * pg_, pg_));
  EXPECT_TRUE(t.any_dirty(base_ + 7 * pg_, pg_));
  EXPECT_TRUE(t.any_dirty(base_ + 11 * pg_, pg_));
  EXPECT_FALSE(t.any_dirty(base_ + 3 * pg_, pg_));
  EXPECT_FALSE(t.any_dirty(base_, 2 * pg_));

  // Reads never mark: sum a clean page through a volatile sink.
  volatile char sink = 0;
  for (std::size_t i = 0; i < pg_; ++i) sink += base_[5 * pg_ + i];
  (void)sink;
  EXPECT_EQ(t.dirty_total(), 3u);

  t.disarm();
  EXPECT_FALSE(t.armed());
  // Bits stay readable after disarm (capture harvests post-quiescence)...
  EXPECT_EQ(t.dirty_total(), 3u);
  // ...and disarmed writes are plain writes.
  base_[9 * pg_] = 5;
  EXPECT_EQ(t.dirty_total(), 3u);
  t.untrack_all();
}

TEST_F(PageTrack, RearmClearsAndCountsAfresh) {
  DirtyTracker t;
  t.track(base_, kPages * pg_);
  for (int epoch = 0; epoch < 3; ++epoch) {
    t.arm();
    EXPECT_EQ(t.dirty_total(), 0u) << "epoch " << epoch;
    const std::size_t page = static_cast<std::size_t>(1 + 4 * epoch);
    base_[page * pg_ + 17] = static_cast<char>(epoch);
    EXPECT_EQ(t.dirty_total(), 1u) << "epoch " << epoch;
    t.disarm();
  }
  t.untrack_all();
  // After untrack the pages are ordinary memory again.
  std::memset(base_, 0x22, kPages * pg_);
}

TEST_F(PageTrack, MultipleRangesCountIndependently) {
  DirtyTracker t;
  t.track(base_, 4 * pg_);
  t.track(base_ + 8 * pg_, 4 * pg_);
  EXPECT_EQ(t.tracked_ranges(), 2u);
  t.arm();

  base_[0] = 1;                 // range A, page 0
  base_[8 * pg_ + 5] = 2;       // range B, page 0
  base_[9 * pg_] = 3;           // range B, page 1
  base_[5 * pg_] = 4;           // between ranges: untracked, unmarked

  EXPECT_EQ(t.dirty_pages_in(base_, 4 * pg_), 1u);
  EXPECT_EQ(t.dirty_pages_in(base_ + 8 * pg_, 4 * pg_), 2u);
  EXPECT_EQ(t.dirty_total(), 3u);

  // Untracking one range restores its protection and drops its bits while
  // the other keeps counting.
  t.untrack(base_);
  EXPECT_EQ(t.dirty_total(), 2u);
  base_[2 * pg_] = 5;  // no longer tracked: free write
  EXPECT_EQ(t.dirty_total(), 2u);
  t.disarm();
  t.untrack_all();
}

TEST_F(PageTrack, TouchEveryPageMarksEveryPage) {
  DirtyTracker t;
  t.track(base_, kPages * pg_);
  t.arm();
  for (std::size_t p = 0; p < kPages; ++p) base_[p * pg_] = 1;
  EXPECT_EQ(t.dirty_total(), kPages);
  t.disarm();
  t.untrack_all();
}

#endif  // !MFC_TSAN

}  // namespace
