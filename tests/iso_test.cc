// Isomalloc region and thread-heap tests (paper §3.4.2).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "iso/heap.h"
#include "iso/region.h"
#include "util/rng.h"

namespace {

using mfc::iso::Region;
using mfc::iso::SlotId;
using mfc::iso::ThreadHeap;

class IsoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Region::Config cfg;
    cfg.npes = 4;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 256;
    Region::init(cfg);
  }
  void TearDown() override { Region::shutdown(); }
};

TEST_F(IsoFixture, SlotAddressesAreMachineWideUnique) {
  Region& r = Region::instance();
  std::set<void*> seen;
  std::vector<SlotId> ids;
  for (int pe = 0; pe < 4; ++pe) {
    for (int i = 0; i < 10; ++i) {
      SlotId id = r.acquire(pe);
      EXPECT_TRUE(seen.insert(r.slot_base(id)).second)
          << "slot address reused across PEs";
      ids.push_back(id);
    }
  }
  for (auto id : ids) r.release(id);
}

TEST_F(IsoFixture, SlotAddressIsAPureFunctionOfIdentity) {
  Region& r = Region::instance();
  SlotId id = r.acquire(2);
  void* addr = r.slot_base(id);
  // Identity → address never changes, even after evacuate/install cycles
  // (this is the invariant that makes pointer-fixup-free migration work).
  std::memset(addr, 0xAB, r.slot_span(id));
  r.evacuate(id);
  r.install(id);
  EXPECT_EQ(r.slot_base(id), addr);
  // Freshly installed pages are zero (old physical pages were dropped).
  EXPECT_EQ(static_cast<char*>(addr)[0], 0);
  r.release(id);
}

TEST_F(IsoFixture, EvacuateDropsAndInstallRestoresWritability) {
  Region& r = Region::instance();
  SlotId id = r.acquire(0);
  auto* p = static_cast<char*>(r.slot_base(id));
  p[0] = 42;
  r.evacuate(id);
  r.install(id);
  p[0] = 43;  // must not fault
  EXPECT_EQ(p[0], 43);
  r.release(id);
}

TEST_F(IsoFixture, ContiguousMultiSlotAcquisition) {
  Region& r = Region::instance();
  SlotId big = r.acquire(1, 8);
  EXPECT_EQ(big.count, 8u);
  EXPECT_EQ(r.slot_span(big), 8 * 64 * 1024u);
  // The whole span is writable and contiguous.
  std::memset(r.slot_base(big), 1, r.slot_span(big));
  r.release(big);
}

TEST_F(IsoFixture, StripExhaustionIsDetected) {
  Region& r = Region::instance();
  std::vector<SlotId> ids;
  for (int i = 0; i < 256; ++i) ids.push_back(r.acquire(3));
  EXPECT_FALSE(r.try_acquire(3).valid());
  EXPECT_EQ(r.free_slots(3), 0u);
  // Other strips are unaffected — per-PE partitioning.
  EXPECT_TRUE(r.try_acquire(2).valid());
  for (auto id : ids) r.release(id);
  EXPECT_EQ(r.free_slots(3), 256u);
}

TEST_F(IsoFixture, ContainsIdentifiesRegionPointers) {
  Region& r = Region::instance();
  SlotId id = r.acquire(0);
  EXPECT_TRUE(r.contains(r.slot_base(id)));
  int local = 0;
  EXPECT_FALSE(r.contains(&local));
  r.release(id);
}

TEST_F(IsoFixture, HeapBasicAllocFree) {
  ThreadHeap heap(0);
  void* a = heap.malloc(100);
  void* b = heap.malloc(200);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_TRUE(heap.owns(a));
  EXPECT_TRUE(heap.owns(b));
  EXPECT_EQ(heap.allocation_count(), 2u);
  std::memset(a, 1, 100);
  std::memset(b, 2, 200);
  heap.free(a);
  heap.free(b);
  EXPECT_EQ(heap.allocation_count(), 0u);
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST_F(IsoFixture, HeapAlignmentIs16Bytes) {
  ThreadHeap heap(0);
  for (std::size_t sz : {1u, 7u, 16u, 17u, 100u, 4096u}) {
    void* p = heap.malloc(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u) << sz;
    heap.free(p);
  }
}

TEST_F(IsoFixture, HeapCoalescingPreventsFragmentationDeath) {
  ThreadHeap heap(0);
  const std::size_t before = heap.footprint();
  // Alloc/free cycles of a size near the slot capacity must reuse memory
  // rather than growing arenas forever.
  for (int i = 0; i < 100; ++i) {
    void* p = heap.malloc(40 * 1024);
    heap.free(p);
  }
  EXPECT_EQ(heap.footprint(), before);
}

TEST_F(IsoFixture, HeapGrowsWithMultiSlotArenasForBigBlocks) {
  ThreadHeap heap(0);
  void* big = heap.malloc(200 * 1024);  // > one 64 KB slot
  ASSERT_NE(big, nullptr);
  std::memset(big, 3, 200 * 1024);
  EXPECT_TRUE(heap.owns(big));
  heap.free(big);
}

TEST_F(IsoFixture, HeapReallocPreservesData) {
  ThreadHeap heap(0);
  char* p = static_cast<char*>(heap.malloc(64));
  std::memset(p, 7, 64);
  char* q = static_cast<char*>(heap.realloc(p, 4096));
  for (int i = 0; i < 64; ++i) ASSERT_EQ(q[i], 7);
  heap.free(q);
}

TEST_F(IsoFixture, CallocZeroes) {
  ThreadHeap heap(0);
  auto* p = static_cast<unsigned char*>(heap.calloc(100, 8));
  for (int i = 0; i < 800; ++i) ASSERT_EQ(p[i], 0);
  heap.free(p);
}

TEST_F(IsoFixture, RoutedAllocationFollowsThreadContext) {
  ThreadHeap heap(1);
  EXPECT_EQ(mfc::iso::current_heap(), nullptr);
  void* outside = mfc::iso::routed_malloc(32);  // libc path
  EXPECT_FALSE(Region::instance().contains(outside));

  mfc::iso::set_current_heap(&heap);
  void* inside = mfc::iso::routed_malloc(32);  // iso path
  EXPECT_TRUE(Region::instance().contains(inside));
  mfc::iso::set_current_heap(nullptr);

  // free() routes by address, regardless of current context.
  mfc::iso::routed_free(inside);
  mfc::iso::routed_free(outside);
  EXPECT_EQ(heap.allocation_count(), 0u);
}

TEST_F(IsoFixture, ReattachRebuildsHeapFromSlotMemory) {
  auto* heap = new ThreadHeap(0);
  char* p = static_cast<char*>(heap->malloc(128));
  std::memset(p, 9, 128);
  const auto slots = heap->slots();
  const auto live = heap->live_bytes();
  heap->abandon();
  delete heap;

  ThreadHeap* re = ThreadHeap::reattach(0, slots);
  EXPECT_EQ(re->live_bytes(), live);
  EXPECT_EQ(re->allocation_count(), 1u);
  for (int i = 0; i < 128; ++i) ASSERT_EQ(p[i], 9);  // data untouched
  re->free(p);
  EXPECT_EQ(re->allocation_count(), 0u);
  delete re;
}

TEST_F(IsoFixture, HeapPropertyRandomizedWorkload) {
  ThreadHeap heap(2);
  mfc::SplitMix64 rng(99);
  struct Alloc {
    unsigned char* p;
    std::size_t n;
    unsigned char tag;
  };
  std::vector<Alloc> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.next_below(100) < 60) {
      const std::size_t n = 1 + rng.next_below(3000);
      auto* p = static_cast<unsigned char*>(heap.malloc(n));
      const auto tag = static_cast<unsigned char>(rng.next());
      std::memset(p, tag, n);
      live.push_back({p, n, tag});
    } else {
      const auto idx = rng.next_below(live.size());
      Alloc a = live[idx];
      // Contents must be intact (no allocator overlap/corruption).
      for (std::size_t i = 0; i < a.n; i += 97) ASSERT_EQ(a.p[i], a.tag);
      heap.free(a.p);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(heap.allocation_count(), live.size());
  for (auto& a : live) heap.free(a.p);
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(IsoNoRegion, DoubleInitAborts) {
  Region::Config cfg;
  cfg.npes = 1;
  cfg.slots_per_pe = 4;
  Region::init(cfg);
  EXPECT_DEATH(Region::init(cfg), "twice");
  Region::shutdown();
}

}  // namespace
