// Multi-zone workload tests (paper §4.5).
#include "nasmz/btmz.h"
#include "nasmz/zones.h"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace mfc::nasmz;

TEST(Zones, ClassTableShapesMatchNpbStructure) {
  EXPECT_EQ(zone_class('S').x_zones * zone_class('S').y_zones, 4);
  EXPECT_EQ(zone_class('W').x_zones * zone_class('W').y_zones, 16);
  EXPECT_EQ(zone_class('A').x_zones * zone_class('A').y_zones, 16);
  EXPECT_EQ(zone_class('B').x_zones * zone_class('B').y_zones, 64);
}

TEST(ZonesDeath, UnknownClassAborts) {
  EXPECT_DEATH(zone_class('Z'), "unknown zone class");
}

TEST(Zones, DecompositionConservesGridPoints) {
  for (char cls : {'S', 'W', 'A', 'B'}) {
    ZoneGrid grid = ZoneGrid::make(cls);
    const auto& s = grid.spec;
    EXPECT_EQ(grid.total_points(),
              static_cast<std::size_t>(s.gx) * static_cast<std::size_t>(s.gy) *
                  static_cast<std::size_t>(s.gz))
        << cls;
  }
}

TEST(Zones, SizesAreDramaticallyUneven) {
  // BT-MZ's signature: largest/smallest zone ratio in the vicinity of 20.
  ZoneGrid grid = ZoneGrid::make('B');
  EXPECT_GT(grid.size_ratio(), 8.0);
  EXPECT_LT(grid.size_ratio(), 40.0);
}

TEST(Zones, NeighborsAreMutual) {
  ZoneGrid grid = ZoneGrid::make('A');
  for (const Zone& z : grid.zones) {
    if (z.east >= 0) {
      EXPECT_EQ(grid.zones[static_cast<std::size_t>(z.east)].west, z.id);
    }
    if (z.north >= 0) {
      EXPECT_EQ(grid.zones[static_cast<std::size_t>(z.north)].south, z.id);
    }
    if (z.west >= 0) {
      EXPECT_EQ(grid.zones[static_cast<std::size_t>(z.west)].east, z.id);
    }
    if (z.south >= 0) {
      EXPECT_EQ(grid.zones[static_cast<std::size_t>(z.south)].north, z.id);
    }
  }
}

TEST(Zones, BlockedAssignmentCoversAllZonesInOrder) {
  auto a = assign_zones_blocked(16, 4);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a.front(), 0);
  EXPECT_EQ(a.back(), 3);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(std::count(a.begin(), a.end(), r), 4) << r;
  }
}

TEST(Zones, BlockedAssignmentCreatesRankImbalance) {
  // The big zones cluster on the last ranks — the experiment's premise.
  ZoneGrid grid = ZoneGrid::make('A');
  auto owner = assign_zones_blocked(static_cast<int>(grid.zones.size()), 8);
  auto pts = rank_points(grid, owner, 8);
  const auto mx = *std::max_element(pts.begin(), pts.end());
  const auto mn = *std::min_element(pts.begin(), pts.end());
  EXPECT_GT(static_cast<double>(mx) / static_cast<double>(mn), 2.0);
}

TEST(Btmz, ConfigNameMatchesPaperStyle) {
  BtmzConfig cfg;
  cfg.zone_class = 'A';
  cfg.nranks = 16;
  cfg.npes = 4;
  EXPECT_EQ(config_name(cfg), "A.16,4PE");
}

TEST(Btmz, RunsWithoutLoadBalancing) {
  BtmzConfig cfg;
  cfg.zone_class = 'S';
  cfg.nranks = 4;
  cfg.npes = 2;
  cfg.iterations = 3;
  cfg.work_per_point = 2.0;
  BtmzResult r = run_btmz(cfg);
  EXPECT_EQ(r.config_name, "S.4,2PE");
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_EQ(r.ranks_moved, 0);
}

TEST(Btmz, LoadBalancingMovesRanksAndReducesImbalance) {
  BtmzConfig cfg;
  cfg.zone_class = 'W';
  cfg.nranks = 8;
  cfg.npes = 2;
  cfg.iterations = 10;
  cfg.lb_at_iteration = 2;
  cfg.load_balance = true;
  cfg.work_per_point = 2000.0;  // enough CPU per rank that measured loads
                                // dominate scheduler noise even under load
  BtmzResult r = run_btmz(cfg);
  EXPECT_GT(r.ranks_moved, 0);
  EXPECT_GT(r.imbalance_before, 1.05);
  // The post-LB measurement is stochastic (wall-while-scheduled under an
  // oversubscribed host); assert it is reasonably balanced rather than
  // strictly smaller than the pre-LB sample.
  EXPECT_LT(r.imbalance_after, 1.35);
}

}  // namespace
