// PUP framework round-trip tests (paper §3.1.1).
#include "pup/pup.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/digest.h"
#include "util/rng.h"

namespace {

using namespace mfc;

struct Inner {
  int a = 0;
  std::string label;
  void pup(pup::Er& p) { p | a | label; }
  bool operator==(const Inner&) const = default;
};

struct Outer {
  double x = 0;
  std::vector<Inner> inners;
  std::map<std::string, int> index;
  std::vector<std::uint8_t> raw;
  void pup(pup::Er& p) { p | x | inners | index | raw; }
  bool operator==(const Outer&) const = default;
};

TEST(Pup, ScalarRoundTrip) {
  double v = 3.25;
  auto bytes = pup::to_bytes(v);
  EXPECT_EQ(bytes.size(), sizeof(double));
  double w = 0;
  pup::from_bytes(bytes, w);
  EXPECT_EQ(w, 3.25);
}

TEST(Pup, StringRoundTripIncludingEmpty) {
  for (std::string s : {std::string{}, std::string{"hello"},
                        std::string(10000, 'x')}) {
    auto bytes = pup::to_bytes(s);
    std::string t = "garbage";
    pup::from_bytes(bytes, t);
    EXPECT_EQ(s, t);
  }
}

TEST(Pup, NestedUserTypes) {
  Outer o;
  o.x = -1.5;
  o.inners = {{1, "one"}, {2, "two"}, {3, ""}};
  o.index = {{"alpha", 10}, {"beta", 20}};
  o.raw = {0, 255, 7};
  auto bytes = pup::to_bytes(o);
  Outer p;
  pup::from_bytes(bytes, p);
  EXPECT_EQ(o, p);
}

TEST(Pup, SizerMatchesPackerExactly) {
  Outer o;
  o.inners.resize(17);
  for (int i = 0; i < 17; ++i)
    o.inners[static_cast<std::size_t>(i)] = {i, std::string(static_cast<std::size_t>(i), 'q')};
  const std::size_t sized = pup::packed_size(o);
  std::vector<char> buf(sized);
  pup::MemPacker packer(buf.data(), buf.size());
  pup::pup(packer, o);
  EXPECT_EQ(packer.written(buf.data()), sized);
}

TEST(Pup, VectorOfTriviallyCopyableUsesBulkBytes) {
  std::vector<int> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(pup::packed_size(v), sizeof(std::size_t) + 5 * sizeof(int));
}

TEST(Pup, OptionalRoundTrip) {
  std::optional<std::string> some = "value";
  std::optional<std::string> none;
  std::optional<std::string> out1, out2 = "stale";
  pup::from_bytes(pup::to_bytes(some), out1);
  pup::from_bytes(pup::to_bytes(none), out2);
  EXPECT_EQ(out1, some);
  EXPECT_EQ(out2, none);
}

TEST(Pup, PairAndArray) {
  std::pair<int, std::string> pr = {9, "nine"};
  std::array<double, 4> arr = {1, 2, 3, 4};
  decltype(pr) pr2;
  decltype(arr) arr2{};
  pup::from_bytes(pup::to_bytes(pr), pr2);
  pup::from_bytes(pup::to_bytes(arr), arr2);
  EXPECT_EQ(pr, pr2);
  EXPECT_EQ(arr, arr2);
}

TEST(Pup, UnorderedMapRoundTrip) {
  std::unordered_map<int, std::vector<int>> m;
  for (int i = 0; i < 50; ++i) m[i] = std::vector<int>(static_cast<std::size_t>(i), i);
  decltype(m) n;
  pup::from_bytes(pup::to_bytes(m), n);
  EXPECT_EQ(m, n);
}

TEST(PupDeath, UnpackerRefusesUnderflow) {
  std::vector<char> buf(4);
  pup::MemUnpacker u(buf.data(), buf.size());
  double big = 0;
  EXPECT_DEATH(pup::pup(u, big), "underflow");
}

TEST(PupDeath, PackerRefusesOverflow) {
  std::vector<char> buf(4);
  pup::MemPacker p(buf.data(), buf.size());
  double big = 1.0;
  EXPECT_DEATH(pup::pup(p, big), "overflow");
}

// Property-style sweep: packed size is a pure function of the value, and
// round-trips are exact, across many randomized shapes.
class PupProperty : public ::testing::TestWithParam<int> {};

TEST_P(PupProperty, RandomizedRoundTrip) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  Outer o;
  o.x = rng.next_double();
  const auto n_inner = rng.next_below(40);
  for (std::uint64_t i = 0; i < n_inner; ++i) {
    Inner in;
    in.a = static_cast<int>(rng.next());
    in.label = std::string(rng.next_below(100), static_cast<char>('a' + (i % 26)));
    o.inners.push_back(in);
  }
  const auto n_keys = rng.next_below(20);
  for (std::uint64_t i = 0; i < n_keys; ++i) {
    o.index[std::to_string(rng.next())] = static_cast<int>(rng.next());
  }
  o.raw.resize(rng.next_below(1000));
  for (auto& b : o.raw) b = static_cast<std::uint8_t>(rng.next());

  auto bytes = pup::to_bytes(o);
  EXPECT_EQ(bytes.size(), pup::packed_size(o));
  Outer p;
  pup::from_bytes(bytes, p);
  EXPECT_EQ(o, p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PupProperty, ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Fuzz round-trip with digest comparison.
//
// Value equality (operator==) cannot verify payloads containing NaN, so
// these tests compare at the byte level instead: serialize, deserialize,
// re-serialize, and require the two byte streams (and their FNV digests) to
// be identical. That is the exact property migration relies on — a shipped
// image re-packed on the destination must be bit-identical.

/// Randomized nested structure mixing every scalar family PUP handles,
/// including non-finite floats, with recursive children.
struct FuzzNode {
  float f = 0;
  double d = 0;
  std::int64_t i = 0;
  std::string s;
  std::vector<double> vd;
  std::map<std::int32_t, std::string> m;
  std::vector<FuzzNode> kids;
  void pup(pup::Er& p) { p | f | d | i | s | vd | m | kids; }
};

double fuzz_double(SplitMix64& rng) {
  switch (rng.next_below(8)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return std::numeric_limits<double>::infinity();
    case 2: return -std::numeric_limits<double>::infinity();
    case 3: return -0.0;
    case 4: return std::numeric_limits<double>::denorm_min();
    case 5: return std::numeric_limits<double>::max();
    default: return rng.next_in(-1e9, 1e9);
  }
}

FuzzNode make_fuzz_node(SplitMix64& rng, int depth) {
  FuzzNode n;
  n.f = static_cast<float>(fuzz_double(rng));
  n.d = fuzz_double(rng);
  n.i = static_cast<std::int64_t>(rng.next());
  n.s.resize(rng.next_below(64));
  for (auto& c : n.s) c = static_cast<char>(rng.next());  // arbitrary bytes
  n.vd.resize(rng.next_below(16));
  for (auto& v : n.vd) v = fuzz_double(rng);
  const auto n_keys = rng.next_below(8);
  for (std::uint64_t k = 0; k < n_keys; ++k) {
    n.m[static_cast<std::int32_t>(rng.next())] =
        std::string(rng.next_below(32), static_cast<char>('!' + rng.next_below(90)));
  }
  if (depth > 0) {
    const auto n_kids = rng.next_below(4);
    for (std::uint64_t k = 0; k < n_kids; ++k) {
      n.kids.push_back(make_fuzz_node(rng, depth - 1));
    }
  }
  return n;
}

class PupFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PupFuzz, ByteDigestStableAcrossRoundTrip) {
  SplitMix64 rng(0x9d5c000u + static_cast<std::uint64_t>(GetParam()));
  FuzzNode o = make_fuzz_node(rng, 3);
  const std::vector<char> bytes = pup::to_bytes(o);
  EXPECT_EQ(bytes.size(), pup::packed_size(o));
  FuzzNode q;
  pup::from_bytes(bytes, q);
  const std::vector<char> rebytes = pup::to_bytes(q);
  EXPECT_EQ(fnv1a(bytes.data(), bytes.size()),
            fnv1a(rebytes.data(), rebytes.size()))
      << "round-trip must be bit-identical (NaN payloads included)";
  EXPECT_EQ(bytes, rebytes);
}

TEST_P(PupFuzz, NonFiniteScalarsSurviveByBitPattern) {
  SplitMix64 rng(0xf10a700u + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> vals;
  for (int i = 0; i < 32; ++i) vals.push_back(fuzz_double(rng));
  std::vector<double> back;
  pup::from_bytes(pup::to_bytes(vals), back);
  ASSERT_EQ(back.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(std::memcmp(&vals[i], &back[i], sizeof(double)), 0)
        << "bit pattern drifted at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PupFuzz, ::testing::Range(1, 31));

}  // namespace
