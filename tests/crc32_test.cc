// CRC-32C implementation equivalence (labeled migrate-perf).
//
// The checkpoint codec trusts crc32() to behave identically however the
// runtime dispatch resolved — byte-at-a-time reference, slice-by-8 tables,
// or the SSE4.2/ARMv8 instructions. These tests pin the function three
// ways: known Castagnoli vectors, cross-implementation agreement over a
// corruption corpus shaped like the codec fuzz suite (every truncation
// length, every single-byte flip of a patterned frame), and the chaining /
// streaming identities the scatter-gather path depends on (folding the CRC
// per-iovec must equal one pass over the assembled wire bytes).
#include "util/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"

namespace {

using mfc::Crc32;
using mfc::crc32;
namespace detail = mfc::detail;

/// Full pre/post-XOR CRC through one specific implementation.
std::uint32_t full_crc(std::uint32_t (*impl)(std::uint32_t, const void*,
                                             std::size_t),
                       const void* data, std::size_t n,
                       std::uint32_t seed = 0) {
  return impl(seed ^ 0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

std::vector<char> patterned(std::size_t n, std::uint64_t salt) {
  std::vector<char> bytes(n);
  mfc::SplitMix64 rng(salt);
  for (auto& b : bytes) b = static_cast<char>(rng.next());
  return bytes;
}

TEST(Crc32, KnownCastagnoliVectors) {
  // RFC 3720 (iSCSI) test vectors — these fail loudly if anyone swaps the
  // polynomial back to IEEE 802.3 or drops the pre/post inversion.
  const char* check = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xE3069283u);

  unsigned char zeros[32] = {};
  EXPECT_EQ(crc32(zeros, sizeof zeros), 0x8A9136AAu);

  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof ones);
  EXPECT_EQ(crc32(ones, sizeof ones), 0x62A8AB43u);

  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32, DispatchResolvedToSomething) {
  const detail::CrcImpl impl = detail::crc32c_impl();
  EXPECT_TRUE(impl == detail::CrcImpl::kReference ||
              impl == detail::CrcImpl::kSliceBy8 ||
              impl == detail::CrcImpl::kHardware);
  // The probe must be callable whatever the kernel; the result is free.
  (void)detail::userfaultfd_wp_available();
}

TEST(Crc32, ImplementationsAgreeOnAllSmallLengths) {
  // Lengths 0..300 cover every alignment head/tail combination of the
  // 8-byte-stride implementations, with unaligned starting offsets too.
  const std::vector<char> buf = patterned(308, 0xC0FFEE);
  for (std::size_t off = 0; off < 8; ++off) {
    for (std::size_t len = 0; len + off <= buf.size(); len += (len < 40 ? 1 : 7)) {
      const char* p = buf.data() + off;
      const std::uint32_t ref =
          full_crc(detail::crc32c_update_reference, p, len);
      EXPECT_EQ(full_crc(detail::crc32c_update_slice8, p, len), ref)
          << "slice8 diverged at off=" << off << " len=" << len;
      EXPECT_EQ(full_crc(detail::crc32c_update_dispatch, p, len), ref)
          << "dispatch diverged at off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32, ImplementationsAgreeOverCorruptionCorpus) {
  // The checkpoint codec's fuzz corpus shape: a patterned frame, every
  // truncation length, every single-byte flip. All three implementations
  // must agree on every corpus entry, and every flip must change the CRC
  // (CRC-32 detects all single-byte errors at these lengths).
  std::vector<char> frame = patterned(512, 0xF4A3E);
  const std::uint32_t whole = crc32(frame.data(), frame.size());

  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const std::uint32_t ref =
        full_crc(detail::crc32c_update_reference, frame.data(), len);
    ASSERT_EQ(full_crc(detail::crc32c_update_slice8, frame.data(), len), ref);
    ASSERT_EQ(full_crc(detail::crc32c_update_dispatch, frame.data(), len), ref);
  }
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<char>(frame[i] ^ 0x40);
    const std::uint32_t flipped = crc32(frame.data(), frame.size());
    ASSERT_NE(flipped, whole) << "flip at byte " << i << " went undetected";
    ASSERT_EQ(full_crc(detail::crc32c_update_reference, frame.data(),
                       frame.size()),
              flipped);
    frame[i] = static_cast<char>(frame[i] ^ 0x40);
  }
}

TEST(Crc32, SeedChainingSplitsAnywhere) {
  const std::vector<char> buf = patterned(4096, 0x5EED);
  const std::uint32_t whole = crc32(buf.data(), buf.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{63}, std::size_t{512},
                            std::size_t{4095}, buf.size()}) {
    const std::uint32_t head = crc32(buf.data(), split);
    EXPECT_EQ(crc32(buf.data() + split, buf.size() - split, head), whole)
        << "chain broke at split " << split;
  }
}

TEST(Crc32, StreamingMatchesOneShotUnderRandomChunking) {
  // The gather path folds the CRC per-iovec in whatever run sizes the
  // manifest happens to hold; any chunking must equal the one-shot value.
  const std::vector<char> buf = patterned(64 * 1024, 0xD15EA5E);
  const std::uint32_t whole = crc32(buf.data(), buf.size());
  mfc::SplitMix64 rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    Crc32 acc;
    std::size_t pos = 0;
    while (pos < buf.size()) {
      const std::size_t chunk =
          1 + rng.next_below(std::min<std::uint64_t>(buf.size() - pos, 9000));
      acc.update(buf.data() + pos, chunk);
      pos += chunk;
    }
    ASSERT_EQ(acc.value(), whole) << "trial " << trial;
  }
  // Seeded restart mid-stream behaves like the free-function chaining.
  Crc32 seeded(crc32(buf.data(), 1000));
  seeded.update(buf.data() + 1000, buf.size() - 1000);
  EXPECT_EQ(seeded.value(), whole);
}

TEST(Crc32, ThreeWaySplitChainsOnEveryImplementation) {
  // The transport's eager/chunk/rendezvous split means one logical message
  // can be CRC'd as up to three separately-seeded passes (staged prefix,
  // in-place spans, trailer). Any i <= j split into [0,i) [i,j) [j,n) must
  // chain to the one-shot value — on every dispatch variant, not just the
  // one this host resolved to.
  const std::vector<char> buf = patterned(611, 0x3AB5);
  using Impl = std::uint32_t (*)(std::uint32_t, const void*, std::size_t);
  const Impl impls[] = {detail::crc32c_update_reference,
                        detail::crc32c_update_slice8,
                        detail::crc32c_update_dispatch};
  const char* names[] = {"reference", "slice8", "dispatch"};

  // Exhaustive over a coarse grid plus every boundary-adjacent pair, then a
  // seeded sweep of fully arbitrary (i, j) points.
  std::vector<std::pair<std::size_t, std::size_t>> splits;
  for (std::size_t i = 0; i <= buf.size(); i += 61) {
    for (std::size_t j = i; j <= buf.size(); j += 67) splits.push_back({i, j});
  }
  for (std::size_t b : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, buf.size() - 1,
                        buf.size()}) {
    splits.push_back({b, b});
    splits.push_back({0, b});
    splits.push_back({b, buf.size()});
  }
  mfc::SplitMix64 rng(0x3577A7);
  for (int t = 0; t < 200; ++t) {
    const std::size_t i = rng.next_below(buf.size() + 1);
    const std::size_t j = i + rng.next_below(buf.size() + 1 - i);
    splits.push_back({i, j});
  }

  for (int k = 0; k < 3; ++k) {
    const std::uint32_t whole = full_crc(impls[k], buf.data(), buf.size());
    for (const auto& [i, j] : splits) {
      const std::uint32_t a = full_crc(impls[k], buf.data(), i);
      const std::uint32_t b = full_crc(impls[k], buf.data() + i, j - i, a);
      const std::uint32_t c =
          full_crc(impls[k], buf.data() + j, buf.size() - j, b);
      ASSERT_EQ(c, whole) << names[k] << " broke at split (" << i << ", "
                          << j << ")";
    }
  }
}

}  // namespace
