// Observability-plane battery (labeled `obs`): latency histograms, the
// failure flight recorder, trace parts and the clock-aligned multi-process
// merge.
//
// Three layers of coverage:
//  - pure unit: histogram bucket geometry (index/floor/width round-trips,
//    linear-range exactness, clamping), quantiles on known distributions,
//    snapshot merge associativity, metrics snapshot provenance, flight
//    recorder note/freeze/dump semantics, part write→read→merge round
//    trips with byte-identical re-merges;
//  - machine-integrated: a compact cross-process migration driver run with
//    MFC_TRACE=1 — Machine::run's own shutdown path must leave behind one
//    merged Perfetto JSON whose per-track timestamps are monotonic and
//    which contains at least one flow arrow spanning two process track
//    groups (including the migrate pack→unpack arrow on the acceptance
//    64-PE/4-process shape);
//  - failure path: an FT kill storm with tracing OFF must still produce a
//    flight-recorder dump naming "ft-kill".
//
// Fork-based legs are compiled out under ThreadSanitizer (MFC_TSAN): tsan
// does not follow forked children.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/storm.h"
#include "converse/machine.h"
#include "migrate/common_arena.h"
#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "trace/flight.h"
#include "trace/hist.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace {

namespace cv = mfc::converse;
namespace hist = mfc::hist;
namespace trace = mfc::trace;
namespace flight = mfc::trace::flight;
using mfc::SplitMix64;
using hist::Hist;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Chrome trace-event JSON mini-scanner ----------------------------------
//
// The exporter writes one event object per line (",\n" separated), each
// opening with the fixed field order name/ph/pid/tid/ts, so a line scanner
// is enough to validate structure without a JSON library.

struct EvLine {
  std::string name;
  char ph = 0;
  int pid = -1;
  int tid = -1;
  double ts = -1;
  std::string id;  ///< flow id ("0x..."), empty for non-flow events
};

bool field_str(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  const std::size_t beg = at + pat.size();
  const std::size_t end = line.find('"', beg);
  if (end == std::string::npos) return false;
  *out = line.substr(beg, end - beg);
  return true;
}

bool field_num(const std::string& line, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + pat.size(), nullptr);
  return true;
}

std::vector<EvLine> parse_events(const std::string& json) {
  std::vector<EvLine> out;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    EvLine e;
    std::string ph;
    if (!field_str(line, "ph", &ph) || ph.size() != 1) continue;
    e.ph = ph[0];
    field_str(line, "name", &e.name);
    double pid = -1, tid = -1;
    if (field_num(line, "pid", &pid)) e.pid = static_cast<int>(pid);
    if (field_num(line, "tid", &tid)) e.tid = static_cast<int>(tid);
    field_num(line, "ts", &e.ts);
    field_str(line, "id", &e.id);
    out.push_back(std::move(e));
  }
  return out;
}

/// Flow ids ("s"/"t"/"f" events) that appear under more than one pid —
/// cross-process arrows in a merged timeline. `name_filter` empty accepts
/// every flow category.
int count_cross_pid_flows(const std::vector<EvLine>& evs,
                          const std::string& name_filter) {
  std::map<std::string, std::set<int>> pids_by_id;
  for (const EvLine& e : evs) {
    if (e.ph != 's' && e.ph != 't' && e.ph != 'f') continue;
    if (!name_filter.empty() && e.name != name_filter) continue;
    if (!e.id.empty()) pids_by_id[e.id].insert(e.pid);
  }
  int n = 0;
  for (const auto& [id, pids] : pids_by_id) {
    if (pids.size() >= 2) ++n;
  }
  return n;
}

/// Non-metadata timestamps must be non-decreasing within each (pid, tid)
/// track: every ring is single-writer and the merge preserves ring order.
void expect_tracks_monotonic(const std::vector<EvLine>& evs) {
  std::map<std::pair<int, int>, double> last;
  for (const EvLine& e : evs) {
    if (e.ph == 'M') continue;
    auto [it, fresh] = last.try_emplace({e.pid, e.tid}, e.ts);
    if (!fresh) {
      EXPECT_LE(it->second, e.ts)
          << "timestamps regressed on pid " << e.pid << " tid " << e.tid;
      it->second = e.ts;
    }
  }
}

// ---- Histogram bucket geometry ---------------------------------------------

TEST(HistBuckets, IndexFloorWidthRoundTrip) {
  for (int idx = 0; idx < hist::kBucketCount; ++idx) {
    const std::uint64_t floor = hist::bucket_floor(idx);
    const std::uint64_t width = hist::bucket_width(idx);
    EXPECT_EQ(hist::bucket_index(floor), idx);
    EXPECT_EQ(hist::bucket_index(floor + width - 1), idx);
    if (idx + 1 < hist::kBucketCount) {
      // Buckets tile the value axis with no gaps and no overlaps.
      EXPECT_EQ(hist::bucket_floor(idx + 1), floor + width);
    }
  }
}

TEST(HistBuckets, LinearRangeIsExactAndHugeValuesClamp) {
  for (std::uint64_t v = 0; v < hist::kSubCount; ++v) {
    EXPECT_EQ(hist::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(hist::bucket_width(static_cast<int>(v)), 1u);
  }
  // Values at/above 2^kMaxBits land in the top octave, never out of range.
  const int top_octave =
      hist::kSubCount +
      (hist::kMaxBits - 1 - hist::kSubBits) * hist::kSubCount;
  for (std::uint64_t v :
       {std::uint64_t{1} << hist::kMaxBits, std::uint64_t{1} << 60,
        ~std::uint64_t{0}}) {
    const int idx = hist::bucket_index(v);
    EXPECT_GE(idx, top_octave);
    EXPECT_LT(idx, hist::kBucketCount);
  }
  EXPECT_EQ(hist::bucket_index(~std::uint64_t{0}), hist::kBucketCount - 1);
}

TEST(HistQuantiles, KnownBimodalDistribution) {
  hist::reset(1);
  hist::enable(true);
  // 1000 samples at ~100 ticks, 10 outliers at ~100000: p50/p99 sit in the
  // main mode, p999 must find the outliers (rank 1009+ of 1010).
  for (int i = 0; i < 1000; ++i) hist::record(Hist::kQueueWait, 100);
  for (int i = 0; i < 10; ++i) hist::record(Hist::kQueueWait, 100000);
  hist::enable(false);
  const hist::Snapshot s = hist::snapshot();
  EXPECT_EQ(s.count(Hist::kQueueWait), 1010u);
  EXPECT_EQ(s.max[static_cast<int>(Hist::kQueueWait)], 100000u);
  // Bucket midpoints: ±3% relative error is the structure's contract.
  EXPECT_GE(s.quantile(Hist::kQueueWait, 0.50), 95u);
  EXPECT_LE(s.quantile(Hist::kQueueWait, 0.50), 110u);
  EXPECT_LE(s.quantile(Hist::kQueueWait, 0.99), 110u);
  EXPECT_GE(s.quantile(Hist::kQueueWait, 0.999), 95000u);
  EXPECT_LE(s.quantile(Hist::kQueueWait, 0.999), 105000u);
  EXPECT_NEAR(s.mean(Hist::kQueueWait), 1100000.0 / 1010.0, 5.0);
  // Untouched histograms stay empty and report zero quantiles.
  EXPECT_EQ(s.count(Hist::kMigrateE2e), 0u);
  EXPECT_EQ(s.quantile(Hist::kMigrateE2e, 0.999), 0u);
}

TEST(HistSnapshot, MergeIsAssociativeAndCommutative) {
  auto fill = [](hist::Snapshot* s, std::uint64_t seed) {
    SplitMix64 r(seed);
    for (int h = 0; h < hist::kHistCount; ++h) {
      for (int i = 0; i < hist::kBucketCount; i += 17) {
        s->b[h][i] = r.next() % 1000;
      }
      s->sum[h] = r.next() % 1000000;
      s->max[h] = r.next() % 1000000;
    }
  };
  hist::Snapshot a, b, c;
  fill(&a, 0xA);
  fill(&b, 0xB);
  fill(&c, 0xC);

  hist::Snapshot ab_c = a;   // (a ⊕ b) ⊕ c
  ab_c.merge(b);
  ab_c.merge(c);
  hist::Snapshot bc = b;     // a ⊕ (b ⊕ c)
  bc.merge(c);
  hist::Snapshot a_bc = a;
  a_bc.merge(bc);
  hist::Snapshot ba = b;     // b ⊕ a
  ba.merge(a);
  hist::Snapshot ab = a;
  ab.merge(b);

  EXPECT_EQ(std::memcmp(ab_c.b, a_bc.b, sizeof ab_c.b), 0);
  EXPECT_EQ(std::memcmp(ab_c.sum, a_bc.sum, sizeof ab_c.sum), 0);
  EXPECT_EQ(std::memcmp(ab_c.max, a_bc.max, sizeof ab_c.max), 0);
  EXPECT_EQ(std::memcmp(ab.b, ba.b, sizeof ab.b), 0);
  EXPECT_EQ(std::memcmp(ab.sum, ba.sum, sizeof ab.sum), 0);
  EXPECT_EQ(std::memcmp(ab.max, ba.max, sizeof ab.max), 0);
}

TEST(HistStats, JsonDumpListsEveryHistogram) {
  hist::reset(1);
  hist::enable(true);
  for (int i = 0; i < 100; ++i) {
    hist::record(Hist::kHandlerService, 50 + i);
  }
  hist::enable(false);
  const std::string path = "obs_stats_unit.json";
  std::remove(path.c_str());
  ASSERT_TRUE(hist::write_stats_json(path));
  const std::string json = read_file(path);
  for (int h = 0; h < hist::kHistCount; ++h) {
    EXPECT_NE(json.find(std::string("\"") +
                        hist::to_string(static_cast<Hist>(h)) + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"proc\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- Metrics snapshot provenance -------------------------------------------

TEST(MetricsProvenance, MergeUnionsMasksAndCollapsesMixedProc) {
  namespace metrics = mfc::metrics;
  metrics::Snapshot a, b;
  a.proc = 0;
  a.nprocs = 4;
  a.procs = 1u << 0;
  b.proc = 2;
  b.nprocs = 4;
  b.procs = 1u << 2;
  a.merge(b);
  EXPECT_EQ(a.proc, -1);  // mixed sources: no single owning process
  EXPECT_EQ(a.procs, (1u << 0) | (1u << 2));

  // Same-process merge keeps the owner and leaves the mask unchanged, so
  // double-merging one process's snapshot is detectable.
  metrics::Snapshot c, d;
  c.proc = d.proc = 1;
  c.nprocs = d.nprocs = 2;
  c.procs = d.procs = 1u << 1;
  c.merge(d);
  EXPECT_EQ(c.proc, 1);
  EXPECT_EQ(c.procs, 1u << 1);

  // A live snapshot carries whatever set_proc declared.
  metrics::set_proc(3, 4);
  const metrics::Snapshot live = metrics::snapshot();
  EXPECT_EQ(live.proc, 3);
  EXPECT_EQ(live.nprocs, 4);
  EXPECT_EQ(live.procs, std::uint64_t{1} << 3);
  metrics::set_proc(0, 1);
}

// ---- Flight recorder --------------------------------------------------------

TEST(Flight, NoteDumpAndFirstTriggerWins) {
  setenv("MFC_FLIGHT_FILE", "obs_flight_unit", 1);
  std::remove("obs_flight_unit.json");
  flight::init(4);
  ASSERT_TRUE(flight::on());
  flight::bind_pe(2);
  for (int r = 0; r < 3; ++r) {
    flight::note(trace::Ev::kStormRound, static_cast<std::uint64_t>(r));
  }
  flight::unbind_pe();
  flight::note(trace::Ev::kFtKill, 0, 0, 0, 1);  // unbound → "other" track

  EXPECT_FALSE(flight::dumped());
  EXPECT_TRUE(flight::dump("unit-test"));
  EXPECT_TRUE(flight::dumped());
  EXPECT_FALSE(flight::on());                 // frozen
  EXPECT_FALSE(flight::dump("second-trigger"));  // first trigger won
  EXPECT_EQ(flight::last_dump_path(), "obs_flight_unit.json");

  const std::string json = read_file("obs_flight_unit.json");
  EXPECT_NE(json.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"PE 2\""), std::string::npos);
  EXPECT_NE(json.find("\"other\""), std::string::npos);
  EXPECT_NE(json.find("ft-kill"), std::string::npos);
  std::remove("obs_flight_unit.json");
  unsetenv("MFC_FLIGHT_FILE");
}

TEST(Flight, DropOldestBoundsTheBlackBox) {
  setenv("MFC_FLIGHT_FILE", "obs_flight_cap", 1);
  std::remove("obs_flight_cap.json");
  flight::init(1, 8);
  for (int i = 0; i < 100; ++i) {
    flight::note(trace::Ev::kStormRound, static_cast<std::uint64_t>(i));
  }
  ASSERT_TRUE(flight::dump("cap-test"));
  const std::string json = read_file("obs_flight_cap.json");
  EXPECT_NE(json.find("\"records\":\"8\""), std::string::npos);
  std::remove("obs_flight_cap.json");
  unsetenv("MFC_FLIGHT_FILE");
}

TEST(Flight, EnvGateDisablesRecorder) {
  setenv("MFC_FLIGHT", "0", 1);
  flight::init(1);
  EXPECT_FALSE(flight::on());
  EXPECT_FALSE(flight::dump("disabled"));
  unsetenv("MFC_FLIGHT");
  flight::init(1);  // restore the default-on recorder for later tests
  EXPECT_TRUE(flight::on());
}

// ---- Trace parts and the clock-aligned merge -------------------------------

TEST(TraceParts, TwoPartMergeAlignsFlowsAndIsDeterministic) {
  const std::string p0 = "obs_part_unit.part0";
  const std::string p1 = "obs_part_unit.part1";
  const std::string out1 = "obs_part_unit.json";
  const std::string out2 = "obs_part_unit.again.json";
  for (const auto& f : {p0, p1, out1, out2}) std::remove(f.c_str());

  // "Process 0": PEs 0-1 of a 4-PE machine. A send with flow id 0x77
  // starts the cross-process arrow.
  ASSERT_TRUE(trace::start(4));
  trace::set_proc(0, 2, 0, 2);
  trace::set_meta("obs", "part-unit");
  trace::bind_pe(0);
  trace::emit(trace::Ev::kStormRound, 0);
  trace::emit(trace::Ev::kMsgSend, 0x77, 1, 64, 2);
  trace::unbind_pe();
  bool ok = false;
  trace::stop_and_export_part(p0, &ok);
  ASSERT_TRUE(ok);

  // "Process 1": PEs 2-3, dispatching the same flow. A deliberate skew
  // estimate exercises the merge's clock alignment.
  ASSERT_TRUE(trace::start(4));
  trace::set_proc(1, 2, 2, 2);
  trace::set_clock_skew(1000);
  trace::bind_pe(2);
  trace::emit(trace::Ev::kHandlerBegin, 0x77, 1, 64, 0);
  trace::emit(trace::Ev::kHandlerEnd, 0, 1);
  trace::unbind_pe();
  ok = false;
  trace::stop_and_export_part(p1, &ok);
  ASSERT_TRUE(ok);

  std::string err;
  ASSERT_TRUE(trace::merge_parts({p0, p1}, out1, &err)) << err;
  const std::string json = read_file(out1);
  EXPECT_NE(json.find("\"mfc proc 0\""), std::string::npos);
  EXPECT_NE(json.find("\"mfc proc 1\""), std::string::npos);
  EXPECT_NE(json.find("\"parts\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"obs\":\"part-unit\""), std::string::npos);

  const std::vector<EvLine> evs = parse_events(json);
  EXPECT_GE(count_cross_pid_flows(evs, "msg"), 1)
      << "flow 0x77 should span both process track groups";
  expect_tracks_monotonic(evs);

  // Deterministic merge: same parts, byte-identical output.
  ASSERT_TRUE(trace::merge_parts({p0, p1}, out2, &err)) << err;
  EXPECT_EQ(read_file(out1), read_file(out2));

  for (const auto& f : {p0, p1, out1, out2}) std::remove(f.c_str());
}

TEST(TraceParts, RejectsCorruptAndMissingParts) {
  const std::string bad = "obs_part_bad.part0";
  {
    // Longer than the fixed 88-byte part header, so the reader gets far
    // enough to check (and reject) the magic rather than hit EOF first.
    std::ofstream out(bad, std::ios::binary);
    for (int i = 0; i < 8; ++i) out << "this is not a trace part ";
  }
  std::string err;
  EXPECT_FALSE(trace::merge_parts({bad}, "obs_part_bad.json", &err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(
      trace::merge_parts({"obs_no_such.part0"}, "obs_part_bad.json", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(trace::merge_parts({}, "obs_part_bad.json", &err));
  std::remove(bad.c_str());
}

// ---- Machine-integrated legs -----------------------------------------------
//
// A compact cross-process migration driver (a trimmed cousin of the
// transport battery's mini-storm): workers on all three techniques hop
// along seed-derived itineraries, shipping as scatter-gather manifests;
// verdicts funnel to PE 0. Run with MFC_TRACE=1, the machine's own
// shutdown path must merge the per-process parts into one timeline.

struct ObDock {
  std::int32_t wid = 0;
  std::int32_t hop = 0;
  void pup(mfc::pup::Er& p) { p | wid | hop; }
};

struct ObShip {
  std::int32_t wid = 0;
  std::int32_t hop = 0;
  std::vector<char> wire;
  void pup(mfc::pup::Er& p) { p | wid | hop | wire; }
};

struct ObDone {
  std::int32_t wid = 0;
  std::uint64_t failures = 0;
  void pup(mfc::pup::Er& p) { p | wid | failures; }
};

struct ObState {
  std::uint64_t seed = 1;
  int npes = 4;
  int workers = 6;
  int hops = 2;
  std::size_t stack_bytes = 16 * 1024;

  std::mutex mu;
  std::unordered_map<int, mfc::migrate::MigratableThread*> threads;
  std::unordered_map<int, mfc::ult::Thread*> parked_mains;

  // PE 0 (parent process) coordinator state.
  int dones = 0;
  std::uint64_t failures = 0;
  mfc::ult::Thread* coordinator = nullptr;
  bool waiting_dones = false;
};
ObState* g_ob = nullptr;

int ob_dest(const ObState& s, int wid, int hop) {
  SplitMix64 r(s.seed ^ (static_cast<std::uint64_t>(wid) * 1000003ULL +
                         static_cast<std::uint64_t>(hop)));
  return static_cast<int>(r.next() % static_cast<std::uint64_t>(s.npes));
}

cv::HandlerId h_ob_dock, h_ob_ship, h_ob_done, h_ob_finish;

// wid arrives as a lambda capture and from then on lives in this frame —
// i.e. on the migrating stack. Keying identity off ult thread ids would be
// wrong here: the id counter is forked, so workers born in different
// processes can collide.
void ob_worker_body(int wid) {
  ObState* s = g_ob;
  std::uint64_t failures = 0;
  for (int hop = 0; hop < s->hops; ++hop) {
    const int dest = ob_dest(*s, wid, hop);
    cv::send_value(cv::my_pe(), h_ob_dock, ObDock{wid, hop});
    mfc::ult::suspend();
    if (cv::my_pe() != dest) ++failures;  // woke on the wrong PE
  }
  cv::send_value(0, h_ob_done, ObDone{wid, failures});
}

mfc::migrate::MigratableThread* ob_make_worker(const ObState& s, int wid,
                                               int pe) {
  const auto body = [wid] { ob_worker_body(wid); };
  switch (wid % 3) {
    case 0:
      return new mfc::migrate::StackCopyThread(body, s.stack_bytes);
    case 1:
      return new mfc::migrate::IsoThread(body, pe, s.stack_bytes);
    default:
      return new mfc::migrate::MemAliasThread(body, s.stack_bytes);
  }
}

void ensure_ob_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_ob_dock = cv::register_handler([](cv::Message&& m) {
      ObState* s = g_ob;
      const auto d = m.as<ObDock>();
      mfc::migrate::MigratableThread* t;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        t = s->threads.at(d.wid);
        s->threads.erase(d.wid);
      }
      mfc::migrate::ImageManifest man = t->pack_manifest(true);
      std::vector<char> scratch;
      const auto img_spans = man.wire_spans(&scratch);
      std::size_t wire_len = 0;
      for (const auto& r : img_spans) wire_len += r.len;

      std::int32_t wid = d.wid, hop = d.hop;
      mfc::pup::Sizer sz;
      sz | wid | hop;
      std::vector<char> prefix(sz.size() + sizeof(std::size_t));
      mfc::pup::MemPacker p(prefix.data(), prefix.size());
      p | wid | hop;
      std::size_t len_word = wire_len;
      p.bytes(&len_word, sizeof len_word);

      std::vector<cv::SendSpan> spans;
      spans.reserve(img_spans.size() + 1);
      spans.push_back({prefix.data(), prefix.size()});
      for (const auto& r : img_spans) spans.push_back({r.data, r.len});

      cv::send_spans(ob_dest(*s, d.wid, d.hop), h_ob_ship, spans.data(),
                     spans.size(), [t] {
                       t->complete_pack();
                       delete t;
                     });
    });
    h_ob_ship = cv::register_handler([](cv::Message&& m) {
      ObState* s = g_ob;
      auto ship = m.as<ObShip>();
      mfc::migrate::ThreadImage image;
      mfc::pup::from_bytes(ship.wire, image);
      auto* t = mfc::migrate::MigratableThread::unpack(std::move(image),
                                                      cv::my_pe());
      t->set_delete_on_exit(true);
      {
        std::lock_guard<std::mutex> lock(s->mu);
        s->threads[ship.wid] = t;
      }
      cv::ready_thread(t);
    });
    h_ob_done = cv::register_handler([](cv::Message&& m) {
      ObState* s = g_ob;
      const auto done = m.as<ObDone>();
      s->failures += done.failures;
      if (++s->dones == s->workers && s->waiting_dones) {
        s->waiting_dones = false;
        cv::ready_thread(s->coordinator);
      }
    });
    h_ob_finish = cv::register_handler([](cv::Message&&) {
      ObState* s = g_ob;
      mfc::ult::Thread* main = nullptr;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        auto it = s->parked_mains.find(cv::my_pe());
        if (it != s->parked_mains.end()) {
          main = it->second;
          s->parked_mains.erase(it);
        }
      }
      if (main != nullptr) cv::ready_thread(main);
    });
  });
}

void ob_entry(int pe) {
  ObState* s = g_ob;
  for (int w = 0; w < s->workers; ++w) {
    if (w % s->npes != pe) continue;
    auto* t = ob_make_worker(*s, w, pe);
    t->set_delete_on_exit(true);
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->threads[w] = t;
    }
    cv::ready_thread(t);
  }
  if (pe != 0) {
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->parked_mains[pe] = cv::pe_scheduler().running();
    }
    mfc::ult::suspend();  // until h_ob_finish
    return;
  }
  s->coordinator = cv::pe_scheduler().running();
  if (s->dones < s->workers) {
    s->waiting_dones = true;
    mfc::ult::suspend();
  }
  cv::broadcast(h_ob_finish, {});
  cv::wait_quiescence();
}

[[maybe_unused]] std::uint64_t run_ob_storm(int npes, int nprocs, int workers,
                                            int hops, std::uint64_t seed) {
  mfc::migrate::CommonStackArena::instance();  // shared addresses pre-fork
  ensure_ob_handlers();
  auto s = std::make_unique<ObState>();
  s->seed = seed;
  s->npes = npes;
  s->workers = workers;
  s->hops = hops;
  g_ob = s.get();

  cv::Machine::Config mc;
  mc.npes = npes;
  mc.nprocs = nprocs;
  mc.transport = cv::Machine::Config::Transport::kShm;
  mc.iso_slot_bytes = 16 * 1024;
  mc.iso_slots_per_pe = 64;
  cv::Machine::run(mc, ob_entry);

  EXPECT_EQ(s->dones, workers);
  const std::uint64_t failures = s->failures;
  g_ob = nullptr;
  return failures;
}

#ifndef MFC_TSAN

TEST(ObsMachine, TwoProcTraceMergesToOneAlignedTimeline) {
  const std::string base = "obs_machine_merge.json";
  for (const auto& f : {base, base + ".part0", base + ".part1",
                        base + ".remerge"}) {
    std::remove(f.c_str());
  }
  setenv("MFC_TRACE", "1", 1);
  setenv("MFC_TRACE_FILE", base.c_str(), 1);
  const std::uint64_t failures = run_ob_storm(4, 2, 6, 2, 0x0B51);
  unsetenv("MFC_TRACE");
  unsetenv("MFC_TRACE_FILE");
  EXPECT_EQ(failures, 0u);

  // The parent's shutdown path merged both parts into the base file.
  const std::string json = read_file(base);
  ASSERT_FALSE(json.empty()) << "machine did not write the merged timeline";
  EXPECT_NE(json.find("\"parts\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"mfc proc 0\""), std::string::npos);
  EXPECT_NE(json.find("\"mfc proc 1\""), std::string::npos);
  EXPECT_NE(json.find("\"wire\""), std::string::npos);

  const std::vector<EvLine> evs = parse_events(json);
  expect_tracks_monotonic(evs);
  EXPECT_GE(count_cross_pid_flows(evs, ""), 1)
      << "no flow arrow spans the two process track groups";

  // The parts stay on disk for postmortem re-merging (tools/trace_merge);
  // re-merging them must reproduce the machine's output byte for byte.
  std::string err;
  ASSERT_TRUE(trace::merge_parts({base + ".part0", base + ".part1"},
                                 base + ".remerge", &err))
      << err;
  EXPECT_EQ(read_file(base + ".remerge"), json);

  for (const auto& f : {base, base + ".part0", base + ".part1",
                        base + ".remerge"}) {
    std::remove(f.c_str());
  }
}

TEST(ObsMachine, Acceptance64Pe4ProcStormHasCrossProcessMigrateFlow) {
  const std::string base = "obs_machine_accept.json";
  std::remove(base.c_str());
  setenv("MFC_TRACE", "1", 1);
  setenv("MFC_TRACE_FILE", base.c_str(), 1);
  const std::uint64_t failures = run_ob_storm(64, 4, 12, 2, 0xACC3);
  unsetenv("MFC_TRACE");
  unsetenv("MFC_TRACE_FILE");
  EXPECT_EQ(failures, 0u);

  const std::string json = read_file(base);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"parts\":\"4\""), std::string::npos);
  const std::vector<EvLine> evs = parse_events(json);
  expect_tracks_monotonic(evs);
  // The acceptance arrow: a thread packed in one process and unpacked in
  // another ties its pack→unpack flow across two track groups.
  EXPECT_GE(count_cross_pid_flows(evs, "migrate"), 1)
      << "no pack→unpack flow crosses a process boundary";
  EXPECT_GE(count_cross_pid_flows(evs, "msg"), 1);

  std::remove(base.c_str());
  for (int p = 0; p < 4; ++p) {
    std::remove((base + ".part" + std::to_string(p)).c_str());
  }
}

#endif  // !MFC_TSAN

TEST(ObsMachine, FtKillStormWithTraceOffStillDumpsFlight) {
  // The black-box contract: tracing disabled, histograms disabled — the
  // first PE kill must still freeze and dump the flight recorder.
  unsetenv("MFC_TRACE");
  setenv("MFC_FLIGHT_FILE", "obs_flight_ft", 1);
  std::remove("obs_flight_ft.json");

  mfc::chaos::StormOptions opt;
  opt.seed = 17;
  opt.npes = 4;
  opt.workers = 6;
  opt.rounds = 8;
  opt.chaos.seed = 17;
  opt.ft_checkpoint_every = 2;
  opt.ft_kill_every = 2;
  opt.ft_ping_interval_us = 1000;
  opt.ft_timeout_us = 200000;
  const mfc::chaos::StormReport r = mfc::chaos::run_storm(opt);
  unsetenv("MFC_FLIGHT_FILE");

  EXPECT_TRUE(r.clean());
  EXPECT_GT(r.ft_kills, 0u);
  EXPECT_FALSE(r.traced);

  const std::string json = read_file("obs_flight_ft.json");
  ASSERT_FALSE(json.empty()) << "kill storm left no flight dump";
  EXPECT_NE(json.find("\"reason\":\"ft-kill\""), std::string::npos);
  EXPECT_NE(json.find("ft-checkpoint"), std::string::npos);
  std::remove("obs_flight_ft.json");
}

TEST(ObsMachine, HistogramsPopulateAcrossTheStormPath) {
  hist::reset(4);
  hist::enable(true);
  mfc::chaos::StormOptions opt;
  opt.seed = 29;
  opt.npes = 4;
  opt.workers = 6;
  opt.rounds = 4;
  opt.chaos.seed = 29;
  opt.transport = 1;  // shm loopback: the wire path feeds the stamps too
  const mfc::chaos::StormReport r = mfc::chaos::run_storm(opt);
  hist::enable(false);
  EXPECT_TRUE(r.clean());

  const hist::Snapshot s = hist::snapshot();
  for (Hist h : {Hist::kQueueWait, Hist::kHandlerService, Hist::kMigratePack,
                 Hist::kMigrateUnpack, Hist::kMigrateE2e}) {
    EXPECT_GT(s.count(h), 0u) << hist::to_string(h);
    EXPECT_LE(s.quantile(h, 0.50), s.quantile(h, 0.99)) << hist::to_string(h);
    EXPECT_LE(s.quantile(h, 0.99), s.quantile(h, 0.999))
        << hist::to_string(h);
  }
  // Every migration packs exactly once and unpacks exactly once.
  EXPECT_EQ(s.count(Hist::kMigratePack), s.count(Hist::kMigrateUnpack));
  EXPECT_EQ(s.count(Hist::kMigrateE2e), s.count(Hist::kMigrateUnpack));
}

}  // namespace
