// BigSim-analog simulator tests (paper §4.4).
#include "bigsim/bigsim.h"

#include <gtest/gtest.h>

namespace {

using mfc::bigsim::Result;
using mfc::bigsim::simulate;
using mfc::bigsim::TargetConfig;

TargetConfig small_config() {
  TargetConfig cfg;
  cfg.grid_x = 4;
  cfg.grid_y = 4;
  cfg.grid_z = 2;
  cfg.steps = 3;
  cfg.atoms_per_proc = 32;
  return cfg;
}

TEST(BigSim, RunsToCompletionAndCountsMessages) {
  const TargetConfig cfg = small_config();
  Result r = simulate(cfg, 2);
  EXPECT_EQ(r.target_procs, 32);
  EXPECT_EQ(r.host_pes, 2);
  // Every target proc sends 6 ghosts per step.
  EXPECT_EQ(r.messages, 32ull * 6 * 3);
  EXPECT_GT(r.wall_per_step, 0.0);
}

TEST(BigSim, PredictedTimeFollowsTheModel) {
  TargetConfig cfg = small_config();
  Result r = simulate(cfg, 1);
  const double compute =
      cfg.atoms_per_proc * cfg.flops_per_atom / cfg.target_flop_rate;
  const double net = cfg.link_latency_us * 1e-6 +
                     cfg.bytes_per_ghost / (cfg.link_bandwidth_gbs * 1e9);
  EXPECT_NEAR(r.predicted_step_time, compute + net, 1e-12);
}

TEST(BigSim, PredictionIndependentOfHostPes) {
  // The whole point of the simulator: the *predicted* target time must not
  // depend on how many host processors run the simulation.
  TargetConfig cfg = small_config();
  Result r1 = simulate(cfg, 1);
  Result r2 = simulate(cfg, 2);
  Result r4 = simulate(cfg, 4);
  EXPECT_DOUBLE_EQ(r1.predicted_step_time, r2.predicted_step_time);
  EXPECT_DOUBLE_EQ(r1.predicted_step_time, r4.predicted_step_time);
}

TEST(BigSim, ManyMoreTargetsThanHostPes) {
  // Thousands of flows per host processor (the paper ran 50,000): here 2048
  // target threads over 2 PEs.
  TargetConfig cfg;
  cfg.grid_x = 16;
  cfg.grid_y = 16;
  cfg.grid_z = 8;
  cfg.steps = 2;
  cfg.atoms_per_proc = 8;
  Result r = simulate(cfg, 2);
  EXPECT_EQ(r.target_procs, 2048);
  EXPECT_EQ(r.messages, 2048ull * 6 * 2);
}

TEST(BigSim, NonPowerOfTwoGrid) {
  TargetConfig cfg;
  cfg.grid_x = 3;
  cfg.grid_y = 5;
  cfg.grid_z = 2;
  cfg.steps = 2;
  cfg.atoms_per_proc = 8;
  Result r = simulate(cfg, 3);
  EXPECT_EQ(r.target_procs, 30);
  EXPECT_EQ(r.messages, 30ull * 6 * 2);
}

}  // namespace
