// Property/fuzz tests for migratable threads: random techniques, stack
// depths, yield schedules, and pack points — the invariant is always the
// same: a thread's observable state is identical whether or not it was
// packed, serialized, and resumed in between.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "ult/scheduler.h"
#include "util/rng.h"

namespace {

using mfc::migrate::IsoThread;
using mfc::migrate::MemAliasThread;
using mfc::migrate::MigratableThread;
using mfc::migrate::StackCopyThread;
using mfc::ult::Scheduler;
using mfc::ult::State;

class MigrateFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 1024;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

/// The workload: recurse to a random depth (building stack state with
/// self-referential pointers at every level), checksum on the way down,
/// suspend a random number of times at the bottom, verify on the way up.
struct Workload {
  Scheduler* sched;
  int depth;
  int suspends;
  std::uint64_t expected;
  std::uint64_t computed = 0;
  bool finished = false;
  bool verified = true;

  static std::uint64_t mix(std::uint64_t h, int level) {
    return h * 1099511628211ULL + static_cast<std::uint64_t>(level) + 1;
  }

  void recurse(int level, std::uint64_t hash) {
    long frame_mark = 0xF00D + level;
    long* self = &frame_mark;
    hash = mix(hash, level);
    if (level < depth) {
      recurse(level + 1, hash);
    } else {
      computed = hash;
      for (int s = 0; s < suspends; ++s) sched->suspend();  // pack points
    }
    // Unwinding after resumption: every frame's local state must be intact.
    verified = verified && (*self == 0xF00D + level) && (self == &frame_mark);
  }

  void run() {
    recurse(0, 14695981039346656037ULL);
    finished = true;
  }
};

MigratableThread* make_thread(int technique, std::function<void()> fn,
                              std::size_t stack_bytes) {
  switch (technique) {
    case 0: return new IsoThread(std::move(fn), 0, stack_bytes);
    case 1: return new StackCopyThread(std::move(fn), stack_bytes);
    default: return new MemAliasThread(std::move(fn), stack_bytes);
  }
}

TEST_P(MigrateFuzz, RandomDepthsAndPackPoints) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 6; ++round) {
    Scheduler sched;
    const int technique = static_cast<int>(rng.next_below(3));
    const int depth = 1 + static_cast<int>(rng.next_below(120));
    const int suspends = 1 + static_cast<int>(rng.next_below(4));

    Workload w;
    w.sched = &sched;
    w.depth = depth;
    w.suspends = suspends;
    // Reference hash, computed without any threading.
    std::uint64_t h = 14695981039346656037ULL;
    for (int level = 0; level <= depth; ++level) h = Workload::mix(h, level);
    w.expected = h;

    MigratableThread* t =
        make_thread(technique, [&w] { w.run(); }, 192 * 1024);
    sched.ready(t);
    sched.run_until_idle();

    // Pack/serialize/unpack at a random subset of the suspend points.
    for (int s = 0; s < suspends; ++s) {
      ASSERT_EQ(t->state(), State::kSuspended);
      if (rng.next_below(2) == 0) {
        auto image = t->pack();
        auto wire = mfc::pup::to_bytes(image);
        delete t;
        mfc::migrate::ThreadImage arrived;
        mfc::pup::from_bytes(wire, arrived);
        t = MigratableThread::unpack(std::move(arrived),
                                     static_cast<int>(rng.next_below(2)));
      }
      sched.ready(t);
      sched.run_until_idle();
    }

    EXPECT_TRUE(w.finished) << "technique=" << technique << " depth=" << depth;
    EXPECT_TRUE(w.verified) << "frame state corrupted after migration";
    EXPECT_EQ(w.computed, w.expected);
    EXPECT_EQ(t->state(), State::kDone);
    delete t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrateFuzz, ::testing::Range(1, 13));

// Interleaving fuzz: several migratable threads of mixed techniques yield
// in random schedules; every thread's private counter must stay private.
class InterleaveFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 1;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 1024;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

TEST_P(InterleaveFuzz, MixedTechniquesKeepPrivateState) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  Scheduler sched;
  constexpr int kThreads = 9;
  std::vector<long> finals(kThreads, -1);
  std::vector<long> expected(kThreads, 0);
  std::vector<MigratableThread*> ts;
  for (int i = 0; i < kThreads; ++i) {
    const int yields = 3 + static_cast<int>(rng.next_below(20));
    expected[static_cast<std::size_t>(i)] = i * 1000L + static_cast<long>(yields) * (i + 1);
    ts.push_back(make_thread(i % 3,
                             [&sched, &finals, i, yields] {
                               long acc = i * 1000;
                               for (int y = 0; y < yields; ++y) {
                                 acc += i + 1;
                                 sched.yield();
                               }
                               finals[static_cast<std::size_t>(i)] = acc;
                             },
                             64 * 1024));
  }
  // Random ready order.
  std::vector<int> order(kThreads);
  for (int i = 0; i < kThreads; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = kThreads - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  for (int i : order) sched.ready(ts[static_cast<std::size_t>(i)]);
  sched.run_until_idle();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(finals[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "thread " << i << " state was corrupted or lost";
  }
  for (auto* t : ts) delete t;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleaveFuzz, ::testing::Range(1, 9));

}  // namespace
