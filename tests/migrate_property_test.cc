// Property/fuzz tests for migratable threads: random techniques, stack
// depths, yield schedules, and pack points — the invariant is always the
// same: a thread's observable state is identical whether or not it was
// packed, serialized, and resumed in between.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "iso/heap.h"
#include "migrate/iso_thread.h"
#include "migrate/manifest.h"
#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "ult/scheduler.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace {

using mfc::migrate::IsoThread;
using mfc::migrate::MemAliasThread;
using mfc::migrate::MigratableThread;
using mfc::migrate::StackCopyThread;
using mfc::ult::Scheduler;
using mfc::ult::State;

class MigrateFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 1024;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

/// The workload: recurse to a random depth (building stack state with
/// self-referential pointers at every level), checksum on the way down,
/// suspend a random number of times at the bottom, verify on the way up.
struct Workload {
  Scheduler* sched;
  int depth;
  int suspends;
  std::uint64_t expected;
  std::uint64_t computed = 0;
  bool finished = false;
  bool verified = true;

  static std::uint64_t mix(std::uint64_t h, int level) {
    return h * 1099511628211ULL + static_cast<std::uint64_t>(level) + 1;
  }

  void recurse(int level, std::uint64_t hash) {
    long frame_mark = 0xF00D + level;
    long* self = &frame_mark;
    hash = mix(hash, level);
    if (level < depth) {
      recurse(level + 1, hash);
    } else {
      computed = hash;
      for (int s = 0; s < suspends; ++s) sched->suspend();  // pack points
    }
    // Unwinding after resumption: every frame's local state must be intact.
    verified = verified && (*self == 0xF00D + level) && (self == &frame_mark);
  }

  void run() {
    recurse(0, 14695981039346656037ULL);
    finished = true;
  }
};

MigratableThread* make_thread(int technique, std::function<void()> fn,
                              std::size_t stack_bytes) {
  switch (technique) {
    case 0: return new IsoThread(std::move(fn), 0, stack_bytes);
    case 1: return new StackCopyThread(std::move(fn), stack_bytes);
    default: return new MemAliasThread(std::move(fn), stack_bytes);
  }
}

TEST_P(MigrateFuzz, RandomDepthsAndPackPoints) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 6; ++round) {
    Scheduler sched;
    const int technique = static_cast<int>(rng.next_below(3));
    const int depth = 1 + static_cast<int>(rng.next_below(120));
    const int suspends = 1 + static_cast<int>(rng.next_below(4));

    Workload w;
    w.sched = &sched;
    w.depth = depth;
    w.suspends = suspends;
    // Reference hash, computed without any threading.
    std::uint64_t h = 14695981039346656037ULL;
    for (int level = 0; level <= depth; ++level) h = Workload::mix(h, level);
    w.expected = h;

    MigratableThread* t =
        make_thread(technique, [&w] { w.run(); }, 192 * 1024);
    sched.ready(t);
    sched.run_until_idle();

    // Pack/serialize/unpack at a random subset of the suspend points.
    for (int s = 0; s < suspends; ++s) {
      ASSERT_EQ(t->state(), State::kSuspended);
      if (rng.next_below(2) == 0) {
        auto image = t->pack();
        auto wire = mfc::pup::to_bytes(image);
        delete t;
        mfc::migrate::ThreadImage arrived;
        mfc::pup::from_bytes(wire, arrived);
        t = MigratableThread::unpack(std::move(arrived),
                                     static_cast<int>(rng.next_below(2)));
      }
      sched.ready(t);
      sched.run_until_idle();
    }

    EXPECT_TRUE(w.finished) << "technique=" << technique << " depth=" << depth;
    EXPECT_TRUE(w.verified) << "frame state corrupted after migration";
    EXPECT_EQ(w.computed, w.expected);
    EXPECT_EQ(t->state(), State::kDone);
    delete t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrateFuzz, ::testing::Range(1, 13));

// Interleaving fuzz: several migratable threads of mixed techniques yield
// in random schedules; every thread's private counter must stay private.
class InterleaveFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 1;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 1024;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

TEST_P(InterleaveFuzz, MixedTechniquesKeepPrivateState) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  Scheduler sched;
  constexpr int kThreads = 9;
  std::vector<long> finals(kThreads, -1);
  std::vector<long> expected(kThreads, 0);
  std::vector<MigratableThread*> ts;
  for (int i = 0; i < kThreads; ++i) {
    const int yields = 3 + static_cast<int>(rng.next_below(20));
    expected[static_cast<std::size_t>(i)] = i * 1000L + static_cast<long>(yields) * (i + 1);
    ts.push_back(make_thread(i % 3,
                             [&sched, &finals, i, yields] {
                               long acc = i * 1000;
                               for (int y = 0; y < yields; ++y) {
                                 acc += i + 1;
                                 sched.yield();
                               }
                               finals[static_cast<std::size_t>(i)] = acc;
                             },
                             64 * 1024));
  }
  // Random ready order.
  std::vector<int> order(kThreads);
  for (int i = 0; i < kThreads; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = kThreads - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  for (int i : order) sched.ready(ts[static_cast<std::size_t>(i)]);
  sched.run_until_idle();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(finals[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "thread " << i << " state was corrupted or lost";
  }
  for (auto* t : ts) delete t;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleaveFuzz, ::testing::Range(1, 9));

// ---- Scatter-gather manifest equivalence (labeled migrate-perf) ----
//
// The zero-copy pack path must be a pure representation change: gathering a
// thread's ImageManifest onto the wire has to produce byte-for-byte the
// stream pup::to_bytes(pack()) produces, for every technique, including
// payloads full of NaN/inf bit patterns and images with zero heap runs.

class ManifestEquiv : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 1024;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

/// Parks with IEEE specials and a patterned array live in the frame, then
/// verifies all of it (including the NaN payload bits) after resumption.
struct SpecialsWorkload {
  Scheduler* sched;
  bool with_heap = false;
  bool finished = false;
  bool verified = false;

  void run() {
    double specials[4] = {std::nan("0x7ff"), HUGE_VAL, -HUGE_VAL, -0.0};
    long pattern[32];
    for (int i = 0; i < 32; ++i) pattern[i] = 0x5EED0000L + i;
    char* heap_data = nullptr;
    if (with_heap) {
      heap_data = static_cast<char*>(mfc::iso::routed_malloc(3000));
      std::memset(heap_data, 0xA5, 3000);
    }
    sched->suspend();  // ---- packed and compared here ----
    bool ok = std::isnan(specials[0]) && std::isinf(specials[1]) &&
              specials[1] > 0 && std::isinf(specials[2]) && specials[2] < 0 &&
              std::signbit(specials[3]);
    for (int i = 0; i < 32; ++i) ok = ok && pattern[i] == 0x5EED0000L + i;
    if (heap_data != nullptr) {
      for (int i = 0; i < 3000; ++i) {
        ok = ok && heap_data[i] == static_cast<char>(0xA5);
      }
      mfc::iso::routed_free(heap_data);
    }
    verified = ok;
    finished = true;
  }
};

TEST_P(ManifestEquiv, IovecWireMatchesBlobWireExactly) {
  const int technique = GetParam() % 3;
  const bool with_heap = GetParam() >= 3;  // iso-only heap-run variant
  Scheduler sched;
  SpecialsWorkload w;
  w.sched = &sched;
  w.with_heap = with_heap;
  MigratableThread* t =
      make_thread(technique, [&w] { w.run(); }, 64 * 1024);
  sched.ready(t);
  sched.run_until_idle();
  ASSERT_EQ(t->state(), State::kSuspended);

  // Gather the iovec view first (non-destructive: the thread stays parked).
  mfc::migrate::ImageManifest m = t->pack_manifest();
  if (technique != 0) {
    // Stack-copy / memory-alias images carry no heap slots at all: the
    // zero-length-region case of the manifest codec.
    EXPECT_TRUE(m.heap_slots.empty()) << "expected a zero-heap-run image";
  }
  if (with_heap) ASSERT_FALSE(m.heap_slots.empty());
  std::uint32_t gather_crc = 0;
  const std::vector<char> iovec_wire = m.to_wire(&gather_crc);
  EXPECT_EQ(iovec_wire.size(), m.wire_size());

  // Legacy blob path on the very same suspend point.
  mfc::migrate::ThreadImage image = t->pack();
  const std::vector<char> blob_wire = mfc::pup::to_bytes(image);

  ASSERT_EQ(iovec_wire.size(), blob_wire.size());
  EXPECT_TRUE(std::memcmp(iovec_wire.data(), blob_wire.data(),
                          blob_wire.size()) == 0)
      << "technique " << technique << " manifest gather diverged from blob";
  EXPECT_EQ(gather_crc, mfc::crc32(blob_wire.data(), blob_wire.size()));

  // The iovec bytes are the shipping format: arrive, unpack, resume.
  delete t;
  mfc::migrate::ThreadImage arrived;
  mfc::pup::from_bytes(iovec_wire, arrived);
  t = MigratableThread::unpack(std::move(arrived), /*dest_pe=*/1);
  sched.ready(t);
  sched.run_until_idle();
  EXPECT_EQ(t->state(), State::kDone);
  EXPECT_TRUE(w.finished);
  EXPECT_TRUE(w.verified) << "NaN/inf or pattern payload corrupted";
  delete t;
}

// Params 0..2 = technique with no heap use (iso case has zero heap runs);
// param 3 = isomalloc with a live heap slot (heap runs on the wire).
INSTANTIATE_TEST_SUITE_P(Techniques, ManifestEquiv, ::testing::Range(0, 4));

}  // namespace
