// Cross-module integration and randomized property tests: the full stack
// exercised together (converse + charm + migration, AMPI + LB, swap-global
// + migratable threads).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "ampi/ampi.h"
#include "charm/array.h"
#include "converse/machine.h"
#include "migrate/iso_thread.h"
#include "pup/pup.h"
#include "swapglobal/global.h"
#include "ult/scheduler.h"
#include "util/rng.h"

namespace {

namespace cv = mfc::converse;
namespace ampi = mfc::ampi;

// ---- charm arrays under randomized migration + traffic ----------------------

struct Accum : mfc::charm::Element {
  long total = 0;
  enum Tags { kAdd = 0, kContribute = 1, kMove = 2 };
  void on_message(int tag, std::vector<char> payload) override {
    mfc::pup::MemUnpacker u(payload.data(), payload.size());
    int v = 0;
    mfc::pup::pup(u, v);
    switch (tag) {
      case kAdd:
        total += v;
        break;
      case kContribute:
        mfc::charm::find_array(array_id())
            ->contribute(v, static_cast<double>(total));
        break;
      case kMove:
        mfc::charm::find_array(array_id())->migrate(index(), v);
        break;
    }
  }
  void pup(mfc::pup::Er& p) override { p | total; }
};

class ChareChaos : public ::testing::TestWithParam<int> {};

TEST_P(ChareChaos, SumsSurviveRandomMigrationStorm) {
  static std::atomic<double> reduced;
  static std::atomic<long> expected;
  reduced = -1;
  expected = 0;
  const auto seed = static_cast<std::uint64_t>(GetParam());
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [seed](int pe) {
    constexpr int kElems = 12;
    mfc::charm::Array<Accum> arr(42, kElems);
    if (pe == 0) arr.on_reduction([](double r) { reduced.store(r); });
    cv::barrier();
    if (pe == 0) {
      mfc::SplitMix64 rng(seed);
      // Random adds interleaved with random migration commands — sends keep
      // flowing while elements are in flight, exercising the home's
      // transit buffering.
      for (int step = 0; step < 200; ++step) {
        const auto elem = static_cast<int>(rng.next_below(kElems));
        const int v = static_cast<int>(rng.next_below(100));
        expected.fetch_add(v);
        arr.send_value(elem, Accum::kAdd, v);
        if (rng.next_below(3) == 0) {
          int dest = static_cast<int>(rng.next_below(4));
          arr.send_value(elem, Accum::kMove, dest);
          const int chase = static_cast<int>(rng.next_below(100));
          expected.fetch_add(chase);
          arr.send_value(elem, Accum::kAdd, chase);
        }
      }
    }
    for (int i = 0; i < 8; ++i) cv::barrier();  // drain the storm
    if (pe == 0) {
      int red_id = 7;
      arr.broadcast(Accum::kContribute, mfc::pup::to_bytes(red_id));
    }
    for (int i = 0; i < 8; ++i) cv::barrier();
  });
  EXPECT_EQ(static_cast<long>(reduced.load()), expected.load());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChareChaos, ::testing::Range(1, 9));

// ---- AMPI: randomized communication across randomized migrations ------------

class AmpiChaos : public ::testing::TestWithParam<int> {};

TEST_P(AmpiChaos, RingChecksumsSurviveMigrationSchedules) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  static std::atomic<int> failures;
  failures = 0;
  ampi::Options opt;
  opt.nranks = 8;
  opt.npes = 4;
  ampi::run(opt, [seed] {
    const int r = ampi::rank();
    const int n = ampi::size();
    std::uint64_t checksum = 0;
    for (int round = 0; round < 6; ++round) {
      // Deterministic pseudo-random destination for this round, agreed by
      // all ranks (same seed/round), different per rank.
      mfc::SplitMix64 rng(seed * 1000 + static_cast<std::uint64_t>(round));
      std::vector<int> dests(static_cast<std::size_t>(n));
      for (auto& d : dests) {
        d = static_cast<int>(rng.next_below(4));
      }
      ampi::migrate_to(dests[static_cast<std::size_t>(r)]);

      // Ring exchange with payload mixing after every migration storm.
      std::uint64_t token = checksum * 31 + static_cast<std::uint64_t>(r);
      std::uint64_t incoming = 0;
      ampi::sendrecv(&token, 1, ampi::Dtype::kUint64, (r + 1) % n, round,
                     &incoming, 1, (r + n - 1) % n, round);
      checksum = checksum * 17 + incoming;

      // Everybody must agree on the global checksum sum.
      const std::uint64_t total =
          ampi::allreduce_one<std::uint64_t>(checksum, ampi::Op::kSum);
      std::uint64_t expect_total =
          ampi::allreduce_one<std::uint64_t>(checksum, ampi::Op::kSum);
      if (total != expect_total) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmpiChaos, ::testing::Range(1, 9));

// ---- AMPI + LB strategies end-to-end ----------------------------------------

TEST(AmpiLb, EveryStrategyKeepsProgramsCorrect) {
  for (const char* name : {"null", "greedy", "refine", "rotate"}) {
    static std::atomic<long> sum;
    sum = 0;
    ampi::Options opt;
    opt.nranks = 8;
    opt.npes = 4;
    opt.lb_strategy = mfc::lb::strategy_by_name(name);
    ampi::run(opt, [] {
      volatile double burn = 0;
      for (int i = 0; i < 50000 * (ampi::rank() + 1); ++i) burn = burn + i;
      ampi::migrate();
      sum.fetch_add(ampi::allreduce_one<long>(1, ampi::Op::kSum));
    });
    EXPECT_EQ(sum.load(), 8 * 8) << name;
  }
}

// ---- swap-global + migratable threads ---------------------------------------

mfc::swapglobal::Global<long> g_counter{5};

TEST(SwapGlobalMigration, PrivatizedGlobalsTravelViaPup) {
  mfc::iso::Region::Config cfg;
  cfg.npes = 2;
  cfg.slot_bytes = 64 * 1024;
  cfg.slots_per_pe = 256;
  mfc::iso::Region::init(cfg);
  {
    mfc::ult::Scheduler sched;
    auto set = std::make_unique<mfc::swapglobal::GlobalSet>();
    auto* t = new mfc::migrate::IsoThread(
        [] {
          g_counter.get() = 111;
          mfc::ult::Scheduler::current().suspend();
          // Resumed post-migration with a *new* GlobalSet rebuilt from pup.
          g_counter.get() += 1;
        },
        0);
    mfc::swapglobal::attach(t, set.get());
    sched.ready(t);
    sched.run_until_idle();

    // Migrate thread and its global-set together.
    auto timage = t->pack();
    auto set_bytes = mfc::pup::to_bytes(*set);
    delete t;
    set.reset();

    auto* t2 = mfc::migrate::MigratableThread::unpack(std::move(timage), 1);
    auto set2 = std::make_unique<mfc::swapglobal::GlobalSet>();
    mfc::pup::from_bytes(set_bytes, *set2);
    mfc::swapglobal::attach(t2, set2.get());
    sched.ready(t2);
    sched.run_until_idle();

    mfc::swapglobal::GlobalSet::install(set2.get());
    EXPECT_EQ(g_counter.get(), 112);
    mfc::swapglobal::GlobalSet::install(nullptr);
    delete t2;
  }
  mfc::iso::Region::shutdown();
  EXPECT_EQ(g_counter.get(), 5);  // shared default untouched
}

// ---- machines back to back ---------------------------------------------------

TEST(Machines, AmpiThenConverseThenAmpi) {
  for (int round = 0; round < 2; ++round) {
    static std::atomic<int> count;
    count = 0;
    ampi::Options opt;
    opt.nranks = 4;
    opt.npes = 2;
    ampi::run(opt, [] {
      ampi::barrier();
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 4);

    std::atomic<int> pes{0};
    cv::Machine::Config cfg;
    cfg.npes = 3;
    cv::Machine::run(cfg, [&](int) { pes.fetch_add(1); });
    EXPECT_EQ(pes.load(), 3);
  }
}

}  // namespace
