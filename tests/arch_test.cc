// Tests for the minimal context-switch layer (paper Figure 10).
#include "arch/context.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using mfc::arch::Context;
using mfc::arch::make_context;
using mfc::arch::swap_context;

struct PingPong {
  Context main_ctx, a, b;
  int trace = 0;
};

TEST(Arch, EntersFunctionWithArgument) {
  static Context main_ctx, t;
  static void* seen_arg = nullptr;
  std::vector<char> stack(16 * 1024);
  int marker = 42;
  t = make_context(stack.data(), stack.size(),
                   [](void* arg) {
                     seen_arg = arg;
                     swap_context(&t, &main_ctx);
                   },
                   &marker);
  swap_context(&main_ctx, &t);
  EXPECT_EQ(seen_arg, &marker);
  EXPECT_EQ(*static_cast<int*>(seen_arg), 42);
}

TEST(Arch, PingPongPreservesCalleeSavedState) {
  static PingPong pp;
  pp = PingPong{};
  std::vector<char> sa(32 * 1024), sb(32 * 1024);
  pp.a = make_context(sa.data(), sa.size(),
                      [](void* p) {
                        auto* s = static_cast<PingPong*>(p);
                        // Local state must survive round trips: live
                        // variables land in callee-saved registers or on the
                        // stack, both preserved by the swap.
                        int local = 7;
                        for (int i = 0; i < 100; ++i) {
                          s->trace += local;
                          swap_context(&s->a, &s->b);
                          local = 7;  // re-establish; also verify trace below
                        }
                        swap_context(&s->a, &s->main_ctx);
                      },
                      &pp);
  pp.b = make_context(sb.data(), sb.size(),
                      [](void* p) {
                        auto* s = static_cast<PingPong*>(p);
                        for (;;) {
                          s->trace += 1000;
                          swap_context(&s->b, &s->a);
                        }
                      },
                      &pp);
  swap_context(&pp.main_ctx, &pp.a);
  EXPECT_EQ(pp.trace, 100 * 7 + 100 * 1000);
}

TEST(Arch, DeepStackUse) {
  static Context main_ctx, t;
  static long result = 0;
  std::vector<char> stack(512 * 1024);
  t = make_context(stack.data(), stack.size(),
                   [](void*) {
                     // Consume real stack depth with a recursive sum.
                     struct R {
                       static long sum(int n) {
                         volatile char pad[128];
                         pad[0] = static_cast<char>(n);
                         (void)pad;
                         return n == 0 ? 0 : n + sum(n - 1);
                       }
                     };
                     result = R::sum(1000);
                     swap_context(&t, &main_ctx);
                   },
                   nullptr);
  swap_context(&main_ctx, &t);
  EXPECT_EQ(result, 1000L * 1001 / 2);
}

TEST(Arch, ManyContextsInterleaved) {
  constexpr int kThreads = 64;
  static Context main_ctx;
  static Context ctxs[kThreads];
  static int counters[kThreads];
  std::memset(counters, 0, sizeof counters);
  std::vector<std::vector<char>> stacks(kThreads,
                                        std::vector<char>(16 * 1024));
  for (int i = 0; i < kThreads; ++i) {
    ctxs[i] = make_context(
        stacks[static_cast<std::size_t>(i)].data(), 16 * 1024,
        [](void* p) {
          const int me = static_cast<int>(reinterpret_cast<intptr_t>(p));
          for (;;) {
            ++counters[me];
            swap_context(&ctxs[me], &main_ctx);
          }
        },
        reinterpret_cast<void*>(static_cast<intptr_t>(i)));
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kThreads; ++i) swap_context(&main_ctx, &ctxs[i]);
  }
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(counters[i], 3) << i;
}

TEST(Arch, StackAlignmentSupportsVectorCode) {
  // SSE/AVX spills require 16-byte alignment; misalignment faults.
  static Context main_ctx, t;
  static double out = 0;
  std::vector<char> stack(64 * 1024);
  t = make_context(stack.data(), stack.size() - 8,  // odd size on purpose
                   [](void*) {
                     alignas(16) double v[4] = {1.5, 2.5, 3.5, 4.5};
                     double acc = 0;
                     for (double d : v) acc += d * d;
                     out = acc;
                     swap_context(&t, &main_ctx);
                   },
                   nullptr);
  swap_context(&main_ctx, &t);
  EXPECT_DOUBLE_EQ(out, 1.5 * 1.5 + 2.5 * 2.5 + 3.5 * 3.5 + 4.5 * 4.5);
}

TEST(ArchDeath, MinimumStackEnforced) {
  std::vector<char> tiny(64);
  EXPECT_DEATH(make_context(tiny.data(), tiny.size(), [](void*) {}, nullptr),
               "stack too small");
}

}  // namespace
