// Shared library used by the ELF-GOT swap tests (swapglobal_test.cc).
//
// It is built with default PIC settings and accesses its exported globals
// through its own GOT — i.e., it is an "existing codebase" knowing nothing
// about privatization, exactly the situation the paper's swap-global scheme
// targets. The sgtest_ accessor functions exist so the test can observe the
// values *as this library sees them* (through the possibly-redirected GOT).

extern "C" {

int sgtest_counter = 100;
double sgtest_values[4] = {1.0, 2.0, 3.0, 4.0};

int sgtest_get_counter() { return sgtest_counter; }
void sgtest_set_counter(int v) { sgtest_counter = v; }
void sgtest_increment() { ++sgtest_counter; }
double sgtest_sum_values() {
  double total = 0;
  for (double v : sgtest_values) total += v;
  return total;
}
void sgtest_scale_values(double f) {
  for (double& v : sgtest_values) v *= f;
}

}  // extern "C"
