// Cross-process fault-tolerance tests (labeled `ft`): whole-process kill +
// zygote respawn + transport reattach storms over the procstorm driver
// (src/chaos/procstorm.h).
//
// The headline probe is digest transparency: a storm whose coordinator
// SIGKILLs entire seed-chosen processes after checkpoint commits must end
// with a workload digest bit-identical to a failure-free run of the same
// options — process loss, respawn, stream swap, buddy refill and rollback
// all invisible to the workload. Kills always fire right after a commit, so
// recovery rolls back to exactly the committed state and no round replays;
// epoch/kill/detection/recovery/respawn counters are therefore exact, not
// bounds.
//
// Fork-based multi-process legs are compiled out under ThreadSanitizer
// (MFC_TSAN) — tsan does not follow forked children. The loopback leg at
// the bottom (nprocs == 1, socket wire, PE-tier kills) keeps the whole FT
// wire path — span-shipped buddy stores included — under the race detector.
#include "chaos/procstorm.h"

#include <gtest/gtest.h>

#include "chaos/chaos.h"

namespace {

namespace chaos = mfc::chaos;
using chaos::ProcStormOptions;
using chaos::ProcStormReport;

/// Committed epochs for a given geometry: one per checkpoint round
/// ((r + 1) % every == 0, final round exempt). Kills never add epochs —
/// the kill-at-commit schedule never replays a checkpoint.
std::uint64_t expected_epochs(const ProcStormOptions& o) {
  std::uint64_t n = 0;
  for (int r = 0; r < o.rounds; ++r) {
    if (o.checkpoint_every > 0 && r != o.rounds - 1 &&
        (r + 1) % o.checkpoint_every == 0) {
      ++n;
    }
  }
  return n;
}

std::uint64_t expected_kills(const ProcStormOptions& o) {
  return o.kill_every > 0 ? expected_epochs(o) / o.kill_every : 0;
}

void expect_exact_ft_books(const ProcStormReport& r,
                           const ProcStormOptions& o) {
  EXPECT_TRUE(r.clean(o.npes));
  EXPECT_EQ(r.rounds, static_cast<std::uint64_t>(o.rounds));
  EXPECT_EQ(r.ft_epochs, expected_epochs(o));
  EXPECT_EQ(r.kills, expected_kills(o));
  EXPECT_EQ(r.detections, expected_kills(o));
  EXPECT_EQ(r.recoveries, expected_kills(o));
  if (o.checkpoint_every > 0) {
    EXPECT_GT(r.ft_ship_bytes, 0u);
  }
}

#ifndef MFC_TSAN

/// The acceptance geometry: 64 PEs across 4 processes over shm rings,
/// two whole-process SIGKILLs mid-run. The digest must match a run that
/// never installed FT at all.
TEST(Ftx, ShmProcKillStormDigestMatchesCalm) {
  ProcStormOptions calm;
  calm.seed = 20260809;
  calm.npes = 64;
  calm.nprocs = 4;
  calm.transport = 1;
  calm.rounds = 12;
  const ProcStormReport base = run_proc_storm(calm);
  ASSERT_TRUE(base.clean(calm.npes));
  ASSERT_NE(base.workload_digest, 0u);
  EXPECT_EQ(base.kills, 0u);
  EXPECT_EQ(base.proc_respawns, 0u);

  ProcStormOptions storm = calm;
  storm.checkpoint_every = 2;  // epochs at rounds 1,3,5,7,9
  storm.kill_every = 2;        // SIGKILL after commits 2 and 4
  const ProcStormReport r = run_proc_storm(storm);
  expect_exact_ft_books(r, storm);
  EXPECT_EQ(r.proc_respawns, expected_kills(storm));
  EXPECT_EQ(r.workload_digest, base.workload_digest);
}

/// Same storm over the socket transport: SCM_RIGHTS reattach instead of
/// crash-consistent shm rings.
TEST(Ftx, SocketProcKillStormDigestMatchesCalm) {
  ProcStormOptions calm;
  calm.seed = 77;
  calm.npes = 16;
  calm.nprocs = 4;
  calm.transport = 2;
  calm.rounds = 10;
  const ProcStormReport base = run_proc_storm(calm);
  ASSERT_TRUE(base.clean(calm.npes));

  ProcStormOptions storm = calm;
  storm.checkpoint_every = 2;
  storm.kill_every = 2;
  const ProcStormReport r = run_proc_storm(storm);
  expect_exact_ft_books(r, storm);
  EXPECT_EQ(r.proc_respawns, expected_kills(storm));
  EXPECT_EQ(r.workload_digest, base.workload_digest);
}

/// Same seed, same options → bit-identical digests: the kill schedule, the
/// victim draws and the recovery are all deterministic.
TEST(Ftx, SameSeedProcKillRunsAreBitIdentical) {
  ProcStormOptions opt;
  opt.seed = 4242;
  opt.npes = 8;
  opt.nprocs = 4;
  opt.transport = 1;
  opt.rounds = 10;
  opt.checkpoint_every = 2;
  opt.kill_every = 2;
  const ProcStormReport a = run_proc_storm(opt);
  const ProcStormReport b = run_proc_storm(opt);
  expect_exact_ft_books(a, opt);
  expect_exact_ft_books(b, opt);
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.ft_ship_bytes, b.ft_ship_bytes);
}

/// nprocs == 2 with a kill at every commit: the only possible victim is
/// process 1, so its *respawned* incarnation is killed again and again —
/// the zygote must keep serving respawns for a process it already
/// resurrected (ctl-channel reuse across generations).
TEST(Ftx, RespawnedProcessSurvivesRepeatedKills) {
  ProcStormOptions calm;
  calm.seed = 99;
  calm.npes = 8;
  calm.nprocs = 2;
  calm.transport = 1;
  calm.rounds = 10;
  const ProcStormReport base = run_proc_storm(calm);
  ASSERT_TRUE(base.clean(calm.npes));

  ProcStormOptions storm = calm;
  storm.checkpoint_every = 2;
  storm.kill_every = 1;  // all four commits followed by a SIGKILL of proc 1
  const ProcStormReport r = run_proc_storm(storm);
  expect_exact_ft_books(r, storm);
  EXPECT_EQ(r.kills, 4u);
  EXPECT_EQ(r.proc_respawns, 4u);
  EXPECT_EQ(r.workload_digest, base.workload_digest);
}

/// Async checkpoint shipping across processes with a kill after each
/// committed async epoch: the coordinator syncs the background commit
/// before killing, so the books stay exact.
TEST(Ftx, AsyncModeProcKillStorm) {
  ProcStormOptions calm;
  calm.seed = 1234;
  calm.npes = 16;
  calm.nprocs = 4;
  calm.transport = 1;
  calm.rounds = 10;
  const ProcStormReport base = run_proc_storm(calm);
  ASSERT_TRUE(base.clean(calm.npes));

  ProcStormOptions storm = calm;
  storm.checkpoint_every = 2;
  storm.ft_mode = 2;  // ft::CkptMode::kAsync
  storm.kill_every = 2;
  const ProcStormReport r = run_proc_storm(storm);
  expect_exact_ft_books(r, storm);
  EXPECT_EQ(r.workload_digest, base.workload_digest);
}

#endif  // !MFC_TSAN

/// Loopback leg (always compiled, tsan-clean): single process, all cross-PE
/// traffic over the socket wire, PE-tier kills. Keeps span-shipped buddy
/// stores, the detector and the rollback protocol under ThreadSanitizer.
TEST(Ftx, LoopbackSocketWirePeKillStorm) {
  ProcStormOptions calm;
  calm.seed = 555;
  calm.npes = 4;
  calm.nprocs = 1;
  calm.transport = 2;
  calm.rounds = 8;
  const ProcStormReport base = run_proc_storm(calm);
  ASSERT_TRUE(base.clean(calm.npes));

  ProcStormOptions storm = calm;
  storm.checkpoint_every = 2;  // epochs at rounds 1,3,5
  storm.kill_every = 2;        // one PE kill, after commit 2
  const ProcStormReport r = run_proc_storm(storm);
  expect_exact_ft_books(r, storm);
  EXPECT_EQ(r.kills, 1u);
  EXPECT_EQ(r.proc_respawns, 0u);  // PE tier: revive in place, no fork
  EXPECT_EQ(r.workload_digest, base.workload_digest);
}

/// Calm loopback shm variant: the wire path without failures, digest
/// stability against the socket loopback above is NOT expected (different
/// npes would change it) — this probes books only.
TEST(Ftx, LoopbackShmCheckpointOnlyStorm) {
  ProcStormOptions opt;
  opt.seed = 31337;
  opt.npes = 4;
  opt.nprocs = 1;
  opt.transport = 1;
  opt.rounds = 8;
  opt.checkpoint_every = 2;
  const ProcStormReport r = run_proc_storm(opt);
  expect_exact_ft_books(r, opt);
  EXPECT_EQ(r.kills, 0u);
}

}  // namespace
