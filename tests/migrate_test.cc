// Migratable-thread tests — the paper's §3.4 techniques, exercised through
// real pack → serialize → unpack → resume cycles.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "iso/heap.h"
#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "ult/scheduler.h"

namespace {

using mfc::migrate::IsoThread;
using mfc::migrate::MemAliasThread;
using mfc::migrate::MigratableThread;
using mfc::migrate::StackCopyThread;
using mfc::migrate::Technique;
using mfc::migrate::ThreadImage;
using mfc::ult::Scheduler;
using mfc::ult::State;

class MigrateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 4;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 512;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

// Shared test body: a thread builds stack + (optionally heap) state, suspends,
// is packed/shipped/unpacked, then resumes and self-verifies.
struct ProbeState {
  bool before_ok = false;
  bool after_ok = false;
  void* heap_ptr = nullptr;
};

template <typename MakeThread>
void run_migration_roundtrip(Scheduler& sched, ProbeState& probe,
                             MakeThread make, bool with_heap) {
  MigratableThread* t = make([&probe, &sched, with_heap] {
    // Stack state: a local array with a known pattern, plus pointers into
    // the stack itself (the hard case the same-address guarantee solves).
    int pattern[64];
    for (int i = 0; i < 64; ++i) pattern[i] = i * i + 1;
    int* self_ptr = &pattern[17];

    char* heap_data = nullptr;
    if (with_heap) {
      heap_data = static_cast<char*>(mfc::iso::routed_malloc(5000));
      std::memset(heap_data, 0x5A, 5000);
      probe.heap_ptr = heap_data;
    }
    probe.before_ok = (*self_ptr == 17 * 17 + 1);

    sched.suspend();  // ---- migration happens here ----

    // Resumed on the "destination": every pointer must still be valid.
    bool ok = (self_ptr == &pattern[17]) && (*self_ptr == 17 * 17 + 1);
    for (int i = 0; i < 64; ++i) ok = ok && (pattern[i] == i * i + 1);
    if (with_heap) {
      ok = ok && (heap_data == probe.heap_ptr);
      for (int i = 0; i < 5000; ++i) ok = ok && (heap_data[i] == 0x5A);
      mfc::iso::routed_free(heap_data);
    }
    probe.after_ok = ok;
  });

  sched.ready(t);
  sched.run_until_idle();
  ASSERT_EQ(t->state(), State::kSuspended);
  ASSERT_TRUE(probe.before_ok);

  // Pack and serialize exactly as the converse migration message would.
  ThreadImage image = t->pack();
  std::vector<char> wire = mfc::pup::to_bytes(image);
  delete t;

  ThreadImage arrived;
  mfc::pup::from_bytes(wire, arrived);
  MigratableThread* t2 = MigratableThread::unpack(std::move(arrived), 1);
  ASSERT_NE(t2, nullptr);

  sched.ready(t2);
  sched.run_until_idle();
  EXPECT_EQ(t2->state(), State::kDone);
  EXPECT_TRUE(probe.after_ok);
  delete t2;
}

TEST_F(MigrateFixture, IsoThreadMigratesStackAndHeap) {
  Scheduler sched;
  ProbeState probe;
  run_migration_roundtrip(
      sched, probe,
      [](auto fn) { return new IsoThread(std::move(fn), /*birth_pe=*/0); },
      /*with_heap=*/true);
}

TEST_F(MigrateFixture, StackCopyThreadMigratesStack) {
  Scheduler sched;
  ProbeState probe;
  run_migration_roundtrip(
      sched, probe,
      [](auto fn) { return new StackCopyThread(std::move(fn)); },
      /*with_heap=*/false);
}

TEST_F(MigrateFixture, MemAliasThreadMigratesStack) {
  Scheduler sched;
  ProbeState probe;
  run_migration_roundtrip(
      sched, probe,
      [](auto fn) { return new MemAliasThread(std::move(fn)); },
      /*with_heap=*/false);
}

TEST_F(MigrateFixture, IsoThreadIdentityAndLoadSurviveMigration) {
  Scheduler sched;
  auto* t = new IsoThread([&sched] { sched.suspend(); }, 0);
  sched.ready(t);
  sched.run_until_idle();
  const auto id = t->id();
  ThreadImage image = t->pack();
  delete t;
  auto* t2 = MigratableThread::unpack(std::move(image), 2);
  EXPECT_EQ(t2->id(), id);
  EXPECT_GE(t2->accumulated_load(), 0.0);
  sched.ready(t2);
  sched.run_until_idle();
  delete t2;
}

TEST_F(MigrateFixture, StackAddressesIdenticalBeforeAndAfter) {
  // The central claim of §3.4: "the stack will have exactly the same address
  // on the new processor."
  Scheduler sched;
  static std::uintptr_t addr_before;
  static std::uintptr_t addr_after;
  auto* t = new IsoThread(
      [&sched] {
        int anchor = 0;
        addr_before = reinterpret_cast<std::uintptr_t>(&anchor);
        sched.suspend();
        addr_after = reinterpret_cast<std::uintptr_t>(&anchor);
      },
      0);
  sched.ready(t);
  sched.run_until_idle();
  ThreadImage image = t->pack();
  delete t;
  auto* t2 = MigratableThread::unpack(std::move(image), 3);
  sched.ready(t2);
  sched.run_until_idle();
  EXPECT_EQ(addr_before, addr_after);
  delete t2;
}

TEST_F(MigrateFixture, ManyStackCopyThreadsShareOneArena) {
  Scheduler sched;
  constexpr int kThreads = 32;
  int done = 0;
  std::vector<StackCopyThread*> ts;
  for (int i = 0; i < kThreads; ++i) {
    auto* t = new StackCopyThread([&sched, &done, i] {
      // Per-thread distinct stack content, interleaved via yields.
      int mine[16];
      for (int k = 0; k < 16; ++k) mine[k] = i * 100 + k;
      for (int y = 0; y < 5; ++y) {
        sched.yield();
        for (int k = 0; k < 16; ++k) ASSERT_EQ(mine[k], i * 100 + k);
      }
      ++done;
    });
    ts.push_back(t);
    sched.ready(t);
  }
  sched.run_until_idle();
  EXPECT_EQ(done, kThreads);
  for (auto* t : ts) delete t;
}

TEST_F(MigrateFixture, ManyMemAliasThreadsShareOneAddress) {
  Scheduler sched;
  constexpr int kThreads = 16;
  int done = 0;
  std::vector<MemAliasThread*> ts;
  for (int i = 0; i < kThreads; ++i) {
    auto* t = new MemAliasThread([&sched, &done, i] {
      double mine[8];
      for (int k = 0; k < 8; ++k) mine[k] = i + k * 0.5;
      for (int y = 0; y < 5; ++y) {
        sched.yield();
        for (int k = 0; k < 8; ++k) ASSERT_EQ(mine[k], i + k * 0.5);
      }
      ++done;
    });
    ts.push_back(t);
    sched.ready(t);
  }
  sched.run_until_idle();
  EXPECT_EQ(done, kThreads);
  for (auto* t : ts) delete t;
}

TEST_F(MigrateFixture, MixedTechniquesCoexistOnOneScheduler) {
  Scheduler sched;
  int done = 0;
  auto body = [&sched, &done] {
    long local = 12345;
    sched.yield();
    ASSERT_EQ(local, 12345);
    ++done;
  };
  IsoThread iso(body, 0);
  StackCopyThread sc(body);
  MemAliasThread ma(body);
  mfc::ult::StandardThread plain(body);
  for (mfc::ult::Thread* t :
       std::initializer_list<mfc::ult::Thread*>{&iso, &sc, &ma, &plain}) {
    sched.ready(t);
  }
  sched.run_until_idle();
  EXPECT_EQ(done, 4);
}

TEST_F(MigrateFixture, IsoSlotsFreedOnDestruction) {
  auto& region = mfc::iso::Region::instance();
  const auto free_before = region.free_slots(0);
  {
    Scheduler sched;
    auto* t = new IsoThread([] {}, 0);
    sched.ready(t);
    sched.run_until_idle();
    delete t;
  }
  EXPECT_EQ(region.free_slots(0), free_before);
}

TEST_F(MigrateFixture, IsoSlotsTravelWithMigration) {
  auto& region = mfc::iso::Region::instance();
  Scheduler sched;
  const auto used_before = region.used_slots(0);
  auto* t = new IsoThread([&sched] { sched.suspend(); }, 0);
  const auto used_running = region.used_slots(0);
  EXPECT_GT(used_running, used_before);
  sched.ready(t);
  sched.run_until_idle();
  ThreadImage image = t->pack();
  delete t;
  // Slots still reserved (they belong to the in-flight image), pages dropped.
  EXPECT_EQ(region.used_slots(0), used_running);
  auto* t2 = MigratableThread::unpack(std::move(image), 1);
  sched.ready(t2);
  sched.run_until_idle();
  delete t2;
  EXPECT_EQ(region.used_slots(0), used_before);
}

TEST_F(MigrateFixture, PackRequiresSuspendedThread) {
  Scheduler sched;
  auto* t = new IsoThread([] {}, 0);
  EXPECT_DEATH(t->pack(), "suspended");
  sched.ready(t);
  sched.run_until_idle();
  delete t;
}

TEST_F(MigrateFixture, TechniqueNames) {
  EXPECT_STREQ(to_string(Technique::kStackCopy), "stack-copy");
  EXPECT_STREQ(to_string(Technique::kIsomalloc), "isomalloc");
  EXPECT_STREQ(to_string(Technique::kMemAlias), "memory-alias");
}

}  // namespace
