// Tracing & metrics subsystem tests: ring semantics, the metrics registry,
// session lifecycle, and — through a real 4-PE machine run — that the
// env-gated Chrome trace-event export is valid JSON with one track per PE,
// nested duration spans, and cross-PE flow arrows.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "converse/machine.h"
#include "trace/metrics.h"
#include "trace/ring.h"

namespace {

namespace cv = mfc::converse;
namespace trace = mfc::trace;
namespace metrics = mfc::metrics;
using trace::Ev;

// ---- Minimal JSON DOM + recursive-descent parser ----------------------------
// Dependency-free validator for the exporter's output. Strict enough to
// reject anything Perfetto's (spec-conforming) parser would reject:
// unterminated strings, trailing garbage, bare NaN, comma decimal
// separators from a locale-infected printf.

struct Jv {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Jv> arr;
  std::map<std::string, Jv> obj;

  const Jv* get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(Jv* out) {
    skip();
    if (!value(out)) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  void skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s_.compare(pos_, n, t) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + 2 + i]))) {
              return false;
            }
          }
          out->push_back('?');  // validation only; no codepoint decoding
          pos_ += 6;
          continue;
        }
        if (std::strchr("\"\\/bfnrt", e) == nullptr) return false;
        out->push_back(e);
        pos_ += 2;
        continue;
      }
      out->push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (s_[start] == '-' && pos_ == start + 1)) return false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return false;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) return false;
    }
    *out = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool value(Jv* v) {
    skip();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      v->kind = Jv::kObj;
      ++pos_;
      skip();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip();
        std::string key;
        if (!string(&key)) return false;
        skip();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        Jv child;
        if (!value(&child)) return false;
        v->obj[key] = std::move(child);
        skip();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      v->kind = Jv::kArr;
      ++pos_;
      skip();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        Jv child;
        if (!value(&child)) return false;
        v->arr.push_back(std::move(child));
        skip();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      v->kind = Jv::kStr;
      return string(&v->str);
    }
    if (c == 't') {
      v->kind = Jv::kBool;
      v->b = true;
      return lit("true");
    }
    if (c == 'f') {
      v->kind = Jv::kBool;
      v->b = false;
      return lit("false");
    }
    if (c == 'n') {
      v->kind = Jv::kNull;
      return lit("null");
    }
    v->kind = Jv::kNum;
    return number(&v->num);
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Ring -------------------------------------------------------------------

trace::Record rec(Ev ev, std::uint64_t arg) {
  trace::Record r;
  r.ev = static_cast<std::uint8_t>(ev);
  r.arg = arg;
  return r;
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDrops) {
  trace::Ring ring(0, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.write(rec(Ev::kUltCreate, i));
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.emitted(), 20u);
  // Drop-oldest: the retained window is exactly the last 8 writes, in order.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).arg, 12u + i);
  }
  // Per-type counts are taken at write time, not from the retained window.
  EXPECT_EQ(ring.count(Ev::kUltCreate), 20u);
  EXPECT_EQ(ring.count(Ev::kHandlerBegin), 0u);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwoMinEight) {
  trace::Ring tiny(0, 1);
  for (int i = 0; i < 8; ++i) tiny.write(rec(Ev::kMsgSend, 0));
  EXPECT_EQ(tiny.size(), 8u);
  EXPECT_EQ(tiny.dropped(), 0u);

  trace::Ring odd(0, 9);  // rounds to 16
  for (int i = 0; i < 16; ++i) odd.write(rec(Ev::kMsgSend, 0));
  EXPECT_EQ(odd.size(), 16u);
  EXPECT_EQ(odd.dropped(), 0u);
}

TEST(TraceRing, FlowIdsEmbedPeAndNeverCollideWithZero) {
  trace::Ring r0(0, 8);
  trace::Ring r3(3, 8);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = r0.next_flow();
    const std::uint64_t b = r3.next_flow();
    EXPECT_NE(a, 0u);  // 0 means "no flow" in Message::trace_flow
    EXPECT_EQ(a >> 40, 1u);
    EXPECT_EQ(b >> 40, 4u);
    EXPECT_TRUE(ids.insert(a).second);
    EXPECT_TRUE(ids.insert(b).second);
  }
}

// ---- Metrics registry -------------------------------------------------------

TEST(Metrics, BoundAndUnboundBumpsMergeIntoTotals) {
  metrics::reset(2);
  EXPECT_EQ(metrics::npes(), 2);

  metrics::bind_pe(0);
  metrics::bump(metrics::Counter::kMsgsSent, 3);
  metrics::bind_pe(1);
  metrics::bump(metrics::Counter::kMsgsSent, 4);
  metrics::unbind_pe();
  // Unbound writers land on the shared slot: counted in total(), invisible
  // to any pe_value().
  metrics::bump(metrics::Counter::kMsgsSent, 10);

  EXPECT_EQ(metrics::pe_value(metrics::Counter::kMsgsSent, 0), 3u);
  EXPECT_EQ(metrics::pe_value(metrics::Counter::kMsgsSent, 1), 4u);
  EXPECT_EQ(metrics::total(metrics::Counter::kMsgsSent), 17u);
  EXPECT_EQ(metrics::pe_value(metrics::Counter::kMsgsSent, 7), 0u);

  metrics::reset(2);
  EXPECT_EQ(metrics::total(metrics::Counter::kMsgsSent), 0u);
}

TEST(Metrics, SnapshotDiffAndMerge) {
  metrics::reset(1);
  metrics::bind_pe(0);
  metrics::bump(metrics::Counter::kPackIso, 5);
  const metrics::Snapshot before = metrics::snapshot();
  metrics::bump(metrics::Counter::kPackIso, 2);
  metrics::bump(metrics::Counter::kUnpackIso, 1);
  const metrics::Snapshot after = metrics::snapshot();
  metrics::unbind_pe();

  const metrics::Snapshot delta = after.diff(before);
  EXPECT_EQ(delta[metrics::Counter::kPackIso], 2u);
  EXPECT_EQ(delta[metrics::Counter::kUnpackIso], 1u);
  // diff saturates at zero rather than wrapping.
  const metrics::Snapshot inverted = before.diff(after);
  EXPECT_EQ(inverted[metrics::Counter::kPackIso], 0u);

  metrics::Snapshot sum = before;
  sum.merge(delta);
  EXPECT_EQ(sum[metrics::Counter::kPackIso], 7u);
}

// ---- Session lifecycle ------------------------------------------------------

TEST(TraceSession, OffByDefaultAndEmitsAreDropped) {
  EXPECT_FALSE(trace::enabled());
  trace::emit(Ev::kUltCreate, 1);  // must be a no-op, not a crash
  EXPECT_FALSE(trace::active());
}

TEST(TraceSession, StartStopCountsPerTypeAndBinding) {
  ASSERT_TRUE(trace::start(2, 64));
  EXPECT_TRUE(trace::enabled());
  EXPECT_FALSE(trace::start(2)) << "second session must be refused";

  trace::emit(Ev::kUltCreate, 7);  // unbound: dropped silently
  trace::bind_pe(0);
  trace::emit(Ev::kUltCreate, 8);
  trace::emit(Ev::kMsgSend, 0, 3, 64, 1);
  trace::bind_pe(1);
  trace::emit(Ev::kUltCreate, 9);
  trace::unbind_pe();

  const trace::Summary s = trace::stop();
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(s.npes, 2);
  EXPECT_EQ(s.by_type[static_cast<int>(Ev::kUltCreate)], 2u);
  EXPECT_EQ(s.by_type[static_cast<int>(Ev::kMsgSend)], 1u);
  EXPECT_EQ(s.emitted, 3u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(trace::last_summary().emitted, 3u);
}

TEST(TraceSession, DigestSelectsEventSubset) {
  ASSERT_TRUE(trace::start(1, 64));
  trace::bind_pe(0);
  trace::emit(Ev::kUltCreate, 1);
  trace::emit(Ev::kUltCreate, 2);
  trace::emit(Ev::kMsgSend, 0, 1, 8, 0);
  trace::unbind_pe();
  const trace::Summary s = trace::stop();

  const std::uint64_t d1 = s.digest({Ev::kUltCreate});
  const std::uint64_t d2 = s.digest({Ev::kUltCreate});
  EXPECT_EQ(d1, d2) << "digest must be a pure function of the counts";
  EXPECT_NE(s.digest({Ev::kUltCreate}), s.digest({Ev::kMsgSend}))
      << "different subsets must hash differently";
  EXPECT_NE(s.digest({Ev::kUltCreate, Ev::kMsgSend}), d1);
}

// ---- End-to-end export through a real machine -------------------------------

struct ExportCheck {
  int npes = 0;
  std::set<int> tids_with_events;
  int max_nesting = 0;
  bool has_cross_pe_flow = false;
  bool meta_ok = false;
};

/// Parses and structurally validates an exported trace. Fatal-asserts on
/// malformed JSON; fills the structural observations for the caller.
void validate_export(const std::string& path, int npes, ExportCheck* out) {
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "trace file missing or empty: " << path;
  Jv root;
  ASSERT_TRUE(JsonParser(text).parse(&root)) << "export is not valid JSON";
  ASSERT_EQ(root.kind, Jv::kObj);
  const Jv* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Jv::kArr);
  ASSERT_FALSE(events->arr.empty());

  out->npes = npes;
  std::map<int, int> depth;  // per-tid open B count
  // (s flow id, tid) of every flow start; a finish on a different tid with
  // a matching id is a cross-PE arrow.
  std::map<std::string, int> flow_starts;
  std::set<int> name_tracks;

  for (const Jv& e : events->arr) {
    ASSERT_EQ(e.kind, Jv::kObj);
    const Jv* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, Jv::kStr);
    const Jv* tid = e.get("tid");
    ASSERT_NE(tid, nullptr);
    const int t = static_cast<int>(tid->num);
    if (ph->str == "M") {
      const Jv* name = e.get("name");
      if (name != nullptr && name->str == "thread_name") name_tracks.insert(t);
      continue;
    }
    ASSERT_NE(e.get("ts"), nullptr) << "non-metadata event without ts";
    out->tids_with_events.insert(t);
    if (ph->str == "B") {
      ++depth[t];
      if (depth[t] > out->max_nesting) out->max_nesting = depth[t];
    } else if (ph->str == "E") {
      --depth[t];
      ASSERT_GE(depth[t], 0) << "unbalanced E on tid " << t;
    } else if (ph->str == "s" || ph->str == "f") {
      const Jv* id = e.get("id");
      ASSERT_NE(id, nullptr) << "flow event without id";
      if (ph->str == "s") {
        flow_starts[id->str] = t;
      } else {
        auto it = flow_starts.find(id->str);
        if (it != flow_starts.end() && it->second != t) {
          out->has_cross_pe_flow = true;
        }
      }
    }
  }
  for (const auto& [t, d] : depth) {
    EXPECT_EQ(d, 0) << "tid " << t << " ends with " << d << " open spans";
  }
  // One named track per PE.
  for (int pe = 0; pe < npes; ++pe) {
    EXPECT_TRUE(name_tracks.contains(pe)) << "no thread_name for PE " << pe;
  }
  const Jv* other = root.get("otherData");
  out->meta_ok = other != nullptr && other->kind == Jv::kObj;
}

TEST(TraceExport, EnvGatedMachineRunExportsValidJson) {
  const char* path = "trace_export_test.json";
  std::remove(path);
  ::setenv("MFC_TRACE", "1", 1);
  ::setenv("MFC_TRACE_FILE", path, 1);

  static cv::HandlerId h_inner = cv::register_handler([](cv::Message&&) {});
  // Self-send from inside a handler takes the inline-dispatch bypass, which
  // is what puts a nested handler span on the track (depth >= 2).
  static cv::HandlerId h_outer = cv::register_handler([](cv::Message&& m) {
    cv::send(cv::my_pe(), h_inner, m.payload.take());
  });

  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [](int pe) {
    // Cross-PE traffic for flow arrows, self-sends for nesting.
    for (int i = 0; i < 8; ++i) {
      cv::send_value((pe + 1) % 4, h_outer, i);
    }
    cv::barrier();
    cv::wait_quiescence();
  });

  ::unsetenv("MFC_TRACE");
  ::unsetenv("MFC_TRACE_FILE");

  ExportCheck check;
  validate_export(path, 4, &check);
  EXPECT_EQ(check.tids_with_events.size(), 4u)
      << "every PE must contribute events";
  EXPECT_GE(check.max_nesting, 2) << "inline self-send must nest spans";
  EXPECT_TRUE(check.has_cross_pe_flow)
      << "ring traffic must produce at least one cross-PE flow arrow";
  EXPECT_TRUE(check.meta_ok);
  EXPECT_GT(trace::last_summary().emitted, 0u);
}

TEST(TraceExport, ExplicitSessionSuppressesEnvAutoStart) {
  const char* env_path = "trace_should_not_exist.json";
  const char* own_path = "trace_explicit_test.json";
  std::remove(env_path);
  std::remove(own_path);
  ::setenv("MFC_TRACE", "1", 1);
  ::setenv("MFC_TRACE_FILE", env_path, 1);

  ASSERT_TRUE(trace::start(2));
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int) { cv::barrier(); });
  EXPECT_TRUE(trace::active()) << "machine must not stop the caller's session";
  bool ok = false;
  trace::stop_and_export(own_path, &ok);
  EXPECT_TRUE(ok);

  ::unsetenv("MFC_TRACE");
  ::unsetenv("MFC_TRACE_FILE");

  std::ifstream env_file(env_path);
  EXPECT_FALSE(env_file.good())
      << "env auto-export must not fire while an explicit session is active";
  ExportCheck check;
  validate_export(own_path, 2, &check);
  EXPECT_EQ(check.tids_with_events.size(), 2u);
}

}  // namespace
