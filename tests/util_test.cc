#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "util/queue.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/sysinfo.h"
#include "util/timer.h"

namespace {

TEST(Stats, RunningMatchesClosedForm) {
  mfc::RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Variance of 1..100 (sample): n(n+1)/12 with n=101 → 841.666...
  EXPECT_NEAR(s.variance(), 841.6667, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  mfc::Sample s;
  for (int i = 0; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
}

TEST(Stats, EmptyAndSingleElementEdgeCases) {
  // Empty: every accessor must return a defined zero, not UB on xs_[0].
  mfc::Sample empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  // Single element: every percentile collapses to it (no interpolation
  // partner exists).
  mfc::Sample one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(37.5), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(one.median(), 42.0);

  mfc::RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  rs.add(-3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), -3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0) << "n=1 sample variance is defined 0";
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), -3.0);
}

TEST(Stats, RunningStatsClearResetsEverything) {
  mfc::RunningStats rs;
  for (int i = 0; i < 10; ++i) rs.add(i * 1.5);
  rs.clear();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.max(), 0.0);
  // A cleared accumulator behaves like a fresh one.
  rs.add(5.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(Stats, ImbalanceRatio) {
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({4, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({3, 1}), 1.5);
}

TEST(Format, FormatDoubleBasicAndEdgeInputs) {
  EXPECT_EQ(mfc::format_double(1.5, 1), "1.5");
  EXPECT_EQ(mfc::format_double(1.25, 2), "1.25");
  EXPECT_EQ(mfc::format_double(0.0, 1), "0.0");
  EXPECT_EQ(mfc::format_double(0.0, 0), "0");
  EXPECT_EQ(mfc::format_double(2.5, 0), "3");  // round half up
  EXPECT_EQ(mfc::format_double(0.999, 2), "1.00");
  EXPECT_EQ(mfc::format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(mfc::format_double(-0.04, 1), "-0.0");
  EXPECT_EQ(mfc::format_double(3.14159, -2), "3") << "decimals clamps to 0";
  EXPECT_EQ(mfc::format_double(std::nan(""), 2), "nan");
  EXPECT_EQ(mfc::format_double(HUGE_VAL, 2), "inf");
  EXPECT_EQ(mfc::format_double(-HUGE_VAL, 2), "-inf");
  // Values too large for 64-bit integer scaling fall back to "%.0f", which
  // never prints a decimal separator — still locale-proof, still numeric.
  const std::string huge = mfc::format_double(1e30, 3);
  EXPECT_FALSE(huge.empty());
  EXPECT_EQ(huge.find(','), std::string::npos);
  EXPECT_EQ(huge.find('.'), std::string::npos);
  EXPECT_DOUBLE_EQ(std::strtod(huge.c_str(), nullptr), 1e30);
}

TEST(Format, FormatNsUnitsAndSigns) {
  EXPECT_EQ(mfc::format_ns(0.0), "0.0 ns");
  EXPECT_EQ(mfc::format_ns(12.34), "12.3 ns");
  EXPECT_EQ(mfc::format_ns(1500.0), "1.50 us");
  EXPECT_EQ(mfc::format_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(mfc::format_ns(3.0e9), "3.00 s");
  // Negative quantities pick the unit by magnitude and keep the sign —
  // the old %f path would have filed -5e9 under "ns".
  EXPECT_EQ(mfc::format_ns(-1500.0), "-1.50 us");
  EXPECT_EQ(mfc::format_ns(-5.0e9), "-5.00 s");
  EXPECT_EQ(mfc::format_ns(std::nan("")), "nan");
}

TEST(Format, DecimalPointSurvivesCommaLocales) {
  // If a comma-decimal locale is installed, formatting must not pick it up
  // (that was the bug: "1,5 ms" in machine-parsed reports). If none is
  // available in this image the test still covers the C-locale contract.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR"};
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old != nullptr ? old : "C";
  bool switched = false;
  for (const char* loc : candidates) {
    if (std::setlocale(LC_NUMERIC, loc) != nullptr) {
      switched = true;
      break;
    }
  }
  if (switched) {
    // Only meaningful if the locale actually uses ',' — glibc minimal
    // builds may alias these names to C behavior.
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.1f", 1.5);
    if (std::strchr(probe, ',') == nullptr) switched = false;
  }
  const std::string a = mfc::format_double(1234.5, 1);
  const std::string ns = mfc::format_ns(1.5e6);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(a, "1234.5") << (switched ? "comma locale leaked into output"
                                      : "C locale formatting broken");
  EXPECT_EQ(ns, "1.50 ms");
  EXPECT_EQ(a.find(','), std::string::npos);
}

TEST(Rng, DeterministicAndInRange) {
  mfc::SplitMix64 a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  mfc::SplitMix64 c(123);
  for (int i = 0; i < 1000; ++i) {
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(c.next_below(17), 17u);
  }
}

TEST(Timer, MonotoneAndPositive) {
  const double t0 = mfc::wall_time();
  const double c0 = mfc::thread_cpu_time();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(mfc::wall_time(), t0);
  EXPECT_GE(mfc::thread_cpu_time(), c0);
}

TEST(Queue, FifoSingleThread) {
  mfc::MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Queue, MultiProducerDeliversAll) {
  mfc::MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kEach = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<bool> seen(kProducers * kEach, false);
  int got = 0;
  while (got < kProducers * kEach) {
    auto v = q.pop_wait();
    if (!v) continue;
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
}

TEST(Queue, WakeUnblocksWithoutData) {
  mfc::MpscQueue<int> q;
  std::thread waker([&q] { q.wake(); });
  auto v = q.pop_wait();  // must not hang
  EXPECT_FALSE(v.has_value());
  waker.join();
}

// Every MPSC consumer in the machine layer relies on per-producer FIFO:
// messages from one PE must arrive in the order that PE sent them, even
// while other producers interleave. Encode each item as (producer, seq) and
// assert each producer's sequence numbers arrive strictly ascending.
TEST(Queue, MultiProducerStressPerProducerFifo) {
  mfc::MpscQueue<int> q;
  constexpr int kProducers = 8;
  constexpr int kEach = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int got = 0;
  while (got < kProducers * kEach) {
    auto v = q.pop_wait();
    if (!v) continue;
    const int p = *v / kEach;
    const int seq = *v % kEach;
    ASSERT_EQ(seq, next_seq[static_cast<std::size_t>(p)])
        << "producer " << p << " reordered";
    ++next_seq[static_cast<std::size_t>(p)];
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kEach);
}

namespace {
struct LinkedItem {
  int producer = 0;
  int seq = 0;
  LinkedItem* next = nullptr;
};
}  // namespace

TEST(IntrusiveChannel, MultiProducerStressPerProducerFifo) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  constexpr int kProducers = 8;
  constexpr int kEach = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(new LinkedItem{p, i});
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int got = 0;
  while (got < kProducers * kEach) {
    LinkedItem* item = q.pop_wait();
    if (item == nullptr) continue;
    ASSERT_EQ(item->seq, next_seq[static_cast<std::size_t>(item->producer)])
        << "producer " << item->producer << " reordered";
    ++next_seq[static_cast<std::size_t>(item->producer)];
    ++got;
    delete item;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.consumer_empty());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kEach);
}

TEST(IntrusiveChannel, ConsumerEmptyTracksBatchAndInbox) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  EXPECT_TRUE(q.consumer_empty());
  q.push(new LinkedItem{0, 0});
  q.push(new LinkedItem{0, 1});
  EXPECT_FALSE(q.consumer_empty());  // inbox non-empty
  LinkedItem* a = q.try_pop();       // drains inbox into the private batch
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->seq, 0);
  EXPECT_FALSE(q.consumer_empty());  // batch still holds item 1
  LinkedItem* b = q.try_pop();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->seq, 1);
  EXPECT_TRUE(q.consumer_empty());
  delete a;
  delete b;
}

TEST(IntrusiveChannel, WakeUnblocksWithoutData) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  std::thread waker([&q] { q.wake(); });
  LinkedItem* item = q.pop_wait();  // must not hang
  EXPECT_EQ(item, nullptr);
  waker.join();
}

TEST(SysInfo, ReportsSaneValues) {
  const auto info = mfc::query_sysinfo();
  EXPECT_FALSE(info.arch.empty());
  EXPECT_GE(info.ncpus, 1);
  EXPECT_GE(info.page_size, 4096u);
}

TEST(SysInfo, CapabilitiesOnLinux) {
  const auto caps = mfc::probe_capabilities();
  // This container demonstrated all of these in the pre-build probe; the
  // portability table (Table 1) depends on them.
  EXPECT_TRUE(caps.mmap_fixed);
  EXPECT_TRUE(caps.big_reservation);
}

TEST(Format, AdaptiveUnits) {
  EXPECT_EQ(mfc::format_ns(12.0), "12.0 ns");
  EXPECT_EQ(mfc::format_ns(4200.0), "4.20 us");
  EXPECT_EQ(mfc::format_ns(3.5e6), "3.50 ms");
  EXPECT_EQ(mfc::format_ns(2.1e9), "2.10 s");
}

}  // namespace
