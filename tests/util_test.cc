#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/queue.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/sysinfo.h"
#include "util/timer.h"

namespace {

TEST(Stats, RunningMatchesClosedForm) {
  mfc::RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Variance of 1..100 (sample): n(n+1)/12 with n=101 → 841.666...
  EXPECT_NEAR(s.variance(), 841.6667, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  mfc::Sample s;
  for (int i = 0; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
}

TEST(Stats, ImbalanceRatio) {
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({4, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(mfc::imbalance_ratio({3, 1}), 1.5);
}

TEST(Rng, DeterministicAndInRange) {
  mfc::SplitMix64 a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  mfc::SplitMix64 c(123);
  for (int i = 0; i < 1000; ++i) {
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(c.next_below(17), 17u);
  }
}

TEST(Timer, MonotoneAndPositive) {
  const double t0 = mfc::wall_time();
  const double c0 = mfc::thread_cpu_time();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(mfc::wall_time(), t0);
  EXPECT_GE(mfc::thread_cpu_time(), c0);
}

TEST(Queue, FifoSingleThread) {
  mfc::MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Queue, MultiProducerDeliversAll) {
  mfc::MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kEach = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<bool> seen(kProducers * kEach, false);
  int got = 0;
  while (got < kProducers * kEach) {
    auto v = q.pop_wait();
    if (!v) continue;
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
}

TEST(Queue, WakeUnblocksWithoutData) {
  mfc::MpscQueue<int> q;
  std::thread waker([&q] { q.wake(); });
  auto v = q.pop_wait();  // must not hang
  EXPECT_FALSE(v.has_value());
  waker.join();
}

// Every MPSC consumer in the machine layer relies on per-producer FIFO:
// messages from one PE must arrive in the order that PE sent them, even
// while other producers interleave. Encode each item as (producer, seq) and
// assert each producer's sequence numbers arrive strictly ascending.
TEST(Queue, MultiProducerStressPerProducerFifo) {
  mfc::MpscQueue<int> q;
  constexpr int kProducers = 8;
  constexpr int kEach = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int got = 0;
  while (got < kProducers * kEach) {
    auto v = q.pop_wait();
    if (!v) continue;
    const int p = *v / kEach;
    const int seq = *v % kEach;
    ASSERT_EQ(seq, next_seq[static_cast<std::size_t>(p)])
        << "producer " << p << " reordered";
    ++next_seq[static_cast<std::size_t>(p)];
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kEach);
}

namespace {
struct LinkedItem {
  int producer = 0;
  int seq = 0;
  LinkedItem* next = nullptr;
};
}  // namespace

TEST(IntrusiveChannel, MultiProducerStressPerProducerFifo) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  constexpr int kProducers = 8;
  constexpr int kEach = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(new LinkedItem{p, i});
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int got = 0;
  while (got < kProducers * kEach) {
    LinkedItem* item = q.pop_wait();
    if (item == nullptr) continue;
    ASSERT_EQ(item->seq, next_seq[static_cast<std::size_t>(item->producer)])
        << "producer " << item->producer << " reordered";
    ++next_seq[static_cast<std::size_t>(item->producer)];
    ++got;
    delete item;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.consumer_empty());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kEach);
}

TEST(IntrusiveChannel, ConsumerEmptyTracksBatchAndInbox) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  EXPECT_TRUE(q.consumer_empty());
  q.push(new LinkedItem{0, 0});
  q.push(new LinkedItem{0, 1});
  EXPECT_FALSE(q.consumer_empty());  // inbox non-empty
  LinkedItem* a = q.try_pop();       // drains inbox into the private batch
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->seq, 0);
  EXPECT_FALSE(q.consumer_empty());  // batch still holds item 1
  LinkedItem* b = q.try_pop();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->seq, 1);
  EXPECT_TRUE(q.consumer_empty());
  delete a;
  delete b;
}

TEST(IntrusiveChannel, WakeUnblocksWithoutData) {
  mfc::IntrusiveMpscChannel<LinkedItem> q;
  std::thread waker([&q] { q.wake(); });
  LinkedItem* item = q.pop_wait();  // must not hang
  EXPECT_EQ(item, nullptr);
  waker.join();
}

TEST(SysInfo, ReportsSaneValues) {
  const auto info = mfc::query_sysinfo();
  EXPECT_FALSE(info.arch.empty());
  EXPECT_GE(info.ncpus, 1);
  EXPECT_GE(info.page_size, 4096u);
}

TEST(SysInfo, CapabilitiesOnLinux) {
  const auto caps = mfc::probe_capabilities();
  // This container demonstrated all of these in the pre-build probe; the
  // portability table (Table 1) depends on them.
  EXPECT_TRUE(caps.mmap_fixed);
  EXPECT_TRUE(caps.big_reservation);
}

TEST(Format, AdaptiveUnits) {
  EXPECT_EQ(mfc::format_ns(12.0), "12.0 ns");
  EXPECT_EQ(mfc::format_ns(4200.0), "4.20 us");
  EXPECT_EQ(mfc::format_ns(3.5e6), "3.50 ms");
  EXPECT_EQ(mfc::format_ns(2.1e9), "2.10 s");
}

}  // namespace
