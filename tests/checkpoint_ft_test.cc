// Checkpoint codec + error-path tests for the ft layer (labeled `ft`).
//
// The framed codec (magic / version / payload_len / crc32) is the trust
// boundary between the PUP layer and bytes that arrive from storage or a
// buddy PE: the fuzz tests below walk every truncation length and every
// single-byte flip of a real frame and require a typed error — never a
// crash, never a silent kOk.
//
// Death tests exercise the MFC_CHECK guards behind restore: geometry
// mismatch (restoring under a different isomalloc reservation) and
// installing a checkpoint image over a still-live thread. They fork, so
// they are compiled out under ThreadSanitizer (MFC_TSAN).
#include "migrate/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "iso/region.h"
#include "migrate/iso_thread.h"
#include "migrate/migratable.h"
#include "ult/scheduler.h"

namespace {

using mfc::migrate::Checkpoint;
using mfc::migrate::CodecError;
using mfc::migrate::IsoThread;
using mfc::migrate::MigratableThread;
using mfc::migrate::ThreadImage;
using mfc::ult::Scheduler;
using mfc::ult::State;

class CheckpointFtFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 4;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 512;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

std::vector<char> patterned_user_data(std::size_t n) {
  std::vector<char> bytes(n);
  for (std::size_t i = 0; i < n; ++i)
    bytes[i] = static_cast<char>((i * 131) ^ (i >> 3));
  return bytes;
}

/// Parks one IsoThread that writes `tag` into *out when resumed, and adds
/// it to `ckpt` destructively (pack + delete, migration-to-memory style).
void park_and_add(Scheduler& sched, Checkpoint& ckpt, int* out, int tag) {
  auto* t = new IsoThread(
      [&sched, out, tag] {
        sched.suspend();  // ---- checkpointed here ----
        *out = tag;
      },
      /*birth_pe=*/0);
  sched.ready(t);
  sched.run_until_idle();
  ASSERT_EQ(t->state(), State::kSuspended);
  ckpt.add(t);
  delete t;
}

TEST_F(CheckpointFtFixture, EncodeDecodeRoundTripsThreadsAndUserData) {
  Scheduler sched;
  int result = 0;
  Checkpoint ckpt;
  park_and_add(sched, ckpt, &result, 42);
  const std::vector<char> user = patterned_user_data(777);
  ckpt.set_user_data(user);

  const std::vector<char> frame = ckpt.encode();
  ASSERT_GT(frame.size(), user.size());

  Checkpoint back;
  ASSERT_EQ(Checkpoint::decode(frame, &back), CodecError::kOk);
  EXPECT_EQ(back.user_data(), user);
  ASSERT_EQ(back.thread_count(), 1u);

  // The decoded checkpoint restores a runnable thread at the original
  // addresses — resume it and let it prove its state survived the frame.
  std::vector<MigratableThread*> threads = back.restore_all(0);
  ASSERT_EQ(threads.size(), 1u);
  sched.ready(threads[0]);
  sched.run_until_idle();
  EXPECT_EQ(threads[0]->state(), State::kDone);
  EXPECT_EQ(result, 42);
  delete threads[0];
}

TEST_F(CheckpointFtFixture, DecodeRejectsEveryTruncation) {
  Checkpoint ckpt;
  ckpt.set_user_data(patterned_user_data(1024));
  const std::vector<char> frame = ckpt.encode();

  for (std::size_t len = 0; len < frame.size(); ++len) {
    Checkpoint out;
    const CodecError err = Checkpoint::decode(frame.data(), len, &out);
    ASSERT_NE(err, CodecError::kOk) << "truncation to " << len << " bytes";
  }
}

TEST_F(CheckpointFtFixture, DecodeRejectsEverySingleByteFlip) {
  Checkpoint ckpt;
  ckpt.set_user_data(patterned_user_data(1024));
  const std::vector<char> frame = ckpt.encode();

  // Frame layout: [magic 0..4)[version 4..8)[payload_len 8..16)[crc 16..20).
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<char> bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0xFF);
    Checkpoint out;
    const CodecError err = Checkpoint::decode(bad, &out);
    CodecError want;
    if (i < 4) {
      want = CodecError::kBadMagic;
    } else if (i < 8) {
      want = CodecError::kBadVersion;
    } else if (i < 16) {
      want = CodecError::kTruncated;  // declared length no longer matches
    } else {
      want = CodecError::kBadCrc;  // crc field or payload byte
    }
    ASSERT_EQ(err, want) << "flip at offset " << i;
  }
}

TEST_F(CheckpointFtFixture, DecodeRejectsForeignBytes) {
  const std::vector<char> noise = patterned_user_data(256);
  Checkpoint out;
  EXPECT_EQ(Checkpoint::decode(noise, &out), CodecError::kBadMagic);
  EXPECT_EQ(Checkpoint::decode(noise.data(), 3, &out), CodecError::kTruncated);
}

TEST_F(CheckpointFtFixture, GatherEncodeMatchesLegacyEncodeExactly) {
  // The zero-copy encoder must be frame-compatible with Checkpoint: same
  // threads + same user data ⇒ the same bytes, whether the sources are
  // borrowed manifests or pre-serialized image blobs. This is what lets
  // the ft capture path swap encoders per mode without versioning the
  // wire format.
  Scheduler sched;
  int r1 = 0, r2 = 0;
  auto* a = new IsoThread(
      [&sched, &r1] {
        sched.suspend();
        r1 = 11;
      },
      /*birth_pe=*/0);
  auto* b = new IsoThread(
      [&sched, &r2] {
        sched.suspend();
        r2 = 22;
      },
      /*birth_pe=*/1);
  sched.ready(a);
  sched.ready(b);
  sched.run_until_idle();
  ASSERT_EQ(a->state(), State::kSuspended);
  ASSERT_EQ(b->state(), State::kSuspended);
  const std::vector<char> user = patterned_user_data(333);

  // Zero-copy: borrow manifests straight off the parked threads.
  const mfc::migrate::ImageManifest ma = a->pack_manifest();
  const mfc::migrate::ImageManifest mb = b->pack_manifest();
  mfc::migrate::GatherCheckpoint gather;
  gather.set_user_data(user);
  gather.add_manifest(ma);
  gather.add_manifest(mb);
  const std::vector<char> gather_frame = gather.encode();

  // Mixed sources: manifest for a, pre-serialized bytes for b (the shape
  // the dirty-run cache produces).
  const std::vector<char> b_bytes = mb.to_wire();
  mfc::migrate::GatherCheckpoint mixed;
  mixed.set_user_data(user);
  mixed.add_manifest(ma);
  mixed.add_image_bytes(b_bytes.data(), b_bytes.size());
  const std::vector<char> mixed_frame = mixed.encode();
  EXPECT_EQ(mixed_frame, gather_frame);

  // Legacy destructive capture of the very same suspend points.
  Checkpoint legacy;
  legacy.set_user_data(user);
  legacy.add(a);
  legacy.add(b);
  delete a;
  delete b;
  const std::vector<char> legacy_frame = legacy.encode();
  ASSERT_EQ(gather_frame.size(), legacy_frame.size());
  EXPECT_EQ(gather_frame, legacy_frame);

  // And the gather frame is a real checkpoint: decode, restore, resume.
  Checkpoint back;
  ASSERT_EQ(Checkpoint::decode(gather_frame, &back), CodecError::kOk);
  EXPECT_EQ(back.user_data(), user);
  std::vector<MigratableThread*> threads = back.restore_all(0);
  ASSERT_EQ(threads.size(), 2u);
  for (auto* t : threads) sched.ready(t);
  sched.run_until_idle();
  EXPECT_EQ(r1, 11);
  EXPECT_EQ(r2, 22);
  for (auto* t : threads) delete t;
}

#ifndef MFC_TSAN

TEST_F(CheckpointFtFixture, RestoreUnderDifferentGeometryDies) {
  Scheduler sched;
  int result = 0;
  Checkpoint ckpt;
  park_and_add(sched, ckpt, &result, 1);

  // Serialize so the child can restore from bytes after remapping the
  // region — exactly the "restore into a wrong-shaped process" mistake.
  const std::vector<char> frame = ckpt.encode();
  EXPECT_DEATH(
      {
        Checkpoint loaded;
        if (Checkpoint::decode(frame, &loaded) != CodecError::kOk) abort();
        mfc::iso::Region::shutdown();
        mfc::iso::Region::Config other;
        other.npes = 4;
        other.slot_bytes = 128 * 1024;  // different slot size than SetUp()
        other.slots_per_pe = 256;
        mfc::iso::Region::init(other);
        loaded.restore_all(0);
      },
      "geometry");
}

TEST_F(CheckpointFtFixture, RestoreOverLiveThreadDies) {
  Scheduler sched;
  bool resumed = false;
  auto* t = new IsoThread(
      [&sched, &resumed] {
        sched.suspend();
        resumed = true;
      },
      /*birth_pe=*/0);
  sched.ready(t);
  sched.run_until_idle();
  ASSERT_EQ(t->state(), State::kSuspended);

  // Non-destructive capture: pack, keep a copy, unpack the original back in
  // place (the ft layer's checkpoint path). The thread is now live again.
  ThreadImage image = t->pack();
  Checkpoint ckpt;
  ckpt.add_image(image);  // copy
  delete t;
  MigratableThread* live = MigratableThread::unpack(std::move(image), 0);
  ASSERT_NE(live, nullptr);

  // Restoring the checkpoint copy while `live` still owns the slots must
  // abort at the residency guard, not corrupt the running thread's stack.
  EXPECT_DEATH(ckpt.restore_all(0), "resident slot");

  sched.ready(live);
  sched.run_until_idle();
  EXPECT_EQ(live->state(), State::kDone);
  EXPECT_TRUE(resumed);
  delete live;
}

#endif  // MFC_TSAN

}  // namespace
