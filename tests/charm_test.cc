// Event-driven migratable object array tests (paper §2.4, §3.2).
#include "charm/array.h"

#include <gtest/gtest.h>

#include <atomic>

#include "converse/machine.h"

namespace {

namespace cv = mfc::converse;
using mfc::charm::Array;
using mfc::charm::Element;

// A counter object: tag 0 adds the payload int; tag 1 contributes its total
// to reduction (payload = reduction id); tag 2 migrates itself to payload pe.
struct Counter : Element {
  long total = 0;
  int hops = 0;

  void on_message(int tag, std::vector<char> payload) override {
    switch (tag) {
      case 0:
        total += [&] {
          mfc::pup::MemUnpacker u(payload.data(), payload.size());
          int v = 0;
          mfc::pup::pup(u, v);
          return v;
        }();
        break;
      case 1: {
        mfc::pup::MemUnpacker u(payload.data(), payload.size());
        int red_id = 0;
        mfc::pup::pup(u, red_id);
        mfc::charm::find_array(array_id())
            ->contribute(red_id, static_cast<double>(total));
        break;
      }
      case 2: {
        mfc::pup::MemUnpacker u(payload.data(), payload.size());
        int dest = 0;
        mfc::pup::pup(u, dest);
        ++hops;
        mfc::charm::find_array(array_id())->migrate(index(), dest);
        break;
      }
      default:
        FAIL() << "unknown tag";
    }
  }

  void pup(mfc::pup::Er& p) override { p | total | hops; }
};

TEST(Charm, ElementsBornOnHomePes) {
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(1, 16);
    cv::barrier();
    EXPECT_EQ(arr.local_count(), 4u);
    for (int index : arr.local_indices()) {
      EXPECT_EQ(index % 4, pe);
      EXPECT_EQ(arr.home_pe(index), pe);
    }
    cv::barrier();
  });
}

TEST(Charm, MessagesReachElementsAnywhere) {
  static std::atomic<long> grand_total{0};
  grand_total = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(2, 8);
    cv::barrier();
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) {
        int v = i + 1;
        arr.send_value(i, 0, v);
      }
    }
    cv::barrier();
    cv::barrier();  // allow deliveries to drain
    for (int index : arr.local_indices()) {
      grand_total += arr.local(index)->total;
    }
    cv::barrier();
  });
  EXPECT_EQ(grand_total.load(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(Charm, ReductionSumsAllElements) {
  static std::atomic<double> result{-1};
  result = -1;
  cv::Machine::Config cfg;
  cfg.npes = 3;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(3, 12);
    if (pe == 0) arr.on_reduction([](double r) { result.store(r); });
    cv::barrier();
    if (pe == 0) {
      for (int i = 0; i < 12; ++i) {
        int v = 10;
        arr.send_value(i, 0, v);
      }
      int red_id = 7;
      arr.broadcast(1, mfc::pup::to_bytes(red_id));
    }
    cv::barrier();
    cv::barrier();
    cv::barrier();
  });
  EXPECT_EQ(result.load(), 120.0);
}

TEST(Charm, MigrationPreservesStateAndDelivery) {
  static std::atomic<long> final_total{0};
  final_total = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(4, 4);
    cv::barrier();
    // Round 1: accumulate, then migrate element 0 (self-migration) to PE 3.
    if (pe == 0) {
      int v = 5;
      arr.send_value(0, 0, v);
      int dest = 3;
      arr.send_value(0, 2, dest);
      // Keep sending while the element is in flight: the home must buffer.
      for (int k = 0; k < 10; ++k) {
        int one = 1;
        arr.send_value(0, 0, one);
      }
    }
    cv::barrier();
    cv::barrier();
    cv::barrier();
    // Element 0 now lives on PE 3 with total = 5 + 10.
    if (pe == 3) {
      Counter* c = arr.local(0);
      if (c == nullptr) {
        ADD_FAILURE() << "element 0 did not arrive on PE 3";
      } else {
        EXPECT_EQ(c->hops, 1);
        final_total.store(c->total);
      }
    }
    if (pe == 0) {
      EXPECT_EQ(arr.local(0), nullptr);
    }
    cv::barrier();
  });
  EXPECT_EQ(final_total.load(), 15);
}

TEST(Charm, ChainedMigrationsFollowTheElement) {
  static std::atomic<int> hops_seen{0};
  static std::atomic<long> total_seen{0};
  hops_seen = 0;
  total_seen = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(5, 1);  // single element, home PE 0
    cv::barrier();
    if (pe == 0) {
      // Bounce the element around the machine, mixing adds between hops.
      for (int hop = 1; hop <= 6; ++hop) {
        int dest = hop % 4;
        arr.send_value(0, 2, dest);
        int v = hop;
        arr.send_value(0, 0, v);
      }
    }
    for (int i = 0; i < 8; ++i) cv::barrier();  // generous drain
    Counter* c = arr.local(0);
    if (c != nullptr) {
      hops_seen.store(c->hops);
      total_seen.store(c->total);
    }
    cv::barrier();
  });
  EXPECT_EQ(hops_seen.load(), 6);
  EXPECT_EQ(total_seen.load(), 1 + 2 + 3 + 4 + 5 + 6);
}

TEST(Charm, PerElementLoadIsTracked) {
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [&](int pe) {
    Array<Counter> arr(6, 2);
    cv::barrier();
    if (pe == 0) {
      for (int k = 0; k < 100; ++k) {
        int v = 1;
        arr.send_value(0, 0, v);
      }
    }
    cv::barrier();
    cv::barrier();
    if (pe == 0) {
      EXPECT_GE(arr.local(0)->accumulated_load(), 0.0);
      EXPECT_EQ(arr.local(0)->total, 100);
    }
    cv::barrier();
  });
}

}  // namespace
