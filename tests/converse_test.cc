// Converse machine-layer tests: PEs, active messages, barriers.
#include "converse/machine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

namespace {

namespace cv = mfc::converse;

TEST(Converse, EveryPeRunsEntryExactlyOnce) {
  std::mutex mu;
  std::set<int> seen;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(pe).second);
    EXPECT_EQ(cv::my_pe(), pe);
    EXPECT_EQ(cv::num_pes(), 4);
  });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Converse, PointToPointMessageDelivery) {
  static std::atomic<int> received{0};
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    int v = m.as<int>();
    EXPECT_EQ(v, 1000 + m.src_pe);
    received.fetch_add(1);
  });
  received = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int pe) {
    int value = 1000 + pe;
    cv::send_value((pe + 1) % 4, h, value);
    cv::barrier();  // keep the machine alive until delivery
    cv::barrier();
  });
  EXPECT_EQ(received.load(), 4);
}

TEST(Converse, BroadcastReachesAllPes) {
  static std::atomic<int> hits{0};
  static cv::HandlerId h =
      cv::register_handler([](cv::Message&&) { hits.fetch_add(1); });
  hits = 0;
  cv::Machine::Config cfg;
  cfg.npes = 3;
  cv::Machine::run(cfg, [&](int pe) {
    if (pe == 0) cv::broadcast(h, {});
    cv::barrier();
  });
  EXPECT_EQ(hits.load(), 3);
}

TEST(Converse, RepeatedBarriersStayInLockstep) {
  static std::atomic<int> counter{0};
  counter = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [&](int) {
    for (int round = 0; round < 20; ++round) {
      // Before the barrier of round r, the counter can be at most 4*(r+1);
      // after it, at least 4*(r+1) — lockstep means no PE races ahead.
      counter.fetch_add(1);
      cv::barrier();
      EXPECT_GE(counter.load(), 4 * (round + 1));
      cv::barrier();
    }
  });
  EXPECT_EQ(counter.load(), 80);
}

TEST(Converse, HandlersCanResumeBlockedThreads) {
  // The blocking-receive pattern AMPI is built on: a ULT suspends, a
  // message handler readies it.
  static std::atomic<int> resumed{0};
  struct Wake {
    std::uintptr_t thread_ptr;
    void pup(mfc::pup::Er& p) { p | thread_ptr; }
  };
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    auto wake = m.as<Wake>();
    cv::ready_thread(reinterpret_cast<mfc::ult::Thread*>(wake.thread_ptr));
    resumed.fetch_add(1);
  });
  resumed = 0;
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [&](int pe) {
    if (pe == 0) {
      // Tell PE0's own handler (via self-send) to wake us — exercises the
      // suspend/handler/ready cycle on one PE.
      Wake wake{reinterpret_cast<std::uintptr_t>(cv::pe_scheduler().running())};
      cv::send_value(0, h, wake);
      cv::pe_scheduler().suspend();
    }
    cv::barrier();
  });
  EXPECT_EQ(resumed.load(), 1);
}

TEST(Converse, MessageCountersAdvance) {
  cv::Machine::Config cfg;
  cfg.npes = 2;
  static cv::HandlerId h = cv::register_handler([](cv::Message&&) {});
  cv::Machine::run(cfg, [&](int pe) {
    if (pe == 0) {
      for (int i = 0; i < 10; ++i) cv::send(1, h, {});
    }
    EXPECT_GT(cv::messages_sent(), 0u);  // at least the barrier traffic
    cv::barrier();
  });
}

TEST(Converse, LargePayloadsSurviveTransit) {
  static std::atomic<bool> ok{false};
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    auto v = m.as<std::vector<std::uint64_t>>();
    bool good = v.size() == 100000;
    for (std::size_t i = 0; i < v.size(); ++i) good = good && v[i] == i * i;
    ok.store(good);
  });
  ok = false;
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [&](int pe) {
    if (pe == 0) {
      std::vector<std::uint64_t> big(100000);
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * i;
      cv::send_value(1, h, big);
    }
    cv::barrier();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Converse, SinglePeMachineWorks) {
  int ran = 0;
  cv::Machine::Config cfg;
  cfg.npes = 1;
  cv::Machine::run(cfg, [&](int pe) {
    EXPECT_EQ(pe, 0);
    cv::barrier();
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(Converse, QuiescenceUnderMessageStorm) {
  // Each seed message fans out two children per hop until its TTL expires —
  // a storm whose in-flight population grows before it dies out, crossing
  // every messaging path (remote sends, self-send fast path, pooled
  // recycling). wait_quiescence() must not fire early: when it returns,
  // every PE must observe the storm's exact final handler count. Runs in
  // both machine modes so the lock-free path and the mutex baseline honor
  // the same QD semantics.
  struct Hop {
    std::int32_t ttl = 0;
    void pup(mfc::pup::Er& p) { p | ttl; }
  };
  static std::atomic<long> storm_hits{0};
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    auto hop = m.as<Hop>();
    if (hop.ttl > 0) {
      Hop child{hop.ttl - 1};
      const int npes = cv::num_pes();
      cv::send_value((cv::my_pe() + 1) % npes, h, child);
      cv::send_value(cv::my_pe(), h, child);  // exercises the inline path
    }
    storm_hits.fetch_add(1, std::memory_order_relaxed);
  });
  constexpr int kNpes = 4;
  constexpr int kSeeds = 4;
  constexpr int kTtl = 6;
  // Fan-out 2 per hop: one seed yields 2^(ttl+1) - 1 handler runs.
  constexpr long kExpected =
      static_cast<long>(kNpes) * kSeeds * ((1L << (kTtl + 1)) - 1);
  for (bool baseline : {false, true}) {
    storm_hits = 0;
    cv::Machine::Config cfg;
    cfg.npes = kNpes;
    cfg.mutex_baseline = baseline;
    cv::Machine::run(cfg, [&](int pe) {
      for (int s = 0; s < kSeeds; ++s) {
        Hop seed{kTtl};
        cv::send_value((pe + s) % kNpes, h, seed);
      }
      cv::wait_quiescence();
      EXPECT_EQ(storm_hits.load(), kExpected)
          << (baseline ? "mutex_baseline" : "lockfree");
    });
    EXPECT_EQ(storm_hits.load(), kExpected);
  }
}

TEST(Converse, MachineRunsBackToBack) {
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> entries{0};
    cv::Machine::Config cfg;
    cfg.npes = 2;
    cv::Machine::run(cfg, [&](int) { entries.fetch_add(1); });
    EXPECT_EQ(entries.load(), 2);
  }
}

}  // namespace
