// Malloc-interposition tests: this binary links mfc_isohook, so the global
// malloc/free/calloc/realloc symbols route through the isomalloc heap when
// a migratable-thread context is active (paper §3.4.2: "allows unmodified
// applications to use migratable thread memory for their heap data").
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "iso/heap.h"
#include "iso/region.h"
#include "migrate/iso_thread.h"
#include "pup/pup.h"
#include "ult/scheduler.h"

namespace {

using mfc::iso::Region;
using mfc::migrate::IsoThread;
using mfc::migrate::MigratableThread;
using mfc::migrate::ThreadImage;
using mfc::ult::Scheduler;

class HookFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 512;
    Region::init(cfg);
  }
  void TearDown() override { Region::shutdown(); }
};

TEST_F(HookFixture, PlainMallocRoutesByContext) {
  // Outside any thread context: libc memory.
  void* outside = std::malloc(64);
  EXPECT_FALSE(Region::instance().contains(outside));

  Scheduler sched;
  void* inside = nullptr;
  IsoThread t([&] { inside = std::malloc(64); }, 0);
  sched.ready(&t);
  sched.run_until_idle();
  ASSERT_NE(inside, nullptr);
  EXPECT_TRUE(Region::instance().contains(inside))
      << "allocation made inside a migratable thread must come from its "
         "isomalloc heap";

  // free() routes by address from any context.
  std::free(inside);
  std::free(outside);
}

TEST_F(HookFixture, OperatorNewAndStdContainersRoute) {
  Scheduler sched;
  bool ok = false;
  IsoThread t(
      [&] {
        // std::vector and std::string allocate through operator new, which
        // glibc implements over malloc — all captured by the hook.
        auto* v = new std::vector<double>(1000, 3.5);
        std::string s(5000, 'x');
        ok = Region::instance().contains(v->data()) &&
             Region::instance().contains(s.data());
        delete v;
      },
      0);
  sched.ready(&t);
  sched.run_until_idle();
  EXPECT_TRUE(ok);
}

TEST_F(HookFixture, UnmodifiedCodeMigratesItsHeap) {
  // The paper's punchline: code that calls plain malloc — knowing nothing
  // about the runtime — migrates with its heap intact.
  Scheduler sched;
  static bool after_ok;
  after_ok = false;
  auto* t = new IsoThread(
      [] {
        char* buf = static_cast<char*>(std::malloc(10000));
        std::memset(buf, 0x77, 10000);
        auto* numbers = new long[500];
        for (int i = 0; i < 500; ++i) numbers[i] = i * 3L;

        Scheduler::current().suspend();  // ---- migrated here ----

        bool ok = true;
        for (int i = 0; i < 10000; ++i) ok = ok && buf[i] == 0x77;
        for (int i = 0; i < 500; ++i) ok = ok && numbers[i] == i * 3L;
        std::free(buf);
        delete[] numbers;
        after_ok = ok;
      },
      0);
  sched.ready(t);
  sched.run_until_idle();
  ThreadImage image = t->pack();
  auto wire = mfc::pup::to_bytes(image);
  delete t;

  ThreadImage arrived;
  mfc::pup::from_bytes(wire, arrived);
  auto* t2 = MigratableThread::unpack(std::move(arrived), 1);
  sched.ready(t2);
  sched.run_until_idle();
  EXPECT_TRUE(after_ok);
  delete t2;
}

TEST_F(HookFixture, CallocAndReallocRoute) {
  Scheduler sched;
  bool ok = false;
  IsoThread t(
      [&] {
        auto* z = static_cast<unsigned char*>(std::calloc(100, 4));
        bool zeroed = true;
        for (int i = 0; i < 400; ++i) zeroed = zeroed && z[i] == 0;
        auto* grown = static_cast<unsigned char*>(std::realloc(z, 4000));
        ok = zeroed && Region::instance().contains(grown);
        std::free(grown);
      },
      0);
  sched.ready(&t);
  sched.run_until_idle();
  EXPECT_TRUE(ok);
}

TEST_F(HookFixture, CrossContextFreeIsSafe) {
  Scheduler sched;
  void* from_thread = nullptr;
  IsoThread t([&] { from_thread = std::malloc(128); }, 0);
  sched.ready(&t);
  sched.run_until_idle();
  ASSERT_TRUE(Region::instance().contains(from_thread));
  // Freed from the main context (no thread heap active): address routing
  // must still find the right allocator.
  std::free(from_thread);
}

TEST(HookNoRegion, FallsThroughToLibcWhenUninitialized) {
  void* p = std::malloc(32);
  ASSERT_NE(p, nullptr);
  std::free(p);
}

}  // namespace
