// User-level thread and scheduler tests (paper §2.3).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ult/scheduler.h"
#include "ult/thread.h"

namespace {

using mfc::ult::Scheduler;
using mfc::ult::StandardThread;
using mfc::ult::State;
using mfc::ult::Thread;

TEST(Ult, RunsToCompletion) {
  Scheduler sched;
  bool ran = false;
  StandardThread t([&] { ran = true; });
  sched.ready(&t);
  EXPECT_TRUE(sched.run_one());
  EXPECT_TRUE(ran);
  EXPECT_EQ(t.state(), State::kDone);
  EXPECT_FALSE(sched.run_one());
}

TEST(Ult, YieldInterleavesFairly) {
  Scheduler sched;
  std::string trace;
  StandardThread a([&] {
    for (int i = 0; i < 3; ++i) {
      trace += 'a';
      sched.yield();
    }
  });
  StandardThread b([&] {
    for (int i = 0; i < 3; ++i) {
      trace += 'b';
      sched.yield();
    }
  });
  sched.ready(&a);
  sched.ready(&b);
  sched.run_until_idle();
  EXPECT_EQ(trace, "ababab");
  EXPECT_EQ(a.state(), State::kDone);
  EXPECT_EQ(b.state(), State::kDone);
}

TEST(Ult, SuspendBlocksUntilResumed) {
  Scheduler sched;
  int phase = 0;
  StandardThread waiter([&] {
    phase = 1;
    sched.suspend();
    phase = 2;
  });
  sched.ready(&waiter);
  sched.run_until_idle();
  EXPECT_EQ(phase, 1);
  EXPECT_EQ(waiter.state(), State::kSuspended);

  sched.ready(&waiter);  // resume
  sched.run_until_idle();
  EXPECT_EQ(phase, 2);
  EXPECT_EQ(waiter.state(), State::kDone);
}

TEST(Ult, ThreadsCanSpawnThreads) {
  Scheduler sched;
  Scheduler::set_current(&sched);
  int total = 0;
  StandardThread parent([&] {
    for (int i = 0; i < 5; ++i) {
      mfc::ult::spawn([&total] { ++total; });
    }
  });
  sched.ready(&parent);
  sched.run_until_idle();
  Scheduler::set_current(nullptr);
  EXPECT_EQ(total, 5);
}

TEST(Ult, ManyThreadsRoundRobin) {
  Scheduler sched;
  constexpr int kThreads = 500;
  constexpr int kYields = 10;
  int finished = 0;
  std::vector<std::unique_ptr<StandardThread>> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.push_back(std::make_unique<StandardThread>(
        [&sched, &finished] {
          for (int y = 0; y < kYields; ++y) sched.yield();
          ++finished;
        },
        16 * 1024));
    sched.ready(ts.back().get());
  }
  sched.run_until_idle();
  EXPECT_EQ(finished, kThreads);
}

TEST(Ult, LoadAccumulatesWhileRunning) {
  Scheduler sched;
  StandardThread t([&] {
    volatile double sink = 0;
    for (int i = 0; i < 2000000; ++i) sink = sink + i;
  });
  sched.ready(&t);
  sched.run_until_idle();
  EXPECT_GT(t.accumulated_load(), 0.0);
}

TEST(Ult, DetachedThreadsSelfDelete) {
  Scheduler sched;
  Scheduler::set_current(&sched);
  // spawn() marks delete-on-exit; running to idle must not leak (ASAN-able)
  // nor crash on the self-delete path.
  for (int i = 0; i < 100; ++i) mfc::ult::spawn([] {});
  sched.run_until_idle();
  Scheduler::set_current(nullptr);
  EXPECT_EQ(sched.ready_count(), 0u);
}

TEST(Ult, CurrentSchedulerIsPerKernelThread) {
  Scheduler& a = Scheduler::current();
  Scheduler& b = Scheduler::current();
  EXPECT_EQ(&a, &b);
  Scheduler mine;
  Scheduler::set_current(&mine);
  EXPECT_EQ(&Scheduler::current(), &mine);
  Scheduler::set_current(nullptr);
  EXPECT_EQ(&Scheduler::current(), &a);
}

TEST(Ult, NestedYieldDeepInCallStack) {
  // The motivating property of threads over event-driven objects (§2.4):
  // suspension from a deeply nested call requires no code restructuring.
  Scheduler sched;
  struct Deep {
    static void recurse(Scheduler& s, int depth) {
      if (depth == 0) {
        s.yield();
        return;
      }
      volatile char pad[200];
      pad[0] = static_cast<char>(depth);
      (void)pad;
      recurse(s, depth - 1);
    }
  };
  int done = 0;
  StandardThread a([&] { Deep::recurse(sched, 50); ++done; }, 128 * 1024);
  StandardThread b([&] { Deep::recurse(sched, 50); ++done; }, 128 * 1024);
  sched.ready(&a);
  sched.ready(&b);
  sched.run_until_idle();
  EXPECT_EQ(done, 2);
}

TEST(UltDeath, YieldOutsideThreadAborts) {
  Scheduler sched;
  EXPECT_DEATH(sched.yield(), "outside a thread");
}

TEST(UltDeath, ReadyTwiceAborts) {
  Scheduler sched;
  StandardThread t([] {});
  sched.ready(&t);
  EXPECT_DEATH(sched.ready(&t), "already-queued");
  sched.run_until_idle();
}

}  // namespace
