// Chaos-layer tests: seeded determinism, injection points threaded through
// iso/converse/ult, the forked-relay transport, and the shutdown pool books.
#include "chaos/chaos.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "chaos/proc_transport.h"
#include "converse/machine.h"
#include "iso/region.h"
#include "ult/scheduler.h"
#include "ult/thread.h"
#include "util/digest.h"

namespace {

namespace chaos = mfc::chaos;
namespace cv = mfc::converse;
using chaos::Point;
using mfc::iso::Region;
using mfc::iso::SlotId;

/// Installs on construction, uninstalls on destruction; keeps every test
/// exception/assert path from leaking an installed engine into the next test.
struct ScopedChaos {
  explicit ScopedChaos(const chaos::Config& cfg) { chaos::install(cfg); }
  ~ScopedChaos() { chaos::uninstall(); }
};

chaos::Config base_config(std::uint64_t seed) {
  chaos::Config cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Determinism contract

TEST(ChaosDeterminism, KeyedDecisionsArePureFunctionsOfSeed) {
  std::vector<bool> fire1, fire2;
  std::vector<std::uint64_t> draw1, draw2;
  auto sample = [](std::vector<bool>* fires, std::vector<std::uint64_t>* draws) {
    for (std::uint64_t key = 0; key < 256; ++key) {
      fires->push_back(chaos::keyed_inject(Point::kTransportKill, key));
      draws->push_back(chaos::keyed_draw(Point::kTransportKill, key, 1 << 20));
    }
  };
  chaos::Config cfg = base_config(0xfeedULL);
  cfg.transport_kill = 0.5;
  {
    ScopedChaos c(cfg);
    sample(&fire1, &draw1);
  }
  {
    ScopedChaos c(cfg);
    sample(&fire2, &draw2);
  }
  EXPECT_EQ(fire1, fire2);
  EXPECT_EQ(draw1, draw2);
  // ... and they actually depend on the seed.
  cfg.seed = 0xfeed + 1;
  std::vector<bool> fire3;
  std::vector<std::uint64_t> draw3;
  {
    ScopedChaos c(cfg);
    sample(&fire3, &draw3);
  }
  EXPECT_NE(draw1, draw3);
}

TEST(ChaosDeterminism, PerPeStreamsReplayAndDiffer) {
  chaos::Config cfg = base_config(77);
  cfg.delivery_delay = 0.5;
  cfg.max_delay_ticks = 16;
  auto sample_pe = [&](int pe) {
    chaos::bind_stream(pe);
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 128; ++i) {
      seq.push_back(chaos::should_inject(Point::kDelivery) ? 1u : 0u);
      seq.push_back(chaos::draw(Point::kDelivery, cfg.max_delay_ticks));
    }
    chaos::unbind_stream();
    return seq;
  };
  std::vector<std::uint64_t> pe0_a, pe0_b, pe1;
  {
    ScopedChaos c(cfg);
    pe0_a = sample_pe(0);
    pe1 = sample_pe(1);
  }
  {
    ScopedChaos c(cfg);
    pe0_b = sample_pe(0);
  }
  EXPECT_EQ(pe0_a, pe0_b) << "same seed + same PE must replay bit-identically";
  EXPECT_NE(pe0_a, pe1) << "different PEs must draw from different streams";
}

TEST(ChaosDeterminism, ReinstallWithNewSeedDiscardsStaleStreams) {
  // A rebind after reinstall must pick up the *new* seed, not a cached
  // thread-local stream from the old engine (the epoch mechanism).
  auto first_draws = [&](std::uint64_t seed) {
    chaos::Config cfg = base_config(seed);
    cfg.delivery_delay = 1.0;
    ScopedChaos c(cfg);
    chaos::bind_stream(0);
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 32; ++i) seq.push_back(chaos::draw(Point::kDelivery, 1 << 30));
    chaos::unbind_stream();
    return seq;
  };
  auto a = first_draws(1);
  auto b = first_draws(2);
  auto a2 = first_draws(1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
}

TEST(ChaosDeterminism, EnvSeedOverridesConfigSeed) {
  ASSERT_EQ(setenv("MFC_CHAOS_SEED", "424242", 1), 0);
  {
    ScopedChaos c(base_config(7));
    EXPECT_EQ(chaos::seed(), 424242u);
  }
  ASSERT_EQ(unsetenv("MFC_CHAOS_SEED"), 0);
  {
    ScopedChaos c(base_config(7));
    EXPECT_EQ(chaos::seed(), 7u);
  }
}

TEST(Chaos, DisabledEngineInjectsNothing) {
  // Not installed at all: every query is a cheap no.
  EXPECT_FALSE(chaos::enabled());
  EXPECT_FALSE(chaos::should_inject(Point::kIsoAcquire));
  EXPECT_FALSE(chaos::keyed_inject(Point::kPoolAcquire, 9));
  EXPECT_EQ(chaos::sched_choice_rng(), nullptr);
  chaos::preempt_point("chaos_test.noop");  // must be safe outside a thread
}

// ---------------------------------------------------------------------------
// Iso slot-allocator injection

class ChaosIsoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 16 * 1024;
    cfg.slots_per_pe = 64;
    Region::init(cfg);
  }
  void TearDown() override { Region::shutdown(); }
};

TEST_F(ChaosIsoFixture, TryAcquireFailsOnInjectionAndCountsIt) {
  chaos::Config cfg = base_config(3);
  cfg.iso_alloc_fail = 1.0;  // every attempt fails
  ScopedChaos c(cfg);
  Region& r = Region::instance();
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(r.try_acquire(0).valid());
  EXPECT_EQ(chaos::injections(Point::kIsoAcquire), 8u);
  EXPECT_EQ(r.used_slots(0), 0u) << "injected failures must not leak slots";
}

TEST_F(ChaosIsoFixture, AcquireRetriesThroughInjectedFailures) {
  chaos::Config cfg = base_config(11);
  cfg.iso_alloc_fail = 0.5;  // P(64 consecutive failures) ~ 5e-20
  ScopedChaos c(cfg);
  Region& r = Region::instance();
  std::vector<SlotId> ids;
  for (int i = 0; i < 32; ++i) {
    SlotId id = r.acquire(1);
    ASSERT_TRUE(id.valid());
    ids.push_back(id);
  }
  EXPECT_GT(chaos::injections(Point::kIsoAcquire), 0u);
  EXPECT_EQ(r.used_slots(1), 32u);
  for (auto id : ids) r.release(id);
  EXPECT_EQ(r.used_slots(1), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler integration: seeded choice RNG and forced preemption points

TEST(ChaosSched, ChoiceRngPermutesReadyOrderDeterministically) {
  auto run_order = [](mfc::SplitMix64* rng) {
    mfc::ult::Scheduler sched;
    sched.set_choice_rng(rng);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      auto* t = new mfc::ult::StandardThread([&order, i] { order.push_back(i); },
                                             16 * 1024);
      t->set_delete_on_exit(true);
      sched.ready(t);
    }
    sched.run_until_idle();
    return order;
  };
  std::vector<int> fifo = run_order(nullptr);
  EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  mfc::SplitMix64 rng_a(99), rng_b(99);
  std::vector<int> shuffled_a = run_order(&rng_a);
  std::vector<int> shuffled_b = run_order(&rng_b);
  EXPECT_EQ(shuffled_a, shuffled_b) << "same seed must replay the same order";
  EXPECT_NE(shuffled_a, fifo) << "seed 99 should permute an 8-thread queue";
}

TEST(ChaosSched, PreemptPointYieldsInsideThreads) {
  chaos::Config cfg = base_config(5);
  cfg.preempt = 1.0;  // every instrumented point yields
  ScopedChaos c(cfg);
  mfc::ult::Scheduler sched;
  std::vector<int> trace;
  for (int id = 0; id < 2; ++id) {
    auto* t = new mfc::ult::StandardThread(
        [&trace, id] {
          for (int step = 0; step < 3; ++step) {
            trace.push_back(id);
            chaos::preempt_point("chaos_test.loop");
          }
        },
        16 * 1024);
    t->set_delete_on_exit(true);
    sched.ready(t);
  }
  sched.run_until_idle();
  // With a forced yield after every step the two threads interleave strictly.
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 0, 1, 0, 1}));
  EXPECT_GE(chaos::injections(Point::kPreempt), 6u);
}

// ---------------------------------------------------------------------------
// Converse machine integration

TEST(ChaosMachine, DelayedDeliveryReordersButLosesNothing) {
  static std::atomic<int> received{0};
  static std::atomic<int> out_of_order{0};
  static std::atomic<int> last_seq{-1};
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    int seq = m.as<int>();
    int prev = last_seq.exchange(seq);
    if (seq < prev) out_of_order.fetch_add(1);
    received.fetch_add(1);
  });
  received = 0;
  out_of_order = 0;
  last_seq = -1;

  cv::Machine::Config cfg;
  cfg.npes = 2;
  cfg.chaos = base_config(21);
  cfg.chaos.delivery_delay = 0.6;
  cfg.chaos.max_delay_ticks = 12;
  constexpr int kMsgs = 300;
  cv::Machine::run(cfg, [](int pe) {
    if (pe == 0) {
      for (int i = 0; i < kMsgs; ++i) cv::send_value(1, h, i);
    }
    cv::wait_quiescence();
  });
  EXPECT_EQ(received.load(), kMsgs) << "delay must never drop a message";
  EXPECT_GT(out_of_order.load(), 0)
      << "0.6 delay over 300 messages should reorder at least once";
  auto ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed);
}

TEST(ChaosMachine, PoolInjectionForcesFreshAllocationsAndStaysBalanced) {
  static std::atomic<int> pongs{0};
  static cv::HandlerId h =
      cv::register_handler([](cv::Message&&) { pongs.fetch_add(1); });
  pongs = 0;
  // Install externally so injection counters stay readable after run().
  chaos::Config ccfg = base_config(31);
  ccfg.pool_fail = 0.7;
  ScopedChaos c(ccfg);
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int pe) {
    for (int round = 0; round < 50; ++round) {
      cv::send_value(1 - pe, h, round);
    }
    cv::wait_quiescence();
  });
  EXPECT_EQ(pongs.load(), 100);
  EXPECT_GT(chaos::injections(Point::kPoolAcquire), 0u);
  auto ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed)
      << "bypassed pool envelopes must still be freed";
}

TEST(ChaosMachine, ShutdownDrainsUndeliveredPoolMessages) {
  // Regression for the shutdown leak: PE0 floods PE1 and exits without
  // waiting; whatever is still queued (or parked in the delay stash) at
  // teardown must be drained and returned to the books.
  static cv::HandlerId h = cv::register_handler([](cv::Message&&) {});
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int pe) {
    if (pe == 0) {
      for (int i = 0; i < 2000; ++i) cv::send_value(1, h, i);
    }
    // No barrier, no quiescence: mains exit with traffic in flight.
  });
  auto ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed)
      << "machine shutdown leaked pooled messages";
  EXPECT_GT(ps.allocated, 0u);
}

TEST(ChaosMachine, RecyclingStillWorksWithChaosOff) {
  static cv::HandlerId h = cv::register_handler([](cv::Message&&) {});
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int pe) {
    for (int round = 0; round < 40; ++round) {
      cv::send_value(1 - pe, h, round);
      cv::wait_quiescence();
    }
  });
  auto ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed);
  EXPECT_GT(ps.recycled, 0u) << "sequential sends should hit the pool cache";
}

// ---------------------------------------------------------------------------
// Forked-relay transport

std::vector<char> pattern_bytes(std::size_t n, std::uint64_t seed) {
  mfc::SplitMix64 rng(seed);
  std::vector<char> v(n);
  for (auto& b : v) b = static_cast<char>(rng.next());
  return v;
}

TEST(ProcTransport, CleanRoundtripEchoesExactly) {
  chaos::ProcTransport t;
  // Larger than pipe capacity: exercises the poll-interleaved write/read.
  auto bytes = pattern_bytes(300 * 1024, 8);
  auto echoed = t.roundtrip(bytes, /*key=*/1);
  EXPECT_EQ(echoed, bytes);
  EXPECT_EQ(t.respawns(), 0u);
  // Empty shipments are legal.
  EXPECT_TRUE(t.roundtrip({}, 2).empty());
}

TEST(ProcTransport, InjectedKillsRespawnAndRecover) {
  chaos::Config cfg = base_config(17);
  cfg.transport_kill = 1.0;  // kill every attempt until the bound
  cfg.max_transport_kills = 3;
  ScopedChaos c(cfg);
  chaos::ProcTransport t;
  auto bytes = pattern_bytes(64 * 1024, 9);
  auto echoed = t.roundtrip(bytes, /*key=*/0xabcd);
  EXPECT_EQ(echoed, bytes) << "payload must survive relay deaths intact";
  EXPECT_EQ(t.respawns(), 3u)
      << "kill=1.0 burns exactly max_transport_kills attempts";
  EXPECT_GE(chaos::injections(Point::kTransportKill), 3u);
}

TEST(ProcTransport, KillPatternReplaysFromSeed) {
  chaos::Config cfg = base_config(23);
  cfg.transport_kill = 0.5;
  auto respawn_count = [&] {
    ScopedChaos c(cfg);
    chaos::ProcTransport t;
    for (std::uint64_t key = 0; key < 12; ++key) {
      auto bytes = pattern_bytes(4096 + key * 512, key);
      EXPECT_EQ(t.roundtrip(bytes, key), bytes);
    }
    return t.respawns();
  };
  std::uint64_t a = respawn_count();
  std::uint64_t b = respawn_count();
  EXPECT_EQ(a, b) << "keyed kills must replay bit-identically";
  EXPECT_GT(a, 0u);
}

}  // namespace
