// Tests for the extension features: checkpoint/restart ("migration to
// disk"), quiescence detection, priority scheduling, the extra AMPI
// collectives, proactive evacuation — and the flagship: migration across
// real address spaces via fork.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "ampi/ampi.h"
#include "converse/machine.h"
#include "migrate/checkpoint.h"
#include "migrate/iso_thread.h"
#include "pup/pup.h"
#include "ult/scheduler.h"

namespace {

namespace cv = mfc::converse;
namespace ampi = mfc::ampi;
using mfc::migrate::Checkpoint;
using mfc::migrate::IsoThread;
using mfc::migrate::MigratableThread;
using mfc::ult::Scheduler;
using mfc::ult::StandardThread;

class IsoEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    mfc::iso::Region::Config cfg;
    cfg.npes = 2;
    cfg.slot_bytes = 64 * 1024;
    cfg.slots_per_pe = 512;
    mfc::iso::Region::init(cfg);
  }
  void TearDown() override { mfc::iso::Region::shutdown(); }
};

// ---- checkpoint / restart ----------------------------------------------------

TEST_F(IsoEnv, CheckpointRestartViaMemory) {
  Scheduler sched;
  static int after;
  after = 0;
  std::vector<MigratableThread*> threads;
  for (int i = 0; i < 4; ++i) {
    auto* t = new IsoThread(
        [i] {
          long state = 100 + i;
          Scheduler::current().suspend();  // checkpointed here
          after += static_cast<int>(state);
        },
        0);
    threads.push_back(t);
    sched.ready(t);
  }
  sched.run_until_idle();

  Checkpoint ckpt;
  int iteration = 37;
  ckpt.set_user_data(mfc::pup::to_bytes(iteration));
  for (auto* t : threads) {
    ckpt.add(t);
    delete t;
  }
  EXPECT_EQ(ckpt.thread_count(), 4u);

  // Serialize the whole checkpoint (e.g. to a buddy processor's memory).
  auto bytes = mfc::pup::to_bytes(ckpt);
  Checkpoint restored;
  mfc::pup::from_bytes(bytes, restored);

  int it2 = 0;
  mfc::pup::from_bytes(restored.user_data(), it2);
  EXPECT_EQ(it2, 37);

  for (auto* t : restored.restore_all()) {
    sched.ready(t);
    sched.run_until_idle();
    delete t;
  }
  EXPECT_EQ(after, 100 + 101 + 102 + 103);
}

TEST_F(IsoEnv, CheckpointRestartViaDisk) {
  Scheduler sched;
  static bool resumed;
  resumed = false;
  auto* t = new IsoThread(
      [] {
        double data[16];
        for (int i = 0; i < 16; ++i) data[i] = i * 1.5;
        Scheduler::current().suspend();
        bool ok = true;
        for (int i = 0; i < 16; ++i) ok = ok && data[i] == i * 1.5;
        resumed = ok;
      },
      0);
  sched.ready(t);
  sched.run_until_idle();

  const std::string path = "/tmp/mfc_ckpt_test.bin";
  Checkpoint ckpt;
  ckpt.add(t);
  delete t;
  ckpt.write_file(path);

  // "Restart": read the file back and resume. (Within one process the
  // region geometry trivially matches; across runs the region must be
  // recreated identically — see checkpoint.h.)
  Checkpoint loaded = Checkpoint::read_file(path);
  std::remove(path.c_str());
  auto threads = loaded.restore_all();
  ASSERT_EQ(threads.size(), 1u);
  sched.ready(threads[0]);
  sched.run_until_idle();
  EXPECT_TRUE(resumed);
  delete threads[0];
}

// ---- migration across real address spaces (fork) -----------------------------

TEST_F(IsoEnv, MigrationCrossesAddressSpaces) {
  // The isomalloc guarantee, demonstrated for real: pack a thread in the
  // parent process, ship the bytes through a pipe to a *forked child* (a
  // genuinely separate address space that inherited the same virtual
  // reservation), resume it there, and check it completes with its stack
  // and heap pointers intact.
  int to_child[2], from_child[2];
  ASSERT_EQ(pipe(to_child), 0);
  ASSERT_EQ(pipe(from_child), 0);

  Scheduler sched;
  auto* t = new IsoThread(
      [] {
        int stack_vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int* p = &stack_vals[2];
        auto* heap = static_cast<long*>(mfc::iso::routed_malloc(64));
        heap[0] = 424242;
        Scheduler::current().suspend();  // ---- crosses processes here ----
        // Now running in the CHILD process.
        if (*p == 3 && heap[0] == 424242) {
          const char ok = 'Y';
          (void)ok;
          stack_vals[0] = 999;  // observable via exit code path below
        }
        mfc::iso::routed_free(heap);
        _exit(*p == 3 && stack_vals[0] == 999 ? 42 : 1);
      },
      0);
  sched.ready(t);
  sched.run_until_idle();
  auto image = t->pack();
  auto wire = mfc::pup::to_bytes(image);
  delete t;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: separate address space; the PROT_NONE reservation (inherited)
    // guarantees the slot addresses are free here.
    close(to_child[1]);
    close(from_child[0]);
    std::uint64_t n = 0;
    if (read(to_child[0], &n, sizeof n) != sizeof n) _exit(2);
    std::vector<char> buf(n);
    std::size_t got = 0;
    while (got < n) {
      ssize_t r = read(to_child[0], buf.data() + got, n - got);
      if (r <= 0) _exit(3);
      got += static_cast<std::size_t>(r);
    }
    mfc::migrate::ThreadImage arrived;
    mfc::pup::from_bytes(buf, arrived);
    auto* t2 = MigratableThread::unpack(std::move(arrived), 1);
    Scheduler child_sched;
    child_sched.ready(t2);
    child_sched.run_until_idle();  // thread _exit()s with its verdict
    _exit(4);                      // not reached if the thread finished
  }

  close(to_child[0]);
  close(from_child[1]);
  const std::uint64_t n = wire.size();
  ASSERT_EQ(write(to_child[1], &n, sizeof n), static_cast<ssize_t>(sizeof n));
  ASSERT_EQ(write(to_child[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  close(to_child[1]);
  close(from_child[0]);

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42)
      << "thread did not resume correctly in the child address space";
}

// ---- quiescence detection -----------------------------------------------------

TEST(Quiescence, DetectsEndOfMessageStorm) {
  static std::atomic<long> handled;
  handled = 0;
  // A handler that fans out two more messages until a depth limit — a
  // message storm with an unpredictable end.
  struct Fan {
    int depth;
    void pup(mfc::pup::Er& p) { p | depth; }
  };
  static cv::HandlerId h = cv::register_handler([](cv::Message&& m) {
    auto fan = m.as<Fan>();
    handled.fetch_add(1);
    if (fan.depth > 0) {
      Fan next{fan.depth - 1};
      cv::send_value((cv::my_pe() + 1) % cv::num_pes(), h, next);
      cv::send_value((cv::my_pe() + 2) % cv::num_pes(), h, next);
    }
  });
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [](int pe) {
    if (pe == 0) {
      Fan seed{6};
      cv::send_value(1, h, seed);
    }
    cv::wait_quiescence();
    // After QD: the storm is fully drained, on every PE.
    EXPECT_EQ(handled.load(), (1 << 7) - 1);  // 2^7 - 1 nodes of the tree
  });
}

TEST(Quiescence, ImmediateWhenNothingIsInFlight) {
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int) {
    cv::wait_quiescence();  // must not hang
    SUCCEED();
  });
}

// ---- priority scheduling -------------------------------------------------------

TEST(Priority, NegativeRunsFirstPositiveLast) {
  Scheduler sched;
  std::vector<int> order;
  StandardThread normal1([&] { order.push_back(1); });
  StandardThread normal2([&] { order.push_back(2); });
  StandardThread urgent([&] { order.push_back(-5); });
  StandardThread lazy([&] { order.push_back(99); });
  sched.ready(&normal1);
  sched.ready_prioritized(&lazy, 10);
  sched.ready(&normal2);
  sched.ready_prioritized(&urgent, -3);
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{-5, 1, 2, 99}));
}

TEST(Priority, OrderWithinSamePriorityIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<std::unique_ptr<StandardThread>> ts;
  for (int i = 0; i < 6; ++i) {
    ts.push_back(std::make_unique<StandardThread>([&order, i] {
      order.push_back(i);
    }));
    sched.ready_prioritized(ts.back().get(), -1);
  }
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// ---- AMPI scatter / alltoall / evacuate ----------------------------------------

TEST(AmpiExt, ScatterDistributesRootBlocks) {
  ampi::Options opt;
  opt.nranks = 6;
  opt.npes = 3;
  ampi::run(opt, [] {
    const int r = ampi::rank();
    std::vector<long> all;
    if (r == 2) {
      for (int i = 0; i < 6; ++i) all.push_back(i * 11);
    }
    long mine = -1;
    ampi::scatter(all.data(), 1, ampi::Dtype::kLong, &mine, 2);
    EXPECT_EQ(mine, r * 11);
  });
}

TEST(AmpiExt, AlltoallTransposes) {
  ampi::Options opt;
  opt.nranks = 4;
  opt.npes = 2;
  ampi::run(opt, [] {
    const int r = ampi::rank();
    const int n = ampi::size();
    std::vector<int> out(static_cast<std::size_t>(n)), in(static_cast<std::size_t>(n), -1);
    for (int d = 0; d < n; ++d) out[static_cast<std::size_t>(d)] = r * 100 + d;
    ampi::alltoall(out.data(), 1, ampi::Dtype::kInt, in.data());
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(in[static_cast<std::size_t>(s)], s * 100 + r);
    }
  });
}

TEST(AmpiExt, EvacuationClearsThePe) {
  static std::atomic<int> on_failing;
  on_failing = -1;
  ampi::Options opt;
  opt.nranks = 8;
  opt.npes = 4;
  ampi::run(opt, [] {
    ampi::evacuate(/*failing_pe=*/2);
    // Nobody may remain on PE 2, and the program must keep working.
    if (ampi::my_pe() == 2) on_failing.store(ampi::rank());
    const long total = ampi::allreduce_one<long>(1, ampi::Op::kSum);
    EXPECT_EQ(total, 8);
  });
  EXPECT_EQ(on_failing.load(), -1) << "a rank was left on the failing PE";
}

TEST(AmpiExt, EvacuationThenRebalanceRecovers) {
  ampi::Options opt;
  opt.nranks = 8;
  opt.npes = 4;
  opt.lb_strategy = mfc::lb::greedy_lb;
  ampi::run(opt, [] {
    ampi::evacuate(0);
    volatile double burn = 0;
    for (int i = 0; i < 200000; ++i) burn = burn + i;
    // A later LB step may repopulate the (recovered) PE — the runtime
    // treats evacuation as ordinary migration, nothing is poisoned.
    ampi::migrate();
    const long total = ampi::allreduce_one<long>(1, ampi::Op::kSum);
    EXPECT_EQ(total, 8);
  });
}

}  // namespace
