// Load-balancing strategy tests (paper §3, §4.5).
#include "lb/strategy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace {

using namespace mfc::lb;

Mapping round_robin(std::size_t n, int npes) {
  Mapping m(n);
  for (std::size_t i = 0; i < n; ++i) m[i] = static_cast<int>(i) % npes;
  return m;
}

TEST(Lb, NullKeepsPlacement) {
  std::vector<double> loads = {5, 1, 1, 1};
  Mapping cur = round_robin(4, 2);
  EXPECT_EQ(null_lb(loads, cur, 2), cur);
}

TEST(Lb, GreedyBalancesSkewedLoad) {
  // One heavy object per 4, round-robin start: imbalance 4/...; greedy must
  // spread heavies across PEs.
  std::vector<double> loads;
  Mapping cur;
  for (int i = 0; i < 16; ++i) {
    loads.push_back(i % 4 == 0 ? 10.0 : 1.0);
    cur.push_back(i % 4 == 0 ? 0 : i % 4);  // all heavies start on PE 0
  }
  const double before = mapping_imbalance(loads, cur, 4);
  Mapping after = greedy_lb(loads, cur, 4);
  const double now = mapping_imbalance(loads, after, 4);
  EXPECT_GT(before, 2.0);
  EXPECT_LT(now, 1.1);
}

TEST(Lb, GreedyIsNearOptimalOnUniformLoads) {
  std::vector<double> loads(32, 1.0);
  Mapping cur = round_robin(32, 4);
  Mapping after = greedy_lb(loads, cur, 4);
  EXPECT_DOUBLE_EQ(mapping_imbalance(loads, after, 4), 1.0);
}

TEST(Lb, RefineMovesFewObjects) {
  // 15 equal objects + 1 heavy on PE0: refine should fix PE0 by moving a
  // small number of objects, not reshuffle everything.
  std::vector<double> loads(16, 1.0);
  loads[0] = 6.0;
  Mapping cur(16, 0);
  for (int i = 0; i < 16; ++i) cur[static_cast<std::size_t>(i)] = i % 4;
  const double before = mapping_imbalance(loads, cur, 4);
  Mapping after = refine_lb(loads, cur, 4);
  const double now = mapping_imbalance(loads, after, 4);
  EXPECT_LT(now, before);
  EXPECT_LE(migration_count(cur, after), 6);
}

TEST(Lb, RotateShiftsEveryObject) {
  std::vector<double> loads(8, 1.0);
  Mapping cur = round_robin(8, 4);
  Mapping after = rotate_lb(loads, cur, 4);
  EXPECT_EQ(migration_count(cur, after), 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(after[i], (cur[i] + 1) % 4);
  }
}

TEST(Lb, RandomIsDeterministicPerSeed) {
  std::vector<double> loads(100, 1.0);
  Mapping cur = round_robin(100, 8);
  EXPECT_EQ(random_lb(loads, cur, 8, 42), random_lb(loads, cur, 8, 42));
  EXPECT_NE(random_lb(loads, cur, 8, 42), random_lb(loads, cur, 8, 43));
}

TEST(Lb, PeLoadsConserveTotal) {
  mfc::SplitMix64 rng(3);
  std::vector<double> loads;
  for (int i = 0; i < 50; ++i) loads.push_back(rng.next_in(0.1, 10.0));
  Mapping cur = round_robin(50, 6);
  for (auto strat : {std::string("greedy"), std::string("refine"),
                     std::string("random"), std::string("rotate")}) {
    Mapping after = strategy_by_name(strat)(loads, cur, 6);
    const auto pls = pe_loads(loads, after, 6);
    const double total = std::accumulate(pls.begin(), pls.end(), 0.0);
    const double expect = std::accumulate(loads.begin(), loads.end(), 0.0);
    EXPECT_NEAR(total, expect, 1e-9) << strat;
  }
}

TEST(Lb, StrategyByNameUnknownAborts) {
  EXPECT_DEATH(strategy_by_name("bogus"), "unknown LB strategy");
}

// Property sweep: greedy never yields a worse max PE load than the input
// placement, across random instances.
class GreedyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GreedyProperty, NeverWorseThanInput) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const int npes = 2 + static_cast<int>(rng.next_below(7));
  const std::size_t n = 4 + rng.next_below(60);
  std::vector<double> loads;
  Mapping cur;
  for (std::size_t i = 0; i < n; ++i) {
    loads.push_back(rng.next_in(0.01, 5.0));
    cur.push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(npes))));
  }
  const auto before = pe_loads(loads, cur, npes);
  const auto after = pe_loads(loads, greedy_lb(loads, cur, npes), npes);
  const double max_before = *std::max_element(before.begin(), before.end());
  const double max_after = *std::max_element(after.begin(), after.end());
  // LPT greedy is not guaranteed to beat an arbitrary starting placement
  // (it can be up to 4/3 of optimal while the start happens to be optimal),
  // so the sound cross-check is against the start scaled by that factor...
  EXPECT_LE(max_after, max_before * 4.0 / 3.0 + 1e-9);
  // ...and the theoretical LPT bound proper: <= (4/3) OPT, with OPT >=
  // max(total/npes, max single load).
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double opt_lb = std::max(total / npes,
                                 *std::max_element(loads.begin(), loads.end()));
  EXPECT_LE(max_after, 4.0 / 3.0 * opt_lb + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProperty, ::testing::Range(1, 26));

// Refine property: never increases imbalance.
class RefineProperty : public ::testing::TestWithParam<int> {};

TEST_P(RefineProperty, NeverIncreasesImbalance) {
  mfc::SplitMix64 rng(static_cast<std::uint64_t>(GetParam() + 1000));
  const int npes = 2 + static_cast<int>(rng.next_below(6));
  const std::size_t n = static_cast<std::size_t>(npes) * (2 + rng.next_below(10));
  std::vector<double> loads;
  Mapping cur;
  for (std::size_t i = 0; i < n; ++i) {
    loads.push_back(rng.next_in(0.01, 3.0));
    cur.push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(npes))));
  }
  const double before = mapping_imbalance(loads, cur, npes);
  const double after = mapping_imbalance(loads, refine_lb(loads, cur, npes), npes);
  EXPECT_LE(after, before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineProperty, ::testing::Range(1, 26));

}  // namespace
