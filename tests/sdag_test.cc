// SDAG coordination tests (paper §2.4.1–2.4.2).
#include "sdag/sdag.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sdag/retswitch.h"

namespace {

using mfc::sdag::Coordinator;
using mfc::sdag::RetSwitch;
using mfc::sdag::Task;

std::vector<char> packed_int(int v) { return mfc::pup::to_bytes(v); }

TEST(Sdag, WhenConsumesBufferedMessage) {
  Coordinator coord;
  coord.deliver(1, packed_int(42));  // message before the when
  int seen = 0;
  Task t = [](Coordinator& c, int& out) -> Task {
    out = co_await c.when<int>(1);
  }(coord, seen);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(seen, 42);
}

TEST(Sdag, WhenBlocksUntilDelivery) {
  Coordinator coord;
  int seen = 0;
  Task t = [](Coordinator& c, int& out) -> Task {
    out = co_await c.when<int>(7);
  }(coord, seen);
  EXPECT_FALSE(t.done());
  EXPECT_EQ(coord.pending_whens(), 1u);
  coord.deliver(7, packed_int(99));
  EXPECT_TRUE(t.done());
  EXPECT_EQ(seen, 99);
}

TEST(Sdag, SequentialWhensProcessInProgramOrder) {
  Coordinator coord;
  std::vector<int> order;
  Task t = [](Coordinator& c, std::vector<int>& out) -> Task {
    out.push_back(co_await c.when<int>(1));
    out.push_back(co_await c.when<int>(2));
    out.push_back(co_await c.when<int>(1));
  }(coord, order);
  coord.deliver(1, packed_int(10));
  coord.deliver(1, packed_int(30));  // buffered: the when(2) is next
  EXPECT_FALSE(t.done());
  coord.deliver(2, packed_int(20));
  EXPECT_TRUE(t.done());
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(Sdag, OverlapAcceptsEitherOrder) {
  for (bool left_first : {true, false}) {
    Coordinator coord;
    std::pair<int, int> got{0, 0};
    Task t = [](Coordinator& c, std::pair<int, int>& out) -> Task {
      out = co_await c.overlap<int>(/*tag_a=*/1, /*tag_b=*/2);
    }(coord, got);
    EXPECT_FALSE(t.done());
    if (left_first) {
      coord.deliver(1, packed_int(100));
      EXPECT_FALSE(t.done());
      coord.deliver(2, packed_int(200));
    } else {
      coord.deliver(2, packed_int(200));
      EXPECT_FALSE(t.done());
      coord.deliver(1, packed_int(100));
    }
    EXPECT_TRUE(t.done());
    // Results are in tag order regardless of arrival order.
    EXPECT_EQ(got.first, 100);
    EXPECT_EQ(got.second, 200);
  }
}

TEST(Sdag, OverlapWithPreBufferedSubset) {
  Coordinator coord;
  std::vector<int> got;
  coord.deliver(3, packed_int(33));  // one of three already waiting
  Task t = [](Coordinator& c, std::vector<int>& out) -> Task {
    // Bound to a local before co_await: GCC 12 miscompiles ("array used as
    // initializer") when the vector argument is materialized inside the
    // await expression itself.
    auto all_three = c.overlap<int>(std::vector<int>{2, 3, 4});
    out = co_await all_three;
  }(coord, got);
  EXPECT_FALSE(t.done());
  coord.deliver(4, packed_int(44));
  coord.deliver(2, packed_int(22));
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got, (std::vector<int>{22, 33, 44}));
}

TEST(Sdag, IterativeLifeCycleLikeFigure1) {
  // The Figure 1 pattern: for-loop of { send; overlap{when,when}; work }.
  constexpr int kIters = 5;
  Coordinator coord;
  int work_done = 0;
  Task t = [](Coordinator& c, int& work) -> Task {
    for (int i = 0; i < kIters; ++i) {
      auto [l, r] = co_await c.overlap<int>(1, 2);
      work += l + r;
    }
  }(coord, work_done);
  for (int i = 0; i < kIters; ++i) {
    EXPECT_FALSE(t.done());
    // Alternate arrival order per iteration.
    if (i % 2 == 0) {
      coord.deliver(1, packed_int(1));
      coord.deliver(2, packed_int(10));
    } else {
      coord.deliver(2, packed_int(10));
      coord.deliver(1, packed_int(1));
    }
  }
  EXPECT_TRUE(t.done());
  EXPECT_EQ(work_done, kIters * 11);
}

TEST(Sdag, StructuredMessageTypes) {
  struct GhostStrip {
    std::vector<double> cells;
    int iteration = 0;
    void pup(mfc::pup::Er& p) { p | cells | iteration; }
  };
  Coordinator coord;
  GhostStrip got;
  Task t = [](Coordinator& c, GhostStrip& out) -> Task {
    out = co_await c.when<GhostStrip>(5);
  }(coord, got);
  GhostStrip sent{{1.5, 2.5, 3.5}, 9};
  coord.deliver(5, mfc::pup::to_bytes(sent));
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got.cells, sent.cells);
  EXPECT_EQ(got.iteration, 9);
}

TEST(Sdag, DestroyingTaskCancelsLifeCycle) {
  Coordinator coord;
  {
    Task t = [](Coordinator& c) -> Task {
      (void)co_await c.when<int>(1);
    }(coord);
    EXPECT_FALSE(t.done());
  }  // Task destroyed while suspended: frame freed, no crash.
  // Note: the registered waiter points at the dead frame, so delivering tag
  // 1 now would be a use-after-free — callers must drain or drop the
  // coordinator along with the task (the Element owns both, so their
  // lifetimes coincide in practice).
  SUCCEED();
}

// ---- Return-switch style (§2.4.1) ----

struct RsCounter {
  RetSwitch rs;
  int i = 0;  // locals crossing yields must be hoisted — the technique's tax
  std::vector<int> log;

  void step() {
    MFC_RS_BEGIN(rs);
    for (i = 0; i < 3; ++i) {
      log.push_back(i);
      MFC_RS_YIELD(rs);
    }
    log.push_back(99);
    MFC_RS_END(rs);
  }
};

TEST(RetSwitch, ResumesAtYieldPoint) {
  RsCounter c;
  c.step();  // logs 0, suspends
  c.step();  // logs 1
  c.step();  // logs 2
  EXPECT_FALSE(c.rs.finished());
  c.step();  // loop ends, logs 99, finishes
  EXPECT_TRUE(c.rs.finished());
  EXPECT_EQ(c.log, (std::vector<int>{0, 1, 2, 99}));
}

TEST(RetSwitch, ResetRestartsTheFunction) {
  RsCounter c;
  while (!c.rs.finished()) c.step();
  c.rs.reset();
  c.log.clear();
  c.step();
  EXPECT_EQ(c.log, (std::vector<int>{0}));
}

}  // namespace
