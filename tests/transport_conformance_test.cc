// Transport conformance battery (labeled transport).
//
// One battery, three backends: the in-process lock-free queues, the shm
// SPSC rings, and the AF_UNIX socket stream — each behind Machine::Config's
// transport knob, in loopback mode (nprocs == 1, every cross-PE send over
// the wire inside one process: the tsan-visible leg) and in true
// multi-process mode (Machine::run forks; only cross-process sends hit the
// wire). The battery checks what a machine layer must never get wrong:
// per-pair ordering, exactly-once delivery under seeded chaos
// delay/reorder, big-payload integrity through the chunk and rendezvous
// paths, full migration storms (all three techniques, canary + address
// stability + bit-identical same-seed replay), and balanced quiescence /
// envelope books at shutdown (Machine::run itself asserts the latter).
//
// Fork-based legs are compiled out under ThreadSanitizer (MFC_TSAN): tsan
// does not follow forked children. Loopback legs keep the full wire path
// under tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chaos/storm.h"
#include "converse/machine.h"
#include "migrate/common_arena.h"
#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/migratable.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "trace/metrics.h"
#include "util/digest.h"
#include "util/rng.h"

namespace {

namespace cv = mfc::converse;
using mfc::fnv1a;
using mfc::fnv1a_mix;
using mfc::kFnvOffset;
using mfc::SplitMix64;
using Transport = cv::Machine::Config::Transport;

constexpr Transport kBackends[] = {Transport::kInProc, Transport::kShm,
                                   Transport::kSocket};
const char* backend_name(Transport t) {
  switch (t) {
    case Transport::kInProc: return "inproc";
    case Transport::kShm: return "shm";
    case Transport::kSocket: return "socket";
  }
  return "?";
}

cv::Machine::Config base_config(Transport t, int npes, int nprocs) {
  cv::Machine::Config mc;
  mc.npes = npes;
  mc.nprocs = nprocs;
  mc.transport = t;
  mc.iso_slot_bytes = 16 * 1024;
  mc.iso_slots_per_pe = 64;
  return mc;
}

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  SplitMix64 r(a ^ (b + 0x9e3779b97f4a7c15ULL));
  return r.next();
}

void fill_pattern(unsigned char* p, std::size_t n, std::uint64_t key) {
  SplitMix64 r(key);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<unsigned char>(r.next());
  }
}

bool check_pattern(const unsigned char* p, std::size_t n, std::uint64_t key) {
  SplitMix64 r(key);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != static_cast<unsigned char>(r.next())) return false;
  }
  return true;
}

// ---- Ordering / exactly-once battery ---------------------------------------
//
// Every PE floods every other PE with sequenced messages. Receivers verify
// per-(src, dest) FIFO (no chaos) or exactly-once completeness (chaos
// delay on: order may legally invert, identity may not). All verdicts
// travel to PE 0 as messages, so the multi-process legs report through the
// parent — per-process globals on child PEs are invisible to the test body.

struct SeqMsg {
  std::int32_t src = 0;
  std::int32_t seq = 0;
  void pup(mfc::pup::Er& p) { p | src | seq; }
};

struct SeqState {
  int npes = 0;
  int per_pair = 0;
  bool expect_fifo = true;
  // Per-process receive books: [dest][src] → next expected seq (FIFO) or
  // received count (chaos). Only this process's PEs' rows are touched.
  std::vector<std::vector<std::int32_t>> next_seq;
  std::vector<std::vector<std::vector<bool>>> seen;  // [dest][src][seq]
  std::atomic<std::uint64_t> local_violations{0};
  // PE0 (parent process) totals.
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> pes_reported{0};
};
SeqState* g_seq = nullptr;

cv::HandlerId h_seq, h_seq_report;

void ensure_seq_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_seq = cv::register_handler([](cv::Message&& m) {
      SeqState* s = g_seq;
      const auto msg = m.as<SeqMsg>();
      const int dest = cv::my_pe();
      bool bad = false;
      if (s->expect_fifo) {
        bad = s->next_seq[dest][msg.src] != msg.seq;
        s->next_seq[dest][msg.src] = msg.seq + 1;
      } else {
        const std::size_t q = static_cast<std::size_t>(msg.seq);
        bad = s->seen[dest][msg.src][q];  // duplicate delivery
        s->seen[dest][msg.src][q] = true;
        s->next_seq[dest][msg.src] += 1;  // count received
      }
      if (bad) s->local_violations.fetch_add(1, std::memory_order_relaxed);
    });
    h_seq_report = cv::register_handler([](cv::Message&& m) {
      // PE0: one report per PE {violations on that PE's rows}.
      g_seq->violations.fetch_add(m.as<std::uint64_t>(),
                                  std::memory_order_relaxed);
      g_seq->pes_reported.fetch_add(1, std::memory_order_relaxed);
    });
  });
}

void seq_entry(int pe) {
  SeqState* s = g_seq;
  for (int seq = 0; seq < s->per_pair; ++seq) {
    for (int dest = 0; dest < s->npes; ++dest) {
      if (dest == pe) continue;
      cv::send_value(dest, h_seq, SeqMsg{pe, seq});
    }
  }
  cv::wait_quiescence();
  // Everything sent everywhere is delivered: audit this PE's receive rows.
  std::uint64_t bad = 0;
  for (int src = 0; src < s->npes; ++src) {
    if (src == pe) continue;
    if (s->next_seq[pe][src] != s->per_pair) ++bad;
    if (!s->expect_fifo) {
      for (int q = 0; q < s->per_pair; ++q) {
        if (!s->seen[pe][src][static_cast<std::size_t>(q)]) ++bad;
      }
    }
  }
  cv::send_value(0, h_seq_report, bad);
  // The handler-observed violations live in this process; ship them exactly
  // once per process (the PE with id % ppn == 0 reports the whole count).
  cv::barrier();
  if (pe % (s->npes / cv::num_procs()) == 0) {
    cv::send_value(0, h_seq_report,
                   s->local_violations.exchange(0, std::memory_order_relaxed));
  }
  cv::wait_quiescence();
}

void run_seq_battery(Transport t, int nprocs, bool chaos_delay,
                     std::uint64_t seed) {
  const int npes = 4;
  const int per_pair = 200;
  ensure_seq_handlers();
  auto s = std::make_unique<SeqState>();
  s->npes = npes;
  s->per_pair = per_pair;
  s->expect_fifo = !chaos_delay;
  s->next_seq.assign(npes, std::vector<std::int32_t>(npes, 0));
  s->seen.assign(npes, std::vector<std::vector<bool>>(
                           npes, std::vector<bool>(per_pair, false)));
  g_seq = s.get();

  cv::Machine::Config mc = base_config(t, npes, nprocs);
  if (chaos_delay) {
    mc.chaos.enabled = true;
    mc.chaos.seed = seed;
    mc.chaos.delivery_delay = 0.25;
    mc.chaos.max_delay_ticks = 16;
  }
  cv::Machine::run(mc, seq_entry);

  EXPECT_EQ(s->violations.load(), 0u)
      << backend_name(t) << " nprocs=" << nprocs
      << (chaos_delay ? " (chaos)" : "");
  // One audit report per PE plus one violation report per process.
  EXPECT_EQ(s->pes_reported.load(),
            static_cast<std::uint64_t>(npes + nprocs));
  const cv::PoolStats ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed);
  g_seq = nullptr;
}

TEST(TransportConformance, OrderingPerPairLoopback) {
  for (Transport t : kBackends) {
    SCOPED_TRACE(backend_name(t));
    run_seq_battery(t, 1, /*chaos_delay=*/false, 1);
  }
}

TEST(TransportConformance, ExactlyOnceUnderSeededChaosLoopback) {
  for (Transport t : kBackends) {
    SCOPED_TRACE(backend_name(t));
    run_seq_battery(t, 1, /*chaos_delay=*/true, 0xC4A05 + 17);
  }
}

#ifndef MFC_TSAN
TEST(TransportConformance, OrderingPerPairMultiProcess) {
  run_seq_battery(Transport::kShm, 2, /*chaos_delay=*/false, 1);
  run_seq_battery(Transport::kSocket, 2, /*chaos_delay=*/false, 1);
}
#endif

// ---- Big-payload round trip -------------------------------------------------
//
// PE 0 ships a 1 MiB patterned payload as a multi-span message to the last
// PE, which echoes its FNV digest (and length) back. Exercises the shm
// chunk reassembly (1 MiB through 64 KiB rings) and, cross-process, the
// socket rendezvous (RTS/CTS + writev straight from the spans).

struct BigState {
  std::size_t len = 0;
  std::uint64_t digest = 0;
  std::atomic<std::uint64_t> echoed_digest{0};
  std::atomic<int> done{0};
};
BigState* g_big = nullptr;

cv::HandlerId h_big, h_big_echo;

void ensure_big_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_big = cv::register_handler([](cv::Message&& m) {
      // Echo digest + length; payload itself stays here (child process).
      std::uint64_t d = fnv1a(m.payload.data(), m.payload.size());
      d = fnv1a_mix(d, m.payload.size());
      cv::send_value(0, h_big_echo, d);
    });
    h_big_echo = cv::register_handler([](cv::Message&& m) {
      g_big->echoed_digest.store(m.as<std::uint64_t>());
      g_big->done.store(1);
    });
  });
}

void big_entry(int pe) {
  BigState* s = g_big;
  const int dest = cv::num_pes() - 1;
  if (pe == 0) {
    // Patterned payload sliced into 7 deliberately uneven spans.
    std::vector<char> buf(s->len);
    fill_pattern(reinterpret_cast<unsigned char*>(buf.data()), buf.size(),
                 0xB16B00B5);
    std::uint64_t expect = fnv1a(buf.data(), buf.size());
    expect = fnv1a_mix(expect, buf.size());
    s->digest = expect;
    std::vector<cv::SendSpan> spans;
    std::size_t off = 0;
    const std::size_t cuts[] = {1,       4095,    4096,   65536,
                                 100000, 333333, s->len};
    for (std::size_t c : cuts) {
      spans.push_back({buf.data() + off, c - off});
      off = c;
    }
    bool consumed = false;
    cv::send_spans(dest, h_big, spans.data(), spans.size(),
                   [&consumed] { consumed = true; });
    // The send contract: spans fully consumed before return — safe to
    // scribble over the buffer now.
    EXPECT_TRUE(consumed);
    std::memset(buf.data(), 0xEE, buf.size());
  }
  cv::wait_quiescence();
}

void run_big_battery(Transport t, int nprocs) {
  const int npes = 4;
  ensure_big_handlers();
  auto s = std::make_unique<BigState>();
  s->len = 1024 * 1024;
  g_big = s.get();

  cv::Machine::Config mc = base_config(t, npes, nprocs);
  cv::Machine::run(mc, big_entry);

  EXPECT_EQ(s->done.load(), 1);
  EXPECT_EQ(s->echoed_digest.load(), s->digest)
      << backend_name(t) << " nprocs=" << nprocs;
  if (t == Transport::kShm) {
    // 1 MiB through 64 KiB rings must have chunked.
    EXPECT_GT(mfc::metrics::total(mfc::metrics::Counter::kWireChunks), 0u);
  }
  if (t == Transport::kSocket && nprocs > 1) {
    // Cross-process over the default 256 KiB threshold → rendezvous.
    EXPECT_GT(mfc::metrics::total(mfc::metrics::Counter::kWireRendezvous),
              0u);
  }
  g_big = nullptr;
}

TEST(TransportConformance, BigPayloadLoopback) {
  for (Transport t : kBackends) {
    SCOPED_TRACE(backend_name(t));
    run_big_battery(t, 1);
  }
}

#ifndef MFC_TSAN
TEST(TransportConformance, BigPayloadRendezvousMultiProcess) {
  run_big_battery(Transport::kShm, 2);
  run_big_battery(Transport::kSocket, 2);
}
#endif

// ---- Migration mini-storm ---------------------------------------------------
//
// A compact cross-process migration storm: workers on all three techniques
// migrate along seed-derived itineraries; every hop ships the thread as a
// scatter-gather manifest (send_spans with the destructive pack epilogue in
// on_consumed). Workers verify stack canaries and address stability after
// every hop and carry a running digest on their own migrating stacks; all
// verdicts funnel to PE 0 as messages. The final digest is a pure function
// of (seed, workers, rounds, npes) — bit-identical across runs and
// backends.

struct MsDock {
  std::int32_t wid = 0;
  std::int32_t round = 0;
  void pup(mfc::pup::Er& p) { p | wid | round; }
};

struct MsShip {
  std::int32_t wid = 0;
  std::int32_t round = 0;
  std::vector<char> wire;
  void pup(mfc::pup::Er& p) { p | wid | round | wire; }
};

struct MsDone {
  std::int32_t wid = 0;
  std::uint64_t digest = 0;
  std::uint64_t failures = 0;
  void pup(mfc::pup::Er& p) { p | wid | digest | failures; }
};

struct MsState {
  std::uint64_t seed = 1;
  int npes = 4;
  int workers = 6;
  int rounds = 3;
  std::size_t stack_bytes = 16 * 1024;

  // Per-process registries (mirrors of the full storm driver's).
  std::mutex mu;
  std::unordered_map<int, mfc::migrate::MigratableThread*> threads;
  struct Arrival {
    mfc::ult::Thread* t;
    std::int32_t round;
  };
  std::unordered_map<int, std::vector<Arrival>> arrived;  // per local PE
  std::unordered_map<int, mfc::ult::Thread*> parked_mains;

  // PE 0 (parent) coordinator state.
  int arrivals = 0;
  int dones = 0;
  mfc::ult::Thread* coordinator = nullptr;
  bool waiting_arrivals = false;
  bool waiting_dones = false;
  std::uint64_t done_digest = kFnvOffset;
  std::uint64_t failures = 0;
};
MsState* g_ms = nullptr;

int ms_dest(const MsState& s, int wid, int round) {
  return static_cast<int>(
      mix2(s.seed ^ 0xD857,
           static_cast<std::uint64_t>(wid) * 1000003ULL +
               static_cast<std::uint64_t>(round)) %
      static_cast<std::uint64_t>(s.npes));
}

std::uint64_t ms_pat_key(const MsState& s, int wid, int r) {
  return mix2(s.seed ^ 0x57AC4, static_cast<std::uint64_t>(wid) * 7919ULL +
                                    static_cast<std::uint64_t>(r));
}

cv::HandlerId h_ms_dock, h_ms_ship, h_ms_arrived, h_ms_release, h_ms_done,
    h_ms_finish;

// wid arrives as a lambda capture and from then on lives in this frame —
// i.e. on the migrating stack. Keying identity off ult thread ids would be
// wrong here: the id counter is forked, so workers born in different
// processes can collide.
void ms_worker_body(int wid) {
  MsState* s = g_ms;
  unsigned char canary[192];
  const auto canary_addr = reinterpret_cast<std::uintptr_t>(&canary[0]);
  fill_pattern(canary, sizeof canary, ms_pat_key(*s, wid, 0));

  std::uint64_t digest = kFnvOffset;
  std::uint64_t failures = 0;
  for (int r = 0; r < s->rounds; ++r) {
    const int dest = ms_dest(*s, wid, r);
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(wid));
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(r));
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(dest));

    cv::send_value(cv::my_pe(), h_ms_dock, MsDock{wid, r});
    mfc::ult::suspend();

    // Awake on the destination — possibly in a different process.
    if (cv::my_pe() != dest) ++failures;
    if (reinterpret_cast<std::uintptr_t>(&canary[0]) != canary_addr) {
      ++failures;  // the paper's core guarantee: same address everywhere
    }
    if (!check_pattern(canary, sizeof canary, ms_pat_key(*s, wid, r))) {
      ++failures;
    }
    fill_pattern(canary, sizeof canary, ms_pat_key(*s, wid, r + 1));
  }
  cv::send_value(0, h_ms_done, MsDone{wid, digest, failures});
}

mfc::migrate::MigratableThread* ms_make_worker(const MsState& s, int wid,
                                               int pe) {
  const auto body = [wid] { ms_worker_body(wid); };
  switch (wid % 3) {
    case 0:
      return new mfc::migrate::StackCopyThread(body, s.stack_bytes);
    case 1:
      return new mfc::migrate::IsoThread(body, pe, s.stack_bytes);
    default:
      return new mfc::migrate::MemAliasThread(body, s.stack_bytes);
  }
}

void ensure_ms_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_ms_dock = cv::register_handler([](cv::Message&& m) {
      MsState* s = g_ms;
      const auto d = m.as<MsDock>();
      mfc::migrate::MigratableThread* t;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        t = s->threads.at(d.wid);
        s->threads.erase(d.wid);
      }
      // Scatter-gather ship, exactly the storm driver's path: ShipMsg-shaped
      // prefix + manifest spans, destructive epilogue in on_consumed.
      mfc::migrate::ImageManifest man = t->pack_manifest(true);
      std::vector<char> scratch;
      const auto img_spans = man.wire_spans(&scratch);
      std::size_t wire_len = 0;
      for (const auto& r : img_spans) wire_len += r.len;

      std::int32_t wid = d.wid, round = d.round;
      mfc::pup::Sizer sz;
      sz | wid | round;
      std::vector<char> prefix(sz.size() + sizeof(std::size_t));
      mfc::pup::MemPacker p(prefix.data(), prefix.size());
      p | wid | round;
      std::size_t len_word = wire_len;
      p.bytes(&len_word, sizeof len_word);

      std::vector<cv::SendSpan> spans;
      spans.reserve(img_spans.size() + 1);
      spans.push_back({prefix.data(), prefix.size()});
      for (const auto& r : img_spans) spans.push_back({r.data, r.len});

      cv::send_spans(ms_dest(*s, d.wid, d.round), h_ms_ship, spans.data(),
                     spans.size(), [t] {
                       t->complete_pack();
                       delete t;
                     });
    });
    h_ms_ship = cv::register_handler([](cv::Message&& m) {
      MsState* s = g_ms;
      auto ship = m.as<MsShip>();
      mfc::migrate::ThreadImage image;
      mfc::pup::from_bytes(ship.wire, image);
      auto* t = mfc::migrate::MigratableThread::unpack(std::move(image),
                                                      cv::my_pe());
      t->set_delete_on_exit(true);
      {
        std::lock_guard<std::mutex> lock(s->mu);
        s->threads[ship.wid] = t;
        s->arrived[cv::my_pe()].push_back({t, ship.round});
      }
      cv::send_value(0, h_ms_arrived, std::int32_t{ship.round});
    });
    h_ms_arrived = cv::register_handler([](cv::Message&&) {
      MsState* s = g_ms;
      if (++s->arrivals == s->workers && s->waiting_arrivals) {
        s->waiting_arrivals = false;
        cv::ready_thread(s->coordinator);
      }
    });
    h_ms_release = cv::register_handler([](cv::Message&& m) {
      MsState* s = g_ms;
      const auto round = m.as<std::int32_t>();
      std::vector<mfc::ult::Thread*> batch;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        auto& list = s->arrived[cv::my_pe()];
        for (auto it = list.begin(); it != list.end();) {
          if (it->round == round) {
            batch.push_back(it->t);
            it = list.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (auto* t : batch) cv::ready_thread(t);
    });
    h_ms_done = cv::register_handler([](cv::Message&& m) {
      MsState* s = g_ms;
      const auto done = m.as<MsDone>();
      // Order-independent fold: arrival order of done messages varies.
      s->done_digest += mix2(static_cast<std::uint64_t>(done.wid) + 1,
                             done.digest);
      s->failures += done.failures;
      if (++s->dones == s->workers && s->waiting_dones) {
        s->waiting_dones = false;
        cv::ready_thread(s->coordinator);
      }
    });
    h_ms_finish = cv::register_handler([](cv::Message&&) {
      MsState* s = g_ms;
      mfc::ult::Thread* main = nullptr;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        auto it = s->parked_mains.find(cv::my_pe());
        if (it != s->parked_mains.end()) {
          main = it->second;
          s->parked_mains.erase(it);
        }
      }
      if (main != nullptr) cv::ready_thread(main);
    });
  });
}

void ms_entry(int pe) {
  MsState* s = g_ms;
  for (int w = 0; w < s->workers; ++w) {
    if (w % s->npes != pe) continue;
    auto* t = ms_make_worker(*s, w, pe);
    t->set_delete_on_exit(true);
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->threads[w] = t;
    }
    cv::ready_thread(t);
  }
  if (pe != 0) {
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->parked_mains[pe] = cv::pe_scheduler().running();
    }
    mfc::ult::suspend();  // until h_ms_finish
    return;
  }

  // PE 0 coordinates the rounds: wait all arrivals, release the batch.
  s->coordinator = cv::pe_scheduler().running();
  for (int r = 0; r < s->rounds; ++r) {
    if (s->arrivals < s->workers) {
      s->waiting_arrivals = true;
      mfc::ult::suspend();
    }
    s->arrivals = 0;
    cv::broadcast(h_ms_release, mfc::pup::to_bytes(std::int32_t{r}));
  }
  if (s->dones < s->workers) {
    s->waiting_dones = true;
    mfc::ult::suspend();
  }
  cv::broadcast(h_ms_finish, {});
  cv::wait_quiescence();
}

struct MsResult {
  std::uint64_t digest = 0;
  std::uint64_t failures = 0;
};

MsResult run_mini_storm(Transport t, int npes, int nprocs, int workers,
                        int rounds, std::uint64_t seed) {
  // Shared execution addresses for stack-copy and memory-alias workers must
  // exist before Machine::run forks.
  mfc::migrate::CommonStackArena::instance();
  ensure_ms_handlers();
  auto s = std::make_unique<MsState>();
  s->seed = seed;
  s->npes = npes;
  s->workers = workers;
  s->rounds = rounds;
  g_ms = s.get();

  cv::Machine::Config mc = base_config(t, npes, nprocs);
  cv::Machine::run(mc, ms_entry);

  MsResult out{s->done_digest, s->failures};
  EXPECT_EQ(s->dones, workers);
  const cv::PoolStats ps = cv::pool_stats();
  EXPECT_EQ(ps.allocated, ps.freed);
  g_ms = nullptr;
  return out;
}

TEST(TransportConformance, MiniStormAllBackendsLoopbackReplayIdentical) {
  // Same seed, three backends, two runs each: zero failures and one digest.
  std::uint64_t expect = 0;
  for (Transport t : kBackends) {
    SCOPED_TRACE(backend_name(t));
    const MsResult a = run_mini_storm(t, 4, 1, 6, 3, 0x5EED1);
    const MsResult b = run_mini_storm(t, 4, 1, 6, 3, 0x5EED1);
    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(b.failures, 0u);
    EXPECT_EQ(a.digest, b.digest) << "same-seed replay diverged";
    if (expect == 0) expect = a.digest;
    EXPECT_EQ(a.digest, expect) << "digest differs across backends";
  }
}

#ifndef MFC_TSAN
TEST(TransportConformance, MiniStormMultiProcessBothWires) {
  // Cross-process migration with all three techniques: the isomalloc lease,
  // the inherited common arena, and the rebuilt memalias backing all in
  // play. Digest must match the loopback/in-process value for the same
  // (seed, shape).
  const MsResult ref = run_mini_storm(Transport::kInProc, 4, 1, 6, 3, 0xAB1E);
  EXPECT_EQ(ref.failures, 0u);
  for (Transport t : {Transport::kShm, Transport::kSocket}) {
    SCOPED_TRACE(backend_name(t));
    const MsResult r = run_mini_storm(t, 4, 2, 6, 3, 0xAB1E);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.digest, ref.digest);
  }
}

TEST(TransportConformance, Acceptance64Pe4ProcStormReplays) {
  // The acceptance shape: 64 PEs across 4 processes, all three techniques,
  // run twice — bit-identical digests. Kept to few rounds/workers because
  // CI hosts may have a single core; the topology, not the volume, is the
  // point.
  for (Transport t : {Transport::kShm, Transport::kSocket}) {
    SCOPED_TRACE(backend_name(t));
    const MsResult a = run_mini_storm(t, 64, 4, 24, 3, 0xACC3);
    const MsResult b = run_mini_storm(t, 64, 4, 24, 3, 0xACC3);
    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(b.failures, 0u);
    EXPECT_EQ(a.digest, b.digest);
  }
}
#endif

// ---- Full storm driver over the wire ---------------------------------------
//
// The legacy storm driver (chare-array traffic, invariant checkers, FT
// kill/recover) in loopback wire mode: every cross-PE message of the whole
// stack rides the ring/socket codec. The FT leg keeps chaos kill storms in
// the battery — PE death, heartbeat detection, rollback — on a wire.

TEST(TransportConformance, StormDriverLoopbackWires) {
  for (int transport : {1, 2}) {
    SCOPED_TRACE(transport == 1 ? "shm" : "socket");
    mfc::chaos::StormOptions opt;
    opt.seed = 77;
    opt.npes = 4;
    opt.workers = 6;
    opt.rounds = 3;
    opt.transport = transport;
    const mfc::chaos::StormReport rep = mfc::chaos::run_storm(opt);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.thread_migrations,
              static_cast<std::uint64_t>(opt.workers * opt.rounds));
  }
}

#ifndef MFC_TSAN
TEST(TransportConformance, FtKillStormOverShmLoopback) {
  mfc::chaos::StormOptions opt;
  opt.seed = 31;
  opt.npes = 4;
  opt.workers = 6;
  opt.rounds = 6;
  opt.transport = 1;
  opt.ft_checkpoint_every = 2;
  opt.ft_kill_every = 2;
  opt.ft_ping_interval_us = 500;
  opt.ft_timeout_us = 20000;
  const mfc::chaos::StormReport rep = mfc::chaos::run_storm(opt);
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(rep.ft_kills, 0u);
  EXPECT_EQ(rep.ft_recoveries, rep.ft_kills);
}
#endif

}  // namespace
