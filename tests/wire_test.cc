// Wire codec short-read / short-write torture (labeled transport).
//
// The socket transport's framing must survive whatever the kernel does to
// its reads and writes: sendmsg taking one byte of a 40-entry iovec,
// recv returning single bytes across a header boundary, EAGAIN landing
// mid-payload. These tests drive write_frame/Reader through a deterministic
// in-memory pipe that slices every transfer at seeded points — including the
// 1-byte worst case — and assert the frames reassemble byte-identically,
// with the reader's resumable state machine never losing its place.
#include "converse/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "migrate/checkpoint.h"
#include "util/rng.h"

namespace {

using namespace mfc::converse::wire;
using mfc::SplitMix64;

/// In-memory pipe that injects short transfers. Writes append at most
/// `write_cap` bytes per call (walking the iovec list exactly as a kernel
/// partial sendmsg would); reads pop at most `read_cap` bytes. A drained
/// pipe reads as would-block (-1) until `eof` is set, then as EOF (0).
struct ChoppyPipe {
  std::deque<char> bytes;
  std::size_t write_cap = SIZE_MAX;
  std::size_t read_cap = SIZE_MAX;
  bool eof = false;
  /// Optional per-call cap rng: caps drawn in [1, cap_max] when set.
  SplitMix64* cap_rng = nullptr;
  std::size_t cap_max = 0;

  std::size_t next_cap(std::size_t fixed) {
    if (cap_rng == nullptr) return fixed;
    return 1 + static_cast<std::size_t>(cap_rng->next_below(cap_max));
  }

  std::ptrdiff_t write_some(const iovec* iov, int iovcnt) {
    std::size_t budget = next_cap(write_cap);
    std::size_t wrote = 0;
    for (int i = 0; i < iovcnt && budget != 0; ++i) {
      const char* p = static_cast<const char*>(iov[i].iov_base);
      const std::size_t take =
          iov[i].iov_len < budget ? iov[i].iov_len : budget;
      bytes.insert(bytes.end(), p, p + take);
      wrote += take;
      budget -= take;
    }
    return static_cast<std::ptrdiff_t>(wrote);
  }

  std::ptrdiff_t read_some(void* dst, std::size_t n) {
    if (bytes.empty()) return eof ? 0 : -1;
    std::size_t take = next_cap(read_cap);
    if (take > n) take = n;
    if (take > bytes.size()) take = bytes.size();
    for (std::size_t i = 0; i < take; ++i) {
      static_cast<char*>(dst)[i] = bytes.front();
      bytes.pop_front();
    }
    return static_cast<std::ptrdiff_t>(take);
  }
};

/// Collects every completed frame. With `use_scratch` the sink returns
/// nullptr from on_header, exercising the reader's internal scratch path.
struct CollectSink {
  struct Frame {
    Header h;
    std::vector<char> payload;
  };
  std::vector<Frame> frames;
  bool use_scratch = false;
  std::vector<char> landing;

  char* on_header(const Header& h) {
    if (use_scratch) return nullptr;
    landing.assign(h.payload_len, '\0');
    return landing.data();
  }
  void on_frame(const Header& h, char* payload) {
    Frame f;
    f.h = h;
    if (h.payload_len != 0) f.payload.assign(payload, payload + h.payload_len);
    frames.push_back(std::move(f));
  }
};

std::vector<char> patterned(std::size_t n, std::uint64_t salt) {
  std::vector<char> v(n);
  SplitMix64 rng(salt);
  for (auto& b : v) b = static_cast<char>(rng.next());
  return v;
}

Header make_header(std::uint64_t payload_len, std::uint32_t seq) {
  Header h;
  h.kind = static_cast<std::uint32_t>(Kind::kEager);
  h.handler = seq;
  h.src_pe = static_cast<std::int32_t>(seq % 7);
  h.dest_pe = static_cast<std::int32_t>(seq % 5);
  h.payload_len = payload_len;
  h.total_len = payload_len;
  h.msg_id = 0x1234567800ULL + seq;
  h.trace_flow = seq * 3;
  return h;
}

TEST(Wire, SpansGatherMatchesConcatenation) {
  const std::vector<char> a = patterned(13, 1), b = patterned(0, 2),
                          c = patterned(77, 3);
  const Span spans[] = {{a.data(), a.size()}, {b.data(), b.size()},
                        {c.data(), c.size()}};
  ASSERT_EQ(spans_total(spans, 3), a.size() + c.size());
  std::vector<char> out(spans_total(spans, 3));
  spans_gather(out.data(), spans, 3);
  std::vector<char> expect = a;
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(out, expect);
}

TEST(Wire, OneByteReadsReassembleMultiSpanFrames) {
  // The brutal case: the reader sees the stream one byte at a time, across
  // header boundaries and multi-span payload boundaries alike.
  ChoppyPipe pipe;
  pipe.read_cap = 1;

  const std::vector<char> part1 = patterned(100, 11);
  const std::vector<char> part2 = patterned(1, 12);
  const std::vector<char> part3 = patterned(301, 13);
  const Span spans[] = {{part1.data(), part1.size()},
                        {part2.data(), part2.size()},
                        {part3.data(), part3.size()}};
  const std::size_t total = spans_total(spans, 3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(write_frame(pipe, make_header(total, i), spans, 3));
  }

  Reader reader;
  CollectSink sink;
  EXPECT_EQ(reader.pump(pipe, sink), PumpResult::kWouldBlock);
  EXPECT_TRUE(reader.idle());
  ASSERT_EQ(sink.frames.size(), 5u);

  std::vector<char> expect = part1;
  expect.insert(expect.end(), part2.begin(), part2.end());
  expect.insert(expect.end(), part3.begin(), part3.end());
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.frames[i].h.handler, i);
    EXPECT_EQ(sink.frames[i].h.payload_len, total);
    EXPECT_EQ(sink.frames[i].payload, expect) << "frame " << i;
  }
}

TEST(Wire, PartialWritevReturnsAdvanceMidIovec) {
  // write_cap = 1 forces write_frame to re-enter once per byte, walking the
  // iovec list through every possible partial position (including inside
  // the header).
  ChoppyPipe pipe;
  pipe.write_cap = 1;

  const std::vector<char> payload = patterned(257, 21);
  const Span spans[] = {{payload.data(), 64}, {payload.data() + 64, 0},
                        {payload.data() + 64, payload.size() - 64}};
  Header h = make_header(payload.size(), 99);
  ASSERT_TRUE(write_frame(pipe, h, spans, 3));
  ASSERT_EQ(pipe.bytes.size(), sizeof(Header) + payload.size());

  // The stream is the header bytes followed by the exact payload.
  std::vector<char> stream(pipe.bytes.begin(), pipe.bytes.end());
  Header echoed;
  std::memcpy(&echoed, stream.data(), sizeof echoed);
  EXPECT_EQ(echoed.handler, 99u);
  EXPECT_EQ(echoed.payload_len, payload.size());
  EXPECT_TRUE(std::memcmp(stream.data() + sizeof(Header), payload.data(),
                          payload.size()) == 0);
}

TEST(Wire, ReaderResumesAcrossIncrementalDelivery) {
  // Bytes arrive in dribs between pump calls; the reader must hold partial
  // header/payload state across kWouldBlock returns without corruption.
  ChoppyPipe staging;  // holds the full stream
  const std::vector<char> payload = patterned(500, 31);
  const Span span{payload.data(), payload.size()};
  ASSERT_TRUE(write_frame(staging, make_header(payload.size(), 7), &span, 1));

  ChoppyPipe pipe;
  Reader reader;
  CollectSink sink;
  SplitMix64 rng(404);
  while (!staging.bytes.empty()) {
    // Move a random dribble into the live pipe, then pump.
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.next_below(
                std::min<std::uint64_t>(staging.bytes.size(), 17)));
    for (std::size_t i = 0; i < n; ++i) {
      pipe.bytes.push_back(staging.bytes.front());
      staging.bytes.pop_front();
    }
    EXPECT_EQ(reader.pump(pipe, sink), PumpResult::kWouldBlock);
  }
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0].payload, payload);
  EXPECT_TRUE(reader.idle());
}

TEST(Wire, EofAtFrameBoundaryIsCleanAndScratchPathWorks) {
  ChoppyPipe pipe;
  const std::vector<char> payload = patterned(64, 41);
  const Span span{payload.data(), payload.size()};
  ASSERT_TRUE(write_frame(pipe, make_header(payload.size(), 1), &span, 1));
  pipe.eof = true;

  Reader reader;
  CollectSink sink;
  sink.use_scratch = true;  // on_header returns nullptr → internal scratch
  EXPECT_EQ(reader.pump(pipe, sink), PumpResult::kEof);
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0].payload, payload);
  EXPECT_TRUE(reader.idle());
}

TEST(Wire, EmptyPayloadFrames) {
  ChoppyPipe pipe;
  pipe.read_cap = 1;
  ASSERT_TRUE(write_frame(pipe, make_header(0, 3), nullptr, 0));
  ASSERT_TRUE(write_frame(pipe, make_header(0, 4), nullptr, 0));
  Reader reader;
  CollectSink sink;
  EXPECT_EQ(reader.pump(pipe, sink), PumpResult::kWouldBlock);
  ASSERT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(sink.frames[0].h.handler, 3u);
  EXPECT_EQ(sink.frames[1].h.handler, 4u);
  EXPECT_TRUE(sink.frames[0].payload.empty());
}

TEST(Wire, FuzzSeededSplitPoints) {
  // 32 seeded trials: random span lists (zero-length spans included),
  // random per-call read/write caps, several frames per trial. Every trial
  // must reassemble every frame byte-identically with the reader idle at
  // the end — whatever the slicing.
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    SplitMix64 rng(0xA11CE + trial * 0x9e3779b97f4a7c15ULL);
    SplitMix64 caps(trial * 77 + 5);
    ChoppyPipe pipe;
    pipe.cap_rng = &caps;
    pipe.cap_max = 1 + static_cast<std::size_t>(rng.next_below(97));

    const int nframes = 1 + static_cast<int>(rng.next_below(6));
    std::vector<std::vector<char>> expected;
    for (int f = 0; f < nframes; ++f) {
      const std::size_t nspans = 1 + rng.next_below(8);
      std::vector<std::vector<char>> parts;
      std::vector<Span> spans;
      std::vector<char> concat;
      for (std::size_t s = 0; s < nspans; ++s) {
        const std::size_t len = static_cast<std::size_t>(rng.next_below(700));
        parts.push_back(patterned(len, rng.next()));
        concat.insert(concat.end(), parts.back().begin(), parts.back().end());
      }
      for (const auto& p : parts) spans.push_back({p.data(), p.size()});
      ASSERT_TRUE(write_frame(pipe,
                              make_header(concat.size(),
                                          static_cast<std::uint32_t>(f)),
                              spans.data(), spans.size()));
      expected.push_back(std::move(concat));
    }

    Reader reader;
    CollectSink sink;
    // Pump until drained; each call may stop at any would-block point.
    while (reader.pump(pipe, sink) == PumpResult::kWouldBlock &&
           !pipe.bytes.empty()) {
    }
    ASSERT_EQ(sink.frames.size(), expected.size()) << "trial " << trial;
    for (std::size_t f = 0; f < expected.size(); ++f) {
      ASSERT_EQ(sink.frames[f].payload, expected[f])
          << "trial " << trial << " frame " << f;
    }
    EXPECT_TRUE(reader.idle()) << "trial " << trial;
  }
}

// ---- Wire-framed checkpoint shipments ---------------------------------------
//
// The cross-process ft layer ships buddy checkpoint blobs as multi-span
// wire frames (a pup'd header span plus the borrowed blob span, exactly
// how converse::send_spans hands them to writev). These fuzz trials push
// real Checkpoint::encode() images through the choppy pipe — partial
// writev splits landing anywhere, including inside the checkpoint frame's
// own magic/CRC header — and assert (a) an intact shipment reassembles to
// a decodable checkpoint, and (b) truncations and byte flips of the
// reassembled bytes fail Checkpoint::decode with the right typed error,
// never garbage-in-the-PUP-layer.

using mfc::migrate::Checkpoint;
using mfc::migrate::CodecError;

TEST(Wire, FuzzCheckpointShipmentSplitAcrossWritevBoundaries) {
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    SplitMix64 rng(0xC4EC + trial * 0x9e3779b97f4a7c15ULL);
    SplitMix64 caps(trial * 131 + 7);
    ChoppyPipe pipe;
    pipe.cap_rng = &caps;
    pipe.cap_max = 1 + static_cast<std::size_t>(rng.next_below(61));

    // A shipment per trial: user-data sized to span several write calls.
    Checkpoint ckpt;
    const std::vector<char> user =
        patterned(64 + static_cast<std::size_t>(rng.next_below(4000)),
                  rng.next());
    ckpt.set_user_data(user);
    const std::vector<char> image = ckpt.encode();

    // Ship it the way ft_send_store does: a small header span, then the
    // checkpoint image split into 1..4 borrowed spans.
    const std::vector<char> head = patterned(48, rng.next());
    std::vector<Span> spans{{head.data(), head.size()}};
    const std::size_t nparts = 1 + rng.next_below(4);
    std::size_t off = 0;
    for (std::size_t s = 0; s < nparts; ++s) {
      const std::size_t remain = image.size() - off;
      const std::size_t len =
          s + 1 == nparts ? remain
                          : static_cast<std::size_t>(rng.next_below(remain));
      spans.push_back({image.data() + off, len});
      off += len;
    }
    ASSERT_TRUE(write_frame(pipe,
                            make_header(head.size() + image.size(),
                                        static_cast<std::uint32_t>(trial)),
                            spans.data(), spans.size()));

    Reader reader;
    CollectSink sink;
    while (reader.pump(pipe, sink) == PumpResult::kWouldBlock &&
           !pipe.bytes.empty()) {
    }
    ASSERT_EQ(sink.frames.size(), 1u) << "trial " << trial;
    EXPECT_TRUE(reader.idle()) << "trial " << trial;
    const std::vector<char>& payload = sink.frames[0].payload;
    ASSERT_EQ(payload.size(), head.size() + image.size());

    // Intact shipment: the checkpoint bytes after the header span decode.
    Checkpoint back;
    ASSERT_EQ(Checkpoint::decode(payload.data() + head.size(),
                                 payload.size() - head.size(), &back),
              CodecError::kOk)
        << "trial " << trial;
    EXPECT_EQ(back.user_data(), user);

    // Hostile shipments: seeded truncation points and byte flips within
    // the checkpoint image must produce typed errors, never kOk.
    for (int probe = 0; probe < 16; ++probe) {
      const std::size_t len = static_cast<std::size_t>(
          rng.next_below(image.size()));
      Checkpoint out;
      ASSERT_NE(Checkpoint::decode(payload.data() + head.size(), len, &out),
                CodecError::kOk)
          << "trial " << trial << " truncated to " << len;
    }
    for (int probe = 0; probe < 16; ++probe) {
      std::vector<char> bad(payload.begin() +
                                static_cast<std::ptrdiff_t>(head.size()),
                            payload.end());
      const std::size_t at =
          static_cast<std::size_t>(rng.next_below(bad.size()));
      bad[at] = static_cast<char>(bad[at] ^ (1 + rng.next_below(255)));
      Checkpoint out;
      const CodecError err = Checkpoint::decode(bad, &out);
      ASSERT_NE(err, CodecError::kOk)
          << "trial " << trial << " flip at " << at;
      // Frame layout: [magic 4][version 4][payload_len 8][crc 4][payload].
      CodecError want;
      if (at < 4) {
        want = CodecError::kBadMagic;
      } else if (at < 8) {
        want = CodecError::kBadVersion;
      } else if (at < 16) {
        want = CodecError::kTruncated;
      } else {
        want = CodecError::kBadCrc;
      }
      ASSERT_EQ(err, want) << "trial " << trial << " flip at " << at;
    }
  }
}

}  // namespace
