// AMPI tests: MPI semantics over migratable user-level threads.
#include "ampi/ampi.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

namespace ampi = mfc::ampi;

ampi::Options opts(int nranks, int npes) {
  ampi::Options o;
  o.nranks = nranks;
  o.npes = npes;
  return o;
}

TEST(Ampi, RankAndSize) {
  static std::atomic<int> sum{0};
  sum = 0;
  ampi::run(opts(8, 2), [] {
    EXPECT_EQ(ampi::size(), 8);
    EXPECT_GE(ampi::rank(), 0);
    EXPECT_LT(ampi::rank(), 8);
    sum.fetch_add(ampi::rank());
  });
  EXPECT_EQ(sum.load(), 28);  // each rank counted exactly once
}

TEST(Ampi, BlockingSendRecvRing) {
  static std::atomic<int> checked{0};
  checked = 0;
  ampi::run(opts(6, 3), [] {
    const int r = ampi::rank();
    const int n = ampi::size();
    int token = 100 + r;
    ampi::send(&token, 1, (r + 1) % n, /*tag=*/5);
    int got = -1;
    ampi::Status st;
    ampi::recv(&got, 1, (r + n - 1) % n, 5, &st);
    EXPECT_EQ(got, 100 + (r + n - 1) % n);
    EXPECT_EQ(st.source, (r + n - 1) % n);
    EXPECT_EQ(st.tag, 5);
    EXPECT_EQ(st.bytes, sizeof(int));
    checked.fetch_add(1);
  });
  EXPECT_EQ(checked.load(), 6);
}

TEST(Ampi, MessageOrderingBetweenPairs) {
  // MPI guarantees non-overtaking between a sender/receiver pair.
  ampi::run(opts(2, 2), [] {
    if (ampi::rank() == 0) {
      for (int i = 0; i < 50; ++i) ampi::send(&i, 1, 1, 9);
    } else {
      for (int i = 0; i < 50; ++i) {
        int v = -1;
        ampi::recv(&v, 1, 0, 9);
        ASSERT_EQ(v, i);
      }
    }
  });
}

TEST(Ampi, WildcardSourceAndTag) {
  ampi::run(opts(4, 2), [] {
    const int r = ampi::rank();
    if (r == 0) {
      long seen_sum = 0;
      for (int i = 1; i < 4; ++i) {
        long v = 0;
        ampi::Status st;
        ampi::recv(&v, 1, ampi::kAnySource, ampi::kAnyTag, &st);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        seen_sum += v;
      }
      EXPECT_EQ(seen_sum, (10 + 1) + (20 + 2) + (30 + 3));
    } else {
      long v = r * 10 + r;
      ampi::send(&v, 1, 0, r);
    }
  });
}

TEST(Ampi, NonBlockingWaitAll) {
  ampi::run(opts(4, 2), [] {
    const int r = ampi::rank();
    const int n = ampi::size();
    std::vector<double> inbox(static_cast<std::size_t>(n), -1.0);
    std::vector<ampi::Request> reqs;
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      reqs.push_back(
          ampi::irecv(&inbox[static_cast<std::size_t>(s)], 1,
                      ampi::Dtype::kDouble, s, 77));
    }
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      double v = r + 0.5;
      ampi::send(&v, 1, ampi::Dtype::kDouble, d, 77);
    }
    ampi::wait_all(reqs);
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      EXPECT_DOUBLE_EQ(inbox[static_cast<std::size_t>(s)], s + 0.5);
    }
  });
}

TEST(Ampi, SendRecvExchange) {
  ampi::run(opts(2, 1), [] {
    const int r = ampi::rank();
    const int peer = 1 - r;
    int mine = r + 7, theirs = -1;
    ampi::sendrecv(&mine, 1, ampi::Dtype::kInt, peer, 3, &theirs, 1, peer, 3);
    EXPECT_EQ(theirs, peer + 7);
  });
}

TEST(Ampi, CollectivesBcastReduceAllreduce) {
  ampi::run(opts(8, 4), [] {
    const int r = ampi::rank();
    // bcast
    int word = (r == 2) ? 424242 : 0;
    ampi::bcast(&word, 1, ampi::Dtype::kInt, 2);
    EXPECT_EQ(word, 424242);
    // reduce (sum of ranks) at root 1
    long mine = r, total = -1;
    ampi::reduce(&mine, &total, 1, ampi::Dtype::kLong, ampi::Op::kSum, 1);
    if (r == 1) {
      EXPECT_EQ(total, 28);
    }
    // allreduce max
    double d = r * 1.5, mx = -1;
    ampi::allreduce(&d, &mx, 1, ampi::Dtype::kDouble, ampi::Op::kMax);
    EXPECT_DOUBLE_EQ(mx, 7 * 1.5);
    // allreduce_one convenience
    EXPECT_EQ(ampi::allreduce_one<int>(1, ampi::Op::kSum), 8);
  });
}

TEST(Ampi, GatherAndAllgather) {
  ampi::run(opts(6, 3), [] {
    const int r = ampi::rank();
    const int n = ampi::size();
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    int mine = r * r;
    ampi::gather(&mine, 1, ampi::Dtype::kInt, all.data(), 0);
    if (r == 0) {
      for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i * i);
    }
    std::vector<int> all2(static_cast<std::size_t>(n), -1);
    ampi::allgather(&mine, 1, ampi::Dtype::kInt, all2.data());
    for (int i = 0; i < n; ++i) EXPECT_EQ(all2[static_cast<std::size_t>(i)], i * i);
  });
}

TEST(Ampi, BarrierSynchronizes) {
  static std::atomic<int> phase_count{0};
  phase_count = 0;
  ampi::run(opts(8, 2), [] {
    for (int round = 1; round <= 5; ++round) {
      phase_count.fetch_add(1);
      ampi::barrier();
      EXPECT_GE(phase_count.load(), 8 * round);
    }
  });
}

TEST(Ampi, YieldKeepsRanksLive) {
  ampi::run(opts(16, 2), [] {
    for (int i = 0; i < 20; ++i) ampi::yield();
    ampi::barrier();
  });
}

TEST(Ampi, DirectedMigrationMovesRanksAndTrafficFollows) {
  static std::atomic<int> moved_checks{0};
  moved_checks = 0;
  ampi::run(opts(4, 4), [] {
    const int r = ampi::rank();
    const int before_pe = ampi::my_pe();
    EXPECT_EQ(before_pe, r % 4);

    // Everyone rotates one PE to the right.
    ampi::migrate_to((before_pe + 1) % 4);

    EXPECT_EQ(ampi::my_pe(), (before_pe + 1) % 4);
    moved_checks.fetch_add(1);

    // Point-to-point still works after the move.
    int token = r;
    ampi::send(&token, 1, (r + 1) % 4, 11);
    int got = -1;
    ampi::recv(&got, 1, (r + 3) % 4, 11);
    EXPECT_EQ(got, (r + 3) % 4);
  });
  EXPECT_EQ(moved_checks.load(), 4);
}

TEST(Ampi, MigrationPreservesStackAndHeapState) {
  ampi::run(opts(4, 2), [] {
    const int r = ampi::rank();
    // Build rank-specific stack and heap state.
    int stack_data[32];
    for (int i = 0; i < 32; ++i) stack_data[i] = r * 1000 + i;
    auto* heap_data = new double[100];
    for (int i = 0; i < 100; ++i) heap_data[i] = r + i * 0.25;
    int* self_ref = &stack_data[5];

    ampi::migrate_to((ampi::my_pe() + 1) % 2);

    EXPECT_EQ(self_ref, &stack_data[5]);
    for (int i = 0; i < 32; ++i) ASSERT_EQ(stack_data[i], r * 1000 + i);
    for (int i = 0; i < 100; ++i) ASSERT_DOUBLE_EQ(heap_data[i], r + i * 0.25);
    delete[] heap_data;
    ampi::barrier();
  });
}

TEST(Ampi, UnexpectedMessagesTravelWithTheRank) {
  ampi::run(opts(2, 2), [] {
    const int r = ampi::rank();
    if (r == 0) {
      // Send before rank 1 migrates; rank 1 receives after arriving at a
      // different PE: the unexpected-queue must migrate too.
      int v = 314;
      ampi::send(&v, 1, 1, 4);
      ampi::barrier();  // ensure delivery landed somewhere before the move
      ampi::migrate_to(ampi::my_pe());
    } else {
      ampi::barrier();
      ampi::migrate_to(0);  // move rank 1 onto PE 0
      int got = -1;
      ampi::recv(&got, 1, 0, 4);
      EXPECT_EQ(got, 314);
      EXPECT_EQ(ampi::my_pe(), 0);
    }
  });
}

TEST(Ampi, MeasurementBasedMigrateBalancesSkewedRanks) {
  // Half the ranks burn much more CPU. After migrate() with greedy, heavy
  // ranks should spread across PEs.
  static std::atomic<int> total_moved{0};
  total_moved = 0;
  ampi::Options o = opts(8, 2);
  o.lb_strategy = mfc::lb::greedy_lb;
  ampi::run(o, [] {
    const int r = ampi::rank();
    // Ranks 0..3 (all born on PEs 0,1,0,1 round-robin) — make ranks 0..3
    // heavy so initial placement is imbalanced in a structured way.
    volatile double sink = 0;
    const int reps = (r < 4) ? 4000000 : 10000;
    for (int i = 0; i < reps; ++i) sink = sink + i;
    const int moved = ampi::migrate();
    if (r == 0) total_moved.store(moved);
    ampi::barrier();
  });
  // The greedy strategy must have concluded some movement was useful.
  EXPECT_GT(total_moved.load(), 0);
}

TEST(Ampi, RepeatedMigrationCycles) {
  ampi::run(opts(4, 4), [] {
    long checksum = ampi::rank() * 7;
    for (int round = 0; round < 5; ++round) {
      ampi::migrate_to((ampi::my_pe() + 1) % 4);
      checksum += round;
    }
    EXPECT_EQ(checksum, ampi::rank() * 7 + 0 + 1 + 2 + 3 + 4);
    // After 5 rotations of 4 PEs: back to start + 1.
    EXPECT_EQ(ampi::my_pe(), (ampi::rank() + 5) % 4);
    ampi::barrier();
  });
}

TEST(Ampi, ManyRanksFewPes) {
  // Processor virtualization (paper §1): many more flows than processors.
  static std::atomic<long> grand{0};
  grand = 0;
  ampi::Options o = opts(64, 2);
  o.stack_bytes = 64 * 1024;
  ampi::run(o, [] {
    long v = ampi::allreduce_one<long>(ampi::rank(), ampi::Op::kSum);
    EXPECT_EQ(v, 64L * 63 / 2);
    grand.fetch_add(1);
  });
  EXPECT_EQ(grand.load(), 64);
}

}  // namespace
