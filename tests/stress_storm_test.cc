// Migration-storm stress tests (labeled `stress`; the tsan CI preset runs
// these under ThreadSanitizer with a fixed seed matrix).
//
// Reproducing a failed seed: the storm prints `MFC_CHAOS_SEED=<n>` at
// install time; rerun that exact interleaving pressure with
//   MFC_CHAOS_SEED=<n> ctest --preset tsan -R Storm
#include "chaos/storm.h"

#include <gtest/gtest.h>

namespace {

namespace chaos = mfc::chaos;
using chaos::StormOptions;
using chaos::StormReport;

StormOptions quiet_options(std::uint64_t seed) {
  StormOptions opt;
  opt.seed = seed;
  opt.npes = 4;
  opt.workers = 6;
  opt.rounds = 6;
  return opt;
}

/// Full-adversary options: every fault point live, deterministic scheduler
/// picks, and thread images round-tripped through the killable relay.
StormOptions hostile_options(std::uint64_t seed) {
  StormOptions opt;
  opt.seed = seed;
  opt.npes = 4;
  opt.workers = 9;  // 3 per migration technique
  opt.rounds = 12;
  opt.use_proc_transport = true;
  opt.chaos.enabled = true;
  opt.chaos.seed = seed;
  opt.chaos.deterministic_sched = true;
  opt.chaos.iso_alloc_fail = 0.05;
  opt.chaos.pool_fail = 0.05;
  opt.chaos.delivery_delay = 0.15;
  opt.chaos.max_delay_ticks = 6;
  opt.chaos.preempt = 0.02;
  opt.chaos.transport_kill = 0.2;
  opt.chaos.max_transport_kills = 3;
  return opt;
}

void expect_clean(const StormReport& r, const StormOptions& opt) {
  EXPECT_EQ(r.canary_failures, 0u);
  EXPECT_EQ(r.digest_mismatches, 0u);
  EXPECT_EQ(r.misroutes, 0u);
  EXPECT_EQ(r.counter_failures, 0u);
  EXPECT_TRUE(r.slots_balanced);
  EXPECT_TRUE(r.pool_balanced);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.rounds, static_cast<std::uint64_t>(opt.rounds));
  EXPECT_EQ(r.thread_migrations,
            static_cast<std::uint64_t>(opt.workers) *
                static_cast<std::uint64_t>(opt.rounds));
  EXPECT_GT(r.pings_delivered, 0u);
  EXPECT_GT(r.wire_bytes, 0u);
}

TEST(Storm, CleanRunWithoutChaos) {
  StormOptions opt = quiet_options(1);
  StormReport r = chaos::run_storm(opt);
  expect_clean(r, opt);
  EXPECT_EQ(r.transport_respawns, 0u);
  for (int p = 0; p < chaos::kPointCount; ++p) EXPECT_EQ(r.injections[p], 0u);
}

TEST(Storm, WorkloadDigestReplaysBitIdentically) {
  StormOptions opt = hostile_options(40);
  opt.trace = true;
  opt.trace_file = "storm_replay_a.json";
  StormReport a = chaos::run_storm(opt);
  opt.trace_file = "storm_replay_b.json";
  StormReport b = chaos::run_storm(opt);
  expect_clean(a, opt);
  expect_clean(b, opt);
  EXPECT_EQ(a.workload_digest, b.workload_digest)
      << "same StormOptions must replay the same workload bit-identically";
  // Transport kills are keyed by (seed, shipment, attempt): the respawn
  // pattern is part of the replay contract.
  EXPECT_EQ(a.transport_respawns, b.transport_respawns);

  // The traced event stream obeys the same contract on its deterministic
  // classes: two same-seed storms produce identical event-count digests.
  ASSERT_TRUE(a.traced);
  ASSERT_TRUE(b.traced);
  EXPECT_NE(a.trace_digest, 0u);
  EXPECT_EQ(a.trace_digest, b.trace_digest)
      << "same-seed storms must emit identical deterministic event counts";
  EXPECT_GT(a.trace_events, 0u);
  // Every thread migration is exactly one pack, split evenly across the
  // three techniques (workers cycle w % 3 and hostile_options uses 9).
  const std::uint64_t per_technique =
      static_cast<std::uint64_t>(opt.workers / 3) *
      static_cast<std::uint64_t>(opt.rounds);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(a.packs_by_technique[t], per_technique) << "technique " << t;
  }
  EXPECT_EQ(a.packs_by_technique[0] + a.packs_by_technique[1] +
                a.packs_by_technique[2],
            a.thread_migrations);

  StormOptions other = hostile_options(41);
  StormReport c = chaos::run_storm(other);
  expect_clean(c, other);
  EXPECT_NE(a.workload_digest, c.workload_digest)
      << "different seeds must drive different itineraries";
}

/// The acceptance storm: >= 100 randomized migration rounds across all three
/// techniques with every fault point enabled.
TEST(Storm, HundredRoundAcceptanceUnderFullChaos) {
  StormOptions opt = hostile_options(7);
  opt.rounds = 101;
  StormReport r = chaos::run_storm(opt);
  expect_clean(r, opt);
  EXPECT_GE(r.rounds, 100u);
  EXPECT_EQ(r.thread_migrations, 9u * 101u);
  EXPECT_GT(r.transport_respawns, 0u);
  std::uint64_t fired = 0;
  for (int p = 0; p < chaos::kPointCount; ++p) fired += r.injections[p];
  EXPECT_GT(fired, 0u) << "full-chaos storm must actually inject faults";
}

TEST(Storm, WorkloadDigestIsTransportIndependent) {
  // The same seed on all three machine wires (in-process queues, shm rings,
  // sockets — loopback mode, every cross-PE message including the
  // scatter-gather thread-image ships riding the codec) must produce one
  // workload digest: itineraries and histories are functions of the seed,
  // never of which transport carried them. Chaos stays off so the only
  // variable is the wire.
  StormOptions opt = quiet_options(9001);
  StormReport reports[3];
  for (int t = 0; t < 3; ++t) {
    opt.transport = t;
    reports[t] = chaos::run_storm(opt);
    expect_clean(reports[t], opt);
  }
  EXPECT_EQ(reports[0].workload_digest, reports[1].workload_digest)
      << "shm wire changed the workload";
  EXPECT_EQ(reports[0].workload_digest, reports[2].workload_digest)
      << "socket wire changed the workload";
  // The wire moves the same logical bytes too: serialized thread-image
  // volume is transport-invariant.
  EXPECT_EQ(reports[0].wire_bytes, reports[1].wire_bytes);
  EXPECT_EQ(reports[0].wire_bytes, reports[2].wire_bytes);
}

/// Fixed three-seed matrix run by the tsan CI preset (-L stress).
class StormSeedMatrix : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StormSeedMatrix, HostileStormStaysClean) {
  StormOptions opt = hostile_options(GetParam());
  StormReport r = chaos::run_storm(opt);
  expect_clean(r, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormSeedMatrix,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
