// Tests for measurement-based chare-array load balancing (paper §3.2).
#include "charm/lb_manager.h"

#include <gtest/gtest.h>

#include <atomic>

#include "converse/machine.h"

namespace {

namespace cv = mfc::converse;
using mfc::charm::Array;
using mfc::charm::Element;
using mfc::charm::rebalance;
using mfc::charm::RebalanceResult;

// An element whose "work" message burns CPU proportional to its index
// weight — elements 0..3 heavy, the rest light.
struct Worker : Element {
  long done = 0;
  void on_message(int tag, std::vector<char>) override {
    (void)tag;
    const long reps = index() < 4 ? 800000 : 10000;
    volatile double sink = 0;
    for (long i = 0; i < reps; ++i) sink = sink + static_cast<double>(i);
    ++done;
  }
  void pup(mfc::pup::Er& p) override { p | done; }
};

TEST(CharmLb, GreedyRebalanceSpreadsHeavyElements) {
  static std::atomic<int> moved;
  static std::atomic<double> imb_before, imb_after;
  moved = -1;
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int pe) {
    Array<Worker> arr(9, 8);
    cv::barrier();
    // All heavy elements (0..3) start on their homes 0,1,0,1 — but make the
    // imbalance sharper by driving the whole array from PE 0 and letting
    // measured load decide.
    if (pe == 0) {
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 8; ++i) arr.send_value(i, 0, round);
      }
    }
    cv::wait_quiescence();  // all sends delivered and processed

    RebalanceResult r = rebalance(arr, mfc::lb::greedy_lb);
    if (pe == 0) {
      moved = r.migrations;
      imb_before = r.imbalance_before;
      imb_after = r.imbalance_after;
    }

    // The array must still function after the shuffle.
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) arr.send_value(i, 0, 99);
    }
    cv::wait_quiescence();
    long local_done = 0;
    for (int idx : arr.local_indices()) local_done += arr.local(idx)->done;
    static std::atomic<long> total_done;
    if (pe == 0) total_done = 0;
    cv::barrier();
    total_done.fetch_add(local_done);
    cv::barrier();
    if (pe == 0) {
      EXPECT_EQ(total_done.load(), 8 * 4);
    }
  });
  EXPECT_GE(moved.load(), 0);
  // Sound bound: LPT greedy is within 4/3 of optimal, and optimal is no
  // worse than the measured current placement — so the new imbalance can
  // exceed the old only by that factor (it does when the measured
  // placement happens to be near-optimal already).
  EXPECT_LE(imb_after.load(), imb_before.load() * 4.0 / 3.0 + 1e-9);
}

TEST(CharmLb, NullStrategyMovesNothing) {
  static std::atomic<int> moved;
  moved = -1;
  cv::Machine::Config cfg;
  cfg.npes = 3;
  cv::Machine::run(cfg, [](int pe) {
    Array<Worker> arr(10, 9);
    cv::barrier();
    RebalanceResult r = rebalance(arr, mfc::lb::null_lb);
    if (pe == 0) moved = r.migrations;
    cv::barrier();
  });
  EXPECT_EQ(moved.load(), 0);
}

TEST(CharmLb, RotateMovesEveryElementAndStateSurvives) {
  static std::atomic<long> sum_after;
  sum_after = 0;
  cv::Machine::Config cfg;
  cfg.npes = 4;
  cv::Machine::run(cfg, [](int pe) {
    Array<Worker> arr(11, 8);
    cv::barrier();
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) arr.send_value(i, 0, 1);
    }
    for (int i = 0; i < 6; ++i) cv::barrier();

    RebalanceResult r = rebalance(arr, mfc::lb::rotate_lb);
    EXPECT_EQ(r.migrations, 8);
    // Everybody moved one PE to the right: home PE p's elements now live on
    // p+1 — verify locality flipped and state (done counters) survived.
    for (int idx : arr.local_indices()) {
      EXPECT_EQ((arr.home_pe(idx) + 1) % 4, pe);
      sum_after.fetch_add(arr.local(idx)->done);
    }
    cv::barrier();
  });
  EXPECT_EQ(sum_after.load(), 8);
}

TEST(CharmLb, RepeatedEpisodes) {
  cv::Machine::Config cfg;
  cfg.npes = 2;
  cv::Machine::run(cfg, [](int pe) {
    Array<Worker> arr(12, 6);
    cv::barrier();
    for (int episode = 0; episode < 4; ++episode) {
      if (pe == 0) {
        for (int i = 0; i < 6; ++i) arr.send_value(i, 0, episode);
      }
      for (int i = 0; i < 4; ++i) cv::barrier();
      rebalance(arr, mfc::lb::greedy_lb);
    }
    // All elements alive and all messages processed.
    static std::atomic<long> total;
    if (pe == 0) total = 0;
    cv::barrier();
    for (int idx : arr.local_indices()) total.fetch_add(arr.local(idx)->done);
    cv::barrier();
    if (pe == 0) {
      EXPECT_EQ(total.load(), 6 * 4);
    }
  });
}

}  // namespace
