// Fault-tolerance storm tests (labeled `ft`): seeded PE-kill storms over
// the buddy in-memory checkpoint/restart layer (src/ft).
//
// The geometry below (npes=4, 16 rounds, checkpoint every 2, kill every 2nd
// checkpoint) commits epochs at rounds 1,3,5,7,9,11,13 — seven of them —
// and kills a seed-chosen victim PE at the release of rounds 3, 7 and 11.
// Each kill is noticed by the heartbeat detector (never by the test), the
// survivors roll back to the last committed epoch, the victim's objects are
// respawned from buddy images, and the storm replays forward. All the usual
// storm invariants (canaries, digests, routed wakeups, counter balance
// under quiescence, slot/pool books) must hold afterwards, and the
// workload digest must match a run that never saw a failure.
#include "chaos/storm.h"

#include <gtest/gtest.h>

#include "chaos/chaos.h"

namespace {

namespace chaos = mfc::chaos;
using chaos::StormOptions;
using chaos::StormReport;

constexpr int kPeKillIdx = static_cast<int>(chaos::Point::kPeKill);

StormOptions ft_options(std::uint64_t seed) {
  StormOptions opt;
  opt.seed = seed;
  opt.npes = 4;
  opt.workers = 12;  // 4 per migration technique
  opt.rounds = 16;
  opt.chaos.seed = seed;
  opt.ft_checkpoint_every = 2;
  opt.ft_kill_every = 2;
  // Tight detector so the three detections cost well under a second of
  // wall clock, but slack enough that a tsan-slowed pong never trips it.
  opt.ft_ping_interval_us = 1000;
  opt.ft_timeout_us = 200000;
  return opt;
}

/// Storm invariants under FT. Unlike the plain-storm checker this bounds
/// thread_migrations from below: rounds replayed after a rollback migrate
/// every worker again, so kill runs exceed workers × rounds.
void expect_ft_clean(const StormReport& r, const StormOptions& opt) {
  EXPECT_EQ(r.canary_failures, 0u);
  EXPECT_EQ(r.digest_mismatches, 0u);
  EXPECT_EQ(r.misroutes, 0u);
  EXPECT_EQ(r.counter_failures, 0u);
  EXPECT_TRUE(r.slots_balanced);
  EXPECT_TRUE(r.pool_balanced);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.rounds, static_cast<std::uint64_t>(opt.rounds));
  EXPECT_GE(r.thread_migrations,
            static_cast<std::uint64_t>(opt.workers) *
                static_cast<std::uint64_t>(opt.rounds));
  EXPECT_GT(r.pings_delivered, 0u);
  EXPECT_GT(r.wire_bytes, 0u);
}

TEST(FtStorm, KillStormSurvivesAndIsClean) {
  StormOptions opt = ft_options(7);
  StormReport r = chaos::run_storm(opt);
  expect_ft_clean(r, opt);

  // Seven committed epochs, three detector-triggered kills, three
  // completed rollbacks — all driven by the seed, none by the test.
  EXPECT_EQ(r.ft_epochs, 7u);
  EXPECT_EQ(r.ft_kills, 3u);
  EXPECT_EQ(r.ft_detections, 3u);
  EXPECT_EQ(r.ft_recoveries, 3u);
  EXPECT_EQ(r.injections[kPeKillIdx], 3u);
  EXPECT_GT(r.ft_checkpoint_bytes, 0u);
}

TEST(FtStorm, SameSeedKillRunsAreBitIdentical) {
  StormOptions opt = ft_options(21);
  opt.trace = true;
  opt.trace_file = "ft_storm_replay_a.json";
  StormReport a = chaos::run_storm(opt);
  opt.trace_file = "ft_storm_replay_b.json";
  StormReport b = chaos::run_storm(opt);
  expect_ft_clean(a, opt);
  expect_ft_clean(b, opt);

  // Kills, detections, rollbacks and replays are all on the seeded path,
  // so two same-seed kill runs agree bit-for-bit — including the full
  // deterministic-class trace digest, not just the FT subset.
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.ft_trace_digest, b.ft_trace_digest);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
  EXPECT_EQ(a.element_migrations, b.element_migrations);
  EXPECT_EQ(a.pings_delivered, b.pings_delivered);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.ft_kills, b.ft_kills);
  EXPECT_EQ(a.ft_recoveries, b.ft_recoveries);
}

TEST(FtStorm, KillRunMatchesFailureFreeRun) {
  StormOptions kill = ft_options(33);
  kill.trace = true;
  kill.trace_file = "ft_storm_kill.json";
  StormReport a = chaos::run_storm(kill);

  StormOptions calm = ft_options(33);
  calm.ft_kill_every = 0;  // same checkpoints, no failures
  calm.trace = true;
  calm.trace_file = "ft_storm_calm.json";
  StormReport b = chaos::run_storm(calm);

  expect_ft_clean(a, kill);
  expect_ft_clean(b, calm);
  EXPECT_EQ(a.ft_kills, 3u);
  EXPECT_EQ(b.ft_kills, 0u);
  EXPECT_EQ(b.ft_recoveries, 0u);

  // Recovery restored every counter and every thread to the epoch image,
  // so the replayed rounds reproduce the failure-free run exactly: same
  // workload digest, same round/checkpoint event counts, same delivered
  // pings. This is the acceptance probe for "recovery is transparent".
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.ft_trace_digest, b.ft_trace_digest);
  EXPECT_EQ(a.ft_epochs, b.ft_epochs);
  EXPECT_EQ(a.pings_delivered, b.pings_delivered);
}

TEST(FtStorm, CheckpointOnlyStormIsTransparent) {
  StormOptions ckpt = ft_options(5);
  ckpt.ft_kill_every = 0;
  StormReport a = chaos::run_storm(ckpt);

  StormOptions off = ft_options(5);
  off.ft_checkpoint_every = 0;
  off.ft_kill_every = 0;
  StormReport b = chaos::run_storm(off);

  expect_ft_clean(a, ckpt);
  expect_ft_clean(b, off);
  EXPECT_EQ(a.ft_epochs, 7u);
  EXPECT_EQ(b.ft_epochs, 0u);

  // Checkpointing brackets rounds with quiescence but never perturbs the
  // seed-derived workload: the digest matches a run with FT off entirely.
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
}

// ---- Incremental (mode 1) and async (mode 2) checkpoint shipping ----

TEST(FtStorm, IncrementalCalmRunMatchesLegacyDigest) {
  // The zero-copy manifest capture must be invisible to the application:
  // a calm incremental run reproduces the legacy destructive-pack run's
  // workload bit-for-bit (same seed, same rounds, same migrations).
  StormOptions legacy = ft_options(41);
  legacy.ft_kill_every = 0;
  StormReport a = chaos::run_storm(legacy);

  StormOptions incr = ft_options(41);
  incr.ft_kill_every = 0;
  incr.ft_mode = 1;
  StormReport b = chaos::run_storm(incr);

  expect_ft_clean(a, legacy);
  expect_ft_clean(b, incr);
  EXPECT_EQ(a.ft_epochs, 7u);
  EXPECT_EQ(b.ft_epochs, 7u);
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
  EXPECT_EQ(a.ft_checkpoint_bytes, b.ft_checkpoint_bytes);
  EXPECT_GT(b.ft_ship_bytes, 0u);
}

TEST(FtStorm, IncrementalKillStormIsBitIdentical) {
  // Incremental shipping is synchronous (the commit barrier still brackets
  // the round), so kill runs keep PR-4's full bit-identical contract.
  StormOptions opt = ft_options(43);
  opt.ft_mode = 1;
  opt.trace = true;
  opt.trace_file = "ft_storm_incr_a.json";
  StormReport a = chaos::run_storm(opt);
  opt.trace_file = "ft_storm_incr_b.json";
  StormReport b = chaos::run_storm(opt);
  expect_ft_clean(a, opt);
  expect_ft_clean(b, opt);

  EXPECT_EQ(a.ft_epochs, 7u);
  EXPECT_EQ(a.ft_kills, 3u);
  EXPECT_EQ(a.ft_recoveries, 3u);
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.ft_trace_digest, b.ft_trace_digest);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
  EXPECT_EQ(a.pings_delivered, b.pings_delivered);

  StormOptions calm = ft_options(43);
  calm.ft_mode = 1;
  calm.ft_kill_every = 0;
  calm.trace = true;
  calm.trace_file = "ft_storm_incr_calm.json";
  StormReport c = chaos::run_storm(calm);
  expect_ft_clean(c, calm);
  EXPECT_EQ(a.workload_digest, c.workload_digest);
  EXPECT_EQ(a.ft_trace_digest, c.ft_trace_digest);
}

TEST(FtStorm, StationaryWorkloadShipsDeltas) {
  // Pinned itineraries keep every PE's parked population stable across
  // epochs, so successive checkpoint blobs have identical layout and the
  // page-granular delta path engages: buddy ship bytes drop below the
  // full local-copy bytes, and coalesced dirty ranges are reported.
  StormOptions opt = ft_options(47);
  opt.ft_kill_every = 0;
  opt.stationary_workers = opt.workers;
  opt.ft_mode = 1;
  StormReport r = chaos::run_storm(opt);
  expect_ft_clean(r, opt);
  EXPECT_EQ(r.ft_epochs, 7u);
  EXPECT_GT(r.ft_delta_ranges, 0u);
  EXPECT_LT(r.ft_ship_bytes, r.ft_checkpoint_bytes);
}

TEST(FtStorm, AsyncKillStormRecoversTransparently) {
  // Async commits race the kill: whether the in-flight epoch committed
  // before the victim died is benign nondeterminism, so this test asserts
  // the invariants that survive both outcomes — every epoch number commits
  // exactly once, every round marker fires exactly once, and the workload
  // digest matches a same-seed calm async run. (trace/ft_trace digests are
  // deliberately NOT compared; see StormReport::ft_trace_digest.)
  StormOptions kill = ft_options(51);
  kill.ft_mode = 2;
  kill.trace = true;
  kill.trace_file = "ft_storm_async_kill.json";
  StormReport a = chaos::run_storm(kill);

  StormOptions calm = ft_options(51);
  calm.ft_mode = 2;
  calm.ft_kill_every = 0;
  calm.trace = true;
  calm.trace_file = "ft_storm_async_calm.json";
  StormReport b = chaos::run_storm(calm);

  expect_ft_clean(a, kill);
  expect_ft_clean(b, calm);
  EXPECT_EQ(a.ft_epochs, 7u);
  EXPECT_EQ(a.ft_kills, 3u);
  EXPECT_EQ(a.ft_detections, 3u);
  EXPECT_EQ(a.ft_recoveries, 3u);
  EXPECT_EQ(b.ft_epochs, 7u);
  EXPECT_GT(a.ft_async_chunks, 0u);
  EXPECT_GT(b.ft_async_chunks, 0u);
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.rounds_digest, b.rounds_digest);
}

TEST(FtStorm, AsyncCheckpointOnlyStormIsTransparent) {
  StormOptions async_opt = ft_options(53);
  async_opt.ft_kill_every = 0;
  async_opt.ft_mode = 2;
  StormReport a = chaos::run_storm(async_opt);

  StormOptions off = ft_options(53);
  off.ft_checkpoint_every = 0;
  off.ft_kill_every = 0;
  StormReport b = chaos::run_storm(off);

  expect_ft_clean(a, async_opt);
  expect_ft_clean(b, off);
  EXPECT_EQ(a.ft_epochs, 7u);

  // Async capture never suspends workers and never perturbs the
  // seed-derived workload: digest matches a run with FT off entirely.
  EXPECT_EQ(a.workload_digest, b.workload_digest);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
}

TEST(FtStorm, EveryTechniqueSurvivesAKill) {
  for (int technique = 0; technique < 3; ++technique) {
    StormOptions opt = ft_options(11 + static_cast<std::uint64_t>(technique));
    opt.workers = 8;
    opt.rounds = 10;
    opt.ft_checkpoint_every = 3;  // epochs at rounds 2, 5, 8
    opt.ft_kill_every = 2;        // one kill, at the round-5 release
    opt.single_technique = technique;
    StormReport r = chaos::run_storm(opt);
    expect_ft_clean(r, opt);
    EXPECT_EQ(r.ft_epochs, 3u) << "technique " << technique;
    EXPECT_EQ(r.ft_kills, 1u) << "technique " << technique;
    EXPECT_EQ(r.ft_recoveries, 1u) << "technique " << technique;
  }
}

}  // namespace
