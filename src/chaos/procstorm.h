// Cross-process fault-tolerance storm driver.
//
// A deliberately message-driven workload (no migrating ULTs — the plain
// storm covers those) shaped to make whole-process failures maximally
// observable: every PE keeps seed-derived worker histories resident in an
// isomalloc slot plus a commutative gift accumulator fed by cross-PE
// traffic, so the machine-wide digest is a pure function of (options.seed,
// rounds) no matter how deliveries interleave. A coordinator ULT on PE 0
// drives rounds, brackets them with quiescence, checkpoints through the ft
// layer on a fixed cadence, and — on the kill schedule — SIGKILLs an entire
// seed-chosen process *after* the epoch committed, then parks until the
// detector-driven recovery (zygote respawn, transport reattach, remote
// buddy refills, machine-wide rollback) hands control back via
// on_recovered. A clean storm ends with the same digest as a failure-free
// run: the acceptance probe for "process loss is transparent".
//
// Single-process (nprocs == 1) the same driver runs in wire-loopback mode
// with PE-tier kills instead, which keeps the whole FT wire path — span-
// shipped buddy stores included — under ThreadSanitizer, where fork-based
// legs cannot go.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chaos/chaos.h"

namespace mfc::chaos {

struct ProcStormOptions {
  std::uint64_t seed = 1;
  int npes = 16;
  int nprocs = 4;
  /// Machine wire transport: 1 = shm rings, 2 = sockets. A wire transport
  /// is mandatory (nprocs > 1 requires one; nprocs == 1 runs it loopback).
  int transport = 1;
  int rounds = 12;
  /// Workers per PE; worker histories live in one iso slot per PE.
  int workers_per_pe = 2;
  /// uint64 history cells per worker, updated every round.
  int values_per_worker = 16;
  /// Checkpoint after every Kth round (0 = FT off). The final round never
  /// checkpoints — there is nothing left to protect.
  int checkpoint_every = 0;
  /// Checkpoint shipping mode (ft::CkptMode: 0 full, 1 incremental,
  /// 2 async).
  int ft_mode = 0;
  /// Kill at every Nth checkpoint commit (0 = no kills; requires
  /// checkpoint_every > 0). Multi-process: SIGKILL a seed-chosen victim
  /// process (never process 0); single-process: ft::kill_pe a seed-chosen
  /// victim PE (never PE 0). The kill fires after the epoch committed, so
  /// recovery rolls back to the state the coordinator just observed and no
  /// round replays.
  int kill_every = 0;
  /// Detector tuning, microseconds (see ft::Hooks).
  std::uint64_t ping_interval_us = 1000;
  std::uint64_t timeout_us = 250000;
  std::size_t iso_slot_bytes = 16 * 1024;
  std::uint32_t iso_slots_per_pe = 64;
  /// Installed via Machine::Config for the duration of the storm.
  Config chaos;
};

struct ProcStormReport {
  std::uint64_t rounds = 0;
  /// Per-PE digests folded in PE order; bit-identical across runs with
  /// equal options, kill schedule or not.
  std::uint64_t workload_digest = 0;
  std::uint64_t digest_reports = 0;  ///< PEs that reported (must equal npes)

  std::uint64_t ft_epochs = 0;
  std::uint64_t kills = 0;        ///< injected failures (either tier)
  std::uint64_t detections = 0;   ///< detector firings
  std::uint64_t recoveries = 0;   ///< completed rollbacks
  std::uint64_t proc_respawns = 0;  ///< zygote respawns observed by proc 0
  std::uint64_t ft_ship_bytes = 0;  ///< buddy store payload bytes

  bool pool_balanced = false;  ///< envelope books balanced at shutdown

  bool clean(int npes) const {
    return digest_reports == static_cast<std::uint64_t>(npes) &&
           pool_balanced;
  }
};

/// Boots a machine and runs the storm to completion. Not reentrant.
ProcStormReport run_proc_storm(const ProcStormOptions& options);

}  // namespace mfc::chaos
