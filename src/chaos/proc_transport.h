// Forked-process relay transport for migration payloads, with a chaos mode
// that kills the relay mid-shipment.
//
// The paper's machine layer is designed so PEs could live in different
// address spaces; a migration then crosses a real process boundary and the
// transport can die with bytes half-shipped. This transport makes that
// failure injectable and *recoverable*: a thread image is round-tripped
// through a forked child over pipes, and the chaos layer (keyed by a
// caller-supplied shipment id, so the kill pattern replays bit-identically
// from MFC_CHAOS_SEED) makes the child _exit mid-stream. The parent detects
// the truncated stream, reaps the corpse, respawns a fresh relay, and
// retries — bounded by Config::max_transport_kills, after which the attempt
// is forced clean.
//
// The parent is multithreaded (PE kernel threads), so the child executes
// only async-signal-safe calls between fork and _exit: read/write/close.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfc::chaos {

class ProcTransport {
 public:
  /// Forks the initial relay child. The transport is single-user: one
  /// shipment at a time (the storm driver serializes on it).
  ProcTransport();
  /// Reaps the current relay.
  ~ProcTransport();

  ProcTransport(const ProcTransport&) = delete;
  ProcTransport& operator=(const ProcTransport&) = delete;

  /// Ships `bytes` to the relay process and reads them back, retrying
  /// through injected relay deaths (Point::kTransportKill keyed by `key`).
  /// Returns the echoed bytes; aborts on a non-chaos transport failure.
  std::vector<char> roundtrip(const std::vector<char>& bytes,
                              std::uint64_t key);

  /// Relay processes killed (by chaos) and respawned so far.
  std::uint64_t respawns() const { return respawns_; }

 private:
  void spawn();
  void reap();
  /// One shipment attempt; false when the stream came back short (relay
  /// died mid-stream) and the caller should respawn + retry.
  bool attempt(const std::vector<char>& bytes, std::uint64_t die_after,
               std::vector<char>* out);

  int to_child_ = -1;    ///< parent write end
  int from_child_ = -1;  ///< parent read end
  int child_pid_ = -1;
  std::uint64_t respawns_ = 0;
};

}  // namespace mfc::chaos
