// Migration-storm stress driver.
//
// Runs the whole stack adversarially: a fleet of worker threads — cycled
// across all three migration techniques (stack-copy, isomalloc, memalias) —
// migrates every round along seed-derived itineraries while a chare array
// delivers ttl-forwarded pings (and storms its own elements between PEs),
// all optionally under chaos fault injection and with each thread image
// optionally round-tripped through a forked relay process that chaos can
// kill mid-shipment.
//
// After every round the driver quiesces the machine and runs invariant
// checkers: stack/heap canaries and stack-address stability (verified by
// each worker on arrival), PUP round-trip digests on every shipped thread
// image, ping send/deliver counter balance under quiescence, and isomalloc
// slot-count stability. The workload digest folds only seed-derived values,
// so two runs with the same StormOptions are bit-identical — the replay
// contract behind MFC_CHAOS_SEED.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chaos/chaos.h"

namespace mfc::chaos {

struct StormOptions {
  std::uint64_t seed = 1;
  int npes = 4;
  /// Worker threads; worker w uses technique w % 3 and is born on PE
  /// w % npes. Use a multiple of 3 to exercise every technique equally.
  int workers = 12;
  /// Migration rounds: every worker migrates once per round.
  int rounds = 10;
  /// The first N workers get a pinned itinerary (every hop lands back on
  /// their birth PE). They still pack/ship/unpack each round — the full
  /// migration machinery runs — but the per-PE parked population is stable
  /// across rounds, which is the workload shape where incremental
  /// checkpoints actually shrink (a stable blob layout lets page deltas
  /// apply). 0 = everyone roams (the default).
  int stationary_workers = 0;
  std::size_t stack_bytes = 16 * 1024;
  /// Isomalloc sizing for the run (small slots keep image copies cheap).
  std::size_t iso_slot_bytes = 16 * 1024;
  std::uint32_t iso_slots_per_pe = 4096;
  /// Chare-array background traffic: pings seeded per round, each
  /// forwarded ttl hops element-to-element.
  int array_elements = 8;
  int array_pings = 4;
  int ping_ttl = 3;
  bool element_migration = true;  ///< storm the array elements too
  /// Round-trip every packed thread image through the forked relay
  /// (Point::kTransportKill becomes live).
  bool use_proc_transport = false;
  /// Machine wire transport for the storm (loopback mode, nprocs == 1):
  /// 0 = in-process queues, 1 = shm rings, 2 = sockets. With 1/2 every
  /// cross-PE message — including the scatter-gather thread-image ships —
  /// runs the full wire codec path. Seed-derived digests are transport-
  /// independent, so same-seed runs must agree across all three.
  int transport = 0;
  /// Record a trace of the storm and export Chrome trace-event JSON at the
  /// end (MFC_TRACE=1 in the environment has the same effect). The trace is
  /// labelled with the chaos seed / technique mix / round count, so two
  /// same-seed runs yield directly diffable timelines.
  bool trace = false;
  /// Export path when tracing; nullptr falls back to MFC_TRACE_FILE, then
  /// "storm_trace.json".
  const char* trace_file = nullptr;
  /// Installed via Machine::Config for the duration of the storm.
  Config chaos;

  // ---- Fault tolerance (ft layer) ----

  /// Checkpoint every K rounds (0 = FT off). With FT on the storm installs
  /// the ft layer, and the round driver calls ft::checkpoint_now() after
  /// the round-(K·n − 1) invariant sweep.
  int ft_checkpoint_every = 0;
  /// Kill a seed-chosen PE at every Nth checkpoint round (0 = no kills;
  /// requires ft_checkpoint_every > 0). The victim dies *at* the kill
  /// round's release — after the checkpoint committed — and the heartbeat
  /// detector (not the test) notices and triggers rollback + resume.
  int ft_kill_every = 0;
  /// Detector tuning (microseconds). The defaults are deliberately slack;
  /// tests that kill PEs pass tighter values to keep detection latency low.
  std::uint64_t ft_ping_interval_us = 2000;
  std::uint64_t ft_timeout_us = 250000;
  /// Checkpoint shipping mode (maps onto ft::CkptMode): 0 = full blobs
  /// captured by destructive pack/unpack self-migration (the legacy path),
  /// 1 = incremental (non-destructive zero-copy manifest capture, page-
  /// granular deltas against the previous committed epoch), 2 = async
  /// (incremental capture, buddy ships streamed in chunks while the
  /// application runs, commit completes in the background). Modes 1/2 also
  /// arm the mprotect write barrier over parked isomalloc stacks between
  /// epochs for dirty-page telemetry (release builds only).
  int ft_mode = 0;
  /// Restrict all workers to one technique (0=stackcopy, 1=iso, 2=memalias;
  /// -1 = the default w % 3 mix). The FT bench uses this to price
  /// checkpointing per technique.
  int single_technique = -1;
  /// Per-round application compute: each worker runs this many iterations
  /// of a deterministic integer-mixing loop after every hop (0 = none, the
  /// default for tests). The FT bench uses it to give rounds a realistic
  /// cost so checkpoint overhead is measured against real work, not
  /// against the storm's near-empty round protocol.
  int work_spin = 0;
};

struct StormReport {
  std::uint64_t rounds = 0;
  std::uint64_t thread_migrations = 0;
  std::uint64_t element_migrations = 0;
  std::uint64_t pings_delivered = 0;
  std::uint64_t wire_bytes = 0;  ///< serialized thread-image bytes shipped
  std::uint64_t transport_respawns = 0;
  std::uint64_t injections[kPointCount] = {};

  // Invariant-checker verdicts (all must be zero / true for a clean storm).
  std::uint64_t canary_failures = 0;   ///< stack/heap canary or address drift
  std::uint64_t digest_mismatches = 0; ///< wire or PUP re-serialize digest
  std::uint64_t misroutes = 0;         ///< worker woke on the wrong PE
  std::uint64_t counter_failures = 0;  ///< ping counters unbalanced under QD
  bool slots_balanced = false;  ///< iso slots returned to pre-storm baseline
  bool pool_balanced = false;   ///< envelope books balanced at shutdown

  /// Folds every worker's seed-derived history; bit-identical across runs
  /// with equal options (the determinism probe tests compare this).
  std::uint64_t workload_digest = 0;

  /// Tracing results (zero unless the storm owned a trace session).
  bool traced = false;
  std::uint64_t trace_events = 0;   ///< total events emitted
  std::uint64_t trace_dropped = 0;  ///< overwritten by ring drop-oldest
  /// Event-count digest over the deterministic event classes (thread
  /// creates, pack/unpack by phase, iso slot traffic, round markers) —
  /// equal across two same-seed runs; message/handler counts are excluded
  /// because stale-routing bounces make them timing-dependent.
  std::uint64_t trace_digest = 0;
  /// Thread packs by technique (stack-copy, isomalloc, memalias), read
  /// from the metrics registry; filled whether or not tracing is on.
  std::uint64_t packs_by_technique[3] = {};

  /// Fault-tolerance protocol counts (zero when FT is off).
  std::uint64_t ft_epochs = 0;            ///< committed checkpoints
  std::uint64_t ft_kills = 0;             ///< injected PE failures
  std::uint64_t ft_detections = 0;        ///< heartbeat-timeout detections
  std::uint64_t ft_recoveries = 0;        ///< completed rollbacks
  std::uint64_t ft_checkpoint_bytes = 0;  ///< local-copy bytes, all epochs
  /// Count digest over {round markers, checkpoint begin/end}: the FT-mode
  /// determinism probe — equal between a kill run and a same-seed
  /// failure-free run (rounds replay identically after rollback). Async
  /// kill runs are excluded: whether the in-flight epoch committed before
  /// the kill is a benign race, so an aborted epoch's Begin may be emitted
  /// again on replay — compare rounds_digest instead.
  std::uint64_t ft_trace_digest = 0;
  /// Count digest over round markers only: every round exactly once, in
  /// every mode, kill or calm (replayed rounds never re-emit their marker).
  std::uint64_t rounds_digest = 0;
  /// Shipping-path counters (zero when FT is off).
  std::uint64_t ft_ship_bytes = 0;    ///< buddy payload bytes (post-delta)
  std::uint64_t ft_delta_ranges = 0;  ///< coalesced ranges in delta stores
  std::uint64_t ft_async_chunks = 0;  ///< streamed chunk messages (mode 2)
  std::uint64_t ft_dirty_pages = 0;   ///< write-barrier page faults recorded

  bool clean() const {
    return canary_failures == 0 && digest_mismatches == 0 && misroutes == 0 &&
           counter_failures == 0 && slots_balanced && pool_balanced;
  }
};

/// Boots a machine and runs the storm to completion. Not reentrant.
StormReport run_storm(const StormOptions& options);

}  // namespace mfc::chaos
