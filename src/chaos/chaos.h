// Chaos layer: seed-replayable fault injection and adversarial scheduling
// for the whole runtime stack.
//
// The paper's correctness claim — all four flows of control keep working
// *while threads migrate under them* (§3.4) — is exactly the kind of claim
// that survives demos and dies under adversarial interleavings. This layer
// turns the runtime hostile on demand: seeded failure injection in the
// isomalloc slot allocator and the converse message pool, bounded
// delay/reorder of inter-PE message delivery, forced context-switch yields
// at instrumented preemption points, randomized (but seeded) per-PE
// scheduler decisions, and a kill-and-respawn fault mode for the
// forked-process migration transport (proc_transport.h).
//
// Determinism model (see DESIGN.md "Chaos & determinism"):
//   * Every decision derives from one 64-bit seed, printed at install time
//     as `MFC_CHAOS_SEED=...` and overridable via that environment variable.
//   * KEYED decisions (`keyed_inject`/`keyed_draw`) are pure functions of
//     (seed, point, key) — they replay bit-identically regardless of thread
//     timing. The storm driver keys its itineraries, workloads, and
//     transport kills this way.
//   * STREAM decisions (`should_inject`/`draw`) come from per-PE SplitMix64
//     streams derived from (seed, pe). Each PE's draw sequence is
//     deterministic; which runtime event consumes which draw depends on
//     message arrival order, so stream decisions are reproducible pressure,
//     not a replayed schedule.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/rng.h"

namespace mfc::chaos {

/// Injection points threaded through the runtime.
enum class Point : std::uint8_t {
  kIsoAcquire = 0,    ///< iso::Region::try_acquire returns "strip exhausted"
  kPoolAcquire = 1,   ///< converse message pool misses (fresh non-recycled alloc)
  kDelivery = 2,      ///< inter-PE message delivery delayed/reordered
  kPreempt = 3,       ///< forced yield at an instrumented preemption point
  kTransportKill = 4, ///< proc transport relay process killed mid-shipment
  kPeKill = 5,        ///< emulated PE failure (ft layer kill/recover testing)
  kProcKill = 6,      ///< whole-process SIGKILL (cross-process FT testing)
};
constexpr int kPointCount = 7;
const char* to_string(Point p);

/// Chaos knobs, installable standalone or via converse::Machine::Config.
/// All probabilities are per-decision in [0, 1]; 0 disables that point.
struct Config {
  bool enabled = false;
  /// Master seed. Overridden by the MFC_CHAOS_SEED environment variable so
  /// a failing CI interleaving replays from its printed seed.
  std::uint64_t seed = 1;
  /// Randomize each PE scheduler's pick among equally-ready threads from
  /// that PE's seeded stream (adversarial but replayable per PE).
  bool deterministic_sched = false;
  double iso_alloc_fail = 0.0;
  double pool_fail = 0.0;
  double delivery_delay = 0.0;
  /// Delay duration in scheduler-loop ticks, drawn uniform in
  /// [1, max_delay_ticks] per stashed message.
  std::uint32_t max_delay_ticks = 8;
  double preempt = 0.0;
  double transport_kill = 0.0;
  /// Consecutive kill injections tolerated per shipment before the
  /// transport forces a clean attempt (bounds the respawn loop).
  int max_transport_kills = 4;
  /// Emulated PE-failure probability; consumed keyed (per kill ordinal) by
  /// the storm driver's deterministic kill schedule, not as a free stream.
  double pe_kill = 0.0;
  /// Whole-process SIGKILL probability; consumed keyed (per checkpoint
  /// round) by the cross-process kill-storm driver's schedule.
  double proc_kill = 0.0;
};

/// Installs the chaos engine process-wide and logs `MFC_CHAOS_SEED=<seed>`.
/// Honors an MFC_CHAOS_SEED environment override. Install/uninstall are not
/// thread-safe against concurrent injection queries: install before the
/// machine (or scheduler work) starts, uninstall after it stops.
void install(const Config& config);
void uninstall();

namespace detail {
extern std::atomic<const void*> g_state;  // non-null while installed
}

inline bool enabled() {
  return detail::g_state.load(std::memory_order_acquire) != nullptr;
}

/// Effective config/seed (env override applied). Valid while installed.
const Config& config();
std::uint64_t seed();

/// Binds the calling kernel thread to PE `pe`'s decision streams (the
/// converse PE loop does this). Unbound threads share a mutex-guarded
/// external stream. Pass-through no-ops when chaos is not installed.
void bind_stream(int pe);
void unbind_stream();

/// Stream decision: true when the fault at `p` should fire now. False
/// whenever chaos is not installed or the point's probability is 0.
bool should_inject(Point p);

/// Stream draw: uniform in [0, below) from the bound stream's RNG for `p`.
std::uint64_t draw(Point p, std::uint64_t below);

/// Keyed decision/draw: pure functions of (seed, p, key); identical across
/// runs and threads for the same seed. Use these when the *consumer* of the
/// decision has a stable identity (worker id, hop number, shipment id).
bool keyed_inject(Point p, std::uint64_t key);
std::uint64_t keyed_draw(Point p, std::uint64_t key, std::uint64_t below);

/// Total injections fired at `p` since install (all streams + keyed).
std::uint64_t injections(Point p);

/// Per-PE scheduler-choice RNG for deterministic_sched mode; null when the
/// mode is off or no stream is bound. The converse loop installs this into
/// its Scheduler; it stays valid until unbind_stream().
SplitMix64* sched_choice_rng();

namespace detail {
void preempt_point_slow(const char* where);
}

/// Instrumented preemption point: when chaos is installed, the calling
/// context is inside a user-level thread, and the kPreempt stream fires,
/// yields that thread. No-op (one relaxed load) when chaos is off.
inline void preempt_point(const char* where) {
  if (!enabled()) return;
  detail::preempt_point_slow(where);
}

}  // namespace mfc::chaos
