#include "chaos/procstorm.h"

#include <cstring>
#include <mutex>
#include <vector>

#include "converse/machine.h"
#include "ft/ft.h"
#include "iso/region.h"
#include "pup/pup.h"
#include "trace/metrics.h"
#include "ult/scheduler.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/rng.h"

namespace mfc::chaos {
namespace {

namespace converse = mfc::converse;

constexpr std::uint64_t kInitSalt = 0x70726f63696e6974ULL;   // "procinit"
constexpr std::uint64_t kRoundSalt = 0x70726f63726f756eULL;  // "procroun"

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  SplitMix64 r(a ^ (b + 0x9e3779b97f4a7c15ULL));
  return r.next();
}

/// One PE's storm state. Touched only by the owning PE's kernel thread
/// (handlers and the main/coordinator ULT all run there), so no locks.
struct PeSlot {
  iso::SlotId slot;               ///< holds the worker history cells
  std::uint64_t* vals = nullptr;  ///< slot memory, [worker][cell]
  bool have_slot = false;         ///< slot mapped in THIS process
  std::uint64_t acc = 0;          ///< commutative gift accumulator
  std::int32_t round = -1;        ///< last round applied here
  ult::Thread* main = nullptr;    ///< parked non-coordinator main
  bool alldone = false;           ///< shutdown broadcast already seen
};

/// What a PE's checkpoint blob carries. The slot identity rides along so a
/// respawned process — whose strip bitmap and page tables are the zygote's
/// pristine boot copies — can reassert the lease and remap the same
/// addresses before the history bytes land back.
struct PeCkpt {
  std::int32_t round = -1;
  std::uint64_t acc = 0;
  iso::SlotId slot;
  std::vector<std::uint64_t> vals;
  void pup(pup::Er& p) { p | round | acc | slot | vals; }
};

struct GiftMsg {
  std::uint64_t value = 0;
  void pup(pup::Er& p) { p | value; }
};

struct DigestReply {
  std::int32_t pe = -1;
  std::uint64_t digest = 0;
  void pup(pup::Er& p) { p | pe | digest; }
};

struct ProcStormGlobal {
  ProcStormOptions opt;
  std::vector<PeSlot> pes;  ///< indexed by global PE; local entries only

  // ---- PE0 (process 0) only ----
  enum class Phase { kRun, kKilled, kRecovered };
  Phase phase = Phase::kRun;
  ult::Thread* coord = nullptr;  ///< coordinator parked across a recovery
  int digest_replies = 0;
  std::vector<std::uint64_t> pe_digest;
  std::uint64_t digest = 0;
  /// Harvested by the coordinator before shutdown: the machine owns the
  /// chaos install and tears it (and its counters) down with the run.
  std::uint64_t kills_injected = 0;
};

ProcStormGlobal* g_ps = nullptr;

converse::HandlerId h_ps_round, h_ps_gift, h_ps_digest_req, h_ps_digest_reply,
    h_ps_alldone;

int cells_per_pe(const ProcStormOptions& opt) {
  return opt.workers_per_pe * opt.values_per_worker;
}

/// Checkpoint after round `r`? The final round never checkpoints.
bool is_ckpt_round(int r, const ProcStormOptions& opt) {
  return opt.checkpoint_every > 0 && r != opt.rounds - 1 &&
         (r + 1) % opt.checkpoint_every == 0;
}

std::uint64_t pe_state_digest(int pe) {
  ProcStormGlobal* g = g_ps;
  const PeSlot& ps = g->pes[static_cast<std::size_t>(pe)];
  std::uint64_t d = fnv1a_mix(kFnvOffset,
                              static_cast<std::uint64_t>(ps.round));
  d = fnv1a_mix(d, ps.acc);
  const int cells = cells_per_pe(g->opt);
  for (int i = 0; i < cells; ++i) d = fnv1a_mix(d, ps.vals[i]);
  return d;
}

// ---- Handlers ---------------------------------------------------------------

/// One round on one PE: fold a fresh seed-derived draw into every worker
/// history cell, then gift each worker's folded contribution to a
/// seed-chosen peer. Dest and draws depend only on (seed, worker, round),
/// and the gift accumulator is a wrapping sum, so any delivery interleaving
/// produces the same machine-wide state once quiescent.
void handle_round(converse::Message&& m) {
  ProcStormGlobal* g = g_ps;
  const ProcStormOptions& opt = g->opt;
  const auto r = m.as<std::int32_t>();
  const int me = converse::my_pe();
  PeSlot& ps = g->pes[static_cast<std::size_t>(me)];
  for (int w = 0; w < opt.workers_per_pe; ++w) {
    const std::uint64_t wid =
        static_cast<std::uint64_t>(me) *
            static_cast<std::uint64_t>(opt.workers_per_pe) +
        static_cast<std::uint64_t>(w);
    SplitMix64 rng(mix2(opt.seed ^ kRoundSalt,
                        wid * 1000003ULL + static_cast<std::uint64_t>(r)));
    std::uint64_t contrib = kFnvOffset;
    for (int i = 0; i < opt.values_per_worker; ++i) {
      std::uint64_t& cell =
          ps.vals[w * opt.values_per_worker + i];
      cell = mix2(cell, rng.next());
      contrib = fnv1a_mix(contrib, cell);
    }
    const int dest = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(opt.npes)));
    converse::send_value(dest, h_ps_gift, GiftMsg{contrib});
  }
  ps.round = r;
}

void handle_gift(converse::Message&& m) {
  const auto gm = m.as<GiftMsg>();
  g_ps->pes[static_cast<std::size_t>(converse::my_pe())].acc += gm.value;
}

void handle_digest_req(converse::Message&&) {
  const int me = converse::my_pe();
  converse::send_value(0, h_ps_digest_reply,
                       DigestReply{me, pe_state_digest(me)});
}

void handle_digest_reply(converse::Message&& m) {
  ProcStormGlobal* g = g_ps;
  const auto rep = m.as<DigestReply>();
  g->pe_digest[static_cast<std::size_t>(rep.pe)] = rep.digest;
  if (++g->digest_replies != g->opt.npes) return;
  std::uint64_t d = kFnvOffset;
  for (const std::uint64_t pd : g->pe_digest) d = fnv1a_mix(d, pd);
  g->digest = d;
  if (g->coord != nullptr) {
    ult::Thread* t = g->coord;
    g->coord = nullptr;
    converse::ready_thread(t);
  }
}

void handle_alldone(converse::Message&&) {
  PeSlot& ps = g_ps->pes[static_cast<std::size_t>(converse::my_pe())];
  ps.alldone = true;
  if (ps.main != nullptr) {
    ult::Thread* t = ps.main;
    ps.main = nullptr;
    converse::ready_thread(t);
  }
}

void register_ps_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_ps_round = converse::register_handler(handle_round);
    h_ps_gift = converse::register_handler(handle_gift);
    h_ps_digest_req = converse::register_handler(handle_digest_req);
    h_ps_digest_reply = converse::register_handler(handle_digest_reply);
    h_ps_alldone = converse::register_handler(handle_alldone);
  });
}

// ---- FT hooks ---------------------------------------------------------------

std::vector<char> ps_capture(std::uint64_t epoch) {
  (void)epoch;
  ProcStormGlobal* g = g_ps;
  const int me = converse::my_pe();
  const PeSlot& ps = g->pes[static_cast<std::size_t>(me)];
  MFC_CHECK_MSG(ps.have_slot, "procstorm: capture before init/restore");
  PeCkpt ck;
  ck.round = ps.round;
  ck.acc = ps.acc;
  ck.slot = ps.slot;
  ck.vals.assign(ps.vals, ps.vals + cells_per_pe(g->opt));
  return pup::to_bytes_onepass(ck, ck.vals.size() * 8 + 64);
}

void ps_wipe(int pe) {
  // Emulated memory loss. The slot mapping is per-process bookkeeping, not
  // application state: on a same-process revival it stays (restore just
  // overwrites the bytes); on a respawned process this PeSlot is already
  // the pristine boot image.
  PeSlot& ps = g_ps->pes[static_cast<std::size_t>(pe)];
  ps.acc = 0;
  ps.round = -1;
}

void ps_discard() {
  // Rollback phase A: nothing to evacuate — the workload parks no threads
  // and the history slots keep their identity across rollbacks.
}

void ps_restore(std::uint64_t epoch, const std::vector<char>& blob) {
  (void)epoch;
  ProcStormGlobal* g = g_ps;
  PeCkpt ck;
  pup::from_bytes(blob, ck);
  const int me = converse::my_pe();
  PeSlot& ps = g->pes[static_cast<std::size_t>(me)];
  if (!ps.have_slot) {
    // Respawned process: the boot-image strip bitmap never saw the
    // acquire, and the pages are PROT_NONE. Reassert the lease (so later
    // forwarded frees find the used bits) and remap the same addresses.
    converse::iso_claim(ck.slot);
    iso::Region::instance().install(ck.slot);
    ps.slot = ck.slot;
    ps.vals = static_cast<std::uint64_t*>(
        iso::Region::instance().slot_base(ck.slot));
    ps.have_slot = true;
  }
  MFC_CHECK(ps.slot == ck.slot);
  MFC_CHECK(static_cast<int>(ck.vals.size()) == cells_per_pe(g->opt));
  std::memcpy(ps.vals, ck.vals.data(), ck.vals.size() * sizeof(std::uint64_t));
  ps.acc = ck.acc;
  ps.round = ck.round;
}

void ps_on_detect(int victim) {
  (void)victim;
  g_ps->phase = ProcStormGlobal::Phase::kKilled;
}

void ps_on_recovered(std::uint64_t epoch) {
  (void)epoch;
  ProcStormGlobal* g = g_ps;
  g->phase = ProcStormGlobal::Phase::kRecovered;
  if (g->coord != nullptr) {
    ult::Thread* t = g->coord;
    g->coord = nullptr;
    converse::ready_thread(t);
  }
}

// ---- Coordinator ------------------------------------------------------------

/// Parks the coordinator until the phase leaves `while_phase`.
void coord_park_while(ProcStormGlobal::Phase while_phase) {
  ProcStormGlobal* g = g_ps;
  while (g->phase == while_phase) {
    g->coord = converse::pe_scheduler().running();
    ult::suspend();
  }
}

void coordinator() {
  ProcStormGlobal* g = g_ps;
  const ProcStormOptions& opt = g->opt;
  int commits = 0;
  int kills_fired = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    converse::broadcast(h_ps_round, pup::to_bytes(std::int32_t{r}));
    converse::wait_quiescence();
    if (!is_ckpt_round(r, opt)) continue;
    ft::checkpoint_now(static_cast<ft::CkptMode>(opt.ft_mode));
    ++commits;
    if (opt.kill_every == 0 || commits % opt.kill_every != 0) continue;
    const auto k = static_cast<std::uint64_t>(kills_fired);
    // The kill fires only now — after the epoch committed — so recovery
    // rolls back to exactly the state this coordinator last observed and
    // the round sequence continues without replay. Async epochs commit in
    // the background: await the commit, or the kill would land on a
    // pending epoch, abort it, and roll back to a stale round.
    if (static_cast<ft::CkptMode>(opt.ft_mode) == ft::CkptMode::kAsync) {
      ft::checkpoint_sync();
    }
    if (opt.nprocs > 1) {
      if (!keyed_inject(Point::kProcKill, k)) continue;
      const int victim =
          1 + static_cast<int>(keyed_draw(
                  Point::kProcKill, k,
                  static_cast<std::uint64_t>(opt.nprocs - 1)));
      ++kills_fired;
      converse::kill_proc(victim);
    } else {
      if (!keyed_inject(Point::kPeKill, k)) continue;
      const int victim =
          1 + static_cast<int>(keyed_draw(
                  Point::kPeKill, k,
                  static_cast<std::uint64_t>(opt.npes - 1)));
      ++kills_fired;
      ft::kill_pe(victim);
    }
    // Park until the detector noticed and the rollback completed. The
    // detection itself is never driven from here: proc 0's comm thread
    // reaps the corpse (or the heartbeat expires) and the ft tick does
    // the rest.
    coord_park_while(ProcStormGlobal::Phase::kRun);
    coord_park_while(ProcStormGlobal::Phase::kKilled);
    MFC_CHECK(g->phase == ProcStormGlobal::Phase::kRecovered);
    g->phase = ProcStormGlobal::Phase::kRun;
  }
  if (ft::active()) ft::checkpoint_sync();
  converse::wait_quiescence();
  g->kills_injected =
      injections(Point::kProcKill) + injections(Point::kPeKill);

  converse::broadcast(h_ps_digest_req, {});
  if (g->digest_replies != opt.npes) {
    g->coord = converse::pe_scheduler().running();
    ult::suspend();
  }
  converse::broadcast(h_ps_alldone, {});
}

// ---- Entry ------------------------------------------------------------------

void ps_entry(int pe) {
  ProcStormGlobal* g = g_ps;
  const ProcStormOptions& opt = g->opt;
  PeSlot& ps = g->pes[static_cast<std::size_t>(pe)];
  const bool reborn = converse::respawn_generation() > 0;
  if (reborn) {
    // Respawned incarnation: state arrives via the recovery refill +
    // restore path, and the run is already mid-flight — no barrier to
    // join, nothing to drive. Park for the shutdown broadcast.
    if (!ps.alldone && ps.main == nullptr) {
      ps.main = converse::pe_scheduler().running();
      ult::suspend();
    }
    return;
  }

  // First incarnation: acquire this PE's history slot and seed it.
  const std::size_t bytes =
      static_cast<std::size_t>(cells_per_pe(opt)) * sizeof(std::uint64_t);
  const auto slots =
      static_cast<std::uint32_t>((bytes + opt.iso_slot_bytes - 1) /
                                 opt.iso_slot_bytes);
  ps.slot = iso::Region::instance().acquire(pe, slots);
  ps.vals =
      static_cast<std::uint64_t*>(iso::Region::instance().slot_base(ps.slot));
  ps.have_slot = true;
  for (int w = 0; w < opt.workers_per_pe; ++w) {
    const std::uint64_t wid =
        static_cast<std::uint64_t>(pe) *
            static_cast<std::uint64_t>(opt.workers_per_pe) +
        static_cast<std::uint64_t>(w);
    for (int i = 0; i < opt.values_per_worker; ++i) {
      ps.vals[w * opt.values_per_worker + i] =
          mix2(opt.seed ^ kInitSalt,
               wid * 1000003ULL + static_cast<std::uint64_t>(i));
    }
  }
  converse::barrier();  // every PE initialized before round 0 broadcasts

  if (pe == 0) {
    coordinator();
  } else if (!ps.alldone) {
    ps.main = converse::pe_scheduler().running();
    ult::suspend();  // until h_ps_alldone
  }
}

}  // namespace

ProcStormReport run_proc_storm(const ProcStormOptions& options) {
  MFC_CHECK_MSG(g_ps == nullptr, "run_proc_storm is not reentrant");
  MFC_CHECK(options.npes >= 2 && options.rounds >= 1 &&
            options.workers_per_pe >= 1 && options.values_per_worker >= 1);
  MFC_CHECK_MSG(options.transport == 1 || options.transport == 2,
                "procstorm: a wire transport (1 = shm, 2 = socket) is "
                "required");
  MFC_CHECK_MSG(options.nprocs == 1 || options.npes % options.nprocs == 0,
                "procstorm: npes must divide evenly across nprocs");
  MFC_CHECK_MSG(options.kill_every == 0 || options.checkpoint_every > 0,
                "procstorm: kill_every requires checkpoint_every");
  MFC_CHECK_MSG(options.kill_every == 0 || options.nprocs > 1 ||
                    options.npes >= 2,
                "procstorm: PE-tier kills need a PE to spare");
  register_ps_handlers();

  ProcStormOptions opt = options;
  if (opt.kill_every > 0) {
    opt.chaos.enabled = true;
    opt.chaos.proc_kill = 1.0;
    opt.chaos.pe_kill = 1.0;
  }

  auto g = std::make_unique<ProcStormGlobal>();
  g->opt = opt;
  g->pes.resize(static_cast<std::size_t>(opt.npes));
  g->pe_digest.assign(static_cast<std::size_t>(opt.npes), 0);
  g_ps = g.get();

  const bool ft_on = opt.checkpoint_every > 0;
  if (ft_on) {
    ft::Hooks hooks;
    hooks.capture = ps_capture;
    hooks.wipe = ps_wipe;
    hooks.discard = ps_discard;
    hooks.restore = ps_restore;
    hooks.on_detect = ps_on_detect;
    hooks.on_recovered = ps_on_recovered;
    hooks.ping_interval_us = opt.ping_interval_us;
    hooks.timeout_us = opt.timeout_us;
    ft::install(opt.npes, std::move(hooks));
  }

  converse::Machine::Config mc;
  mc.npes = opt.npes;
  mc.nprocs = opt.nprocs;
  mc.transport = opt.transport == 1
                     ? converse::Machine::Config::Transport::kShm
                     : converse::Machine::Config::Transport::kSocket;
  mc.iso_slot_bytes = opt.iso_slot_bytes;
  mc.iso_slots_per_pe = opt.iso_slots_per_pe;
  mc.chaos = opt.chaos;
  converse::Machine::run(mc, ps_entry);

  ProcStormReport rep;
  rep.rounds = static_cast<std::uint64_t>(opt.rounds);
  rep.workload_digest = g->digest;
  rep.digest_reports = static_cast<std::uint64_t>(g->digest_replies);
  if (ft_on) {
    rep.ft_epochs = ft::epochs();
    rep.kills = g->kills_injected;
    rep.detections = ft::detections();
    rep.recoveries = ft::recoveries();
    rep.ft_ship_bytes = metrics::total(metrics::Counter::kFtShipBytes);
    ft::uninstall();
  }
  rep.proc_respawns = metrics::total(metrics::Counter::kProcRespawns);
  const converse::PoolStats pool = converse::pool_stats();
  rep.pool_balanced = pool.allocated == pool.freed;
  g_ps = nullptr;
  return rep;
}

}  // namespace mfc::chaos
