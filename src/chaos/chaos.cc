#include "chaos/chaos.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "trace/flight.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "ult/scheduler.h"
#include "util/check.h"

namespace mfc::chaos {
namespace {

// Domain-separation constants folded into derived seeds so the per-point
// streams, the scheduler stream, and the keyed decision space never overlap
// even for adjacent master seeds.
constexpr std::uint64_t kStreamSalt = 0x9e6c63d0a5b3f1e7ULL;
constexpr std::uint64_t kSchedSalt = 0x3c79ac492ba7b653ULL;
constexpr std::uint64_t kKeyedSalt = 0xd1342543de82ef95ULL;

std::uint64_t mix64(std::uint64_t x) {
  SplitMix64 r(x);
  return r.next();
}

/// One kernel thread's decision streams: an RNG per injection point plus a
/// dedicated scheduler-choice RNG, all derived from (seed, stream id).
struct Stream {
  explicit Stream(std::uint64_t master, std::uint64_t id)
      : sched(mix64(master ^ kSchedSalt ^ id)) {
    for (int p = 0; p < kPointCount; ++p) {
      point.emplace_back(
          mix64(master ^ kStreamSalt ^ (id * kPointCount + p + 1)));
    }
  }
  std::vector<SplitMix64> point;
  SplitMix64 sched;
};

struct State {
  Config cfg;
  std::uint64_t seed = 0;
  /// Stream for threads that never bind (tests, transport helpers);
  /// mutex-guarded because several may share it.
  Stream external;
  std::mutex external_mu;
  std::atomic<std::uint64_t> fired[kPointCount] = {};

  State(const Config& c, std::uint64_t s)
      : cfg(c), seed(s), external(s, ~0ULL) {}
};

State* g_owner = nullptr;  // the installed State; g_state mirrors it

// Bound per-PE stream. Owned per kernel thread; rebuilt on every
// bind_stream so a reinstalled chaos engine (new seed) starts fresh.
thread_local Stream* t_stream = nullptr;
thread_local std::uint64_t t_stream_epoch = 0;
std::atomic<std::uint64_t> g_epoch{0};

State* state() {
  return const_cast<State*>(static_cast<const State*>(
      detail::g_state.load(std::memory_order_acquire)));
}

/// Every fired injection is traced (tagged with the master seed, so a
/// replayed timeline is self-describing) and counted in the registry.
void record_fired(State& s, Point p) {
  s.fired[static_cast<int>(p)].fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kChaosInjections);
  trace::emit_flight(trace::Ev::kChaosInject, s.seed, 0, 0, -1,
                     static_cast<std::uint8_t>(p));
}

double probability(const Config& c, Point p) {
  switch (p) {
    case Point::kIsoAcquire: return c.iso_alloc_fail;
    case Point::kPoolAcquire: return c.pool_fail;
    case Point::kDelivery: return c.delivery_delay;
    case Point::kPreempt: return c.preempt;
    case Point::kTransportKill: return c.transport_kill;
    case Point::kPeKill: return c.pe_kill;
    case Point::kProcKill: return c.proc_kill;
  }
  return 0.0;
}

}  // namespace

namespace detail {
std::atomic<const void*> g_state{nullptr};
}

const char* to_string(Point p) {
  switch (p) {
    case Point::kIsoAcquire: return "iso-acquire";
    case Point::kPoolAcquire: return "pool-acquire";
    case Point::kDelivery: return "delivery";
    case Point::kPreempt: return "preempt";
    case Point::kTransportKill: return "transport-kill";
    case Point::kPeKill: return "pe-kill";
    case Point::kProcKill: return "proc-kill";
  }
  return "?";
}

void install(const Config& config) {
  MFC_CHECK_MSG(state() == nullptr, "chaos already installed");
  std::uint64_t seed = config.seed;
  if (const char* env = std::getenv("MFC_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(env, &end, 0);
    if (end != nullptr && *end == '\0') seed = v;
  }
  g_owner = new State(config, seed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_state.store(g_owner, std::memory_order_release);
  // The replay contract: re-run with this exact value to reproduce.
  std::fprintf(stderr, "MFC_CHAOS_SEED=%llu\n",
               static_cast<unsigned long long>(seed));
}

void uninstall() {
  State* s = state();
  if (s == nullptr) return;
  detail::g_state.store(nullptr, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  delete s;
  g_owner = nullptr;
}

const Config& config() {
  State* s = state();
  MFC_CHECK_MSG(s != nullptr, "chaos not installed");
  return s->cfg;
}

std::uint64_t seed() {
  State* s = state();
  return s != nullptr ? s->seed : 0;
}

void bind_stream(int pe) {
  State* s = state();
  if (s == nullptr) return;
  delete t_stream;
  t_stream = new Stream(s->seed, static_cast<std::uint64_t>(pe));
  t_stream_epoch = g_epoch.load(std::memory_order_relaxed);
}

void unbind_stream() {
  delete t_stream;
  t_stream = nullptr;
}

namespace {

/// Looks up this thread's bound stream, discarding streams left over from a
/// previous install (stale epoch ⇒ different seed).
Stream* bound_stream() {
  if (t_stream != nullptr &&
      t_stream_epoch == g_epoch.load(std::memory_order_relaxed)) {
    return t_stream;
  }
  return nullptr;
}

}  // namespace

bool should_inject(Point p) {
  State* s = state();
  if (s == nullptr) return false;
  double prob = probability(s->cfg, p);
  if (prob <= 0.0) return false;
  bool fire;
  if (Stream* st = bound_stream()) {
    fire = st->point[static_cast<int>(p)].next_double() < prob;
  } else {
    std::lock_guard<std::mutex> lock(s->external_mu);
    fire = s->external.point[static_cast<int>(p)].next_double() < prob;
  }
  if (fire) record_fired(*s, p);
  return fire;
}

std::uint64_t draw(Point p, std::uint64_t below) {
  State* s = state();
  if (s == nullptr) return 0;
  if (Stream* st = bound_stream()) {
    return st->point[static_cast<int>(p)].next_below(below);
  }
  std::lock_guard<std::mutex> lock(s->external_mu);
  return s->external.point[static_cast<int>(p)].next_below(below);
}

namespace {

/// One fresh draw from the pure (seed, point, key) position — stateless, so
/// the same key always sees the same value within one install.
SplitMix64 keyed_rng(const State& s, Point p, std::uint64_t key) {
  std::uint64_t h = s.seed ^ kKeyedSalt;
  h = mix64(h ^ (static_cast<std::uint64_t>(p) + 1));
  h = mix64(h ^ key);
  return SplitMix64(h);
}

}  // namespace

bool keyed_inject(Point p, std::uint64_t key) {
  State* s = state();
  if (s == nullptr) return false;
  double prob = probability(s->cfg, p);
  if (prob <= 0.0) return false;
  bool fire = keyed_rng(*s, p, key).next_double() < prob;
  if (fire) record_fired(*s, p);
  return fire;
}

std::uint64_t keyed_draw(Point p, std::uint64_t key, std::uint64_t below) {
  State* s = state();
  if (s == nullptr) return 0;
  SplitMix64 r = keyed_rng(*s, p, key);
  r.next();  // decouple draw values from keyed_inject's decision draw
  return r.next_below(below);
}

std::uint64_t injections(Point p) {
  State* s = state();
  if (s == nullptr) return 0;
  return s->fired[static_cast<int>(p)].load(std::memory_order_relaxed);
}

SplitMix64* sched_choice_rng() {
  State* s = state();
  if (s == nullptr || !s->cfg.deterministic_sched) return nullptr;
  Stream* st = bound_stream();
  return st != nullptr ? &st->sched : nullptr;
}

namespace detail {

void preempt_point_slow(const char* where) {
  (void)where;
  ult::Scheduler& sched = ult::Scheduler::current();
  // Only a running ULT can yield; scheduler/handler context falls through.
  if (!sched.in_thread()) return;
  if (should_inject(Point::kPreempt)) sched.yield();
}

}  // namespace detail

}  // namespace mfc::chaos
