#include "chaos/proc_transport.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "chaos/chaos.h"
#include "trace/metrics.h"
#include "util/check.h"

namespace mfc::chaos {

namespace {

// Wire frame: [len:u64][die_after:u64][payload:len]. The relay echoes the
// payload back, but at most `die_after` bytes — then it drains the rest of
// the input (so the parent's writes never hit EPIPE mid-frame) and _exits,
// modeling a transport process dying with a migration half-shipped.
constexpr std::uint64_t kNoDeath = ~0ULL;
constexpr int kDeathExit = 37;

void store_u64(unsigned char* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// ---- Child side: async-signal-safe only (the parent is multithreaded,
// so the child may hold arbitrary lock states in its heap — it must never
// malloc, lock, or call into the runtime between fork and _exit).

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    ssize_t r = read(fd, p, n);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    ssize_t w = write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

[[noreturn]] void relay_child(int rfd, int wfd) {
  char buf[64 * 1024];
  for (;;) {
    unsigned char hdr[16];
    if (!read_full(rfd, hdr, sizeof hdr)) _exit(0);  // parent closed: done
    const std::uint64_t len = load_u64(hdr);
    const std::uint64_t die_after = load_u64(hdr + 8);
    std::uint64_t consumed = 0;
    std::uint64_t echoed = 0;
    while (consumed < len) {
      const std::size_t want = len - consumed < sizeof buf
                                   ? static_cast<std::size_t>(len - consumed)
                                   : sizeof buf;
      ssize_t r = read(rfd, buf, want);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        _exit(1);
      }
      consumed += static_cast<std::uint64_t>(r);
      std::uint64_t can = 0;
      if (echoed < die_after) {
        can = die_after - echoed;
        if (can > static_cast<std::uint64_t>(r)) {
          can = static_cast<std::uint64_t>(r);
        }
      }
      if (can > 0 &&
          !write_full(wfd, buf, static_cast<std::size_t>(can))) {
        _exit(1);
      }
      echoed += can;
    }
    if (die_after < len) _exit(kDeathExit);  // injected mid-shipment death
  }
}

// ---- Parent side ----

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  MFC_CHECK(flags >= 0);
  MFC_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

/// A dead relay turns parent writes into EPIPE; we want the error code, not
/// the default fatal SIGPIPE.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

ProcTransport::ProcTransport() {
  ignore_sigpipe_once();
  spawn();
}

ProcTransport::~ProcTransport() { reap(); }

void ProcTransport::spawn() {
  int to_child[2];
  int from_child[2];
  MFC_CHECK(pipe(to_child) == 0);
  MFC_CHECK(pipe(from_child) == 0);
  int pid = fork();
  MFC_CHECK_MSG(pid >= 0, "proc transport fork failed");
  if (pid == 0) {
    close(to_child[1]);
    close(from_child[0]);
    relay_child(to_child[0], from_child[1]);
  }
  close(to_child[0]);
  close(from_child[1]);
  to_child_ = to_child[1];
  from_child_ = from_child[0];
  child_pid_ = pid;
  // The parent interleaves writes and reads from one thread (the pipes are
  // smaller than a thread image, so blocking I/O would deadlock against the
  // echo); nonblocking fds + poll keep both directions moving.
  set_nonblocking(to_child_);
  set_nonblocking(from_child_);
}

void ProcTransport::reap() {
  if (child_pid_ < 0) return;
  close(to_child_);    // EOF on the relay's header read → clean _exit(0)
  close(from_child_);
  int status = 0;
  waitpid(child_pid_, &status, 0);
  to_child_ = -1;
  from_child_ = -1;
  child_pid_ = -1;
}

bool ProcTransport::attempt(const std::vector<char>& bytes,
                            std::uint64_t die_after,
                            std::vector<char>* out) {
  std::vector<char> tx(16 + bytes.size());
  store_u64(reinterpret_cast<unsigned char*>(tx.data()), bytes.size());
  store_u64(reinterpret_cast<unsigned char*>(tx.data()) + 8, die_after);
  if (!bytes.empty()) std::memcpy(tx.data() + 16, bytes.data(), bytes.size());

  std::size_t txoff = 0;
  out->clear();
  out->reserve(bytes.size());
  char buf[64 * 1024];
  while (out->size() < bytes.size() || txoff < tx.size()) {
    struct pollfd fds[2];
    int n = 0;
    int wi = -1;
    if (txoff < tx.size()) {
      fds[n] = {to_child_, POLLOUT, 0};
      wi = n++;
    }
    const int ri = n;
    fds[n++] = {from_child_, POLLIN, 0};
    int pr = poll(fds, static_cast<nfds_t>(n), 10000);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    MFC_CHECK_MSG(pr > 0, "proc transport stalled (relay wedged?)");
    if (wi >= 0 && (fds[wi].revents & (POLLOUT | POLLERR)) != 0) {
      ssize_t w = write(to_child_, tx.data() + txoff, tx.size() - txoff);
      if (w > 0) {
        txoff += static_cast<std::size_t>(w);
      } else if (w < 0 && errno != EAGAIN && errno != EINTR) {
        return false;  // EPIPE: relay died under us
      }
    }
    if ((fds[ri].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ssize_t r = read(from_child_, buf, sizeof buf);
      if (r > 0) {
        out->insert(out->end(), buf, buf + r);
      } else if (r == 0) {
        return out->size() == bytes.size();  // EOF: full echo or truncation
      } else if (errno != EAGAIN && errno != EINTR) {
        return false;
      }
    }
  }
  return true;
}

std::vector<char> ProcTransport::roundtrip(const std::vector<char>& bytes,
                                           std::uint64_t key) {
  const int max_kills =
      enabled() && !bytes.empty() ? config().max_transport_kills : 0;
  int kills = 0;
  for (int tries = 0;; ++tries) {
    MFC_CHECK_MSG(tries < max_kills + 3,
                  "proc transport kept failing without injected kills");
    // Decide this attempt's fate purely from (seed, shipment key, attempt
    // number) so the kill/respawn pattern replays bit-identically.
    std::uint64_t die_after = kNoDeath;
    if (kills < max_kills) {
      const std::uint64_t akey =
          key ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(kills + 1));
      if (keyed_inject(Point::kTransportKill, akey)) {
        die_after = keyed_draw(Point::kTransportKill, akey, bytes.size());
      }
    }
    std::vector<char> out;
    if (attempt(bytes, die_after, &out)) return out;
    // The relay died mid-shipment (injected or real): back off with
    // exponential delay + seeded jitter (thundering-herd hygiene when many
    // PEs lose relays at once — the jitter draw is keyed on (shipment,
    // attempt) so replays of the same seed sleep identically), then reap
    // the corpse, respawn a fresh relay, and retry the whole image.
    const std::uint64_t backoff_cap =
        std::min<std::uint64_t>(50ULL << std::min(tries, 6), 2000);
    const std::uint64_t jkey =
        key ^ 0x5bf03d8ab24c96e1ULL ^
        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(tries + 1));
    const std::uint64_t jitter =
        enabled() ? keyed_draw(Point::kTransportKill, jkey, backoff_cap + 1)
                  : 0;
    std::this_thread::sleep_for(
        std::chrono::microseconds(backoff_cap + jitter));
    reap();
    spawn();
    ++respawns_;
    metrics::bump(metrics::Counter::kTransportRespawns);
    if (die_after != kNoDeath) ++kills;
  }
}

}  // namespace mfc::chaos
