#include "chaos/storm.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chaos/proc_transport.h"
#include "charm/array.h"
#include "converse/machine.h"
#include "ft/ft.h"
#include "ft/pagetrack.h"
#include "iso/heap.h"
#include "iso/region.h"
#include "lb/strategy.h"
#include "migrate/checkpoint.h"
#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/stackcopy_thread.h"
#include "pup/pup.h"
#include "trace/flight.h"
#include "trace/hist.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "ult/scheduler.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/rng.h"
#include "util/timer.h"

// The mprotect write barrier takes SIGSEGV on purpose; tsan's signal
// interception makes that combination fragile, so the telemetry arming is
// release-only (the incremental/async protocol itself — content deltas
// against the committed base — runs under tsan unchanged).
#if defined(__SANITIZE_THREAD__)
#define MFC_STORM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MFC_STORM_TSAN 1
#endif
#endif

namespace mfc::chaos {
namespace {

constexpr int kArrayId = 9100;
constexpr int kTagPing = 1;
constexpr int kTagHop = 2;
constexpr std::size_t kCanaryBytes = 192;

// Seed-derivation salts (domain separation between the independent streams
// a storm draws from one seed).
constexpr std::uint64_t kItinSalt = 0x61f3a2c8d94be071ULL;
constexpr std::uint64_t kStackSalt = 0x8d1a9f30c27e5b44ULL;
constexpr std::uint64_t kHeapSalt = 0x2be4c6d8f0a19375ULL;
constexpr std::uint64_t kShipSalt = 0xa7c41d92e85f3b06ULL;
constexpr std::uint64_t kTrafficSalt = 0x54e8b16f9d03ca27ULL;

bool trace_on() {
  static const bool on = ::getenv("MFC_STORM_TRACE") != nullptr;
  return on;
}
#define STORM_TRACE(...) \
  do { if (trace_on()) { std::fprintf(stderr, __VA_ARGS__); std::fputc('\n', stderr); } } while (0)

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  SplitMix64 r(a ^ (b + 0x9e3779b97f4a7c15ULL));
  return r.next();
}

void fill_pattern(unsigned char* p, std::size_t n, std::uint64_t key) {
  SplitMix64 r(key);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<unsigned char>(r.next());
  }
}

bool check_pattern(const unsigned char* p, std::size_t n, std::uint64_t key) {
  SplitMix64 r(key);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != static_cast<unsigned char>(r.next())) return false;
  }
  return true;
}

/// Key for the canary pattern worker `wid` writes before its round-`r`
/// migration (verified on arrival; r == 0 is the pre-first-hop pattern).
std::uint64_t pat_key(std::uint64_t seed, int wid, int r, std::uint64_t salt) {
  return mix2(seed ^ salt, static_cast<std::uint64_t>(wid) * 1000003ULL +
                               static_cast<std::uint64_t>(r));
}

struct Ping {
  std::int32_t ttl = 0;
  std::uint64_t value = 0;
  void pup(pup::Er& p) { p | ttl | value; }
};

struct DockMsg {
  std::int32_t wid = 0;
  std::int32_t round = 0;
  void pup(pup::Er& p) { p | wid | round; }
};

struct ShipMsg {
  std::int32_t wid = 0;
  std::int32_t round = 0;
  std::uint64_t digest = 0;  ///< FNV-1a of `wire` at pack time
  /// Pack-start rdtsc for the end-to-end migration latency histogram
  /// (0 = histograms off; forked processes share the tsc domain, so the
  /// receiver may subtract it directly). Constant-size, so same-seed
  /// replays stay byte-count identical.
  std::uint64_t stamp = 0;
  std::vector<char> wire;    ///< serialized ThreadImage
  void pup(pup::Er& p) { p | wid | round | digest | stamp | wire; }
};

struct WorkerSlot {
  /// The worker's current Thread object; owned and touched only by the PE
  /// it currently resides on (the mutex covers the pointer handoff).
  migrate::MigratableThread* thread = nullptr;
  std::uint64_t digest = kFnvOffset;  ///< published by the worker per round
};

/// Per-PE application payload of an ft checkpoint blob: which workers were
/// parked here (in image order), the round they were parked at, and this
/// PE's chare-array slice. PE0 additionally snapshots the checker's traffic
/// RNG and the ping balance counters so the resumed rounds redraw the same
/// stream.
struct StormPeCkpt {
  std::vector<std::int32_t> wids;
  std::int32_t round = 0;
  std::vector<char> array_blob;
  std::uint64_t traffic_state = 0;
  std::uint64_t array_sent = 0;
  std::uint64_t array_delivered = 0;
  void pup(pup::Er& p) {
    p | wids | round | array_blob | traffic_state | array_sent |
        array_delivered;
  }
};

struct StormGlobal {
  StormOptions opt;
  std::vector<std::vector<int>> itinerary;  // [worker][round] → dest PE

  std::mutex mu;  // workers / by_thread_id / arrived handoffs
  std::vector<WorkerSlot> workers;
  std::unordered_map<std::uint64_t, int> by_thread_id;  // Thread::id → wid
  /// Per-PE arrivals parked until that round's release. Tagged with the
  /// round because a chaos-delayed release broadcast from round r can land
  /// on a PE after round r+1 workers already arrived there — an untagged
  /// release would ready them a round early and wreck the arrival counts.
  struct Arrival {
    ult::Thread* thread;
    std::int32_t round;
  };
  std::unordered_map<int, std::vector<Arrival>> arrived;  // per PE
  std::vector<ult::Thread*> mains;  // non-PE0 mains parked until alldone

  ProcTransport* transport = nullptr;
  std::mutex transport_mu;  // the relay handles one shipment at a time

  // PE0-only protocol state (PE0 kernel thread: its handlers + main ULT).
  int arrivals = 0;
  int done_workers = 0;
  enum class Waiting { kNone, kArrivals, kDone } waiting = Waiting::kNone;
  ult::Thread* checker = nullptr;
  std::uint64_t slots_prestorm = 0;
  /// Background array-traffic stream. Lives here (not on the checker's
  /// stack) so ft checkpoints can snapshot and roll back its state.
  SplitMix64 traffic{0};

  // ---- FT round-protocol state (PE0 kernel thread unless noted) ----
  /// Where the checker stands relative to a failure: kInterrupted between
  /// detection and rollback completion, kResumePending once on_recovered
  /// fired and the checker must rewind to ft_resume_round.
  enum class FtPhase { kNone, kInterrupted, kResumePending };
  FtPhase ft_phase = FtPhase::kNone;
  int ft_resume_round = 0;   ///< round the rollback restored (set by restore)
  int ft_victim_pe = -1;
  int ft_ckpt_round = -1;    ///< round being checkpointed (capture asserts)
  ult::Thread* ft_parked_checker = nullptr;
  /// Kill ordinal fencing: ordinal k fires only when kills_fired == k, so
  /// the re-broadcast release after a rollback cannot re-kill. Written by
  /// victim PEs (hence atomic).
  std::atomic<int> kills_fired{0};
  /// kill_ordinal[r] = ordinal of the kill scheduled at round r's release,
  /// or -1 (empty when FT kills are off).
  std::vector<int> kill_ordinal;
  /// Highest round whose kStormRound marker was emitted. Async rollbacks
  /// can rewind more than one round (an aborted epoch rolls back to the
  /// previous one), so replayed loop iterations must not re-mark.
  int ft_max_marked_round = -1;
  /// Per-PE dirty-page write barriers (modes 1/2, release builds): armed
  /// over parked isomalloc stacks after each capture, harvested at the
  /// next. Each tracker is touched only by its PE's kernel thread.
  std::vector<std::unique_ptr<ft::DirtyTracker>> trackers;

  std::atomic<std::uint64_t> array_sent{0};
  std::atomic<std::uint64_t> array_delivered{0};
  std::atomic<std::uint64_t> element_migrations{0};
  std::atomic<std::uint64_t> thread_migrations{0};
  std::atomic<std::uint64_t> wire_bytes{0};
  std::atomic<std::uint64_t> canary_failures{0};
  std::atomic<std::uint64_t> digest_mismatches{0};
  std::atomic<std::uint64_t> misroutes{0};
  std::atomic<std::uint64_t> counter_failures{0};

  StormReport report;  // finalized by PE0's checker, returned by run_storm
};

StormGlobal* g_storm = nullptr;

converse::HandlerId h_dock, h_ship, h_arrived, h_release, h_worker_done,
    h_alldone;

std::uint64_t total_used_slots(int npes) {
  std::uint64_t used = 0;
  for (int pe = 0; pe < npes; ++pe) {
    used += iso::Region::instance().used_slots(pe);
  }
  return used;
}

int technique_of(int wid, const StormOptions& opt) {
  return opt.single_technique >= 0 ? opt.single_technique : wid % 3;
}

/// Victim of kill ordinal `k`: a keyed draw (never PE0 — the coordinator),
/// pure in (chaos seed, k), so every PE computes the same victim and a
/// replay from the printed MFC_CHAOS_SEED kills the same PEs.
int kill_victim_of(int k, int npes) {
  return 1 + static_cast<int>(chaos::keyed_draw(
                 chaos::Point::kPeKill,
                 0xf7a5c3d1b9e86420ULL ^ static_cast<std::uint64_t>(k),
                 static_cast<std::uint64_t>(npes - 1)));
}

bool is_ckpt_round(int r, const StormOptions& opt) {
  return opt.ft_checkpoint_every > 0 &&
         (r + 1) % opt.ft_checkpoint_every == 0 && r < opt.rounds - 1;
}

// ---- Worker -----------------------------------------------------------------

/// Worker body. Runs as a migratable thread, so: no reliance on the Thread
/// object it started on (packing deletes it), identity via Thread::id()
/// (preserved across unpack), and all cross-round state in stack locals —
/// which is exactly what the migration techniques promise to carry.
void worker_body() {
  StormGlobal* g = g_storm;
  const StormOptions& opt = g->opt;
  int wid;
  {
    std::lock_guard<std::mutex> lock(g->mu);
    wid = g->by_thread_id.at(converse::pe_scheduler().running()->id());
  }
  const bool is_iso = technique_of(wid, opt) == 1;

  // Stack canary: a keyed byte pattern rewritten before every hop and
  // verified after — plus the address-stability probe, the paper's central
  // guarantee ("exactly the same address on the new processor").
  unsigned char canary[kCanaryBytes];
  const auto canary_addr = reinterpret_cast<std::uintptr_t>(&canary[0]);
  fill_pattern(canary, sizeof canary, pat_key(opt.seed, wid, 0, kStackSalt));

  // Heap canary (isomalloc workers only: their routed allocations live in
  // slot memory and must migrate byte-exact; the other techniques migrate
  // stacks only).
  unsigned char* heap_canary = nullptr;
  if (is_iso) {
    heap_canary = static_cast<unsigned char*>(iso::routed_malloc(kCanaryBytes));
    fill_pattern(heap_canary, kCanaryBytes,
                 pat_key(opt.seed, wid, 0, kHeapSalt));
  }

  std::uint64_t digest = kFnvOffset;
  for (int r = 0; r < opt.rounds; ++r) {
    const int dest = g->itinerary[static_cast<std::size_t>(wid)]
                                 [static_cast<std::size_t>(r)];
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(wid));
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(r));
    digest = fnv1a_mix(digest, static_cast<std::uint64_t>(dest));
    {
      std::lock_guard<std::mutex> lock(g->mu);
      g->workers[static_cast<std::size_t>(wid)].digest = digest;
    }

    // Dock: the handler runs on this PE only after we suspend, so it packs
    // a thread that is guaranteed to be in kSuspended state.
    converse::send_value(converse::my_pe(), h_dock, DockMsg{wid, r});
    ult::suspend();

    // Awake again — on the destination PE, readied by the round release.
    // Simulated application compute first (bench knob; see StormOptions).
    if (opt.work_spin > 0) {
      std::uint64_t scratch = static_cast<std::uint64_t>(wid) + 1;
      for (int i = 0; i < opt.work_spin; ++i) {
        scratch = fnv1a_mix(scratch, static_cast<std::uint64_t>(i));
        asm volatile("" : "+r"(scratch));
      }
    }
    if (converse::my_pe() != dest) {
      g->misroutes.fetch_add(1, std::memory_order_relaxed);
    }
    if (reinterpret_cast<std::uintptr_t>(&canary[0]) != canary_addr ||
        !check_pattern(canary, sizeof canary,
                       pat_key(opt.seed, wid, r, kStackSalt))) {
      g->canary_failures.fetch_add(1, std::memory_order_relaxed);
    }
    if (heap_canary != nullptr &&
        !check_pattern(heap_canary, kCanaryBytes,
                       pat_key(opt.seed, wid, r, kHeapSalt))) {
      g->canary_failures.fetch_add(1, std::memory_order_relaxed);
    }
    fill_pattern(canary, sizeof canary,
                 pat_key(opt.seed, wid, r + 1, kStackSalt));
    if (heap_canary != nullptr) {
      fill_pattern(heap_canary, kCanaryBytes,
                   pat_key(opt.seed, wid, r + 1, kHeapSalt));
    }
  }

  if (heap_canary != nullptr) iso::routed_free(heap_canary);
  converse::send_value(0, h_worker_done, std::int32_t{wid});
}

migrate::MigratableThread* make_worker(int wid, int pe,
                                       const StormOptions& opt) {
  switch (technique_of(wid, opt)) {
    case 0:
      return new migrate::StackCopyThread(worker_body, opt.stack_bytes);
    case 1:
      return new migrate::IsoThread(worker_body, pe, opt.stack_bytes);
    default:
      return new migrate::MemAliasThread(worker_body, opt.stack_bytes);
  }
}

// ---- Array element ----------------------------------------------------------

struct StormElement final : charm::Element {
  std::uint64_t acc = 0;   ///< folded ping values (migrates with the element)
  std::uint64_t hits = 0;

  void on_message(int tag, std::vector<char> payload) override {
    StormGlobal* g = g_storm;
    g->array_delivered.fetch_add(1, std::memory_order_relaxed);
    charm::ArrayBase* a = charm::find_array(array_id());
    if (tag == kTagPing) {
      Ping p;
      pup::from_bytes(payload, p);
      acc = fnv1a_mix(acc, p.value);
      ++hits;
      if (p.ttl > 0) {
        Ping next{p.ttl - 1, p.value * 0x9e3779b97f4a7c15ULL + 1};
        g->array_sent.fetch_add(1, std::memory_order_relaxed);
        a->send((index() + 1) % a->count(), kTagPing, pup::to_bytes(next));
      }
    } else if (tag == kTagHop) {
      std::int32_t dest = 0;
      pup::from_bytes(payload, dest);
      g->element_migrations.fetch_add(1, std::memory_order_relaxed);
      a->migrate(index(), dest);  // self-migration mid-storm
    }
  }

  void pup(pup::Er& p) override { p | acc | hits; }
};

// ---- Handlers ---------------------------------------------------------------

/// PE0: wake the parked checker when the count it waits for is complete.
void pe0_maybe_wake() {
  StormGlobal* g = g_storm;
  if (g->checker == nullptr) return;
  const bool complete =
      (g->waiting == StormGlobal::Waiting::kArrivals &&
       g->arrivals >= g->opt.workers) ||
      (g->waiting == StormGlobal::Waiting::kDone &&
       g->done_workers >= g->opt.workers);
  if (!complete) return;
  ult::Thread* t = g->checker;
  g->checker = nullptr;
  g->waiting = StormGlobal::Waiting::kNone;
  converse::ready_thread(t);
}

/// PE0 checker: park until `counter` reaches the worker count — or a
/// failure interrupts the round protocol (the caller's ft_check handles
/// that; returning here instead of re-parking is what keeps the checker
/// reachable for the post-recovery wake-up).
void pe0_wait(StormGlobal::Waiting kind) {
  StormGlobal* g = g_storm;
  const int target = g->opt.workers;
  for (;;) {
    if (g->ft_phase != StormGlobal::FtPhase::kNone) return;
    const int current = kind == StormGlobal::Waiting::kArrivals
                            ? g->arrivals
                            : g->done_workers;
    if (current >= target) return;
    g->waiting = kind;
    g->checker = converse::pe_scheduler().running();
    ult::suspend();
  }
}

/// This PE's write barrier, or nullptr when dirty tracking is off.
ft::DirtyTracker* pe_tracker(int pe) {
  StormGlobal* g = g_storm;
  return g->trackers.empty() ? nullptr
                             : g->trackers[static_cast<std::size_t>(pe)].get();
}

/// Deregisters `t`'s stack slot from this PE's write barrier, if tracked.
/// Must run before any pack/evacuate: iso::Region::evacuate remaps the
/// slot with MAP_FIXED, which silently clears page protection and would
/// leave a stale registry entry behind for the fault handler to trip over.
void untrack_worker(int pe, migrate::MigratableThread* t) {
  ft::DirtyTracker* tracker = pe_tracker(pe);
  if (tracker == nullptr ||
      t->technique() != migrate::Technique::kIsomalloc) {
    return;
  }
  const iso::SlotId slot = static_cast<migrate::IsoThread*>(t)->stack_slot();
  void* base = iso::Region::instance().slot_base(slot);
  if (!tracker->tracking(base)) return;
  // Harvest before the bits are dropped: this worker ran a round on the
  // protected stack, so its fault count is this epoch's telemetry.
  if (tracker->armed()) {
    metrics::bump(metrics::Counter::kFtDirtyPages,
                  tracker->dirty_pages_in(base,
                                          iso::Region::instance().slot_span(slot)));
  }
  tracker->untrack(base);
}

void handle_dock(converse::Message&& m) {
  StormGlobal* g = g_storm;
  const auto d = m.as<DockMsg>();
  STORM_TRACE("dock: wid %d round %d on pe %d", d.wid, d.round, converse::my_pe());
  migrate::MigratableThread* t;
  {
    std::lock_guard<std::mutex> lock(g->mu);
    WorkerSlot& slot = g->workers[static_cast<std::size_t>(d.wid)];
    t = slot.thread;
    slot.thread = nullptr;
  }
  MFC_CHECK_MSG(t != nullptr && t->state() == ult::State::kSuspended,
                "storm: dock for a worker that is not suspended here");

  untrack_worker(converse::my_pe(), t);
  const int dest = g->itinerary[static_cast<std::size_t>(d.wid)]
                               [static_cast<std::size_t>(d.round)];

  if (g->transport != nullptr) {
    // Relay round-trip needs the image as one contiguous buffer anyway, so
    // this path keeps the gathering pack (and can survive injected relay
    // deaths, keyed by (worker, round) so the kill pattern replays).
    const std::uint64_t e2e0 = hist::on() ? rdtsc() : 0;
    migrate::ThreadImage image = t->pack();
    delete t;  // pack() consumed it; only the image represents the worker now

    ShipMsg ship;
    ship.wid = d.wid;
    ship.round = d.round;
    ship.stamp = e2e0;
    ship.wire = pup::to_bytes(image);
    ship.digest = fnv1a(ship.wire.data(), ship.wire.size());
    g->wire_bytes.fetch_add(ship.wire.size(), std::memory_order_relaxed);

    const std::uint64_t key =
        mix2(g->opt.seed ^ kShipSalt,
             static_cast<std::uint64_t>(d.wid) * 1000003ULL +
                 static_cast<std::uint64_t>(d.round));
    std::lock_guard<std::mutex> lock(g->transport_mu);
    std::vector<char> echoed = g->transport->roundtrip(ship.wire, key);
    if (echoed.size() != ship.wire.size() ||
        fnv1a(echoed.data(), echoed.size()) != ship.digest) {
      g->digest_mismatches.fetch_add(1, std::memory_order_relaxed);
      trace::flight::dump("storm-relay-digest-mismatch");
    } else {
      ship.wire = std::move(echoed);
    }
    g->thread_migrations.fetch_add(1, std::memory_order_relaxed);
    converse::send_value(dest, h_ship, ship);
    return;
  }

  // Scatter-gather ship: serialize the manifest's span list straight into
  // the wire (in-process: one gather into the delivery envelope; shm/socket:
  // ring frames / writev) — no intermediate contiguous image is ever built.
  // The byte stream is identical to the ShipMsg encoding above, so
  // handle_ship cannot tell the paths apart. The destructive pack epilogue
  // runs in on_consumed, which the send contract orders strictly before the
  // message can be delivered — even a same-process unpack at the same
  // isomalloc addresses cannot race the evacuation.
  const std::uint64_t e2e0 = hist::on() ? rdtsc() : 0;
  migrate::ImageManifest man = t->pack_manifest(/*count=*/true);
  std::vector<char> scratch;
  const std::vector<migrate::IoRun> img_spans = man.wire_spans(&scratch);
  std::uint64_t digest = kFnvOffset;
  std::size_t wire_len = 0;
  for (const migrate::IoRun& r : img_spans) {
    digest = fnv1a(r.data, r.len, digest);
    wire_len += r.len;
  }
  g->wire_bytes.fetch_add(wire_len, std::memory_order_relaxed);

  // ShipMsg prefix {wid, round, digest, wire length}, encoded with the same
  // pup operators ShipMsg::pup uses.
  std::int32_t wid = d.wid;
  std::int32_t round = d.round;
  std::uint64_t stamp = e2e0;
  pup::Sizer sz;
  sz | wid | round | digest | stamp;
  std::vector<char> prefix(sz.size() + sizeof(std::size_t));
  pup::MemPacker p(prefix.data(), prefix.size());
  p | wid | round | digest | stamp;
  std::size_t len_word = wire_len;
  p.bytes(&len_word, sizeof len_word);
  MFC_CHECK(p.written(prefix.data()) == prefix.size());

  std::vector<converse::SendSpan> spans;
  spans.reserve(img_spans.size() + 1);
  spans.push_back({prefix.data(), prefix.size()});
  for (const migrate::IoRun& r : img_spans) spans.push_back({r.data, r.len});

  g->thread_migrations.fetch_add(1, std::memory_order_relaxed);
  converse::send_spans(dest, h_ship, spans.data(), spans.size(), [t] {
    t->complete_pack();
    delete t;
  });
}

void handle_ship(converse::Message&& m) {
  StormGlobal* g = g_storm;
  auto ship = m.as<ShipMsg>();
  // Transit integrity: the bytes that left the source arrived unchanged.
  if (fnv1a(ship.wire.data(), ship.wire.size()) != ship.digest) {
    g->digest_mismatches.fetch_add(1, std::memory_order_relaxed);
    trace::flight::dump("storm-transit-digest-mismatch");
  }
  migrate::ThreadImage image;
  pup::from_bytes(ship.wire, image);
  // PUP round-trip bit-identity: unpack → repack reproduces the wire.
  const std::vector<char> rewire = pup::to_bytes(image);
  if (rewire.size() != ship.wire.size() ||
      fnv1a(rewire.data(), rewire.size()) != ship.digest) {
    g->digest_mismatches.fetch_add(1, std::memory_order_relaxed);
    trace::flight::dump("storm-pup-digest-mismatch");
  }

  auto* t = migrate::MigratableThread::unpack(std::move(image),
                                              converse::my_pe());
  if (ship.stamp != 0 && hist::on()) {
    const std::uint64_t now = rdtsc();
    if (now > ship.stamp) {
      hist::record(hist::Hist::kMigrateE2e, now - ship.stamp);
    }
  }
  t->set_delete_on_exit(true);
  {
    std::lock_guard<std::mutex> lock(g->mu);
    g->workers[static_cast<std::size_t>(ship.wid)].thread = t;
    g->arrived[converse::my_pe()].push_back({t, ship.round});
  }
  // Not readied yet: the round barrier (h_release) wakes all arrivals at
  // once, after the PE0 checker has run the invariant sweep.
  STORM_TRACE("ship: wid %d arrived on pe %d", ship.wid, converse::my_pe());
  converse::send_value(0, h_arrived, std::int32_t{ship.wid});
}

void handle_arrived(converse::Message&&) {
  ++g_storm->arrivals;
  pe0_maybe_wake();
}

void handle_release(converse::Message&& m) {
  StormGlobal* g = g_storm;
  const auto round = m.as<std::int32_t>();
  // Scheduled PE failure: the victim dies *at* the release of a checkpoint
  // round — after the epoch committed, before its arrivals wake. Not
  // readying the batch is the point: the parked workers are bit-identical
  // to their checkpoint images, and the wipe at revival discards them. The
  // kills_fired fence keeps the post-rollback re-release of this same round
  // from killing twice.
  if (!g->kill_ordinal.empty()) {
    const int k = g->kill_ordinal[static_cast<std::size_t>(round)];
    if (k >= 0 && converse::my_pe() == kill_victim_of(k, g->opt.npes)) {
      int expect = k;
      if (g->kills_fired.compare_exchange_strong(expect, k + 1)) {
        chaos::keyed_inject(chaos::Point::kPeKill,
                            static_cast<std::uint64_t>(k));
        STORM_TRACE("release: round %d kill %d takes pe %d", round, k,
                    converse::my_pe());
        ft::kill_pe(converse::my_pe());
        return;
      }
    }
  }
  // Ready only this round's arrivals: later-round workers may already be
  // parked here while this (delay-stashed) release was in flight.
  std::vector<ult::Thread*> batch;
  {
    std::lock_guard<std::mutex> lock(g->mu);
    auto& parked = g->arrived[converse::my_pe()];
    for (std::size_t i = 0; i < parked.size();) {
      if (parked[i].round == round) {
        batch.push_back(parked[i].thread);
        parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (ult::Thread* t : batch) converse::ready_thread(t);
}

void handle_worker_done(converse::Message&&) {
  ++g_storm->done_workers;
  pe0_maybe_wake();
}

void handle_alldone(converse::Message&&) {
  StormGlobal* g = g_storm;
  ult::Thread* main = g->mains[static_cast<std::size_t>(converse::my_pe())];
  if (main != nullptr) {
    g->mains[static_cast<std::size_t>(converse::my_pe())] = nullptr;
    converse::ready_thread(main);
  }
}

void register_storm_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_dock = converse::register_handler(handle_dock);
    h_ship = converse::register_handler(handle_ship);
    h_arrived = converse::register_handler(handle_arrived);
    h_release = converse::register_handler(handle_release);
    h_worker_done = converse::register_handler(handle_worker_done);
    h_alldone = converse::register_handler(handle_alldone);
  });
}

/// Labels the trace with the storm's replay coordinates, so a timeline on
/// its own carries everything needed to reproduce the run it came from.
void set_storm_meta(const StormOptions& opt) {
  if (!trace::enabled()) return;
  char buf[64];
  auto put = [&buf](const char* key, unsigned long long v) {
    std::snprintf(buf, sizeof buf, "%llu", v);
    trace::set_meta(key, buf);
  };
  put("chaos_seed", seed());  // post-install: reflects MFC_CHAOS_SEED override
  put("storm_seed", opt.seed);
  put("rounds", static_cast<unsigned long long>(opt.rounds));
  put("workers", static_cast<unsigned long long>(opt.workers));
  put("npes", static_cast<unsigned long long>(opt.npes));
  int mix[3] = {0, 0, 0};
  for (int w = 0; w < opt.workers; ++w) ++mix[w % 3];
  std::snprintf(buf, sizeof buf, "stackcopy:%d,iso:%d,memalias:%d", mix[0],
                mix[1], mix[2]);
  trace::set_meta("technique_mix", buf);
}

// ---- FT hooks ---------------------------------------------------------------

/// Pack-and-discard every arrival parked on `pe` (their images are dropped
/// — the checkpoint already holds the authoritative copies). Never touches
/// workers[]: during a rollback the restore hook is the sole writer of the
/// thread pointers, so each worker is re-installed exactly once.
void discard_parked(int pe) {
  StormGlobal* g = g_storm;
  if (ft::DirtyTracker* tracker = pe_tracker(pe)) {
    tracker->disarm();
    tracker->untrack_all();  // everything parked here is about to evacuate
  }
  std::lock_guard<std::mutex> lock(g->mu);
  auto& parked = g->arrived[pe];
  for (auto& a : parked) {
    auto* t = static_cast<migrate::MigratableThread*>(a.thread);
    t->pack();  // evacuates slots / frees buffers; the image is dropped
    delete t;
  }
  parked.clear();
}

/// Shared tail of both capture paths: the chare-array slice and (PE0) the
/// checker's traffic/counter snapshot.
void capture_meta(int pe, StormPeCkpt* meta) {
  StormGlobal* g = g_storm;
  if (charm::ArrayBase* arr = charm::find_array(kArrayId)) {
    meta->array_blob = arr->checkpoint_local();
  }
  if (pe == 0) {
    meta->traffic_state = g->traffic.state();
    meta->array_sent = g->array_sent.load(std::memory_order_relaxed);
    meta->array_delivered = g->array_delivered.load(std::memory_order_relaxed);
  }
}

/// ft capture hook: serialize this PE's slice of the storm. Arrivals are
/// processed in wid order to make the blob bytes deterministic regardless
/// of arrival timing.
///
/// Mode 0 (legacy, full): each parked worker is checkpointed by a
/// destructive self-migration — pack (which consumes the live thread), copy
/// the image into the checkpoint, unpack it right back at the same
/// addresses — so the storm keeps running after the epoch commits.
///
/// Modes 1/2 (incremental/async): zero-copy capture. pack_manifest() hands
/// back an iovec view of each suspended worker's slots, and a
/// GatherCheckpoint encodes the frame in one pass straight from those
/// addresses — no intermediate images, no slot evacuate/remap churn, and
/// the workers never notice. The manifests only stay valid while the
/// workers stay parked, which the quiescent capture window guarantees.
std::vector<char> ft_capture(std::uint64_t epoch) {
  (void)epoch;
  StormGlobal* g = g_storm;
  const int pe = converse::my_pe();
  StormPeCkpt meta;
  meta.round = g->ft_ckpt_round;

  // Harvest and release the previous epoch's write-barrier window first:
  // the gather below reads protected pages (fine), but the bookkeeping
  // belongs to the epoch that just ended.
  if (ft::DirtyTracker* tracker = pe_tracker(pe)) {
    if (tracker->armed()) {
      metrics::bump(metrics::Counter::kFtDirtyPages, tracker->dirty_total());
      tracker->disarm();
    }
    tracker->untrack_all();
  }

  std::vector<char> blob;
  if (g->opt.ft_mode == 0) {
    migrate::Checkpoint ckpt;
    {
      std::lock_guard<std::mutex> lock(g->mu);
      auto& parked = g->arrived[pe];
      std::sort(parked.begin(), parked.end(),
                [g](const StormGlobal::Arrival& x,
                    const StormGlobal::Arrival& y) {
                  return g->by_thread_id.at(x.thread->id()) <
                         g->by_thread_id.at(y.thread->id());
                });
      for (auto& a : parked) {
        auto* t = static_cast<migrate::MigratableThread*>(a.thread);
        const int wid = g->by_thread_id.at(t->id());
        MFC_CHECK_MSG(a.round == g->ft_ckpt_round,
                      "storm: checkpoint found a worker parked at the wrong "
                      "round (quiescence hole?)");
        migrate::ThreadImage image = t->pack();
        delete t;
        ckpt.add_image(image);  // copy; the original re-animates below
        auto* fresh =
            migrate::MigratableThread::unpack(std::move(image), pe);
        fresh->set_delete_on_exit(true);
        g->workers[static_cast<std::size_t>(wid)].thread = fresh;
        a.thread = fresh;
        meta.wids.push_back(wid);
      }
    }
    capture_meta(pe, &meta);
    ckpt.set_user_data(pup::to_bytes(meta));
    blob = ckpt.encode();
  } else {
    migrate::GatherCheckpoint ckpt;
    std::vector<migrate::ImageManifest> manifests;
    std::lock_guard<std::mutex> lock(g->mu);
    auto& parked = g->arrived[pe];
    std::sort(parked.begin(), parked.end(),
              [g](const StormGlobal::Arrival& x,
                  const StormGlobal::Arrival& y) {
                return g->by_thread_id.at(x.thread->id()) <
                       g->by_thread_id.at(y.thread->id());
              });
    manifests.reserve(parked.size());
    for (auto& a : parked) {
      auto* t = static_cast<migrate::MigratableThread*>(a.thread);
      MFC_CHECK_MSG(a.round == g->ft_ckpt_round,
                    "storm: checkpoint found a worker parked at the wrong "
                    "round (quiescence hole?)");
      manifests.push_back(t->pack_manifest(false));
      meta.wids.push_back(g->by_thread_id.at(t->id()));
    }
    for (const migrate::ImageManifest& m : manifests) ckpt.add_manifest(m);
    capture_meta(pe, &meta);
    ckpt.set_user_data(pup::to_bytes(meta));
    blob = ckpt.encode();
    // Open the next write-barrier window over the parked isomalloc stacks.
    if (ft::DirtyTracker* tracker = pe_tracker(pe)) {
      for (auto& a : parked) {
        auto* t = static_cast<migrate::MigratableThread*>(a.thread);
        if (t->technique() != migrate::Technique::kIsomalloc) continue;
        auto* it = static_cast<migrate::IsoThread*>(t);
        void* base = iso::Region::instance().slot_base(it->stack_slot());
        tracker->track(base, iso::Region::instance().slot_span(it->stack_slot()));
      }
      tracker->arm();
    }
  }
  return blob;
}

/// ft wipe hook: runs on a revived PE before its death backlog drains —
/// the emulated memory loss. Everything that was parked here dies with the
/// PE; the chare-array slice is dropped too.
void ft_wipe(int pe) {
  discard_parked(pe);
  if (charm::ArrayBase* arr = charm::find_array(kArrayId)) arr->wipe_local();
}

/// ft discard hook (rollback phase A, every PE): throw away the live
/// post-checkpoint state. Must complete machine-wide before any restore
/// starts, or a restored image could hit iso slots a live worker still
/// occupies on another PE.
void ft_discard() { discard_parked(converse::my_pe()); }

/// ft restore hook (rollback phase B, every PE): rebuild the slice
/// ft_capture serialized — re-park every worker at the checkpoint round,
/// rebuild the array slice, and (PE0) rewind the checker's traffic stream
/// and round-protocol counters.
void ft_restore(std::uint64_t epoch, const std::vector<char>& blob) {
  (void)epoch;
  StormGlobal* g = g_storm;
  const int pe = converse::my_pe();
  migrate::Checkpoint ckpt;
  MFC_CHECK_MSG(
      migrate::Checkpoint::decode(blob, &ckpt) == migrate::CodecError::kOk,
      "storm: corrupt in-memory checkpoint blob");
  StormPeCkpt meta;
  pup::from_bytes(ckpt.user_data(), meta);
  std::vector<migrate::MigratableThread*> threads = ckpt.restore_all(pe);
  MFC_CHECK(threads.size() == meta.wids.size());
  {
    std::lock_guard<std::mutex> lock(g->mu);
    for (std::size_t i = 0; i < threads.size(); ++i) {
      migrate::MigratableThread* t = threads[i];
      const int wid = meta.wids[i];
      t->set_delete_on_exit(true);
      g->by_thread_id[t->id()] = wid;  // ids survive restore; refresh anyway
      g->workers[static_cast<std::size_t>(wid)].thread = t;
      g->arrived[pe].push_back({t, meta.round});
    }
  }
  if (charm::ArrayBase* arr = charm::find_array(kArrayId)) {
    arr->restore_local(meta.array_blob);
  }
  if (pe == 0) {
    g->traffic.set_state(meta.traffic_state);
    g->array_sent.store(meta.array_sent, std::memory_order_relaxed);
    g->array_delivered.store(meta.array_delivered, std::memory_order_relaxed);
    g->arrivals = 0;  // the re-released round re-docks every worker
    g->done_workers = 0;
    g->ft_resume_round = meta.round;
  }
}

/// ft detection hook (PE0 detector context): flag the interruption so the
/// checker parks instead of resuming a torn round when a recovery-era QD
/// completion or arrival count happens to wake it.
void ft_on_detect(int victim) {
  StormGlobal* g = g_storm;
  g->ft_phase = StormGlobal::FtPhase::kInterrupted;
  g->ft_victim_pe = victim;
}

/// ft recovery-complete hook (PE0 recovery thread): run the post-recovery
/// LB pass, then hand control back to the checker.
void ft_on_recovered(std::uint64_t epoch) {
  (void)epoch;
  StormGlobal* g = g_storm;
  // Post-recovery rebalance: hand the restored placement (round-r itinerary
  // stops) to the refinement strategy and record its decision. The storm's
  // itineraries re-scatter workers next round anyway, so the decision is
  // traced rather than applied — a real application would feed it straight
  // to the migration paths. Deterministic: pure function of restored state.
  const auto n = static_cast<std::size_t>(g->opt.workers);
  std::vector<double> loads(n, 1.0);
  lb::Mapping current(n);
  for (std::size_t w = 0; w < n; ++w) {
    current[w] = g->itinerary[w][static_cast<std::size_t>(g->ft_resume_round)];
  }
  const lb::Mapping next = lb::refine_lb(loads, current, g->opt.npes);
  trace::emit_flight(
      trace::Ev::kLbDecision, 0,
      static_cast<std::uint32_t>(lb::migration_count(current, next)));

  g->ft_phase = StormGlobal::FtPhase::kResumePending;
  g->ft_victim_pe = -1;
  if (g->ft_parked_checker != nullptr) {
    ult::Thread* t = g->ft_parked_checker;
    g->ft_parked_checker = nullptr;
    converse::ready_thread(t);
  } else if (g->checker != nullptr) {
    // Checker still parked in pe0_wait from before the failure; its loop
    // exits on the phase flag.
    ult::Thread* t = g->checker;
    g->checker = nullptr;
    g->waiting = StormGlobal::Waiting::kNone;
    converse::ready_thread(t);
  }
  // Else: the checker is already ready (woken by a recovery-era QD pass)
  // and will observe kResumePending in its next ft_check.
}

/// Checker-side failure check, called after every blocking call in the
/// round loop. Returns true when the round counter was rewound to the
/// restored round and the caller must `continue` (the for-step advances to
/// the first re-executed round). The restored round's release is re-
/// broadcast WITHOUT re-emitting its kStormRound marker — it was already
/// counted when the killed release first went out, and the digest counts
/// every round exactly once.
bool ft_check(int* r) {
  StormGlobal* g = g_storm;
  if (g->ft_phase == StormGlobal::FtPhase::kNone) return false;
  if (g->ft_phase == StormGlobal::FtPhase::kInterrupted) {
    g->ft_parked_checker = converse::pe_scheduler().running();
    ult::suspend();
  }
  MFC_CHECK(g->ft_phase == StormGlobal::FtPhase::kResumePending);
  g->ft_phase = StormGlobal::FtPhase::kNone;
  *r = g->ft_resume_round;
  STORM_TRACE("checker: recovered, re-releasing round %d", *r);
  converse::broadcast(h_release, pup::to_bytes(std::int32_t{*r}));
  return true;
}

// ---- PE0 checker ------------------------------------------------------------

void checker_main(charm::ArrayBase* array) {
  StormGlobal* g = g_storm;
  const StormOptions& opt = g->opt;
  SplitMix64& traffic = g->traffic;
  std::uint64_t slots_in_flight = 0;  // stable-slot baseline, set at round 0

  for (int r = 0; r < opt.rounds; ++r) {
    STORM_TRACE("checker: round %d wait arrivals (have %d)", r, g->arrivals);
    pe0_wait(StormGlobal::Waiting::kArrivals);
    if (ft_check(&r)) continue;
    STORM_TRACE("checker: round %d arrivals complete, QD1", r);
    converse::wait_quiescence();
    if (ft_check(&r)) continue;
    STORM_TRACE("checker: round %d QD1 done", r);

    // Invariant: isomalloc slot usage is stable across rounds — workers
    // keep their slots for life; migration moves bytes, never identity.
    const std::uint64_t used = total_used_slots(opt.npes);
    if (r == 0) {
      slots_in_flight = used;
    } else if (used != slots_in_flight) {
      STORM_TRACE("checker: round %d slot drift: used %llu baseline %llu", r,
                  (unsigned long long)used,
                  (unsigned long long)slots_in_flight);
      g->counter_failures.fetch_add(1, std::memory_order_relaxed);
    }

    // Background chare-array traffic: ttl-forwarded pings plus (optionally)
    // element self-migration, all drawn from the storm's own seeded stream.
    for (int k = 0; k < opt.array_pings; ++k) {
      const int target =
          static_cast<int>(traffic.next_below(
              static_cast<std::uint64_t>(opt.array_elements)));
      Ping p{opt.ping_ttl, traffic.next()};
      g->array_sent.fetch_add(1, std::memory_order_relaxed);
      array->send(target, kTagPing, pup::to_bytes(p));
    }
    if (opt.element_migration && opt.array_elements > 0) {
      const int victim =
          static_cast<int>(traffic.next_below(
              static_cast<std::uint64_t>(opt.array_elements)));
      const auto dest = static_cast<std::int32_t>(
          traffic.next_below(static_cast<std::uint64_t>(opt.npes)));
      g->array_sent.fetch_add(1, std::memory_order_relaxed);
      array->send(victim, kTagHop, pup::to_bytes(dest));
    }
    STORM_TRACE("checker: round %d QD2", r);
    converse::wait_quiescence();
    if (ft_check(&r)) continue;
    STORM_TRACE("checker: round %d QD2 done", r);

    // Invariant: under quiescence every array message sent was delivered.
    if (g->array_sent.load(std::memory_order_relaxed) !=
        g->array_delivered.load(std::memory_order_relaxed)) {
      STORM_TRACE("checker: round %d ping imbalance: sent %llu delivered %llu",
                  r,
                  (unsigned long long)g->array_sent.load(),
                  (unsigned long long)g->array_delivered.load());
      g->counter_failures.fetch_add(1, std::memory_order_relaxed);
    }

    // Synchronized checkpoint: the machine is quiescent (QD2) and every
    // worker is parked awaiting this round's release — the consistent cut
    // the buddy protocol snapshots. A kill scheduled for this round fires
    // later, at the release below, so the epoch always commits first.
    if (is_ckpt_round(r, opt)) {
      STORM_TRACE("checker: round %d checkpoint", r);
      g->ft_ckpt_round = r;
      ft::checkpoint_now(static_cast<ft::CkptMode>(opt.ft_mode));
    }

    g->arrivals = 0;
    STORM_TRACE("checker: round %d release", r);
    // Replayed rounds (an async abort rolls back past already-marked
    // rounds) must not re-emit their marker: the digest counts every round
    // exactly once.
    if (r > g->ft_max_marked_round) {
      trace::emit_flight(trace::Ev::kStormRound, 0,
                         static_cast<std::uint32_t>(r));
      g->ft_max_marked_round = r;
    }
    converse::broadcast(h_release, pup::to_bytes(std::int32_t{r}));
  }

  STORM_TRACE("checker: wait done (have %d)", g->done_workers);
  pe0_wait(StormGlobal::Waiting::kDone);
  // The kill schedule never reaches the last round, so every recovery has
  // completed before the workers can finish; a failure here is real.
  MFC_CHECK_MSG(g->ft_phase == StormGlobal::FtPhase::kNone,
                "storm: failure interrupted the final done-wait");
  // An async epoch may still be streaming to its buddies; wait for the
  // commit before tearing the machine down (the background handlers need
  // live PE loops to finish).
  if (ft::active()) ft::checkpoint_sync();
  STORM_TRACE("checker: done, final QD");
  // Workers have sent their done messages; quiescence additionally implies
  // each has finished exiting (an exiting worker still in a ready queue
  // keeps the token ring spinning), so their slots are released.
  converse::wait_quiescence();

  StormReport& rep = g->report;
  rep.slots_balanced = total_used_slots(opt.npes) == g->slots_prestorm;
  for (int p = 0; p < kPointCount; ++p) {
    rep.injections[p] = injections(static_cast<Point>(p));
  }
  std::uint64_t wd = kFnvOffset;
  {
    std::lock_guard<std::mutex> lock(g->mu);
    for (const WorkerSlot& w : g->workers) wd = fnv1a_mix(wd, w.digest);
  }
  rep.workload_digest = wd;

  converse::broadcast(h_alldone, {});
}

void storm_entry(int pe) {
  StormGlobal* g = g_storm;
  const StormOptions& opt = g->opt;

  // Every kernel thread that can fault on a write-protected worker stack
  // needs an alternate signal stack before the first arm().
  if (!g->trackers.empty()) ft::DirtyTracker::bind_thread();

  charm::Array<StormElement> array(kArrayId, opt.array_elements);
  converse::barrier();
  if (pe == 0) {
    g->slots_prestorm = total_used_slots(opt.npes);
    set_storm_meta(opt);
  }
  converse::barrier();  // baseline read strictly before any worker spawns

  for (int w = 0; w < opt.workers; ++w) {
    if (w % opt.npes != pe) continue;
    migrate::MigratableThread* t = make_worker(w, pe, opt);
    t->set_delete_on_exit(true);
    {
      std::lock_guard<std::mutex> lock(g->mu);
      g->by_thread_id[t->id()] = w;
      g->workers[static_cast<std::size_t>(w)].thread = t;
    }
    converse::ready_thread(t);
  }

  if (pe == 0) {
    checker_main(&array);
  } else {
    g->mains[static_cast<std::size_t>(pe)] =
        converse::pe_scheduler().running();
    ult::suspend();  // until h_alldone
  }
  converse::barrier();  // keep every PE's array instance alive until quiet
}

}  // namespace

StormReport run_storm(const StormOptions& options) {
  MFC_CHECK_MSG(g_storm == nullptr, "run_storm is not reentrant");
  MFC_CHECK(options.npes >= 1 && options.workers >= 1 &&
            options.rounds >= 1 && options.array_elements >= 1);
  const bool ft_on = options.ft_checkpoint_every > 0;
  MFC_CHECK_MSG(!ft_on || options.npes >= 2,
                "storm: buddy checkpointing needs npes >= 2");
  MFC_CHECK_MSG(options.ft_kill_every == 0 || ft_on,
                "storm: ft_kill_every requires ft_checkpoint_every");
  MFC_CHECK_MSG(options.ft_mode >= 0 && options.ft_mode <= 2,
                "storm: ft_mode must be 0 (full), 1 (incremental), or 2 "
                "(async)");
  register_storm_handlers();

  // Kills draw their victims from keyed chaos, so the kill schedule forces
  // the chaos engine on (pe_kill only ever fires through the keyed ordinal
  // draws in handle_release — it adds no free-running stream).
  StormOptions opt = options;
  if (opt.ft_kill_every > 0) {
    opt.chaos.enabled = true;
    opt.chaos.pe_kill = 1.0;
  }

  auto g = std::make_unique<StormGlobal>();
  g->opt = opt;
#if !defined(MFC_STORM_TSAN)
  if (ft_on && opt.ft_mode != 0) {
    g->trackers.resize(static_cast<std::size_t>(opt.npes));
    for (auto& t : g->trackers) t = std::make_unique<ft::DirtyTracker>();
  }
#endif
  g->workers.resize(static_cast<std::size_t>(opt.workers));
  g->mains.assign(static_cast<std::size_t>(opt.npes), nullptr);
  g->traffic = SplitMix64(mix2(opt.seed, kTrafficSalt));
  g->itinerary.resize(static_cast<std::size_t>(opt.workers));
  for (int w = 0; w < opt.workers; ++w) {
    SplitMix64 rng(mix2(opt.seed ^ kItinSalt,
                        static_cast<std::uint64_t>(w)));
    auto& route = g->itinerary[static_cast<std::size_t>(w)];
    route.resize(static_cast<std::size_t>(opt.rounds));
    if (w < opt.stationary_workers) {
      // Pinned: every hop is a self-migration back to the birth PE.
      std::fill(route.begin(), route.end(), w % opt.npes);
      continue;
    }
    for (int r = 0; r < opt.rounds; ++r) {
      route[static_cast<std::size_t>(r)] = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(opt.npes)));
    }
  }
  // Kill schedule: every ft_kill_every-th checkpoint round hosts one kill,
  // fired at that round's release. Victims come from keyed draws at fire
  // time (after chaos installs, so an MFC_CHAOS_SEED override applies).
  if (opt.ft_kill_every > 0) {
    g->kill_ordinal.assign(static_cast<std::size_t>(opt.rounds), -1);
    int ckpt_ordinal = 0;
    int kill = 0;
    for (int r = 0; r < opt.rounds; ++r) {
      if (!is_ckpt_round(r, opt)) continue;
      if ((ckpt_ordinal + 1) % opt.ft_kill_every == 0) {
        g->kill_ordinal[static_cast<std::size_t>(r)] = kill++;
      }
      ++ckpt_ordinal;
    }
  }
  // Fork the relay before the PE threads exist (single-threaded fork is
  // clean; chaos-driven respawns later fork from a multithreaded parent,
  // which the relay child is written to tolerate).
  if (options.use_proc_transport) g->transport = new ProcTransport();
  g_storm = g.get();

  // Own a trace session unless the caller already holds one. Starting it
  // here (not leaving it to Machine::run's env auto-start) lets the storm
  // export to its own path and fold the summary into the report.
  const bool own_trace =
      (options.trace || trace::env_enabled()) && !trace::active();
  if (own_trace) trace::start(options.npes);

  // Install the ft layer around the machine run (its machine hooks must be
  // in place before boot; PE0's scheduler loop ticks the failure detector).
  if (ft_on) {
    ft::Hooks hooks;
    hooks.capture = ft_capture;
    hooks.wipe = ft_wipe;
    hooks.discard = ft_discard;
    hooks.restore = ft_restore;
    hooks.on_detect = ft_on_detect;
    hooks.on_recovered = ft_on_recovered;
    hooks.ping_interval_us = opt.ft_ping_interval_us;
    hooks.timeout_us = opt.ft_timeout_us;
    ft::install(opt.npes, std::move(hooks));
  }

  converse::Machine::Config mc;
  mc.npes = opt.npes;
  mc.iso_slot_bytes = opt.iso_slot_bytes;
  mc.iso_slots_per_pe = opt.iso_slots_per_pe;
  mc.chaos = opt.chaos;
  mc.transport = opt.transport == 1   ? converse::Machine::Config::Transport::kShm
                 : opt.transport == 2 ? converse::Machine::Config::Transport::kSocket
                                      : converse::Machine::Config::Transport::kInProc;
  converse::Machine::run(mc, storm_entry);

  StormReport rep = g->report;
  rep.rounds = static_cast<std::uint64_t>(options.rounds);
  rep.thread_migrations = g->thread_migrations.load();
  rep.element_migrations = g->element_migrations.load();
  rep.pings_delivered = g->array_delivered.load();
  rep.wire_bytes = g->wire_bytes.load();
  rep.canary_failures = g->canary_failures.load();
  rep.digest_mismatches = g->digest_mismatches.load();
  rep.misroutes = g->misroutes.load();
  rep.counter_failures = g->counter_failures.load();
  const converse::PoolStats ps = converse::pool_stats();
  rep.pool_balanced = ps.allocated == ps.freed;
  for (int t = 0; t < 3; ++t) {
    rep.packs_by_technique[t] = metrics::total(static_cast<metrics::Counter>(
        static_cast<int>(metrics::Counter::kPackStackCopy) + t));
  }
  if (own_trace) {
    const std::string path = options.trace_file != nullptr
                                 ? std::string(options.trace_file)
                             : trace::env_enabled() ? trace::env_file()
                                                    : "storm_trace.json";
    const trace::Summary sum = trace::stop_and_export(path);
    rep.traced = true;
    rep.trace_events = sum.emitted;
    rep.trace_dropped = sum.dropped;
    // Deterministic subset only: message/handler/chaos counts vary with
    // delivery timing, but creates, pack/unpack phases, slot traffic, and
    // round markers replay exactly from (options, chaos seed).
    rep.trace_digest = sum.digest(
        {trace::Ev::kUltCreate, trace::Ev::kMigratePackBegin,
         trace::Ev::kMigratePackEnd, trace::Ev::kMigrateUnpackBegin,
         trace::Ev::kMigrateUnpackEnd, trace::Ev::kIsoSlotAcquire,
         trace::Ev::kIsoSlotRelease, trace::Ev::kStormRound});
    // FT determinism probe: every round and every committed epoch exactly
    // once, whether or not a failure rolled part of the run back.
    rep.ft_trace_digest = sum.digest({trace::Ev::kStormRound,
                                      trace::Ev::kFtCheckpointBegin,
                                      trace::Ev::kFtCheckpointEnd});
    rep.rounds_digest = sum.digest({trace::Ev::kStormRound});
  }
  if (ft_on) {
    rep.ft_epochs = ft::epochs();
    rep.ft_kills = ft::kills();
    rep.ft_detections = ft::detections();
    rep.ft_recoveries = ft::recoveries();
    rep.ft_checkpoint_bytes =
        metrics::total(metrics::Counter::kFtCheckpointBytes);
    rep.ft_ship_bytes = metrics::total(metrics::Counter::kFtShipBytes);
    rep.ft_delta_ranges = metrics::total(metrics::Counter::kFtDeltaRanges);
    rep.ft_async_chunks = metrics::total(metrics::Counter::kFtAsyncChunks);
    rep.ft_dirty_pages = metrics::total(metrics::Counter::kFtDirtyPages);
    ft::uninstall();
  }
  if (g->transport != nullptr) {
    rep.transport_respawns = g->transport->respawns();
    delete g->transport;
  }
  g_storm = nullptr;
  return rep;
}

}  // namespace mfc::chaos
