// Adaptive MPI (paper refs [15][16], §4.1, §4.5): an MPI subset in which
// every MPI rank is a *migratable user-level thread* (isomalloc technique,
// §3.4.2) multiplexed over the converse PEs.
//
// Because ranks are isomalloc threads, a rank blocked deep inside user code
// can be packed up — stack, heap, and pending messages — and shipped to
// another PE without the program changing a line: this is what makes the
// measurement-based load balancing of Figure 12 "transparent".
//
// Subset summary:
//   point-to-point: send/recv/isend/irecv/wait/waitall/test (+ sendrecv),
//                   wildcard source/tag, MPI message-ordering semantics
//   collectives:    barrier, bcast, reduce, allreduce, gather, allgather
//                   (built over point-to-point, as a teaching runtime should)
//   AMPI extras:    yield() (MPI_Yield), migrate() (MPI_Migrate — collective
//                   measurement-based rebalancing), migrate_to() (directed),
//                   wtime(), my_pe()
//
// Usage:
//   ampi::Options opt;  opt.nranks = 32;  opt.npes = 4;
//   opt.lb_strategy = mfc::lb::greedy_lb;
//   ampi::run(opt, [] {
//     const int r = ampi::rank();
//     ...ordinary blocking MPI-style code...
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "converse/machine.h"
#include "lb/strategy.h"

namespace mfc::ampi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

enum class Dtype : std::uint8_t { kByte, kInt, kLong, kUint64, kDouble };
std::size_t dtype_size(Dtype dt);

enum class Op : std::uint8_t { kSum, kMax, kMin };

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;  ///< received payload size
};

/// Non-blocking request handle (shared state completed by the runtime).
struct ReqState {
  bool done = false;
  Status status;
};
using Request = std::shared_ptr<ReqState>;

struct Options {
  int nranks = 4;
  int npes = 2;
  std::size_t stack_bytes = 256 * 1024;
  /// Strategy used by migrate(); defaults to greedy.
  lb::Strategy lb_strategy;
  /// Isomalloc sizing (passed through to the converse machine).
  std::uint32_t iso_slots_per_pe = 4096;
  std::size_t iso_slot_bytes = 64 * 1024;
};

/// Boots an emulated machine and runs `program` once per rank (SPMD), each
/// rank a migratable user-level thread. Returns when every rank finished.
void run(const Options& options, std::function<void()> program);

// ---- Callable from inside a rank (the SPMD program) ----

int rank();
int size();
int my_pe();       ///< physical PE currently hosting this rank
double wtime();

void send(const void* buf, std::size_t count, Dtype dt, int dest, int tag);
void recv(void* buf, std::size_t count, Dtype dt, int source, int tag,
          Status* status = nullptr);
Request isend(const void* buf, std::size_t count, Dtype dt, int dest, int tag);
Request irecv(void* buf, std::size_t count, Dtype dt, int source, int tag);
void wait(const Request& request, Status* status = nullptr);
void wait_all(std::vector<Request>& requests);
bool test(const Request& request, Status* status = nullptr);
void sendrecv(const void* sendbuf, std::size_t sendcount, Dtype dt, int dest,
              int sendtag, void* recvbuf, std::size_t recvcount, int source,
              int recvtag, Status* status = nullptr);

void barrier();
void bcast(void* buf, std::size_t count, Dtype dt, int root);
void reduce(const void* sendbuf, void* recvbuf, std::size_t count, Dtype dt,
            Op op, int root);
void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
               Dtype dt, Op op);
void gather(const void* sendbuf, std::size_t count, Dtype dt, void* recvbuf,
            int root);
void allgather(const void* sendbuf, std::size_t count, Dtype dt,
               void* recvbuf);
void scatter(const void* sendbuf, std::size_t count, Dtype dt, void* recvbuf,
             int root);
void alltoall(const void* sendbuf, std::size_t count, Dtype dt,
              void* recvbuf);

/// MPI_Yield: hand the PE to other ranks without blocking (paper §4.1 —
/// the AMPI curve in Figures 4–8 measures exactly this call).
void yield();

/// Wall-clock seconds this rank's thread has been scheduled in since the
/// last migrate() — the measurement migrate() feeds the balancer.
double my_load();

/// Snapshot of the rank→PE placement as this PE currently sees it
/// (benchmark/analysis hook).
std::vector<int> rank_placement();

/// MPI_Migrate: collective. Gathers per-rank loads since the previous call,
/// runs the configured LB strategy, and transparently moves ranks to their
/// new PEs. Returns the number of ranks that moved (same value on every
/// rank).
int migrate();

/// Directed collective migration: every rank names its own destination PE
/// (use my_pe() to stay). Test/benchmark hook.
void migrate_to(int dest_pe);

/// Collective proactive evacuation (paper §3: "vacate a node that is
/// expected to fail or be shut down"): every rank resident on `failing_pe`
/// moves to another PE (spread round-robin); everyone else stays.
void evacuate(int failing_pe);

// ---- Typed convenience wrappers ----

template <typename T> Dtype dtype_of();
template <> inline Dtype dtype_of<char>() { return Dtype::kByte; }
template <> inline Dtype dtype_of<int>() { return Dtype::kInt; }
template <> inline Dtype dtype_of<long>() { return Dtype::kLong; }
template <> inline Dtype dtype_of<std::uint64_t>() { return Dtype::kUint64; }
template <> inline Dtype dtype_of<double>() { return Dtype::kDouble; }

template <typename T>
void send(const T* buf, std::size_t count, int dest, int tag) {
  send(buf, count, dtype_of<T>(), dest, tag);
}
template <typename T>
void recv(T* buf, std::size_t count, int source, int tag,
          Status* status = nullptr) {
  recv(buf, count, dtype_of<T>(), source, tag, status);
}
template <typename T>
T allreduce_one(T value, Op op) {
  T result{};
  allreduce(&value, &result, 1, dtype_of<T>(), op);
  return result;
}

}  // namespace mfc::ampi
