#include "ampi/ampi.h"

#include <atomic>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "migrate/iso_thread.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::ampi {

namespace {

// ---- Wire formats ----------------------------------------------------------

struct P2P {
  std::int32_t src = -1, dest = -1, tag = 0;
  std::vector<char> bytes;
  void pup(pup::Er& p) { p | src | dest | tag | bytes; }
};

struct Unexpected {
  std::int32_t src = -1, tag = 0;
  std::vector<char> bytes;
  void pup(pup::Er& p) { p | src | tag | bytes; }
};

struct MoveMsg {
  std::int32_t rank = -1;
  void pup(pup::Er& p) { p | rank; }
};

/// Everything a rank is: its thread image (stack + heap slots) plus the
/// runtime bookkeeping that must follow it (buffered unexpected messages and
/// the rank→PE directory for the destination).
struct RankImage {
  std::int32_t rank = -1;
  std::uint64_t coll_seq = 0;  ///< collective tag counter must keep counting
  std::vector<int> mapping;
  std::vector<Unexpected> unexpected;
  migrate::ThreadImage thread;
  void pup(pup::Er& p) { p | rank | coll_seq | mapping | unexpected | thread; }
};

// ---- Runtime state ----------------------------------------------------------

struct PostedRecv {
  void* buf = nullptr;
  std::size_t max_bytes = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  Request req;
};

struct RankState {
  int rank = -1;
  migrate::IsoThread* thread = nullptr;
  std::deque<Unexpected> unexpected;
  std::deque<PostedRecv> posted;
  ult::Thread* blocked = nullptr;  ///< thread parked in block_until
  std::uint64_t coll_seq = 0;      ///< collective-call sequence number
  int pending_dest = -1;           ///< set while a directed move is queued
};

struct PeState {
  std::unordered_map<int, std::unique_ptr<RankState>> ranks;
  std::unordered_map<const ult::Thread*, RankState*> by_thread;
  std::vector<int> rank_to_pe;  ///< this PE's view of the rank directory
  /// Messages for ranks this directory says live here but have not yet
  /// arrived (migration transit window).
  std::unordered_map<int, std::vector<P2P>> held;
  ult::Thread* main_thread = nullptr;
  bool all_done = false;
};

struct GlobalState {
  Options options;
  std::function<void()> program;
  std::atomic<int> ranks_done{0};
};

GlobalState* g_ampi = nullptr;
thread_local PeState* t_state = nullptr;

converse::HandlerId h_p2p, h_move, h_rank_arrive, h_all_done;

// ---- Matching ----------------------------------------------------------------

bool source_matches(int want, int got) {
  return want == kAnySource || want == got;
}
bool tag_matches(int want, int got) { return want == kAnyTag || got == want; }

void complete_recv(PostedRecv& pr, int src, int tag, std::vector<char> bytes) {
  MFC_CHECK_MSG(bytes.size() <= pr.max_bytes,
                "ampi: message longer than receive buffer");
  std::memcpy(pr.buf, bytes.data(), bytes.size());
  pr.req->status = Status{src, tag, bytes.size()};
  pr.req->done = true;
}

void deliver_local(RankState& rs, P2P&& msg) {
  for (auto it = rs.posted.begin(); it != rs.posted.end(); ++it) {
    if (source_matches(it->src, msg.src) && tag_matches(it->tag, msg.tag)) {
      complete_recv(*it, msg.src, msg.tag, std::move(msg.bytes));
      rs.posted.erase(it);
      if (rs.blocked != nullptr) {
        ult::Thread* t = rs.blocked;
        rs.blocked = nullptr;
        converse::ready_thread(t);
      }
      return;
    }
  }
  rs.unexpected.push_back(Unexpected{msg.src, msg.tag, std::move(msg.bytes)});
}

RankState& cur() {
  MFC_CHECK_MSG(t_state != nullptr, "AMPI call outside the runtime");
  const ult::Thread* running = converse::pe_scheduler().running();
  auto it = t_state->by_thread.find(running);
  MFC_CHECK_MSG(it != t_state->by_thread.end(),
                "AMPI call from a non-rank thread");
  return *it->second;
}

/// Parks the calling rank until pred() holds; handlers wake it on every
/// completion, and it re-checks.
template <typename Pred>
void block_until(RankState& rs, Pred pred) {
  while (!pred()) {
    MFC_CHECK_MSG(rs.blocked == nullptr, "rank blocked twice");
    rs.blocked = converse::pe_scheduler().running();
    converse::pe_scheduler().suspend();
  }
}

// ---- Handlers ----------------------------------------------------------------

void handle_p2p(converse::Message&& m) {
  PeState& ps = *t_state;
  auto msg = m.as<P2P>();
  auto it = ps.ranks.find(msg.dest);
  if (it != ps.ranks.end()) {
    deliver_local(*it->second, std::move(msg));
    return;
  }
  const int believed = ps.rank_to_pe[static_cast<std::size_t>(msg.dest)];
  if (believed == converse::my_pe()) {
    // The rank is on its way here; hold the message for its arrival.
    ps.held[msg.dest].push_back(std::move(msg));
  } else {
    converse::send(believed, h_p2p, m.payload.take());
  }
}

void handle_move(converse::Message&& m) {
  // Runs on the source PE after the rank suspended itself inside
  // migrate()/migrate_to(): pack thread + runtime state, ship, dismantle.
  PeState& ps = *t_state;
  const auto req = m.as<MoveMsg>();
  auto it = ps.ranks.find(req.rank);
  MFC_CHECK(it != ps.ranks.end());
  RankState& rs = *it->second;
  MFC_CHECK_MSG(rs.posted.empty(),
                "ampi: outstanding irecv across migrate() is unsupported");
  const int dest = rs.pending_dest;
  MFC_CHECK(dest >= 0);

  RankImage image;
  image.rank = rs.rank;
  image.coll_seq = rs.coll_seq;
  image.mapping = ps.rank_to_pe;
  image.unexpected.assign(rs.unexpected.begin(), rs.unexpected.end());
  image.thread = rs.thread->pack();

  ps.by_thread.erase(rs.thread);
  delete rs.thread;
  ps.ranks.erase(it);

  converse::send_value(dest, h_rank_arrive, image);
}

void handle_rank_arrive(converse::Message&& m) {
  PeState& ps = *t_state;
  auto image = m.as<RankImage>();

  auto* thread = static_cast<migrate::IsoThread*>(
      migrate::MigratableThread::unpack(std::move(image.thread),
                                        converse::my_pe()));
  auto rs = std::make_unique<RankState>();
  rs->rank = image.rank;
  rs->coll_seq = image.coll_seq;
  rs->thread = thread;
  rs->unexpected.assign(image.unexpected.begin(), image.unexpected.end());
  // Adopt the (newer) directory that traveled with the rank — this is how a
  // previously rank-less PE learns the mapping.
  ps.rank_to_pe = image.mapping;

  RankState* raw = rs.get();
  ps.by_thread[thread] = raw;
  ps.ranks[image.rank] = std::move(rs);

  // Deliver anything that arrived ahead of the rank.
  if (auto held = ps.held.find(image.rank); held != ps.held.end()) {
    for (auto& msg : held->second) deliver_local(*raw, std::move(msg));
    ps.held.erase(held);
  }
  converse::ready_thread(thread);
}

void handle_all_done(converse::Message&&) {
  PeState& ps = *t_state;
  ps.all_done = true;
  if (ps.main_thread != nullptr &&
      ps.main_thread->state() == ult::State::kSuspended) {
    converse::ready_thread(ps.main_thread);
  }
}

void register_ampi_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_p2p = converse::register_handler(handle_p2p);
    h_move = converse::register_handler(handle_move);
    h_rank_arrive = converse::register_handler(handle_rank_arrive);
    h_all_done = converse::register_handler(handle_all_done);
  });
}

// ---- Internal collective plumbing ---------------------------------------------

/// Internal tags live in the negative space below kAnyTag so they can never
/// collide with user tags (>= 0). Collectives are called in the same order
/// by every rank (an MPI requirement), so the per-rank sequence numbers
/// agree and successive collectives cannot cross-match.
int internal_tag(std::uint64_t seq, int opcode) {
  return -static_cast<int>(1000 + (seq % 100000000ULL) * 8 +
                           static_cast<std::uint64_t>(opcode));
}

void combine(Op op, Dtype dt, void* acc, const void* in, std::size_t count) {
  auto fold = [&](auto* a, const auto* b) {
    for (std::size_t i = 0; i < count; ++i) {
      switch (op) {
        case Op::kSum: a[i] = a[i] + b[i]; break;
        case Op::kMax: a[i] = a[i] > b[i] ? a[i] : b[i]; break;
        case Op::kMin: a[i] = a[i] < b[i] ? a[i] : b[i]; break;
      }
    }
  };
  switch (dt) {
    case Dtype::kByte:
      fold(static_cast<char*>(acc), static_cast<const char*>(in));
      break;
    case Dtype::kInt:
      fold(static_cast<int*>(acc), static_cast<const int*>(in));
      break;
    case Dtype::kLong:
      fold(static_cast<long*>(acc), static_cast<const long*>(in));
      break;
    case Dtype::kUint64:
      fold(static_cast<std::uint64_t*>(acc),
           static_cast<const std::uint64_t*>(in));
      break;
    case Dtype::kDouble:
      fold(static_cast<double*>(acc), static_cast<const double*>(in));
      break;
  }
}

/// Shared move phase: directory update, pre/post barriers, and the
/// pack-and-ship detour for ranks that change PEs.
int do_migration(const std::vector<int>& new_mapping) {
  RankState& rs = cur();
  PeState& ps = *t_state;
  // All ranks are inside the collective; no user messages will be sent
  // until it completes, so the directory can be swapped safely.
  const std::vector<int> old_mapping = ps.rank_to_pe;
  int moved = 0;
  for (std::size_t r = 0; r < new_mapping.size(); ++r) {
    if (new_mapping[r] != old_mapping[r]) ++moved;
  }
  ps.rank_to_pe = new_mapping;

  const int dest = new_mapping[static_cast<std::size_t>(rs.rank)];
  if (dest != converse::my_pe()) {
    rs.pending_dest = dest;
    MoveMsg req{rs.rank};
    converse::send_value(converse::my_pe(), h_move, req);
    converse::pe_scheduler().suspend();
    // ---- resumed on the destination PE ----
    cur().pending_dest = -1;
  }
  barrier();
  return moved;
}

}  // namespace

std::size_t dtype_size(Dtype dt) {
  switch (dt) {
    case Dtype::kByte: return 1;
    case Dtype::kInt: return sizeof(int);
    case Dtype::kLong: return sizeof(long);
    case Dtype::kUint64: return sizeof(std::uint64_t);
    case Dtype::kDouble: return sizeof(double);
  }
  return 1;
}

void run(const Options& options, std::function<void()> program) {
  MFC_CHECK_MSG(g_ampi == nullptr, "ampi::run is not reentrant");
  MFC_CHECK(options.nranks >= 1);
  register_ampi_handlers();

  GlobalState global;
  global.options = options;
  if (!global.options.lb_strategy) global.options.lb_strategy = lb::greedy_lb;
  global.program = std::move(program);
  g_ampi = &global;

  converse::Machine::Config cfg;
  cfg.npes = options.npes;
  cfg.iso_slots_per_pe = options.iso_slots_per_pe;
  cfg.iso_slot_bytes = options.iso_slot_bytes;

  converse::Machine::run(cfg, [](int pe) {
    PeState state;
    t_state = &state;
    const int nranks = g_ampi->options.nranks;
    const int npes = converse::num_pes();
    state.rank_to_pe.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) state.rank_to_pe[static_cast<std::size_t>(r)] = r % npes;

    for (int r = 0; r < nranks; ++r) {
      if (r % npes != pe) continue;
      auto rs = std::make_unique<RankState>();
      rs->rank = r;
      rs->thread = new migrate::IsoThread(
          [] {
            g_ampi->program();
            if (g_ampi->ranks_done.fetch_add(1) + 1 ==
                g_ampi->options.nranks) {
              converse::broadcast(h_all_done, {});
            }
          },
          pe, g_ampi->options.stack_bytes);
      RankState* raw = rs.get();
      state.by_thread[rs->thread] = raw;
      state.ranks[r] = std::move(rs);
    }

    // Rendezvous before any rank runs: a rank's first send must find every
    // PE's state and rank registry in place.
    converse::barrier();
    for (auto& [_, rs] : state.ranks) converse::ready_thread(rs->thread);

    state.main_thread = converse::pe_scheduler().running();
    while (!state.all_done) converse::pe_scheduler().suspend();

    // Tear down whatever ranks ended their lives on this PE.
    for (auto& [_, rs] : state.ranks) delete rs->thread;
    t_state = nullptr;
  });

  g_ampi = nullptr;
}

int rank() { return cur().rank; }

int size() { return g_ampi->options.nranks; }

int my_pe() {
  cur();  // validate context
  return converse::my_pe();
}

double wtime() { return wall_time(); }

void send(const void* buf, std::size_t count, Dtype dt, int dest, int tag) {
  RankState& rs = cur();
  MFC_CHECK(dest >= 0 && dest < size());
  MFC_CHECK_MSG(tag >= 0, "user tags must be non-negative");
  const std::size_t bytes = count * dtype_size(dt);
  P2P msg;
  msg.src = rs.rank;
  msg.dest = dest;
  msg.tag = tag;
  msg.bytes.assign(static_cast<const char*>(buf),
                   static_cast<const char*>(buf) + bytes);
  const int pe = t_state->rank_to_pe[static_cast<std::size_t>(dest)];
  converse::send_value(pe, h_p2p, msg);
}

namespace {

/// Internal send that allows negative (collective) tags.
void send_internal(RankState& rs, const void* buf, std::size_t bytes,
                   int dest, int tag) {
  P2P msg;
  msg.src = rs.rank;
  msg.dest = dest;
  msg.tag = tag;
  msg.bytes.assign(static_cast<const char*>(buf),
                   static_cast<const char*>(buf) + bytes);
  const int pe = t_state->rank_to_pe[static_cast<std::size_t>(dest)];
  converse::send_value(pe, h_p2p, msg);
}

Request irecv_impl(RankState& rs, void* buf, std::size_t max_bytes, int source,
                   int tag) {
  // Unexpected-queue scan first (MPI arrival-order matching).
  for (auto it = rs.unexpected.begin(); it != rs.unexpected.end(); ++it) {
    if (source_matches(source, it->src) && tag_matches(tag, it->tag)) {
      auto req = std::make_shared<ReqState>();
      MFC_CHECK_MSG(it->bytes.size() <= max_bytes,
                    "ampi: message longer than receive buffer");
      std::memcpy(buf, it->bytes.data(), it->bytes.size());
      req->status = Status{it->src, it->tag, it->bytes.size()};
      req->done = true;
      rs.unexpected.erase(it);
      return req;
    }
  }
  auto req = std::make_shared<ReqState>();
  rs.posted.push_back(PostedRecv{buf, max_bytes, source, tag, req});
  return req;
}

void recv_internal(RankState& rs, void* buf, std::size_t max_bytes, int source,
                   int tag, Status* status) {
  Request req = irecv_impl(rs, buf, max_bytes, source, tag);
  block_until(rs, [&] { return req->done; });
  if (status != nullptr) *status = req->status;
}

}  // namespace

void recv(void* buf, std::size_t count, Dtype dt, int source, int tag,
          Status* status) {
  recv_internal(cur(), buf, count * dtype_size(dt), source, tag, status);
}

Request isend(const void* buf, std::size_t count, Dtype dt, int dest,
              int tag) {
  // Eager buffered send: complete immediately (the payload is copied).
  send(buf, count, dt, dest, tag);
  auto req = std::make_shared<ReqState>();
  req->done = true;
  return req;
}

Request irecv(void* buf, std::size_t count, Dtype dt, int source, int tag) {
  return irecv_impl(cur(), buf, count * dtype_size(dt), source, tag);
}

void wait(const Request& request, Status* status) {
  RankState& rs = cur();
  block_until(rs, [&] { return request->done; });
  if (status != nullptr) *status = request->status;
}

void wait_all(std::vector<Request>& requests) {
  RankState& rs = cur();
  block_until(rs, [&] {
    for (const auto& r : requests) {
      if (!r->done) return false;
    }
    return true;
  });
}

bool test(const Request& request, Status* status) {
  cur();
  if (request->done && status != nullptr) *status = request->status;
  return request->done;
}

void sendrecv(const void* sendbuf, std::size_t sendcount, Dtype dt, int dest,
              int sendtag, void* recvbuf, std::size_t recvcount, int source,
              int recvtag, Status* status) {
  RankState& rs = cur();
  Request rreq =
      irecv_impl(rs, recvbuf, recvcount * dtype_size(dt), source, recvtag);
  send(sendbuf, sendcount, dt, dest, sendtag);
  block_until(rs, [&] { return rreq->done; });
  if (status != nullptr) *status = rreq->status;
}

void barrier() {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 0);
  const int n = size();
  char token = 0;
  if (rs.rank == 0) {
    for (int i = 1; i < n; ++i) {
      recv_internal(rs, &token, 1, kAnySource, tag, nullptr);
    }
    for (int i = 1; i < n; ++i) send_internal(rs, &token, 1, i, tag);
  } else {
    send_internal(rs, &token, 1, 0, tag);
    recv_internal(rs, &token, 1, 0, tag, nullptr);
  }
}

void bcast(void* buf, std::size_t count, Dtype dt, int root) {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 1);
  const std::size_t bytes = count * dtype_size(dt);
  if (rs.rank == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send_internal(rs, buf, bytes, r, tag);
    }
  } else {
    recv_internal(rs, buf, bytes, root, tag, nullptr);
  }
}

void reduce(const void* sendbuf, void* recvbuf, std::size_t count, Dtype dt,
            Op op, int root) {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 2);
  const std::size_t bytes = count * dtype_size(dt);
  if (rs.rank == root) {
    std::memcpy(recvbuf, sendbuf, bytes);
    std::vector<char> scratch(bytes);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_internal(rs, scratch.data(), bytes, r, tag, nullptr);
      combine(op, dt, recvbuf, scratch.data(), count);
    }
  } else {
    send_internal(rs, sendbuf, bytes, root, tag);
  }
}

void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
               Dtype dt, Op op) {
  reduce(sendbuf, recvbuf, count, dt, op, 0);
  bcast(recvbuf, count, dt, 0);
}

void gather(const void* sendbuf, std::size_t count, Dtype dt, void* recvbuf,
            int root) {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 3);
  const std::size_t bytes = count * dtype_size(dt);
  if (rs.rank == root) {
    auto* out = static_cast<char*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(root) * bytes, sendbuf, bytes);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_internal(rs, out + static_cast<std::size_t>(r) * bytes, bytes, r,
                    tag, nullptr);
    }
  } else {
    send_internal(rs, sendbuf, bytes, root, tag);
  }
}

void allgather(const void* sendbuf, std::size_t count, Dtype dt,
               void* recvbuf) {
  gather(sendbuf, count, dt, recvbuf, 0);
  bcast(recvbuf, count * static_cast<std::size_t>(size()), dt, 0);
}

void scatter(const void* sendbuf, std::size_t count, Dtype dt, void* recvbuf,
             int root) {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 4);
  const std::size_t bytes = count * dtype_size(dt);
  if (rs.rank == root) {
    const auto* in = static_cast<const char*>(sendbuf);
    std::memcpy(recvbuf, in + static_cast<std::size_t>(root) * bytes, bytes);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_internal(rs, in + static_cast<std::size_t>(r) * bytes, bytes, r,
                    tag);
    }
  } else {
    recv_internal(rs, recvbuf, bytes, root, tag, nullptr);
  }
}

void alltoall(const void* sendbuf, std::size_t count, Dtype dt,
              void* recvbuf) {
  RankState& rs = cur();
  const int tag = internal_tag(rs.coll_seq++, 5);
  const std::size_t bytes = count * dtype_size(dt);
  const auto* in = static_cast<const char*>(sendbuf);
  auto* out = static_cast<char*>(recvbuf);
  const int n = size();
  // Post all receives, send all blocks, then drain — deadlock-free and
  // exercises the matching engine with n-1 concurrent requests per rank.
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    if (r == rs.rank) continue;
    reqs.push_back(irecv_impl(rs, out + static_cast<std::size_t>(r) * bytes,
                              bytes, r, tag));
  }
  std::memcpy(out + static_cast<std::size_t>(rs.rank) * bytes,
              in + static_cast<std::size_t>(rs.rank) * bytes, bytes);
  for (int r = 0; r < n; ++r) {
    if (r == rs.rank) continue;
    send_internal(rs, in + static_cast<std::size_t>(r) * bytes, bytes, r, tag);
  }
  block_until(rs, [&] {
    for (const auto& q : reqs) {
      if (!q->done) return false;
    }
    return true;
  });
}

void yield() {
  cur();  // validate rank context
  converse::pe_scheduler().yield();
}

double my_load() { return cur().thread->accumulated_load(); }

std::vector<int> rank_placement() {
  cur();
  return t_state->rank_to_pe;
}

int migrate() {
  RankState& rs = cur();
  const int n = size();
  const int npes = converse::num_pes();

  // Gather per-rank loads (wall-while-scheduled, the paper's measurement)
  // accumulated since the last balancing step.
  double my_load = rs.thread->accumulated_load();
  std::vector<double> loads(static_cast<std::size_t>(n), 0.0);
  gather(&my_load, 1, Dtype::kDouble, loads.data(), 0);

  std::vector<int> mapping(static_cast<std::size_t>(n), 0);
  if (rs.rank == 0) {
    mapping = g_ampi->options.lb_strategy(loads, t_state->rank_to_pe, npes);
  }
  bcast(mapping.data(), static_cast<std::size_t>(n), Dtype::kInt, 0);

  barrier();  // everyone has the mapping; no user traffic beyond this point
  cur().thread->reset_load();
  return do_migration(mapping);
}

void migrate_to(int dest_pe) {
  RankState& rs = cur();
  MFC_CHECK(dest_pe >= 0 && dest_pe < converse::num_pes());
  const int n = size();
  // Collect everyone's destination so all PEs learn the same new mapping.
  std::vector<int> mapping(static_cast<std::size_t>(n), 0);
  allgather(&dest_pe, 1, Dtype::kInt, mapping.data());
  (void)rs;
  barrier();
  do_migration(mapping);
}

void evacuate(int failing_pe) {
  RankState& rs = cur();
  const int npes = converse::num_pes();
  MFC_CHECK(failing_pe >= 0 && failing_pe < npes);
  MFC_CHECK_MSG(npes > 1, "cannot evacuate the only PE");
  // Deterministic replacement: displaced rank k (k-th resident of the
  // failing PE, by rank order) moves to the k-th PE of the survivors,
  // round-robin. Every rank computes the same mapping locally.
  const std::vector<int> current = t_state->rank_to_pe;
  std::vector<int> mapping = current;
  int displaced = 0;
  for (std::size_t r = 0; r < mapping.size(); ++r) {
    if (mapping[r] != failing_pe) continue;
    int slot = displaced++ % (npes - 1);
    if (slot >= failing_pe) ++slot;  // skip the failing PE
    mapping[r] = slot;
  }
  (void)rs;
  barrier();  // everyone computed the mapping from the same directory
  do_migration(mapping);
}

}  // namespace mfc::ampi
