// Platform introspection used by the Table 1 / Table 2 reproductions.
#pragma once

#include <cstddef>
#include <string>

namespace mfc {

struct SysInfo {
  std::string arch;          ///< e.g. "x86_64"
  std::string os;            ///< e.g. "Linux 6.1"
  int ncpus = 0;             ///< online CPU count
  std::size_t page_size = 0;
  std::size_t total_ram = 0;          ///< bytes, 0 when unknown
  std::size_t address_bits = 0;       ///< virtual address width
  long max_user_processes = -1;       ///< RLIMIT_NPROC soft limit, -1 unlimited
  std::size_t max_stack = 0;          ///< RLIMIT_STACK soft limit, 0 unlimited
};

SysInfo query_sysinfo();

/// Capability probes used by the portability matrix (paper Table 1).
struct Capabilities {
  bool mmap_fixed = false;      ///< can remap pages at a chosen address
  bool memfd = false;           ///< memfd_create available (memory-alias stacks)
  bool big_reservation = false; ///< can reserve >= 16 GB of PROT_NONE VA (isomalloc)
  bool fork_works = false;      ///< process flows-of-control available
  bool stack_base_fixed = false;///< system stack base identical across runs
                                ///< (required by stack-copy on the *system* stack;
                                ///< our implementation uses its own arena, so this
                                ///< is informational)
};

Capabilities probe_capabilities();

}  // namespace mfc
