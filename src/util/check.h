// Lightweight invariant checking for the mfc runtime.
//
// MFC_CHECK is always on (runtime invariants whose failure means memory
// corruption or a broken migration protocol — we never want to continue).
// MFC_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mfc::detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "mfc: check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace mfc::detail

#define MFC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::mfc::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MFC_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::mfc::detail::check_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MFC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define MFC_DCHECK(expr) MFC_CHECK(expr)
#endif
