// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over byte buffers.
//
// Used by the checkpoint codec to reject truncated or bit-flipped images
// before the PUP layer ever sees them: a framed checkpoint stores the CRC of
// its payload, and restore verifies it. The polynomial is Castagnoli rather
// than IEEE 802.3 because that is the one x86 SSE4.2 (`crc32q`) and ARMv8
// (`crc32cx`) compute in hardware; the frame format is self-consistent, so
// the choice is invisible outside this header.
//
// Three implementations, selected once at runtime:
//   - hardware (SSE4.2 / ARMv8 CRC extensions) when the CPU has it,
//   - slice-by-8 table walk (8 KiB of tables, ~8 bytes per iteration),
//   - a byte-at-a-time reference loop, kept callable for equivalence tests.
//
// `Crc32` is the streaming form: update() over any chunking of a buffer
// yields the same value as one crc32() call over the whole buffer, which is
// what lets the checkpoint gather path fold the CRC per-iovec as it copies.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfc {

namespace detail {

/// Implementation picked by the runtime dispatch probe.
enum class CrcImpl { kReference, kSliceBy8, kHardware };

/// One pass over `n` bytes folding into the raw (pre/post-XOR-free)
/// register `c`. Each variant computes the same function.
std::uint32_t crc32c_update_reference(std::uint32_t c, const void* data,
                                      std::size_t n);
std::uint32_t crc32c_update_slice8(std::uint32_t c, const void* data,
                                   std::size_t n);
std::uint32_t crc32c_update_dispatch(std::uint32_t c, const void* data,
                                     std::size_t n);

/// Which implementation the dispatcher resolved to on this machine.
CrcImpl crc32c_impl();

/// True when the kernel advertises userfaultfd write-protect tracking; the
/// dirty-page tracker probes this but ships the portable mprotect barrier.
/// (Lives here with the other capability probes.)
bool userfaultfd_wp_available();

}  // namespace detail

/// One-shot CRC-32C of `n` bytes. `seed` chains: crc32(b, n2, crc32(a, n1))
/// equals crc32 of the concatenation.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  return detail::crc32c_update_dispatch(seed ^ 0xFFFFFFFFu, data, n) ^
         0xFFFFFFFFu;
}

/// Streaming CRC-32C. update() in any chunking; value() at any point.
class Crc32 {
 public:
  Crc32() = default;
  explicit Crc32(std::uint32_t seed) : c_(seed ^ 0xFFFFFFFFu) {}

  void update(const void* data, std::size_t n) {
    c_ = detail::crc32c_update_dispatch(c_, data, n);
  }
  std::uint32_t value() const { return c_ ^ 0xFFFFFFFFu; }
  void reset(std::uint32_t seed = 0) { c_ = seed ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t c_ = 0xFFFFFFFFu;
};

}  // namespace mfc
