// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte buffers.
//
// Used by the checkpoint codec to reject truncated or bit-flipped images
// before the PUP layer ever sees them: a framed checkpoint stores the CRC of
// its payload, and restore verifies it. Table-driven, one 1 KiB table built
// on first use (thread-safe via static local init).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfc {

namespace detail {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace detail

inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const detail::Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mfc
