#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>

#include "util/check.h"

namespace mfc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::clear() { *this = RunningStats(); }

double Sample::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Sample::percentile(double p) const {
  MFC_CHECK(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Sample::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Sample::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double imbalance_ratio(const std::vector<double>& per_pe_load) {
  if (per_pe_load.empty()) return 1.0;
  const double total = std::accumulate(per_pe_load.begin(), per_pe_load.end(), 0.0);
  const double mean = total / static_cast<double>(per_pe_load.size());
  if (mean <= 0.0) return 1.0;
  const double mx = *std::max_element(per_pe_load.begin(), per_pe_load.end());
  return mx / mean;
}

std::string format_double(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v < 0 ? "-inf" : "inf";
  if (v < 0) return "-" + format_double(-v, decimals);
  decimals = std::clamp(decimals, 0, 9);
  std::uint64_t scale = 1;
  for (int i = 0; i < decimals; ++i) scale *= 10;
  // Round-half-up in the scaled domain; guard the uint64 conversion.
  const double scaled = v * static_cast<double>(scale) + 0.5;
  char buf[512];
  if (scaled >= 9.2e18) {
    // Too large for integer scaling — at this magnitude decimals are noise,
    // and "%.0f" never prints a decimal separator, so it stays locale-proof.
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  const auto units = static_cast<std::uint64_t>(scaled);
  if (decimals == 0) {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(units));
  } else {
    std::snprintf(buf, sizeof buf, "%llu.%0*llu",
                  static_cast<unsigned long long>(units / scale), decimals,
                  static_cast<unsigned long long>(units % scale));
  }
  return buf;
}

std::string format_ns(double ns) {
  if (std::isnan(ns)) return "nan";
  const double mag = std::fabs(ns);
  if (mag < 1e3) return format_double(ns, 1) + " ns";
  if (mag < 1e6) return format_double(ns / 1e3, 2) + " us";
  if (mag < 1e9) return format_double(ns / 1e6, 2) + " ms";
  return format_double(ns / 1e9, 2) + " s";
}

}  // namespace mfc
