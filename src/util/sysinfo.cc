#include "util/sysinfo.h"

#define _GNU_SOURCE 1
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/utsname.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

namespace mfc {

SysInfo query_sysinfo() {
  SysInfo info;
  utsname un{};
  if (uname(&un) == 0) {
    info.arch = un.machine;
    info.os = std::string(un.sysname) + " " + un.release;
  }
  info.ncpus = static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN));
  info.page_size = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const long phys_pages = sysconf(_SC_PHYS_PAGES);
  if (phys_pages > 0) {
    info.total_ram = static_cast<std::size_t>(phys_pages) * info.page_size;
  }
  info.address_bits = sizeof(void*) == 8 ? 48 : 32;

  rlimit rl{};
  if (getrlimit(RLIMIT_NPROC, &rl) == 0) {
    info.max_user_processes =
        rl.rlim_cur == RLIM_INFINITY ? -1 : static_cast<long>(rl.rlim_cur);
  }
  if (getrlimit(RLIMIT_STACK, &rl) == 0) {
    info.max_stack =
        rl.rlim_cur == RLIM_INFINITY ? 0 : static_cast<std::size_t>(rl.rlim_cur);
  }
  return info;
}

namespace {

bool probe_mmap_fixed() {
  const std::size_t len = 1 << 16;
  void* region = mmap(nullptr, 2 * len, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (region == MAP_FAILED) return false;
  void* fixed = mmap(region, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  const bool ok = fixed != MAP_FAILED;
  munmap(region, 2 * len);
  return ok;
}

bool probe_memfd() {
#if defined(__linux__)
  int fd = memfd_create("mfc-probe", 0);
  if (fd < 0) return false;
  close(fd);
  return true;
#else
  return false;
#endif
}

bool probe_big_reservation() {
  const std::size_t len = 16ULL << 30;
  void* region = mmap(nullptr, len, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (region == MAP_FAILED) return false;
  munmap(region, len);
  return true;
}

bool probe_fork() {
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) _exit(0);
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace

Capabilities probe_capabilities() {
  Capabilities caps;
  caps.mmap_fixed = probe_mmap_fixed();
  caps.memfd = probe_memfd();
  caps.big_reservation = probe_big_reservation();
  caps.fork_works = probe_fork();
  // Linux randomizes the process stack base (ASLR) by default, which is
  // exactly the paper's argument against using the *system* stack for
  // stack-copy threads. Our stack-copy arena allocates its own mmap'ed
  // execution address agreed at startup, so we report the capability of the
  // arena approach rather than parsing ASLR state.
  caps.stack_base_fixed = caps.mmap_fixed;
  return caps;
}

}  // namespace mfc
