// Minimal leveled logger. The runtime is silent by default (level = warn);
// set MFC_LOG=debug|info|warn|error or call set_log_level() to change.
#pragma once

#include <cstdarg>

namespace mfc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define MFC_LOG_DEBUG(...) ::mfc::logf(::mfc::LogLevel::kDebug, __VA_ARGS__)
#define MFC_LOG_INFO(...) ::mfc::logf(::mfc::LogLevel::kInfo, __VA_ARGS__)
#define MFC_LOG_WARN(...) ::mfc::logf(::mfc::LogLevel::kWarn, __VA_ARGS__)
#define MFC_LOG_ERROR(...) ::mfc::logf(::mfc::LogLevel::kError, __VA_ARGS__)

}  // namespace mfc
