// Streaming and batch statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mfc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void clear();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch statistics over a sample vector (sorts a copy for percentiles).
class Sample {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double median() const { return percentile(50.0); }
  double percentile(double p) const;  ///< p in [0,100], linear interpolation
  double min() const;
  double max() const;
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Imbalance metric used by the load-balancing experiments:
/// max/mean of per-processor load (1.0 == perfectly balanced).
double imbalance_ratio(const std::vector<double>& per_pe_load);

/// Formats `v` with a fixed number of decimals and '.' as the decimal
/// separator regardless of the process locale (printf's %f obeys
/// LC_NUMERIC, which would render 1.5 as "1,5" under e.g. de_DE and break
/// every machine-parsed report). Implemented with integer math; handles
/// negatives, NaN ("nan"), infinities ("inf"/"-inf"), and values too large
/// for 64-bit integer scaling (falls back to "%.0f", which never emits a
/// separator). `decimals` is clamped to [0, 9].
std::string format_double(double v, int decimals);

/// Formats a nanosecond quantity with an adaptive unit (ns/us/ms/s),
/// locale-independent. Negative values keep their sign and pick the unit
/// by magnitude.
std::string format_ns(double ns);

}  // namespace mfc
