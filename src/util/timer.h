// Wall-clock and cycle timers used throughout the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace mfc {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_time();

/// Per-thread CPU time in seconds (CLOCK_THREAD_CPUTIME_ID).
double thread_cpu_time();

/// Whole-process CPU time in seconds (CLOCK_PROCESS_CPUTIME_ID).
double process_cpu_time();

/// Raw TSC read. Only meaningful for deltas on the same core; use
/// wall_time() for anything cross-thread.
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Paired rdtsc/steady_clock sample for tick-rate calibration. Take one
/// anchor when a recording subsystem starts and another when it dumps; the
/// span between them is the calibration baseline (a long baseline beats a
/// short warm-up measurement — same approach as the trace session).
struct TscAnchor {
  std::uint64_t tsc = 0;
  std::int64_t mono_ns = 0;

  static TscAnchor now() {
    TscAnchor a;
    a.tsc = rdtsc();
    a.mono_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
    return a;
  }

  /// Nanoseconds per TSC tick measured from this anchor to `later`;
  /// degenerate spans (clock went nowhere) fall back to 1.0.
  double ns_per_tick(const TscAnchor& later) const {
    const std::uint64_t ticks = later.tsc > tsc ? later.tsc - tsc : 1;
    const double ns = static_cast<double>(later.mono_ns - mono_ns);
    const double r = ns / static_cast<double>(ticks);
    return r > 0.0 ? r : 1.0;
  }
};

/// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(wall_time()) {}
  void reset() { start_ = wall_time(); }
  double elapsed() const { return wall_time() - start_; }

 private:
  double start_;
};

}  // namespace mfc
