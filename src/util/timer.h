// Wall-clock and cycle timers used throughout the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace mfc {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
double wall_time();

/// Per-thread CPU time in seconds (CLOCK_THREAD_CPUTIME_ID).
double thread_cpu_time();

/// Whole-process CPU time in seconds (CLOCK_PROCESS_CPUTIME_ID).
double process_cpu_time();

/// Raw TSC read. Only meaningful for deltas on the same core; use
/// wall_time() for anything cross-thread.
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(wall_time()) {}
  void reset() { start_ = wall_time(); }
  double elapsed() const { return wall_time() - start_; }

 private:
  double start_;
};

}  // namespace mfc
