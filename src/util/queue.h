// Inter-PE message queues for the converse machine layer.
//
// MpscQueue: multiple-producer single-consumer queue. Producers are remote
// PEs (kernel threads) delivering messages; the consumer is the owning PE's
// scheduler loop. The implementation is lock-free on the hot path: producers
// CAS onto a LIFO "inbox" list, and the consumer swaps the whole inbox out
// in one exchange and reverses it into a FIFO batch it then serves privately
// (the "swap-the-deque" batched MPSC). A mutex + condition variable pair
// survives only as an idle/parking backstop: the consumer parks after a
// bounded spin, and producers skip the notify syscall entirely unless a
// consumer is actually parked.
//
// MutexMpscQueue is the original mutex+CV implementation, kept as the
// measured baseline for the messaging benchmarks (bench_micro's converse
// suite runs the machine in both modes and reports the speedup).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace mfc {

namespace detail {

inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Spin iterations before a consumer parks. On a single-CPU host spinning
/// only steals cycles from the producer, so park immediately.
inline int spin_iters_before_park() {
  static const int iters = std::thread::hardware_concurrency() > 1 ? 128 : 0;
  return iters;
}

/// sched_yield rounds between spinning and parking. On an oversubscribed
/// host a yield hands the core straight to a producer, which usually makes
/// data appear without paying the futex sleep/wake round trip.
constexpr int kYieldRoundsBeforePark = 4;

/// Consumer parking shared by the MPSC queues. The handshake is
/// Dekker-style: the consumer publishes `parked_` (seq_cst) and then
/// re-checks the queue; a producer publishes its item (seq_cst RMW) and then
/// reads `parked_`. One of the two must observe the other, so a push can
/// never slip between the consumer's last empty-check and its sleep.
/// `signal_` is sticky so a wake() that arrives while no consumer is parked
/// still satisfies the next park() immediately (shutdown safety).
class Parker {
 public:
  /// Producer side, called after publishing an item. No-op (one atomic
  /// load, no syscall) unless a consumer is parked — and the exchange
  /// claims the notify, so a burst of pushes against a parked consumer
  /// costs one futex wake total instead of one per push.
  void unpark_if_parked() {
    if (!parked_.load(std::memory_order_seq_cst)) return;
    if (!parked_.exchange(false, std::memory_order_seq_cst)) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      signal_ = true;
    }
    cv_.notify_one();
  }

  /// Forced wake (shutdown / "work appeared locally"). Sticky; skips the
  /// notify when nobody is parked.
  void wake() {
    bool was_parked;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      signal_ = true;
      was_parked = parked_.load(std::memory_order_relaxed);
    }
    if (was_parked) cv_.notify_one();
  }

  /// Consumer side: blocks until `nonempty()` holds, a producer unparks us,
  /// or a sticky wake is pending. The caller re-checks its queue afterward.
  template <typename NonEmpty>
  void park(NonEmpty&& nonempty) {
    std::unique_lock<std::mutex> lock(mutex_);
    parked_.store(true, std::memory_order_seq_cst);
    if (!nonempty()) {
      cv_.wait(lock, [&] { return signal_ || nonempty(); });
    }
    parked_.store(false, std::memory_order_relaxed);
    signal_ = false;
  }

  /// park() with a deadline: returns after `micros` even if nothing
  /// arrived. The failure detector's heartbeat loop on PE 0 uses this so an
  /// idle machine still ticks pings/timeouts; the same Dekker handshake
  /// keeps pushes from slipping past the sleep.
  template <typename NonEmpty>
  void park_for(std::uint64_t micros, NonEmpty&& nonempty) {
    std::unique_lock<std::mutex> lock(mutex_);
    parked_.store(true, std::memory_order_seq_cst);
    if (!nonempty()) {
      cv_.wait_for(lock, std::chrono::microseconds(micros),
                   [&] { return signal_ || nonempty(); });
    }
    parked_.store(false, std::memory_order_relaxed);
    signal_ = false;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> parked_{false};
  bool signal_ = false;
};

}  // namespace detail

template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* n = inbox_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  /// Lock-free; callable from any thread.
  void push(T item) {
    Node* n = new Node{nullptr, std::move(item)};
    Node* head = inbox_.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!inbox_.compare_exchange_weak(head, n, std::memory_order_seq_cst,
                                           std::memory_order_relaxed));
    size_.fetch_add(1, std::memory_order_relaxed);
    parker_.unpark_if_parked();
  }

  /// Non-blocking pop; empty optional when the queue is empty.
  /// Consumer thread only.
  std::optional<T> try_pop() {
    if (batch_pos_ == batch_.size() && !refill()) return std::nullopt;
    T item = std::move(batch_[batch_pos_++]);
    if (batch_pos_ == batch_.size()) {
      batch_.clear();
      batch_pos_ = 0;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    return item;
  }

  /// Blocking pop: bounded spin, then parks until an item arrives or wake()
  /// is called. May return an empty optional on a wake() or a spurious
  /// unpark with no data; callers loop. Consumer thread only.
  std::optional<T> pop_wait() {
    if (auto v = try_pop()) return v;
    for (int i = detail::spin_iters_before_park(); i > 0; --i) {
      detail::cpu_relax();
      if (auto v = try_pop()) return v;
    }
    for (int i = 0; i < detail::kYieldRoundsBeforePark; ++i) {
      std::this_thread::yield();
      if (auto v = try_pop()) return v;
    }
    parker_.park([this] {
      return inbox_.load(std::memory_order_seq_cst) != nullptr;
    });
    return try_pop();
  }

  /// Pops and invokes `fn` on every available item (one inbox grab serves
  /// the whole batch). Returns the number drained. Consumer thread only.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t n = 0;
    while (auto v = try_pop()) {
      fn(std::move(*v));
      ++n;
    }
    return n;
  }

  /// Wakes a blocked pop_wait() without delivering data (used for shutdown
  /// and for "work became available locally" notifications).
  void wake() { parker_.wake(); }

  /// Approximate when racing concurrent producers; exact once they settle.
  bool empty() const { return size_.load(std::memory_order_acquire) == 0; }
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  struct Node {
    Node* next;
    T value;
  };

  /// Swaps the inbox out and reverses it into FIFO order in batch_.
  bool refill() {
    Node* chain = inbox_.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) return false;
    Node* prev = nullptr;  // reverse: inbox is newest-first
    while (chain != nullptr) {
      Node* next = chain->next;
      chain->next = prev;
      prev = chain;
      chain = next;
    }
    while (prev != nullptr) {
      batch_.push_back(std::move(prev->value));
      Node* next = prev->next;
      delete prev;
      prev = next;
    }
    return true;
  }

  alignas(64) std::atomic<Node*> inbox_{nullptr};
  alignas(64) std::atomic<std::size_t> size_{0};
  // Consumer-private drained batch, served in FIFO order.
  alignas(64) std::vector<T> batch_;
  std::size_t batch_pos_ = 0;
  detail::Parker parker_;
};

/// Intrusive MPSC channel for pointer items that carry their own link
/// (T must expose a `T* next` member). Zero allocation per push — the links
/// live in the items themselves, which the converse layer recycles through
/// per-PE message pools. Same swap-list batching and parking as MpscQueue.
template <typename T>
class IntrusiveMpscChannel {
 public:
  IntrusiveMpscChannel() = default;
  IntrusiveMpscChannel(const IntrusiveMpscChannel&) = delete;
  IntrusiveMpscChannel& operator=(const IntrusiveMpscChannel&) = delete;

  /// Lock-free; callable from any thread. The channel borrows item->next
  /// until the item is popped.
  void push(T* item) {
    T* head = inbox_.load(std::memory_order_relaxed);
    do {
      item->next = head;
    } while (!inbox_.compare_exchange_weak(head, item,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed));
    parker_.unpark_if_parked();
  }

  /// Consumer thread only; nullptr when empty.
  T* try_pop() {
    if (batch_ == nullptr) {
      T* chain = inbox_.exchange(nullptr, std::memory_order_acquire);
      while (chain != nullptr) {  // reverse newest-first into FIFO order
        T* next = chain->next;
        chain->next = batch_;
        batch_ = chain;
        chain = next;
      }
      if (batch_ == nullptr) return nullptr;
    }
    T* item = batch_;
    batch_ = item->next;
    item->next = nullptr;
    return item;
  }

  /// Blocking pop with bounded spin + parking; nullptr after a wake() or
  /// spurious unpark with no data. Consumer thread only.
  T* pop_wait() {
    if (T* item = try_pop()) return item;
    for (int i = detail::spin_iters_before_park(); i > 0; --i) {
      detail::cpu_relax();
      if (T* item = try_pop()) return item;
    }
    for (int i = 0; i < detail::kYieldRoundsBeforePark; ++i) {
      std::this_thread::yield();
      if (T* item = try_pop()) return item;
    }
    parker_.park([this] {
      return inbox_.load(std::memory_order_seq_cst) != nullptr;
    });
    return try_pop();
  }

  /// pop_wait() with a parking deadline: returns nullptr once `micros`
  /// elapse with no data (or on a wake/spurious unpark). Lets an otherwise
  /// idle consumer loop run periodic work (heartbeats) without busy-waiting.
  T* pop_wait_for(std::uint64_t micros) {
    if (T* item = try_pop()) return item;
    for (int i = detail::spin_iters_before_park(); i > 0; --i) {
      detail::cpu_relax();
      if (T* item = try_pop()) return item;
    }
    parker_.park_for(micros, [this] {
      return inbox_.load(std::memory_order_seq_cst) != nullptr;
    });
    return try_pop();
  }

  void wake() { parker_.wake(); }

  /// True when the consumer has nothing pending (private batch and inbox
  /// both empty). Consumer thread only; used to gate the self-send
  /// fast path so local delivery cannot overtake queued messages.
  bool consumer_empty() const {
    return batch_ == nullptr &&
           inbox_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  alignas(64) std::atomic<T*> inbox_{nullptr};
  // Consumer-private drained chain in FIFO order.
  alignas(64) T* batch_ = nullptr;
  detail::Parker parker_;
};

/// The pre-rewrite mutex+CV MPSC queue, kept as the measured baseline for
/// the converse messaging benchmarks (Machine::Config::mutex_baseline).
template <typename T>
class MutexMpscQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> pop_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || woken_; });
    woken_ = false;
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void wake() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      woken_ = true;
    }
    cv_.notify_one();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool woken_ = false;
};

}  // namespace mfc
