// Inter-PE message queues for the converse machine layer.
//
// MpscQueue: multiple-producer single-consumer blocking queue. Producers are
// remote PEs (kernel threads) delivering messages; the consumer is the owning
// PE's scheduler loop. A mutex + condition variable implementation is used:
// at the message rates the runtime sees (scheduling quanta, not per-word
// traffic) lock cost is negligible, and correctness is easy to audit.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mfc {

template <typename T>
class MpscQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop; empty optional when the queue is empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking pop; waits until an item arrives or wake() is called.
  /// Returns empty optional only on a spurious wake() with no data.
  std::optional<T> pop_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || woken_; });
    woken_ = false;
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes a blocked pop_wait() without delivering data (used for shutdown
  /// and for "work became available locally" notifications).
  void wake() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      woken_ = true;
    }
    cv_.notify_one();
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool woken_ = false;
};

}  // namespace mfc
