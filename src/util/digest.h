// FNV-1a 64-bit digests — the byte-level fingerprint used by the PUP
// round-trip checkers and the chaos/storm invariant layer. Not
// cryptographic; chosen for speed, zero dependencies, and stable output
// across platforms (the replay story compares digests across runs).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfc {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Digest of a byte range, chainable via `h` (pass a previous digest to
/// fold multiple ranges into one fingerprint).
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds one 64-bit word into a digest (itineraries, counters, ids).
inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  return fnv1a(&v, sizeof v, h);
}

}  // namespace mfc
