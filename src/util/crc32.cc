// CRC-32C implementations + runtime dispatch (see crc32.h).
#include "util/crc32.h"

#include <atomic>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MFC_CRC_X86 1
#include <cpuid.h>
#include <nmmintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define MFC_CRC_ARM 1
#include <arm_acle.h>
#endif

#if defined(__linux__)
#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#if __has_include(<linux/userfaultfd.h>)
#include <linux/userfaultfd.h>
#define MFC_HAVE_UFFD_H 1
#endif
#endif

namespace mfc {
namespace detail {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

/// 8 slice tables: t[0] is the classic byte table, t[k][b] advances a byte
/// that sits k positions deeper in the register.
struct SliceTables {
  std::uint32_t t[8][256];
  SliceTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const SliceTables& tables() {
  static const SliceTables s;
  return s;
}

#if defined(MFC_CRC_X86)

__attribute__((target("sse4.2"))) std::uint32_t crc32c_update_sse42(
    std::uint32_t c, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    c64 = _mm_crc32_u64(c64, word);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return c;
}

bool cpu_has_sse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ecx & bit_SSE4_2) != 0;
}

#endif  // MFC_CRC_X86

#if defined(MFC_CRC_ARM)

std::uint32_t crc32c_update_armv8(std::uint32_t c, const void* data,
                                  std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    c = __crc32cd(c, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return c;
}

#endif  // MFC_CRC_ARM

using UpdateFn = std::uint32_t (*)(std::uint32_t, const void*, std::size_t);

struct Dispatch {
  UpdateFn fn;
  CrcImpl impl;
  Dispatch() {
    fn = &crc32c_update_slice8;
    impl = CrcImpl::kSliceBy8;
#if defined(MFC_CRC_X86)
    if (cpu_has_sse42()) {
      fn = &crc32c_update_sse42;
      impl = CrcImpl::kHardware;
    }
#elif defined(MFC_CRC_ARM)
    fn = &crc32c_update_armv8;
    impl = CrcImpl::kHardware;
#endif
  }
};

const Dispatch& dispatch() {
  static const Dispatch d;
  return d;
}

}  // namespace

std::uint32_t crc32c_update_reference(std::uint32_t c, const void* data,
                                      std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t* t0 = tables().t[0];
  for (std::size_t i = 0; i < n; ++i) {
    c = t0[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

std::uint32_t crc32c_update_slice8(std::uint32_t c, const void* data,
                                   std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const SliceTables& s = tables();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = s.t[7][lo & 0xFFu] ^ s.t[6][(lo >> 8) & 0xFFu] ^
        s.t[5][(lo >> 16) & 0xFFu] ^ s.t[4][lo >> 24] ^ s.t[3][hi & 0xFFu] ^
        s.t[2][(hi >> 8) & 0xFFu] ^ s.t[1][(hi >> 16) & 0xFFu] ^
        s.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  return crc32c_update_reference(c, p, n);
}

std::uint32_t crc32c_update_dispatch(std::uint32_t c, const void* data,
                                     std::size_t n) {
  return dispatch().fn(c, data, n);
}

CrcImpl crc32c_impl() { return dispatch().impl; }

bool userfaultfd_wp_available() {
#if defined(__linux__) && defined(MFC_HAVE_UFFD_H) && defined(UFFD_FEATURE_PAGEFAULT_FLAG_WP)
  static const bool available = [] {
    long fd = syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK);
    if (fd < 0) return false;
    struct uffdio_api api = {};
    api.api = UFFD_API;
    api.features = UFFD_FEATURE_PAGEFAULT_FLAG_WP;
    const bool ok = ioctl(static_cast<int>(fd), UFFDIO_API, &api) == 0 &&
                    (api.features & UFFD_FEATURE_PAGEFAULT_FLAG_WP) != 0;
    close(static_cast<int>(fd));
    return ok;
  }();
  return available;
#else
  return false;
#endif
}

}  // namespace detail
}  // namespace mfc
