#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mfc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_io_mutex;

void init_from_env() {
  const char* env = std::getenv("MFC_LOG");
  if (!env) return;
  if (!std::strcmp(env, "debug")) g_level = static_cast<int>(LogLevel::kDebug);
  else if (!std::strcmp(env, "info")) g_level = static_cast<int>(LogLevel::kInfo);
  else if (!std::strcmp(env, "warn")) g_level = static_cast<int>(LogLevel::kWarn);
  else if (!std::strcmp(env, "error")) g_level = static_cast<int>(LogLevel::kError);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[mfc %s] ", level_name(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace mfc
