// Deterministic, fast PRNG (SplitMix64) for workload generation.
// All workloads in the benchmark harness seed explicitly so runs are
// reproducible.
#pragma once

#include <cstdint>

namespace mfc {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Raw generator state, for checkpoint/restart: a stream restored with
  /// set_state(state()) continues with exactly the draws the original would
  /// have produced (the fault-tolerance rollback relies on this).
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace mfc
