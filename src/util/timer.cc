#include "util/timer.h"

#include <ctime>

namespace mfc {

namespace {
double clock_seconds(clockid_t id) {
  timespec ts;
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

double wall_time() { return clock_seconds(CLOCK_MONOTONIC); }
double thread_cpu_time() { return clock_seconds(CLOCK_THREAD_CPUTIME_ID); }
double process_cpu_time() { return clock_seconds(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace mfc
