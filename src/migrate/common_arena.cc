#include "migrate/common_arena.h"

#include <sys/mman.h>

#include "util/check.h"

namespace mfc::migrate {

CommonStackArena& CommonStackArena::instance() {
  static CommonStackArena arena(kDefaultCapacity);
  return arena;
}

CommonStackArena::CommonStackArena(std::size_t capacity) : capacity_(capacity) {
  base_ = mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
               MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  MFC_CHECK_MSG(base_ != MAP_FAILED, "common stack arena reservation failed");
}

CommonStackArena::~CommonStackArena() { munmap(base_, capacity_); }

void CommonStackArena::map_fresh(std::size_t bytes) {
  MFC_CHECK(bytes <= capacity_);
  void* addr = top() - bytes;
  void* r = mmap(addr, bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  MFC_CHECK_MSG(r == addr, "arena map_fresh failed");
  fd_extent_ = bytes >= fd_extent_ ? 0 : fd_extent_;
}

void CommonStackArena::map_fd(int fd, std::size_t bytes) {
  MFC_CHECK(bytes <= capacity_);
  void* addr = top() - bytes;
  void* r = mmap(addr, bytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_FIXED, fd, 0);
  MFC_CHECK_MSG(r == addr, "arena map_fd failed");
  if (bytes > fd_extent_) fd_extent_ = bytes;
}

}  // namespace mfc::migrate
