// Isomalloc threads (paper §3.4.2, Figure 2).
//
// Stack and heap both live in isomalloc slots, so every byte of thread
// state sits at a machine-wide-unique virtual address. Context switching is
// just the minimal register swap (no staging — the fastest technique in
// Figure 9), and migration is copy-without-fixup. While the thread runs,
// the routed allocator directs plain malloc/free to the thread's slot heap,
// so unmodified code migrates too.
#pragma once

#include <cstddef>

#include "iso/heap.h"
#include "migrate/migratable.h"

namespace mfc::migrate {

class IsoThread final : public MigratableThread {
 public:
  /// `birth_pe` picks the isomalloc strip for the stack and heap slots.
  IsoThread(Fn fn, int birth_pe,
            std::size_t stack_bytes = kDefaultStackBytes);
  ~IsoThread() override;

  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;

  Technique technique() const override { return Technique::kIsomalloc; }
  ThreadImage pack() override;
  ImageManifest pack_manifest(bool count = false) override;
  void complete_pack() override;

  /// Destination-side rebuild (called via MigratableThread::unpack).
  static IsoThread* from_image(ThreadImage image, int dest_pe);

  void on_switch_in() override;
  void on_switch_out() override;

  iso::ThreadHeap& heap() { return *heap_; }
  const iso::SlotId& stack_slot() const { return stack_slot_; }

 private:
  IsoThread(int dest_pe, const ThreadImage& image);  // unpack path

  int birth_pe_;
  iso::SlotId stack_slot_;
  iso::ThreadHeap* heap_ = nullptr;
  bool migrated_away_ = false;
};

}  // namespace mfc::migrate
