// Checkpoint/restart for migratable threads (paper §3):
//
//   "Migration techniques can also be used to implement checkpoint/restart
//    for fault tolerance — under this model, checkpointing is simply
//    migration to disk or the local memory of a remote processor."
//
// A Checkpoint is a container of ThreadImages plus an application-defined
// PUP-able header; it serializes to a byte buffer or a file. Restoring
// unpacks every thread at its original (machine-wide-unique) addresses —
// so a restart is a migration whose "destination processor" is a future
// run of the program.
//
// Requirement inherited from isomalloc: the restoring process must hold the
// same iso::Region reservation (same base address and geometry). Region
// geometry is recorded in the checkpoint and verified on restore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "migrate/migratable.h"
#include "pup/pup.h"

namespace mfc::migrate {

/// Typed decode failures for framed checkpoint images. Every corruption
/// mode a storage or transfer layer can hand us maps to one of these —
/// decode() never crashes on hostile bytes (the corruption fuzz test walks
/// every truncation length and single-byte flip).
enum class CodecError {
  kOk = 0,
  kTruncated,   ///< buffer shorter than header or declared payload
  kBadMagic,    ///< not a checkpoint frame at all
  kBadVersion,  ///< framed by an incompatible codec revision
  kBadCrc,      ///< payload bytes fail the stored CRC-32
};
const char* to_string(CodecError e);

class Checkpoint {
 public:
  /// Captures a suspended thread into the checkpoint. Like migration, this
  /// consumes the thread's local memory: delete the husk afterwards and
  /// restore() to get it back.
  void add(MigratableThread* thread);

  /// Adds an already-packed image (non-destructive checkpointing: the ft
  /// layer packs, copies the image into the checkpoint, then unpacks the
  /// original image back in place — a self-migration that leaves the
  /// thread running).
  void add_image(ThreadImage image);

  const std::vector<ThreadImage>& images() const { return images_; }

  /// Application metadata stored alongside the threads (iteration number,
  /// RNG state, ...).
  void set_user_data(std::vector<char> bytes) { user_data_ = std::move(bytes); }
  const std::vector<char>& user_data() const { return user_data_; }

  std::size_t thread_count() const { return images_.size(); }

  /// Rebuilds every thread (in add() order). The caller owns the results
  /// and typically ready()s them on the appropriate schedulers.
  std::vector<MigratableThread*> restore_all(int dest_pe = 0);

  /// Byte-level round trip (also usable to ship a whole checkpoint to a
  /// remote processor's memory).
  void pup(pup::Er& p);

  /// Framed serialization: a versioned header plus a CRC-32 of the PUP
  /// payload, so a restore from storage or a buddy PE can reject truncated
  /// or bit-flipped images with a typed error instead of feeding garbage to
  /// the PUP layer. Frame layout (little-endian):
  ///   [magic u32][version u32][payload_len u64][crc32 u32][payload bytes]
  std::vector<char> encode() const;
  static CodecError decode(const char* data, std::size_t size,
                           Checkpoint* out);
  static CodecError decode(const std::vector<char>& bytes, Checkpoint* out);

  /// File-level round trip ("migration to disk"), framed + CRC-verified.
  void write_file(const std::string& path) const;
  static Checkpoint read_file(const std::string& path);

 private:
  friend class GatherCheckpoint;

  struct RegionStamp {
    std::uint64_t base = 0;
    std::uint64_t slot_bytes = 0;
    std::uint32_t slots_per_pe = 0;
    std::int32_t npes = 0;
    void pup(pup::Er& p) { p | base | slot_bytes | slots_per_pe | npes; }
  };

  static RegionStamp current_stamp();
  void note_size(const ThreadImage& image);

  RegionStamp stamp_;
  bool stamped_ = false;
  std::vector<ThreadImage> images_;
  std::vector<char> user_data_;

  // PUP sizing cache: packed size per image, measured once when the image
  // is added and reused by encode() so the size and pack phases of one
  // checkpoint share a single traversal. Invalidated if any ULT dispatch
  // happened in between (images are stored by value, so the guard is
  // belt-and-braces — but a dispatch is the only window in which anyone
  // could hand us a mutated image).
  mutable std::vector<std::size_t> image_sizes_;
  mutable std::uint64_t sized_at_dispatch_ = 0;
};

/// Zero-copy checkpoint encoder: the ft capture path's replacement for
/// Checkpoint::add_image(copy) + encode(). Sources are either borrowed
/// image manifests (gathered straight from the threads' live memory) or
/// pre-serialized image bytes (the dirty-run cache hands these in), and
/// encode() writes the frame in a single pass that computes the CRC-32C as
/// it copies. The produced frame is byte-for-byte what a Checkpoint holding
/// equivalent images would encode, so decode/restore are unchanged.
class GatherCheckpoint {
 public:
  /// Borrows `m` — it must stay valid (thread unmoved, not resumed) until
  /// encode() is done.
  void add_manifest(const ImageManifest& m);

  /// Adds one image's pre-serialized PUP bytes (exactly what pup::to_bytes
  /// of the ThreadImage would produce). Borrows the buffer.
  void add_image_bytes(const char* data, std::size_t len);

  void set_user_data(std::vector<char> bytes) { user_data_ = std::move(bytes); }

  std::size_t thread_count() const { return sources_.size(); }

  /// Framed single-pass encode (same frame layout as Checkpoint::encode).
  std::vector<char> encode() const;

 private:
  struct Source {
    const ImageManifest* manifest;  // either this ...
    const char* data;               // ... or these
    std::size_t len;
  };

  void stamp_once();

  Checkpoint::RegionStamp stamp_;
  bool stamped_ = false;
  std::vector<Source> sources_;
  std::vector<char> user_data_;
};

}  // namespace mfc::migrate
