// Stack-copying threads (paper §3.4.1).
//
// Every thread executes at the single system-wide arena address; the
// scheduler copies the thread's live stack bytes into the arena before
// running it and back out to a private buffer when it stops. Migration is
// trivial (the buffer ships as-is), but every context switch pays a memcpy
// proportional to live stack bytes — the Figure 9 curve that becomes
// "unusably slow" past ~20 KB.
#pragma once

#include <cstddef>
#include <vector>

#include "migrate/common_arena.h"
#include "migrate/migratable.h"

namespace mfc::migrate {

class StackCopyThread final : public MigratableThread {
 public:
  explicit StackCopyThread(Fn fn,
                           std::size_t stack_bytes = kDefaultStackBytes);
  ~StackCopyThread() override;

  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;

  Technique technique() const override { return Technique::kStackCopy; }
  ThreadImage pack() override;
  ImageManifest pack_manifest(bool count = false) override;
  void complete_pack() override {}  // nothing local to drop

  static StackCopyThread* from_image(ThreadImage image);

  void on_switch_in() override;
  void on_switch_out() override;

  /// Live stack bytes currently saved (diagnostics / Figure 9).
  std::size_t saved_bytes() const { return saved_.size(); }

 private:
  explicit StackCopyThread(const ThreadImage& image);  // unpack path

  std::size_t stack_bytes_;
  bool started_ = false;
  std::vector<char> saved_;  ///< live stack contents, anchored at arena top
};

}  // namespace mfc::migrate
