// Memory-aliasing stacks (paper §3.4.3, Figure 3).
//
// Each thread's stack pages live in their own physical memory (a memfd
// file); switching a thread in maps those pages over the common stack
// address with one mmap call — "simulating the copy using the virtual
// memory hardware". Total virtual-address cost is a single stack, which is
// what makes the technique viable on 32-bit machines like Blue Gene/L; the
// price is an mmap call per switch-in plus the soft faults of re-touching
// the mapped pages (the ~4 µs plateau in Figure 9).
#pragma once

#include <cstddef>

#include "migrate/common_arena.h"
#include "migrate/migratable.h"

namespace mfc::migrate {

class MemAliasThread final : public MigratableThread {
 public:
  explicit MemAliasThread(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~MemAliasThread() override;

  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;

  Technique technique() const override { return Technique::kMemAlias; }
  ThreadImage pack() override;
  ImageManifest pack_manifest(bool count = false) override;
  void complete_pack() override;
  static MemAliasThread* from_image(ThreadImage image);

  void on_switch_in() override;
  void on_switch_out() override;

 private:
  explicit MemAliasThread(const ThreadImage& image);  // unpack path
  void create_backing();

  std::size_t stack_bytes_;
  bool started_ = false;
  int backing_fd_ = -1;  ///< memfd holding the thread's stack pages
};

}  // namespace mfc::migrate
