#include "migrate/memalias_thread.h"

#define _GNU_SOURCE 1
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "trace/flight.h"
#include "trace/hist.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::migrate {

MemAliasThread::MemAliasThread(Fn fn, std::size_t stack_bytes)
    : MigratableThread(std::move(fn)), stack_bytes_(stack_bytes) {
  MFC_CHECK(stack_bytes_ <= CommonStackArena::instance().capacity());
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  stack_bytes_ = (stack_bytes_ + page - 1) & ~(page - 1);
  create_backing();
}

MemAliasThread::MemAliasThread(const ThreadImage& image)
    : MigratableThread(Fn{}),
      stack_bytes_(image.stack_capacity),
      started_(true) {
  create_backing();
  // Write the shipped stack contents into the backing pages.
  const std::size_t n = image.stack_bytes.size();
  MFC_CHECK(n == stack_bytes_);
  ssize_t w = pwrite(backing_fd_, image.stack_bytes.data(), n, 0);
  MFC_CHECK(w == static_cast<ssize_t>(n));
}

void MemAliasThread::create_backing() {
  backing_fd_ = memfd_create("mfc-memalias-stack", 0);
  MFC_CHECK_MSG(backing_fd_ >= 0, "memfd_create failed (memory-alias stacks "
                                  "need Linux >= 3.17; see Table 1)");
  MFC_CHECK(ftruncate(backing_fd_, static_cast<off_t>(stack_bytes_)) == 0);
}

MemAliasThread::~MemAliasThread() {
  // Clear stale occupancy: a later thread allocated at this address must
  // not be mistaken for us and skip mapping its own pages.
  CommonStackArena::instance().clear_occupant_if(this);
  if (backing_fd_ >= 0) close(backing_fd_);
}

void MemAliasThread::on_switch_in() {
  CommonStackArena& arena = CommonStackArena::instance();
  arena.lock();
  // The switch itself: one mmap aliases this thread's pages over the common
  // stack address. No data is copied — the virtual memory hardware does the
  // work (Figure 3). When this thread was also the previous occupant, its
  // pages are still mapped and even the mmap is skipped.
  if (!started_ || arena.occupant() != this) {
    arena.map_fd(backing_fd_, stack_bytes_);
    arena.set_occupant(this);
  }
  if (!started_) {
    init_context(arena.top() - stack_bytes_, stack_bytes_);
    started_ = true;
  }
}

void MemAliasThread::on_switch_out() {
  // Stack writes went straight to the backing pages (MAP_SHARED); nothing to
  // copy. The alias stays mapped: the next occupant replaces it (memory-
  // alias peers map their own fd; stack-copy peers restore anonymous pages
  // first — see StackCopyThread::on_switch_in).
  CommonStackArena::instance().unlock();
}

ImageManifest MemAliasThread::pack_manifest(bool count) {
  MFC_CHECK_MSG(state() == ult::State::kSuspended,
                "pack_manifest() requires a suspended thread");
  const std::uint64_t t0 = count && hist::on() ? rdtsc() : 0;
  CommonStackArena& arena = CommonStackArena::instance();
  ImageManifest m;
  m.technique = Technique::kMemAlias;
  m.thread_id = id();
  m.accumulated_load = accumulated_load();
  m.saved_sp = reinterpret_cast<std::uint64_t>(saved_sp());
  m.stack_capacity = stack_bytes_;
  m.arena_base = reinterpret_cast<std::uint64_t>(arena.base());
  // No stable in-address-space source: the pages live in the backing file
  // and are only mapped while running. Stage them into the manifest (this
  // technique keeps the copy path; it shares only the codec). The fd stays
  // open so the thread remains resumable — checkpoint captures need that.
  m.staged.resize(stack_bytes_);
  ssize_t r = pread(backing_fd_, m.staged.data(), stack_bytes_, 0);
  MFC_CHECK(r == static_cast<ssize_t>(stack_bytes_));
  m.stack_run = {m.staged.data(), m.staged.size()};
  if (count) {
    trace::emit_flight(trace::Ev::kMigratePackBegin, m.thread_id, 0, 0, -1,
                       trace_tag(Technique::kMemAlias));
    metrics::bump(pack_counter(Technique::kMemAlias));
    if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
    trace::emit_flight(trace::Ev::kMigratePackEnd, m.thread_id, 0,
                       static_cast<std::uint32_t>(m.stack_run.len), -1,
                       trace_tag(Technique::kMemAlias));
  }
  return m;
}

void MemAliasThread::complete_pack() {
  // The shipped bytes are now the only copy that matters: drop the local
  // backing file and occupancy, leaving a husk exactly like pack() does.
  CommonStackArena::instance().clear_occupant_if(this);
  close(backing_fd_);
  backing_fd_ = -1;
}

ThreadImage MemAliasThread::pack() {
  trace::emit_flight(trace::Ev::kMigratePackBegin, id(), 0, 0, -1,
                     trace_tag(Technique::kMemAlias));
  metrics::bump(pack_counter(Technique::kMemAlias));
  const std::uint64_t t0 = hist::on() ? rdtsc() : 0;
  ThreadImage image = image_from_manifest(pack_manifest(false));
  complete_pack();
  if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
  trace::emit_flight(trace::Ev::kMigratePackEnd, image.thread_id, 0,
                     static_cast<std::uint32_t>(image.stack_bytes.size()), -1,
                     trace_tag(Technique::kMemAlias));
  return image;
}

MemAliasThread* MemAliasThread::from_image(ThreadImage image) {
  CommonStackArena& arena = CommonStackArena::instance();
  MFC_CHECK_MSG(image.arena_base ==
                    reinterpret_cast<std::uint64_t>(arena.base()),
                "memory-alias migration requires the same common stack "
                "address on both processors");
  auto* t = new MemAliasThread(image);
  t->set_saved_sp(reinterpret_cast<void*>(image.saved_sp));
  t->restore_identity(image.thread_id, image.accumulated_load);
  return t;
}

}  // namespace mfc::migrate
