// The "one address system-wide" execution arena shared by the stack-copy
// and memory-alias techniques (paper §3.4.1, §3.4.3).
//
// A single region of virtual address space is reserved at an address every
// processor agrees on (in-process PEs share it trivially; the fork transport
// inherits it). Exactly one thread may execute on the arena at a time — the
// paper's stated limitation for both techniques — enforced with a mutex held
// from switch-in to switch-out.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

namespace mfc::migrate {

class CommonStackArena {
 public:
  /// Process-wide arena, created on first use. `capacity` is the maximum
  /// stack size any stack-copy/memory-alias thread may request (fixed once
  /// created; default 16 MB).
  static CommonStackArena& instance();
  static constexpr std::size_t kDefaultCapacity = 16 * 1024 * 1024;

  void* base() const { return base_; }
  std::size_t capacity() const { return capacity_; }
  /// Stacks grow downward from the arena top.
  char* top() const { return static_cast<char*>(base_) + capacity_; }

  /// Serializes arena occupancy ("only one thread active per address
  /// space"). Locked by on_switch_in, released by on_switch_out.
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

  /// Occupancy bookkeeping (guarded by the lock): which thread's pages are
  /// currently mapped, and how many bytes of the arena top are backed by a
  /// memfd instead of anonymous memory. Lets switch-in paths skip remaps
  /// that are not needed and lets stack-copy threads restore anonymous
  /// pages before writing over a memory-alias occupant's file pages.
  const void* occupant() const {
    return occupant_.load(std::memory_order_acquire);
  }
  void set_occupant(const void* who) {
    occupant_.store(who, std::memory_order_release);
  }
  /// Clears the occupancy record iff it still names `who`. For paths that do
  /// not hold the arena lock — destructors and pack() run on whichever PE
  /// owns the thread object, possibly concurrent with another PE's
  /// switch-in — so the clear must be a lock-free compare-and-swap.
  void clear_occupant_if(const void* who) {
    const void* expected = who;
    occupant_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
  }
  std::size_t fd_extent() const { return fd_extent_; }

  /// Replaces the arena pages with fresh anonymous memory (stack-copy
  /// switch-in paths map-over instead of memset; also used by tests).
  void map_fresh(std::size_t bytes);

  /// Maps `bytes` from `fd` (offset 0) at the arena top — the memory-alias
  /// switch-in (Figure 3).
  void map_fd(int fd, std::size_t bytes);

 private:
  explicit CommonStackArena(std::size_t capacity);
  ~CommonStackArena();

  void* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::mutex mutex_;
  std::atomic<const void*> occupant_{nullptr};
  std::size_t fd_extent_ = 0;
};

}  // namespace mfc::migrate
