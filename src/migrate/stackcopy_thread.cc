#include "migrate/stackcopy_thread.h"

#include <algorithm>
#include <cstring>

#include "trace/flight.h"
#include "trace/hist.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::migrate {

StackCopyThread::StackCopyThread(Fn fn, std::size_t stack_bytes)
    : MigratableThread(std::move(fn)), stack_bytes_(stack_bytes) {
  MFC_CHECK(stack_bytes_ <= CommonStackArena::instance().capacity());
}

StackCopyThread::~StackCopyThread() {
  CommonStackArena::instance().clear_occupant_if(this);
}

StackCopyThread::StackCopyThread(const ThreadImage& image)
    : MigratableThread(Fn{}),
      stack_bytes_(image.stack_capacity),
      started_(true),
      saved_(image.stack_bytes) {}

void StackCopyThread::on_switch_in() {
  CommonStackArena& arena = CommonStackArena::instance();
  arena.lock();  // "only one thread active in each address space"
  // If a memory-alias thread's file pages are mapped over the arena,
  // restore anonymous memory before writing (otherwise the memcpy would
  // scribble on that thread's backing file).
  if (arena.fd_extent() > 0) {
    arena.map_fresh(std::max(arena.fd_extent(), stack_bytes_));
  }
  arena.set_occupant(this);
  if (!started_) {
    // First run: build the bootstrap frame directly at the arena address.
    init_context(arena.top() - stack_bytes_, stack_bytes_);
    started_ = true;
    return;
  }
  // Copy the saved live bytes back to the system-wide stack address.
  std::memcpy(arena.top() - saved_.size(), saved_.data(), saved_.size());
}

void StackCopyThread::on_switch_out() {
  CommonStackArena& arena = CommonStackArena::instance();
  if (state() != ult::State::kDone) {
    // Everything from the saved stack pointer to the arena top is live.
    auto* sp = static_cast<char*>(saved_sp());
    MFC_CHECK(sp > arena.top() - arena.capacity() && sp <= arena.top());
    saved_.assign(sp, arena.top());
  } else {
    saved_.clear();
  }
  arena.unlock();
}

ImageManifest StackCopyThread::pack_manifest(bool count) {
  MFC_CHECK_MSG(state() == ult::State::kSuspended,
                "pack_manifest() requires a suspended thread");
  const std::uint64_t t0 = count && hist::on() ? rdtsc() : 0;
  CommonStackArena& arena = CommonStackArena::instance();
  ImageManifest m;
  m.technique = Technique::kStackCopy;
  m.thread_id = id();
  m.accumulated_load = accumulated_load();
  m.saved_sp = reinterpret_cast<std::uint64_t>(saved_sp());
  // The saved-stack buffer already holds the only copy of the live bytes
  // while suspended; the manifest borrows it (valid until the thread runs).
  m.stack_run = {saved_.data(), saved_.size()};
  m.stack_capacity = stack_bytes_;
  m.arena_base = reinterpret_cast<std::uint64_t>(arena.base());
  if (count) {
    trace::emit_flight(trace::Ev::kMigratePackBegin, m.thread_id, 0, 0, -1,
                       trace_tag(Technique::kStackCopy));
    metrics::bump(pack_counter(Technique::kStackCopy));
    if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
    trace::emit_flight(trace::Ev::kMigratePackEnd, m.thread_id, 0,
                       static_cast<std::uint32_t>(m.stack_run.len), -1,
                       trace_tag(Technique::kStackCopy));
  }
  return m;
}

ThreadImage StackCopyThread::pack() {
  trace::emit_flight(trace::Ev::kMigratePackBegin, id(), 0, 0, -1,
                     trace_tag(Technique::kStackCopy));
  metrics::bump(pack_counter(Technique::kStackCopy));
  const std::uint64_t t0 = hist::on() ? rdtsc() : 0;
  ThreadImage image = image_from_manifest(pack_manifest(false));
  complete_pack();
  if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
  trace::emit_flight(trace::Ev::kMigratePackEnd, image.thread_id, 0,
                     static_cast<std::uint32_t>(image.stack_bytes.size()), -1,
                     trace_tag(Technique::kStackCopy));
  return image;
}

StackCopyThread* StackCopyThread::from_image(ThreadImage image) {
  CommonStackArena& arena = CommonStackArena::instance();
  MFC_CHECK_MSG(image.arena_base ==
                    reinterpret_cast<std::uint64_t>(arena.base()),
                "stack-copy migration requires the same system-wide stack "
                "address on both processors (paper §3.4.1)");
  auto* t = new StackCopyThread(image);
  t->set_saved_sp(reinterpret_cast<void*>(image.saved_sp));
  t->restore_identity(image.thread_id, image.accumulated_load);
  return t;
}

}  // namespace mfc::migrate
