#include "migrate/iso_thread.h"

#include <cstring>

#include "trace/flight.h"
#include "trace/hist.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::migrate {

IsoThread::IsoThread(Fn fn, int birth_pe, std::size_t stack_bytes)
    : MigratableThread(std::move(fn)), birth_pe_(birth_pe) {
  iso::Region& region = iso::Region::instance();
  const std::size_t slot_bytes = region.config().slot_bytes;
  const auto count =
      static_cast<std::uint32_t>((stack_bytes + slot_bytes - 1) / slot_bytes);
  stack_slot_ = region.acquire(birth_pe_, count);
  heap_ = new iso::ThreadHeap(birth_pe_);
  init_context(region.slot_base(stack_slot_), region.slot_span(stack_slot_));
}

IsoThread::IsoThread(int dest_pe, const ThreadImage& image)
    : MigratableThread(Fn{}), birth_pe_(dest_pe), stack_slot_(image.stack_slot) {}

IsoThread::~IsoThread() {
  if (migrated_away_) return;  // slots now live on the destination
  delete heap_;
  iso::Region::instance().release(stack_slot_);
}

void IsoThread::on_switch_in() { iso::set_current_heap(heap_); }
void IsoThread::on_switch_out() { iso::set_current_heap(nullptr); }

ImageManifest IsoThread::pack_manifest(bool count) {
  MFC_CHECK_MSG(state() == ult::State::kSuspended,
                "pack_manifest() requires a suspended thread");
  const std::uint64_t t0 = count && hist::on() ? rdtsc() : 0;
  iso::Region& region = iso::Region::instance();

  ImageManifest m;
  m.technique = Technique::kIsomalloc;
  m.thread_id = id();
  m.accumulated_load = accumulated_load();
  m.saved_sp = reinterpret_cast<std::uint64_t>(saved_sp());
  m.stack_slot = stack_slot_;
  m.heap_slots = heap_->slots();

  // Stack run: only the live portion (from the saved stack pointer up to the
  // slot top) carries state; the System V ABI guarantees nothing below the
  // saved sp is live across the swap_context call. Zero copies here — the
  // manifest references the slot pages directly.
  {
    auto* base = static_cast<char*>(region.slot_base(stack_slot_));
    char* top = base + region.slot_span(stack_slot_);
    auto* sp = reinterpret_cast<char*>(saved_sp());
    MFC_CHECK(sp > base && sp <= top);
    m.runs.push_back({sp, static_cast<std::size_t>(top - sp)});
  }
  // Heap runs: whole spans (allocator metadata is distributed through them).
  for (const iso::SlotId& id : m.heap_slots) {
    auto* base = static_cast<char*>(region.slot_base(id));
    m.runs.push_back({base, region.slot_span(id)});
  }

  if (count) {
    trace::emit_flight(trace::Ev::kMigratePackBegin, m.thread_id, 0, 0, -1,
                       trace_tag(Technique::kIsomalloc));
    metrics::bump(pack_counter(Technique::kIsomalloc));
    if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
    trace::emit_flight(trace::Ev::kMigratePackEnd, m.thread_id, 0,
                       static_cast<std::uint32_t>(m.payload_bytes()), -1,
                       trace_tag(Technique::kIsomalloc));
  }
  return m;
}

void IsoThread::complete_pack() {
  // Drop the local pages: from now on the shipped bytes are the only copy.
  iso::Region& region = iso::Region::instance();
  const std::vector<iso::SlotId> heap_slots = heap_->slots();
  region.evacuate(stack_slot_);
  for (const iso::SlotId& id : heap_slots) region.evacuate(id);
  heap_->abandon();
  delete heap_;
  heap_ = nullptr;
  migrated_away_ = true;
}

ThreadImage IsoThread::pack() {
  trace::emit_flight(trace::Ev::kMigratePackBegin, id(), 0, 0, -1,
                     trace_tag(Technique::kIsomalloc));
  metrics::bump(pack_counter(Technique::kIsomalloc));
  const std::uint64_t t0 = hist::on() ? rdtsc() : 0;
  ThreadImage image = image_from_manifest(pack_manifest(false));
  complete_pack();
  if (t0 != 0) hist::record(hist::Hist::kMigratePack, rdtsc() - t0);
  std::size_t wire = 0;
  for (const std::vector<char>& run : image.slot_data) wire += run.size();
  trace::emit_flight(trace::Ev::kMigratePackEnd, image.thread_id, 0,
                     static_cast<std::uint32_t>(wire), -1,
                     trace_tag(Technique::kIsomalloc));
  return image;
}

IsoThread* IsoThread::from_image(ThreadImage image, int dest_pe) {
  iso::Region& region = iso::Region::instance();
  auto* t = new IsoThread(dest_pe, image);

  // Re-establish the stack at its original (machine-wide-unique) address.
  region.install(image.stack_slot);
  auto* base = static_cast<char*>(region.slot_base(image.stack_slot));
  char* top = base + region.slot_span(image.stack_slot);
  const std::vector<char>& stack_run = image.slot_data.at(0);
  auto* sp = reinterpret_cast<char*>(image.saved_sp);
  MFC_CHECK_MSG(top - sp == static_cast<std::ptrdiff_t>(stack_run.size()),
                "corrupt thread image: stack run size mismatch");
  std::memcpy(sp, stack_run.data(), stack_run.size());

  // Re-establish the heap runs, then reattach the allocator around them.
  for (std::size_t i = 0; i < image.heap_slots.size(); ++i) {
    const iso::SlotId& id = image.heap_slots[i];
    region.install(id);
    const std::vector<char>& run = image.slot_data.at(1 + i);
    MFC_CHECK(run.size() == region.slot_span(id));
    std::memcpy(region.slot_base(id), run.data(), run.size());
  }
  t->heap_ = iso::ThreadHeap::reattach(dest_pe, image.heap_slots);

  t->set_saved_sp(sp);
  t->restore_identity(image.thread_id, image.accumulated_load);
  return t;
}

}  // namespace mfc::migrate
