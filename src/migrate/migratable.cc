#include "migrate/migratable.h"

#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/stackcopy_thread.h"
#include "trace/flight.h"
#include "trace/hist.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::migrate {

const char* to_string(Technique t) {
  switch (t) {
    case Technique::kStackCopy: return "stack-copy";
    case Technique::kIsomalloc: return "isomalloc";
    case Technique::kMemAlias: return "memory-alias";
  }
  return "?";
}

MigratableThread* MigratableThread::unpack(ThreadImage image, int dest_pe) {
  const Technique technique = image.technique;
  const std::uint64_t thread_id = image.thread_id;
  std::size_t wire = image.stack_bytes.size();
  for (const std::vector<char>& run : image.slot_data) wire += run.size();
  // The unpack span closes the migration flow arrow the pack span opened
  // (the exporter keys it on the thread id, which survives the trip).
  trace::emit_flight(trace::Ev::kMigrateUnpackBegin, thread_id, 0, 0, -1,
                     trace_tag(technique));
  metrics::bump(unpack_counter(technique));
  const std::uint64_t t0 = hist::on() ? rdtsc() : 0;

  MigratableThread* t = nullptr;
  switch (technique) {
    case Technique::kIsomalloc:
      t = IsoThread::from_image(std::move(image), dest_pe);
      break;
    case Technique::kStackCopy:
      t = StackCopyThread::from_image(std::move(image));
      break;
    case Technique::kMemAlias:
      t = MemAliasThread::from_image(std::move(image));
      break;
  }
  MFC_CHECK_MSG(t != nullptr, "corrupt thread image: unknown technique");
  if (t0 != 0) hist::record(hist::Hist::kMigrateUnpack, rdtsc() - t0);
  trace::emit_flight(trace::Ev::kMigrateUnpackEnd, thread_id, 0,
                     static_cast<std::uint32_t>(wire), -1,
                     trace_tag(technique));
  return t;
}

}  // namespace mfc::migrate
