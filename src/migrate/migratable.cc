#include "migrate/migratable.h"

#include "migrate/iso_thread.h"
#include "migrate/memalias_thread.h"
#include "migrate/stackcopy_thread.h"
#include "util/check.h"

namespace mfc::migrate {

const char* to_string(Technique t) {
  switch (t) {
    case Technique::kStackCopy: return "stack-copy";
    case Technique::kIsomalloc: return "isomalloc";
    case Technique::kMemAlias: return "memory-alias";
  }
  return "?";
}

MigratableThread* MigratableThread::unpack(ThreadImage image, int dest_pe) {
  switch (image.technique) {
    case Technique::kIsomalloc:
      return IsoThread::from_image(std::move(image), dest_pe);
    case Technique::kStackCopy:
      return StackCopyThread::from_image(std::move(image));
    case Technique::kMemAlias:
      return MemAliasThread::from_image(std::move(image));
  }
  MFC_CHECK_MSG(false, "corrupt thread image: unknown technique");
  return nullptr;
}

}  // namespace mfc::migrate
