// Migratable threads — the paper's §3.4.
//
// A MigratableThread can be packed into a ThreadImage while suspended,
// shipped to another PE (or another address space), and unpacked there to
// continue from the exact point it suspended. All three techniques share
// the same approach: "guarantee that the stack will have exactly the same
// address on the new processor", so no pointer in the stack or heap is ever
// fixed up.
#pragma once

#include <cstdint>
#include <vector>

#include "iso/region.h"
#include "migrate/manifest.h"
#include "pup/pup.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "ult/thread.h"

namespace mfc::migrate {

enum class Technique : std::uint8_t {
  kStackCopy = 0,  ///< §3.4.1 — one system-wide stack address, copied in/out
  kIsomalloc = 1,  ///< §3.4.2 — machine-wide-unique stack & heap slots
  kMemAlias = 2,   ///< §3.4.3 — per-thread pages mmap'ed over a common address
};

const char* to_string(Technique t);

/// Technique tag carried in trace records (0 is reserved for "none").
inline std::uint8_t trace_tag(Technique t) {
  return static_cast<std::uint8_t>(t) + 1;
}
/// Per-technique pack/unpack counters (metrics enum order matches
/// Technique order, so the offset arithmetic is exact).
inline metrics::Counter pack_counter(Technique t) {
  return static_cast<metrics::Counter>(
      static_cast<int>(metrics::Counter::kPackStackCopy) +
      static_cast<int>(t));
}
inline metrics::Counter unpack_counter(Technique t) {
  return static_cast<metrics::Counter>(
      static_cast<int>(metrics::Counter::kUnpackStackCopy) +
      static_cast<int>(t));
}

/// Serialized form of a suspended migratable thread. PUP-able, so it can be
/// embedded in a converse message or written to disk (checkpointing is
/// "migration to disk", paper §3).
struct ThreadImage {
  Technique technique = Technique::kIsomalloc;
  std::uint64_t thread_id = 0;
  double accumulated_load = 0.0;
  std::uint64_t saved_sp = 0;  ///< virtual address; valid on the destination
                               ///< because the stack address is preserved

  // Isomalloc payload: slot ids plus each slot run's raw bytes.
  iso::SlotId stack_slot;
  std::vector<iso::SlotId> heap_slots;
  std::vector<std::vector<char>> slot_data;  ///< stack run first, heap runs after

  // Stack-copy / memory-alias payload.
  std::vector<char> stack_bytes;  ///< live stack contents (top-anchored)
  std::uint64_t stack_capacity = 0;
  std::uint64_t arena_base = 0;  ///< common execution address; must match on
                                 ///< the destination address space

  void pup(pup::Er& p) {
    p | technique | thread_id | accumulated_load | saved_sp | stack_slot |
        heap_slots | slot_data | stack_bytes | stack_capacity | arena_base;
  }
};

/// Materializes a manifest into an owning ThreadImage (copies every run).
/// pack() is implemented as pack_manifest() + this + complete_pack(), so
/// the two paths cannot drift apart.
ThreadImage image_from_manifest(const ImageManifest& m);

class MigratableThread : public ult::Thread {
 public:
  virtual Technique technique() const = 0;

  /// Packs the thread for shipment. Requires state() == kSuspended (a thread
  /// cannot pack itself while running). Consumes the thread's local memory:
  /// after pack() the object is a husk that must be deleted, not resumed.
  virtual ThreadImage pack() = 0;

  /// Zero-copy pack: returns an iovec manifest referencing the thread's
  /// live memory (isomalloc slots directly; stack-copy/memory-alias stage
  /// into manifest-owned storage). Non-destructive — the thread stays
  /// suspended and resumable, which is what checkpoint captures want. The
  /// manifest is valid only until the thread next runs, migrates, or dies.
  /// With `count` true the migration pack trace span and per-technique pack
  /// counter are emitted, matching what pack() reports. Serializing the
  /// manifest yields byte-for-byte the stream pup would produce for pack().
  virtual ImageManifest pack_manifest(bool count = false) = 0;

  /// Destructive epilogue of a manifest-based migration: drops the local
  /// memory exactly as pack() would have (isomalloc evacuates its slots;
  /// memory-alias closes its backing file). After this the object is a husk
  /// that must be deleted. Not called for checkpoint-style captures.
  virtual void complete_pack() = 0;

  /// Rebuilds a thread from an image on the destination. `dest_pe` is the
  /// arriving PE (used only for bookkeeping; addresses come from the image).
  static MigratableThread* unpack(ThreadImage image, int dest_pe);

 protected:
  using ult::Thread::Thread;
};

}  // namespace mfc::migrate
