#include "migrate/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "iso/region.h"
#include "util/check.h"
#include "util/crc32.h"

namespace mfc::migrate {

namespace {

// Frame header, stored little-endian via memcpy (this runtime is
// x86-64-only; the static_assert keeps the layout honest).
constexpr std::uint32_t kMagic = 0x4D46434Bu;  // "MFCK"
constexpr std::uint32_t kVersion = 2;          // v1 was the unframed format

struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t payload_len;
  std::uint32_t crc;
};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;

}  // namespace

const char* to_string(CodecError e) {
  switch (e) {
    case CodecError::kOk: return "ok";
    case CodecError::kTruncated: return "truncated";
    case CodecError::kBadMagic: return "bad-magic";
    case CodecError::kBadVersion: return "bad-version";
    case CodecError::kBadCrc: return "bad-crc";
  }
  return "?";
}

Checkpoint::RegionStamp Checkpoint::current_stamp() {
  RegionStamp stamp;
  if (iso::Region::initialized()) {
    const iso::Region& region = iso::Region::instance();
    stamp.base = reinterpret_cast<std::uint64_t>(region.base());
    stamp.slot_bytes = region.config().slot_bytes;
    stamp.slots_per_pe = region.config().slots_per_pe;
    stamp.npes = region.config().npes;
  }
  return stamp;
}

void Checkpoint::add(MigratableThread* thread) {
  MFC_CHECK(thread != nullptr);
  if (!stamped_) {
    stamp_ = current_stamp();
    stamped_ = true;
  }
  images_.push_back(thread->pack());
}

void Checkpoint::add_image(ThreadImage image) {
  if (!stamped_) {
    stamp_ = current_stamp();
    stamped_ = true;
  }
  images_.push_back(std::move(image));
}

std::vector<MigratableThread*> Checkpoint::restore_all(int dest_pe) {
  if (stamped_ && stamp_.base != 0) {
    const RegionStamp now = current_stamp();
    MFC_CHECK_MSG(now.base == stamp_.base &&
                      now.slot_bytes == stamp_.slot_bytes &&
                      now.slots_per_pe == stamp_.slots_per_pe &&
                      now.npes == stamp_.npes,
                  "checkpoint restore requires the same isomalloc region "
                  "geometry and base address (see checkpoint.h)");
  }
  std::vector<MigratableThread*> threads;
  threads.reserve(images_.size());
  for (ThreadImage& image : images_) {
    threads.push_back(MigratableThread::unpack(std::move(image), dest_pe));
  }
  images_.clear();
  return threads;
}

void Checkpoint::pup(pup::Er& p) {
  p | stamped_ | stamp_ | images_ | user_data_;
}

std::vector<char> Checkpoint::encode() const {
  const std::vector<char> payload = pup::to_bytes(*this);
  std::vector<char> frame(kHeaderBytes + payload.size());
  const std::uint64_t len = payload.size();
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  char* p = frame.data();
  std::memcpy(p, &kMagic, 4);
  std::memcpy(p + 4, &kVersion, 4);
  std::memcpy(p + 8, &len, 8);
  std::memcpy(p + 16, &crc, 4);
  std::memcpy(p + kHeaderBytes, payload.data(), payload.size());
  return frame;
}

CodecError Checkpoint::decode(const char* data, std::size_t size,
                              Checkpoint* out) {
  MFC_CHECK(out != nullptr);
  if (size < kHeaderBytes) return CodecError::kTruncated;
  FrameHeader h;
  std::memcpy(&h.magic, data, 4);
  std::memcpy(&h.version, data + 4, 4);
  std::memcpy(&h.payload_len, data + 8, 8);
  std::memcpy(&h.crc, data + 16, 4);
  if (h.magic != kMagic) return CodecError::kBadMagic;
  if (h.version != kVersion) return CodecError::kBadVersion;
  if (h.payload_len != size - kHeaderBytes) return CodecError::kTruncated;
  const char* payload = data + kHeaderBytes;
  if (crc32(payload, h.payload_len) != h.crc) return CodecError::kBadCrc;
  std::vector<char> bytes(payload, payload + h.payload_len);
  pup::from_bytes(bytes, *out);
  return CodecError::kOk;
}

CodecError Checkpoint::decode(const std::vector<char>& bytes,
                              Checkpoint* out) {
  return decode(bytes.data(), bytes.size(), out);
}

void Checkpoint::write_file(const std::string& path) const {
  auto bytes = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(written == bytes.size(), "checkpoint: short write");
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(got == bytes.size(), "checkpoint: short read");
  Checkpoint ckpt;
  const CodecError err = decode(bytes, &ckpt);
  MFC_CHECK_MSG(err == CodecError::kOk, "checkpoint: corrupt image file");
  return ckpt;
}

}  // namespace mfc::migrate
