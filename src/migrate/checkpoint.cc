#include "migrate/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "iso/region.h"
#include "ult/scheduler.h"
#include "util/check.h"
#include "util/crc32.h"

namespace mfc::migrate {

namespace {

// Frame header, stored little-endian via memcpy (this runtime is
// x86-64-only; the static_assert keeps the layout honest).
constexpr std::uint32_t kMagic = 0x4D46434Bu;  // "MFCK"
constexpr std::uint32_t kVersion = 2;          // v1 was the unframed format

struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t payload_len;
  std::uint32_t crc;
};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;

}  // namespace

const char* to_string(CodecError e) {
  switch (e) {
    case CodecError::kOk: return "ok";
    case CodecError::kTruncated: return "truncated";
    case CodecError::kBadMagic: return "bad-magic";
    case CodecError::kBadVersion: return "bad-version";
    case CodecError::kBadCrc: return "bad-crc";
  }
  return "?";
}

Checkpoint::RegionStamp Checkpoint::current_stamp() {
  RegionStamp stamp;
  if (iso::Region::initialized()) {
    const iso::Region& region = iso::Region::instance();
    stamp.base = reinterpret_cast<std::uint64_t>(region.base());
    stamp.slot_bytes = region.config().slot_bytes;
    stamp.slots_per_pe = region.config().slots_per_pe;
    stamp.npes = region.config().npes;
  }
  return stamp;
}

void Checkpoint::add(MigratableThread* thread) {
  MFC_CHECK(thread != nullptr);
  if (!stamped_) {
    stamp_ = current_stamp();
    stamped_ = true;
  }
  images_.push_back(thread->pack());
  note_size(images_.back());
}

void Checkpoint::add_image(ThreadImage image) {
  if (!stamped_) {
    stamp_ = current_stamp();
    stamped_ = true;
  }
  images_.push_back(std::move(image));
  note_size(images_.back());
}

void Checkpoint::note_size(const ThreadImage& image) {
  // Size phase of the sizing cache: measured once here, consumed by
  // encode()'s pack phase — valid only while no ULT dispatch intervenes.
  if (sized_at_dispatch_ != ult::dispatch_count()) image_sizes_.clear();
  if (image_sizes_.size() + 1 == images_.size()) {
    image_sizes_.push_back(pup::packed_size(image));
    sized_at_dispatch_ = ult::dispatch_count();
  }
}

std::vector<MigratableThread*> Checkpoint::restore_all(int dest_pe) {
  if (stamped_ && stamp_.base != 0) {
    const RegionStamp now = current_stamp();
    MFC_CHECK_MSG(now.base == stamp_.base &&
                      now.slot_bytes == stamp_.slot_bytes &&
                      now.slots_per_pe == stamp_.slots_per_pe &&
                      now.npes == stamp_.npes,
                  "checkpoint restore requires the same isomalloc region "
                  "geometry and base address (see checkpoint.h)");
  }
  std::vector<MigratableThread*> threads;
  threads.reserve(images_.size());
  for (ThreadImage& image : images_) {
    threads.push_back(MigratableThread::unpack(std::move(image), dest_pe));
  }
  images_.clear();
  return threads;
}

void Checkpoint::pup(pup::Er& p) {
  p | stamped_ | stamp_ | images_ | user_data_;
}

namespace {

void write_frame_header(char* frame, std::uint64_t payload_len,
                        std::uint32_t crc) {
  std::memcpy(frame, &kMagic, 4);
  std::memcpy(frame + 4, &kVersion, 4);
  std::memcpy(frame + 8, &payload_len, 8);
  std::memcpy(frame + 16, &crc, 4);
}

}  // namespace

std::vector<char> Checkpoint::encode() const {
  auto& self = const_cast<Checkpoint&>(*this);

  // Size phase: per-image sizes come from the cache filled at add() time
  // unless a ULT dispatch invalidated it; the non-image fields are O(1) to
  // size. This leaves exactly one full traversal — the pack below — where
  // the old path walked the images for sizing, again for packing, then
  // scanned the payload for the CRC and memcpy'd it into the frame.
  if (image_sizes_.size() != images_.size() ||
      sized_at_dispatch_ != ult::dispatch_count()) {
    image_sizes_.clear();
    image_sizes_.reserve(images_.size());
    for (const ThreadImage& image : images_) {
      image_sizes_.push_back(pup::packed_size(image));
    }
    sized_at_dispatch_ = ult::dispatch_count();
  }
  pup::Sizer meta;
  meta | self.stamped_ | self.stamp_ | self.user_data_;
  std::size_t payload_len = meta.size() + sizeof(std::size_t);
  for (std::size_t s : image_sizes_) payload_len += s;

  // Pack phase: one pass writes the payload directly into the frame and
  // folds the CRC-32C as it copies.
  std::vector<char> frame(kHeaderBytes + payload_len);
  pup::CrcMemPacker p(frame.data() + kHeaderBytes, payload_len);
  p | self.stamped_ | self.stamp_;
  std::size_t n = images_.size();
  p.bytes(&n, sizeof n);
  for (ThreadImage& image : self.images_) image.pup(p);
  p | self.user_data_;
  MFC_CHECK(p.written(frame.data() + kHeaderBytes) == payload_len);
  write_frame_header(frame.data(), payload_len, p.crc());
  return frame;
}

void GatherCheckpoint::stamp_once() {
  if (!stamped_) {
    stamp_ = Checkpoint::current_stamp();
    stamped_ = true;
  }
}

void GatherCheckpoint::add_manifest(const ImageManifest& m) {
  stamp_once();
  sources_.push_back({&m, nullptr, 0});
}

void GatherCheckpoint::add_image_bytes(const char* data, std::size_t len) {
  stamp_once();
  sources_.push_back({nullptr, data, len});
}

std::vector<char> GatherCheckpoint::encode() const {
  auto& self = const_cast<GatherCheckpoint&>(*this);

  // Size phase: manifests size in O(#runs), cached byte spans in O(1).
  pup::Sizer meta;
  meta | self.stamped_ | self.stamp_ | self.user_data_;
  std::size_t payload_len = meta.size() + sizeof(std::size_t);
  for (const Source& s : sources_) {
    payload_len += s.manifest != nullptr ? s.manifest->wire_size() : s.len;
  }

  // Pack phase: a single gather pass over the referenced memory, CRC folded
  // per iovec as the bytes land in the frame.
  std::vector<char> frame(kHeaderBytes + payload_len);
  pup::CrcMemPacker p(frame.data() + kHeaderBytes, payload_len);
  p | self.stamped_ | self.stamp_;
  std::size_t n = sources_.size();
  p.bytes(&n, sizeof n);
  for (const Source& s : sources_) {
    if (s.manifest != nullptr) {
      s.manifest->pup_into(p);
    } else {
      p.bytes(const_cast<char*>(s.data), s.len);
    }
  }
  p | self.user_data_;
  MFC_CHECK(p.written(frame.data() + kHeaderBytes) == payload_len);
  write_frame_header(frame.data(), payload_len, p.crc());
  return frame;
}

CodecError Checkpoint::decode(const char* data, std::size_t size,
                              Checkpoint* out) {
  MFC_CHECK(out != nullptr);
  if (size < kHeaderBytes) return CodecError::kTruncated;
  FrameHeader h;
  std::memcpy(&h.magic, data, 4);
  std::memcpy(&h.version, data + 4, 4);
  std::memcpy(&h.payload_len, data + 8, 8);
  std::memcpy(&h.crc, data + 16, 4);
  if (h.magic != kMagic) return CodecError::kBadMagic;
  if (h.version != kVersion) return CodecError::kBadVersion;
  if (h.payload_len != size - kHeaderBytes) return CodecError::kTruncated;
  const char* payload = data + kHeaderBytes;
  if (crc32(payload, h.payload_len) != h.crc) return CodecError::kBadCrc;
  std::vector<char> bytes(payload, payload + h.payload_len);
  pup::from_bytes(bytes, *out);
  return CodecError::kOk;
}

CodecError Checkpoint::decode(const std::vector<char>& bytes,
                              Checkpoint* out) {
  return decode(bytes.data(), bytes.size(), out);
}

void Checkpoint::write_file(const std::string& path) const {
  auto bytes = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(written == bytes.size(), "checkpoint: short write");
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(got == bytes.size(), "checkpoint: short read");
  Checkpoint ckpt;
  const CodecError err = decode(bytes, &ckpt);
  MFC_CHECK_MSG(err == CodecError::kOk, "checkpoint: corrupt image file");
  return ckpt;
}

}  // namespace mfc::migrate
