#include "migrate/checkpoint.h"

#include <cstdio>

#include "iso/region.h"
#include "util/check.h"

namespace mfc::migrate {

Checkpoint::RegionStamp Checkpoint::current_stamp() {
  RegionStamp stamp;
  if (iso::Region::initialized()) {
    const iso::Region& region = iso::Region::instance();
    stamp.base = reinterpret_cast<std::uint64_t>(region.base());
    stamp.slot_bytes = region.config().slot_bytes;
    stamp.slots_per_pe = region.config().slots_per_pe;
    stamp.npes = region.config().npes;
  }
  return stamp;
}

void Checkpoint::add(MigratableThread* thread) {
  MFC_CHECK(thread != nullptr);
  if (!stamped_) {
    stamp_ = current_stamp();
    stamped_ = true;
  }
  images_.push_back(thread->pack());
}

std::vector<MigratableThread*> Checkpoint::restore_all(int dest_pe) {
  if (stamped_ && stamp_.base != 0) {
    const RegionStamp now = current_stamp();
    MFC_CHECK_MSG(now.base == stamp_.base &&
                      now.slot_bytes == stamp_.slot_bytes &&
                      now.slots_per_pe == stamp_.slots_per_pe &&
                      now.npes == stamp_.npes,
                  "checkpoint restore requires the same isomalloc region "
                  "geometry and base address (see checkpoint.h)");
  }
  std::vector<MigratableThread*> threads;
  threads.reserve(images_.size());
  for (ThreadImage& image : images_) {
    threads.push_back(MigratableThread::unpack(std::move(image), dest_pe));
  }
  images_.clear();
  return threads;
}

void Checkpoint::pup(pup::Er& p) {
  p | stamped_ | stamp_ | images_ | user_data_;
}

void Checkpoint::write_file(const std::string& path) const {
  auto bytes = pup::to_bytes(*this);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(written == bytes.size(), "checkpoint: short write");
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MFC_CHECK_MSG(f != nullptr, "checkpoint: cannot open file for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MFC_CHECK_MSG(got == bytes.size(), "checkpoint: short read");
  Checkpoint ckpt;
  pup::from_bytes(bytes, ckpt);
  return ckpt;
}

}  // namespace mfc::migrate
