#include "migrate/manifest.h"

#include <cstring>

#include "migrate/migratable.h"
#include "util/check.h"

namespace mfc::migrate {

void ImageManifest::pup_into(pup::Er& p) const {
  MFC_CHECK(!p.unpacking());  // gather-only codec; unpack goes via ThreadImage
  auto& self = const_cast<ImageManifest&>(*this);
  p | self.technique | self.thread_id | self.accumulated_load |
      self.saved_sp | self.stack_slot | self.heap_slots;
  // slot_data: identical encoding to vector<vector<char>> — count, then
  // each run as length + raw bytes, but sourced from the iovec list.
  std::size_t n = runs.size();
  p.bytes(&n, sizeof n);
  for (const IoRun& run : runs) {
    std::size_t len = run.len;
    p.bytes(&len, sizeof len);
    if (len) p.bytes(const_cast<char*>(run.data), len);
  }
  // stack_bytes: vector<char> encoding from the stack run.
  std::size_t stack_len = stack_run.len;
  p.bytes(&stack_len, sizeof stack_len);
  if (stack_len) p.bytes(const_cast<char*>(stack_run.data), stack_len);
  p | self.stack_capacity | self.arena_base;
}

std::size_t ImageManifest::wire_size() const {
  pup::Sizer s;
  pup_into(s);
  return s.size();
}

std::size_t ImageManifest::payload_bytes() const {
  std::size_t total = stack_run.len;
  for (const IoRun& run : runs) total += run.len;
  return total;
}

std::size_t ImageManifest::gather(char* dst, std::size_t cap,
                                  Crc32* crc) const {
  if (crc != nullptr) {
    pup::CrcMemPacker packer(dst, cap, crc);
    pup_into(packer);
    return packer.written(dst);
  }
  pup::MemPacker packer(dst, cap);
  pup_into(packer);
  return packer.written(dst);
}

std::vector<char> ImageManifest::to_wire(std::uint32_t* crc_out) const {
  std::vector<char> wire(wire_size());
  pup::CrcMemPacker packer(wire.data(), wire.size());
  pup_into(packer);
  MFC_CHECK(packer.written(wire.data()) == wire.size());
  if (crc_out != nullptr) *crc_out = packer.crc();
  return wire;
}

ThreadImage image_from_manifest(const ImageManifest& m) {
  ThreadImage image;
  image.technique = m.technique;
  image.thread_id = m.thread_id;
  image.accumulated_load = m.accumulated_load;
  image.saved_sp = m.saved_sp;
  image.stack_slot = m.stack_slot;
  image.heap_slots = m.heap_slots;
  image.slot_data.reserve(m.runs.size());
  for (const IoRun& run : m.runs) {
    auto& dst = image.slot_data.emplace_back();
    if (run.len) dst.assign(run.data, run.data + run.len);
  }
  if (m.stack_run.len) {
    image.stack_bytes.assign(m.stack_run.data,
                             m.stack_run.data + m.stack_run.len);
  }
  image.stack_capacity = m.stack_capacity;
  image.arena_base = m.arena_base;
  return image;
}

std::vector<IoRun> ImageManifest::wire_spans(std::vector<char>* scratch) const {
  MFC_CHECK(scratch != nullptr);
  auto& self = const_cast<ImageManifest&>(*this);
  // Scratch holds every byte to_wire() would emit that is NOT a run
  // payload: [metadata prefix + run count][one length word per run]
  // [stack length word][stack_capacity + arena_base]. Sized up front so the
  // span pointers survive — no reallocation after the first resize.
  pup::Sizer prefix_sizer;
  prefix_sizer | self.technique | self.thread_id | self.accumulated_load |
      self.saved_sp | self.stack_slot | self.heap_slots;
  const std::size_t prefix = prefix_sizer.size() + sizeof(std::size_t);
  pup::Sizer trailer_sizer;
  trailer_sizer | self.stack_capacity | self.arena_base;
  const std::size_t trailer = trailer_sizer.size();
  scratch->resize(prefix + (runs.size() + 1) * sizeof(std::size_t) + trailer);
  char* s = scratch->data();
  {
    pup::MemPacker p(s, prefix);
    p | self.technique | self.thread_id | self.accumulated_load |
        self.saved_sp | self.stack_slot | self.heap_slots;
    std::size_t n = runs.size();
    p.bytes(&n, sizeof n);
    MFC_CHECK(p.written(s) == prefix);
  }
  std::vector<IoRun> spans;
  spans.reserve(2 * runs.size() + 4);
  spans.push_back({s, prefix});
  std::size_t off = prefix;
  for (const IoRun& run : runs) {
    const std::size_t len = run.len;
    std::memcpy(s + off, &len, sizeof len);
    spans.push_back({s + off, sizeof len});
    off += sizeof len;
    if (run.len) spans.push_back(run);
  }
  const std::size_t stack_len = stack_run.len;
  std::memcpy(s + off, &stack_len, sizeof stack_len);
  spans.push_back({s + off, sizeof stack_len});
  off += sizeof stack_len;
  if (stack_run.len) spans.push_back(stack_run);
  {
    pup::MemPacker p(s + off, trailer);
    p | self.stack_capacity | self.arena_base;
    MFC_CHECK(p.written(s + off) == trailer);
  }
  spans.push_back({s + off, trailer});
  return spans;
}

std::vector<ImageManifest::RunSpan> ImageManifest::layout() const {
  // Size the metadata prefix with a Sizer (so SlotId's encoding is never
  // duplicated here), then walk the run framing arithmetically: each run is
  // an 8-byte length followed by its payload.
  pup::Sizer s;
  auto& self = const_cast<ImageManifest&>(*this);
  s | self.technique | self.thread_id | self.accumulated_load |
      self.saved_sp | self.stack_slot | self.heap_slots;
  std::size_t off = s.size() + sizeof(std::size_t);  // + runs count
  std::vector<RunSpan> spans;
  spans.reserve(runs.size() + 1);
  for (const IoRun& run : runs) {
    off += sizeof(std::size_t);
    spans.push_back({run.data, run.len, off});
    off += run.len;
  }
  off += sizeof(std::size_t);
  spans.push_back({stack_run.data, stack_run.len, off});
  return spans;
}

}  // namespace mfc::migrate
