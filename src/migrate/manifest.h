// Scatter-gather image manifests — the zero-copy pack path.
//
// A ThreadImage owns every byte it describes: pack() memcpy's each stack and
// heap run into vectors, and serialization copies them again. For isomalloc
// threads that middle copy is pure waste — the runs already sit in
// page-aligned, self-describing slots at machine-wide-unique addresses. An
// ImageManifest is the iovec view of the same image: the metadata fields by
// value plus a list of {pointer, length} runs referencing the thread's live
// memory. Gathering a manifest into a wire buffer produces byte-for-byte
// the stream ThreadImage::pup would have produced, folds a streaming
// CRC-32C per run as it copies, and touches the source memory exactly once.
//
// Stack-copy and memory-alias threads have no stable source to reference
// (the saved-stack vector moves; the memfd pages are only mapped while
// running), so their manifests stage the stack bytes in manifest-owned
// storage — they keep the copy path but share this codec, as do the
// checkpoint gather and the dirty-run patch path (layout() exposes where
// each run's payload lands in the wire stream).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "iso/region.h"
#include "pup/pup.h"

namespace mfc::migrate {

enum class Technique : std::uint8_t;

/// One gather run: `len` bytes read from `data` when shipping.
struct IoRun {
  const char* data = nullptr;
  std::size_t len = 0;
};

class ImageManifest {
 public:
  // Image metadata, field-for-field the same as ThreadImage (and emitted in
  // the same order on the wire).
  Technique technique{};
  std::uint64_t thread_id = 0;
  double accumulated_load = 0.0;
  std::uint64_t saved_sp = 0;

  iso::SlotId stack_slot;
  std::vector<iso::SlotId> heap_slots;
  std::vector<IoRun> runs;  ///< stands in for ThreadImage::slot_data
                            ///< (stack run first, heap runs after)
  IoRun stack_run;          ///< stands in for ThreadImage::stack_bytes

  std::uint64_t stack_capacity = 0;
  std::uint64_t arena_base = 0;

  /// Owned staging for techniques without a stable source (memory-alias
  /// preads its backing file here; runs/stack_run may point into it).
  std::vector<char> staged;

  /// Where one run's payload lands in the serialized stream.
  struct RunSpan {
    const char* src;
    std::size_t len;
    std::size_t wire_off;
  };

  /// Serialized size (identical to pup::packed_size of the equivalent
  /// ThreadImage). O(#fields + #runs) — no data is touched.
  std::size_t wire_size() const;

  /// Sum of run payload bytes (the "wire" figure pack() reports in traces).
  std::size_t payload_bytes() const;

  /// Drives `p` exactly as ThreadImage::pup would for the equivalent image.
  void pup_into(pup::Er& p) const;

  /// Gathers the serialized stream into `dst` (capacity >= wire_size()).
  /// Returns bytes written; if `crc` is non-null the streaming CRC-32C is
  /// folded per run as the bytes are copied.
  std::size_t gather(char* dst, std::size_t cap, Crc32* crc) const;

  /// One-call gather into a fresh vector; `crc_out` receives the CRC-32C of
  /// the returned bytes when non-null.
  std::vector<char> to_wire(std::uint32_t* crc_out = nullptr) const;

  /// Wire offsets of every run payload: entry i covers runs[i], the final
  /// entry covers stack_run. Offsets are stable across gathers as long as
  /// the metadata and run lengths are unchanged — the dirty-run patch path
  /// re-copies only touched runs into a cached wire image at these offsets.
  std::vector<RunSpan> layout() const;

  /// Scatter-gather view of the serialized stream: a span list whose
  /// concatenation is byte-identical to to_wire(), with run payloads
  /// referenced in place (no copy) and only the framing — metadata prefix,
  /// per-run length words, trailer — staged into `scratch`. Feeding the
  /// spans to send_spans()/writev is the fully zero-copy ship path: the
  /// image's data pages are read exactly once, by the wire itself. The
  /// spans stay valid while `scratch` and the image's source memory do.
  std::vector<IoRun> wire_spans(std::vector<char>* scratch) const;
};

}  // namespace mfc::migrate
