#include "ft/ft.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "converse/machine.h"
#include "trace/flight.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "ult/scheduler.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/log.h"

namespace mfc::ft {
namespace {

using Clock = std::chrono::steady_clock;

/// Granularity of the incremental diff. A fixed 4 KiB keeps the delta wire
/// format independent of the host page size (blobs are plain byte vectors,
/// not mapped memory, so there is nothing to align with anyway).
constexpr std::size_t kDeltaPage = 4096;

/// Async stream chunk size: big enough to amortize per-message overhead,
/// small enough that the buddy's handler never stalls its PE loop.
constexpr std::size_t kChunkBytes = 64 * 1024;

/// One PE's slot in the double in-memory checkpoint store. Touched only by
/// the owning PE's kernel thread (capture/store/refill handlers and the
/// revival wipe all run there), so no lock is needed.
///
/// The committed pair (own/buddy) only ever changes at a commit broadcast
/// or a recovery refill; captures and incoming stores land in the pending/
/// stage slots first. A kill at any instant therefore leaves every
/// surviving PE with an intact last-committed epoch to roll back to.
struct PeStore {
  std::uint64_t own_epoch = 0;     ///< epoch of `own` (0 = empty)
  std::vector<char> own;           ///< this PE's blob (local copy, committed)
  std::int32_t buddy_src = -1;     ///< whose blob `buddy` is
  std::uint64_t buddy_epoch = 0;
  std::vector<char> buddy;         ///< the predecessor's blob (committed)

  // Staged (uncommitted) captures and stores.
  std::uint64_t pending_epoch = 0;  ///< epoch of `pending` (0 = none)
  std::vector<char> pending;        ///< this PE's capture awaiting commit
  std::int32_t stage_src = -1;
  std::uint64_t stage_epoch = 0;
  std::vector<char> stage;          ///< reconstructed buddy blob, staged

  // Attempt stamp: set at capture, carried by async chunks. A chunk whose
  // stamp differs from the receiver's current one is a straggler from an
  // aborted attempt and is dropped.
  std::uint64_t cur_attempt = 0;

  // Async outbound stream (serialized StoreMsg toward the buddy).
  std::vector<char> outbox;
  std::size_t out_off = 0;
  std::uint64_t out_epoch = 0;      ///< 0 = no stream in progress

  // Async inbound reassembly (serialized StoreMsg from the predecessor).
  std::vector<char> inbox;
  std::size_t inbox_got = 0;
  std::int32_t inbox_src = -1;
  std::uint64_t inbox_epoch = 0;
};

struct FtState {
  int npes = 0;
  Hooks hooks;
  std::vector<PeStore> store;

  // ---- PE0-only protocol state (detector tick, checkpoint driver, and
  // recovery coordinator all run on PE0's kernel thread) ----
  std::uint64_t epoch = 0;          ///< last committed checkpoint epoch
  std::uint64_t pending_epoch = 0;  ///< epoch currently being checkpointed
  CkptMode pending_mode = CkptMode::kFull;
  std::uint64_t ckpt_attempt = 0;   ///< bumped per checkpoint_now call
  int capture_acks = 0;             ///< outstanding capture acks (npes)
  int store_acks = 0;               ///< outstanding buddy-store acks (npes)
  std::uint64_t ckpt_bytes = 0;     ///< local-copy bytes this epoch
  bool async_inflight = false;      ///< kAsync epoch awaiting commit
  ult::Thread* ckpt_waiter = nullptr;
  ult::Thread* sync_waiter = nullptr;

  bool clock_init = false;
  Clock::time_point last_ping;
  std::vector<Clock::time_point> last_pong;
  bool recovering = false;
  int victim = -1;
  int rec_acks = 0;
  ult::Thread* rec_waiter = nullptr;

  // ---- Process tier (populated at the first tick, when the machine's
  // process geometry is known) ----
  int nprocs = 1;
  int ppn = 0;             ///< PEs per process
  int victim_proc = -1;    ///< process-tier recovery in flight
  std::vector<char> escalated;  ///< per-proc: wedge already escalated to kill

  std::atomic<std::uint64_t> kills{0};
  std::atomic<std::uint64_t> detections{0};
  std::atomic<std::uint64_t> recoveries{0};
};

FtState* g_state = nullptr;

converse::HandlerId h_ping, h_pong, h_capture, h_store, h_ckpt_ack, h_commit,
    h_chunk, h_pump, h_ckpt_abort, h_refill_own, h_refill_buddy, h_take_own,
    h_take_buddy, h_discard, h_restore, h_rec_ack;

// ---- Wire messages ----------------------------------------------------------

struct BlobMsg {
  std::int32_t src = -1;
  std::uint64_t epoch = 0;
  std::vector<char> blob;
  void pup(pup::Er& p) { p | src | epoch | blob; }
};

struct CaptureMsg {
  std::uint64_t epoch = 0;
  std::uint8_t mode = 0;  ///< CkptMode
  std::uint64_t attempt = 0;
  void pup(pup::Er& p) { p | epoch | mode | attempt; }
};

/// A buddy store: either the full blob (kind 0) or a page-granular delta
/// against the previous committed epoch (kind 1: `offs`/`lens` describe the
/// changed ranges, `blob` is their concatenated bytes). Either way the
/// receiver reconstructs the full blob and checks it against `full_crc`.
struct StoreMsg {
  std::int32_t src = -1;
  std::uint64_t epoch = 0;
  std::uint8_t kind = 0;          ///< 0 full, 1 delta
  std::uint64_t base_epoch = 0;   ///< delta: epoch the ranges patch
  std::uint64_t full_len = 0;     ///< reconstructed blob length
  std::uint32_t full_crc = 0;     ///< CRC-32C of the reconstructed blob
  std::vector<std::uint64_t> offs;
  std::vector<std::uint64_t> lens;
  std::vector<char> blob;
  void pup(pup::Er& p) {
    p | src | epoch | kind | base_epoch | full_len | full_crc | offs | lens |
        blob;
  }
};

struct AckMsg {
  std::uint64_t epoch = 0;
  std::uint8_t phase = 0;  ///< 0 = capture ack, 1 = buddy-store ack
  std::uint64_t bytes = 0;
  void pup(pup::Er& p) { p | epoch | phase | bytes; }
};

struct ChunkMsg {
  std::int32_t src = -1;
  std::uint64_t epoch = 0;
  std::uint64_t attempt = 0;
  std::uint64_t total = 0;  ///< serialized StoreMsg length
  std::uint64_t off = 0;
  std::vector<char> bytes;
  void pup(pup::Er& p) { p | src | epoch | attempt | total | off | bytes; }
};

/// Every FT protocol send goes through here so the send is counted in the
/// quiescence-exempt pair (handlers count the matching delivery first
/// thing); see app_sent()/app_delivered() in machine.cc.
template <typename T>
void ft_send(int pe, converse::HandlerId h, const T& value) {
  metrics::bump(metrics::Counter::kFtSent);
  converse::send_value(pe, h, value);
}

void count_delivery() { metrics::bump(metrics::Counter::kFtDelivered); }

/// Buddy stride: PEs-per-process under a multi-process machine, 1 single-
/// process. Read from the machine each call (install() runs before
/// Machine::run, when the geometry is not yet known).
int buddy_stride() {
  const int np = converse::num_procs();
  return np > 1 ? g_state->npes / np : 1;
}

/// The PE whose buddy copy `pe` holds: the inverse of buddy_of.
int pred_of(int pe) {
  const int npes = g_state->npes;
  return (pe - buddy_stride() + npes) % npes;
}

/// Ships a StoreMsg without gathering the blob into the pup buffer: the
/// fixed fields and range tables pack into a small prefix whose trailing
/// vector-length word is patched to the real blob size, and the blob bytes
/// ride as a second scatter span — on a wire transport they go straight to
/// the ring copy loop or writev. The receiver's plain pup unpack sees the
/// identical byte stream either way.
void ft_send_store(int pe, const StoreMsg& sm) {
  metrics::bump(metrics::Counter::kFtSent);
  StoreMsg head;
  head.src = sm.src;
  head.epoch = sm.epoch;
  head.kind = sm.kind;
  head.base_epoch = sm.base_epoch;
  head.full_len = sm.full_len;
  head.full_crc = sm.full_crc;
  head.offs = sm.offs;
  head.lens = sm.lens;
  std::vector<char> prefix = pup::to_bytes_onepass(head, 256);
  const std::size_t blob_len = sm.blob.size();
  std::memcpy(prefix.data() + prefix.size() - sizeof blob_len, &blob_len,
              sizeof blob_len);
  const converse::SendSpan spans[2] = {{prefix.data(), prefix.size()},
                                       {sm.blob.data(), blob_len}};
  converse::send_spans(pe, h_store, spans, blob_len != 0 ? 2 : 1);
}

// ---- Checkpoint -------------------------------------------------------------

/// Builds the buddy store for this PE's fresh capture. `allow_delta` diffs
/// the capture against the previous committed local blob in kDeltaPage
/// blocks and ships only the changed ranges — valid iff the committed blob
/// is exactly one epoch old and the same length; otherwise (and whenever
/// the delta would not actually be smaller) it degrades to a full ship.
StoreMsg build_store(int me, std::uint64_t epoch, const std::vector<char>& blob,
                     const PeStore& st, bool allow_delta) {
  StoreMsg sm;
  sm.src = me;
  sm.epoch = epoch;
  sm.full_len = blob.size();
  sm.full_crc = crc32(blob.data(), blob.size());
  const bool have_base = allow_delta && st.own_epoch + 1 == epoch &&
                         st.own.size() == blob.size() && !blob.empty();
  if (have_base) {
    std::size_t off = 0;
    std::size_t delta_bytes = 0;
    while (off < blob.size()) {
      const std::size_t len = std::min(kDeltaPage, blob.size() - off);
      if (std::memcmp(blob.data() + off, st.own.data() + off, len) != 0) {
        if (!sm.offs.empty() && sm.offs.back() + sm.lens.back() == off) {
          sm.lens.back() += len;
        } else {
          sm.offs.push_back(off);
          sm.lens.push_back(len);
        }
        delta_bytes += len;
      }
      off += len;
    }
    // 16 bytes of range metadata per entry: a delta only wins if it beats
    // the full ship including that overhead.
    if (delta_bytes + 16 * sm.offs.size() < blob.size()) {
      sm.kind = 1;
      sm.base_epoch = epoch - 1;
      sm.blob.reserve(delta_bytes);
      for (std::size_t i = 0; i < sm.offs.size(); ++i) {
        const char* p = blob.data() + sm.offs[i];
        sm.blob.insert(sm.blob.end(), p, p + sm.lens[i]);
      }
      metrics::bump(metrics::Counter::kFtDeltaRanges, sm.offs.size());
      metrics::bump(metrics::Counter::kFtShipBytes, sm.blob.size());
      return sm;
    }
    sm.offs.clear();
    sm.lens.clear();
  }
  sm.kind = 0;
  sm.blob = blob;
  metrics::bump(metrics::Counter::kFtShipBytes, sm.blob.size());
  return sm;
}

/// Reconstructs the full blob a StoreMsg describes and stages it (does NOT
/// touch the committed buddy slot — that happens at commit). Delta stores
/// patch a copy of the committed buddy blob, so the base survives an abort.
void apply_store(StoreMsg&& sm) {
  FtState* s = g_state;
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  if (sm.kind == 0) {
    MFC_CHECK(sm.blob.size() == sm.full_len);
    st.stage = std::move(sm.blob);
  } else {
    MFC_CHECK_MSG(st.buddy_src == sm.src && st.buddy_epoch == sm.base_epoch &&
                      st.buddy.size() == sm.full_len,
                  "ft: delta store without a matching committed base");
    st.stage = st.buddy;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < sm.offs.size(); ++i) {
      MFC_CHECK(sm.offs[i] + sm.lens[i] <= st.stage.size());
      std::memcpy(st.stage.data() + sm.offs[i], sm.blob.data() + pos,
                  static_cast<std::size_t>(sm.lens[i]));
      pos += static_cast<std::size_t>(sm.lens[i]);
    }
    MFC_CHECK(pos == sm.blob.size());
  }
  MFC_CHECK_MSG(crc32(st.stage.data(), st.stage.size()) == sm.full_crc,
                "ft: staged checkpoint failed CRC verification");
  st.stage_src = sm.src;
  st.stage_epoch = sm.epoch;
}

void handle_capture(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto cm = m.as<CaptureMsg>();
  const auto mode = static_cast<CkptMode>(cm.mode);
  const int me = converse::my_pe();
  PeStore& st = s->store[static_cast<std::size_t>(me)];
  std::vector<char> blob = s->hooks.capture(cm.epoch);
  const std::uint64_t bytes = blob.size();
  st.cur_attempt = cm.attempt;
  StoreMsg sm =
      build_store(me, cm.epoch, blob, st, mode != CkptMode::kFull);
  st.pending_epoch = cm.epoch;
  st.pending = std::move(blob);
  if (mode != CkptMode::kAsync) {
    ft_send_store(buddy_of(me), sm);
    ft_send(0, h_ckpt_ack, AckMsg{cm.epoch, 0, bytes});
  } else {
    // Capture is done — ack immediately so PE 0 can lift the exclusive
    // window; the buddy ship streams in chunks via self-posted pump
    // messages interleaved with application work.
    st.outbox = pup::to_bytes_onepass(sm, sm.blob.size() + 256);
    st.out_off = 0;
    st.out_epoch = cm.epoch;
    ft_send(0, h_ckpt_ack, AckMsg{cm.epoch, 0, bytes});
    ft_send(me, h_pump, cm.epoch);
  }
}

void handle_store(converse::Message&& m) {
  count_delivery();
  auto sm = m.as<StoreMsg>();
  const std::uint64_t epoch = sm.epoch;
  apply_store(std::move(sm));
  ft_send(0, h_ckpt_ack, AckMsg{epoch, 1, 0});
}

void handle_pump(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  const int me = converse::my_pe();
  PeStore& st = s->store[static_cast<std::size_t>(me)];
  if (st.out_epoch != epoch) return;  // stream aborted meanwhile
  const std::size_t total = st.outbox.size();
  const std::size_t n = std::min(kChunkBytes, total - st.out_off);
  ChunkMsg cm;
  cm.src = me;
  cm.epoch = epoch;
  cm.attempt = st.cur_attempt;
  cm.total = total;
  cm.off = st.out_off;
  cm.bytes.assign(st.outbox.begin() + static_cast<std::ptrdiff_t>(st.out_off),
                  st.outbox.begin() +
                      static_cast<std::ptrdiff_t>(st.out_off + n));
  ft_send(buddy_of(me), h_chunk, cm);
  metrics::bump(metrics::Counter::kFtAsyncChunks);
  st.out_off += n;
  if (st.out_off < total) {
    ft_send(me, h_pump, epoch);
  } else {
    st.outbox.clear();
    st.out_off = 0;
    st.out_epoch = 0;
  }
}

void handle_chunk(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto cm = m.as<ChunkMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  if (cm.attempt != st.cur_attempt) return;  // straggler, attempt aborted
  if (st.inbox_src != cm.src || st.inbox_epoch != cm.epoch) {
    st.inbox.assign(static_cast<std::size_t>(cm.total), 0);
    st.inbox_got = 0;
    st.inbox_src = cm.src;
    st.inbox_epoch = cm.epoch;
  }
  MFC_CHECK(cm.off + cm.bytes.size() <= st.inbox.size());
  std::memcpy(st.inbox.data() + cm.off, cm.bytes.data(), cm.bytes.size());
  st.inbox_got += cm.bytes.size();
  if (st.inbox_got < st.inbox.size()) return;
  StoreMsg sm;
  pup::from_bytes(st.inbox, sm);
  st.inbox.clear();
  st.inbox_got = 0;
  st.inbox_src = -1;
  st.inbox_epoch = 0;
  const std::uint64_t epoch = sm.epoch;
  apply_store(std::move(sm));
  ft_send(0, h_ckpt_ack, AckMsg{epoch, 1, 0});
}

void handle_commit(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  if (st.pending_epoch == epoch) {
    st.own_epoch = epoch;
    st.own = std::move(st.pending);
    st.pending.clear();
    st.pending_epoch = 0;
  }
  if (st.stage_epoch == epoch) {
    st.buddy_src = st.stage_src;
    st.buddy_epoch = epoch;
    st.buddy = std::move(st.stage);
    st.stage.clear();
    st.stage_epoch = 0;
    st.stage_src = -1;
  }
}

/// PE0: all 2·npes acks are in — promote the epoch everywhere. Per-sender
/// FIFO guarantees each PE sees the commit before any later protocol
/// message from PE 0 (next capture, recovery refill, restore, ...).
void commit_epoch() {
  FtState* s = g_state;
  const std::uint64_t e = s->pending_epoch;
  for (int pe = 0; pe < s->npes; ++pe) ft_send(pe, h_commit, e);
  s->epoch = e;
  s->pending_epoch = 0;
  s->async_inflight = false;
  metrics::bump(metrics::Counter::kFtCheckpoints);
  metrics::bump(metrics::Counter::kFtCheckpointBytes, s->ckpt_bytes);
  trace::emit_flight(trace::Ev::kFtCheckpointEnd, e, 0,
                     static_cast<std::uint32_t>(s->ckpt_bytes > 0xffffffffu
                                                    ? 0xffffffffu
                                                    : s->ckpt_bytes));
  if (s->sync_waiter != nullptr) {
    ult::Thread* t = s->sync_waiter;
    s->sync_waiter = nullptr;
    converse::ready_thread(t);
  }
}

void handle_ckpt_ack(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto am = m.as<AckMsg>();
  if (am.epoch != s->pending_epoch) return;  // ack for an aborted epoch
  if (am.phase == 0) {
    s->ckpt_bytes += am.bytes;
    --s->capture_acks;
  } else {
    --s->store_acks;
  }
  if (s->pending_mode != CkptMode::kAsync) {
    // Synchronous modes: checkpoint_now owns the commit; wake it once the
    // full 2·npes barrier drains.
    if (s->capture_acks == 0 && s->store_acks == 0 &&
        s->ckpt_waiter != nullptr) {
      ult::Thread* t = s->ckpt_waiter;
      s->ckpt_waiter = nullptr;
      converse::ready_thread(t);
    }
    return;
  }
  // Async: the capture barrier releases checkpoint_now; the store barrier
  // completes later in handler context and commits right here.
  if (s->capture_acks == 0 && s->ckpt_waiter != nullptr) {
    ult::Thread* t = s->ckpt_waiter;
    s->ckpt_waiter = nullptr;
    converse::ready_thread(t);
  }
  if (s->capture_acks == 0 && s->store_acks == 0) commit_epoch();
}

void handle_ckpt_abort(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.pending_epoch = 0;
  st.pending.clear();
  if (st.stage_epoch == epoch) {
    st.stage.clear();
    st.stage_epoch = 0;
    st.stage_src = -1;
  }
  st.out_epoch = 0;
  st.out_off = 0;
  st.outbox.clear();
  st.inbox.clear();
  st.inbox_got = 0;
  st.inbox_src = -1;
  st.inbox_epoch = 0;
  // Straggler chunks of the aborted attempt carry a nonzero stamp and will
  // mismatch; the replayed epoch gets a fresh stamp at its capture.
  st.cur_attempt = 0;
  ft_send(0, h_rec_ack, AckMsg{});
}

// ---- Detector ---------------------------------------------------------------

void handle_ping(converse::Message&&) {
  count_delivery();
  ft_send(0, h_pong, std::int32_t{converse::my_pe()});
}

void handle_pong(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto pe = m.as<std::int32_t>();
  if (pe >= 1 && pe < s->npes) {
    s->last_pong[static_cast<std::size_t>(pe)] = Clock::now();
  }
}

void recovery_main();
void proc_recovery_main();

/// PE0 scheduler-loop tick: two failure tiers, process before PE.
///
/// Process tier: proc 0's comm thread reaps dead children (and the zygote
/// reports grandchild deaths); the reap lands in the machine's dead-proc
/// mailbox, consumed here. A *wedged* process — alive but every one of its
/// PEs overdue at once — is escalated to a SIGKILL so the same reap path
/// fires; per-proc `escalated` keeps the escalation single-shot.
///
/// PE tier: heartbeat pings out, pong deadlines checked. Deliberately
/// ignorant of the machine's dead flags — the acceptance bar is that
/// recovery is *detector*-triggered, so the only death signal used here is
/// a missed pong (or, process tier, a reaped corpse).
void tick() {
  FtState* s = g_state;
  const auto now = Clock::now();
  if (!s->clock_init) {
    s->clock_init = true;
    s->last_ping = now;
    s->last_pong.assign(static_cast<std::size_t>(s->npes), now);
    s->nprocs = converse::num_procs();
    s->ppn = s->npes / (s->nprocs > 0 ? s->nprocs : 1);
    s->escalated.assign(static_cast<std::size_t>(s->nprocs), 0);
    return;
  }
  if (s->recovering) return;
  const bool proc_tier = s->nprocs > 1 && converse::ft_proc_respawn_enabled();
  if (proc_tier) {
    const int dp = converse::take_dead_proc();
    if (dp > 0) {
      s->recovering = true;
      s->victim_proc = dp;
      s->detections.fetch_add(1, std::memory_order_relaxed);
      metrics::bump(metrics::Counter::kFtDetections);
      trace::emit_flight(trace::Ev::kFtDetect, 1,
                         static_cast<std::uint32_t>(dp), 0,
                         static_cast<std::int16_t>(dp * s->ppn));
      trace::flight::dump("ft-proc-down");
      if (s->hooks.on_detect) {
        for (int v = dp * s->ppn; v < (dp + 1) * s->ppn; ++v) {
          s->hooks.on_detect(v);
        }
      }
      ult::spawn([] { proc_recovery_main(); });
      return;  // single-failure model: one recovery at a time
    }
  }
  if (now - s->last_ping >=
      std::chrono::microseconds(s->hooks.ping_interval_us)) {
    s->last_ping = now;
    for (int pe = 1; pe < s->npes; ++pe) {
      ft_send(pe, h_ping, std::int32_t{pe});
    }
  }
  const auto deadline = std::chrono::microseconds(s->hooks.timeout_us);
  const auto overdue = [&](int pe) {
    return pe != 0 &&
           now - s->last_pong[static_cast<std::size_t>(pe)] > deadline;
  };
  for (int pe = 1; pe < s->npes; ++pe) {
    if (!overdue(pe)) continue;
    if (proc_tier) {
      const int proc = pe / s->ppn;
      if (proc != 0) {
        bool whole_proc = true;
        for (int q = proc * s->ppn; q < (proc + 1) * s->ppn; ++q) {
          whole_proc = whole_proc && overdue(q);
        }
        if (whole_proc) {
          // Wedged-but-alive process: every PE overdue at once. Escalate
          // to a whole-process kill; the zygote's reap report then drives
          // process-tier recovery above. No PE-tier recovery meanwhile.
          if (!s->escalated[static_cast<std::size_t>(proc)]) {
            s->escalated[static_cast<std::size_t>(proc)] = 1;
            metrics::bump(metrics::Counter::kFtDetections);
            trace::emit_flight(trace::Ev::kFtDetect, 2,
                               static_cast<std::uint32_t>(proc), 0,
                               static_cast<std::int16_t>(pe));
            converse::kill_proc(proc);
          }
          continue;
        }
      }
    }
    s->recovering = true;
    s->victim = pe;
    s->detections.fetch_add(1, std::memory_order_relaxed);
    metrics::bump(metrics::Counter::kFtDetections);
    trace::emit_flight(trace::Ev::kFtDetect, 0, 0, 0,
                       static_cast<std::int16_t>(pe));
    trace::flight::dump("ft-detect");
    if (s->hooks.on_detect) s->hooks.on_detect(pe);
    ult::spawn([] { recovery_main(); });
    break;  // single-failure model: one recovery at a time
  }
}

// ---- Recovery ---------------------------------------------------------------

void handle_refill_own(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto victim = m.as<std::int32_t>();
  // This PE is the victim's buddy: the copy it holds IS the victim's blob.
  const PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  MFC_CHECK_MSG(st.buddy_src == victim && !st.buddy.empty(),
                "ft: buddy store does not hold the victim's checkpoint");
  ft_send(victim, h_take_own, BlobMsg{victim, st.buddy_epoch, st.buddy});
}

void handle_refill_buddy(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto victim = m.as<std::int32_t>();
  // This PE is the victim's predecessor: re-send its own blob so the victim
  // again holds the buddy copy it lost.
  const int me = converse::my_pe();
  const PeStore& st = s->store[static_cast<std::size_t>(me)];
  MFC_CHECK_MSG(st.own_epoch != 0, "ft: predecessor has no checkpoint");
  ft_send(victim, h_take_buddy, BlobMsg{me, st.own_epoch, st.own});
}

void handle_take_own(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto bm = m.as<BlobMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.own_epoch = bm.epoch;
  st.own = std::move(bm.blob);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_take_buddy(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto bm = m.as<BlobMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.buddy_src = bm.src;
  st.buddy_epoch = bm.epoch;
  st.buddy = std::move(bm.blob);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_discard(converse::Message&&) {
  count_delivery();
  FtState* s = g_state;
  if (s->hooks.discard) s->hooks.discard();
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_restore(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  const PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  MFC_CHECK_MSG(st.own_epoch == epoch,
                "ft: restore epoch does not match this PE's checkpoint");
  s->hooks.restore(epoch, st.own);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_rec_ack(converse::Message&&) {
  count_delivery();
  FtState* s = g_state;
  if (--s->rec_acks == 0 && s->rec_waiter != nullptr) {
    ult::Thread* t = s->rec_waiter;
    s->rec_waiter = nullptr;
    converse::ready_thread(t);
  }
}

/// Waits (in the recovery ULT) for `n` h_rec_ack messages.
void rec_wait(int n) {
  FtState* s = g_state;
  s->rec_acks = n;
  s->rec_waiter = converse::pe_scheduler().running();
  ult::suspend();
}

/// An async epoch that had not committed when the failure hit is aborted:
/// every PE drops its pending capture, staged store, and stream buffers.
/// The rollback then lands on the previous committed epoch, and the aborted
/// epoch number is simply reused when the replay reaches its checkpoint
/// round again. No End event was emitted and no checkpoint counter bumped,
/// so committed-epoch books match a failure-free run. Recovery-ULT context.
void abort_async_epoch() {
  FtState* s = g_state;
  if (!s->async_inflight) return;
  const std::uint64_t e = s->pending_epoch;
  s->pending_epoch = 0;
  s->async_inflight = false;
  for (int pe = 0; pe < s->npes; ++pe) ft_send(pe, h_ckpt_abort, e);
  rec_wait(s->npes);
  if (s->sync_waiter != nullptr) {
    ult::Thread* t = s->sync_waiter;
    s->sync_waiter = nullptr;
    converse::ready_thread(t);
  }
}

/// Recovery coordinator: runs as a ULT on PE0, spawned by the detector.
void recovery_main() {
  FtState* s = g_state;
  const int v = s->victim;
  const int npes = s->npes;
  trace::emit_flight(trace::Ev::kFtRecoveryBegin, 0, 0, 0,
                     static_cast<std::int16_t>(v));
  s->recoveries.fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kFtRecoveries);

  // Revive: the machine clears the dead flag; the on_revive hook wipes the
  // victim's application state and checkpoint store (emulated memory loss)
  // on its own thread before the death backlog drains.
  converse::revive_pe(v);

  // Let the backlog (and anything the survivors still had in flight toward
  // the victim) drain to a consistent wedged state. Thread images shipped
  // into the dead window unpack and park here; the rollback below discards
  // them along with everything else.
  converse::wait_quiescence();

  abort_async_epoch();

  // Refill the victim's checkpoint store from the two surviving copies.
  ft_send(buddy_of(v), h_refill_own, std::int32_t{v});
  ft_send(pred_of(v), h_refill_buddy, std::int32_t{v});
  rec_wait(2);

  // Rollback phase A: every PE discards its live application state. The
  // barrier before phase B guarantees no PE restores a checkpoint image
  // while another PE's live copy still occupies the same isomalloc slots.
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_discard, AckMsg{});
  rec_wait(npes);

  // Rollback phase B: every PE rebuilds from its local blob.
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_restore, s->epoch);
  rec_wait(npes);

  if (s->hooks.on_recovered) s->hooks.on_recovered(s->epoch);

  // Re-arm the detector only now: pong deadlines measured across the
  // rollback would instantly re-accuse a healthy PE.
  const auto now = Clock::now();
  s->last_pong.assign(static_cast<std::size_t>(npes), now);
  s->last_ping = now;
  s->victim = -1;
  s->recovering = false;
  trace::emit_flight(trace::Ev::kFtRecoveryEnd, s->epoch);
}

/// Process-tier recovery coordinator: runs as a ULT on PE 0, spawned by the
/// detector when a whole process is reaped. The shape mirrors recovery_main
/// with three differences: the corpse is respawned (not just revived), the
/// quiescence wave runs in drain mode (messages the dead incarnation held
/// are gone forever, so the exact send==delivered ledger is rebased instead
/// of awaited), and all ppn lost PEs refill at once — legal because the
/// process-disjoint buddy stride puts every victim's blob in process p+1
/// and every buddy copy it held in process p-1, both survivors.
void proc_recovery_main() {
  FtState* s = g_state;
  const int p = s->victim_proc;
  const int npes = s->npes;
  const int ppn = s->ppn;
  const int lo = p * ppn;
  trace::emit_flight(trace::Ev::kFtRecoveryBegin, static_cast<std::uint64_t>(p),
                     1, 0, static_cast<std::int16_t>(lo));
  s->recoveries.fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kFtRecoveries);

  // Respawn: the zygote forks a fresh incarnation of process p from its
  // pristine pre-fork image and swaps fresh wire streams into every
  // survivor. Yield-poll the completion mailbox — PE 0's scheduler keeps
  // draining handlers (pongs, app traffic) between polls.
  converse::request_respawn(p);
  while (!converse::take_respawn_complete(p)) ult::yield();

  // The respawned incarnation boots with all its PEs dead. Revive them:
  // each revive rides the fresh ordered stream, so the machine's wipe runs
  // on the new incarnation before any refill below can land there.
  for (int v = lo; v < lo + ppn; ++v) converse::revive_pe(v);

  // Drain-mode quiescence: messages the dead incarnation had sent or
  // absorbed are lost, so exact send==delivered can never balance again.
  // The drain wave instead waits for transport-idle plus stable counters
  // and rebases the ledger's compensation term for future exact waves.
  converse::begin_qd_drain();
  converse::wait_quiescence();
  converse::end_qd_drain();

  abort_async_epoch();

  // Refill every lost PE's store: its own blob from its buddy (process
  // p+1) and the buddy copy it held for its predecessor (process p-1).
  for (int v = lo; v < lo + ppn; ++v) {
    ft_send(buddy_of(v), h_refill_own, std::int32_t{v});
    ft_send(pred_of(v), h_refill_buddy, std::int32_t{v});
  }
  rec_wait(2 * ppn);

  // Rollback phases A and B, exactly as in the PE tier.
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_discard, AckMsg{});
  rec_wait(npes);
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_restore, s->epoch);
  rec_wait(npes);

  if (s->hooks.on_recovered) s->hooks.on_recovered(s->epoch);

  const auto now = Clock::now();
  s->last_pong.assign(static_cast<std::size_t>(npes), now);
  s->last_ping = now;
  s->escalated[static_cast<std::size_t>(p)] = 0;
  s->victim_proc = -1;
  s->recovering = false;
  trace::emit_flight(trace::Ev::kFtRecoveryEnd, s->epoch);
}

// ---- Machine hooks ----------------------------------------------------------

void on_revive(int pe) {
  FtState* s = g_state;
  PeStore& st = s->store[static_cast<std::size_t>(pe)];
  st = PeStore{};  // the failure lost both blobs (and any staging) it held
  if (s->hooks.wipe) s->hooks.wipe(pe);
}

void register_ft_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_ping = converse::register_handler(handle_ping);
    h_pong = converse::register_handler(handle_pong);
    h_capture = converse::register_handler(handle_capture);
    h_store = converse::register_handler(handle_store);
    h_ckpt_ack = converse::register_handler(handle_ckpt_ack);
    h_commit = converse::register_handler(handle_commit);
    h_chunk = converse::register_handler(handle_chunk);
    h_pump = converse::register_handler(handle_pump);
    h_ckpt_abort = converse::register_handler(handle_ckpt_abort);
    h_refill_own = converse::register_handler(handle_refill_own);
    h_refill_buddy = converse::register_handler(handle_refill_buddy);
    h_take_own = converse::register_handler(handle_take_own);
    h_take_buddy = converse::register_handler(handle_take_buddy);
    h_discard = converse::register_handler(handle_discard);
    h_restore = converse::register_handler(handle_restore);
    h_rec_ack = converse::register_handler(handle_rec_ack);
  });
}

/// Reads a millisecond-valued detector override from the environment.
/// Returns `fallback_us` when the variable is unset; otherwise the value in
/// microseconds. Rejects garbage and out-of-range settings outright — a
/// silently-misparsed timeout would turn into false-positive rollbacks.
std::uint64_t detector_env_us(const char* name, std::uint64_t fallback_us) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback_us;
  char* end = nullptr;
  errno = 0;
  const unsigned long long ms = std::strtoull(v, &end, 10);
  MFC_CHECK_MSG(errno == 0 && end != v && *end == '\0',
                "ft: detector override is not a plain integer (milliseconds)");
  MFC_CHECK_MSG(ms >= 1 && ms <= 600000,
                "ft: detector override out of range [1, 600000] ms");
  return ms * 1000;
}

}  // namespace

void install(int npes, Hooks hooks) {
  MFC_CHECK_MSG(g_state == nullptr, "ft::install called twice");
  MFC_CHECK_MSG(npes >= 2, "buddy checkpointing needs at least 2 PEs");
  MFC_CHECK(hooks.capture && hooks.restore);
  register_ft_handlers();
  hooks.ping_interval_us =
      detector_env_us("MFC_FT_PERIOD_MS", hooks.ping_interval_us);
  hooks.timeout_us = detector_env_us("MFC_FT_TIMEOUT_MS", hooks.timeout_us);
  MFC_CHECK_MSG(hooks.ping_interval_us < hooks.timeout_us,
                "ft: heartbeat period must be shorter than the timeout");
  MFC_LOG_INFO("ft: heartbeat period %llu us, timeout %llu us",
               static_cast<unsigned long long>(hooks.ping_interval_us),
               static_cast<unsigned long long>(hooks.timeout_us));
  g_state = new FtState;
  g_state->npes = npes;
  g_state->hooks = std::move(hooks);
  g_state->store.resize(static_cast<std::size_t>(npes));
  converse::FtMachineHooks mh;
  mh.pe0_tick = [] { tick(); };
  mh.on_revive = [](int pe) { on_revive(pe); };
  converse::set_ft_machine_hooks(std::move(mh));
}

void uninstall() {
  MFC_CHECK_MSG(g_state != nullptr, "ft::uninstall without install");
  converse::clear_ft_machine_hooks();
  delete g_state;
  g_state = nullptr;
}

bool active() { return g_state != nullptr; }

std::uint64_t checkpoint_now(CkptMode mode) {
  FtState* s = g_state;
  MFC_CHECK_MSG(s != nullptr, "ft: checkpoint_now without install");
  MFC_CHECK_MSG(converse::my_pe() == 0 &&
                    converse::pe_scheduler().in_thread(),
                "ft: checkpoint_now must run in a ULT on PE 0");
  MFC_CHECK_MSG(!s->recovering, "ft: checkpoint during recovery");
  if (s->async_inflight) checkpoint_sync();  // one epoch in flight at a time
  converse::wait_quiescence();
  trace::emit_flight(trace::Ev::kFtCheckpointBegin, s->epoch + 1);
  const std::uint64_t e = s->epoch + 1;
  s->pending_epoch = e;
  s->pending_mode = mode;
  s->ckpt_attempt += 1;
  s->capture_acks = s->npes;
  s->store_acks = s->npes;
  s->ckpt_bytes = 0;
  s->async_inflight = (mode == CkptMode::kAsync);
  s->ckpt_waiter = converse::pe_scheduler().running();
  for (int pe = 0; pe < s->npes; ++pe) {
    ft_send(pe, h_capture,
            CaptureMsg{e, static_cast<std::uint8_t>(mode), s->ckpt_attempt});
  }
  ult::suspend();
  // kFull/kIncremental resume with all 2·npes acks in: commit now, still
  // inside the exclusive window. kAsync resumes after the npes capture
  // acks; its commit runs from the ack handler once the stores drain.
  if (mode != CkptMode::kAsync) commit_epoch();
  return e;
}

std::uint64_t checkpoint_sync() {
  FtState* s = g_state;
  MFC_CHECK_MSG(s != nullptr, "ft: checkpoint_sync without install");
  if (!s->async_inflight) return s->epoch;
  MFC_CHECK_MSG(converse::my_pe() == 0 &&
                    converse::pe_scheduler().in_thread(),
                "ft: checkpoint_sync must run in a ULT on PE 0");
  MFC_CHECK_MSG(s->sync_waiter == nullptr, "ft: concurrent checkpoint_sync");
  s->sync_waiter = converse::pe_scheduler().running();
  ult::suspend();
  return s->epoch;
}

void kill_pe(int pe) {
  FtState* s = g_state;
  MFC_CHECK_MSG(s != nullptr, "ft: kill_pe without install");
  s->kills.fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kFtKills);
  trace::emit_flight(trace::Ev::kFtKill, 0, 0, 0, static_cast<std::int16_t>(pe));
  // Failure trigger: freeze and dump the flight recorder (first kill wins;
  // the dump covers the run's recent history even with MFC_TRACE off).
  trace::flight::dump("ft-kill");
  converse::kill_pe(pe);
}

int buddy_of(int pe) {
  MFC_CHECK(g_state != nullptr);
  // Process-disjoint placement: a stride of PEs-per-process lands every
  // buddy in the next process over, so losing one whole process never
  // destroys both copies of any blob. Single-process keeps the classic
  // ring neighbor.
  return (pe + buddy_stride()) % g_state->npes;
}

std::uint64_t epochs() { return g_state != nullptr ? g_state->epoch : 0; }
std::uint64_t kills() {
  return g_state != nullptr ? g_state->kills.load() : 0;
}
std::uint64_t detections() {
  return g_state != nullptr ? g_state->detections.load() : 0;
}
std::uint64_t recoveries() {
  return g_state != nullptr ? g_state->recoveries.load() : 0;
}

}  // namespace mfc::ft
