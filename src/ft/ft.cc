#include "ft/ft.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "converse/machine.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "ult/scheduler.h"
#include "util/check.h"

namespace mfc::ft {
namespace {

using Clock = std::chrono::steady_clock;

/// One PE's slot in the double in-memory checkpoint store. Touched only by
/// the owning PE's kernel thread (capture/store/refill handlers and the
/// revival wipe all run there), so no lock is needed.
struct PeStore {
  std::uint64_t own_epoch = 0;     ///< epoch of `own` (0 = empty)
  std::vector<char> own;           ///< this PE's blob (local copy)
  std::int32_t buddy_src = -1;     ///< whose blob `buddy` is
  std::uint64_t buddy_epoch = 0;
  std::vector<char> buddy;         ///< the predecessor's blob (buddy copy)
};

struct FtState {
  int npes = 0;
  Hooks hooks;
  std::vector<PeStore> store;

  // ---- PE0-only protocol state (detector tick, checkpoint driver, and
  // recovery coordinator all run on PE0's kernel thread) ----
  std::uint64_t epoch = 0;          ///< last committed checkpoint epoch
  int ckpt_acks = 0;
  std::uint64_t ckpt_bytes = 0;     ///< local-copy bytes this epoch
  ult::Thread* ckpt_waiter = nullptr;

  bool clock_init = false;
  Clock::time_point last_ping;
  std::vector<Clock::time_point> last_pong;
  bool recovering = false;
  int victim = -1;
  int rec_acks = 0;
  ult::Thread* rec_waiter = nullptr;

  std::atomic<std::uint64_t> kills{0};
  std::atomic<std::uint64_t> detections{0};
  std::atomic<std::uint64_t> recoveries{0};
};

FtState* g_state = nullptr;

converse::HandlerId h_ping, h_pong, h_capture, h_store, h_ckpt_ack,
    h_refill_own, h_refill_buddy, h_take_own, h_take_buddy, h_discard,
    h_restore, h_rec_ack;

// ---- Wire messages ----------------------------------------------------------

struct BlobMsg {
  std::int32_t src = -1;
  std::uint64_t epoch = 0;
  std::vector<char> blob;
  void pup(pup::Er& p) { p | src | epoch | blob; }
};

struct AckMsg {
  std::uint64_t bytes = 0;
  void pup(pup::Er& p) { p | bytes; }
};

/// Every FT protocol send goes through here so the send is counted in the
/// quiescence-exempt pair (handlers count the matching delivery first
/// thing); see app_sent()/app_delivered() in machine.cc.
template <typename T>
void ft_send(int pe, converse::HandlerId h, const T& value) {
  metrics::bump(metrics::Counter::kFtSent);
  converse::send_value(pe, h, value);
}

void count_delivery() { metrics::bump(metrics::Counter::kFtDelivered); }

// ---- Checkpoint -------------------------------------------------------------

void handle_capture(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  const int me = converse::my_pe();
  std::vector<char> blob = s->hooks.capture(epoch);
  const std::uint64_t bytes = blob.size();
  PeStore& st = s->store[static_cast<std::size_t>(me)];
  st.own_epoch = epoch;
  st.own = blob;  // keep the copy: the send below moves the original
  ft_send(buddy_of(me), h_store, BlobMsg{me, epoch, std::move(blob)});
  ft_send(0, h_ckpt_ack, AckMsg{bytes});
}

void handle_store(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto bm = m.as<BlobMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.buddy_src = bm.src;
  st.buddy_epoch = bm.epoch;
  st.buddy = std::move(bm.blob);
  ft_send(0, h_ckpt_ack, AckMsg{0});
}

void handle_ckpt_ack(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  s->ckpt_bytes += m.as<AckMsg>().bytes;
  if (--s->ckpt_acks == 0 && s->ckpt_waiter != nullptr) {
    ult::Thread* t = s->ckpt_waiter;
    s->ckpt_waiter = nullptr;
    converse::ready_thread(t);
  }
}

// ---- Detector ---------------------------------------------------------------

void handle_ping(converse::Message&&) {
  count_delivery();
  ft_send(0, h_pong, std::int32_t{converse::my_pe()});
}

void handle_pong(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto pe = m.as<std::int32_t>();
  if (pe >= 1 && pe < s->npes) {
    s->last_pong[static_cast<std::size_t>(pe)] = Clock::now();
  }
}

void recovery_main();

/// PE0 scheduler-loop tick: heartbeat pings out, pong deadlines checked.
/// Deliberately ignorant of the machine's dead flags — the acceptance bar
/// is that recovery is *detector*-triggered, so the only death signal used
/// here is a missed pong.
void tick() {
  FtState* s = g_state;
  const auto now = Clock::now();
  if (!s->clock_init) {
    s->clock_init = true;
    s->last_ping = now;
    s->last_pong.assign(static_cast<std::size_t>(s->npes), now);
    return;
  }
  if (s->recovering) return;
  if (now - s->last_ping >=
      std::chrono::microseconds(s->hooks.ping_interval_us)) {
    s->last_ping = now;
    for (int pe = 1; pe < s->npes; ++pe) {
      ft_send(pe, h_ping, std::int32_t{pe});
    }
  }
  const auto deadline = std::chrono::microseconds(s->hooks.timeout_us);
  for (int pe = 1; pe < s->npes; ++pe) {
    if (now - s->last_pong[static_cast<std::size_t>(pe)] <= deadline) continue;
    s->recovering = true;
    s->victim = pe;
    s->detections.fetch_add(1, std::memory_order_relaxed);
    metrics::bump(metrics::Counter::kFtDetections);
    trace::emit(trace::Ev::kFtDetect, 0, 0, 0, static_cast<std::int16_t>(pe));
    if (s->hooks.on_detect) s->hooks.on_detect(pe);
    ult::spawn([] { recovery_main(); });
    break;  // single-failure model: one recovery at a time
  }
}

// ---- Recovery ---------------------------------------------------------------

void handle_refill_own(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto victim = m.as<std::int32_t>();
  // This PE is the victim's buddy: the copy it holds IS the victim's blob.
  const PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  MFC_CHECK_MSG(st.buddy_src == victim && !st.buddy.empty(),
                "ft: buddy store does not hold the victim's checkpoint");
  ft_send(victim, h_take_own, BlobMsg{victim, st.buddy_epoch, st.buddy});
}

void handle_refill_buddy(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto victim = m.as<std::int32_t>();
  // This PE is the victim's predecessor: re-send its own blob so the victim
  // again holds the buddy copy it lost.
  const int me = converse::my_pe();
  const PeStore& st = s->store[static_cast<std::size_t>(me)];
  MFC_CHECK_MSG(st.own_epoch != 0, "ft: predecessor has no checkpoint");
  ft_send(victim, h_take_buddy, BlobMsg{me, st.own_epoch, st.own});
}

void handle_take_own(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto bm = m.as<BlobMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.own_epoch = bm.epoch;
  st.own = std::move(bm.blob);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_take_buddy(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  auto bm = m.as<BlobMsg>();
  PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  st.buddy_src = bm.src;
  st.buddy_epoch = bm.epoch;
  st.buddy = std::move(bm.blob);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_discard(converse::Message&&) {
  count_delivery();
  FtState* s = g_state;
  if (s->hooks.discard) s->hooks.discard();
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_restore(converse::Message&& m) {
  count_delivery();
  FtState* s = g_state;
  const auto epoch = m.as<std::uint64_t>();
  const PeStore& st = s->store[static_cast<std::size_t>(converse::my_pe())];
  MFC_CHECK_MSG(st.own_epoch == epoch,
                "ft: restore epoch does not match this PE's checkpoint");
  s->hooks.restore(epoch, st.own);
  ft_send(0, h_rec_ack, AckMsg{});
}

void handle_rec_ack(converse::Message&&) {
  count_delivery();
  FtState* s = g_state;
  if (--s->rec_acks == 0 && s->rec_waiter != nullptr) {
    ult::Thread* t = s->rec_waiter;
    s->rec_waiter = nullptr;
    converse::ready_thread(t);
  }
}

/// Waits (in the recovery ULT) for `n` h_rec_ack messages.
void rec_wait(int n) {
  FtState* s = g_state;
  s->rec_acks = n;
  s->rec_waiter = converse::pe_scheduler().running();
  ult::suspend();
}

/// Recovery coordinator: runs as a ULT on PE0, spawned by the detector.
void recovery_main() {
  FtState* s = g_state;
  const int v = s->victim;
  const int npes = s->npes;
  trace::emit(trace::Ev::kFtRecoveryBegin, 0, 0, 0,
              static_cast<std::int16_t>(v));
  s->recoveries.fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kFtRecoveries);

  // Revive: the machine clears the dead flag; the on_revive hook wipes the
  // victim's application state and checkpoint store (emulated memory loss)
  // on its own thread before the death backlog drains.
  converse::revive_pe(v);

  // Let the backlog (and anything the survivors still had in flight toward
  // the victim) drain to a consistent wedged state. Thread images shipped
  // into the dead window unpack and park here; the rollback below discards
  // them along with everything else.
  converse::wait_quiescence();

  // Refill the victim's checkpoint store from the two surviving copies.
  ft_send(buddy_of(v), h_refill_own, std::int32_t{v});
  ft_send((v - 1 + npes) % npes, h_refill_buddy, std::int32_t{v});
  rec_wait(2);

  // Rollback phase A: every PE discards its live application state. The
  // barrier before phase B guarantees no PE restores a checkpoint image
  // while another PE's live copy still occupies the same isomalloc slots.
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_discard, AckMsg{});
  rec_wait(npes);

  // Rollback phase B: every PE rebuilds from its local blob.
  for (int pe = 0; pe < npes; ++pe) ft_send(pe, h_restore, s->epoch);
  rec_wait(npes);

  if (s->hooks.on_recovered) s->hooks.on_recovered(s->epoch);

  // Re-arm the detector only now: pong deadlines measured across the
  // rollback would instantly re-accuse a healthy PE.
  const auto now = Clock::now();
  s->last_pong.assign(static_cast<std::size_t>(npes), now);
  s->last_ping = now;
  s->victim = -1;
  s->recovering = false;
  trace::emit(trace::Ev::kFtRecoveryEnd, s->epoch);
}

// ---- Machine hooks ----------------------------------------------------------

void on_revive(int pe) {
  FtState* s = g_state;
  PeStore& st = s->store[static_cast<std::size_t>(pe)];
  st = PeStore{};  // the failure lost both blobs the PE held
  if (s->hooks.wipe) s->hooks.wipe(pe);
}

void register_ft_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_ping = converse::register_handler(handle_ping);
    h_pong = converse::register_handler(handle_pong);
    h_capture = converse::register_handler(handle_capture);
    h_store = converse::register_handler(handle_store);
    h_ckpt_ack = converse::register_handler(handle_ckpt_ack);
    h_refill_own = converse::register_handler(handle_refill_own);
    h_refill_buddy = converse::register_handler(handle_refill_buddy);
    h_take_own = converse::register_handler(handle_take_own);
    h_take_buddy = converse::register_handler(handle_take_buddy);
    h_discard = converse::register_handler(handle_discard);
    h_restore = converse::register_handler(handle_restore);
    h_rec_ack = converse::register_handler(handle_rec_ack);
  });
}

}  // namespace

void install(int npes, Hooks hooks) {
  MFC_CHECK_MSG(g_state == nullptr, "ft::install called twice");
  MFC_CHECK_MSG(npes >= 2, "buddy checkpointing needs at least 2 PEs");
  MFC_CHECK(hooks.capture && hooks.restore);
  register_ft_handlers();
  g_state = new FtState;
  g_state->npes = npes;
  g_state->hooks = std::move(hooks);
  g_state->store.resize(static_cast<std::size_t>(npes));
  converse::FtMachineHooks mh;
  mh.pe0_tick = [] { tick(); };
  mh.on_revive = [](int pe) { on_revive(pe); };
  converse::set_ft_machine_hooks(std::move(mh));
}

void uninstall() {
  MFC_CHECK_MSG(g_state != nullptr, "ft::uninstall without install");
  converse::clear_ft_machine_hooks();
  delete g_state;
  g_state = nullptr;
}

bool active() { return g_state != nullptr; }

std::uint64_t checkpoint_now() {
  FtState* s = g_state;
  MFC_CHECK_MSG(s != nullptr, "ft: checkpoint_now without install");
  MFC_CHECK_MSG(converse::my_pe() == 0 &&
                    converse::pe_scheduler().in_thread(),
                "ft: checkpoint_now must run in a ULT on PE 0");
  MFC_CHECK_MSG(!s->recovering, "ft: checkpoint during recovery");
  converse::wait_quiescence();
  trace::emit(trace::Ev::kFtCheckpointBegin, s->epoch + 1);
  ++s->epoch;
  s->ckpt_acks = 2 * s->npes;  // one capture ack + one buddy-store ack per PE
  s->ckpt_bytes = 0;
  s->ckpt_waiter = converse::pe_scheduler().running();
  for (int pe = 0; pe < s->npes; ++pe) ft_send(pe, h_capture, s->epoch);
  ult::suspend();
  metrics::bump(metrics::Counter::kFtCheckpoints);
  metrics::bump(metrics::Counter::kFtCheckpointBytes, s->ckpt_bytes);
  trace::emit(trace::Ev::kFtCheckpointEnd, s->epoch, 0,
              static_cast<std::uint32_t>(
                  s->ckpt_bytes > 0xffffffffu ? 0xffffffffu : s->ckpt_bytes));
  return s->epoch;
}

void kill_pe(int pe) {
  FtState* s = g_state;
  MFC_CHECK_MSG(s != nullptr, "ft: kill_pe without install");
  s->kills.fetch_add(1, std::memory_order_relaxed);
  metrics::bump(metrics::Counter::kFtKills);
  trace::emit(trace::Ev::kFtKill, 0, 0, 0, static_cast<std::int16_t>(pe));
  converse::kill_pe(pe);
}

int buddy_of(int pe) {
  MFC_CHECK(g_state != nullptr);
  return (pe + 1) % g_state->npes;
}

std::uint64_t epochs() { return g_state != nullptr ? g_state->epoch : 0; }
std::uint64_t kills() {
  return g_state != nullptr ? g_state->kills.load() : 0;
}
std::uint64_t detections() {
  return g_state != nullptr ? g_state->detections.load() : 0;
}
std::uint64_t recoveries() {
  return g_state != nullptr ? g_state->recoveries.load() : 0;
}

}  // namespace mfc::ft
