// Dirty-page tracking via an mprotect + SIGSEGV write barrier.
//
// The incremental checkpoint path needs to know which pages of a parked
// thread's isomalloc slots were written since the previous epoch, so a
// capture can reuse the previous epoch's gathered bytes for clean runs and
// re-copy only the touched ones. arm() write-protects every tracked range
// (PROT_READ); the first write to a page faults, the SIGSEGV handler marks
// the page's bit and restores PROT_READ|PROT_WRITE, and the write retries —
// one fault per touched page per epoch, no cost at all for clean pages.
//
// userfaultfd write-protect mode could do the same without taking signals;
// the probe (userfaultfd_wp_available) reports whether this kernel offers
// it, but the shipped barrier is the portable mprotect one — userfaultfd
// WP requires a reader thread and CAP_SYS_PTRACE-ish privileges on many
// configurations, which a library cannot assume.
//
// Rules:
//   - Ranges must be page-aligned (isomalloc slots are).
//   - bind_thread() must run once on every kernel thread that may touch a
//     protected range: faults on a protected ULT *stack* need an alternate
//     signal stack, or the kernel cannot even push the signal frame.
//   - untrack() before the underlying pages are unmapped or remapped
//     (iso::Region::evacuate does a MAP_FIXED mmap, which silently clears
//     page protection and would leave a stale registry entry).
//
// The fault handler is lock-free: it scans a fixed array of atomically
// published range slots and touches only atomics and mprotect. Faults that
// match no armed range chain to the previously installed handler (or the
// default action), so genuine crashes still crash.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfc::ft {

class DirtyTracker {
 public:
  struct Range;  // opaque outside pagetrack.cc (signal handler scans these)

  DirtyTracker() = default;
  ~DirtyTracker();
  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  static std::size_t page_bytes();

  /// Kernel support probe for the optional userfaultfd write-protect
  /// backend (reported in benchmarks/docs; the mprotect barrier is used
  /// regardless).
  static bool userfaultfd_wp_available();

  /// Installs this kernel thread's alternate signal stack. Idempotent.
  static void bind_thread();

  /// Registers a page-aligned range. No protection changes until arm().
  void track(void* base, std::size_t len);

  /// Deregisters the range starting at `base` (restores RW first if armed).
  void untrack(void* base);
  void untrack_all();
  bool tracking(const void* base) const;
  std::size_t tracked_ranges() const { return count_; }

  /// Write-protects every tracked range and clears all dirty bits.
  void arm();

  /// Restores RW on every tracked range; dirty bits remain readable until
  /// the next arm().
  void disarm();
  bool armed() const { return armed_; }

  /// Dirty-page count within [base, base+len) of a tracked range.
  std::size_t dirty_pages_in(const void* base, std::size_t len) const;
  bool any_dirty(const void* base, std::size_t len) const {
    return dirty_pages_in(base, len) != 0;
  }
  /// Dirty pages across all tracked ranges.
  std::size_t dirty_total() const;

 private:
  Range* find(const void* base) const;

  static constexpr std::size_t kMaxRanges = 1024;
  Range* ranges_[kMaxRanges] = {};
  std::size_t count_ = 0;
  bool armed_ = false;
};

}  // namespace mfc::ft
