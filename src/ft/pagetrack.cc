#include "ft/pagetrack.h"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>

#include "util/check.h"
#include "util/crc32.h"  // capability probes live with the other dispatchers

namespace mfc::ft {

struct DirtyTracker::Range {
  std::uintptr_t base = 0;
  std::size_t len = 0;
  std::size_t pages = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bits;  // 1 bit per page

  void clear_bits() {
    const std::size_t words = (pages + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      bits[w].store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

std::size_t page_size() {
  static const auto psz = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return psz;
}

// Registry the signal handler scans: fixed slots published/retired with
// atomic stores, never locked (the handler can run on any kernel thread at
// any moment). A slot holds an *armed* range only.
constexpr std::size_t kSlots = 4096;
std::atomic<DirtyTracker::Range*> g_slots[kSlots];
std::atomic<std::size_t> g_high_water{0};

struct sigaction g_prev_sigsegv;
std::atomic<bool> g_handler_installed{false};

void publish(DirtyTracker::Range* r) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    DirtyTracker::Range* expect = nullptr;
    if (g_slots[i].compare_exchange_strong(expect, r,
                                           std::memory_order_release)) {
      std::size_t hw = g_high_water.load(std::memory_order_relaxed);
      while (hw < i + 1 && !g_high_water.compare_exchange_weak(
                               hw, i + 1, std::memory_order_release)) {
      }
      return;
    }
  }
  MFC_CHECK_MSG(false, "dirty tracker: registry full");
}

void retire(DirtyTracker::Range* r) {
  const std::size_t hw = g_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    DirtyTracker::Range* expect = r;
    if (g_slots[i].compare_exchange_strong(expect, nullptr,
                                           std::memory_order_release)) {
      return;
    }
  }
}

void write_barrier_handler(int sig, siginfo_t* info, void* ctx) {
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  const std::size_t hw = g_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    DirtyTracker::Range* r = g_slots[i].load(std::memory_order_acquire);
    if (r == nullptr || addr < r->base || addr >= r->base + r->len) continue;
    const std::size_t page = (addr - r->base) / page_size();
    r->bits[page / 64].fetch_or(1ULL << (page % 64),
                                std::memory_order_relaxed);
    // Unprotect just this page and retry the faulting write.
    void* page_addr =
        reinterpret_cast<void*>(r->base + page * page_size());
    if (mprotect(page_addr, page_size(), PROT_READ | PROT_WRITE) == 0) {
      return;
    }
    break;  // mprotect failed — treat as a foreign fault
  }
  // Not one of ours: hand the fault to whoever was installed before us.
  // Reinstating the previous disposition and returning retries the fault
  // under that disposition (default action = die with the right si_addr).
  if ((g_prev_sigsegv.sa_flags & SA_SIGINFO) != 0 &&
      g_prev_sigsegv.sa_sigaction != nullptr) {
    g_prev_sigsegv.sa_sigaction(sig, info, ctx);
    return;
  }
  sigaction(SIGSEGV, &g_prev_sigsegv, nullptr);
}

void install_handler_once() {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = &write_barrier_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  MFC_CHECK(sigaction(SIGSEGV, &sa, &g_prev_sigsegv) == 0);
}

}  // namespace

std::size_t DirtyTracker::page_bytes() { return page_size(); }

bool DirtyTracker::userfaultfd_wp_available() {
  return mfc::detail::userfaultfd_wp_available();
}

void DirtyTracker::bind_thread() {
  // One alternate stack per kernel thread: a write fault on a protected ULT
  // stack cannot deliver a signal frame onto that same stack.
  thread_local std::unique_ptr<char[]> altstack;
  if (altstack) return;
  constexpr std::size_t bytes = 64 * 1024;
  altstack.reset(new char[bytes]);
  stack_t ss;
  ss.ss_sp = altstack.get();
  ss.ss_size = bytes;
  ss.ss_flags = 0;
  MFC_CHECK(sigaltstack(&ss, nullptr) == 0);
}

DirtyTracker::~DirtyTracker() {
  disarm();
  untrack_all();
}

DirtyTracker::Range* DirtyTracker::find(const void* base) const {
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  for (std::size_t i = 0; i < count_; ++i) {
    if (ranges_[i]->base == b) return ranges_[i];
  }
  return nullptr;
}

void DirtyTracker::track(void* base, std::size_t len) {
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  MFC_CHECK_MSG(b % page_size() == 0 && len % page_size() == 0 && len > 0,
                "dirty tracker ranges must be whole pages");
  MFC_CHECK_MSG(find(base) == nullptr, "range already tracked");
  MFC_CHECK_MSG(count_ < kMaxRanges, "dirty tracker: too many ranges");
  auto* r = new Range;
  r->base = b;
  r->len = len;
  r->pages = len / page_size();
  r->bits.reset(new std::atomic<std::uint64_t>[(r->pages + 63) / 64]);
  r->clear_bits();
  ranges_[count_++] = r;
  if (armed_) {
    install_handler_once();
    publish(r);
    MFC_CHECK(mprotect(base, len, PROT_READ) == 0);
  }
}

void DirtyTracker::untrack(void* base) {
  Range* r = find(base);
  MFC_CHECK_MSG(r != nullptr, "untrack of unknown range");
  if (armed_) {
    retire(r);
    MFC_CHECK(mprotect(reinterpret_cast<void*>(r->base), r->len,
                       PROT_READ | PROT_WRITE) == 0);
  }
  for (std::size_t i = 0; i < count_; ++i) {
    if (ranges_[i] == r) {
      ranges_[i] = ranges_[--count_];
      break;
    }
  }
  delete r;
}

void DirtyTracker::untrack_all() {
  while (count_ > 0) {
    untrack(reinterpret_cast<void*>(ranges_[count_ - 1]->base));
  }
}

bool DirtyTracker::tracking(const void* base) const {
  return find(base) != nullptr;
}

void DirtyTracker::arm() {
  if (armed_) disarm();
  install_handler_once();
  for (std::size_t i = 0; i < count_; ++i) {
    Range* r = ranges_[i];
    r->clear_bits();
    publish(r);
    MFC_CHECK(mprotect(reinterpret_cast<void*>(r->base), r->len, PROT_READ) ==
              0);
  }
  armed_ = true;
}

void DirtyTracker::disarm() {
  if (!armed_) return;
  for (std::size_t i = 0; i < count_; ++i) {
    Range* r = ranges_[i];
    retire(r);
    MFC_CHECK(mprotect(reinterpret_cast<void*>(r->base), r->len,
                       PROT_READ | PROT_WRITE) == 0);
  }
  armed_ = false;
}

std::size_t DirtyTracker::dirty_pages_in(const void* base,
                                         std::size_t len) const {
  if (len == 0) return 0;
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  for (std::size_t i = 0; i < count_; ++i) {
    const Range* r = ranges_[i];
    if (b < r->base || b + len > r->base + r->len) continue;
    const std::size_t first = (b - r->base) / page_size();
    const std::size_t last = (b + len - 1 - r->base) / page_size();
    std::size_t dirty = 0;
    for (std::size_t page = first; page <= last; ++page) {
      const std::uint64_t word =
          r->bits[page / 64].load(std::memory_order_relaxed);
      dirty += (word >> (page % 64)) & 1u;
    }
    return dirty;
  }
  MFC_CHECK_MSG(false, "dirty query outside any tracked range");
  return 0;
}

std::size_t DirtyTracker::dirty_total() const {
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Range* r = ranges_[i];
    dirty += dirty_pages_in(reinterpret_cast<const void*>(r->base), r->len);
  }
  return dirty;
}

}  // namespace mfc::ft
