// Automatic PE-failure recovery (paper §3 checkpoint/restart, extended with
// the double in-memory checkpointing protocol of Zheng, Shi & Kalé, "FTC-
// Charm++: An In-Memory Checkpoint-Based Fault Tolerant Runtime", and its
// ICPPW successor).
//
// The protocol in one paragraph: at a synchronized (quiescent) moment every
// PE packs its migratable threads and chare-array slice into one checkpoint
// blob — "checkpointing is simply migration to the local memory of a remote
// processor" — and stores it twice: locally and on its *buddy* PE. The
// buddy stride is process-disjoint: (pe + ppn) % npes under a multi-process
// machine (ppn = PEs per process), (pe + 1) % npes single-process — so the
// two copies of every blob always live in different OS processes and the
// loss of a whole process never destroys both. When the failure detector
// (heartbeat pings from PE 0) declares a PE dead, the recovery coordinator
// revives it with wiped memory, refills its checkpoint store from the buddy
// copies that survived, rolls every PE back to the last committed epoch,
// and resumes. One failure between consecutive checkpoints is survivable by
// construction: the lost PE's blob lives on its buddy, and the lost
// buddy-copy it held for its predecessor is re-sent from the predecessor's
// own local blob.
//
// Failures come in two tiers:
//   - PE tier: a kill_pe'd (or wedged) PE misses pongs; the detector
//     revives it in place and refills its store — the original FTC-Charm++
//     protocol.
//   - process tier: a whole OS process dies (SIGKILL, crash) or wedges
//     (every one of its PEs overdue at once, escalated to a kill). Proc 0
//     reaps the corpse, the pre-fork zygote forks a replacement from its
//     pristine image, survivors swap in fresh wire streams, and the
//     coordinator revives and refills all ppn lost PEs from their remote
//     buddies before the usual discard/restore rollback.
//
// Division of labor:
//   - machine layer (converse): kill/revive flags, the PE0 tick seam, the
//     pre-drain revival wipe callback — see FtMachineHooks in machine.h.
//   - this layer: checkpoint epochs, blob stores, heartbeat detector,
//     recovery coordinator, trace/metrics instrumentation.
//   - application (storm driver): the capture/wipe/discard/restore hooks
//     that know what the PE's state actually *is*.
//
// All FT protocol messages are quiescence-exempt: sends and deliveries are
// counted in a dedicated metrics pair that app_sent()/app_delivered()
// subtract, so heartbeats and checkpoint traffic never perturb the Mattern
// token ring the application's own barriers ride on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace mfc::ft {

/// Application seams. All callbacks run on the PE whose state they touch
/// (handler or scheduler context — they must not block).
struct Hooks {
  /// Serialize this PE's full application state for `epoch`. Runs under
  /// quiescence on every PE. The blob must be self-contained: restore()
  /// receives exactly these bytes.
  std::function<std::vector<char>(std::uint64_t epoch)> capture;

  /// Runs on a revived PE before its death-backlog drains: drop every piece
  /// of stale application state (the emulated "memory loss" of the failure).
  std::function<void(int pe)> wipe;

  /// Rollback phase A, every PE: discard current application state (pack-
  /// and-discard live threads, clear slices) WITHOUT restoring yet. The
  /// barrier between discard and restore guarantees no PE installs a
  /// checkpoint image while another PE's live copy still occupies the same
  /// isomalloc addresses.
  std::function<void()> discard;

  /// Rollback phase B, every PE: rebuild application state from the blob
  /// capture() produced for `epoch`.
  std::function<void(std::uint64_t epoch, const std::vector<char>& blob)>
      restore;

  /// PE 0, detector context: a failure was detected (before recovery runs).
  std::function<void(int victim)> on_detect;

  /// PE 0, recovery-thread context: rollback to `epoch` is complete on
  /// every PE; the application may resume driving.
  std::function<void(std::uint64_t epoch)> on_recovered;

  /// Heartbeat period (PE 0 → every other PE) in microseconds. The
  /// MFC_FT_PERIOD_MS environment variable (milliseconds) overrides this at
  /// install time.
  std::uint64_t ping_interval_us = 2000;

  /// Declare a PE dead after this long without a pong. Generous by default:
  /// a busy-but-alive PE (or a tsan-slowed one) must never be declared dead
  /// — a false positive rolls back a healthy machine. The MFC_FT_TIMEOUT_MS
  /// environment variable (milliseconds) overrides this at install time;
  /// install() validates period < timeout and logs the effective values.
  std::uint64_t timeout_us = 250000;
};

/// Installs the FT layer. Must be called before Machine::run (plugs the
/// machine hooks in) and paired with uninstall() after it returns. Requires
/// npes >= 2 (a buddy scheme needs a buddy).
void install(int npes, Hooks hooks);
void uninstall();
bool active();

/// How a checkpoint epoch ships its blobs to the buddies.
///
/// Every mode uses the same staged two-phase protocol: captures and buddy
/// stores land in *pending* slots, PE 0 collects the 2·npes acks (one
/// capture ack + one buddy-store ack per PE, exactly the PR 4 barrier), and
/// only then broadcasts a commit that atomically promotes pending → stored
/// on every PE. Per-sender FIFO makes the commit visible everywhere before
/// any later protocol message from PE 0, so a kill at any point leaves the
/// machine with a consistent last-committed epoch.
enum class CkptMode : std::uint8_t {
  /// Ship the whole blob, wait out all acks under the quiescent window.
  kFull = 0,
  /// Diff the new blob against the previous committed epoch (page-granular)
  /// and ship only the changed ranges; the buddy reconstructs and verifies
  /// the full blob's CRC-32C. Falls back to a full ship when there is no
  /// usable base or the delta would not be smaller.
  kIncremental = 1,
  /// Incremental, plus: the exclusive window ends as soon as every PE has
  /// captured (npes acks); the buddy ships stream in bounded chunks while
  /// the application runs, and the commit barrier completes asynchronously
  /// once the remaining npes store acks drain. checkpoint_now returns at
  /// the end of the capture window; checkpoint_sync() awaits the commit.
  /// A failure before commit aborts the epoch (pending and staged state
  /// discarded everywhere) and recovery rolls back to the previous
  /// committed epoch; the epoch number is reused on replay.
  kAsync = 2,
};

/// Synchronized checkpoint: brackets quiescence, captures every PE into
/// local + buddy stores, returns the epoch. Call from a ULT on PE 0 only
/// (typically the application's driver thread). For kFull/kIncremental the
/// epoch is committed on return; for kAsync it is committed once the
/// background stream drains (see checkpoint_sync).
std::uint64_t checkpoint_now(CkptMode mode);
inline std::uint64_t checkpoint_now() { return checkpoint_now(CkptMode::kFull); }

/// Waits until no checkpoint commit is in flight (kAsync epochs commit in
/// the background). Returns the last committed epoch. PE 0 ULT context.
/// No-op when nothing is pending.
std::uint64_t checkpoint_sync();

/// Injected failure: traces/counts the kill, then flips the machine-layer
/// dead flag. The detector — not the caller — notices and recovers.
/// Callable from any PE context, including the victim's own handlers.
void kill_pe(int pe);

/// The buddy that holds `pe`'s checkpoint blob: (pe + stride) % npes, where
/// the stride is the machine's PEs-per-process under a multi-process run
/// (process-disjoint placement) and 1 otherwise.
int buddy_of(int pe);

/// Protocol counters (valid during and after a run).
std::uint64_t epochs();
std::uint64_t kills();
std::uint64_t detections();
std::uint64_t recoveries();

}  // namespace mfc::ft
