// PUP (Pack/UnPack) framework — the paper's §3.1.1 mechanism for describing
// and shipping user-defined objects during migration and checkpointing.
//
// One traversal function describes an object's data; the same function is
// driven in three modes:
//   Sizer       — measures the packed size,
//   MemPacker   — writes the bytes into a buffer,
//   MemUnpacker — reads them back.
//
// Usage:
//   struct Particle {
//     double x, y, z; std::vector<int> bonds;
//     void pup(mfc::pup::Er& p) { p | x | y | z | bonds; }
//   };
//   auto bytes = mfc::pup::to_bytes(particle);
//   Particle q; mfc::pup::from_bytes(bytes, q);
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/crc32.h"

namespace mfc::pup {

class Er {
 public:
  enum class Mode { kSizing, kPacking, kUnpacking };

  virtual ~Er() = default;

  bool sizing() const { return mode_ == Mode::kSizing; }
  bool packing() const { return mode_ == Mode::kPacking; }
  bool unpacking() const { return mode_ == Mode::kUnpacking; }

  /// Processes `n` raw bytes at `data` (measured, copied out, or copied in
  /// depending on mode).
  virtual void bytes(void* data, std::size_t n) = 0;

 protected:
  explicit Er(Mode mode) : mode_(mode) {}

 private:
  Mode mode_;
};

class Sizer final : public Er {
 public:
  Sizer() : Er(Mode::kSizing) {}
  void bytes(void*, std::size_t n) override { total_ += n; }
  std::size_t size() const { return total_; }

 private:
  std::size_t total_ = 0;
};

class MemPacker final : public Er {
 public:
  /// `buf` must have room for the Sizer-measured size.
  MemPacker(void* buf, std::size_t capacity)
      : Er(Mode::kPacking), cur_(static_cast<char*>(buf)),
        end_(cur_ + capacity) {}

  void bytes(void* data, std::size_t n) override {
    MFC_CHECK_MSG(cur_ + n <= end_, "pup pack overflow");
    std::memcpy(cur_, data, n);
    cur_ += n;
  }

  std::size_t written(const void* buf) const {
    return static_cast<std::size_t>(cur_ - static_cast<const char*>(buf));
  }

 private:
  char* cur_;
  char* end_;
};

class MemUnpacker final : public Er {
 public:
  MemUnpacker(const void* buf, std::size_t size)
      : Er(Mode::kUnpacking), cur_(static_cast<const char*>(buf)),
        end_(cur_ + size) {}

  void bytes(void* data, std::size_t n) override {
    MFC_CHECK_MSG(cur_ + n <= end_, "pup unpack underflow");
    std::memcpy(data, cur_, n);
    cur_ += n;
  }

  std::size_t consumed(const void* buf) const {
    return static_cast<std::size_t>(cur_ - static_cast<const char*>(buf));
  }

 private:
  const char* cur_;
  const char* end_;
};

/// Single-traversal size+pack: appends into a growing vector, so callers
/// that don't need an exact-size buffer up front skip the Sizer walk
/// entirely — one traversal instead of two. Byte output is identical to
/// Sizer+MemPacker because the traversal and append order are the same.
class VecPacker final : public Er {
 public:
  /// Appends to `out` (existing contents are kept). `reserve_hint` presizes
  /// the vector to avoid growth reallocations when the caller can guess.
  explicit VecPacker(std::vector<char>& out, std::size_t reserve_hint = 0)
      : Er(Mode::kPacking), out_(out) {
    if (reserve_hint) out_.reserve(out_.size() + reserve_hint);
  }

  void bytes(void* data, std::size_t n) override {
    const char* p = static_cast<const char*>(data);
    out_.insert(out_.end(), p, p + n);
  }

 private:
  std::vector<char>& out_;
};

/// MemPacker that folds a streaming CRC-32C over every byte it writes, in
/// the same pass as the copy. This is the "incremental CRC per iovec"
/// primitive: the checkpoint gather path drives one CrcMemPacker over the
/// manifest and gets the frame payload and its checksum from a single walk
/// over the source memory.
class CrcMemPacker final : public Er {
 public:
  /// Folds into `acc` when given (letting one CRC span several packers in a
  /// larger stream, e.g. a checkpoint frame), else into an internal one.
  CrcMemPacker(void* buf, std::size_t capacity, Crc32* acc = nullptr)
      : Er(Mode::kPacking), cur_(static_cast<char*>(buf)),
        end_(cur_ + capacity), crc_(acc != nullptr ? acc : &own_) {}

  void bytes(void* data, std::size_t n) override {
    MFC_CHECK_MSG(cur_ + n <= end_, "pup pack overflow");
    std::memcpy(cur_, data, n);
    crc_->update(cur_, n);
    cur_ += n;
  }

  std::size_t written(const void* buf) const {
    return static_cast<std::size_t>(cur_ - static_cast<const char*>(buf));
  }
  std::uint32_t crc() const { return crc_->value(); }

 private:
  char* cur_;
  char* end_;
  Crc32 own_;
  Crc32* crc_;
};

// ---- pup() overload set ----------------------------------------------------

/// A type with a member `void pup(Er&)`.
template <typename T>
concept HasMemberPup = requires(T t, Er& p) { t.pup(p); };

/// Trivially copyable scalars/aggregates without a member pup() go through
/// raw bytes.
template <typename T>
  requires(std::is_trivially_copyable_v<T> && !HasMemberPup<T>)
void pup(Er& p, T& value) {
  p.bytes(&value, sizeof value);
}

template <HasMemberPup T>
void pup(Er& p, T& value) {
  value.pup(p);
}

inline void pup(Er& p, std::string& s) {
  std::size_t n = s.size();
  p.bytes(&n, sizeof n);
  if (p.unpacking()) s.resize(n);
  if (n) p.bytes(s.data(), n);
}

template <typename T>
Er& operator|(Er& p, T& value) {
  pup(p, value);
  return p;
}

/// Raw buffer of caller-managed size.
inline void pup_bytes(Er& p, void* data, std::size_t n) { p.bytes(data, n); }

template <typename T>
void pup(Er& p, std::vector<T>& v) {
  std::size_t n = v.size();
  p.bytes(&n, sizeof n);
  if (p.unpacking()) v.resize(n);
  if constexpr (std::is_trivially_copyable_v<T> && !HasMemberPup<T>) {
    if (n) p.bytes(v.data(), n * sizeof(T));
  } else {
    for (auto& e : v) pup(p, e);
  }
}

template <typename T>
void pup(Er& p, std::deque<T>& d) {
  std::size_t n = d.size();
  p.bytes(&n, sizeof n);
  if (p.unpacking()) d.resize(n);
  for (auto& e : d) pup(p, e);
}

template <typename T, std::size_t N>
void pup(Er& p, std::array<T, N>& a) {
  if constexpr (std::is_trivially_copyable_v<T> && !HasMemberPup<T>) {
    p.bytes(a.data(), N * sizeof(T));
  } else {
    for (auto& e : a) pup(p, e);
  }
}

template <typename A, typename B>
void pup(Er& p, std::pair<A, B>& pr) {
  pup(p, pr.first);
  pup(p, pr.second);
}

template <typename T>
void pup(Er& p, std::optional<T>& o) {
  bool has = o.has_value();
  p.bytes(&has, sizeof has);
  if (p.unpacking()) {
    if (has && !o.has_value()) o.emplace();
    if (!has) o.reset();
  }
  if (has) pup(p, *o);
}

namespace detail {
template <typename Map>
void pup_map(Er& p, Map& m) {
  std::size_t n = m.size();
  p.bytes(&n, sizeof n);
  if (p.unpacking()) {
    m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      typename Map::key_type k{};
      typename Map::mapped_type v{};
      pup(p, k);
      pup(p, v);
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    for (auto& [k, v] : m) {
      auto key = k;  // keys are const in-place; pack a copy
      pup(p, key);
      pup(p, v);
    }
  }
}
}  // namespace detail

template <typename K, typename V, typename C, typename A>
void pup(Er& p, std::map<K, V, C, A>& m) {
  detail::pup_map(p, m);
}

template <typename K, typename V, typename H, typename E, typename A>
void pup(Er& p, std::unordered_map<K, V, H, E, A>& m) {
  detail::pup_map(p, m);
}

// ---- Convenience round-trip helpers ----------------------------------------

// Sizing and packing never mutate the value, so these accept const and
// cast internally (the pup() traversal signature must stay non-const
// because the same function also drives unpacking).
template <typename T>
std::size_t packed_size(const T& value) {
  Sizer s;
  pup(s, const_cast<T&>(value));
  return s.size();
}

template <typename T>
std::vector<char> to_bytes(const T& value) {
  std::vector<char> buf(packed_size(value));
  MemPacker packer(buf.data(), buf.size());
  pup(packer, const_cast<T&>(value));
  return buf;
}

/// Single-traversal variant of to_bytes(): no sizing pass, bytes appended
/// as the traversal runs. Identical output; preferable for large or deeply
/// nested objects where walking the structure twice doubles the cost.
template <typename T>
std::vector<char> to_bytes_onepass(const T& value,
                                   std::size_t reserve_hint = 0) {
  std::vector<char> buf;
  VecPacker packer(buf, reserve_hint);
  pup(packer, const_cast<T&>(value));
  return buf;
}

template <typename T>
void from_bytes(const std::vector<char>& buf, T& out) {
  MemUnpacker unpacker(buf.data(), buf.size());
  pup(unpacker, out);
}

}  // namespace mfc::pup
