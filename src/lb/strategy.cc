#include "lb/strategy.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mfc::lb {

namespace {

void check_args(const std::vector<double>& loads, const Mapping& current,
                int npes) {
  MFC_CHECK(npes >= 1);
  MFC_CHECK(loads.size() == current.size());
  for (int pe : current) MFC_CHECK(pe >= 0 && pe < npes);
}

}  // namespace

Mapping null_lb(const std::vector<double>& loads, const Mapping& current,
                int npes) {
  check_args(loads, current, npes);
  return current;
}

Mapping greedy_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes) {
  check_args(loads, current, npes);
  const std::size_t n = loads.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return loads[a] > loads[b];
  });

  // Min-heap of (pe_load, pe).
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int pe = 0; pe < npes; ++pe) heap.emplace(0.0, pe);

  Mapping mapping(n);
  for (std::size_t obj : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    mapping[obj] = pe;
    heap.emplace(load + loads[obj], pe);
  }
  return mapping;
}

Mapping refine_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes, double tolerance) {
  check_args(loads, current, npes);
  Mapping mapping = current;
  std::vector<double> pe_load = pe_loads(loads, mapping, npes);
  const double total = std::accumulate(pe_load.begin(), pe_load.end(), 0.0);
  const double target = tolerance * total / npes;

  // Objects on each PE, heaviest first, so we move few, large objects.
  std::vector<std::vector<std::size_t>> objs_on(
      static_cast<std::size_t>(npes));
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    objs_on[static_cast<std::size_t>(mapping[i])].push_back(i);
  }
  for (auto& v : objs_on) {
    std::stable_sort(v.begin(), v.end(), [&](std::size_t a, std::size_t b) {
      return loads[a] > loads[b];
    });
  }

  for (int pe = 0; pe < npes; ++pe) {
    auto& mine = objs_on[static_cast<std::size_t>(pe)];
    std::size_t next = 0;
    while (pe_load[static_cast<std::size_t>(pe)] > target &&
           next < mine.size()) {
      const std::size_t obj = mine[next++];
      // Move to the currently lightest PE, if that actually helps.
      const auto lightest = static_cast<int>(
          std::min_element(pe_load.begin(), pe_load.end()) - pe_load.begin());
      if (lightest == pe) break;
      if (pe_load[static_cast<std::size_t>(lightest)] + loads[obj] >=
          pe_load[static_cast<std::size_t>(pe)]) {
        continue;  // moving this object would not reduce the maximum
      }
      mapping[obj] = lightest;
      pe_load[static_cast<std::size_t>(pe)] -= loads[obj];
      pe_load[static_cast<std::size_t>(lightest)] += loads[obj];
    }
  }
  return mapping;
}

Mapping random_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes, std::uint64_t seed) {
  check_args(loads, current, npes);
  SplitMix64 rng(seed);
  Mapping mapping(current.size());
  for (auto& pe : mapping) {
    pe = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(npes)));
  }
  return mapping;
}

Mapping rotate_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes) {
  check_args(loads, current, npes);
  Mapping mapping = current;
  for (auto& pe : mapping) pe = (pe + 1) % npes;
  return mapping;
}

std::vector<double> pe_loads(const std::vector<double>& loads,
                             const Mapping& mapping, int npes) {
  std::vector<double> totals(static_cast<std::size_t>(npes), 0.0);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    totals[static_cast<std::size_t>(mapping[i])] += loads[i];
  }
  return totals;
}

double mapping_imbalance(const std::vector<double>& loads,
                         const Mapping& mapping, int npes) {
  return imbalance_ratio(pe_loads(loads, mapping, npes));
}

int migration_count(const Mapping& before, const Mapping& after) {
  MFC_CHECK(before.size() == after.size());
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++moved;
  }
  return moved;
}

Strategy strategy_by_name(const std::string& name) {
  if (name == "null") return null_lb;
  if (name == "greedy") return greedy_lb;
  if (name == "refine") {
    return [](const std::vector<double>& l, const Mapping& c, int p) {
      return refine_lb(l, c, p);
    };
  }
  if (name == "random") {
    return [](const std::vector<double>& l, const Mapping& c, int p) {
      return random_lb(l, c, p);
    };
  }
  if (name == "rotate") return rotate_lb;
  MFC_CHECK_MSG(false, "unknown LB strategy name");
  return nullptr;
}

}  // namespace mfc::lb
