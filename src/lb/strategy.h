// Load-balancing strategies (paper §3, §4.5).
//
// A strategy maps N work objects (threads, chares, AMPI ranks) with measured
// loads onto P processors. Strategies are pure functions of the measured
// load vector and the current placement, so they are unit-testable in
// isolation and shared between the AMPI thread balancer and the chare-array
// balancer. This mirrors the Charm++ structure: measurement in the runtime,
// decisions in pluggable strategies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mfc::lb {

/// New placement for each object: result[i] = destination PE of object i.
using Mapping = std::vector<int>;

/// Strategy signature shared with the AMPI runtime: per-object loads
/// (seconds), current placement, and processor count.
using Strategy = std::function<Mapping(const std::vector<double>& loads,
                                       const Mapping& current, int npes)>;

/// Leaves every object where it is (the "no LB" baseline in Figure 12).
Mapping null_lb(const std::vector<double>& loads, const Mapping& current,
                int npes);

/// Classic greedy: objects in decreasing load order, each to the currently
/// least-loaded PE. Produces near-optimal balance but ignores migration
/// cost (may move almost everything).
Mapping greedy_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes);

/// Refinement: moves objects away from overloaded PEs (load > tolerance ×
/// average) onto the least-loaded PEs, preferring to keep objects in place.
/// Fewer migrations than greedy at slightly worse balance.
Mapping refine_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes, double tolerance = 1.02);

/// Uniform-random placement (a stress-test baseline, not a real balancer).
Mapping random_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes, std::uint64_t seed = 1);

/// Cyclic shift: object on PE p moves to (p+1) mod npes. Exercises the
/// migration machinery maximally; used by migration stress tests.
Mapping rotate_lb(const std::vector<double>& loads, const Mapping& current,
                  int npes);

/// Per-PE load totals implied by a mapping.
std::vector<double> pe_loads(const std::vector<double>& loads,
                             const Mapping& mapping, int npes);

/// max/mean over the PE loads implied by a mapping (1.0 = perfect).
double mapping_imbalance(const std::vector<double>& loads,
                         const Mapping& mapping, int npes);

/// Number of objects whose placement changed.
int migration_count(const Mapping& before, const Mapping& after);

/// Named strategy lookup for benchmark harnesses ("greedy", "refine",
/// "null", "random", "rotate").
Strategy strategy_by_name(const std::string& name);

}  // namespace mfc::lb
