// Per-kernel-thread user-level thread scheduler.
//
// Every switch bounces through the scheduler's own context (the kernel
// thread's system stack). This costs one extra minimal swap per reschedule
// but gives stack-policy hooks a safe vantage point: stack-copy and
// memory-alias threads stage their stack pages from here, where nothing is
// executing on the staged address (paper §3.4.1/§3.4.3 — only one such
// thread may be active per address space).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>

#include "arch/context.h"
#include "ult/thread.h"
#include "util/rng.h"

namespace mfc::ult {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The calling kernel thread's scheduler (created on first use).
  static Scheduler& current();
  /// Installs a specific scheduler for this kernel thread (the converse PE
  /// loop does this); pass nullptr to restore the lazily created default.
  static void set_current(Scheduler* sched);

  /// Makes a thread runnable. Called with threads in kCreated, kSuspended,
  /// or (from yield) kRunning state.
  void ready(Thread* t);

  /// Makes a thread runnable with a priority (paper §2.3: a user-level
  /// scheduler can honor "the application's priority structure" directly).
  /// Negative priorities run before all unprioritized (ready()) threads,
  /// positive ones after; ties run FIFO.
  void ready_prioritized(Thread* t, int priority);

  /// Runs the next ready thread until it yields, suspends, or finishes.
  /// Returns false when the ready queue is empty. Must be called from the
  /// scheduler's own context, never from inside a ULT.
  bool run_one();

  /// Drains the ready queue (threads may re-enqueue themselves; runs until
  /// a quiescent moment with nothing ready).
  void run_until_idle();

  // ---- Calls made from inside a running ULT ----

  /// Re-enqueues the running thread and returns to the scheduler context.
  void yield();

  /// Blocks the running thread (no re-enqueue); somebody must ready() it.
  void suspend();

  /// Terminates the running thread (the trampoline's final act).
  void exit_current();

  Thread* running() const { return running_; }
  bool in_thread() const { return running_ != nullptr; }
  std::size_t ready_count() const { return ready_.size() + prioritized_count_; }

  /// Installs a seeded RNG that randomizes which priority-0 ready thread
  /// runs next (chaos deterministic-schedule mode: adversarial interleavings
  /// that replay from one seed). Pass nullptr to restore FIFO order. The
  /// RNG must outlive its installation; priority queues stay ordered —
  /// priorities are an application contract, FIFO among peers is not.
  void set_choice_rng(SplitMix64* rng) { choice_rng_ = rng; }

 private:
  friend class Thread;

  void switch_out_of_running(State next_state);
  Thread* pick_next();

  std::deque<Thread*> ready_;  ///< the priority-0 fast path
  std::map<int, std::deque<Thread*>> prioritized_;
  std::size_t prioritized_count_ = 0;
  Thread* running_ = nullptr;
  SplitMix64* choice_rng_ = nullptr;
  arch::Context main_;
};

/// Convenience: create a detached StandardThread and enqueue it on the
/// current scheduler.
Thread* spawn(Thread::Fn fn, std::size_t stack_bytes =
                                 StandardThread::kDefaultStackBytes);

/// Convenience wrappers matching the paper's Cth vocabulary.
inline void yield() { Scheduler::current().yield(); }
inline void suspend() { Scheduler::current().suspend(); }

/// Number of ULT dispatches this kernel thread has performed (bumped once
/// per run_one() slice). Cheap monotonic stamp for "has anything run in
/// between?" guards — e.g. the checkpoint sizing cache is only reusable if
/// no thread was dispatched between the size and pack phases.
std::uint64_t dispatch_count();

}  // namespace mfc::ult
