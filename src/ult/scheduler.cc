#include "ult/scheduler.h"

#include "trace/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::ult {

namespace {
thread_local Scheduler* t_current = nullptr;
thread_local Scheduler* t_default = nullptr;
thread_local std::uint64_t t_dispatches = 0;
}  // namespace

std::uint64_t dispatch_count() { return t_dispatches; }

Scheduler& Scheduler::current() {
  if (t_current) return *t_current;
  if (!t_default) t_default = new Scheduler();  // per-kernel-thread singleton
  return *t_default;
}

void Scheduler::set_current(Scheduler* sched) { t_current = sched; }

void Scheduler::ready(Thread* t) {
  MFC_CHECK(t != nullptr);
  MFC_CHECK_MSG(t->state_ != State::kDone, "ready() on finished thread");
  MFC_CHECK_MSG(t->state_ != State::kReady, "ready() on already-queued thread");
  t->state_ = State::kReady;
  trace::emit(trace::Ev::kUltResume, t->id());
  ready_.push_back(t);
}

void Scheduler::ready_prioritized(Thread* t, int priority) {
  MFC_CHECK(t != nullptr);
  MFC_CHECK_MSG(t->state_ != State::kDone, "ready() on finished thread");
  MFC_CHECK_MSG(t->state_ != State::kReady, "ready() on already-queued thread");
  t->state_ = State::kReady;
  trace::emit(trace::Ev::kUltResume, t->id());
  if (priority == 0) {
    ready_.push_back(t);
    return;
  }
  prioritized_[priority].push_back(t);
  ++prioritized_count_;
}

Thread* Scheduler::pick_next() {
  // Negative priorities preempt the normal queue; positive ones yield to it.
  if (prioritized_count_ > 0) {
    auto it = prioritized_.begin();
    if (it->first < 0) {
      Thread* t = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) prioritized_.erase(it);
      --prioritized_count_;
      return t;
    }
  }
  if (!ready_.empty()) {
    std::size_t i = 0;
    if (choice_rng_ != nullptr && ready_.size() > 1) {
      i = choice_rng_->next_below(ready_.size());
    }
    Thread* t = ready_[i];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
    return t;
  }
  if (prioritized_count_ > 0) {
    auto it = prioritized_.begin();
    Thread* t = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) prioritized_.erase(it);
    --prioritized_count_;
    return t;
  }
  return nullptr;
}

bool Scheduler::run_one() {
  MFC_CHECK_MSG(running_ == nullptr, "run_one() called from inside a thread");
  Thread* t = pick_next();
  if (t == nullptr) return false;

  // Make this scheduler the kernel thread's current one while the ULT runs,
  // so Scheduler::current() (used by the trampoline and by library code the
  // thread calls) resolves to the scheduler that owns the thread.
  Scheduler* prev = t_current;
  t_current = this;
  running_ = t;
  ++t_dispatches;
  t->state_ = State::kRunning;
  // The slice spans the stack-policy hooks too — staging a stack in/out is
  // time attributable to this thread. Capture the id now: a migratable
  // thread's husk must not be touched once the slice might have moved it.
  const std::uint64_t tid = t->id();
  trace::emit(trace::Ev::kUltSwitchIn, tid);
  t->on_switch_in();
  if (t->switch_hook_) t->switch_hook_(t->switch_hook_ctx_, true);
  t->slice_start_ = wall_time();
  arch::swap_context(&main_, &t->ctx_);
  // Control is back: the thread yielded, suspended, or finished. Its state
  // was set by switch_out_of_running / exit_current before swapping here.
  t->accumulated_load_ += wall_time() - t->slice_start_;
  running_ = nullptr;
  if (t->switch_hook_) t->switch_hook_(t->switch_hook_ctx_, false);
  t->on_switch_out();
  trace::emit(trace::Ev::kUltSwitchOut, tid);
  t_current = prev;
  if (t->state_ == State::kDone && t->delete_on_exit()) delete t;
  return true;
}

void Scheduler::run_until_idle() {
  while (run_one()) {
  }
}

void Scheduler::switch_out_of_running(State next_state) {
  MFC_CHECK_MSG(running_ != nullptr, "yield/suspend outside a thread");
  Thread* t = running_;
  t->state_ = next_state;
  if (next_state == State::kSuspended) {
    trace::emit(trace::Ev::kUltSuspend, t->id());
  }
  if (next_state == State::kReady) ready_.push_back(t);
  arch::swap_context(&t->ctx_, &main_);
  // Resumed later by run_one; nothing to do (hooks ran in scheduler context).
}

void Scheduler::yield() { switch_out_of_running(State::kReady); }

void Scheduler::suspend() { switch_out_of_running(State::kSuspended); }

void Scheduler::exit_current() {
  MFC_CHECK_MSG(running_ != nullptr, "exit_current outside a thread");
  Thread* t = running_;
  t->state_ = State::kDone;
  arch::swap_context(&t->ctx_, &main_);
  MFC_CHECK_MSG(false, "finished thread was rescheduled");
}

Thread* spawn(Thread::Fn fn, std::size_t stack_bytes) {
  auto* t = new StandardThread(std::move(fn), stack_bytes);
  t->set_delete_on_exit(true);
  Scheduler::current().ready(t);
  return t;
}

}  // namespace mfc::ult
