// User-level threads (paper §2.3) — the "Cth"-style flow of control.
//
// A Thread owns a stack and a saved Context; a Scheduler (one per kernel
// thread / PE) multiplexes ready threads over the kernel thread. Subclasses
// supply the stack-management policy: plain malloc'ed stacks here, and the
// three migratable policies (stack-copy / isomalloc / memory-alias) in
// src/migrate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "arch/context.h"

namespace mfc::ult {

class Scheduler;

enum class State : std::uint8_t {
  kCreated,    ///< not yet enqueued
  kReady,      ///< in a scheduler's ready queue
  kRunning,    ///< currently executing
  kSuspended,  ///< blocked; waiting for resume()
  kDone,       ///< entry function finished
};

const char* to_string(State s);

class Thread {
 public:
  using Fn = std::function<void()>;

  virtual ~Thread();
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  State state() const { return state_; }
  std::uint64_t id() const { return id_; }

  /// When set, the scheduler deletes the thread after its entry function
  /// finishes (detached semantics). Default: the creator owns the Thread.
  void set_delete_on_exit(bool v) { delete_on_exit_ = v; }
  bool delete_on_exit() const { return delete_on_exit_; }

  /// Wall-clock seconds this thread has been scheduled in — the load
  /// metric the balancing framework consumes (the paper's measurement).
  /// Slice timing uses the monotonic clock (~20 ns/read); the per-thread
  /// CPU clock is three orders of magnitude more expensive to read on
  /// virtualized hosts and 10 ms-granular, so it is deliberately not used.
  double accumulated_load() const { return accumulated_load_; }
  void reset_load() { accumulated_load_ = 0.0; }

  /// Stack-policy hooks, invoked from the scheduler's own (main) context so
  /// policies may stage memory that the thread itself will execute on.
  virtual void on_switch_in() {}
  virtual void on_switch_out() {}

  /// Optional user hook run at every switch (after on_switch_in /
  /// before on_switch_out). Used by e.g. swap-global privatization to
  /// install the thread's set of global variables.
  using SwitchHook = void (*)(void* ctx, bool switching_in);
  void set_switch_hook(SwitchHook hook, void* ctx) {
    switch_hook_ = hook;
    switch_hook_ctx_ = ctx;
  }

 protected:
  explicit Thread(Fn fn);

  /// Builds the initial context on `stack`. Subclass constructors call this
  /// once their stack storage exists.
  void init_context(void* stack, std::size_t bytes);

  /// Entry shim: runs fn_, then exits through the scheduler. `self` is the
  /// Thread*.
  static void trampoline(void* self);

  /// Saved stack pointer access for migration (pack records it; unpack
  /// restores it so the rebuilt thread resumes mid-stack).
  void* saved_sp() const { return ctx_.sp; }
  void set_saved_sp(void* sp) { ctx_.sp = sp; }

  /// Restores bookkeeping on an unpacked thread. Also stamps the thread
  /// kSuspended: a rebuilt thread resumes mid-stack exactly like one that
  /// suspended here, and pack() keys its "only pack parked threads" guard
  /// on that state (an in-memory checkpoint may repack an arrival that has
  /// not run since it was unpacked).
  void restore_identity(std::uint64_t id, double load) {
    id_ = id;
    accumulated_load_ = load;
    state_ = State::kSuspended;
    // Reattach the tsan fiber the packed stack was running on (no-op
    // outside sanitized builds; see arch::adopt_context_fiber).
    arch::adopt_context_fiber(ctx_, id_);
  }

 private:
  friend class Scheduler;

  arch::Context ctx_;
  Fn fn_;
  State state_ = State::kCreated;
  std::uint64_t id_;
  bool delete_on_exit_ = false;
  double accumulated_load_ = 0.0;
  double slice_start_ = 0.0;
  SwitchHook switch_hook_ = nullptr;
  void* switch_hook_ctx_ = nullptr;
};

/// Non-migratable user-level thread on a heap-allocated stack — the baseline
/// "Cth" flow of control measured in Figures 4–8.
class StandardThread final : public Thread {
 public:
  explicit StandardThread(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);

  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;

 private:
  std::unique_ptr<char[]> stack_;
};

}  // namespace mfc::ult
