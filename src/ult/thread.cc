#include "ult/thread.h"

#include <atomic>

#include "trace/trace.h"
#include "ult/scheduler.h"
#include "util/check.h"

namespace mfc::ult {

namespace {
std::atomic<std::uint64_t> g_next_id{1};
}

const char* to_string(State s) {
  switch (s) {
    case State::kCreated: return "created";
    case State::kReady: return "ready";
    case State::kRunning: return "running";
    case State::kSuspended: return "suspended";
    case State::kDone: return "done";
  }
  return "?";
}

Thread::Thread(Fn fn)
    : fn_(std::move(fn)),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {
  trace::emit(trace::Ev::kUltCreate, id_);
}

Thread::~Thread() {
  // Park the fiber handle for a possible rebuild of this thread from a
  // packed image (tsan builds only; see arch::stash_context_fiber).
  arch::stash_context_fiber(ctx_, id_);
}

void Thread::init_context(void* stack, std::size_t bytes) {
  ctx_ = arch::make_context(stack, bytes, &Thread::trampoline, this);
}

void Thread::trampoline(void* self) {
  auto* t = static_cast<Thread*>(self);
  {
    // Move the entry function onto this thread's own stack before running
    // it. A migratable thread may be packed while suspended inside the
    // closure, after which the original Thread object (and the fn_ stored in
    // it) is deleted on the source PE — the closure state must travel with
    // the stack, not stay behind in the husk. For isomalloc threads even a
    // heap-allocated closure migrates: the move runs in thread context, so
    // std::function's allocation lands in the thread's slot heap.
    Fn local_fn = std::move(t->fn_);
    t->fn_ = nullptr;
    local_fn();
    // From here on `t` must not be touched: if the thread migrated, the
    // object that now represents it is a different allocation.
  }
  Scheduler::current().exit_current();
  // exit_current never returns control here.
}

StandardThread::StandardThread(Fn fn, std::size_t stack_bytes)
    : Thread(std::move(fn)), stack_(new char[stack_bytes]) {
  MFC_CHECK(stack_bytes >= arch::kMinStackBytes);
  init_context(stack_.get(), stack_bytes);
}

}  // namespace mfc::ult
