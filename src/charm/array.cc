#include "charm/array.h"

#include <algorithm>
#include <mutex>

#include "trace/flight.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/timer.h"

namespace mfc::charm {

// Friend shim giving the (anonymous-namespace) handler lambdas access to the
// private protocol methods.
struct ArrayHandlers {
  static void route(ArrayBase& a, int index, int tag, std::vector<char> p) {
    a.handle_route(index, tag, std::move(p));
  }
  static void departed(ArrayBase& a, int index, std::uint32_t epoch) {
    a.handle_departed(index, epoch);
  }
  static void arrive(ArrayBase& a, int index, std::uint32_t epoch,
                     const std::vector<char>& s) {
    a.handle_arrive(index, epoch, s);
  }
  static void settled(ArrayBase& a, int index, int pe, std::uint32_t epoch) {
    a.handle_settled(index, pe, epoch);
  }
  static void contribute(ArrayBase& a, int red_id, double v) {
    a.handle_contribute(red_id, v);
  }
};

namespace {

thread_local std::unordered_map<int, ArrayBase*> t_arrays;

struct RouteMsg {
  int array_id = 0, index = 0, tag = 0;
  std::vector<char> inner;
  void pup(pup::Er& p) { p | array_id | index | tag | inner; }
};
struct DepartMsg {
  int array_id = 0, index = 0;
  std::uint32_t epoch = 0;
  void pup(pup::Er& p) { p | array_id | index | epoch; }
};
struct ArriveMsg {
  int array_id = 0, index = 0;
  std::uint32_t epoch = 0;
  std::vector<char> state;
  void pup(pup::Er& p) { p | array_id | index | epoch | state; }
};
struct SettleMsg {
  int array_id = 0, index = 0, pe = 0;
  std::uint32_t epoch = 0;
  void pup(pup::Er& p) { p | array_id | index | pe | epoch; }
};
struct ContribMsg {
  int array_id = 0, reduction_id = 0;
  double value = 0;
  void pup(pup::Er& p) { p | array_id | reduction_id | value; }
};

converse::HandlerId h_route, h_departed, h_arrive, h_settled, h_contribute;

ArrayBase& array_for(int id) {
  auto it = t_arrays.find(id);
  MFC_CHECK_MSG(it != t_arrays.end(), "message for unknown array on this PE");
  return *it->second;
}

void register_array_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_route = converse::register_handler([](converse::Message&& m) {
      auto msg = m.as<RouteMsg>();
      ArrayHandlers::route(array_for(msg.array_id), msg.index, msg.tag,
                           std::move(msg.inner));
    });
    h_departed = converse::register_handler([](converse::Message&& m) {
      auto msg = m.as<DepartMsg>();
      ArrayHandlers::departed(array_for(msg.array_id), msg.index, msg.epoch);
    });
    h_arrive = converse::register_handler([](converse::Message&& m) {
      auto msg = m.as<ArriveMsg>();
      ArrayHandlers::arrive(array_for(msg.array_id), msg.index, msg.epoch,
                            msg.state);
    });
    h_settled = converse::register_handler([](converse::Message&& m) {
      auto msg = m.as<SettleMsg>();
      ArrayHandlers::settled(array_for(msg.array_id), msg.index, msg.pe,
                             msg.epoch);
    });
    h_contribute = converse::register_handler([](converse::Message&& m) {
      auto msg = m.as<ContribMsg>();
      ArrayHandlers::contribute(array_for(msg.array_id), msg.reduction_id,
                                msg.value);
    });
  });
}

/// Flow id tying an element's departure to its arrival: both PEs derive
/// the same id from (array, index, hop epoch). The high bit-62 namespace
/// keeps element flows disjoint from message and thread-migration flows.
std::uint64_t elem_flow_id(int array_id, int index, std::uint32_t epoch) {
  std::uint64_t h = fnv1a_mix(kFnvOffset, static_cast<std::uint64_t>(array_id));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(index));
  h = fnv1a_mix(h, epoch);
  return (std::uint64_t{1} << 62) | (h & ((std::uint64_t{1} << 62) - 1));
}

// Deferred self-migration: an element that calls migrate() on itself from
// inside on_message is moved after the method returns.
thread_local int t_running_index = -1;
thread_local int t_running_array = -1;
thread_local bool t_pending_migration = false;
thread_local int t_pending_dest = -1;

}  // namespace

ArrayBase* find_array(int id) {
  auto it = t_arrays.find(id);
  return it == t_arrays.end() ? nullptr : it->second;
}

ArrayBase::ArrayBase(int id, int count, ElementFactory factory)
    : id_(id), count_(count), factory_(std::move(factory)) {
  register_array_handlers();
  MFC_CHECK_MSG(!t_arrays.contains(id_), "array id already in use on this PE");
  t_arrays[id_] = this;

  const int me = converse::my_pe();
  const int npes = converse::num_pes();
  for (int index = 0; index < count_; ++index) {
    if (index % npes != me) continue;
    // Initial placement: every element is born on its home PE.
    home_[index] = HomeEntry{me, 0, 0, {}};
    auto elem = factory_(index);
    elem->index_ = index;
    elem->array_id_ = id_;
    local_[index] = std::move(elem);
  }
}

ArrayBase::~ArrayBase() { t_arrays.erase(id_); }

int ArrayBase::home_pe(int index) const {
  MFC_CHECK(index >= 0 && index < count_);
  return index % converse::num_pes();
}

void ArrayBase::send(int index, int tag, std::vector<char> payload) {
  RouteMsg msg{id_, index, tag, std::move(payload)};
  converse::send_value(home_pe(index), h_route, msg);
}

void ArrayBase::broadcast(int tag, const std::vector<char>& payload) {
  for (int index = 0; index < count_; ++index) send(index, tag, payload);
}

void ArrayBase::deliver_local(int index, int tag, std::vector<char> payload) {
  auto it = local_.find(index);
  MFC_CHECK(it != local_.end());
  Element* elem = it->second.get();

  const int prev_index = t_running_index;
  const int prev_array = t_running_array;
  t_running_index = index;
  t_running_array = id_;
  const double start = wall_time();
  elem->on_message(tag, std::move(payload));
  elem->load_ += wall_time() - start;
  t_running_index = prev_index;
  t_running_array = prev_array;

  if (t_pending_migration) {
    t_pending_migration = false;
    const int dest = t_pending_dest;
    migrate(index, dest);
  }
}

void ArrayBase::handle_route(int index, int tag, std::vector<char> payload) {
  if (local_.contains(index)) {
    deliver_local(index, tag, std::move(payload));
    return;
  }
  const int me = converse::my_pe();
  if (home_pe(index) == me) {
    HomeEntry& entry = home_.at(index);
    RouteMsg msg{id_, index, tag, std::move(payload)};
    if (entry.depart_epoch > entry.settle_epoch) {
      // Buffer until the element settles at its destination.
      converse::Message buffered;
      buffered.handler = h_route;
      buffered.payload.adopt(pup::to_bytes(msg));
      entry.buffered.push_back(std::move(buffered));
    } else {
      converse::send_value(entry.location, h_route, msg);
    }
    return;
  }
  // Stale delivery (element moved on): bounce through the home.
  RouteMsg msg{id_, index, tag, std::move(payload)};
  converse::send_value(home_pe(index), h_route, msg);
}

void ArrayBase::migrate(int index, int dest_pe) {
  MFC_CHECK(dest_pe >= 0 && dest_pe < converse::num_pes());
  if (t_running_index == index && t_running_array == id_) {
    // Self-migration from inside on_message: defer until the method returns.
    t_pending_migration = true;
    t_pending_dest = dest_pe;
    return;
  }
  auto it = local_.find(index);
  MFC_CHECK_MSG(it != local_.end(), "migrate() of a non-local element");
  if (dest_pe == converse::my_pe()) return;

  const std::uint32_t epoch = it->second->hop_epoch_ + 1;
  ArriveMsg arrive{id_, index, epoch, pup::to_bytes(*it->second)};
  local_.erase(it);
  trace::emit_flight(trace::Ev::kElemDepart, elem_flow_id(id_, index, epoch),
              static_cast<std::uint32_t>(index),
              static_cast<std::uint32_t>(arrive.state.size()),
              static_cast<std::int16_t>(dest_pe));
  metrics::bump(metrics::Counter::kElemMigrations);
  DepartMsg depart{id_, index, epoch};
  converse::send_value(home_pe(index), h_departed, depart);
  converse::send_value(dest_pe, h_arrive, arrive);
}

void ArrayBase::handle_departed(int index, std::uint32_t epoch) {
  HomeEntry& entry = home_.at(index);
  // A depart notice can be delivered after the matching (or a later) settle
  // — they come from different PEs. Only a notice newer than everything the
  // home has already seen opens (or extends) the in-transit window.
  if (epoch > entry.depart_epoch) entry.depart_epoch = epoch;
}

void ArrayBase::handle_arrive(int index, std::uint32_t epoch,
                              const std::vector<char>& state) {
  trace::emit_flight(trace::Ev::kElemArrive, elem_flow_id(id_, index, epoch),
              static_cast<std::uint32_t>(index),
              static_cast<std::uint32_t>(state.size()));
  auto elem = factory_(index);
  pup::MemUnpacker u(state.data(), state.size());
  elem->pup(u);
  elem->index_ = index;
  elem->array_id_ = id_;
  elem->hop_epoch_ = epoch;
  local_[index] = std::move(elem);
  SettleMsg settle{id_, index, converse::my_pe(), epoch};
  converse::send_value(home_pe(index), h_settled, settle);
}

void ArrayBase::handle_settled(int index, int pe, std::uint32_t epoch) {
  HomeEntry& entry = home_.at(index);
  // Settles for different hops can also arrive out of order when the element
  // migrates again quickly; the location must come from the newest hop.
  if (epoch > entry.settle_epoch) {
    entry.settle_epoch = epoch;
    entry.location = pe;
  }
  if (entry.settle_epoch >= entry.depart_epoch) {
    for (auto& m : entry.buffered)
      converse::send(entry.location, h_route, m.payload.take());
    entry.buffered.clear();
  }
}

void ArrayBase::contribute(int reduction_id, double value) {
  ContribMsg msg{id_, reduction_id, value};
  converse::send_value(0, h_contribute, msg);
}

void ArrayBase::handle_contribute(int reduction_id, double value) {
  MFC_CHECK_MSG(converse::my_pe() == 0, "reduction root is PE 0");
  Reduction& red = reductions_[reduction_id];
  red.accum += value;
  if (++red.contributions == count_) {
    const double result = red.accum;
    reductions_.erase(reduction_id);
    MFC_CHECK_MSG(reduction_cb_ != nullptr, "reduction completed without "
                                            "an on_reduction callback");
    reduction_cb_(result);
  }
}

namespace {

// Checkpoint wire structs for one PE's array slice (ft layer).
struct ElemCkpt {
  std::int32_t index = 0;
  std::uint32_t hop_epoch = 0;
  double load = 0.0;
  std::vector<char> state;
  void pup(pup::Er& p) { p | index | hop_epoch | load | state; }
};
struct HomeCkpt {
  std::int32_t index = 0;
  std::int32_t location = -1;
  std::uint32_t depart_epoch = 0;
  std::uint32_t settle_epoch = 0;
  void pup(pup::Er& p) { p | index | location | depart_epoch | settle_epoch; }
};
struct SliceCkpt {
  std::vector<ElemCkpt> elems;
  std::vector<HomeCkpt> homes;
  void pup(pup::Er& p) { p | elems | homes; }
};

std::vector<int> sorted_keys_of(const auto& map) {
  std::vector<int> keys;
  keys.reserve(map.size());
  for (const auto& [k, _] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::vector<char> ArrayBase::checkpoint_local() const {
  SliceCkpt s;
  for (int index : sorted_keys_of(local_)) {
    const Element& elem = *local_.at(index);
    ElemCkpt e;
    e.index = index;
    e.hop_epoch = elem.hop_epoch_;
    e.load = elem.load_;
    e.state = pup::to_bytes(elem);
    s.elems.push_back(std::move(e));
  }
  for (int index : sorted_keys_of(home_)) {
    const HomeEntry& entry = home_.at(index);
    MFC_CHECK_MSG(entry.buffered.empty(),
                  "array checkpoint requires quiescence (home entry still "
                  "buffering in-transit traffic)");
    s.homes.push_back(HomeCkpt{index, entry.location, entry.depart_epoch,
                               entry.settle_epoch});
  }
  return pup::to_bytes(s);
}

void ArrayBase::wipe_local() {
  local_.clear();
  home_.clear();
}

void ArrayBase::restore_local(const std::vector<char>& bytes) {
  wipe_local();
  SliceCkpt s;
  pup::from_bytes(bytes, s);
  for (ElemCkpt& e : s.elems) {
    auto elem = factory_(e.index);
    pup::MemUnpacker u(e.state.data(), e.state.size());
    elem->pup(u);
    elem->index_ = e.index;
    elem->array_id_ = id_;
    elem->hop_epoch_ = e.hop_epoch;
    elem->load_ = e.load;
    local_[e.index] = std::move(elem);
  }
  for (const HomeCkpt& h : s.homes) {
    home_[h.index] = HomeEntry{h.location, h.depart_epoch, h.settle_epoch, {}};
  }
}

std::vector<int> ArrayBase::local_indices() const {
  std::vector<int> indices;
  indices.reserve(local_.size());
  for (const auto& [index, _] : local_) indices.push_back(index);
  return indices;
}

Element* ArrayBase::local_element(int index) {
  auto it = local_.find(index);
  return it == local_.end() ? nullptr : it->second.get();
}

}  // namespace mfc::charm
