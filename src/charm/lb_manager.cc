#include "charm/lb_manager.h"

#include <mutex>
#include <utility>

#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"

namespace mfc::charm {

namespace {

struct ReportMsg {
  int array_id = 0;
  int pe = 0;
  std::vector<std::pair<int, double>> loads;  ///< (element index, seconds)
  void pup(pup::Er& p) { p | array_id | pe | loads; }
};

struct OrdersMsg {
  int array_id = 0;
  int migrations_total = 0;
  double imbalance_before = 0;
  double imbalance_after = 0;
  std::vector<std::pair<int, int>> moves;  ///< (element index, dest pe)
  void pup(pup::Er& p) {
    p | array_id | migrations_total | imbalance_before | imbalance_after |
        moves;
  }
};

/// Per-PE state for the rebalance episode in progress.
struct PendingRebalance {
  ult::Thread* waiter = nullptr;
  RebalanceResult result;
};
thread_local PendingRebalance* t_pending = nullptr;

/// PE0-only collection state, keyed by array id.
thread_local std::unordered_map<int, std::vector<ReportMsg>> t_reports;

converse::HandlerId h_lb_report, h_lb_orders;

/// The strategy for the in-flight episode. Collective call: every PE passed
/// the same strategy object semantics; PE 0's copy decides.
thread_local const lb::Strategy* t_strategy = nullptr;

void decide_and_issue(ArrayBase& array, std::vector<ReportMsg> reports) {
  const int npes = converse::num_pes();
  const auto count = static_cast<std::size_t>(array.count());
  std::vector<double> loads(count, 0.0);
  lb::Mapping current(count, 0);
  std::size_t seen = 0;
  for (const ReportMsg& r : reports) {
    for (const auto& [index, load] : r.loads) {
      loads[static_cast<std::size_t>(index)] = load;
      current[static_cast<std::size_t>(index)] = r.pe;
      ++seen;
    }
  }
  MFC_CHECK_MSG(seen == count, "rebalance: element reports incomplete");

  MFC_CHECK_MSG(t_strategy != nullptr && *t_strategy,
                "rebalance: strategy missing on PE 0");
  const lb::Mapping next = (*t_strategy)(loads, current, npes);

  OrdersMsg base;
  base.array_id = array.id();
  base.migrations_total = lb::migration_count(current, next);
  base.imbalance_before = lb::mapping_imbalance(loads, current, npes);
  base.imbalance_after = lb::mapping_imbalance(loads, next, npes);

  // The decision instant on PE0's track: size carries the post-balance
  // imbalance scaled to per-mille so the record stays integer-only.
  trace::emit(trace::Ev::kLbDecision, 0,
              static_cast<std::uint32_t>(base.migrations_total),
              static_cast<std::uint32_t>(base.imbalance_after * 1000.0));
  metrics::bump(metrics::Counter::kLbMigrations,
                static_cast<std::uint64_t>(base.migrations_total));

  // One orders message per PE, containing only that PE's departures.
  for (int pe = 0; pe < npes; ++pe) {
    OrdersMsg orders = base;
    for (std::size_t i = 0; i < count; ++i) {
      if (current[i] == pe && next[i] != current[i]) {
        orders.moves.emplace_back(static_cast<int>(i), next[i]);
      }
    }
    converse::send_value(pe, h_lb_orders, orders);
  }
}

void register_lb_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_lb_report = converse::register_handler([](converse::Message&& m) {
      auto report = m.as<ReportMsg>();
      const int array_id = report.array_id;
      auto& bucket = t_reports[array_id];
      bucket.push_back(std::move(report));
      if (static_cast<int>(bucket.size()) == converse::num_pes()) {
        ArrayBase* array = find_array(array_id);
        MFC_CHECK(array != nullptr);
        auto reports = std::move(bucket);
        t_reports.erase(array_id);
        decide_and_issue(*array, std::move(reports));
      }
    });
    h_lb_orders = converse::register_handler([](converse::Message&& m) {
      auto orders = m.as<OrdersMsg>();
      ArrayBase* array = find_array(orders.array_id);
      MFC_CHECK(array != nullptr);
      for (const auto& [index, dest] : orders.moves) {
        array->migrate(index, dest);
      }
      MFC_CHECK_MSG(t_pending != nullptr, "rebalance orders without waiter");
      t_pending->result.migrations = orders.migrations_total;
      t_pending->result.imbalance_before = orders.imbalance_before;
      t_pending->result.imbalance_after = orders.imbalance_after;
      converse::ready_thread(t_pending->waiter);
    });
  });
}

}  // namespace

RebalanceResult rebalance(ArrayBase& array, const lb::Strategy& strategy) {
  register_lb_handlers();
  MFC_CHECK_MSG(converse::pe_scheduler().in_thread(),
                "rebalance() must run inside a ULT (the PE main)");
  MFC_CHECK_MSG(t_pending == nullptr, "rebalance() already in progress");

  PendingRebalance pending;
  t_pending = &pending;
  t_strategy = &strategy;

  ReportMsg report;
  report.array_id = array.id();
  report.pe = converse::my_pe();
  for (int index : array.local_indices()) {
    Element* e = array.local_element(index);
    report.loads.emplace_back(index, e->accumulated_load());
    e->reset_load();
  }
  converse::send_value(0, h_lb_report, report);

  pending.waiter = converse::pe_scheduler().running();
  converse::pe_scheduler().suspend();  // resumed by the orders handler
  t_pending = nullptr;
  t_strategy = nullptr;

  // Close the episode machine-wide: when the barrier releases, every PE has
  // executed its orders (the barrier message follows them in FIFO order).
  converse::barrier();
  return pending.result;
}

}  // namespace mfc::charm
