// Measurement-based load balancing for event-driven object arrays
// (paper §3.2 + §4.5 applied to chares instead of threads).
//
// The runtime measures wall time inside each element's on_message; a
// collective rebalance() gathers those loads at PE 0, runs a pluggable
// strategy (the same lb::Strategy used by AMPI), and issues migration
// commands. Application elements notice nothing: messages in flight are
// buffered by their home PE during transit.
#pragma once

#include "charm/array.h"
#include "lb/strategy.h"

namespace mfc::charm {

struct RebalanceResult {
  int migrations = 0;         ///< elements moved machine-wide
  double imbalance_before = 0;  ///< max/mean PE load from the measurements
  double imbalance_after = 0;   ///< max/mean PE load under the new mapping
};

/// Collective: every PE calls rebalance() from its main user-level thread
/// with the same array and strategy. Blocks until the new placement is
/// fully settled (all migrations acknowledged by the homes). Element loads
/// are reset so the next episode measures fresh activity.
RebalanceResult rebalance(ArrayBase& array, const lb::Strategy& strategy);

}  // namespace mfc::charm
