// Migratable event-driven object arrays (paper §2.4 / §3.2) — the Charm++
// chare-array analog.
//
// An Array<T> is created collectively (every PE constructs it with the same
// id and element count). Elements are event-driven objects: all interaction
// is a tagged message delivered to T::on_message(), and an element's entire
// execution state between events is its member data — which is why migrating
// one "need only copy these data structures to a new processor" (§3.2).
//
// Location management: element index → home PE (index % npes). Every
// message routes through the home, which always knows the element's true
// location; during a migration the home buffers traffic between the
// "departed" and "settled" phases, so no message is ever lost or looped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "converse/machine.h"
#include "pup/pup.h"

namespace mfc::charm {

class ArrayBase;

/// Base class for array elements. Element methods always run on the
/// element's current PE (inside the PE scheduler, handler context).
class Element {
 public:
  virtual ~Element() = default;

  /// Event dispatch: "when message A arrives, execute method F" (§2.4).
  virtual void on_message(int tag, std::vector<char> payload) = 0;

  /// Serializes the element's migration state (§3.2: application data only).
  virtual void pup(pup::Er& p) { (void)p; }

  int index() const { return index_; }
  int array_id() const { return array_id_; }

  /// Wall-clock seconds spent inside on_message — the LB load metric.
  double accumulated_load() const { return load_; }
  void reset_load() { load_ = 0.0; }

 private:
  friend class ArrayBase;
  int index_ = -1;
  int array_id_ = -1;
  double load_ = 0.0;
  // Number of completed migrations of this element; stamps the depart /
  // arrive / settle control messages so the home can order them even when
  // the transport reorders delivery. Travels with the element (set on
  // arrival from the ArriveMsg), not part of user pup state.
  std::uint32_t hop_epoch_ = 0;
};

using ElementFactory = std::function<std::unique_ptr<Element>(int index)>;
using ReductionFn = std::function<void(double result)>;

/// Untyped core shared by all Array<T> instantiations. One instance per PE
/// per array id (thread-local registry), created collectively.
class ArrayBase {
 public:
  /// Collective. Every PE must call with identical (id, count); `factory`
  /// builds both initial elements (on their birth PE) and migration husks.
  ArrayBase(int id, int count, ElementFactory factory);
  ~ArrayBase();
  ArrayBase(const ArrayBase&) = delete;
  ArrayBase& operator=(const ArrayBase&) = delete;

  int id() const { return id_; }
  int count() const { return count_; }

  /// Sends a tagged payload to element `index`, wherever it lives.
  void send(int index, int tag, std::vector<char> payload);

  template <typename T>
  void send_value(int index, int tag, const T& value) {
    send(index, tag, pup::to_bytes(value));
  }

  /// Sends `payload` to every element.
  void broadcast(int tag, const std::vector<char>& payload);

  /// Moves a *locally resident* element to dest_pe. Safe at any time with
  /// traffic in flight (the home buffers during transit).
  void migrate(int index, int dest_pe);

  /// Element contribution to reduction `reduction_id` (a fresh id per
  /// episode; all elements must contribute once). The combined result is
  /// delivered on PE0 via the callback registered with on_reduction().
  void contribute(int reduction_id, double value);

  /// PE0 callback invoked when a reduction completes (set on PE0).
  void on_reduction(ReductionFn fn) { reduction_cb_ = std::move(fn); }

  /// Local introspection (this PE only).
  std::vector<int> local_indices() const;
  Element* local_element(int index);
  std::size_t local_count() const { return local_.size(); }

  int home_pe(int index) const;

  // ---- Fault-tolerance slice capture (ft layer) ----

  /// Serializes this PE's slice of the array: every locally-resident
  /// element's pup state (with its hop epoch and load) plus this PE's
  /// home-table entries. Must run under quiescence — aborts if a home
  /// entry still buffers in-transit traffic. Deterministic byte-for-byte:
  /// elements and entries are emitted in sorted index order.
  std::vector<char> checkpoint_local() const;

  /// Drops every local element and home entry. A revived PE wipes its
  /// stale post-death state with this before the rollback restore.
  void wipe_local();

  /// Rebuilds the slice captured by checkpoint_local() on this PE
  /// (wipes first). The element rebuild path is handle_arrive's: factory
  /// husk + pup, restoring index/epoch/load identity.
  void restore_local(const std::vector<char>& bytes);

 private:
  friend struct ArrayHandlers;

  void deliver_local(int index, int tag, std::vector<char> payload);
  void handle_route(int index, int tag, std::vector<char> payload);
  void handle_departed(int index, std::uint32_t epoch);
  void handle_arrive(int index, std::uint32_t epoch,
                     const std::vector<char>& state);
  void handle_settled(int index, int pe, std::uint32_t epoch);
  void handle_contribute(int reduction_id, double value);

  int id_;
  int count_;
  ElementFactory factory_;

  std::unordered_map<int, std::unique_ptr<Element>> local_;

  // Home-role state (entries only for indices whose home is this PE).
  // The element is in transit exactly when depart_epoch > settle_epoch.
  // Epoch stamps make the protocol tolerant of reordered delivery: a
  // depart notice for hop N arriving after hop N's settle (possible when
  // the network delays messages — the two come from different PEs) cannot
  // wedge the entry in a permanent in-transit state.
  struct HomeEntry {
    int location = -1;
    std::uint32_t depart_epoch = 0;
    std::uint32_t settle_epoch = 0;
    std::vector<converse::Message> buffered;
  };
  std::unordered_map<int, HomeEntry> home_;

  // PE0-role reduction state.
  struct Reduction {
    double accum = 0;
    int contributions = 0;
  };
  std::unordered_map<int, Reduction> reductions_;
  ReductionFn reduction_cb_;
};

/// Typed convenience wrapper.
template <typename T>
class Array : public ArrayBase {
  static_assert(std::is_base_of_v<Element, T>);

 public:
  Array(int id, int count)
      : ArrayBase(id, count,
                  [](int) { return std::make_unique<T>(); }) {}

  Array(int id, int count, std::function<std::unique_ptr<T>(int)> make)
      : ArrayBase(id, count, [make = std::move(make)](int index) {
          return std::unique_ptr<Element>(make(index));
        }) {}

  T* local(int index) { return static_cast<T*>(local_element(index)); }
};

/// Looks up this PE's instance of array `id` (elements use this to message
/// peers). Null when the PE has not created the array.
ArrayBase* find_array(int id);

}  // namespace mfc::charm
