// SDAG-style coordination (paper §2.4.2, Figure 1), built on C++20
// coroutines.
//
// Structured Dagger lets an event-driven object express its life cycle as
// straight-line code — loops, "when" clauses awaiting tagged messages, and
// "overlap" blocks that accept messages in any order — which a preprocessor
// compiles to a finite-state machine. C++20 coroutines are exactly such a
// compiler-generated FSM, so the constructs map directly:
//
//   sdag::Task Stencil::life_cycle() {
//     for (int i = 0; i < kMaxIter; ++i) {
//       send_strips_to_neighbors();                      // atomic
//       auto [left, right] =                             // overlap {
//           co_await coord.overlap<Msg>(kFromLeft, kFromRight);  //  when/when }
//       copy_strips(left, right);                        // atomic
//       do_work();                                       // atomic
//     }
//   }
//
// The Coordinator is the object's mailbox: Element::on_message feeds it, and
// it either satisfies a pending `when` or buffers the message until one is
// issued (messages and whens commute, as in SDAG).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pup/pup.h"
#include "util/check.h"

namespace mfc::sdag {

/// Coroutine type for object life cycles. Starts eagerly, is resumed by
/// message delivery, and owns its frame (destroying the Task cancels the
/// life cycle).
class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  std::coroutine_handle<promise_type> handle_;
};

class Coordinator;

template <typename T>
T unpack_payload(const std::vector<char>& payload) {
  T value{};
  pup::MemUnpacker u(payload.data(), payload.size());
  pup::pup(u, value);
  return value;
}

/// Awaiter for a single `when (tag)` clause.
template <typename T>
class WhenAwaiter {
 public:
  WhenAwaiter(Coordinator* coord, int tag) : coord_(coord), tag_(tag) {}
  bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  T await_resume() {
    MFC_CHECK(have_);
    return unpack_payload<T>(payload_);
  }

 private:
  Coordinator* coord_;
  int tag_;
  std::vector<char> payload_;
  bool have_ = false;
};

/// Awaiter for `overlap { when(tag0) ... when(tagK) }` over a homogeneous
/// message type: completes when one message per tag has arrived, in any
/// order; yields payloads in tag-argument order.
template <typename T>
class OverlapAwaiter {
 public:
  OverlapAwaiter(Coordinator* coord, std::vector<int> tags)
      : coord_(coord), tags_(std::move(tags)) {}
  bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  std::vector<T> await_resume() {
    std::vector<T> values;
    values.reserve(tags_.size());
    for (const auto& p : payloads_) values.push_back(unpack_payload<T>(p));
    return values;
  }

 protected:
  Coordinator* coord_;
  std::vector<int> tags_;
  std::vector<std::vector<char>> payloads_;
  std::vector<bool> satisfied_;
  std::size_t remaining_ = 0;
};

/// Two-tag overlap yielding a pair (the Figure 1 ghost-exchange shape).
template <typename T>
class Overlap2Awaiter : public OverlapAwaiter<T> {
 public:
  Overlap2Awaiter(Coordinator* coord, int tag_a, int tag_b)
      : OverlapAwaiter<T>(coord, {tag_a, tag_b}) {}
  std::pair<T, T> await_resume() {
    return {unpack_payload<T>(this->payloads_[0]),
            unpack_payload<T>(this->payloads_[1])};
  }
};

/// Per-object mailbox and when-registry.
class Coordinator {
 public:
  /// Feed a tagged message in (typically from Element::on_message). If a
  /// `when` for this tag is pending, the coroutine resumes immediately
  /// (possibly running several "atomic" sections before returning);
  /// otherwise the message is buffered.
  void deliver(int tag, std::vector<char> payload) {
    auto wit = waiters_.find(tag);
    if (wit != waiters_.end() && !wit->second.empty()) {
      auto callback = std::move(wit->second.front());
      wit->second.pop_front();
      callback(std::move(payload));
      return;
    }
    mailbox_[tag].push_back(std::move(payload));
  }

  std::size_t buffered(int tag) const {
    auto it = mailbox_.find(tag);
    return it == mailbox_.end() ? 0 : it->second.size();
  }

  std::size_t pending_whens() const {
    std::size_t n = 0;
    for (const auto& [_, q] : waiters_) n += q.size();
    return n;
  }

  template <typename T>
  WhenAwaiter<T> when(int tag) {
    return WhenAwaiter<T>(this, tag);
  }

  /// N-ary overlap. NOTE (GCC 12 workaround): bind the returned awaiter to a
  /// local variable and co_await the lvalue — `co_await c.overlap<T>({...})`
  /// trips a GCC 12 frame-materialization bug ("array used as initializer").
  template <typename T>
  OverlapAwaiter<T> overlap(std::vector<int> tags) {
    return OverlapAwaiter<T>(this, std::move(tags));
  }

  template <typename T>
  Overlap2Awaiter<T> overlap(int tag_a, int tag_b) {
    return Overlap2Awaiter<T>(this, tag_a, tag_b);
  }

 private:
  template <typename T>
  friend class WhenAwaiter;
  template <typename T>
  friend class OverlapAwaiter;

  bool try_take(int tag, std::vector<char>& out) {
    auto it = mailbox_.find(tag);
    if (it == mailbox_.end() || it->second.empty()) return false;
    out = std::move(it->second.front());
    it->second.pop_front();
    return true;
  }

  using WaiterFn = std::function<void(std::vector<char>&&)>;
  void add_waiter(int tag, WaiterFn fn) {
    waiters_[tag].push_back(std::move(fn));
  }

  std::unordered_map<int, std::deque<std::vector<char>>> mailbox_;
  std::unordered_map<int, std::deque<WaiterFn>> waiters_;
};

template <typename T>
bool WhenAwaiter<T>::await_ready() {
  if (coord_->try_take(tag_, payload_)) have_ = true;
  return have_;
}

template <typename T>
void WhenAwaiter<T>::await_suspend(std::coroutine_handle<> h) {
  coord_->add_waiter(tag_, [this, h](std::vector<char>&& bytes) {
    payload_ = std::move(bytes);
    have_ = true;
    h.resume();
  });
}

template <typename T>
bool OverlapAwaiter<T>::await_ready() {
  payloads_.resize(tags_.size());
  satisfied_.assign(tags_.size(), false);
  remaining_ = 0;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (coord_->try_take(tags_[i], payloads_[i])) {
      satisfied_[i] = true;
    } else {
      ++remaining_;
    }
  }
  return remaining_ == 0;
}

template <typename T>
void OverlapAwaiter<T>::await_suspend(std::coroutine_handle<> h) {
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (satisfied_[i]) continue;
    coord_->add_waiter(tags_[i], [this, i, h](std::vector<char>&& bytes) {
      payloads_[i] = std::move(bytes);
      satisfied_[i] = true;
      if (--remaining_ == 0) h.resume();
    });
  }
}

}  // namespace mfc::sdag
