// Return-switch functions (paper §2.4.1): the Duff's-device coroutine
// emulation that predates both threads and real coroutines.
//
// A function written in return-switch style "suspends" by recording a resume
// label and returning; calling it again jumps back to that label. The paper
// notes this is "confusing, error-prone and tough to debug" — these macros
// exist to reproduce and benchmark the technique, not to recommend it.
//
//   struct Pinger {
//     mfc::sdag::RetSwitch rs;
//     int i = 0;
//     void step() {                    // call repeatedly to drive
//       MFC_RS_BEGIN(rs);
//       for (i = 0; i < 3; ++i) {
//         do_something(i);
//         MFC_RS_YIELD(rs);            // "suspend"
//       }
//       MFC_RS_END(rs);
//     }
//   };
//
// Restrictions inherent to the technique (and absent with real threads):
// no local variables may live across a yield (hoist them into the struct),
// and yields may not appear inside a nested switch.
#pragma once

namespace mfc::sdag {

struct RetSwitch {
  int line = 0;
  bool finished() const { return line == -1; }
  void reset() { line = 0; }
};

}  // namespace mfc::sdag

#define MFC_RS_BEGIN(rs) \
  switch ((rs).line) {   \
    case 0:

#define MFC_RS_YIELD(rs)  \
  do {                    \
    (rs).line = __LINE__; \
    return;               \
    case __LINE__:;       \
  } while (0)

#define MFC_RS_END(rs) \
  }                    \
  (rs).line = -1
