#include "iso/heap.h"

#include <cstdlib>
#include <cstring>

#include "chaos/chaos.h"
#include "util/check.h"

namespace mfc::iso {

namespace {
constexpr std::uint32_t kBlockMagic = 0x150b10cU;
constexpr std::uint64_t kArenaMagic = 0x150a12e4aULL;
constexpr std::size_t kAlign = 16;
constexpr std::size_t kMinPayload = 32;  ///< don't split below this

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}
}  // namespace

/// Block header preceding every allocation. `prev`/`next` are address-order
/// neighbors within the arena; they point into slot memory only, so they
/// remain valid across migration.
struct alignas(16) ThreadHeap::Block {
  std::size_t size;  ///< payload bytes
  Block* prev;
  Block* next;
  ArenaHeader* arena;
  std::uint32_t free_flag;
  std::uint32_t magic;

  void* payload() { return reinterpret_cast<char*>(this) + sizeof(Block); }
  static Block* from_payload(void* p) {
    auto* b = reinterpret_cast<Block*>(static_cast<char*>(p) - sizeof(Block));
    MFC_CHECK_MSG(b->magic == kBlockMagic, "bad pointer passed to iso free");
    return b;
  }
};

/// Arena header at the base of each slot run. Carries the live-byte
/// accounting so a heap can be reconstructed purely from its slots.
struct alignas(16) ThreadHeap::ArenaHeader {
  std::uint64_t magic;
  std::size_t arena_bytes;
  Block* first;
  std::size_t live_bytes;
  std::size_t live_count;
};

ThreadHeap::ThreadHeap(int birth_pe) : birth_pe_(birth_pe) {
  static_assert(sizeof(Block) % 16 == 0);
  add_arena(1);
}

ThreadHeap::ThreadHeap(int birth_pe, std::vector<SlotId> slots)
    : birth_pe_(birth_pe), slots_(std::move(slots)) {
  Region& region = Region::instance();
  for (const SlotId& id : slots_) {
    auto* arena = static_cast<ArenaHeader*>(region.slot_base(id));
    MFC_CHECK_MSG(arena->magic == kArenaMagic, "reattach: corrupt arena");
    arenas_.push_back(arena);
  }
}

ThreadHeap* ThreadHeap::reattach(int birth_pe, std::vector<SlotId> slots) {
  return new ThreadHeap(birth_pe, std::move(slots));
}

ThreadHeap::~ThreadHeap() {
  Region& region = Region::instance();
  for (const SlotId& id : slots_) region.release(id);
}

ThreadHeap::ArenaHeader* ThreadHeap::add_arena(std::uint32_t slot_count) {
  Region& region = Region::instance();
  SlotId id = region.acquire(birth_pe_, slot_count);
  auto* arena = static_cast<ArenaHeader*>(region.slot_base(id));
  arena->magic = kArenaMagic;
  arena->arena_bytes = region.slot_span(id);
  arena->live_bytes = 0;
  arena->live_count = 0;
  auto* block = reinterpret_cast<Block*>(
      reinterpret_cast<char*>(arena) + round_up(sizeof(ArenaHeader), kAlign));
  block->size = arena->arena_bytes - round_up(sizeof(ArenaHeader), kAlign) -
                sizeof(Block);
  block->prev = nullptr;
  block->next = nullptr;
  block->arena = arena;
  block->free_flag = 1;
  block->magic = kBlockMagic;
  arena->first = block;
  slots_.push_back(id);
  arenas_.push_back(arena);
  return arena;
}

void* ThreadHeap::malloc_from(ArenaHeader* arena, std::size_t size) {
  for (Block* b = arena->first; b != nullptr; b = b->next) {
    if (!b->free_flag || b->size < size) continue;
    // Split when the remainder can hold a useful block.
    if (b->size >= size + sizeof(Block) + kMinPayload) {
      auto* rest = reinterpret_cast<Block*>(
          static_cast<char*>(b->payload()) + size);
      rest->size = b->size - size - sizeof(Block);
      rest->prev = b;
      rest->next = b->next;
      rest->arena = arena;
      rest->free_flag = 1;
      rest->magic = kBlockMagic;
      if (b->next) b->next->prev = rest;
      b->next = rest;
      b->size = size;
    }
    b->free_flag = 0;
    arena->live_bytes += b->size;
    arena->live_count += 1;
    return b->payload();
  }
  return nullptr;
}

void* ThreadHeap::malloc(std::size_t size) {
  if (size == 0) size = 1;
  size = round_up(size, kAlign);
  for (ArenaHeader* arena : arenas_) {
    if (void* p = malloc_from(arena, size)) return p;
  }
  // Grow: size the new arena to fit this allocation (multi-slot for big
  // blocks), with one slot minimum.
  const std::size_t slot_bytes = Region::instance().config().slot_bytes;
  const std::size_t need =
      size + round_up(sizeof(ArenaHeader), kAlign) + sizeof(Block);
  const auto slot_count =
      static_cast<std::uint32_t>((need + slot_bytes - 1) / slot_bytes);
  ArenaHeader* arena = add_arena(slot_count);
  void* p = malloc_from(arena, size);
  MFC_CHECK_MSG(p != nullptr, "iso heap: fresh arena cannot satisfy request");
  return p;
}

void ThreadHeap::free_anywhere(void* p) {
  if (p == nullptr) return;
  Block* b = Block::from_payload(p);
  MFC_CHECK_MSG(!b->free_flag, "iso heap: double free");
  ArenaHeader* arena = b->arena;
  arena->live_bytes -= b->size;
  arena->live_count -= 1;
  b->free_flag = 1;
  // Coalesce with next, then with prev.
  if (b->next && b->next->free_flag) {
    Block* n = b->next;
    b->size += sizeof(Block) + n->size;
    b->next = n->next;
    if (n->next) n->next->prev = b;
    n->magic = 0;
  }
  if (b->prev && b->prev->free_flag) {
    Block* pr = b->prev;
    pr->size += sizeof(Block) + b->size;
    pr->next = b->next;
    if (b->next) b->next->prev = pr;
    b->magic = 0;
  }
}

void ThreadHeap::free(void* p) { free_anywhere(p); }

std::size_t ThreadHeap::payload_size(const void* p) {
  return Block::from_payload(const_cast<void*>(p))->size;
}

void* ThreadHeap::realloc(void* p, std::size_t size) {
  if (p == nullptr) return malloc(size);
  if (size == 0) {
    free(p);
    return nullptr;
  }
  Block* b = Block::from_payload(p);
  if (b->size >= size) return p;  // shrink in place (no split for simplicity)
  void* q = malloc(size);
  std::memcpy(q, p, b->size);
  free(p);
  return q;
}

void* ThreadHeap::calloc(std::size_t nmemb, std::size_t size) {
  MFC_CHECK_MSG(size == 0 || nmemb <= SIZE_MAX / size, "calloc overflow");
  const std::size_t total = nmemb * size;
  void* p = malloc(total);
  std::memset(p, 0, total);
  return p;
}

bool ThreadHeap::owns(const void* p) const {
  const Region& region = Region::instance();
  const char* c = static_cast<const char*>(p);
  for (const SlotId& id : slots_) {
    const char* base = static_cast<const char*>(region.slot_base(id));
    if (c >= base && c < base + region.slot_span(id)) return true;
  }
  return false;
}

std::size_t ThreadHeap::footprint() const {
  std::size_t total = 0;
  for (const ArenaHeader* arena : arenas_) total += arena->arena_bytes;
  return total;
}

std::size_t ThreadHeap::live_bytes() const {
  std::size_t total = 0;
  for (const ArenaHeader* arena : arenas_) total += arena->live_bytes;
  return total;
}

std::size_t ThreadHeap::allocation_count() const {
  std::size_t total = 0;
  for (const ArenaHeader* arena : arenas_) total += arena->live_count;
  return total;
}

// ---- Thread-context routing -------------------------------------------------

namespace {
thread_local ThreadHeap* t_current_heap = nullptr;
}

ThreadHeap* current_heap() { return t_current_heap; }
void set_current_heap(ThreadHeap* heap) { t_current_heap = heap; }

void* routed_malloc(std::size_t size) {
  if (ThreadHeap* heap = t_current_heap) {
    // A thread can be descheduled right at an allocation boundary — the
    // spot where a migration racing an in-progress malloc would corrupt the
    // arena if heap routing weren't per-thread.
    chaos::preempt_point("iso.routed_malloc");
    return heap->malloc(size);
  }
  return std::malloc(size);
}

void routed_free(void* p) {
  if (p == nullptr) return;
  if (Region::initialized() && Region::instance().contains(p)) {
    ThreadHeap::free_anywhere(p);
    return;
  }
  std::free(p);
}

void* routed_realloc(void* p, std::size_t size) {
  const bool iso_ptr =
      p != nullptr && Region::initialized() && Region::instance().contains(p);
  if (ThreadHeap* heap = t_current_heap; heap && (p == nullptr || iso_ptr)) {
    return heap->realloc(p, size);
  }
  if (iso_ptr) {
    // An iso pointer resized outside any thread context: migrate the data
    // to libc memory (the block header records the old size).
    const std::size_t old_size = ThreadHeap::payload_size(p);
    void* q = std::malloc(size);
    MFC_CHECK(q != nullptr || size == 0);
    if (q) std::memcpy(q, p, old_size < size ? old_size : size);
    ThreadHeap::free_anywhere(p);
    return q;
  }
  return std::realloc(p, size);
}

void* routed_calloc(std::size_t nmemb, std::size_t size) {
  if (ThreadHeap* heap = t_current_heap) return heap->calloc(nmemb, size);
  return std::calloc(nmemb, size);
}

}  // namespace mfc::iso
