// Strong-symbol interposition of the C allocator (paper §3.4.2):
//
//   "we extended this approach by overriding the system malloc/free routines
//    to use the new isomalloc/free when it is called within a thread ...
//    malloc/free called from outside the threading context is still directed
//    to the normal system version."
//
// Linking this object into an executable makes plain malloc()/free() calls —
// including those inside third-party code and libstdc++'s operator new —
// allocate from the current migratable thread's isomalloc heap whenever a
// thread context is active (iso::set_current_heap). free() routes by address
// so pointers may cross contexts safely.
//
// glibc's internal entry points (__libc_malloc etc.) provide the fallback,
// avoiding the dlsym(RTLD_NEXT) bootstrap problem.

#include <cstddef>
#include <cstring>

#include "iso/heap.h"

extern "C" {
void* __libc_malloc(std::size_t size);
void __libc_free(void* p);
void* __libc_calloc(std::size_t nmemb, std::size_t size);
void* __libc_realloc(void* p, std::size_t size);

void* malloc(std::size_t size) {
  if (auto* heap = mfc::iso::current_heap()) return heap->malloc(size);
  return __libc_malloc(size);
}

void free(void* p) {
  if (p == nullptr) return;
  if (mfc::iso::Region::initialized() &&
      mfc::iso::Region::instance().contains(p)) {
    mfc::iso::ThreadHeap::free_anywhere(p);
    return;
  }
  __libc_free(p);
}

void* calloc(std::size_t nmemb, std::size_t size) {
  if (auto* heap = mfc::iso::current_heap()) return heap->calloc(nmemb, size);
  return __libc_calloc(nmemb, size);
}

void* realloc(void* p, std::size_t size) {
  const bool iso_ptr = p != nullptr && mfc::iso::Region::initialized() &&
                       mfc::iso::Region::instance().contains(p);
  if (auto* heap = mfc::iso::current_heap(); heap && (p == nullptr || iso_ptr)) {
    return heap->realloc(p, size);
  }
  if (iso_ptr) {
    const std::size_t old_size = mfc::iso::ThreadHeap::payload_size(p);
    void* q = __libc_malloc(size);
    if (q) std::memcpy(q, p, old_size < size ? old_size : size);
    mfc::iso::ThreadHeap::free_anywhere(p);
    return q;
  }
  return __libc_realloc(p, size);
}
}  // extern "C"
