// Per-thread heap carved out of isomalloc slots.
//
// All allocator metadata (block headers, arena headers, byte accounting)
// lives *inside* the thread's slots. Because a slot keeps the same virtual
// address after migration, copying the slot bytes moves the entire heap —
// including every internal pointer — without any fixup. This is what lets
// the runtime "override the system malloc/free routines to use isomalloc
// when called within a thread" (paper §3.4.2) and still migrate unmodified
// code.
#pragma once

#include <cstddef>
#include <vector>

#include "iso/region.h"

namespace mfc::iso {

class ThreadHeap {
 public:
  /// `birth_pe` selects the strip slots are drawn from. The heap grows by
  /// acquiring more slots on demand; big allocations get contiguous
  /// multi-slot blocks.
  explicit ThreadHeap(int birth_pe);
  ~ThreadHeap();
  ThreadHeap(const ThreadHeap&) = delete;
  ThreadHeap& operator=(const ThreadHeap&) = delete;

  void* malloc(std::size_t size);
  void free(void* p);
  void* realloc(void* p, std::size_t size);
  void* calloc(std::size_t nmemb, std::size_t size);

  /// True when `p` lies inside one of this heap's slots.
  bool owns(const void* p) const;

  /// Total slot bytes held (physical footprint upper bound).
  std::size_t footprint() const;
  /// Bytes currently handed out to the application (summed from in-slot
  /// arena accounting, so it survives migration).
  std::size_t live_bytes() const;
  std::size_t allocation_count() const;

  /// The slot runs backing this heap (one entry per arena), in acquisition
  /// order. Migration packs their raw contents.
  const std::vector<SlotId>& slots() const { return slots_; }

  /// Reconstructs a heap handle around already-installed slots (the
  /// destination side of a migration). All allocator state is read back out
  /// of the slot memory itself.
  static ThreadHeap* reattach(int birth_pe, std::vector<SlotId> slots);

  /// Disowns the slots (source side of a migration, after they were packed
  /// and evacuated): the destructor will no longer release them.
  void abandon() { slots_.clear(); arenas_.clear(); }

  /// Frees a pointer without knowing which heap it came from (the block
  /// header is self-describing). Used by the routed free below.
  static void free_anywhere(void* p);

  /// Payload size recorded in the (self-describing) block header of an
  /// iso-heap pointer.
  static std::size_t payload_size(const void* p);

 private:
  ThreadHeap(int birth_pe, std::vector<SlotId> slots);  // reattach path

  struct Block;        // boundary-tag block header (lives in slot memory)
  struct ArenaHeader;  // per-slot-run arena header (lives in slot memory)

  ArenaHeader* add_arena(std::uint32_t slot_count);
  static void* malloc_from(ArenaHeader* arena, std::size_t size);

  int birth_pe_;
  std::vector<SlotId> slots_;
  std::vector<ArenaHeader*> arenas_;
};

/// Current thread-context heap (a property of the underlying kernel thread;
/// the ULT scheduler sets it when switching migratable threads in and out).
/// Null means "not in a migratable-thread context": allocation falls through
/// to the system allocator, exactly as the paper routes communication-layer
/// mallocs to the normal libc version.
ThreadHeap* current_heap();
void set_current_heap(ThreadHeap* heap);

/// Routed allocation entry points: use current_heap() when set, else libc.
/// free() routes by address (isomalloc region test), so pointers can be
/// freed from either context safely.
void* routed_malloc(std::size_t size);
void routed_free(void* p);
void* routed_realloc(void* p, std::size_t size);
void* routed_calloc(std::size_t nmemb, std::size_t size);

}  // namespace mfc::iso
