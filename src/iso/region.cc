#include "iso/region.h"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "chaos/chaos.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace mfc::iso {

namespace {
Region* g_region = nullptr;
// Cross-process lease hooks (see region.h). Installed by the machine layer
// post-fork on multi-process machines; both set or both empty.
std::function<bool(int)> g_lease_owner_local;
std::function<void(SlotId)> g_lease_forward;
}

void Region::init(const Config& config) {
  MFC_CHECK_MSG(g_region == nullptr, "iso::Region::init called twice");
  MFC_CHECK(config.npes >= 1);
  MFC_CHECK(config.slots_per_pe >= 1);
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  MFC_CHECK_MSG(config.slot_bytes % page == 0, "slot_bytes must be page-multiple");
  g_region = new Region(config);
}

void Region::shutdown() {
  delete g_region;
  g_region = nullptr;
}

bool Region::initialized() { return g_region != nullptr; }

Region& Region::instance() {
  MFC_CHECK_MSG(g_region != nullptr, "iso::Region not initialized");
  return *g_region;
}

Region::Region(const Config& config) : config_(config) {
  total_bytes_ = static_cast<std::size_t>(config_.npes) *
                 config_.slots_per_pe * config_.slot_bytes;
  base_ = mmap(nullptr, total_bytes_, PROT_NONE,
               MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  MFC_CHECK_MSG(base_ != MAP_FAILED, "isomalloc reservation failed");
  strips_ = std::vector<Strip>(static_cast<std::size_t>(config_.npes));
  for (auto& strip : strips_) {
    strip.used.assign(config_.slots_per_pe, false);
    strip.resident.assign(config_.slots_per_pe, false);
  }
  MFC_LOG_INFO("isomalloc region: base=%p bytes=%zu (%d PEs x %u slots x %zu B)",
               base_, total_bytes_, config_.npes, config_.slots_per_pe,
               config_.slot_bytes);
}

Region::~Region() { munmap(base_, total_bytes_); }

SlotId Region::try_acquire(int pe, std::uint32_t count) {
  MFC_CHECK(pe >= 0 && pe < config_.npes);
  MFC_CHECK(count >= 1 && count <= config_.slots_per_pe);
  // Chaos: pretend the strip is exhausted. Callers must treat an invalid
  // SlotId as the transient resource failure it models (acquire() retries).
  if (chaos::should_inject(chaos::Point::kIsoAcquire)) return SlotId{};
  Strip& strip = strips_[static_cast<std::size_t>(pe)];
  std::lock_guard<std::mutex> lock(strip.mutex);
  const std::uint32_t n = config_.slots_per_pe;
  // Next-fit scan for `count` consecutive free slots.
  for (std::uint32_t attempt = 0; attempt < n; ++attempt) {
    const std::uint32_t start = (strip.search_hint + attempt) % n;
    if (start + count > n) continue;
    bool all_free = true;
    for (std::uint32_t k = 0; k < count; ++k) {
      if (strip.used[start + k]) {
        all_free = false;
        break;
      }
    }
    if (!all_free) continue;
    for (std::uint32_t k = 0; k < count; ++k) {
      strip.used[start + k] = true;
      strip.resident[start + k] = true;
    }
    strip.used_count += count;
    strip.search_hint = (start + count) % n;
    SlotId id{pe, start, count};
    map_rw(id);  // residency marked above (install() would re-lock)
    // Only the success path traces: injected strip-exhaustion retries must
    // not perturb the replay-deterministic event counts.
    trace::emit(trace::Ev::kIsoSlotAcquire, 0, start, count,
                static_cast<std::int16_t>(pe));
    return id;
  }
  return SlotId{};
}

SlotId Region::acquire(int pe, std::uint32_t count) {
  SlotId id = try_acquire(pe, count);
  // Injected failures are transient by contract; a bounded retry separates
  // them from real strip exhaustion, which must still abort loudly.
  for (int retry = 0; !id.valid() && chaos::enabled() && retry < 64; ++retry) {
    id = try_acquire(pe, count);
  }
  MFC_CHECK_MSG(id.valid(), "isomalloc strip exhausted (virtual address space "
                            "limit — see paper §3.4.2)");
  return id;
}

void Region::release(SlotId id) {
  MFC_CHECK(id.valid());
  trace::emit(trace::Ev::kIsoSlotRelease, 0, id.index, id.count,
              static_cast<std::int16_t>(id.pe));
  evacuate(id);
  if (g_lease_owner_local && !g_lease_owner_local(id.pe)) {
    // Leased strip owned by another process: this process's bitmap copy
    // never recorded the acquire, so the free order travels to the birth
    // process (free_remote) instead of corrupting the local books.
    g_lease_forward(id);
    return;
  }
  Strip& strip = strips_[static_cast<std::size_t>(id.pe)];
  std::lock_guard<std::mutex> lock(strip.mutex);
  for (std::uint32_t k = 0; k < id.count; ++k) {
    MFC_CHECK_MSG(strip.used[id.index + k], "double release of iso slot");
    strip.used[id.index + k] = false;
  }
  strip.used_count -= id.count;
}

void Region::set_lease(std::function<bool(int)> owner_local,
                       std::function<void(SlotId)> forward) {
  MFC_CHECK(owner_local != nullptr && forward != nullptr);
  g_lease_owner_local = std::move(owner_local);
  g_lease_forward = std::move(forward);
}

void Region::clear_lease() {
  g_lease_owner_local = nullptr;
  g_lease_forward = nullptr;
}

void Region::free_remote(SlotId id) {
  MFC_CHECK(id.valid());
  Strip& strip = strips_[static_cast<std::size_t>(id.pe)];
  std::lock_guard<std::mutex> lock(strip.mutex);
  for (std::uint32_t k = 0; k < id.count; ++k) {
    MFC_CHECK_MSG(strip.used[id.index + k],
                  "remote free of an unused iso slot");
    strip.used[id.index + k] = false;
  }
  strip.used_count -= id.count;
}

void Region::reassert(SlotId id) {
  MFC_CHECK(id.valid());
  Strip& strip = strips_[static_cast<std::size_t>(id.pe)];
  std::lock_guard<std::mutex> lock(strip.mutex);
  for (std::uint32_t k = 0; k < id.count; ++k) {
    if (!strip.used[id.index + k]) {
      strip.used[id.index + k] = true;
      ++strip.used_count;
    }
  }
}

void* Region::slot_base(SlotId id) const {
  MFC_CHECK(id.valid());
  const std::size_t strip_bytes =
      static_cast<std::size_t>(config_.slots_per_pe) * config_.slot_bytes;
  return static_cast<char*>(base_) +
         static_cast<std::size_t>(id.pe) * strip_bytes +
         static_cast<std::size_t>(id.index) * config_.slot_bytes;
}

void Region::map_none(SlotId id) {
  void* addr = slot_base(id);
  // Re-establish the PROT_NONE reservation over the slot, dropping its
  // physical pages — the remote copy is now the only one, mirroring
  // distributed-memory migration even in the in-process emulation.
  void* r = mmap(addr, slot_span(id), PROT_NONE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  MFC_CHECK_MSG(r == addr, "iso evacuate remap failed");
}

void Region::map_rw(SlotId id) {
  void* addr = slot_base(id);
  void* r = mmap(addr, slot_span(id), PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  MFC_CHECK_MSG(r == addr, "iso install remap failed");
}

void Region::evacuate(SlotId id) {
  MFC_CHECK(id.valid());
  Strip& strip = strips_[static_cast<std::size_t>(id.pe)];
  {
    std::lock_guard<std::mutex> lock(strip.mutex);
    for (std::uint32_t k = 0; k < id.count; ++k) {
      MFC_CHECK_MSG(strip.resident[id.index + k],
                    "evacuating an iso slot with no resident pages "
                    "(double pack?)");
      strip.resident[id.index + k] = false;
    }
  }
  map_none(id);
}

void Region::install(SlotId id) {
  MFC_CHECK(id.valid());
  Strip& strip = strips_[static_cast<std::size_t>(id.pe)];
  {
    std::lock_guard<std::mutex> lock(strip.mutex);
    for (std::uint32_t k = 0; k < id.count; ++k) {
      MFC_CHECK_MSG(!strip.resident[id.index + k],
                    "iso install over a resident slot — a thread already "
                    "lives at these addresses (restoring a checkpoint over "
                    "a live thread?)");
      strip.resident[id.index + k] = true;
    }
  }
  map_rw(id);
}

bool Region::contains(const void* p) const {
  const char* c = static_cast<const char*>(p);
  const char* b = static_cast<const char*>(base_);
  return c >= b && c < b + total_bytes_;
}

std::uint32_t Region::used_slots(int pe) const {
  MFC_CHECK(pe >= 0 && pe < config_.npes);
  return strips_[static_cast<std::size_t>(pe)].used_count;
}

std::uint32_t Region::free_slots(int pe) const {
  return config_.slots_per_pe - used_slots(pe);
}

}  // namespace mfc::iso
