// Isomalloc region — the paper's §3.4.2 machine-wide virtual address space
// partition (Figure 2).
//
// At startup all processors agree on one large region of virtual address
// space, divided into per-PE strips of fixed-size slots. A PE hands local
// threads slots from its own strip, so every slot address is unique across
// the whole machine. A migrating thread keeps its slot addresses for life:
// on arrival the destination maps the *same* virtual addresses and copies
// the bytes in — no pointer inside the thread's stack or heap ever needs
// fixing up.
//
// Physical memory is only committed for locally-resident slots: everything
// else stays PROT_NONE, exactly the paper's use of mmap to keep the
// (potentially enormous) reservation cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "pup/pup.h"

namespace mfc::iso {

/// Identifies one slot: the strip (birth PE) it was allocated from and its
/// index within that strip. Identity — and therefore address — never changes,
/// even after the owning thread migrates.
struct SlotId {
  std::int32_t pe = -1;
  std::uint32_t index = 0;
  std::uint32_t count = 1;  ///< number of contiguous slots (multi-slot blocks)

  bool valid() const { return pe >= 0; }
  friend bool operator==(const SlotId&, const SlotId&) = default;

  void pup(pup::Er& p) { p | pe | index | count; }
};

class Region {
 public:
  struct Config {
    int npes = 1;
    std::size_t slot_bytes = 256 * 1024;  ///< must be page-multiple
    std::uint32_t slots_per_pe = 1024;
  };

  /// Reserves the machine-wide region (PROT_NONE). Must run before any PE
  /// starts, and — for the fork transport — before fork, so every address
  /// space inherits the same reservation.
  static void init(const Config& config);
  static void shutdown();
  static bool initialized();
  static Region& instance();

  /// Acquires `count` contiguous free slots from `pe`'s strip and maps them
  /// read/write. Aborts if the strip is exhausted (address space is a hard
  /// resource; see the paper's 32-bit discussion).
  SlotId acquire(int pe, std::uint32_t count = 1);

  /// Tries to acquire; returns an invalid SlotId instead of aborting.
  SlotId try_acquire(int pe, std::uint32_t count = 1);

  /// Returns the slots to the strip free pool and drops their pages.
  void release(SlotId id);

  /// Virtual address of the slot — identical on every PE by construction.
  void* slot_base(SlotId id) const;
  std::size_t slot_span(SlotId id) const { return id.count * config_.slot_bytes; }

  /// Migration: drop the local pages (after the contents were packed).
  /// Aborts on a slot that is not locally resident (double evacuate).
  void evacuate(SlotId id);
  /// Migration: re-map the same addresses read/write (before unpacking).
  /// Aborts on a slot that is ALREADY resident — the guard that catches a
  /// checkpoint image restored over a live thread occupying the same slots.
  void install(SlotId id);

  /// True when `p` points inside the isomalloc reservation — used by the
  /// malloc-interposition layer to route free() correctly.
  bool contains(const void* p) const;

  /// Cross-process slot leasing. On a multi-process machine every process
  /// holds a copy-on-write copy of the strip bitmaps, so a slot's `used`
  /// bits are only meaningful in the process that acquired it (its birth
  /// process — the one hosting the strip's PE). The machine layer installs
  /// a lease after forking: release() then evacuates the local pages and,
  /// when the strip's PE is not local, forwards the free order instead of
  /// touching the (stale) local bitmap. The birth process applies it via
  /// free_remote(). Single-process machines never install a lease and keep
  /// the fully-local path.
  static void set_lease(std::function<bool(int)> owner_local,
                        std::function<void(SlotId)> forward);
  static void clear_lease();

  /// Applies a forwarded free in the slot's birth process: clears the
  /// `used` bits and nothing else — the pages here were already evacuated
  /// when the owning thread departed, and the releasing process dropped its
  /// own mapping before forwarding.
  void free_remote(SlotId id);

  /// Re-asserts ownership of `id` in the slot's birth process. A respawned
  /// process boots with the zygote's boot-time bitmap copy, which misses
  /// every acquire made since; recovery replays the leases of restored
  /// threads through this so later forwarded frees find the `used` bits
  /// set. Idempotent — already-set bits are left alone (survivor strips).
  /// Pages and residency are untouched.
  void reassert(SlotId id);

  const Config& config() const { return config_; }
  void* base() const { return base_; }
  std::size_t reservation_bytes() const { return total_bytes_; }
  std::uint32_t used_slots(int pe) const;
  std::uint32_t free_slots(int pe) const;

 private:
  explicit Region(const Config& config);
  ~Region();
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  struct Strip {
    std::mutex mutex;
    std::vector<bool> used;  ///< per-slot occupancy bitmap
    /// Per-slot paging state: true while the slot's pages are mapped R/W
    /// here. Distinct from `used` — a packed thread's slots stay *used*
    /// (identity reserved machine-wide) but not *resident* (pages dropped).
    std::vector<bool> resident;
    std::uint32_t used_count = 0;
    std::uint32_t search_hint = 0;  ///< next-fit start for contiguous scans
  };

  /// Raw page-table operations (no residency bookkeeping): mmap the slot
  /// span R/W or back to PROT_NONE.
  void map_rw(SlotId id);
  void map_none(SlotId id);

  Config config_;
  void* base_ = nullptr;
  std::size_t total_bytes_ = 0;
  std::vector<Strip> strips_;
};

}  // namespace mfc::iso
