#include "nasmz/btmz.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ampi/ampi.h"
#include "util/check.h"
#include "util/timer.h"

namespace mfc::nasmz {

namespace {

namespace ampi = mfc::ampi;

enum Dir { kWest = 0, kEast = 1, kSouth = 2, kNorth = 3 };

struct Shared {
  BtmzConfig cfg;
  ZoneGrid grid;
  std::vector<int> zone_owner;
  BtmzResult result;  // filled by rank 0
};

Shared* g_btmz = nullptr;

/// Ghost-message tag, unique per (receiving zone, receiving direction).
int edge_tag(int recv_zone, int recv_dir) { return recv_zone * 4 + recv_dir; }

/// The SSOR-sweep stand-in: deterministic CPU work proportional to points.
void zone_sweep(std::size_t points, double work_per_point) {
  volatile double acc = 0;
  const auto n = static_cast<std::size_t>(
      static_cast<double>(points) * work_per_point);
  for (std::size_t i = 0; i < n; ++i) {
    acc = acc + static_cast<double>(i & 0xff) * 1.0000001;
  }
}

/// Gathers per-rank loads (wall-while-scheduled) and returns {imbalance,
/// max-PE-load} as rank 0 computed them (broadcast to every rank).
struct PhaseStats {
  double imbalance = 0;
  double max_pe_load = 0;
};

PhaseStats phase_stats(int nranks, int npes) {
  double mine = ampi::my_load();
  std::vector<double> loads(static_cast<std::size_t>(nranks), 0.0);
  ampi::gather(&mine, 1, ampi::Dtype::kDouble, loads.data(), 0);
  PhaseStats stats;
  if (ampi::rank() == 0) {
    const auto placement = ampi::rank_placement();
    const auto per_pe = lb::pe_loads(loads, placement, npes);
    stats.imbalance = lb::mapping_imbalance(loads, placement, npes);
    stats.max_pe_load = *std::max_element(per_pe.begin(), per_pe.end());
  }
  ampi::bcast(&stats, sizeof(PhaseStats), ampi::Dtype::kByte, 0);
  return stats;
}

void rank_program() {
  const BtmzConfig& cfg = g_btmz->cfg;
  const ZoneGrid& grid = g_btmz->grid;
  const std::vector<int>& owner = g_btmz->zone_owner;
  const int me = ampi::rank();

  std::vector<int> my_zones;
  for (const Zone& z : grid.zones) {
    if (owner[static_cast<std::size_t>(z.id)] == me) my_zones.push_back(z.id);
  }

  ampi::barrier();
  const double t0 = ampi::wtime();
  PhaseStats phase1{};  // up to the LB point (or empty without LB)
  int moved = 0;

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    if (cfg.load_balance && iter == cfg.lb_at_iteration) {
      phase1 = phase_stats(cfg.nranks, cfg.npes);
      moved = ampi::migrate();  // resets per-rank load counters
    }

    // Ghost exchange: post receives for every remote edge, send every
    // remote edge, then wait (the standard deadlock-free pattern).
    std::vector<ampi::Request> recvs;
    std::vector<std::vector<double>> inboxes;
    for (int zid : my_zones) {
      const Zone& z = grid.zones[static_cast<std::size_t>(zid)];
      const int nbr[4] = {z.west, z.east, z.south, z.north};
      const std::size_t strip[4] = {
          static_cast<std::size_t>(z.ny) * static_cast<std::size_t>(z.nz),
          static_cast<std::size_t>(z.ny) * static_cast<std::size_t>(z.nz),
          static_cast<std::size_t>(z.nx) * static_cast<std::size_t>(z.nz),
          static_cast<std::size_t>(z.nx) * static_cast<std::size_t>(z.nz)};
      for (int dir = 0; dir < 4; ++dir) {
        const int n = nbr[dir];
        if (n < 0 || owner[static_cast<std::size_t>(n)] == me) continue;
        inboxes.emplace_back(strip[static_cast<std::size_t>(dir)]);
        recvs.push_back(ampi::irecv(inboxes.back().data(),
                                    inboxes.back().size(),
                                    ampi::Dtype::kDouble,
                                    owner[static_cast<std::size_t>(n)],
                                    edge_tag(zid, dir)));
      }
    }
    for (int zid : my_zones) {
      const Zone& z = grid.zones[static_cast<std::size_t>(zid)];
      // Sending my east face = the neighbor's west ghost, and so on.
      struct Edge {
        int nbr, their_dir;
        std::size_t strip;
      };
      const std::size_t ew =
          static_cast<std::size_t>(z.ny) * static_cast<std::size_t>(z.nz);
      const std::size_t ns =
          static_cast<std::size_t>(z.nx) * static_cast<std::size_t>(z.nz);
      const Edge edges[4] = {{z.west, kEast, ew},
                             {z.east, kWest, ew},
                             {z.south, kNorth, ns},
                             {z.north, kSouth, ns}};
      for (const Edge& e : edges) {
        if (e.nbr < 0 || owner[static_cast<std::size_t>(e.nbr)] == me) continue;
        std::vector<double> strip(e.strip, static_cast<double>(zid) + iter);
        ampi::send(strip.data(), strip.size(), ampi::Dtype::kDouble,
                   owner[static_cast<std::size_t>(e.nbr)],
                   edge_tag(e.nbr, e.their_dir));
      }
    }
    ampi::wait_all(recvs);

    // Compute sweep over every owned zone — the imbalance source.
    for (int zid : my_zones) {
      zone_sweep(grid.zones[static_cast<std::size_t>(zid)].points(),
                 cfg.work_per_point);
    }
  }

  ampi::barrier();
  const double t1 = ampi::wtime();
  const PhaseStats phase2 = phase_stats(cfg.nranks, cfg.npes);

  if (me == 0) {
    BtmzResult& r = g_btmz->result;
    r.total_seconds = t1 - t0;
    r.modeled_seconds = phase1.max_pe_load + phase2.max_pe_load;
    r.imbalance_before =
        cfg.load_balance ? phase1.imbalance : phase2.imbalance;
    r.imbalance_after = phase2.imbalance;
    r.ranks_moved = moved;
  }
}

}  // namespace

std::string config_name(const BtmzConfig& config) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%c.%d,%dPE", config.zone_class,
                config.nranks, config.npes);
  return buf;
}

BtmzResult run_btmz(const BtmzConfig& config) {
  Shared shared;
  shared.cfg = config;
  if (!shared.cfg.strategy) shared.cfg.strategy = lb::greedy_lb;
  shared.grid = ZoneGrid::make(config.zone_class);
  const int nzones = static_cast<int>(shared.grid.zones.size());
  MFC_CHECK_MSG(config.nranks <= nzones,
                "BT-MZ requires nranks <= number of zones");
  shared.zone_owner = assign_zones_blocked(nzones, config.nranks);
  shared.result.config_name = config_name(config);
  shared.result.total_points = shared.grid.total_points();
  shared.result.zone_size_ratio = shared.grid.size_ratio();
  g_btmz = &shared;

  ampi::Options opt;
  opt.nranks = config.nranks;
  opt.npes = config.npes;
  opt.stack_bytes = config.stack_bytes;
  opt.lb_strategy = shared.cfg.strategy;
  ampi::run(opt, rank_program);

  g_btmz = nullptr;
  return shared.result;
}

}  // namespace mfc::nasmz
