#include "nasmz/zones.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mfc::nasmz {

ZoneClassSpec zone_class(char cls) {
  switch (cls) {
    // Scaled-down analogs: zone structure matches NPB-MZ (S:2x2, W/A:4x4,
    // B:8x8); grid sizes shrunk to laptop scale while keeping the class
    // ordering S < W < A < B.
    case 'S': return {'S', 2, 2, 24, 24, 6, 10};
    case 'W': return {'W', 4, 4, 48, 48, 8, 10};
    case 'A': return {'A', 4, 4, 64, 64, 16, 10};
    case 'B': return {'B', 8, 8, 96, 80, 16, 10};
    default: break;
  }
  MFC_CHECK_MSG(false, "unknown zone class (use S, W, A, or B)");
  return {};
}

namespace {

/// Splits `total` grid points into `parts` spans following a geometric
/// progression with overall ratio `ratio` (largest/smallest), rounding to
/// integers that sum exactly to `total`, each at least 2.
std::vector<int> geometric_spans(int total, int parts, double ratio) {
  MFC_CHECK(parts >= 1 && total >= 2 * parts);
  if (parts == 1) return {total};
  const double r = std::pow(ratio, 1.0 / (parts - 1));
  std::vector<double> weights(static_cast<std::size_t>(parts));
  double sum = 0;
  for (int i = 0; i < parts; ++i) {
    weights[static_cast<std::size_t>(i)] = std::pow(r, i);
    sum += weights[static_cast<std::size_t>(i)];
  }
  std::vector<int> spans(static_cast<std::size_t>(parts));
  int used = 0;
  for (int i = 0; i < parts; ++i) {
    spans[static_cast<std::size_t>(i)] = std::max(
        2, static_cast<int>(weights[static_cast<std::size_t>(i)] / sum * total));
    used += spans[static_cast<std::size_t>(i)];
  }
  // Fix rounding drift on the largest span.
  spans.back() += total - used;
  MFC_CHECK(spans.back() >= 2);
  return spans;
}

}  // namespace

ZoneGrid ZoneGrid::make(char cls, double target_ratio) {
  ZoneGrid grid;
  grid.spec = zone_class(cls);
  const ZoneClassSpec& s = grid.spec;
  // Split the overall ratio between the two dimensions: sqrt each.
  const double per_dim = std::sqrt(target_ratio);
  const auto x_spans = geometric_spans(s.gx, s.x_zones, per_dim);
  const auto y_spans = geometric_spans(s.gy, s.y_zones, per_dim);

  grid.zones.resize(static_cast<std::size_t>(s.x_zones) *
                    static_cast<std::size_t>(s.y_zones));
  for (int yi = 0; yi < s.y_zones; ++yi) {
    for (int xi = 0; xi < s.x_zones; ++xi) {
      const int id = yi * s.x_zones + xi;
      Zone& z = grid.zones[static_cast<std::size_t>(id)];
      z.id = id;
      z.xi = xi;
      z.yi = yi;
      z.nx = x_spans[static_cast<std::size_t>(xi)];
      z.ny = y_spans[static_cast<std::size_t>(yi)];
      z.nz = s.gz;
      z.west = xi > 0 ? id - 1 : -1;
      z.east = xi < s.x_zones - 1 ? id + 1 : -1;
      z.south = yi > 0 ? id - s.x_zones : -1;
      z.north = yi < s.y_zones - 1 ? id + s.x_zones : -1;
    }
  }
  return grid;
}

std::size_t ZoneGrid::total_points() const {
  std::size_t total = 0;
  for (const Zone& z : zones) total += z.points();
  return total;
}

double ZoneGrid::size_ratio() const {
  std::size_t mn = zones.front().points(), mx = mn;
  for (const Zone& z : zones) {
    mn = std::min(mn, z.points());
    mx = std::max(mx, z.points());
  }
  return static_cast<double>(mx) / static_cast<double>(mn);
}

std::vector<int> assign_zones_blocked(int nzones, int nranks) {
  MFC_CHECK(nranks >= 1 && nzones >= 1);
  std::vector<int> assignment(static_cast<std::size_t>(nzones));
  for (int z = 0; z < nzones; ++z) {
    assignment[static_cast<std::size_t>(z)] =
        static_cast<int>(static_cast<long>(z) * nranks / nzones);
  }
  return assignment;
}

std::vector<std::size_t> rank_points(const ZoneGrid& grid,
                                     const std::vector<int>& assignment,
                                     int nranks) {
  std::vector<std::size_t> totals(static_cast<std::size_t>(nranks), 0);
  for (const Zone& z : grid.zones) {
    totals[static_cast<std::size_t>(assignment[static_cast<std::size_t>(z.id)])] +=
        z.points();
  }
  return totals;
}

}  // namespace mfc::nasmz
