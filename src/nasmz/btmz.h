// BT-MZ-analog benchmark driver (paper §4.5, Figure 12).
//
// Runs the multi-zone workload under AMPI: each rank is a migratable
// thread owning a contiguous block of (unevenly sized) zones. Every
// iteration performs the zone ghost exchange followed by an SSOR-like
// compute sweep proportional to zone points. With load balancing enabled,
// ranks call MPI_Migrate after a warm-up iteration and the measured thread
// loads drive the strategy — no benchmark code changes, exactly the
// "transparent thread migration" of the paper.
#pragma once

#include <string>

#include "lb/strategy.h"
#include "nasmz/zones.h"

namespace mfc::nasmz {

struct BtmzConfig {
  char zone_class = 'S';
  int nranks = 4;
  int npes = 2;
  int iterations = 8;       ///< total solver iterations
  int lb_at_iteration = 2;  ///< when balancing, migrate after this many
  bool load_balance = false;
  lb::Strategy strategy;    ///< defaults to greedy when balancing
  double work_per_point = 12.0;  ///< busy-loop multiplier per grid point
  std::size_t stack_bytes = 256 * 1024;
};

struct BtmzResult {
  std::string config_name;      ///< e.g. "A.16,4PE"
  double total_seconds = 0;     ///< wall time of the iteration loop
  /// Modeled parallel execution time: the max over PEs of the seconds
  /// their resident ranks were scheduled in, summed across the pre- and
  /// post-LB phases. On dedicated processors this IS the wall time; on
  /// this repository's emulation host (PE kernel threads time-sharing
  /// fewer physical cores) measured wall time flattens toward
  /// total/throughput, so the modeled figure is the one comparable to the
  /// paper's Figure 12.
  double modeled_seconds = 0;
  double imbalance_before = 0;  ///< max/mean PE load at the LB point
  double imbalance_after = 0;   ///< max/mean PE load at the end
  int ranks_moved = 0;
  std::size_t total_points = 0;
  double zone_size_ratio = 0;
};

/// Boots an AMPI machine and runs the benchmark. Not reentrant with another
/// running machine.
BtmzResult run_btmz(const BtmzConfig& config);

/// Paper-style configuration label, e.g. "A.16,4PE".
std::string config_name(const BtmzConfig& config);

}  // namespace mfc::nasmz
