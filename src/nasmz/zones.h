// Multi-zone mesh generator modeled on the NAS Parallel Benchmark
// "Multi-Zone" suite (paper §4.5, reference [18]).
//
// BT-MZ's defining property is its *uneven* zone decomposition: the overall
// grid is split into x_zones × y_zones zones whose spans follow a geometric
// progression, with the largest zone roughly 20× the smallest. Assigning
// contiguous zone blocks to ranks therefore produces the "most dramatic
// load imbalance" of the suite — the workload the paper uses to demonstrate
// thread-migration load balancing (Figure 12).
#pragma once

#include <cstddef>
#include <vector>

namespace mfc::nasmz {

/// Problem-class table (scaled-down analog of the NPB-MZ classes; same
/// zone-count structure, laptop-sized grids).
struct ZoneClassSpec {
  char name = 'S';
  int x_zones = 2, y_zones = 2;
  int gx = 24, gy = 24, gz = 6;  ///< aggregate grid points
  int iterations = 10;
};

ZoneClassSpec zone_class(char cls);  ///< 'S', 'W', 'A', or 'B'

struct Zone {
  int id = -1;
  int xi = 0, yi = 0;      ///< zone coordinates in the zone grid
  int nx = 0, ny = 0, nz = 0;  ///< grid points in this zone
  int west = -1, east = -1, south = -1, north = -1;  ///< neighbor ids, -1 at edges

  std::size_t points() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
};

struct ZoneGrid {
  ZoneClassSpec spec;
  std::vector<Zone> zones;

  /// Builds the geometric decomposition: zone spans in x and y follow
  /// ratio r with max/min point count ≈ target_ratio (BT-MZ uses ~20).
  static ZoneGrid make(char cls, double target_ratio = 20.0);

  std::size_t total_points() const;
  double size_ratio() const;  ///< largest/smallest zone point count
};

/// Contiguous block assignment of zones to ranks (result[zone] = rank).
/// Because zone sizes are geometric, contiguous blocks concentrate the big
/// zones on the last ranks — the imbalance source.
std::vector<int> assign_zones_blocked(int nzones, int nranks);

/// Per-rank point totals implied by an assignment — the a-priori load model.
std::vector<std::size_t> rank_points(const ZoneGrid& grid,
                                     const std::vector<int>& assignment,
                                     int nranks);

}  // namespace mfc::nasmz
