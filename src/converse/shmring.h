// SPSC byte rings in a shared-memory segment — the shm transport's wire.
//
// The segment holds a grid of single-producer single-consumer rings:
// rings[dest_proc][producer], where `producer` is either a PE id (that PE's
// kernel thread is the only writer) or the extra per-destination control
// slot (written only by the one thread that decides shutdown). The single
// consumer of every ring targeting process k is k's comm thread. Pinning
// one writer and one reader per ring is what lets the ring reuse the PR 1
// queue discipline — release/acquire head/tail on separate cache lines, no
// CAS, no locks — across address spaces.
//
// A ring carries whole wire frames (Header + payload). The producer only
// publishes `tail` after a complete frame is in place, so the consumer never
// observes a torn frame; messages larger than the ring are chunked by the
// transport into kChunk frames that each fit. `try_push(..., publish=false)`
// writes the frame but delays the tail store until `publish()` — the
// transport uses this to run a sender's on_consumed callback (e.g. the
// destructive migration-pack epilogue) after the bytes are copied out but
// before the frame becomes visible to the consumer.
//
// The segment is created with shm_open + ftruncate + mmap(MAP_SHARED) before
// the machine forks, and shm_unlink'd immediately — children inherit the
// mapping; nothing persists if a process dies.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "converse/wire.h"
#include "util/check.h"

namespace mfc::converse::shm {

/// Per-ring control block. head/tail are free-running byte counters
/// (consumer owns head, producer owns tail); they sit on separate cache
/// lines so the producer's tail stores never bounce the consumer's head
/// line, matching the queue.h layout discipline.
struct RingCtrl {
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
  alignas(64) std::uint64_t capacity;  ///< power of two, bytes
};
static_assert(sizeof(RingCtrl) == 192);

/// View over one ring inside the segment (ctrl block + data bytes).
class RingView {
 public:
  RingView() = default;
  RingView(RingCtrl* ctrl, char* data)
      : ctrl_(ctrl),
        data_(data),
        pending_tail_(ctrl->tail.load(std::memory_order_relaxed)) {}

  bool valid() const { return ctrl_ != nullptr; }
  std::uint64_t capacity() const { return ctrl_->capacity; }

  /// Largest frame payload this ring can carry in one piece.
  std::uint64_t max_payload() const {
    return ctrl_->capacity - sizeof(wire::Header);
  }

  /// Producer side. Copies header + spans into the ring; returns false if
  /// the frame does not fit right now. With publish=false the tail store is
  /// deferred to publish() — at most one unpublished frame may be pending.
  bool try_push(const wire::Header& h, const wire::Span* spans,
                std::size_t nspans, bool publish = true) {
    const std::uint64_t need = sizeof(wire::Header) + h.payload_len;
    MFC_CHECK_MSG(need <= ctrl_->capacity, "shmring: frame exceeds ring");
    const std::uint64_t head = ctrl_->head.load(std::memory_order_acquire);
    const std::uint64_t tail = pending_tail_;
    if (ctrl_->capacity - (tail - head) < need) return false;
    put(tail, &h, sizeof h);
    std::uint64_t at = tail + sizeof h;
    for (std::size_t i = 0; i < nspans; ++i) {
      put(at, spans[i].data, spans[i].len);
      at += spans[i].len;
    }
    pending_tail_ = tail + need;
    if (publish) this->publish();
    return true;
  }

  /// Makes the pending frame(s) visible to the consumer.
  void publish() {
    ctrl_->tail.store(pending_tail_, std::memory_order_release);
  }

  /// Consumer side: pops one frame if available. Sink protocol matches
  /// wire::Reader (on_header returns the payload destination or nullptr
  /// for none-needed; on_frame sees the filled buffer).
  template <typename Sink>
  bool try_pop(Sink& sink) {
    const std::uint64_t head = ctrl_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
    if (tail == head) return false;
    wire::Header h;
    get(head, &h, sizeof h);
    char* dst = sink.on_header(h);
    if (dst != nullptr && h.payload_len != 0)
      get(head + sizeof h, dst, h.payload_len);
    ctrl_->head.store(head + sizeof h + h.payload_len,
                      std::memory_order_release);
    sink.on_frame(h, dst);
    return true;
  }

  bool empty() const {
    return ctrl_->tail.load(std::memory_order_acquire) ==
           ctrl_->head.load(std::memory_order_relaxed);
  }

  /// Producer-side init after attach (called once, pre-fork).
  void init(std::uint64_t capacity) {
    ctrl_->head.store(0, std::memory_order_relaxed);
    ctrl_->tail.store(0, std::memory_order_relaxed);
    ctrl_->capacity = capacity;
    pending_tail_ = 0;
  }

 private:
  void put(std::uint64_t pos, const void* src, std::size_t n) {
    const std::uint64_t mask = ctrl_->capacity - 1;
    std::uint64_t off = pos & mask;
    std::uint64_t first = ctrl_->capacity - off;
    if (first >= n) {
      std::memcpy(data_ + off, src, n);
    } else {
      std::memcpy(data_ + off, src, first);
      std::memcpy(data_, static_cast<const char*>(src) + first, n - first);
    }
  }
  void get(std::uint64_t pos, void* dst, std::size_t n) {
    const std::uint64_t mask = ctrl_->capacity - 1;
    std::uint64_t off = pos & mask;
    std::uint64_t first = ctrl_->capacity - off;
    if (first >= n) {
      std::memcpy(dst, data_ + off, n);
    } else {
      std::memcpy(dst, data_ + off, first);
      std::memcpy(static_cast<char*>(dst) + first, data_, n - first);
    }
  }

  RingCtrl* ctrl_ = nullptr;
  char* data_ = nullptr;
  /// Producer-local shadow of tail (includes unpublished frames). Only the
  /// single producer reads/writes it, so it lives in the view, not the
  /// shared ctrl block.
  std::uint64_t pending_tail_ = 0;
};

/// The whole segment: nprocs × (npes + 1) rings. Ring (dest_proc, producer)
/// carries frames from `producer` (a PE, or the control slot producer ==
/// npes) to dest_proc's comm thread.
class Segment {
 public:
  Segment() = default;
  ~Segment() { unmap(); }
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  static std::size_t ring_footprint(std::size_t ring_bytes) {
    return sizeof(RingCtrl) + ring_bytes;
  }

  /// Creates and maps the segment (pre-fork). `ring_bytes` must be a power
  /// of two. The shm name is derived from the pid so concurrent test
  /// binaries do not collide; the name is unlinked before returning.
  void create(int nprocs, int npes, std::size_t ring_bytes) {
    MFC_CHECK_MSG((ring_bytes & (ring_bytes - 1)) == 0,
                  "shm_ring_bytes must be a power of two");
    nprocs_ = nprocs;
    npes_ = npes;
    ring_bytes_ = ring_bytes;
    bytes_ = static_cast<std::size_t>(nprocs) * (npes + 1) *
             ring_footprint(ring_bytes);
    char name[64];
    std::snprintf(name, sizeof name, "/mfc-ring-%d-%p", ::getpid(),
                  static_cast<void*>(this));
    int fd = ::shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
    MFC_CHECK_MSG(fd >= 0, "shm_open failed");
    ::shm_unlink(name);
    MFC_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(bytes_)) == 0,
                  "ftruncate on shm segment failed");
    base_ = static_cast<char*>(::mmap(nullptr, bytes_,
                                      PROT_READ | PROT_WRITE, MAP_SHARED,
                                      fd, 0));
    ::close(fd);
    MFC_CHECK_MSG(base_ != MAP_FAILED, "mmap of shm segment failed");
    for (int d = 0; d < nprocs; ++d)
      for (int p = 0; p <= npes; ++p) ring(d, p).init(ring_bytes);
  }

  /// Ring carrying frames from `producer` to process `dest_proc`.
  /// `producer` in [0, npes); `npes` selects the control slot.
  RingView ring(int dest_proc, int producer) {
    std::size_t idx =
        static_cast<std::size_t>(dest_proc) * (npes_ + 1) + producer;
    char* at = base_ + idx * ring_footprint(ring_bytes_);
    return RingView(reinterpret_cast<RingCtrl*>(at), at + sizeof(RingCtrl));
  }

  int nprocs() const { return nprocs_; }
  int npes() const { return npes_; }

  void unmap() {
    if (base_ != nullptr && base_ != MAP_FAILED) ::munmap(base_, bytes_);
    base_ = nullptr;
  }

 private:
  char* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t ring_bytes_ = 0;
  int nprocs_ = 0;
  int npes_ = 0;
};

}  // namespace mfc::converse::shm
