#include "converse/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "converse/machine.h"
#include "converse/shmring.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"

namespace mfc::converse::transport {

namespace {

using metrics::Counter;
using wire::Kind;

// Wire-span trace codes (Record.a of kWireSendBegin): which path carried
// the message. The exporter names the span "wire-send:<code name>".
constexpr std::uint32_t kTraceEager = 0;
constexpr std::uint32_t kTraceChunk = 1;
constexpr std::uint32_t kTraceRdv = 2;

char* payload_ptr(Message* m) { return m->payload.data(); }

/// Sub-spans covering [off, off+len) of a span list (chunking).
std::vector<wire::Span> slice_spans(const wire::Span* spans, std::size_t n,
                                    std::uint64_t off, std::uint64_t len) {
  std::vector<wire::Span> out;
  std::uint64_t skip = off, want = len;
  for (std::size_t i = 0; i < n && want > 0; ++i) {
    std::uint64_t l = spans[i].len;
    if (skip >= l) {
      skip -= l;
      continue;
    }
    std::uint64_t take = l - skip < want ? l - skip : want;
    out.push_back({static_cast<const char*>(spans[i].data) + skip,
                   static_cast<std::size_t>(take)});
    skip = 0;
    want -= take;
  }
  MFC_CHECK(want == 0);
  return out;
}

// ---------------------------------------------------------------------------
// Shared-memory ring transport.
// ---------------------------------------------------------------------------

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const Options& o)
      : opt_(o), ppn_(o.npes / o.nprocs) {
    MFC_CHECK(o.npes >= 1 && o.nprocs >= 1 && o.npes % o.nprocs == 0);
    seg_.create(o.nprocs, o.npes, o.shm_ring_bytes);
  }

  ~ShmTransport() override {
    if (comm_.joinable()) {
      stop_local();
      comm_.join();
    }
  }

  void start(int my_proc, Hooks hooks) override {
    my_proc_ = my_proc;
    hooks_ = std::move(hooks);
    // Persistent producer views for this process's PEs (the view carries
    // the producer-local pending-tail shadow): views_[local_pe][dest_proc].
    views_.resize(static_cast<std::size_t>(ppn_) * opt_.nprocs);
    for (int lp = 0; lp < ppn_; ++lp)
      for (int d = 0; d < opt_.nprocs; ++d)
        views_[static_cast<std::size_t>(lp) * opt_.nprocs + d] =
            seg_.ring(d, my_proc * ppn_ + lp);
    assembly_.resize(static_cast<std::size_t>(opt_.npes) + 1);
    comm_ = std::thread([this] { comm_loop(); });
  }

  void send(const wire::Header& hdr, const wire::Span* spans, std::size_t n,
            std::function<void()> on_consumed) override {
    wire::Header h = hdr;
    const int dproc = h.dest_pe / ppn_;
    shm::RingView& rv = producer_view(h.src_pe, dproc);
    const std::uint64_t limit = max_chunk_payload();
    metrics::bump(Counter::kWireSentBytes, h.payload_len);
    if (h.payload_len <= limit) {
      h.kind = static_cast<std::uint32_t>(Kind::kEager);
      trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceEager, 0,
                  static_cast<std::int16_t>(h.dest_pe));
      metrics::bump(Counter::kWireSentFrames);
      // Delayed publish: the frame's bytes are in the ring but invisible
      // until after on_consumed — the pack epilogue can evacuate the pages
      // the spans pointed into before the message can be delivered.
      if (!push_wait(rv, h, spans, n, /*publish=*/on_consumed == nullptr)) {
        if (on_consumed) on_consumed();
        trace::emit(trace::Ev::kWireSendEnd);
        return;  // dropped post-stop
      }
      if (on_consumed) {
        on_consumed();
        rv.publish();
      }
      trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                  static_cast<std::uint32_t>(h.payload_len +
                                             sizeof(wire::Header)));
      return;
    }
    // Chunked: every piece fits half the ring; the final chunk's publish is
    // delayed exactly like the single-frame case, so the message cannot
    // complete at the consumer before on_consumed runs.
    h.kind = static_cast<std::uint32_t>(Kind::kChunk);
    h.total_len = hdr.payload_len;
    trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceChunk, 0,
                static_cast<std::int16_t>(h.dest_pe));
    std::uint64_t off = 0;
    std::uint64_t frames = 0;
    while (off < h.total_len) {
      const std::uint64_t len =
          h.total_len - off < limit ? h.total_len - off : limit;
      const bool last = off + len == h.total_len;
      std::vector<wire::Span> sub = slice_spans(spans, n, off, len);
      h.offset = off;
      h.payload_len = len;
      metrics::bump(Counter::kWireSentFrames);
      metrics::bump(Counter::kWireChunks);
      ++frames;
      if (!push_wait(rv, h, sub.data(), sub.size(),
                     /*publish=*/!(last && on_consumed != nullptr))) {
        if (on_consumed) on_consumed();
        trace::emit(trace::Ev::kWireSendEnd);
        return;  // dropped post-stop; partial assembly freed at teardown
      }
      if (last && on_consumed) {
        on_consumed();
        rv.publish();
      }
      off += len;
    }
    trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                static_cast<std::uint32_t>(h.total_len +
                                           frames * sizeof(wire::Header)));
  }

  void send_proc_done(int src_pe) override {
    if (my_proc_ == 0) {
      hooks_.on_proc_done();
      return;
    }
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kProcDone);
    h.src_pe = src_pe;
    h.dest_pe = 0;
    shm::RingView& rv = producer_view(src_pe, /*dproc=*/0);
    push_wait(rv, h, nullptr, 0, true);
  }

  void broadcast_stop() override {
    // Only the one thread that saw the last ProcDone gets here, so the
    // control slot keeps its single producer.
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kStop);
    for (int d = 0; d < opt_.nprocs; ++d) {
      if (d == my_proc_) continue;
      shm::RingView rv = seg_.ring(d, opt_.npes);
      while (!rv.try_push(h, nullptr, 0))
        std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    hooks_.on_stop();
  }

  void stop_local() override {
    stop_.store(true, std::memory_order_release);
  }

  void join() override {
    MFC_CHECK(stop_.load(std::memory_order_acquire));
    if (comm_.joinable()) comm_.join();
  }

  void send_ctl(const wire::Header& hdr) override {
    wire::Header h = hdr;
    h.kind = static_cast<std::uint32_t>(Kind::kFtCtl);
    h.payload_len = 0;
    const int dproc = h.dest_pe / ppn_;
    if (dproc == my_proc_) {
      if (hooks_.ft_ctl) hooks_.ft_ctl(h);
      return;
    }
    push_wait(producer_view(h.src_pe, dproc), h, nullptr, 0, true);
  }

  bool quiescent() override {
    // The rings live in shared memory, so one process can observe the
    // whole machine's in-flight bytes. A frame popped but not yet
    // enqueued is covered by the QD wave's unchanged-counts rule.
    for (int d = 0; d < opt_.nprocs; ++d)
      for (int s = 0; s <= opt_.npes; ++s)
        if (!seg_.ring(d, s).empty()) return false;
    return true;
  }

  void attach_peer(int proc, int fd, std::uint64_t gen) override {
    // The rings are crash-consistent (frames become visible only at the
    // tail publish), so the respawn keeps them: its consumer drains
    // whatever the old incarnation left unread, and its producers start
    // from the shared tails. Only receive-side state referring to the old
    // incarnation needs discarding: messages it half-shipped will never
    // see their remaining chunks.
    MFC_CHECK(fd < 0);
    (void)gen;
    for (int lp = 0; lp < ppn_; ++lp) {
      Assembly& a = assembly_[static_cast<std::size_t>(proc * ppn_ + lp)];
      if (a.m != nullptr) {
        hooks_.drop(a.m);
        a.m = nullptr;
      }
    }
  }

 private:
  /// One in-progress chunked (or about-to-be-enqueued eager) message per
  /// SPSC ring: the producer finishes one message before starting the next,
  /// so a slot never needs more than one.
  struct Assembly {
    Message* m = nullptr;
  };

  struct Sink {
    ShmTransport* t = nullptr;
    int slot = 0;
    /// Drops a half-assembled message left by a producer that died between
    /// chunks; only legal when peer loss is tolerated.
    void drop_stale(Assembly& a) {
      MFC_CHECK_MSG(t->hooks_.tolerate_peer_loss,
                    "new message before the previous chunk sequence ended");
      t->hooks_.drop(a.m);
      a.m = nullptr;
    }

    char* on_header(const wire::Header& h) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager: {
          Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
          if (a.m != nullptr) drop_stale(a);
          a.m = t->hooks_.alloc(h, h.payload_len);
          return payload_ptr(a.m);
        }
        case Kind::kChunk: {
          Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
          if (h.offset == 0) {
            if (a.m != nullptr) drop_stale(a);
            a.m = t->hooks_.alloc(h, h.total_len);
            trace::emit(trace::Ev::kWireAsmBegin, h.trace_flow, 0,
                        static_cast<std::uint32_t>(h.total_len),
                        static_cast<std::int16_t>(h.src_pe));
          }
          if (a.m == nullptr) {
            // Orphan tail: the dead incarnation consumed this message's
            // head chunks before it was killed. Skip the bytes (the ring
            // stays framed — try_pop advances past unclaimed payloads).
            MFC_CHECK_MSG(t->hooks_.tolerate_peer_loss,
                          "chunk continuation with no assembly in progress");
            return nullptr;
          }
          return payload_ptr(a.m) + h.offset;
        }
        default:
          return nullptr;
      }
    }
    void on_frame(const wire::Header& h, char*) {
      Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
          metrics::bump(Counter::kWireDelivered);
          trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                      static_cast<std::uint32_t>(h.payload_len),
                      static_cast<std::int16_t>(h.src_pe));
          t->hooks_.enqueue(a.m);
          a.m = nullptr;
          break;
        case Kind::kChunk:
          if (a.m != nullptr && h.offset + h.payload_len == h.total_len) {
            metrics::bump(Counter::kWireDelivered);
            trace::emit(trace::Ev::kWireAsmEnd);
            trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                        static_cast<std::uint32_t>(h.total_len),
                        static_cast<std::int16_t>(h.src_pe));
            t->hooks_.enqueue(a.m);
            a.m = nullptr;
          }
          break;
        case Kind::kProcDone:
          t->hooks_.on_proc_done();
          break;
        case Kind::kStop:
          t->hooks_.on_stop();
          break;
        case Kind::kFtCtl:
          if (t->hooks_.ft_ctl) t->hooks_.ft_ctl(h);
          break;
        default:
          MFC_CHECK_MSG(false, "unexpected frame kind on shm ring");
      }
    }
  };

  shm::RingView& producer_view(int src_pe, int dproc) {
    const int lp = src_pe - my_proc_ * ppn_;
    MFC_CHECK_MSG(lp >= 0 && lp < ppn_,
                  "wire sends must originate on a local PE thread");
    return views_[static_cast<std::size_t>(lp) * opt_.nprocs + dproc];
  }

  std::uint64_t max_chunk_payload() const {
    return opt_.shm_ring_bytes / 2 - sizeof(wire::Header);
  }

  bool push_wait(shm::RingView& rv, const wire::Header& h,
                 const wire::Span* s, std::size_t n, bool publish) {
    int waits = 0;
    while (!rv.try_push(h, s, n, publish)) {
      // The consumer always drains, so a full ring clears; after stop the
      // consumer may be gone — give up (the drop is benign post-stop).
      ++waits;
      if (stop_.load(std::memory_order_relaxed) && waits > 2500) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    return true;
  }

  void comm_loop() {
    // Comm-thread wire events (deliver, chunk assembly) land on the trace
    // session's dedicated wire ring, not a PE ring.
    trace::bind_comm();
    const int nslots = opt_.npes + 1;
    std::vector<Sink> sinks(static_cast<std::size_t>(nslots));
    for (int s = 0; s < nslots; ++s)
      sinks[static_cast<std::size_t>(s)] = {this, s};
    std::uint64_t idle_rounds = 0;
    std::uint64_t rounds = 0;
    for (;;) {
      bool any = false;
      for (int s = 0; s < nslots; ++s) {
        shm::RingView rv = seg_.ring(my_proc_, s);
        while (rv.try_pop(sinks[static_cast<std::size_t>(s)])) any = true;
      }
      ++rounds;
      if (any) {
        idle_rounds = 0;
        // A busy comm thread must still service the machine's idle hook:
        // the respawn control channel (peer-swap orders) rides it, and a
        // recovery storm keeps the rings hot for its whole duration.
        if (hooks_.idle && (rounds & 63) == 0) hooks_.idle();
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      ++idle_rounds;
      if (hooks_.idle && (idle_rounds & 63) == 0) hooks_.idle();
      // Single-CPU-friendly: sleep immediately, bounded so stop and fresh
      // traffic are observed promptly.
      const std::uint64_t us = idle_rounds < 10 ? 50 * idle_rounds : 500;
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    // Writers that completed concurrently with stop: one last sweep, then
    // free anything still half-assembled.
    for (int s = 0; s < nslots; ++s) {
      shm::RingView rv = seg_.ring(my_proc_, s);
      while (rv.try_pop(sinks[static_cast<std::size_t>(s)])) {
      }
    }
    for (Assembly& a : assembly_) {
      if (a.m != nullptr) {
        hooks_.drop(a.m);
        a.m = nullptr;
      }
    }
  }

  Options opt_;
  int ppn_ = 1;
  int my_proc_ = 0;
  shm::Segment seg_;
  Hooks hooks_;
  std::atomic<bool> stop_{false};
  std::thread comm_;
  std::vector<shm::RingView> views_;
  std::vector<Assembly> assembly_;
};

// ---------------------------------------------------------------------------
// Socket/stream transport (AF_UNIX socketpairs; AF_INET-shaped framing).
// ---------------------------------------------------------------------------

/// FdIo variant for peer-loss-tolerant mode. Plain FdIo treats EPIPE as a
/// silent drop and polls a full send buffer forever; with a killable peer
/// both are wrong: a stalled buffer toward a dead process never drains, and
/// a reset mid-frame must surface so the frame can be retried on the
/// replacement stream. Every stall and reset bumps kWireRetries; the
/// POLLOUT patience is bounded so the comm path stays live.
class RobustIo {
 public:
  explicit RobustIo(int fd) : fd_(fd) {}

  std::ptrdiff_t read_some(void* dst, std::size_t n) {
    wire::FdIo io(fd_);
    return io.read_some(dst, n);
  }

  std::ptrdiff_t write_some(const iovec* iov, int iovcnt) {
    int stalls = 0;
    for (;;) {
      msghdr mh{};
      mh.msg_iov = const_cast<iovec*>(iov);
      mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
      ssize_t w = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
      if (w > 0) return w;
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        metrics::bump(Counter::kWireRetries);
        if (++stalls > kMaxStalls) return 0;
        pollfd p{fd_, POLLOUT, 0};
        ::poll(&p, 1, 100);
        continue;
      }
      metrics::bump(Counter::kWireRetries);  // EPIPE / ECONNRESET
      return 0;
    }
  }

 private:
  static constexpr int kMaxStalls = 50;  ///< ~5 s of POLLOUT patience
  int fd_ = -1;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const Options& o)
      : opt_(o), ppn_(o.npes / o.nprocs) {
    MFC_CHECK(o.npes >= 1 && o.nprocs >= 1 && o.npes % o.nprocs == 0);
    if (o.nprocs == 1) {
      // Loopback: one pair; sends write sv[0], the comm thread reads sv[1].
      // Everything goes eager (the rendezvous control frames would have to
      // loop through the single comm thread that is also the data reader).
      int sv[2];
      MFC_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
      loop_send_ = sv[0];
      loop_recv_ = sv[1];
    } else {
      ends_.assign(static_cast<std::size_t>(o.nprocs),
                   std::vector<int>(static_cast<std::size_t>(o.nprocs), -1));
      for (int i = 0; i < o.nprocs; ++i) {
        for (int j = i + 1; j < o.nprocs; ++j) {
          int sv[2];
          MFC_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
          ends_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              sv[0];
          ends_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
              sv[1];
        }
      }
    }
  }

  ~SocketTransport() override {
    if (comm_.joinable()) {
      stop_local();
      comm_.join();
    }
    close_all();
  }

  void start(int my_proc, Hooks hooks) override {
    my_proc_ = my_proc;
    hooks_ = std::move(hooks);
    send_fd_.assign(static_cast<std::size_t>(opt_.nprocs), -1);
    send_mu_ = std::make_unique<std::mutex[]>(
        static_cast<std::size_t>(opt_.nprocs));
    peer_gen_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(opt_.nprocs));
    if (opt_.nprocs == 1) {
      send_fd_[0] = loop_send_;
      recv_.push_back({loop_recv_, 0});
    } else {
      for (int q = 0; q < opt_.nprocs; ++q) {
        if (q == my_proc) continue;
        int fd = ends_[static_cast<std::size_t>(my_proc)]
                      [static_cast<std::size_t>(q)];
        send_fd_[static_cast<std::size_t>(q)] = fd;
        recv_.push_back({fd, q});
      }
      // Close every end that belongs to another process.
      for (int i = 0; i < opt_.nprocs; ++i) {
        if (i == my_proc) continue;
        for (int& fd : ends_[static_cast<std::size_t>(i)]) {
          if (fd >= 0) ::close(fd);
          fd = -1;
        }
      }
    }
    MFC_CHECK(::pipe(wake_pipe_) == 0);
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    comm_ = std::thread([this] { comm_loop(); });
  }

  void send(const wire::Header& hdr, const wire::Span* spans, std::size_t n,
            std::function<void()> on_consumed) override {
    wire::Header h = hdr;
    const int dproc = h.dest_pe / ppn_;
    metrics::bump(Counter::kWireSentBytes, h.payload_len);
    const bool rendezvous =
        opt_.nprocs > 1 && h.payload_len > opt_.rendezvous_bytes;
    if (!rendezvous) {
      h.kind = static_cast<std::uint32_t>(Kind::kEager);
      trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceEager, 0,
                  static_cast<std::int16_t>(h.dest_pe));
      metrics::bump(Counter::kWireSentFrames);
      if (on_consumed) {
        // Stage first so on_consumed runs before any byte can reach the
        // destination (delivery-before-epilogue would race a same-process
        // install against the pack epilogue's evacuate).
        std::vector<char> staged(h.payload_len);
        wire::spans_gather(staged.data(), spans, n);
        on_consumed();
        wire::Span s{staged.data(), staged.size()};
        robust_write(dproc, h, &s, 1, /*can_wait=*/true);
      } else {
        robust_write(dproc, h, spans, n, /*can_wait=*/true);
      }
      trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                  static_cast<std::uint32_t>(h.payload_len +
                                             sizeof(wire::Header)));
      return;
    }
    // Rendezvous: RTS → (receiver pre-sizes the landing payload) → CTS →
    // the blocked sender writev's its spans straight to the socket. The
    // image bytes touch no intermediate buffer on either side: writev
    // reads the live slots, and the reader lands bytes directly in the
    // destination envelope's payload.
    metrics::bump(Counter::kWireRendezvous);
    const std::uint64_t id =
        (static_cast<std::uint64_t>(my_proc_) << 48) |
        rdv_seq_.fetch_add(1, std::memory_order_relaxed);
    trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceRdv, 0,
                static_cast<std::int16_t>(h.dest_pe));
    PendingSend ps;
    ps.dproc = dproc;
    {
      std::lock_guard<std::mutex> lk(rdv_mu_);
      pending_sends_[id] = &ps;
    }
    wire::Header rts = h;
    rts.kind = static_cast<std::uint32_t>(Kind::kRts);
    rts.payload_len = 0;
    rts.total_len = h.payload_len;
    rts.msg_id = id;
    robust_write(dproc, rts, nullptr, 0, /*can_wait=*/true);
    trace::emit(trace::Ev::kWireRts, id, 0,
                static_cast<std::uint32_t>(h.payload_len),
                static_cast<std::int16_t>(h.dest_pe));
    metrics::bump(Counter::kWireSentFrames);
    {
      std::unique_lock<std::mutex> lk(ps.mu);
      while (!ps.go && !ps.aborted) {
        ps.cv.wait_for(lk, std::chrono::milliseconds(100));
        if (!ps.go && !ps.aborted && stop_.load(std::memory_order_acquire))
          break;
      }
    }
    {
      std::lock_guard<std::mutex> lk(rdv_mu_);
      pending_sends_.erase(id);
    }
    if (ps.go) {
      wire::Header data = h;
      data.kind = static_cast<std::uint32_t>(Kind::kData);
      data.msg_id = id;
      data.total_len = h.payload_len;
      metrics::bump(Counter::kWireSentFrames);
      robust_write(dproc, data, spans, n, /*can_wait=*/true);
      trace::emit(trace::Ev::kWireRdvDone, id, 0,
                  static_cast<std::uint32_t>(h.payload_len));
    }
    if (on_consumed) on_consumed();
    trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                static_cast<std::uint32_t>(h.payload_len +
                                           3 * sizeof(wire::Header)));
  }

  void send_proc_done(int src_pe) override {
    if (my_proc_ == 0) {
      hooks_.on_proc_done();
      return;
    }
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kProcDone);
    h.src_pe = src_pe;
    h.dest_pe = 0;
    robust_write(0, h, nullptr, 0, /*can_wait=*/true);
  }

  void broadcast_stop() override {
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kStop);
    for (int d = 0; d < opt_.nprocs; ++d) {
      if (d == my_proc_) continue;
      robust_write(d, h, nullptr, 0, /*can_wait=*/true);
    }
    hooks_.on_stop();
  }

  void stop_local() override {
    stop_.store(true, std::memory_order_release);
    if (wake_pipe_[1] >= 0) {
      char b = 1;
      [[maybe_unused]] ssize_t r = ::write(wake_pipe_[1], &b, 1);
    }
    // Wake any sender still waiting for a CTS that will never come.
    std::lock_guard<std::mutex> lk(rdv_mu_);
    for (auto& [id, ps] : pending_sends_) {
      (void)id;
      std::lock_guard<std::mutex> plk(ps->mu);
      ps->cv.notify_all();
    }
  }

  void join() override {
    MFC_CHECK(stop_.load(std::memory_order_acquire));
    if (comm_.joinable()) comm_.join();
  }

  void send_ctl(const wire::Header& hdr) override {
    wire::Header h = hdr;
    h.kind = static_cast<std::uint32_t>(Kind::kFtCtl);
    h.payload_len = 0;
    const int dproc = h.dest_pe / ppn_;
    if (dproc == my_proc_) {
      if (hooks_.ft_ctl) hooks_.ft_ctl(h);
      return;
    }
    robust_write(dproc, h, nullptr, 0, /*can_wait=*/true);
  }

  bool quiescent() override {
    // AF_UNIX stream bytes buffer at the receiver, so FIONREAD on the
    // local recv fds sees everything written toward this process. A frame
    // mid-read implies its tail is still unwritten (the writer loops until
    // whole-frame completion), which keeps some PE thread busy and the QD
    // wave unquiet. Rendezvous handshakes park state on both sides; count
    // them explicitly.
    for (const auto& [fd, peer] : recv_) {
      (void)peer;
      if (fd < 0) continue;
      int avail = 0;
      if (::ioctl(fd, FIONREAD, &avail) == 0 && avail > 0) return false;
    }
    if (rdv_landing_.load(std::memory_order_acquire) != 0) return false;
    std::lock_guard<std::mutex> lk(rdv_mu_);
    return pending_sends_.empty();
  }

  void respawn_refresh(int proc, std::vector<int>& peer_fds) override {
    // Zygote-side: runs in the pristine pre-start image, where ends_ still
    // holds the full pairwise matrix. Closing the zygote's copies of the
    // dead pairs matters twice over — survivors only see EPIPE/EOF once no
    // live process holds the old write ends, and the respawn must inherit
    // only the fresh pairs. The survivor-side fds of those fresh pairs
    // stay open here (ends_ rows j) so a *later* respawn of a survivor
    // can still be forked with a complete matrix; they are closed when
    // this proc is refreshed again.
    MFC_CHECK(opt_.nprocs > 1 && comm_.joinable() == false);
    peer_fds.assign(static_cast<std::size_t>(opt_.nprocs), -1);
    for (int j = 0; j < opt_.nprocs; ++j) {
      if (j == proc) continue;
      int& a = ends_[static_cast<std::size_t>(proc)][static_cast<std::size_t>(j)];
      int& b = ends_[static_cast<std::size_t>(j)][static_cast<std::size_t>(proc)];
      if (a >= 0) ::close(a);
      if (b >= 0) ::close(b);
      int sv[2];
      MFC_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
      a = sv[0];  // inherited by the respawned process at fork
      b = sv[1];  // shipped to survivor j over SCM_RIGHTS
      peer_fds[static_cast<std::size_t>(j)] = b;
    }
  }

  void attach_peer(int proc, int fd, std::uint64_t gen) override {
    MFC_CHECK(fd >= 0 && proc != my_proc_);
    {
      std::lock_guard<std::mutex> lk(send_mu_[proc]);
      int& alias = opt_.nprocs > 1
                       ? ends_[static_cast<std::size_t>(my_proc_)]
                              [static_cast<std::size_t>(proc)]
                       : loop_send_;
      if (send_fd_[static_cast<std::size_t>(proc)] >= 0)
        ::close(send_fd_[static_cast<std::size_t>(proc)]);
      alias = fd;  // keep close_all single-close
      send_fd_[static_cast<std::size_t>(proc)] = fd;
      // Publish last: a sender parked on the dead stream re-reads the fd
      // under send_mu_ once it observes the generation move.
      peer_gen_[static_cast<std::size_t>(proc)].store(
          gen, std::memory_order_release);
    }
    // Receive-side surgery is comm-thread-local state; attach_peer runs on
    // the comm thread (machine idle hook), so plain accesses are safe.
    for (std::size_t i = 0; i < recv_.size(); ++i) {
      if (recv_[i].second != proc) continue;
      recv_[i].first = fd;
      if (sinks_[i].cur != nullptr) {
        hooks_.drop(sinks_[i].cur);
        sinks_[i].cur = nullptr;
      }
      readers_[i].reset();
      ios_[i] = wire::FdIo(fd);
    }
    // Pre-sized rendezvous landings whose kData died with the sender.
    for (auto it = pending_recvs_.begin(); it != pending_recvs_.end();) {
      if (static_cast<int>(it->first >> 48) == proc) {
        hooks_.drop(it->second);
        rdv_landing_.fetch_sub(1, std::memory_order_acq_rel);
        it = pending_recvs_.erase(it);
      } else {
        ++it;
      }
    }
    // Senders parked on a CTS from the dead incarnation: abort them — the
    // message is lost (recovery's drain-mode QD absorbs the loss) but the
    // sender must still run its on_consumed epilogue and return.
    std::lock_guard<std::mutex> lk(rdv_mu_);
    for (auto& [id, ps] : pending_sends_) {
      (void)id;
      if (ps->dproc != proc) continue;
      std::lock_guard<std::mutex> plk(ps->mu);
      ps->aborted = true;
      ps->cv.notify_all();
    }
  }

 private:
  struct PendingSend {
    std::mutex mu;
    std::condition_variable cv;
    bool go = false;
    bool aborted = false;
    int dproc = -1;
  };

  /// Writes one frame toward `dproc`. Without peer-loss tolerance this is
  /// the plain blocking write (failures drop silently, matching the
  /// pre-FT contract). With tolerance, a failed write — EPIPE, reset, or
  /// a stalled buffer toward a dead process — parks *outside* the send
  /// lock until attach_peer publishes the replacement stream, then
  /// restarts the whole frame on it (partial bytes only ever reached the
  /// dead fd, so no survivor observes a torn frame). `can_wait` is false
  /// on the comm thread, which must stay live to apply the swap itself;
  /// there the frame is dropped instead.
  bool robust_write(int dproc, const wire::Header& h, const wire::Span* spans,
                    std::size_t n, bool can_wait) {
    if (!hooks_.tolerate_peer_loss) {
      std::lock_guard<std::mutex> lk(send_mu_[dproc]);
      wire::FdIo io(send_fd_[static_cast<std::size_t>(dproc)]);
      return wire::write_frame(io, h, spans, n);
    }
    for (;;) {
      std::uint64_t seen;
      {
        std::lock_guard<std::mutex> lk(send_mu_[dproc]);
        seen = peer_gen_[static_cast<std::size_t>(dproc)].load(
            std::memory_order_relaxed);
        RobustIo io(send_fd_[static_cast<std::size_t>(dproc)]);
        if (wire::write_frame(io, h, spans, n)) return true;
      }
      metrics::bump(Counter::kWireRetries);
      if (!can_wait || stop_.load(std::memory_order_acquire)) return false;
      int waited_ms = 0;
      while (peer_gen_[static_cast<std::size_t>(dproc)].load(
                 std::memory_order_acquire) == seen) {
        if (stop_.load(std::memory_order_acquire)) return false;
        MFC_CHECK_MSG(++waited_ms < 120000,
                      "socket: peer stream never replaced after loss");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  struct FdSink {
    SocketTransport* t = nullptr;
    int peer = 0;
    Message* cur = nullptr;

    char* on_header(const wire::Header& h) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
          cur = t->hooks_.alloc(h, h.payload_len);
          return payload_ptr(cur);
        case Kind::kData: {
          // Landing buffer was pre-sized at kRts; bytes stream straight in.
          auto it = t->pending_recvs_.find(h.msg_id);
          if (it == t->pending_recvs_.end()) {
            // The kRts went to an incarnation that died before this data
            // frame; only legal under peer-loss tolerance. Sink the bytes
            // into reader scratch and drop the frame.
            MFC_CHECK_MSG(t->hooks_.tolerate_peer_loss,
                          "kData without a matching kRts");
            cur = nullptr;
            return nullptr;
          }
          cur = it->second;
          t->rdv_landing_.fetch_sub(1, std::memory_order_acq_rel);
          t->pending_recvs_.erase(it);
          return payload_ptr(cur);
        }
        default:
          return nullptr;
      }
    }

    void on_frame(const wire::Header& h, char*) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
        case Kind::kData:
          if (cur == nullptr) break;  // orphan kData sunk to scratch
          metrics::bump(Counter::kWireDelivered);
          trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                      static_cast<std::uint32_t>(h.payload_len),
                      static_cast<std::int16_t>(h.src_pe));
          t->hooks_.enqueue(cur);
          cur = nullptr;
          break;
        case Kind::kRts: {
          Message* m = t->hooks_.alloc(h, h.total_len);
          auto [it, fresh] = t->pending_recvs_.emplace(h.msg_id, m);
          if (!fresh) {
            // A respawned sender restarts its rendezvous sequence, so its
            // ids can collide with a dead incarnation's abandoned entry.
            MFC_CHECK_MSG(t->hooks_.tolerate_peer_loss,
                          "duplicate rendezvous id");
            t->hooks_.drop(it->second);
            it->second = m;
          } else {
            t->rdv_landing_.fetch_add(1, std::memory_order_acq_rel);
          }
          wire::Header cts;
          cts.kind = static_cast<std::uint32_t>(Kind::kCts);
          cts.msg_id = h.msg_id;
          const int sproc = h.src_pe / t->ppn_;
          // can_wait=false: the comm thread must never park on a dead
          // stream — it is the thread that installs the replacement.
          t->robust_write(sproc, cts, nullptr, 0, /*can_wait=*/false);
          trace::emit(trace::Ev::kWireCts, h.msg_id, 0,
                      static_cast<std::uint32_t>(h.total_len),
                      static_cast<std::int16_t>(h.src_pe));
          break;
        }
        case Kind::kCts: {
          std::lock_guard<std::mutex> lk(t->rdv_mu_);
          auto it = t->pending_sends_.find(h.msg_id);
          if (it != t->pending_sends_.end()) {
            std::lock_guard<std::mutex> plk(it->second->mu);
            it->second->go = true;
            it->second->cv.notify_all();
          }
          break;
        }
        case Kind::kProcDone:
          t->hooks_.on_proc_done();
          break;
        case Kind::kStop:
          t->hooks_.on_stop();
          break;
        case Kind::kFtCtl:
          if (t->hooks_.ft_ctl) t->hooks_.ft_ctl(h);
          break;
        default:
          MFC_CHECK_MSG(false, "unexpected frame kind on socket");
      }
    }
  };

  void comm_loop() {
    trace::bind_comm();
    const std::size_t nfd = recv_.size();
    // Receive state lives in members so attach_peer (same thread, via the
    // idle hook) can swap a respawned peer's reader/io in place.
    readers_.assign(nfd, wire::Reader());
    sinks_.assign(nfd, FdSink());
    ios_.assign(nfd, wire::FdIo());
    for (std::size_t i = 0; i < nfd; ++i) {
      sinks_[i] = {this, recv_[i].second, nullptr};
      ios_[i] = wire::FdIo(recv_[i].first);
      if (hooks_.tolerate_peer_loss) readers_[i].set_tolerate_eof(true);
    }
    std::vector<pollfd> pfds(nfd + 1);
    for (;;) {
      for (std::size_t i = 0; i < nfd; ++i)
        pfds[i] = {recv_[i].first, POLLIN, 0};
      pfds[nfd] = {wake_pipe_[0], POLLIN, 0};
      ::poll(pfds.data(), pfds.size(), 100);
      if (pfds[nfd].revents & POLLIN) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
      }
      bool eof_all = true;
      for (std::size_t i = 0; i < nfd; ++i) {
        if (recv_[i].first < 0) continue;
        wire::PumpResult r = readers_[i].pump(ios_[i], sinks_[i]);
        if (r == wire::PumpResult::kEof) {
          // Peer exited. Under FT a truncated frame is dropped here and
          // attach_peer later installs the respawn's stream; otherwise the
          // parent's idle hook polices abnormal exits.
          if (!readers_[i].idle()) {
            readers_[i].reset();
            if (sinks_[i].cur != nullptr) {
              hooks_.drop(sinks_[i].cur);
              sinks_[i].cur = nullptr;
            }
          }
          recv_[i].first = -1;
        } else {
          eof_all = false;
        }
      }
      if (stop_.load(std::memory_order_acquire)) {
        // Drain whatever arrived alongside the stop order, then leave.
        bool drained = true;
        for (std::size_t i = 0; i < nfd; ++i) {
          if (recv_[i].first >= 0 && !readers_[i].idle()) drained = false;
        }
        if (drained || eof_all) break;
      }
      if (hooks_.idle) hooks_.idle();
    }
    // Envelopes pre-sized for rendezvous data that never arrived.
    for (auto& [id, m] : pending_recvs_) {
      (void)id;
      hooks_.drop(m);
    }
    pending_recvs_.clear();
  }

  void close_all() {
    auto cl = [](int& fd) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    };
    cl(loop_send_);
    cl(loop_recv_);
    for (auto& row : ends_)
      for (int& fd : row) cl(fd);
    for (int& fd : send_fd_) fd = -1;  // aliases of ends_/loop fds
    cl(wake_pipe_[0]);
    cl(wake_pipe_[1]);
  }

  Options opt_;
  int ppn_ = 1;
  int my_proc_ = 0;
  int loop_send_ = -1;
  int loop_recv_ = -1;
  std::vector<std::vector<int>> ends_;
  std::vector<int> send_fd_;
  std::unique_ptr<std::mutex[]> send_mu_;
  /// Per-peer stream generation; bumped by attach_peer when a respawned
  /// peer's fresh socket replaces a dead one. Senders parked on a failed
  /// write resume when they observe it move.
  std::unique_ptr<std::atomic<std::uint64_t>[]> peer_gen_;
  std::vector<std::pair<int, int>> recv_;  ///< (fd, peer proc)
  int wake_pipe_[2] = {-1, -1};
  Hooks hooks_;
  std::atomic<bool> stop_{false};
  std::thread comm_;
  std::mutex rdv_mu_;
  std::unordered_map<std::uint64_t, PendingSend*> pending_sends_;
  /// Comm-thread-only (one comm thread handles every peer fd).
  std::unordered_map<std::uint64_t, Message*> pending_recvs_;
  /// Mirror of pending_recvs_.size() readable off-thread (quiescent()).
  std::atomic<int> rdv_landing_{0};
  std::atomic<std::uint64_t> rdv_seq_{1};
  /// Comm-thread receive state (members so attach_peer can reach them).
  std::vector<wire::Reader> readers_;
  std::vector<FdSink> sinks_;
  std::vector<wire::FdIo> ios_;
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const Options& options) {
  return std::make_unique<ShmTransport>(options);
}

std::unique_ptr<Transport> make_socket_transport(const Options& options) {
  return std::make_unique<SocketTransport>(options);
}

}  // namespace mfc::converse::transport
