#include "converse/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "converse/machine.h"
#include "converse/shmring.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"

namespace mfc::converse::transport {

namespace {

using metrics::Counter;
using wire::Kind;

// Wire-span trace codes (Record.a of kWireSendBegin): which path carried
// the message. The exporter names the span "wire-send:<code name>".
constexpr std::uint32_t kTraceEager = 0;
constexpr std::uint32_t kTraceChunk = 1;
constexpr std::uint32_t kTraceRdv = 2;

char* payload_ptr(Message* m) { return m->payload.data(); }

/// Sub-spans covering [off, off+len) of a span list (chunking).
std::vector<wire::Span> slice_spans(const wire::Span* spans, std::size_t n,
                                    std::uint64_t off, std::uint64_t len) {
  std::vector<wire::Span> out;
  std::uint64_t skip = off, want = len;
  for (std::size_t i = 0; i < n && want > 0; ++i) {
    std::uint64_t l = spans[i].len;
    if (skip >= l) {
      skip -= l;
      continue;
    }
    std::uint64_t take = l - skip < want ? l - skip : want;
    out.push_back({static_cast<const char*>(spans[i].data) + skip,
                   static_cast<std::size_t>(take)});
    skip = 0;
    want -= take;
  }
  MFC_CHECK(want == 0);
  return out;
}

// ---------------------------------------------------------------------------
// Shared-memory ring transport.
// ---------------------------------------------------------------------------

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const Options& o)
      : opt_(o), ppn_(o.npes / o.nprocs) {
    MFC_CHECK(o.npes >= 1 && o.nprocs >= 1 && o.npes % o.nprocs == 0);
    seg_.create(o.nprocs, o.npes, o.shm_ring_bytes);
  }

  ~ShmTransport() override {
    if (comm_.joinable()) {
      stop_local();
      comm_.join();
    }
  }

  void start(int my_proc, Hooks hooks) override {
    my_proc_ = my_proc;
    hooks_ = std::move(hooks);
    // Persistent producer views for this process's PEs (the view carries
    // the producer-local pending-tail shadow): views_[local_pe][dest_proc].
    views_.resize(static_cast<std::size_t>(ppn_) * opt_.nprocs);
    for (int lp = 0; lp < ppn_; ++lp)
      for (int d = 0; d < opt_.nprocs; ++d)
        views_[static_cast<std::size_t>(lp) * opt_.nprocs + d] =
            seg_.ring(d, my_proc * ppn_ + lp);
    assembly_.resize(static_cast<std::size_t>(opt_.npes) + 1);
    comm_ = std::thread([this] { comm_loop(); });
  }

  void send(const wire::Header& hdr, const wire::Span* spans, std::size_t n,
            std::function<void()> on_consumed) override {
    wire::Header h = hdr;
    const int dproc = h.dest_pe / ppn_;
    shm::RingView& rv = producer_view(h.src_pe, dproc);
    const std::uint64_t limit = max_chunk_payload();
    metrics::bump(Counter::kWireSentBytes, h.payload_len);
    if (h.payload_len <= limit) {
      h.kind = static_cast<std::uint32_t>(Kind::kEager);
      trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceEager, 0,
                  static_cast<std::int16_t>(h.dest_pe));
      metrics::bump(Counter::kWireSentFrames);
      // Delayed publish: the frame's bytes are in the ring but invisible
      // until after on_consumed — the pack epilogue can evacuate the pages
      // the spans pointed into before the message can be delivered.
      if (!push_wait(rv, h, spans, n, /*publish=*/on_consumed == nullptr)) {
        if (on_consumed) on_consumed();
        trace::emit(trace::Ev::kWireSendEnd);
        return;  // dropped post-stop
      }
      if (on_consumed) {
        on_consumed();
        rv.publish();
      }
      trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                  static_cast<std::uint32_t>(h.payload_len +
                                             sizeof(wire::Header)));
      return;
    }
    // Chunked: every piece fits half the ring; the final chunk's publish is
    // delayed exactly like the single-frame case, so the message cannot
    // complete at the consumer before on_consumed runs.
    h.kind = static_cast<std::uint32_t>(Kind::kChunk);
    h.total_len = hdr.payload_len;
    trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceChunk, 0,
                static_cast<std::int16_t>(h.dest_pe));
    std::uint64_t off = 0;
    std::uint64_t frames = 0;
    while (off < h.total_len) {
      const std::uint64_t len =
          h.total_len - off < limit ? h.total_len - off : limit;
      const bool last = off + len == h.total_len;
      std::vector<wire::Span> sub = slice_spans(spans, n, off, len);
      h.offset = off;
      h.payload_len = len;
      metrics::bump(Counter::kWireSentFrames);
      metrics::bump(Counter::kWireChunks);
      ++frames;
      if (!push_wait(rv, h, sub.data(), sub.size(),
                     /*publish=*/!(last && on_consumed != nullptr))) {
        if (on_consumed) on_consumed();
        trace::emit(trace::Ev::kWireSendEnd);
        return;  // dropped post-stop; partial assembly freed at teardown
      }
      if (last && on_consumed) {
        on_consumed();
        rv.publish();
      }
      off += len;
    }
    trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                static_cast<std::uint32_t>(h.total_len +
                                           frames * sizeof(wire::Header)));
  }

  void send_proc_done(int src_pe) override {
    if (my_proc_ == 0) {
      hooks_.on_proc_done();
      return;
    }
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kProcDone);
    h.src_pe = src_pe;
    h.dest_pe = 0;
    shm::RingView& rv = producer_view(src_pe, /*dproc=*/0);
    push_wait(rv, h, nullptr, 0, true);
  }

  void broadcast_stop() override {
    // Only the one thread that saw the last ProcDone gets here, so the
    // control slot keeps its single producer.
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kStop);
    for (int d = 0; d < opt_.nprocs; ++d) {
      if (d == my_proc_) continue;
      shm::RingView rv = seg_.ring(d, opt_.npes);
      while (!rv.try_push(h, nullptr, 0))
        std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    hooks_.on_stop();
  }

  void stop_local() override {
    stop_.store(true, std::memory_order_release);
  }

  void join() override {
    MFC_CHECK(stop_.load(std::memory_order_acquire));
    if (comm_.joinable()) comm_.join();
  }

 private:
  /// One in-progress chunked (or about-to-be-enqueued eager) message per
  /// SPSC ring: the producer finishes one message before starting the next,
  /// so a slot never needs more than one.
  struct Assembly {
    Message* m = nullptr;
  };

  struct Sink {
    ShmTransport* t = nullptr;
    int slot = 0;
    char* on_header(const wire::Header& h) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager: {
          Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
          a.m = t->hooks_.alloc(h, h.payload_len);
          return payload_ptr(a.m);
        }
        case Kind::kChunk: {
          Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
          if (h.offset == 0) {
            a.m = t->hooks_.alloc(h, h.total_len);
            trace::emit(trace::Ev::kWireAsmBegin, h.trace_flow, 0,
                        static_cast<std::uint32_t>(h.total_len),
                        static_cast<std::int16_t>(h.src_pe));
          }
          MFC_CHECK(a.m != nullptr);
          return payload_ptr(a.m) + h.offset;
        }
        default:
          return nullptr;
      }
    }
    void on_frame(const wire::Header& h, char*) {
      Assembly& a = t->assembly_[static_cast<std::size_t>(slot)];
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
          metrics::bump(Counter::kWireDelivered);
          trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                      static_cast<std::uint32_t>(h.payload_len),
                      static_cast<std::int16_t>(h.src_pe));
          t->hooks_.enqueue(a.m);
          a.m = nullptr;
          break;
        case Kind::kChunk:
          if (h.offset + h.payload_len == h.total_len) {
            metrics::bump(Counter::kWireDelivered);
            trace::emit(trace::Ev::kWireAsmEnd);
            trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                        static_cast<std::uint32_t>(h.total_len),
                        static_cast<std::int16_t>(h.src_pe));
            t->hooks_.enqueue(a.m);
            a.m = nullptr;
          }
          break;
        case Kind::kProcDone:
          t->hooks_.on_proc_done();
          break;
        case Kind::kStop:
          t->hooks_.on_stop();
          break;
        default:
          MFC_CHECK_MSG(false, "unexpected frame kind on shm ring");
      }
    }
  };

  shm::RingView& producer_view(int src_pe, int dproc) {
    const int lp = src_pe - my_proc_ * ppn_;
    MFC_CHECK_MSG(lp >= 0 && lp < ppn_,
                  "wire sends must originate on a local PE thread");
    return views_[static_cast<std::size_t>(lp) * opt_.nprocs + dproc];
  }

  std::uint64_t max_chunk_payload() const {
    return opt_.shm_ring_bytes / 2 - sizeof(wire::Header);
  }

  bool push_wait(shm::RingView& rv, const wire::Header& h,
                 const wire::Span* s, std::size_t n, bool publish) {
    int waits = 0;
    while (!rv.try_push(h, s, n, publish)) {
      // The consumer always drains, so a full ring clears; after stop the
      // consumer may be gone — give up (the drop is benign post-stop).
      ++waits;
      if (stop_.load(std::memory_order_relaxed) && waits > 2500) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    return true;
  }

  void comm_loop() {
    // Comm-thread wire events (deliver, chunk assembly) land on the trace
    // session's dedicated wire ring, not a PE ring.
    trace::bind_comm();
    const int nslots = opt_.npes + 1;
    std::vector<Sink> sinks(static_cast<std::size_t>(nslots));
    for (int s = 0; s < nslots; ++s)
      sinks[static_cast<std::size_t>(s)] = {this, s};
    std::uint64_t idle_rounds = 0;
    for (;;) {
      bool any = false;
      for (int s = 0; s < nslots; ++s) {
        shm::RingView rv = seg_.ring(my_proc_, s);
        while (rv.try_pop(sinks[static_cast<std::size_t>(s)])) any = true;
      }
      if (any) {
        idle_rounds = 0;
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      ++idle_rounds;
      if (hooks_.idle && (idle_rounds & 63) == 0) hooks_.idle();
      // Single-CPU-friendly: sleep immediately, bounded so stop and fresh
      // traffic are observed promptly.
      const std::uint64_t us = idle_rounds < 10 ? 50 * idle_rounds : 500;
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    // Writers that completed concurrently with stop: one last sweep, then
    // free anything still half-assembled.
    for (int s = 0; s < nslots; ++s) {
      shm::RingView rv = seg_.ring(my_proc_, s);
      while (rv.try_pop(sinks[static_cast<std::size_t>(s)])) {
      }
    }
    for (Assembly& a : assembly_) {
      if (a.m != nullptr) {
        hooks_.drop(a.m);
        a.m = nullptr;
      }
    }
  }

  Options opt_;
  int ppn_ = 1;
  int my_proc_ = 0;
  shm::Segment seg_;
  Hooks hooks_;
  std::atomic<bool> stop_{false};
  std::thread comm_;
  std::vector<shm::RingView> views_;
  std::vector<Assembly> assembly_;
};

// ---------------------------------------------------------------------------
// Socket/stream transport (AF_UNIX socketpairs; AF_INET-shaped framing).
// ---------------------------------------------------------------------------

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const Options& o)
      : opt_(o), ppn_(o.npes / o.nprocs) {
    MFC_CHECK(o.npes >= 1 && o.nprocs >= 1 && o.npes % o.nprocs == 0);
    if (o.nprocs == 1) {
      // Loopback: one pair; sends write sv[0], the comm thread reads sv[1].
      // Everything goes eager (the rendezvous control frames would have to
      // loop through the single comm thread that is also the data reader).
      int sv[2];
      MFC_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
      loop_send_ = sv[0];
      loop_recv_ = sv[1];
    } else {
      ends_.assign(static_cast<std::size_t>(o.nprocs),
                   std::vector<int>(static_cast<std::size_t>(o.nprocs), -1));
      for (int i = 0; i < o.nprocs; ++i) {
        for (int j = i + 1; j < o.nprocs; ++j) {
          int sv[2];
          MFC_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
          ends_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              sv[0];
          ends_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
              sv[1];
        }
      }
    }
  }

  ~SocketTransport() override {
    if (comm_.joinable()) {
      stop_local();
      comm_.join();
    }
    close_all();
  }

  void start(int my_proc, Hooks hooks) override {
    my_proc_ = my_proc;
    hooks_ = std::move(hooks);
    send_fd_.assign(static_cast<std::size_t>(opt_.nprocs), -1);
    send_mu_ = std::make_unique<std::mutex[]>(
        static_cast<std::size_t>(opt_.nprocs));
    if (opt_.nprocs == 1) {
      send_fd_[0] = loop_send_;
      recv_.push_back({loop_recv_, 0});
    } else {
      for (int q = 0; q < opt_.nprocs; ++q) {
        if (q == my_proc) continue;
        int fd = ends_[static_cast<std::size_t>(my_proc)]
                      [static_cast<std::size_t>(q)];
        send_fd_[static_cast<std::size_t>(q)] = fd;
        recv_.push_back({fd, q});
      }
      // Close every end that belongs to another process.
      for (int i = 0; i < opt_.nprocs; ++i) {
        if (i == my_proc) continue;
        for (int& fd : ends_[static_cast<std::size_t>(i)]) {
          if (fd >= 0) ::close(fd);
          fd = -1;
        }
      }
    }
    MFC_CHECK(::pipe(wake_pipe_) == 0);
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    comm_ = std::thread([this] { comm_loop(); });
  }

  void send(const wire::Header& hdr, const wire::Span* spans, std::size_t n,
            std::function<void()> on_consumed) override {
    wire::Header h = hdr;
    const int dproc = h.dest_pe / ppn_;
    metrics::bump(Counter::kWireSentBytes, h.payload_len);
    const bool rendezvous =
        opt_.nprocs > 1 && h.payload_len > opt_.rendezvous_bytes;
    if (!rendezvous) {
      h.kind = static_cast<std::uint32_t>(Kind::kEager);
      trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceEager, 0,
                  static_cast<std::int16_t>(h.dest_pe));
      metrics::bump(Counter::kWireSentFrames);
      if (on_consumed) {
        // Stage first so on_consumed runs before any byte can reach the
        // destination (delivery-before-epilogue would race a same-process
        // install against the pack epilogue's evacuate).
        std::vector<char> staged(h.payload_len);
        wire::spans_gather(staged.data(), spans, n);
        on_consumed();
        wire::Span s{staged.data(), staged.size()};
        std::lock_guard<std::mutex> lk(send_mu_[dproc]);
        wire::FdIo io(send_fd_[static_cast<std::size_t>(dproc)]);
        wire::write_frame(io, h, &s, 1);
      } else {
        std::lock_guard<std::mutex> lk(send_mu_[dproc]);
        wire::FdIo io(send_fd_[static_cast<std::size_t>(dproc)]);
        wire::write_frame(io, h, spans, n);
      }
      trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                  static_cast<std::uint32_t>(h.payload_len +
                                             sizeof(wire::Header)));
      return;
    }
    // Rendezvous: RTS → (receiver pre-sizes the landing payload) → CTS →
    // the blocked sender writev's its spans straight to the socket. The
    // image bytes touch no intermediate buffer on either side: writev
    // reads the live slots, and the reader lands bytes directly in the
    // destination envelope's payload.
    metrics::bump(Counter::kWireRendezvous);
    const std::uint64_t id =
        (static_cast<std::uint64_t>(my_proc_) << 48) |
        rdv_seq_.fetch_add(1, std::memory_order_relaxed);
    trace::emit(trace::Ev::kWireSendBegin, h.trace_flow, kTraceRdv, 0,
                static_cast<std::int16_t>(h.dest_pe));
    PendingSend ps;
    {
      std::lock_guard<std::mutex> lk(rdv_mu_);
      pending_sends_[id] = &ps;
    }
    wire::Header rts = h;
    rts.kind = static_cast<std::uint32_t>(Kind::kRts);
    rts.payload_len = 0;
    rts.total_len = h.payload_len;
    rts.msg_id = id;
    {
      std::lock_guard<std::mutex> lk(send_mu_[dproc]);
      wire::FdIo io(send_fd_[static_cast<std::size_t>(dproc)]);
      wire::write_frame(io, rts, nullptr, 0);
    }
    trace::emit(trace::Ev::kWireRts, id, 0,
                static_cast<std::uint32_t>(h.payload_len),
                static_cast<std::int16_t>(h.dest_pe));
    metrics::bump(Counter::kWireSentFrames);
    {
      std::unique_lock<std::mutex> lk(ps.mu);
      while (!ps.go) {
        ps.cv.wait_for(lk, std::chrono::milliseconds(100));
        if (!ps.go && stop_.load(std::memory_order_acquire)) break;
      }
    }
    {
      std::lock_guard<std::mutex> lk(rdv_mu_);
      pending_sends_.erase(id);
    }
    if (ps.go) {
      wire::Header data = h;
      data.kind = static_cast<std::uint32_t>(Kind::kData);
      data.msg_id = id;
      data.total_len = h.payload_len;
      metrics::bump(Counter::kWireSentFrames);
      {
        std::lock_guard<std::mutex> lk(send_mu_[dproc]);
        wire::FdIo io(send_fd_[static_cast<std::size_t>(dproc)]);
        wire::write_frame(io, data, spans, n);
      }
      trace::emit(trace::Ev::kWireRdvDone, id, 0,
                  static_cast<std::uint32_t>(h.payload_len));
    }
    if (on_consumed) on_consumed();
    trace::emit(trace::Ev::kWireSendEnd, 0, 0,
                static_cast<std::uint32_t>(h.payload_len +
                                           3 * sizeof(wire::Header)));
  }

  void send_proc_done(int src_pe) override {
    if (my_proc_ == 0) {
      hooks_.on_proc_done();
      return;
    }
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kProcDone);
    h.src_pe = src_pe;
    h.dest_pe = 0;
    std::lock_guard<std::mutex> lk(send_mu_[0]);
    wire::FdIo io(send_fd_[0]);
    wire::write_frame(io, h, nullptr, 0);
  }

  void broadcast_stop() override {
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(Kind::kStop);
    for (int d = 0; d < opt_.nprocs; ++d) {
      if (d == my_proc_) continue;
      std::lock_guard<std::mutex> lk(send_mu_[d]);
      wire::FdIo io(send_fd_[static_cast<std::size_t>(d)]);
      wire::write_frame(io, h, nullptr, 0);
    }
    hooks_.on_stop();
  }

  void stop_local() override {
    stop_.store(true, std::memory_order_release);
    if (wake_pipe_[1] >= 0) {
      char b = 1;
      [[maybe_unused]] ssize_t r = ::write(wake_pipe_[1], &b, 1);
    }
    // Wake any sender still waiting for a CTS that will never come.
    std::lock_guard<std::mutex> lk(rdv_mu_);
    for (auto& [id, ps] : pending_sends_) {
      (void)id;
      std::lock_guard<std::mutex> plk(ps->mu);
      ps->cv.notify_all();
    }
  }

  void join() override {
    MFC_CHECK(stop_.load(std::memory_order_acquire));
    if (comm_.joinable()) comm_.join();
  }

 private:
  struct PendingSend {
    std::mutex mu;
    std::condition_variable cv;
    bool go = false;
  };

  struct FdSink {
    SocketTransport* t = nullptr;
    int peer = 0;
    Message* cur = nullptr;

    char* on_header(const wire::Header& h) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
          cur = t->hooks_.alloc(h, h.payload_len);
          return payload_ptr(cur);
        case Kind::kData: {
          // Landing buffer was pre-sized at kRts; bytes stream straight in.
          auto it = t->pending_recvs_.find(h.msg_id);
          MFC_CHECK_MSG(it != t->pending_recvs_.end(),
                        "kData without a matching kRts");
          cur = it->second;
          t->pending_recvs_.erase(it);
          return payload_ptr(cur);
        }
        default:
          return nullptr;
      }
    }

    void on_frame(const wire::Header& h, char*) {
      switch (static_cast<Kind>(h.kind)) {
        case Kind::kEager:
        case Kind::kData:
          metrics::bump(Counter::kWireDelivered);
          trace::emit(trace::Ev::kWireDeliver, h.trace_flow, 0,
                      static_cast<std::uint32_t>(h.payload_len),
                      static_cast<std::int16_t>(h.src_pe));
          t->hooks_.enqueue(cur);
          cur = nullptr;
          break;
        case Kind::kRts: {
          Message* m = t->hooks_.alloc(h, h.total_len);
          t->pending_recvs_[h.msg_id] = m;
          wire::Header cts;
          cts.kind = static_cast<std::uint32_t>(Kind::kCts);
          cts.msg_id = h.msg_id;
          const int sproc = h.src_pe / t->ppn_;
          {
            std::lock_guard<std::mutex> lk(t->send_mu_[sproc]);
            wire::FdIo io(t->send_fd_[static_cast<std::size_t>(sproc)]);
            wire::write_frame(io, cts, nullptr, 0);
          }
          trace::emit(trace::Ev::kWireCts, h.msg_id, 0,
                      static_cast<std::uint32_t>(h.total_len),
                      static_cast<std::int16_t>(h.src_pe));
          break;
        }
        case Kind::kCts: {
          std::lock_guard<std::mutex> lk(t->rdv_mu_);
          auto it = t->pending_sends_.find(h.msg_id);
          if (it != t->pending_sends_.end()) {
            std::lock_guard<std::mutex> plk(it->second->mu);
            it->second->go = true;
            it->second->cv.notify_all();
          }
          break;
        }
        case Kind::kProcDone:
          t->hooks_.on_proc_done();
          break;
        case Kind::kStop:
          t->hooks_.on_stop();
          break;
        default:
          MFC_CHECK_MSG(false, "unexpected frame kind on socket");
      }
    }
  };

  void comm_loop() {
    trace::bind_comm();
    const std::size_t nfd = recv_.size();
    std::vector<wire::Reader> readers(nfd);
    std::vector<FdSink> sinks(nfd);
    std::vector<wire::FdIo> ios(nfd);
    for (std::size_t i = 0; i < nfd; ++i) {
      sinks[i] = {this, recv_[i].second, nullptr};
      ios[i] = wire::FdIo(recv_[i].first);
    }
    std::vector<pollfd> pfds(nfd + 1);
    for (;;) {
      for (std::size_t i = 0; i < nfd; ++i)
        pfds[i] = {recv_[i].first, POLLIN, 0};
      pfds[nfd] = {wake_pipe_[0], POLLIN, 0};
      ::poll(pfds.data(), pfds.size(), 100);
      if (pfds[nfd].revents & POLLIN) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
      }
      bool eof_all = true;
      for (std::size_t i = 0; i < nfd; ++i) {
        if (recv_[i].first < 0) continue;
        wire::PumpResult r = readers[i].pump(ios[i], sinks[i]);
        if (r == wire::PumpResult::kEof) {
          recv_[i].first = -1;  // peer exited; parent's idle hook polices
        } else {
          eof_all = false;
        }
      }
      if (stop_.load(std::memory_order_acquire)) {
        // Drain whatever arrived alongside the stop order, then leave.
        bool drained = true;
        for (std::size_t i = 0; i < nfd; ++i) {
          if (recv_[i].first >= 0 && !readers[i].idle()) drained = false;
        }
        if (drained || eof_all) break;
      }
      if (hooks_.idle) hooks_.idle();
    }
    // Envelopes pre-sized for rendezvous data that never arrived.
    for (auto& [id, m] : pending_recvs_) {
      (void)id;
      hooks_.drop(m);
    }
    pending_recvs_.clear();
  }

  void close_all() {
    auto cl = [](int& fd) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    };
    cl(loop_send_);
    cl(loop_recv_);
    for (auto& row : ends_)
      for (int& fd : row) cl(fd);
    for (int& fd : send_fd_) fd = -1;  // aliases of ends_/loop fds
    cl(wake_pipe_[0]);
    cl(wake_pipe_[1]);
  }

  Options opt_;
  int ppn_ = 1;
  int my_proc_ = 0;
  int loop_send_ = -1;
  int loop_recv_ = -1;
  std::vector<std::vector<int>> ends_;
  std::vector<int> send_fd_;
  std::unique_ptr<std::mutex[]> send_mu_;
  std::vector<std::pair<int, int>> recv_;  ///< (fd, peer proc)
  int wake_pipe_[2] = {-1, -1};
  Hooks hooks_;
  std::atomic<bool> stop_{false};
  std::thread comm_;
  std::mutex rdv_mu_;
  std::unordered_map<std::uint64_t, PendingSend*> pending_sends_;
  /// Comm-thread-only (one comm thread handles every peer fd).
  std::unordered_map<std::uint64_t, Message*> pending_recvs_;
  std::atomic<std::uint64_t> rdv_seq_{1};
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const Options& options) {
  return std::make_unique<ShmTransport>(options);
}

std::unique_ptr<Transport> make_socket_transport(const Options& options) {
  return std::make_unique<SocketTransport>(options);
}

}  // namespace mfc::converse::transport
