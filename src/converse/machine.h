// Converse-style machine layer (paper §2.4): an emulated multi-processor
// parallel machine inside one process.
//
// Each PE (processing element) is a kernel thread running a message-driven
// scheduler loop plus a user-level-thread scheduler. PEs communicate only
// through active messages — byte payloads dispatched to registered handlers
// — never by touching each other's state, so the same code paths work when
// PEs live in different address spaces (see the fork transport in
// proc_machine.h).
//
// Each PE's entry function runs inside a user-level "main" thread, so it can
// block (barrier(), AMPI receives, …) while the PE keeps processing
// messages — exactly the blocking-calls-over-scheduler structure the paper
// describes for AMPI.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "iso/region.h"
#include "pup/pup.h"
#include "ult/scheduler.h"

namespace mfc::converse {

using HandlerId = std::uint32_t;

struct Message {
  HandlerId handler = 0;
  std::int32_t src_pe = -1;
  std::int32_t dest_pe = -1;
  std::vector<char> payload;

  void pup(pup::Er& p) { p | handler | src_pe | dest_pe | payload; }

  /// Unpacks the payload into a PUP-able value.
  template <typename T>
  T as() const {
    T value{};
    pup::MemUnpacker u(payload.data(), payload.size());
    pup::pup(u, value);
    return value;
  }
};

/// Handlers run on the destination PE's scheduler context (not inside a
/// ULT); they must not block, but may ready() threads and send messages.
using HandlerFn = std::function<void(Message&&)>;

/// Registers a handler. All PEs share the registry; handlers must be
/// registered before Machine::run (or identically on every address space
/// before the transport forks) so ids agree machine-wide.
HandlerId register_handler(HandlerFn fn);

class Machine {
 public:
  struct Config {
    int npes = 2;
    /// When set, initializes the isomalloc region for `npes` strips
    /// (skipped if the region already exists or iso_slots_per_pe == 0).
    std::uint32_t iso_slots_per_pe = 2048;
    std::size_t iso_slot_bytes = 256 * 1024;
  };

  /// Boots the machine: spawns one kernel thread per PE, runs `entry(pe)`
  /// as that PE's main user-level thread, and services messages until every
  /// main thread has finished. Returns after all PEs shut down.
  static void run(const Config& config, std::function<void(int)> entry);
};

// ---- Per-PE API (valid on a PE's kernel thread during Machine::run) ----

int my_pe();
int num_pes();
bool in_pe_context();

/// Sends an active message (payload is a PUP-able value).
void send(int dest_pe, HandlerId handler, std::vector<char> payload);

template <typename T>
void send_value(int dest_pe, HandlerId handler, const T& value) {
  send(dest_pe, handler, pup::to_bytes(value));
}

/// Sends to every PE (including the caller).
void broadcast(HandlerId handler, const std::vector<char>& payload);

/// Blocks the calling user-level thread until every PE has entered the
/// barrier (message-based; callable once per PE per episode, typically from
/// the main thread).
void barrier();

/// Readies a thread on the *calling* PE's scheduler (handlers use this to
/// resume blocked threads). Cross-PE resumption must go through a message.
void ready_thread(ult::Thread* t);

/// The calling PE's user-level scheduler.
ult::Scheduler& pe_scheduler();

/// Statistics for benchmarks.
std::uint64_t messages_sent();
std::uint64_t messages_delivered();

/// Quiescence detection: blocks the calling user-level thread until every
/// message sent anywhere in the machine has been delivered and no PE has
/// runnable work other than threads parked in wait_quiescence() itself.
/// Multiple PEs may wait concurrently (typically all of them, making it a
/// "whole computation finished" detector for message-driven phases).
void wait_quiescence();

}  // namespace mfc::converse
