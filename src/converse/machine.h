// Converse-style machine layer (paper §2.4): an emulated multi-processor
// parallel machine inside one process.
//
// Each PE (processing element) is a kernel thread running a message-driven
// scheduler loop plus a user-level-thread scheduler. PEs communicate only
// through active messages — byte payloads dispatched to registered handlers
// — never by touching each other's state, so the same code paths work when
// PEs live in different address spaces (see the fork transport in
// proc_machine.h).
//
// Each PE's entry function runs inside a user-level "main" thread, so it can
// block (barrier(), AMPI receives, …) while the PE keeps processing
// messages — exactly the blocking-calls-over-scheduler structure the paper
// describes for AMPI.
//
// The message path is lock-free end to end (see DESIGN.md "Messaging fast
// path"): sends pack into pooled per-PE Message buffers, enqueue onto an
// intrusive batched MPSC channel, and dispatch through an append-only atomic
// handler table — no mutex is acquired anywhere on the hot path once the
// machine is running. Self-sends issued from handler/scheduler context
// deliver inline without touching the queue at all.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "chaos/chaos.h"
#include "converse/wire.h"
#include "iso/region.h"
#include "pup/pup.h"
#include "ult/scheduler.h"

namespace mfc::converse {

using HandlerId = std::uint32_t;

/// Message payload with a small-buffer fast path: payloads up to kInline
/// bytes live inside the Message itself — envelope and data on adjacent
/// cache lines, no separate heap allocation per message. Larger payloads
/// spill to a heap vector whose capacity is recycled along with the pooled
/// message. The wire format (size + raw bytes) matches the old
/// std::vector<char> pup, so serialized messages are unchanged.
class Payload {
 public:
  static constexpr std::size_t kInline = 64;

  char* data() { return size_ <= kInline ? inline_ : heap_.data(); }
  const char* data() const {
    return size_ <= kInline ? inline_ : heap_.data();
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Contents are unspecified after growth; heap capacity is kept so a
  /// recycled message's buffer is reused.
  void resize(std::size_t n) {
    if (n > kInline) heap_.resize(n);
    size_ = n;
  }

  void assign(const void* src, std::size_t n) {
    resize(n);
    if (n != 0) std::memcpy(data(), src, n);
  }

  /// Takes ownership of a byte vector (large payloads move, no copy).
  void adopt(std::vector<char> v) {
    if (v.size() > kInline) {
      size_ = v.size();
      heap_ = std::move(v);
    } else {
      assign(v.data(), v.size());
    }
  }

  /// Moves the bytes out as a vector (forwarding paths); empties this.
  std::vector<char> take() {
    std::vector<char> out;
    if (size_ > kInline) {
      heap_.resize(size_);
      out = std::move(heap_);
    } else {
      out.assign(inline_, inline_ + size_);
    }
    size_ = 0;
    return out;
  }

  void pup(pup::Er& p) {
    std::size_t n = size_;
    p.bytes(&n, sizeof n);
    if (p.unpacking()) resize(n);
    if (n != 0) p.bytes(data(), n);
  }

 private:
  std::size_t size_ = 0;
  std::vector<char> heap_;
  char inline_[kInline];
};

struct Message {
  HandlerId handler = 0;
  std::int32_t src_pe = -1;
  std::int32_t dest_pe = -1;

  // Runtime-internal plumbing (never serialized), kept in the envelope's
  // first cache line ahead of the payload: the intrusive MPSC queue link —
  // the queue's swap-and-reverse walks it, so it must not share a line with
  // cold payload bytes — and whether a per-PE pool may recycle this
  // allocation (-1 = plain heap; otherwise the id of the PE whose pool last
  // held it — the consuming PE adopts it on release).
  std::int32_t pool_pe = -1;
  Message* next = nullptr;
  /// Trace flow id tying this send to its remote dispatch (0 = untraced or
  /// local; assigned per send, so recycling needs no cleanup).
  std::uint64_t trace_flow = 0;
  /// Enqueue timestamp (rdtsc ticks) for the queue-wait latency histogram
  /// (0 = unstamped; set per send only while hist::on(), so recycling needs
  /// no cleanup). Never serialized — wire messages are re-stamped at the
  /// receiving process's enqueue.
  std::uint64_t stamp = 0;

  Payload payload;

  void pup(pup::Er& p) { p | handler | src_pe | dest_pe | payload; }

  /// Unpacks the payload into a PUP-able value.
  template <typename T>
  T as() const {
    T value{};
    pup::MemUnpacker u(payload.data(), payload.size());
    pup::pup(u, value);
    return value;
  }

};

/// Handlers run on the destination PE's scheduler context (not inside a
/// ULT); they must not block, but may ready() threads and send messages.
using HandlerFn = std::function<void(Message&&)>;

/// Registers a handler. All PEs share the registry; handlers must be
/// registered before Machine::run (or identically on every address space
/// before the transport forks) so ids agree machine-wide. Registration
/// while the machine runs is tolerated (the charm array layer registers
/// lazily from entry functions): the table is append-only and dispatch
/// reads it lock-free.
HandlerId register_handler(HandlerFn fn);

class Machine {
 public:
  struct Config {
    /// Which wire carries cross-process (or, with nprocs == 1, *all*
    /// cross-PE — "loopback" mode) messages. kInProc is the classic
    /// single-process lock-free-queue machine.
    enum class Transport { kInProc, kShm, kSocket };

    int npes = 2;
    /// Processes the machine runs across. With nprocs > 1 a wire transport
    /// is required; Machine::run forks nprocs-1 children after the shared
    /// resources (chaos, trace rings, iso region, transport segments) are
    /// created, so every address space inherits them. npes must divide
    /// evenly; process k hosts PEs [k*ppn, (k+1)*ppn). mutex_baseline is a
    /// process-local feature and is rejected. FT hooks installed on a
    /// multi-process machine additionally arm whole-process fault
    /// tolerance: a respawn zygote is forked from the pristine pre-fork
    /// image, process 0 polices child liveness, and a SIGKILLed process
    /// can be respawned and rewired mid-run (see the process-tier API at
    /// the bottom of this header).
    int nprocs = 1;
    Transport transport = Transport::kInProc;
    /// Per-(dest-process, source-PE) SPSC ring capacity for the shm
    /// transport (power of two; messages over half a ring are chunked).
    std::size_t shm_ring_bytes = 64 * 1024;
    /// Socket payloads beyond this go rendezvous (RTS/CTS/DATA with a
    /// pre-sized landing buffer) instead of eager.
    std::size_t rendezvous_bytes = 256 * 1024;
    /// When set, initializes the isomalloc region for `npes` strips
    /// (skipped if the region already exists or iso_slots_per_pe == 0).
    std::uint32_t iso_slots_per_pe = 2048;
    std::size_t iso_slot_bytes = 256 * 1024;
    /// Per-PE message freelist capacity (messages kept for recycling;
    /// excess frees on release). Raise it for workloads whose in-flight
    /// message count exceeds the default, so steady-state sends stay
    /// allocation-free.
    std::size_t pool_cap = 4096;
    /// Benchmark-only: route messaging through the pre-rewrite
    /// mutex-per-message path (MutexMpscQueue + dispatch under a global
    /// lock, no pooling, no self-send bypass) so bench_micro can report
    /// the lock-free speedup from inside one binary.
    bool mutex_baseline = false;
    /// Fault injection / deterministic scheduling (chaos.enabled = true
    /// installs the chaos engine for the duration of the run; the seed is
    /// printed as MFC_CHAOS_SEED for replay). With delivery_delay active
    /// the self-send inline bypass is disabled so delayed messages cannot
    /// be overtaken.
    chaos::Config chaos;
  };

  /// Boots the machine: spawns one kernel thread per PE, runs `entry(pe)`
  /// as that PE's main user-level thread, and services messages until every
  /// main thread has finished. Returns after all PEs shut down.
  static void run(const Config& config, std::function<void(int)> entry);
};

// ---- Per-PE API (valid on a PE's kernel thread during Machine::run) ----

int my_pe();
int num_pes();
bool in_pe_context();

/// Multi-process topology (1/0 on a single-process machine).
int num_procs();
int my_proc();

/// Sends an active message (payload is a PUP-able value).
void send(int dest_pe, HandlerId handler, std::vector<char> payload);

namespace detail {
/// Pooled-message internals backing send_value/broadcast: acquires a
/// message whose payload buffer is recycled from the calling PE's pool
/// (sized to `payload_bytes`), and hands a filled message to the router.
Message* acquire_message(std::size_t payload_bytes);
void send_message(int dest_pe, HandlerId handler, Message* m);
}  // namespace detail

/// Packs `value` with one Sizer-measured pass directly into a pooled
/// per-PE buffer — no intermediate std::vector allocation per send.
template <typename T>
void send_value(int dest_pe, HandlerId handler, const T& value) {
  Message* m = detail::acquire_message(pup::packed_size(value));
  pup::MemPacker packer(m->payload.data(), m->payload.size());
  pup::pup(packer, const_cast<T&>(value));
  detail::send_message(dest_pe, handler, m);
}

/// One scatter-gather piece of an outgoing message (converse/wire.h).
using SendSpan = wire::Span;

/// Scatter-gather send: ships the concatenation of `spans` as one message
/// without requiring the caller to gather them first. On the in-process
/// path the spans are copied once, directly into the pooled delivery
/// envelope; on a wire transport they go to the ring copy loop or straight
/// to writev (rendezvous) — `ImageManifest` layouts ship with no
/// intermediate wire buffer either way.
///
/// `on_consumed` (optional) runs exactly once, after the span bytes have
/// been consumed and strictly before the message can be delivered anywhere.
/// Migration uses it for the destructive pack epilogue: the spans point
/// into live isomalloc slots, and the epilogue evacuates them — the
/// ordering guarantee is what keeps a same-process destination's install()
/// from colliding with still-resident source pages. Requires the lock-free
/// messaging path (no mutex_baseline).
void send_spans(int dest_pe, HandlerId handler, const SendSpan* spans,
                std::size_t nspans, std::function<void()> on_consumed = {});

/// Sends to every PE (including the caller).
void broadcast(HandlerId handler, const std::vector<char>& payload);

/// Blocks the calling user-level thread until every PE has entered the
/// barrier (message-based; callable once per PE per episode, typically from
/// the main thread).
void barrier();

/// Readies a thread on the *calling* PE's scheduler (handlers use this to
/// resume blocked threads). Cross-PE resumption must go through a message.
void ready_thread(ult::Thread* t);

/// The calling PE's user-level scheduler.
ult::Scheduler& pe_scheduler();

/// Statistics for benchmarks (sums of per-PE counters; advisory while the
/// machine is running).
std::uint64_t messages_sent();
std::uint64_t messages_delivered();

/// Message-envelope lifecycle accounting. Every envelope the machine
/// creates is counted at allocation and at destruction through one audited
/// path, and Machine::run asserts allocated == freed after teardown — a
/// PE exiting with a non-empty inbox, a stashed chaos-delayed batch, or a
/// populated recycling pool must all drain through the counted teardown.
/// Counters reset at the start of each Machine::run and remain readable
/// after it returns.
struct PoolStats {
  std::uint64_t allocated = 0;  ///< envelopes newed this run
  std::uint64_t freed = 0;      ///< envelopes deleted this run
  std::uint64_t recycled = 0;   ///< pool hits (no allocation needed)
  /// Envelopes still in flight (peer inboxes, delay stashes) when the
  /// machine stopped, reclaimed by the teardown drain.
  std::uint64_t drained_at_shutdown = 0;
};
PoolStats pool_stats();

/// Quiescence detection: blocks the calling user-level thread until every
/// message sent anywhere in the machine has been delivered and no PE has
/// runnable work other than threads parked in wait_quiescence() itself.
/// Multiple PEs may wait concurrently (typically all of them, making it a
/// "whole computation finished" detector for message-driven phases).
void wait_quiescence();

// ---- Fault-tolerance machine hooks (ft layer) ----
//
// The ft layer plugs into the machine at exactly two seams: a periodic tick
// on PE 0's scheduler loop (heartbeat pings + failure-timeout checks — PE 0
// is the detector/coordinator and is never killed), and a revival callback
// that runs on a dead PE's kernel thread after revive_pe(), BEFORE the
// backlog that queued up during death is drained (so the ft layer can wipe
// the PE's stale application state first). Hooks must be installed before
// Machine::run and removed after it returns; the machine captures them once
// at boot, so the FT-off hot path costs one plain-bool test per loop.
struct FtMachineHooks {
  /// Called every iteration of PE 0's scheduler loop (PE 0 context).
  std::function<void()> pe0_tick;
  /// Called on PE `pe`'s kernel thread right after revival, before any
  /// queued message dispatches.
  std::function<void(int pe)> on_revive;
};
void set_ft_machine_hooks(FtMachineHooks hooks);
void clear_ft_machine_hooks();

/// Marks PE `pe` failed: its loop stops dispatching messages and running
/// threads (they stay queued/parked — this emulation models the *machine's*
/// recovery protocol, not OS-level process death; see DESIGN.md "Fault
/// tolerance"). Requires FT hooks installed and pe != 0. Callable from any
/// PE thread, including the victim itself. A non-local `pe` is reached via
/// a machine-level control frame (kFtCtl); its process's comm thread flips
/// the flags.
void kill_pe(int pe);

/// Clears the dead flag and schedules the on_revive hook; the PE's loop
/// resumes, wipes via the hook, then drains its backlog. Works across
/// processes like kill_pe.
void revive_pe(int pe);

/// Local-process view only: a remote PE's death flag is not observable
/// here.
bool pe_dead(int pe);

// ---- Process-tier fault tolerance (armed when FT hooks are installed on
// a multi-process machine) ----
//
// Detection: process 0's comm thread reaps dead children (waitpid) and
// parks the observation in a mailbox the FT tick drains via
// take_dead_proc(). Recovery: request_respawn(proc) asks the zygote for a
// fresh incarnation; the zygote refreshes the dead process's wire
// resources, forks the replacement from the pristine pre-fork image
// (seeded exponential backoff), ships survivors the new stream ends over
// SCM_RIGHTS, and reports completion — observable via
// take_respawn_complete(). The respawned incarnation boots with all its
// PEs dead; the FT layer revives and refills them through the ordinary
// two-phase rollback.

/// 0 in an original process; the respawn generation (1, 2, …) in a
/// respawned incarnation. Application entry functions branch on this to
/// park reborn mains until recovery completes.
int respawn_generation();

/// True when whole-process kill + respawn is armed (FT hooks + nprocs > 1).
bool ft_proc_respawn_enabled();

/// Drains the dead-process mailbox: returns a process id whose death was
/// detected (comm-thread waitpid or zygote report), -1 if none. PE 0's FT
/// tick polls this.
int take_dead_proc();

/// Asks the zygote to respawn dead process `proc` (process 0, PE thread).
void request_respawn(int proc);

/// True once `proc`'s respawn completed (survivors rewired, replacement
/// running); consumes the completion event.
bool take_respawn_complete(int proc);

/// SIGKILLs process `proc` (whole-process chaos; process 0 only, proc != 0).
/// Original children die by direct signal; respawned incarnations are
/// killed through the zygote, which holds their pids.
void kill_proc(int proc);

/// Quiescence drain mode, bracketing recovery's settle wave: messages died
/// with the killed process, so send/deliver balance is unreachable. In
/// drain mode the detector instead requires every PE idle, every transport
/// quiescent, and counts frozen across two waves — and records the settled
/// deficit as the baseline later exact rounds compare against.
void begin_qd_drain();
void end_qd_drain();

/// Re-asserts an isomalloc slot lease in the slot's birth process (local
/// call or cross-process message). Recovery replays restored threads' slot
/// ids through this so a respawned process's fresh bitmap copy re-learns
/// the allocations it must not hand out again.
void iso_claim(const iso::SlotId& id);

}  // namespace mfc::converse
