// Wire framing shared by the cross-process transports (shm ring + socket).
//
// A frame is a fixed 56-byte Header followed by `payload_len` payload bytes.
// The writer takes a scatter list (`Span`s) and hands it to the kernel (or
// the ring copy loop) without gathering into an intermediate buffer — this
// is what lets `ImageManifest::layout()` runs go straight to `writev`. The
// reader is a resumable state machine: feed it a nonblocking byte source and
// it accumulates headers and payloads across arbitrarily small reads, so the
// same code path survives 1-byte reads and partial writev returns (tested in
// wire_test with a fault-injecting Io).
//
// Both sides are templated on an `Io` concept so tests can substitute a
// deterministic in-memory pipe that slices reads/writes at seeded points:
//
//   struct Io {
//     // Returns bytes read (>0), 0 on EOF, -1 on would-block.
//     std::ptrdiff_t read_some(void* dst, std::size_t n);
//     // Returns bytes written (>0, possibly short). Blocks until progress.
//     std::ptrdiff_t write_some(const iovec* iov, int iovcnt);
//   };
//
// The production `FdIo` wraps a socket fd: nonblocking reads, and writes via
// sendmsg(MSG_NOSIGNAL) with a poll(POLLOUT) loop so a slow peer never turns
// into SIGPIPE or a busy spin.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace mfc::converse::wire {

/// Frame kinds. Eager frames carry a whole message; kChunk splits a message
/// too large for one shm-ring pass (offset/total_len sequence the pieces);
/// kRts/kCts/kData implement the socket rendezvous protocol for big images;
/// kProcDone/kStop are the shutdown handshake (child → PE0-process → all).
enum class Kind : std::uint32_t {
  kEager = 1,
  kChunk = 2,
  kRts = 3,
  kCts = 4,
  kData = 5,
  kProcDone = 6,
  kStop = 7,
  /// FT control plane: src_pe = requesting PE, dest_pe = target PE,
  /// msg_id = op (0 kill, 1 revive). No payload. Machine-level — flips the
  /// target's dead/wipe flags from the comm thread without a handler.
  kFtCtl = 8,
};

/// POD frame header; identical layout in every process (all fixed-width
/// fields, no padding surprises: 4+4+4+4 + 8*5 = 56 bytes).
struct Header {
  std::uint32_t kind = 0;
  std::uint32_t handler = 0;
  std::int32_t src_pe = -1;
  std::int32_t dest_pe = -1;
  std::uint64_t payload_len = 0;  ///< bytes following this header
  std::uint64_t total_len = 0;    ///< whole-message bytes (kChunk/kRts)
  std::uint64_t offset = 0;       ///< this piece's offset (kChunk/kData)
  std::uint64_t msg_id = 0;       ///< rendezvous match key (kRts/kCts/kData)
  std::uint64_t trace_flow = 0;   ///< cross-process send→dispatch arrow
};
static_assert(sizeof(Header) == 56, "wire header layout must be fixed");

/// One scatter-gather piece of a payload.
struct Span {
  const void* data = nullptr;
  std::size_t len = 0;
};

inline std::size_t spans_total(const Span* spans, std::size_t n) {
  std::size_t t = 0;
  for (std::size_t i = 0; i < n; ++i) t += spans[i].len;
  return t;
}

/// Gathers spans into `dst` (ring copy path and staging buffers).
inline void spans_gather(char* dst, const Span* spans, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (spans[i].len != 0) std::memcpy(dst, spans[i].data, spans[i].len);
    dst += spans[i].len;
  }
}

#ifndef IOV_MAX
constexpr int kIovMax = 1024;
#else
constexpr int kIovMax = IOV_MAX < 1024 ? IOV_MAX : 1024;
#endif

/// Writes one frame (header + spans) through `io`, looping over short
/// writes. `h.payload_len` must equal the span total. Returns false only if
/// `io.write_some` reports a permanent failure by returning 0.
template <typename Io>
bool write_frame(Io& io, Header h, const Span* spans, std::size_t nspans) {
  MFC_CHECK_MSG(h.payload_len == spans_total(spans, nspans),
                "wire: header payload_len does not match span total");
  // Build the full iovec list once: header first, then every span.
  std::vector<iovec> iov;
  iov.reserve(nspans + 1);
  iov.push_back({&h, sizeof h});
  for (std::size_t i = 0; i < nspans; ++i) {
    if (spans[i].len != 0)
      iov.push_back({const_cast<void*>(spans[i].data), spans[i].len});
  }
  std::size_t idx = 0;  // first iovec not yet fully written
  while (idx < iov.size()) {
    int cnt = static_cast<int>(iov.size() - idx);
    if (cnt > kIovMax) cnt = kIovMax;
    std::ptrdiff_t wrote = io.write_some(&iov[idx], cnt);
    if (wrote <= 0) return false;
    // Advance through whatever the kernel took, possibly mid-iovec.
    std::size_t w = static_cast<std::size_t>(wrote);
    while (w != 0) {
      if (w >= iov[idx].iov_len) {
        w -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + w;
        iov[idx].iov_len -= w;
        w = 0;
      }
    }
  }
  return true;
}

enum class PumpResult { kOk, kWouldBlock, kEof };

/// Resumable frame reader. `pump(io, sink)` reads as many complete frames
/// as the source will yield without blocking. For each frame the sink is
/// asked where the payload should land *before* the payload is read:
///
///   struct Sink {
///     // Returns the destination buffer for `h.payload_len` bytes, or
///     // nullptr to have the reader use an internal scratch buffer (the
///     // frame still completes; on_frame sees the scratch bytes).
///     char* on_header(const Header& h);
///     void on_frame(const Header& h, char* payload);
///   };
///
/// This lets rendezvous kData frames land directly in the receiver's
/// pre-allocated Payload with no intermediate copy.
class Reader {
 public:
  template <typename Io, typename Sink>
  PumpResult pump(Io& io, Sink& sink) {
    for (;;) {
      if (!have_header_) {
        while (header_fill_ < sizeof(Header)) {
          std::ptrdiff_t r = io.read_some(
              reinterpret_cast<char*>(&header_) + header_fill_,
              sizeof(Header) - header_fill_);
          if (r == 0) {
            MFC_CHECK_MSG(header_fill_ == 0 || tolerate_eof_,
                          "wire: EOF inside a frame header");
            return PumpResult::kEof;
          }
          if (r < 0) return PumpResult::kWouldBlock;
          header_fill_ += static_cast<std::size_t>(r);
        }
        have_header_ = true;
        payload_fill_ = 0;
        dst_ = sink.on_header(header_);
        if (dst_ == nullptr && header_.payload_len != 0) {
          scratch_.resize(header_.payload_len);
          dst_ = scratch_.data();
        }
      }
      while (payload_fill_ < header_.payload_len) {
        std::ptrdiff_t r = io.read_some(dst_ + payload_fill_,
                                        header_.payload_len - payload_fill_);
        if (r == 0) {
          MFC_CHECK_MSG(tolerate_eof_, "wire: EOF inside a frame payload");
          return PumpResult::kEof;
        }
        if (r < 0) return PumpResult::kWouldBlock;
        payload_fill_ += static_cast<std::size_t>(r);
      }
      sink.on_frame(header_, dst_);
      have_header_ = false;
      header_fill_ = 0;
      dst_ = nullptr;
    }
  }

  /// True when no partial frame is buffered (clean shutdown check).
  bool idle() const { return !have_header_ && header_fill_ == 0; }

  /// Peer loss tolerance: EOF mid-frame returns kEof (the caller resets
  /// and discards the partial frame) instead of aborting. Default off — a
  /// truncated stream is a protocol violation unless the machine runs
  /// with cross-process fault tolerance armed.
  void set_tolerate_eof(bool on) { tolerate_eof_ = on; }

  /// Discards any partially-read frame. Used when a peer's stream is
  /// replaced mid-run (process respawn): bytes from the old stream must
  /// not prefix frames from the new one.
  void reset() {
    have_header_ = false;
    header_fill_ = 0;
    payload_fill_ = 0;
    dst_ = nullptr;
  }

 private:
  Header header_{};
  std::size_t header_fill_ = 0;
  std::size_t payload_fill_ = 0;
  bool have_header_ = false;
  bool tolerate_eof_ = false;
  char* dst_ = nullptr;
  std::vector<char> scratch_;
};

/// Production Io over a socket fd. Reads are nonblocking (-1 = EAGAIN);
/// writes block with poll(POLLOUT) until progress and never raise SIGPIPE.
/// A peer that died mid-write surfaces as write_some() == 0; callers treat
/// that as a drop after stop (and a hard failure before it).
class FdIo {
 public:
  FdIo() = default;
  explicit FdIo(int fd) : fd_(fd) {}

  int fd() const { return fd_; }

  std::ptrdiff_t read_some(void* dst, std::size_t n) {
    for (;;) {
      ssize_t r = ::recv(fd_, dst, n, MSG_DONTWAIT);
      if (r > 0) return r;
      if (r == 0) return 0;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
      return 0;  // hard error: report as EOF, caller checks frame boundary
    }
  }

  std::ptrdiff_t write_some(const iovec* iov, int iovcnt) {
    for (;;) {
      msghdr mh{};
      mh.msg_iov = const_cast<iovec*>(iov);
      mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
      ssize_t w = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
      if (w > 0) return w;
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{fd_, POLLOUT, 0};
        ::poll(&p, 1, 100);
        continue;
      }
      return 0;  // EPIPE / peer gone
    }
  }

 private:
  int fd_ = -1;
};

}  // namespace mfc::converse::wire
