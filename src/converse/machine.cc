#include "converse/machine.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "converse/transport.h"
#include "trace/flight.h"
#include "trace/hist.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/log.h"
#include "util/queue.h"
#include "util/timer.h"

namespace mfc::converse {

namespace flight = trace::flight;

namespace {

// ---- Handler registry ----
//
// Registration is mutex-guarded (it is cold: module init / first use), but
// the table itself is a fixed-capacity array of atomic slots so dispatch()
// is a bounds check plus one acquire load — no lock, ever. Handler ids only
// reach other PEs through messages, and the queue's release/acquire pair
// makes the slot store visible before any message naming it can arrive.
constexpr std::size_t kMaxHandlers = 1024;

std::mutex g_register_mutex;
std::atomic<HandlerFn*> g_handler_slots[kMaxHandlers];
std::atomic<std::uint32_t> g_handler_count{0};

/// Self-sends from handler context deliver inline (no enqueue); the depth
/// cap bounds stack growth and guarantees handler chains that never go
/// idle still return to the scheduler loop.
constexpr int kMaxInlineDepth = 8;

// Message counters live in the metrics registry (trace/metrics.h): one
// cache-line-isolated slot per PE, written only by that PE's kernel thread
// via single-writer bumps — the same discipline the old private PeCounters
// had, now shared with every other instrumented layer. Readers sum slots.
using metrics::Counter;

/// Per-PE Message freelist, touched only by the owning PE's kernel thread.
/// A consumed message is adopted into the *consuming* PE's pool rather than
/// returned to its allocator, so recycling costs one vector push and no
/// cross-thread traffic; pools stay balanced because symmetric traffic
/// returns as many messages as it takes. The cap bounds memory under
/// one-way floods (excess messages are simply freed; the cap is
/// Config::pool_cap). Recycled messages keep their payload capacity, so
/// steady-state sends allocate nothing.
struct MsgPool {
  std::vector<Message*> cache;
};

/// Envelope lifecycle audit (PoolStats): every `new Message` / `delete` in
/// this file goes through create_message/destroy_message so Machine::run
/// can assert allocated == freed after the teardown drain. The books live
/// in the metrics registry (reset at run start, readable after run); the
/// teardown path runs on the joining thread, which the registry routes to
/// its shared slot automatically.
Message* create_message() {
  metrics::bump(Counter::kMsgsAllocated);
  return new Message();
}

void destroy_message(Message* m) {
  metrics::bump(Counter::kMsgsFreed);
  delete m;
}

/// Teardown-drain destruction: a message reclaimed from a queue, delay
/// stash, or legacy inbox after the machine stopped.
void drain_message(Message* m) {
  metrics::bump(Counter::kMsgsDrained);
  destroy_message(m);
}

/// A message whose delivery the chaos layer postponed: dispatch when the
/// owning PE's loop tick reaches `due`. Later arrivals with earlier dues
/// overtake it — exactly the cross-PE reorder the fault model wants.
struct Delayed {
  Message* m = nullptr;
  std::uint64_t due = 0;
};

struct Pe {
  int id = -1;
  IntrusiveMpscChannel<Message> queue;
  MutexMpscQueue<Message> legacy_queue;  // Config::mutex_baseline only
  ult::Scheduler sched;
  ult::Thread* barrier_waiter = nullptr;
  std::uint64_t barrier_gen = 0;
  std::vector<ult::Thread*> quiescence_waiters;
  MsgPool pool;
  int inline_depth = 0;
  std::vector<Delayed> delayed;  // chaos delivery-delay stash
  std::uint64_t tick = 0;        // loop-iteration clock for `delayed`

  /// Everything still held here drains through the counted teardown path;
  /// Machine::run asserts the books balance right after the PEs are gone.
  ~Pe() {
    while (Message* m = queue.try_pop()) drain_message(m);
    while (legacy_queue.try_pop()) {
    }
    for (const Delayed& d : delayed) drain_message(d.m);
    for (Message* m : pool.cache) destroy_message(m);
  }
};

struct MachineState {
  int npes = 0;
  bool mutex_baseline = false;
  /// Chaos delivery-delay active: consumer loops stash injected messages
  /// and the self-send inline bypass is off (inline delivery would let a
  /// self-send overtake a delayed earlier message).
  bool chaos_delay = false;
  /// FT hooks were installed before boot: loops test per-PE death flags
  /// and PE 0 runs the detector tick. Off ⇒ zero additional loads.
  bool ft_on = false;
  std::size_t pool_cap = 4096;
  std::vector<std::unique_ptr<Pe>> pes;
  std::atomic<int> mains_finished{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> qd_round_active{false};
  // ---- Multi-process topology (defaults describe a 1-process machine) ----
  // Process my_proc hosts PEs [local_first, local_first + ppn); only those
  // entries of `pes` are populated. `transport` is the wire (owned by
  // Machine::run); non-null also in loopback mode (nprocs == 1 with a wire
  // transport selected), where every cross-PE send goes over it.
  int nprocs = 1;
  int my_proc = 0;
  int ppn = 0;
  int local_first = 0;
  int local_npes = 0;
  transport::Transport* transport = nullptr;
  std::atomic<int> procs_done{0};
  // Mattern double-wave memory for multi-process quiescence (PE 0 only):
  // the previous round's accumulated send/deliver counts. ~0 = no round.
  std::uint64_t qd_prev_sent = ~0ull;
  std::uint64_t qd_prev_delivered = ~0ull;
  // Per-PE FT flags (allocated only when ft_on). `dead`: the PE's loop
  // stops dispatching and spin-sleeps; messages queue up for the revival
  // drain. `wipe_pending`: revive_pe was called — run the on_revive hook
  // on the PE's own thread before touching the backlog.
  std::unique_ptr<std::atomic<bool>[]> dead;
  std::unique_ptr<std::atomic<bool>[]> wipe_pending;
  // PE0-only barrier bookkeeping (touched exclusively from PE0's loop).
  std::unordered_map<std::uint64_t, int> barrier_counts;
  // ---- Process-tier fault tolerance (see DESIGN.md "Fault tolerance").
  // Armed (ft_respawn) when FT hooks are installed on a multi-process
  // machine; everything below is inert otherwise. ----
  bool ft_respawn = false;
  /// 0 for an original process; the respawn generation in a respawned
  /// incarnation (whose local PEs boot dead until recovery revives them).
  int respawn_gen = 0;
  int ctl_fd = -1;       ///< this process's end of its zygote channel
  pid_t zygote_pid = 0;  ///< process 0 only
  std::vector<pid_t> kids;  ///< process 0 only: the original children
  /// Parallel to `kids`; written by the comm thread's liveness poll, read
  /// by the final reap and by kill_proc (atomic: PE 0's escalation races
  /// the comm thread).
  std::unique_ptr<std::atomic<bool>[]> kids_reaped;
  /// Process 0, PE-0-thread only: which procs now run as respawned
  /// incarnations — kill routing (original children get a direct SIGKILL;
  /// respawns go through the zygote, which holds their pids).
  std::vector<bool> proc_respawned;
  std::uint64_t next_respawn_gen = 0;  ///< PE-0-thread only
  /// Detection mailboxes, comm thread → FT tick on PE 0 (-1 = empty).
  std::atomic<int> dead_proc_event{-1};
  std::atomic<int> respawn_done_event{-1};
  /// Quiescence drain mode (recovery): see h_qd_token.
  std::atomic<bool> qd_drain{false};
  /// Settled send-deliver deficit recorded by the last drain wave —
  /// messages lost with dead processes. Signed: a respawned process's
  /// counters restart at zero, so accumulated sends can trail deliveries.
  /// Exact-mode quiescence compares against this baseline (starts 0, the
  /// failure-free rule). PE-0-thread only.
  std::int64_t qd_comp = 0;
};

MachineState* g_machine = nullptr;
thread_local Pe* t_pe = nullptr;

// FT hooks, installed before Machine::run and captured into ft_on at boot.
FtMachineHooks g_ft_hooks;
bool g_ft_hooks_set = false;

// ---- Zygote control protocol (process-tier FT) ----
//
// Fixed 16-byte records over per-process SOCK_SEQPACKET pairs (record
// boundaries preserved; SCM_RIGHTS carries a stream fd when one rides
// along). proc-end[k] lives in machine process k; zyg-end[k] in the zygote.

enum CtlType : std::uint32_t {
  kCtlReqRespawn = 1,   ///< proc 0 → zygote: respawn proc (arg = generation)
  kCtlPeerSwap = 2,     ///< zygote → survivor: attach proc's fresh stream
  kCtlSwapDone = 3,     ///< survivor → zygote: swap ack
  kCtlRespawnDone = 4,  ///< zygote → proc 0: respawn sequence complete
  kCtlProcDeath = 5,    ///< zygote → proc 0: a respawned incarnation died
  kCtlShutdown = 6,     ///< proc 0 → zygote: reap grandchildren and exit
  kCtlReqKill = 7,      ///< proc 0 → zygote: SIGKILL a respawned incarnation
};

struct CtlRec {
  std::uint32_t type = 0;
  std::int32_t proc = -1;
  std::uint64_t arg = 0;
};
static_assert(sizeof(CtlRec) == 16, "ctl record layout must be fixed");

void ctl_send(int fd, const CtlRec& rec, int ship_fd = -1) {
  msghdr mh{};
  iovec iov{const_cast<CtlRec*>(&rec), sizeof rec};
  mh.msg_iov = &iov;
  mh.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  if (ship_fd >= 0) {
    std::memset(cbuf, 0, sizeof cbuf);
    mh.msg_control = cbuf;
    mh.msg_controllen = sizeof cbuf;
    cmsghdr* cm = CMSG_FIRSTHDR(&mh);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &ship_fd, sizeof(int));
  }
  for (;;) {
    const ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (w == static_cast<ssize_t>(sizeof rec)) return;
    if (w < 0 && errno == EINTR) continue;
    MFC_CHECK_MSG(false, "machine ctl channel send failed");
  }
}

/// Nonblocking receive of one ctl record; false when none is ready (or the
/// peer closed). *ship_fd gets the SCM_RIGHTS fd when one rode along.
bool ctl_recv(int fd, CtlRec* rec, int* ship_fd) {
  msghdr mh{};
  iovec iov{rec, sizeof *rec};
  mh.msg_iov = &iov;
  mh.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  mh.msg_control = cbuf;
  mh.msg_controllen = sizeof cbuf;
  if (ship_fd != nullptr) *ship_fd = -1;
  for (;;) {
    const ssize_t r = ::recvmsg(fd, &mh, MSG_DONTWAIT | MSG_CMSG_CLOEXEC);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (r == 0) return false;  // peer closed
    MFC_CHECK_MSG(r == static_cast<ssize_t>(sizeof *rec),
                  "machine ctl channel: short read");
    break;
  }
  for (cmsghdr* cm = CMSG_FIRSTHDR(&mh); cm != nullptr;
       cm = CMSG_NXTHDR(&mh, cm)) {
    if (cm->cmsg_level != SOL_SOCKET || cm->cmsg_type != SCM_RIGHTS) continue;
    int got = -1;
    std::memcpy(&got, CMSG_DATA(cm), sizeof(int));
    if (ship_fd != nullptr && *ship_fd < 0) {
      *ship_fd = got;
    } else {
      ::close(got);
    }
  }
  return true;
}

struct BarrierMsg {
  std::uint64_t gen = 0;
  void pup(pup::Er& p) { p | gen; }
};

HandlerId h_barrier_arrive = 0;
HandlerId h_barrier_release = 0;
HandlerId h_qd_start = 0;
HandlerId h_qd_token = 0;
HandlerId h_qd_release = 0;
HandlerId h_iso_release = 0;
HandlerId h_iso_claim = 0;
HandlerId h_clock_ping = 0;
HandlerId h_clock_reply = 0;
HandlerId h_clock_set = 0;

// ---- Trace clock handshake (multi-process runs with tracing on) ----
//
// Every process timestamps its trace records against CLOCK_MONOTONIC, which
// forked same-host processes share — but the merge subtracts a measured
// per-process skew anyway, so the trace format stays honest if a machine
// layer ever spans real hosts. PE 0 runs one NTP-style exchange per remote
// process over the ordinary message path (the shm control slot is strictly
// SPSC, so the handshake cannot ride a new wire frame kind): ping carries
// t0, the remote echoes its receive time tr, and PE 0 ships back
// skew = tr - (t0 + t1)/2, which the remote stores into its trace session
// for the part header. Best effort: on a shared clock the truth is ~0, so
// queueing noise only nudges track alignment, never correctness.

struct ClockPing {
  std::int32_t proc = 0;
  std::int64_t t0 = 0;
  void pup(pup::Er& p) { p | proc | t0; }
};

struct ClockReply {
  std::int32_t proc = 0;
  std::int64_t t0 = 0;
  std::int64_t tr = 0;
  void pup(pup::Er& p) { p | proc | t0 | tr; }
};

struct ClockSet {
  std::int64_t skew = 0;
  void pup(pup::Er& p) { p | skew; }
};

std::int64_t mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct QdToken {
  std::uint64_t app_sent_at_start = 0;
  /// Multi-process: per-process app counts accumulated as the token passes
  /// each process's first PE (counts are process-local metrics, so the
  /// token has to collect them in place of PE 0 reading globals).
  std::uint64_t acc_sent = 0;
  std::uint64_t acc_delivered = 0;
  std::int32_t hops = 0;
  std::uint8_t all_idle = 1;
  /// Drain mode only: ANDs one transport->quiescent() sample per process —
  /// wire bytes in flight forbid a quiet verdict even though the lossy
  /// counts can no longer prove their absence.
  std::uint8_t xport_idle = 1;
  /// Round mode, stamped at qd_start_round: 1 = drain (recovery settle
  /// wave), 0 = exact. Travels in the token because the drain flag lives
  /// in PE 0's process only.
  std::uint8_t drain = 0;
  void pup(pup::Er& p) {
    p | app_sent_at_start | acc_sent | acc_delivered | hops | all_idle |
        xport_idle | drain;
  }
};

/// True when `pe` lives in this process (always true on 1-process machines).
bool pe_local(int pe) { return pe / g_machine->ppn == g_machine->my_proc; }

// Registry reads: per-PE slots plus the shared slot (sends from non-PE
// threads land there, which is what keeps the PE slots single-writer).
std::uint64_t total_sent() { return metrics::total(Counter::kMsgsSent); }
std::uint64_t total_delivered() {
  return metrics::total(Counter::kMsgsDelivered);
}
std::uint64_t total_qd_sent() { return metrics::total(Counter::kQdSent); }
std::uint64_t total_qd_delivered() {
  return metrics::total(Counter::kQdDelivered);
}

// "Application" traffic excludes both QD tokens and FT protocol messages
// (heartbeats, checkpoint shipments, recovery control): each is counted
// sent/delivered in its own pair so quiescence judges only the workload.
std::uint64_t app_sent() {
  return total_sent() - total_qd_sent() -
         metrics::total(Counter::kFtSent);
}
std::uint64_t app_delivered() {
  return total_delivered() - total_qd_delivered() -
         metrics::total(Counter::kFtDelivered);
}

/// QD system send: counted separately so tokens don't disturb the counts
/// they are observing.
void qd_send(int pe, HandlerId handler, const std::vector<char>& payload) {
  MFC_CHECK_MSG(t_pe != nullptr, "QD traffic originates on PEs");
  metrics::bump(Counter::kQdSent);
  send(pe, handler, payload);
}

void qd_start_round() {
  QdToken token;
  token.app_sent_at_start = app_sent();
  token.drain = g_machine->qd_drain.load(std::memory_order_acquire) ? 1 : 0;
  qd_send(0, h_qd_token, pup::to_bytes(token));
}

HandlerFn* handler_lookup(HandlerId id) {
  MFC_CHECK_MSG(id < kMaxHandlers, "unknown handler id");
  HandlerFn* fn = g_handler_slots[id].load(std::memory_order_acquire);
  MFC_CHECK_MSG(fn != nullptr, "unknown handler id");
  return fn;
}

void release_message(Message* m) {
  if (m->pool_pe < 0 || t_pe == nullptr ||
      t_pe->pool.cache.size() >= g_machine->pool_cap) {
    destroy_message(m);
    return;
  }
  m->pool_pe = t_pe->id;
  t_pe->pool.cache.push_back(m);
}

Message* pool_acquire(Pe* pe) {
  MsgPool& pool = pe->pool;
  if (!pool.cache.empty()) {
    // Chaos pool-miss injection: skip the freelist and take a one-shot heap
    // envelope (pool_pe = -1 so release frees instead of recycling) —
    // models allocator pressure without actually failing the send.
    if (chaos::should_inject(chaos::Point::kPoolAcquire)) {
      return create_message();
    }
    Message* m = pool.cache.back();
    pool.cache.pop_back();
    metrics::bump(Counter::kMsgsRecycled);
    return m;
  }
  Message* m = create_message();
  m->pool_pe = pe->id;
  return m;
}

/// Fast-path delivery: one acquire load for the handler, no lock. With the
/// latency histograms armed (MFC_STATS) it also settles the message's
/// enqueue stamp into queue-wait and brackets the handler into service
/// time — two extra rdtsc reads per message, behind the same predictable
/// off-by-default branch the trace gate uses.
void dispatch(Message* m) {
  HandlerFn* fn = handler_lookup(m->handler);
  metrics::bump(Counter::kMsgsDelivered);
  const HandlerId h = m->handler;
  trace::emit(trace::Ev::kHandlerBegin, m->trace_flow, h,
              static_cast<std::uint32_t>(m->payload.size()),
              static_cast<std::int16_t>(m->src_pe));
  std::uint64_t t0 = 0;
  if (hist::on()) {
    t0 = rdtsc();
    if (m->stamp != 0 && t0 > m->stamp) {
      hist::record(hist::Hist::kQueueWait, t0 - m->stamp);
    }
  }
  (*fn)(std::move(*m));
  if (t0 != 0) hist::record(hist::Hist::kHandlerService, rdtsc() - t0);
  trace::emit(trace::Ev::kHandlerEnd, 0, h);
  release_message(m);
}

/// mutex_baseline delivery: the seed's behavior — handler looked up under
/// a global mutex, message passed by value.
void dispatch_value(Message&& m) {
  HandlerFn* fn;
  {
    std::lock_guard<std::mutex> lock(g_register_mutex);
    fn = handler_lookup(m.handler);
  }
  metrics::bump(Counter::kMsgsDelivered);
  const HandlerId h = m.handler;
  trace::emit(trace::Ev::kHandlerBegin, m.trace_flow, h,
              static_cast<std::uint32_t>(m.payload.size()),
              static_cast<std::int16_t>(m.src_pe));
  (*fn)(std::move(m));
  trace::emit(trace::Ev::kHandlerEnd, 0, h);
}

/// Dispatches every stashed message whose due tick has passed, in stash
/// order among equals — the reorder comes from unequal injected delays.
bool release_due_delayed(Pe* pe) {
  bool any = false;
  for (std::size_t i = 0; i < pe->delayed.size();) {
    if (pe->delayed[i].due <= pe->tick) {
      Message* m = pe->delayed[i].m;
      pe->delayed.erase(pe->delayed.begin() +
                        static_cast<std::ptrdiff_t>(i));
      dispatch(m);
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

/// Local delivery tail shared by send_message and send_spans: the self-send
/// inline bypass (handler/scheduler context, empty consumer queue, bounded
/// depth) or a queue push.
void enqueue_or_inline(int dest_pe, Message* m) {
  Pe& dest = *g_machine->pes[static_cast<std::size_t>(dest_pe)];
  Pe* self = t_pe;
  if (!g_machine->chaos_delay && self != nullptr && dest_pe == self->id &&
      !self->sched.in_thread() && self->inline_depth < kMaxInlineDepth &&
      self->queue.consumer_empty()) {
    ++self->inline_depth;
    dispatch(m);
    --self->inline_depth;
    return;
  }
  dest.queue.push(m);
}

void pe_loop(Pe* pe, const std::function<void(int)>& entry) {
  t_pe = pe;
  ult::Scheduler::set_current(&pe->sched);
  // Bind this kernel thread to its per-PE metrics slot and trace ring
  // (no-ops when the registry is unsized / no trace session is active),
  // plus the PE's chaos decision streams and — in deterministic-schedule
  // mode — the scheduler's seeded choice RNG.
  metrics::bind_pe(pe->id);
  trace::bind_pe(pe->id);
  hist::bind_pe(pe->id);
  flight::bind_pe(pe->id);
  chaos::bind_stream(pe->id);
  pe->sched.set_choice_rng(chaos::sched_choice_rng());

  auto* main_thread = new ult::StandardThread(
      [pe, &entry] {
        // Before any application traffic: PE 0 measures each remote
        // process's clock skew so multi-process trace parts merge onto one
        // timeline (quiet queues give the cleanest RTT estimate).
        if (pe->id == 0 && g_machine->nprocs > 1 && trace::active()) {
          for (int p = 1; p < g_machine->nprocs; ++p) {
            ClockPing ping;
            ping.proc = p;
            ping.t0 = mono_now_ns();
            send_value(p * g_machine->ppn, h_clock_ping, ping);
          }
        }
        entry(pe->id);
        if (g_machine->mains_finished.fetch_add(1) + 1 ==
            g_machine->local_npes) {
          if (g_machine->nprocs == 1) {
            g_machine->stop.store(true);
            for (auto& other : g_machine->pes) {
              other->queue.wake();
              other->legacy_queue.wake();
            }
            if (g_machine->transport) g_machine->transport->stop_local();
          } else {
            // Multi-process: every local main is done. Tell process 0; the
            // stop order comes back through the transport once every
            // process has reported (see the on_proc_done hook).
            g_machine->transport->send_proc_done(pe->id);
          }
        }
      },
      512 * 1024);
  main_thread->set_delete_on_exit(true);
  pe->sched.ready(main_thread);

  if (g_machine->mutex_baseline) {
    while (!g_machine->stop.load(std::memory_order_acquire)) {
      bool progress = false;
      while (auto m = pe->legacy_queue.try_pop()) {
        dispatch_value(std::move(*m));
        progress = true;
      }
      if (pe->sched.run_one()) progress = true;
      if (!progress) {
        if (auto m = pe->legacy_queue.pop_wait()) dispatch_value(std::move(*m));
      }
    }
  } else {
    const bool delay_on = g_machine->chaos_delay;
    const bool ft_on = g_machine->ft_on;
    const std::uint64_t max_ticks = delay_on ? chaos::config().max_delay_ticks : 0;
    while (!g_machine->stop.load(std::memory_order_acquire)) {
      if (ft_on) {
        // Dead PE: stop dispatching and running threads; messages keep
        // queueing and drain after revival. Spin-sleep (no park) so the
        // revival flag is observed without a wake protocol.
        if (g_machine->dead[pe->id].load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        // Just revived: wipe stale state on this PE's own thread BEFORE
        // the death-window backlog dispatches into it.
        if (g_machine->wipe_pending[pe->id].exchange(
                false, std::memory_order_acq_rel)) {
          if (g_ft_hooks.on_revive) g_ft_hooks.on_revive(pe->id);
        }
        // PE 0 is the failure detector: heartbeats + timeout checks.
        if (pe->id == 0 && g_ft_hooks.pe0_tick) g_ft_hooks.pe0_tick();
      }
      bool progress = false;
      if (delay_on) {
        ++pe->tick;
        if (release_due_delayed(pe)) progress = true;
      }
      while (Message* m = pe->queue.try_pop()) {
        if (delay_on && chaos::should_inject(chaos::Point::kDelivery)) {
          // Stash instead of dispatching; a later arrival with a shorter
          // injected delay overtakes this one. QD stays honest while the
          // stash is non-empty: the message counts as sent but not yet
          // delivered, so the machine cannot report quiescent around it.
          const std::uint64_t d =
              1 + chaos::draw(chaos::Point::kDelivery, max_ticks);
          pe->delayed.push_back({m, pe->tick + d});
        } else {
          dispatch(m);
        }
        progress = true;
        // A handler may have killed this very PE (self-kill at a chaos
        // injection point): stop mid-batch, leaving the rest queued.
        if (ft_on &&
            g_machine->dead[pe->id].load(std::memory_order_relaxed)) {
          break;
        }
      }
      if (ft_on &&
          g_machine->dead[pe->id].load(std::memory_order_relaxed)) {
        continue;  // no run_one/park for the freshly dead
      }
      if (pe->sched.run_one()) progress = true;
      if (!progress) {
        // A non-empty stash forbids parking — only loop ticks age it out.
        if (!pe->delayed.empty()) continue;
        // With FT on, PE 0 parks with a deadline so detector ticks keep
        // firing on an otherwise idle machine.
        if (ft_on && pe->id == 0) {
          if (Message* m = pe->queue.pop_wait_for(200)) dispatch(m);
          continue;
        }
        // Idle: bounded spin then park until a message arrives or shutdown
        // wakes us. On delivery, re-enter the drain loop immediately — the
        // batch behind this message is typically non-empty.
        if (Message* m = pe->queue.pop_wait()) {
          dispatch(m);
          continue;
        }
      }
    }
  }

  pe->sched.set_choice_rng(nullptr);
  chaos::unbind_stream();
  flight::unbind_pe();
  hist::unbind_pe();
  trace::unbind_pe();
  metrics::unbind_pe();
  ult::Scheduler::set_current(nullptr);
  t_pe = nullptr;
}

void register_builtin_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_barrier_arrive = register_handler([](Message&& m) {
      // Runs on PE0: count arrivals per generation; release when complete.
      auto msg = m.as<BarrierMsg>();
      int& count = g_machine->barrier_counts[msg.gen];
      if (++count == g_machine->npes) {
        g_machine->barrier_counts.erase(msg.gen);
        std::vector<char> payload = pup::to_bytes(msg);
        broadcast(h_barrier_release, payload);
      }
    });
    h_barrier_release = register_handler([](Message&& m) {
      auto msg = m.as<BarrierMsg>();
      Pe* pe = t_pe;
      MFC_CHECK_MSG(pe->barrier_waiter != nullptr && pe->barrier_gen == msg.gen,
                    "barrier release without waiter");
      ult::Thread* waiter = pe->barrier_waiter;
      pe->barrier_waiter = nullptr;
      pe->sched.ready(waiter);
    });
    // Quiescence detection: Mattern-style counting token ring. A token
    // visits every PE in order; if every PE was locally idle during its
    // visit AND the application send/deliver counts were equal and
    // unchanged across the whole round, the machine is quiet.
    h_qd_start = register_handler([](Message&&) {
      metrics::bump(Counter::kQdDelivered);
      MFC_CHECK(t_pe->id == 0);
      if (!g_machine->qd_round_active.exchange(true)) qd_start_round();
    });
    h_qd_token = register_handler([](Message&& m) {
      metrics::bump(Counter::kQdDelivered);
      auto token = m.as<QdToken>();
      Pe* pe = t_pe;
      if (token.hops == g_machine->npes) {
        // The token visited every PE and came back to PE 0: decide.
        MFC_CHECK(pe->id == 0);
        bool quiet;
        if (g_machine->nprocs > 1) {
          // Counts are process-local, so PE 0 cannot read machine totals;
          // the token accumulated one reading per process instead. Quiet
          // needs balance AND two consecutive identical rounds (Mattern's
          // double wave) — a single balanced reading can be stale.
          const bool stable =
              token.acc_sent == g_machine->qd_prev_sent &&
              token.acc_delivered == g_machine->qd_prev_delivered;
          const std::int64_t diff =
              static_cast<std::int64_t>(token.acc_sent) -
              static_cast<std::int64_t>(token.acc_delivered);
          if (token.drain != 0) {
            // Drain mode (process recovery): messages died with the killed
            // process, so balance is unreachable. Quiet = every PE idle,
            // every transport drained, counts frozen across two waves; the
            // settled deficit becomes the baseline exact rounds compare
            // against from now on.
            quiet = token.all_idle != 0 && token.xport_idle != 0 && stable;
            if (quiet) g_machine->qd_comp = diff;
          } else {
            // Exact mode: balance up to the recorded loss baseline
            // (qd_comp starts 0, i.e. the failure-free rule).
            quiet =
                token.all_idle != 0 && diff == g_machine->qd_comp && stable;
          }
          g_machine->qd_prev_sent = token.acc_sent;
          g_machine->qd_prev_delivered = token.acc_delivered;
        } else {
          quiet = token.all_idle != 0 &&
                  app_sent() == token.app_sent_at_start &&
                  app_delivered() == token.app_sent_at_start;
        }
        if (quiet) {
          g_machine->qd_prev_sent = ~0ull;
          g_machine->qd_prev_delivered = ~0ull;
          g_machine->qd_round_active.store(false);
          for (int p = 0; p < g_machine->npes; ++p) {
            qd_send(p, h_qd_release, {});
          }
        } else {
          qd_start_round();  // something moved: try again
        }
        return;
      }
      if (pe->sched.ready_count() > 0) token.all_idle = 0;
      if (g_machine->nprocs > 1 && pe->id % g_machine->ppn == 0) {
        token.acc_sent += app_sent();
        token.acc_delivered += app_delivered();
        // Drain rounds only: sampling the wire is advisory (and the socket
        // sample takes a lock), so exact rounds never pay for it — and the
        // tsan legs, which are loopback and never drain, never race it.
        if (token.drain != 0 && g_machine->transport != nullptr &&
            !g_machine->transport->quiescent()) {
          token.xport_idle = 0;
        }
      }
      token.hops += 1;
      qd_send((pe->id + 1) % g_machine->npes, h_qd_token,
              pup::to_bytes(token));
    });
    h_qd_release = register_handler([](Message&&) {
      metrics::bump(Counter::kQdDelivered);
      Pe* pe = t_pe;
      for (ult::Thread* t : pe->quiescence_waiters) pe->sched.ready(t);
      pe->quiescence_waiters.clear();
    });
    // Cross-process isomalloc lease: a slot freed away from its birth
    // process ships its identity home; the birth PE clears the `used` bit
    // (the releasing process already evacuated the pages on its side).
    h_iso_release = register_handler([](Message&& m) {
      auto id = m.as<iso::SlotId>();
      iso::Region::instance().free_remote(id);
    });
    // Lease reassertion after a process respawn: restored threads replay
    // their slot ids to the birth process so its fresh (zygote boot-time)
    // bitmap copy re-learns the allocations. FT-counted: recovery traffic
    // must not disturb the quiescence the recovery itself waits for.
    h_iso_claim = register_handler([](Message&& m) {
      metrics::bump(Counter::kFtDelivered);
      iso::Region::instance().reassert(m.as<iso::SlotId>());
    });
    // Trace clock handshake (see the comment block above ClockPing).
    h_clock_ping = register_handler([](Message&& m) {
      auto ping = m.as<ClockPing>();
      ClockReply r;
      r.proc = ping.proc;
      r.t0 = ping.t0;
      r.tr = mono_now_ns();
      send_value(0, h_clock_reply, r);
    });
    h_clock_reply = register_handler([](Message&& m) {
      auto r = m.as<ClockReply>();
      const std::int64_t t1 = mono_now_ns();
      ClockSet set;
      set.skew = r.tr - (r.t0 + t1) / 2;
      send_value(r.proc * g_machine->ppn, h_clock_set, set);
    });
    h_clock_set = register_handler([](Message&& m) {
      trace::set_clock_skew(m.as<ClockSet>().skew);
    });
  });
}

// ---- Per-process machine body ----
//
// Machine::run's post-fork half, split out so the respawn zygote can run
// the identical body for a replacement incarnation. Non-zero processes
// _Exit(0) inside; process 0 returns (with the transport joined and
// g_machine still alive) for the parent-side teardown.

struct ProcRun {
  const Machine::Config* config = nullptr;
  const std::function<void(int)>* entry = nullptr;
  std::unique_ptr<transport::Transport>* transport = nullptr;
  int my_proc = 0;
  int respawn_gen = 0;  ///< > 0 marks a respawned incarnation
  int ctl_fd = -1;      ///< this process's zygote channel (-1 = no zygote)
  pid_t zygote_pid = 0;
  std::vector<pid_t> kids;  ///< process 0 only
  bool owns_chaos = false;
  bool owns_trace = false;
  bool owns_hist = false;
};

void run_machine_process(ProcRun ctx) {
  const Machine::Config& config = *ctx.config;
  const std::function<void(int)>& entry = *ctx.entry;
  std::unique_ptr<transport::Transport>& transport = *ctx.transport;
  const int my_proc = ctx.my_proc;

  // ---- Per-process machine state (post-fork). ----
  const int ppn = config.npes / config.nprocs;
  g_machine = new MachineState();
  g_machine->npes = config.npes;
  g_machine->mutex_baseline = config.mutex_baseline;
  g_machine->chaos_delay =
      chaos::enabled() && chaos::config().delivery_delay > 0.0;
  g_machine->ft_on = g_ft_hooks_set;
  g_machine->nprocs = config.nprocs;
  g_machine->my_proc = my_proc;
  g_machine->ppn = ppn;
  g_machine->local_first = my_proc * ppn;
  g_machine->local_npes = ppn;
  g_machine->transport = transport.get();
  g_machine->ft_respawn = g_ft_hooks_set && config.nprocs > 1;
  g_machine->respawn_gen = ctx.respawn_gen;
  g_machine->ctl_fd = ctx.ctl_fd;
  g_machine->zygote_pid = ctx.zygote_pid;
  g_machine->kids = std::move(ctx.kids);
  if (!g_machine->kids.empty()) {
    g_machine->kids_reaped =
        std::make_unique<std::atomic<bool>[]>(g_machine->kids.size());
  }
  g_machine->proc_respawned.assign(static_cast<std::size_t>(config.nprocs),
                                   false);
  // Stamp observability provenance with the post-fork identity: metrics
  // snapshots record which process they came from, trace parts record the
  // local PE range they own, the flight recorder names its dump file.
  metrics::set_proc(my_proc, config.nprocs);
  flight::set_proc(my_proc, config.nprocs);
  if (trace::active()) {
    trace::set_proc(my_proc, config.nprocs, g_machine->local_first,
                    g_machine->local_npes);
  }
  if (g_machine->ft_on) {
    MFC_CHECK_MSG(!config.mutex_baseline,
                  "FT hooks require the lock-free messaging path");
    g_machine->dead =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(config.npes));
    g_machine->wipe_pending =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(config.npes));
    if (g_machine->respawn_gen > 0) {
      // A respawned incarnation boots with every local PE dead: the mains
      // park (the application's rebirth branch) and the loops spin-sleep
      // until recovery revives and refills them from the remote buddies.
      for (int i = g_machine->local_first; i < g_machine->local_first + ppn;
           ++i) {
        g_machine->dead[i].store(true, std::memory_order_relaxed);
      }
    }
  }
  g_machine->pool_cap = config.pool_cap;
  g_machine->pes.resize(static_cast<std::size_t>(config.npes));
  for (int i = g_machine->local_first;
       i < g_machine->local_first + g_machine->local_npes; ++i) {
    auto pe = std::make_unique<Pe>();
    pe->id = i;
    g_machine->pes[static_cast<std::size_t>(i)] = std::move(pe);
  }

  if (transport) {
    transport::Hooks hooks;
    hooks.alloc = [](const wire::Header& h, std::uint64_t total_len) {
      Message* m = create_message();
      m->handler = h.handler;
      m->src_pe = h.src_pe;
      m->dest_pe = h.dest_pe;
      m->trace_flow = h.trace_flow;
      // Adopted into the destination PE's pool on release (the comm thread
      // allocates, the destination PE frees).
      m->pool_pe = h.dest_pe;
      m->payload.resize(static_cast<std::size_t>(total_len));
      return m;
    };
    hooks.enqueue = [](Message* m) {
      Pe* dest = g_machine->pes[static_cast<std::size_t>(m->dest_pe)].get();
      MFC_CHECK_MSG(dest != nullptr, "wire delivery to a non-local PE");
      // Queue-wait for wire arrivals measures local-queue residency only
      // (stamps never cross processes; tsc domains may differ).
      m->stamp = hist::on() ? rdtsc() : 0;
      dest->queue.push(m);
    };
    hooks.drop = [](Message* m) { drain_message(m); };
    hooks.on_proc_done = [] {
      if (g_machine->procs_done.fetch_add(1) + 1 == g_machine->nprocs) {
        g_machine->transport->broadcast_stop();
      }
    };
    hooks.on_stop = [] {
      g_machine->stop.store(true);
      for (auto& pe : g_machine->pes) {
        if (pe) {
          pe->queue.wake();
          pe->legacy_queue.wake();
        }
      }
      g_machine->transport->stop_local();
    };
    hooks.tolerate_peer_loss = g_machine->ft_respawn;
    if (g_machine->ft_on) {
      // Machine-level FT control frames (kill/revive for a local PE): the
      // comm thread flips the same flags kill_pe/revive_pe flip locally.
      hooks.ft_ctl = [](const wire::Header& h) {
        const int pe = h.dest_pe;
        MFC_CHECK(pe >= 0 && pe < g_machine->npes && pe_local(pe));
        if (h.msg_id == 0) {
          g_machine->dead[pe].store(true, std::memory_order_release);
          g_machine->pes[static_cast<std::size_t>(pe)]->queue.wake();
        } else {
          g_machine->wipe_pending[pe].store(true, std::memory_order_release);
          g_machine->dead[pe].store(false, std::memory_order_release);
        }
      };
    }
    if (!g_machine->kids.empty() || g_machine->ctl_fd >= 0) {
      // Comm-thread policing. Process 0 reaps dead children: without the
      // process tier armed a dead child is an immediate crash (it would
      // hang the stop protocol); with it the death becomes a detection
      // event for the FT tick. Every process additionally drains its
      // zygote channel — survivors install respawned peers' fresh streams
      // here (attach_peer must run on the comm thread).
      hooks.idle = [] {
        MachineState* st = g_machine;
        for (std::size_t k = 0; k < st->kids.size(); ++k) {
          if (st->kids_reaped[k].load(std::memory_order_relaxed)) continue;
          int status = 0;
          const pid_t r = waitpid(st->kids[k], &status, WNOHANG);
          if (r != st->kids[k]) continue;
          st->kids_reaped[k].store(true, std::memory_order_release);
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
          MFC_CHECK_MSG(st->ft_respawn, "machine child process died");
          const int proc = static_cast<int>(k) + 1;
          metrics::bump(Counter::kProcKills);
          trace::emit_flight(trace::Ev::kFtProcDown, 0,
                             static_cast<std::uint32_t>(proc), 0,
                             static_cast<std::int16_t>(proc * st->ppn));
          st->dead_proc_event.store(proc, std::memory_order_release);
        }
        if (st->ctl_fd < 0) return;
        CtlRec rec;
        int fd = -1;
        while (ctl_recv(st->ctl_fd, &rec, &fd)) {
          switch (rec.type) {
            case kCtlPeerSwap:
              // A dead peer was respawned: swap to its fresh stream and
              // ack so the zygote can report the respawn complete.
              st->transport->attach_peer(rec.proc, fd, rec.arg);
              ctl_send(st->ctl_fd,
                       CtlRec{kCtlSwapDone, rec.proc, rec.arg});
              break;
            case kCtlRespawnDone:
              metrics::bump(Counter::kProcRespawns);
              trace::emit_flight(trace::Ev::kFtProcRespawn, rec.arg,
                                 static_cast<std::uint32_t>(rec.proc));
              st->respawn_done_event.store(rec.proc,
                                           std::memory_order_release);
              break;
            case kCtlProcDeath:
              // A respawned incarnation died (only the zygote, its parent,
              // can waitpid it). Same detection event as a child death.
              metrics::bump(Counter::kProcKills);
              trace::emit_flight(
                  trace::Ev::kFtProcDown, 0,
                  static_cast<std::uint32_t>(rec.proc), 0,
                  static_cast<std::int16_t>(rec.proc * st->ppn));
              st->dead_proc_event.store(rec.proc, std::memory_order_release);
              break;
            default:
              MFC_CHECK_MSG(false,
                            "unexpected record on the machine ctl channel");
          }
          fd = -1;
        }
      };
    }
    transport->start(my_proc, std::move(hooks));
  }

  // Cross-process slot leasing: release() must clear the `used` bit in the
  // slot's birth process (the one whose strip bitmap tracks it), so
  // non-local releases evacuate locally then forward a free order.
  if (config.nprocs > 1) {
    iso::Region::set_lease(
        [](int pe) { return pe_local(pe); },
        [](iso::SlotId id) { send_value(id.pe, h_iso_release, id); });
  }

  // Wedge watchdog (MFC_WEDGE_MS=<n>, off by default): a per-process
  // monitor thread that fires the flight recorder if the local message
  // counters sit still for n ms while the machine is supposedly running.
  // Each process polices itself, so a machine-wide wedge produces one
  // black-box dump per process without any cross-process coordination.
  std::atomic<bool> wedge_stop{false};
  std::thread wedge;
  long wedge_ms = 0;
  if (const char* env = std::getenv("MFC_WEDGE_MS");
      env != nullptr && *env != '\0') {
    wedge_ms = std::strtol(env, nullptr, 10);
  }
  if (wedge_ms > 0) {
    wedge = std::thread([&wedge_stop, wedge_ms] {
      const auto poll = std::chrono::milliseconds(
          wedge_ms / 4 > 50 ? 50 : (wedge_ms / 4 > 0 ? wedge_ms / 4 : 1));
      std::uint64_t last = ~0ull;
      auto last_move = std::chrono::steady_clock::now();
      while (!wedge_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        const std::uint64_t cur = total_sent() + total_delivered();
        const auto now = std::chrono::steady_clock::now();
        if (cur != last) {
          last = cur;
          last_move = now;
        } else if (now - last_move >= std::chrono::milliseconds(wedge_ms)) {
          trace::flight::dump("wedge");
          return;
        }
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(g_machine->local_npes));
  for (int i = g_machine->local_first;
       i < g_machine->local_first + g_machine->local_npes; ++i) {
    threads.emplace_back(pe_loop,
                         g_machine->pes[static_cast<std::size_t>(i)].get(),
                         std::cref(entry));
  }
  for (auto& t : threads) t.join();

  if (wedge.joinable()) {
    wedge_stop.store(true, std::memory_order_release);
    wedge.join();
  }

  if (transport) {
    transport->stop_local();
    transport->join();
  }
  if (config.nprocs > 1) iso::Region::clear_lease();

  if (my_proc != 0) {
    // Child teardown mirrors the parent's but ends in _Exit: the child must
    // not run atexit handlers or static destructors for state the parent
    // still owns. Books are checked per-process (the pes vector only drains
    // local envelopes).
    delete g_machine;
    g_machine = nullptr;
    if (ctx.owns_chaos) chaos::uninstall();
    if (ctx.owns_trace) {
      // Binary part, not JSON: the parent merges every process's part into
      // one clock-aligned timeline after it reaps the children.
      trace::stop_and_export_part(trace::env_file() + ".part" +
                                  std::to_string(my_proc));
    }
    if (ctx.owns_hist) {
      hist::write_stats_json(hist::env_file() + ".proc" +
                             std::to_string(my_proc));
      hist::enable(false);
    }
    MFC_CHECK_MSG(metrics::total(metrics::Counter::kMsgsAllocated) ==
                      metrics::total(metrics::Counter::kMsgsFreed),
                  "message envelopes leaked at machine shutdown (child)");
    transport.reset();
    std::_Exit(0);
  }
}

// ---- Respawn zygote ----
//
// A process forked from the pristine pre-fork single-threaded image,
// holding copies of every shared resource (shm segment, socket matrix, iso
// reservation, handler table, installed FT hooks, armed trace/flight
// state). A SIGKILLed worker cannot be re-forked from any live process —
// they all carry PE threads and divergent state — so the zygote parks on
// the clean image and forks replacements from it on request. It is also
// the only place that can refresh a dead process's wire resources *before*
// the replacement exists, and it ships the survivor-side stream ends over
// SCM_RIGHTS.

void zygote_respawn(const Machine::Config& config,
                    const std::function<void(int)>& entry,
                    std::unique_ptr<transport::Transport>& transport,
                    const std::vector<int>& ctl_zyg,
                    const std::vector<int>& ctl_proc, bool owns_chaos,
                    bool owns_trace, bool owns_hist, const CtlRec& req,
                    std::vector<pid_t>& grandkid) {
  const int nprocs = config.nprocs;
  const int k = req.proc;
  MFC_CHECK(k > 0 && k < nprocs);
  // Fresh wire resources for the dead process, created before the fork so
  // the replacement inherits them. The survivor-side fds stay owned by the
  // transport (its matrix rows), not by this call.
  std::vector<int> peer_fds(static_cast<std::size_t>(nprocs), -1);
  transport->respawn_refresh(k, peer_fds);
  // Fork the replacement: seeded exponential backoff on transient failure
  // (the same shape as the proc transport's respawn path).
  pid_t pid = -1;
  for (std::uint64_t tries = 0;; ++tries) {
    pid = fork();
    if (pid >= 0) break;
    MFC_CHECK_MSG(tries < 64, "respawn fork failed permanently");
    const std::uint64_t cap = std::min<std::uint64_t>(
        50ULL << (tries < 6 ? tries : 6), 2000);
    std::uint64_t us = cap;
    if (chaos::enabled()) {
      us = 1 + chaos::keyed_draw(chaos::Point::kProcKill, tries ^ req.arg,
                                 cap);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  if (pid == 0) {
    // The respawned incarnation: shed every zygote-only fd, then run the
    // standard per-process machine body as proc k. transport->start()
    // closes the other processes' socket rows (including the freshly
    // shipped survivor ends), exactly as an original child's did.
    for (int q = 0; q < nprocs; ++q) {
      ::close(ctl_zyg[static_cast<std::size_t>(q)]);
      if (q != k) ::close(ctl_proc[static_cast<std::size_t>(q)]);
    }
    ProcRun ctx;
    ctx.config = &config;
    ctx.entry = &entry;
    ctx.transport = &transport;
    ctx.my_proc = k;
    ctx.respawn_gen = static_cast<int>(req.arg);
    ctx.ctl_fd = ctl_proc[static_cast<std::size_t>(k)];
    ctx.owns_chaos = owns_chaos;
    ctx.owns_trace = owns_trace;
    ctx.owns_hist = owns_hist;
    run_machine_process(std::move(ctx));
    std::_Exit(0);  // not reached: non-zero procs exit inside
  }
  grandkid[static_cast<std::size_t>(k)] = pid;
  // Survivors swap to the fresh streams before process 0 learns the
  // respawn completed, so recovery's first revive frame already rides the
  // new wire. Collect every ack before reporting.
  for (int j = 0; j < nprocs; ++j) {
    if (j == k) continue;
    ctl_send(ctl_zyg[static_cast<std::size_t>(j)],
             CtlRec{kCtlPeerSwap, k, req.arg},
             peer_fds[static_cast<std::size_t>(j)]);
  }
  int acks = 0;
  while (acks < nprocs - 1) {
    bool any = false;
    for (int j = 0; j < nprocs; ++j) {
      if (j == k) continue;
      CtlRec ack;
      int afd = -1;
      if (ctl_recv(ctl_zyg[static_cast<std::size_t>(j)], &ack, &afd)) {
        if (afd >= 0) ::close(afd);
        MFC_CHECK_MSG(ack.type == kCtlSwapDone,
                      "expected a swap ack on the zygote channel");
        ++acks;
        any = true;
      }
    }
    if (!any) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ctl_send(ctl_zyg[0], CtlRec{kCtlRespawnDone, k, req.arg});
}

[[noreturn]] void zygote_main(const Machine::Config& config,
                              const std::function<void(int)>& entry,
                              std::unique_ptr<transport::Transport>& transport,
                              std::vector<int> ctl_zyg,
                              std::vector<int> ctl_proc, bool owns_chaos,
                              bool owns_trace, bool owns_hist) {
  const int nprocs = config.nprocs;
  std::vector<pid_t> grandkid(static_cast<std::size_t>(nprocs), 0);
  std::vector<pollfd> pfds(static_cast<std::size_t>(nprocs));
  for (;;) {
    for (int p = 0; p < nprocs; ++p) {
      pfds[static_cast<std::size_t>(p)] =
          pollfd{ctl_zyg[static_cast<std::size_t>(p)], POLLIN, 0};
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    // Reap respawned incarnations; report abnormal deaths to process 0 —
    // only this process, their parent, can waitpid them.
    for (;;) {
      int status = 0;
      const pid_t r = waitpid(-1, &status, WNOHANG);
      if (r <= 0) break;
      for (int p = 0; p < nprocs; ++p) {
        if (grandkid[static_cast<std::size_t>(p)] != r) continue;
        grandkid[static_cast<std::size_t>(p)] = 0;
        if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
          ctl_send(ctl_zyg[0], CtlRec{kCtlProcDeath, p, 0});
        }
      }
    }
    for (int src = 0; src < nprocs; ++src) {
      CtlRec rec;
      int fd = -1;
      while (ctl_recv(ctl_zyg[static_cast<std::size_t>(src)], &rec, &fd)) {
        if (fd >= 0) ::close(fd);  // no inbound record ships an fd
        switch (rec.type) {
          case kCtlReqRespawn:
            zygote_respawn(config, entry, transport, ctl_zyg, ctl_proc,
                           owns_chaos, owns_trace, owns_hist, rec, grandkid);
            break;
          case kCtlReqKill:
            if (grandkid[static_cast<std::size_t>(rec.proc)] > 0) {
              ::kill(grandkid[static_cast<std::size_t>(rec.proc)], SIGKILL);
            }
            break;
          case kCtlShutdown:
            for (const pid_t g : grandkid) {
              if (g > 0) waitpid(g, nullptr, 0);
            }
            std::_Exit(0);
          default:
            MFC_CHECK_MSG(false, "unexpected record on the zygote channel");
        }
        fd = -1;
      }
    }
    if ((pfds[0].revents & (POLLERR | POLLHUP)) != 0) {
      // Process 0 died without a shutdown order: the run is gone; don't
      // linger as an orphan.
      std::_Exit(0);
    }
  }
}

}  // namespace

HandlerId register_handler(HandlerFn fn) {
  std::lock_guard<std::mutex> lock(g_register_mutex);
  const std::uint32_t id = g_handler_count.load(std::memory_order_relaxed);
  MFC_CHECK_MSG(id < kMaxHandlers, "handler table full");
  g_handler_slots[id].store(new HandlerFn(std::move(fn)),
                            std::memory_order_release);
  g_handler_count.store(id + 1, std::memory_order_relaxed);
  return id;
}

void Machine::run(const Config& config, std::function<void(int)> entry) {
  MFC_CHECK_MSG(g_machine == nullptr, "Machine::run is not reentrant");
  MFC_CHECK(config.npes >= 1);
  MFC_CHECK(config.nprocs >= 1);
  const bool wire_on = config.transport != Config::Transport::kInProc;
  MFC_CHECK_MSG(!wire_on || !config.mutex_baseline,
                "wire transports require the lock-free messaging path");
  if (config.nprocs > 1) {
    MFC_CHECK_MSG(wire_on, "nprocs > 1 requires a wire transport");
    MFC_CHECK_MSG(config.npes % config.nprocs == 0,
                  "npes must divide evenly across processes");
  }
  register_builtin_handlers();

  // ---- Shared setup, pre-fork: children inherit all of it. ----

  // Chaos may also be installed by the caller before run (tests do this to
  // inspect injection counters afterwards); then the machine just uses it.
  const bool owns_chaos = config.chaos.enabled && !chaos::enabled();
  if (owns_chaos) chaos::install(config.chaos);

  // Fresh books for this run; pool_stats()/metrics::snapshot() read them
  // after the machine returns. Multi-process: each process's copy-on-write
  // registry holds its local PEs' counts (QD accumulates them via token).
  metrics::reset(config.npes);

  // Env-gated tracing (MFC_TRACE=1): if no explicit session is active, the
  // machine records this run and exports at shutdown, so any test or bench
  // can be traced without code changes. An explicit session started by the
  // caller (storm driver, trace tests) is left for its owner to export.
  const bool owns_trace = trace::env_enabled() && !trace::active();
  if (owns_trace) trace::start(config.npes);

  // Env-gated latency histograms (MFC_STATS=1): armed for the run, dumped
  // as JSON at shutdown. Same ownership rule as tracing so benches can arm
  // them explicitly.
  const bool owns_hist = hist::env_enabled() && !hist::active();
  if (owns_hist) {
    hist::reset(config.npes);
    hist::enable(true);
  }

  // Flight recorder: always armed (MFC_FLIGHT=0 disables) — it is the
  // black box that survives a failure when MFC_TRACE is off. Children
  // inherit the armed ring and dump independently.
  flight::init(config.npes);

  const bool owns_region =
      config.iso_slots_per_pe > 0 && !iso::Region::initialized();
  if (owns_region) {
    iso::Region::Config iso_cfg;
    iso_cfg.npes = config.npes;
    iso_cfg.slot_bytes = config.iso_slot_bytes;
    iso_cfg.slots_per_pe = config.iso_slots_per_pe;
    iso::Region::init(iso_cfg);
  }

  // The wire (shm segment / socketpairs) must exist before the fork so
  // every process holds the same mappings and descriptors.
  std::unique_ptr<transport::Transport> transport;
  if (wire_on) {
    transport::Options topt;
    topt.npes = config.npes;
    topt.nprocs = config.nprocs;
    topt.shm_ring_bytes = config.shm_ring_bytes;
    topt.rendezvous_bytes = config.rendezvous_bytes;
    transport = config.transport == Config::Transport::kShm
                    ? transport::make_shm_transport(topt)
                    : transport::make_socket_transport(topt);
  }

  // ---- Process-tier FT: fork the respawn zygote. ----
  // It must come from this pristine pre-fork image — after the kids fork
  // below, every live process carries threads and divergent state a
  // replacement must not inherit. One SEQPACKET pair per machine process
  // carries the control protocol.
  const bool ft_respawn = g_ft_hooks_set && config.nprocs > 1;
  std::vector<int> ctl_proc;
  pid_t zygote_pid = 0;
  if (ft_respawn) {
    ctl_proc.assign(static_cast<std::size_t>(config.nprocs), -1);
    std::vector<int> ctl_zyg(static_cast<std::size_t>(config.nprocs), -1);
    for (int p = 0; p < config.nprocs; ++p) {
      int sv[2];
      MFC_CHECK_MSG(::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, sv) == 0,
                    "machine ctl socketpair failed");
      ctl_proc[static_cast<std::size_t>(p)] = sv[0];
      ctl_zyg[static_cast<std::size_t>(p)] = sv[1];
    }
    zygote_pid = fork();
    MFC_CHECK_MSG(zygote_pid >= 0, "respawn zygote fork failed");
    if (zygote_pid == 0) {
      // The zygote keeps both fd arrays: its own ends to serve the
      // protocol, the proc ends so future respawns inherit theirs.
      zygote_main(config, entry, transport, std::move(ctl_zyg),
                  std::move(ctl_proc), owns_chaos, owns_trace, owns_hist);
    }
    for (const int fd : ctl_zyg) ::close(fd);
  }

  // ---- Fork: process k hosts PEs [k*ppn, (k+1)*ppn). ----
  // No threads exist yet in this process, so the children are clean
  // single-threaded images of the shared setup above.
  int my_proc = 0;
  std::vector<pid_t> kids;
  for (int p = 1; p < config.nprocs && my_proc == 0; ++p) {
    const pid_t pid = fork();
    MFC_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      my_proc = p;
      kids.clear();
    } else {
      kids.push_back(pid);
    }
  }

  ProcRun ctx;
  ctx.config = &config;
  ctx.entry = &entry;
  ctx.transport = &transport;
  ctx.my_proc = my_proc;
  ctx.zygote_pid = zygote_pid;
  ctx.kids = std::move(kids);
  ctx.owns_chaos = owns_chaos;
  ctx.owns_trace = owns_trace;
  ctx.owns_hist = owns_hist;
  if (ft_respawn) {
    // Each machine process keeps only its own ctl end.
    for (int p = 0; p < config.nprocs; ++p) {
      if (p == my_proc) {
        ctx.ctl_fd = ctl_proc[static_cast<std::size_t>(p)];
      } else {
        ::close(ctl_proc[static_cast<std::size_t>(p)]);
      }
    }
  }
  const int my_ctl = ctx.ctl_fd;
  run_machine_process(std::move(ctx));  // children _Exit(0) inside

  // Parent (process 0): collect any children the idle hook hadn't reaped
  // yet. With the process tier armed an abnormal exit was a recovered (or
  // being-recovered) failure, not a protocol violation.
  for (std::size_t k = 0; k < g_machine->kids.size(); ++k) {
    if (g_machine->kids_reaped != nullptr &&
        g_machine->kids_reaped[k].load(std::memory_order_acquire)) {
      continue;
    }
    int status = 0;
    const pid_t r = waitpid(g_machine->kids[k], &status, 0);
    if (r == g_machine->kids[k]) {
      MFC_CHECK_MSG((WIFEXITED(status) && WEXITSTATUS(status) == 0) ||
                        ft_respawn,
                    "machine child process exited abnormally");
    }
  }
  if (ft_respawn) {
    // Zygote shutdown handshake: it blocks reaping every respawned
    // incarnation (they exit through the same stop broadcast), then exits.
    ctl_send(my_ctl, CtlRec{kCtlShutdown, 0, 0});
    int zstatus = 0;
    waitpid(zygote_pid, &zstatus, 0);
    MFC_CHECK_MSG(WIFEXITED(zstatus) && WEXITSTATUS(zstatus) == 0,
                  "respawn zygote exited abnormally");
    ::close(my_ctl);
  }
  transport.reset();

  delete g_machine;  // ~Pe drains inboxes/stashes/pools via the counted path
  g_machine = nullptr;
  if (owns_region) iso::Region::shutdown();
  if (owns_chaos) chaos::uninstall();
  if (owns_trace) {
    if (config.nprocs > 1) {
      // Children already wrote their parts (reaped above). Write ours, then
      // merge everything onto one skew-corrected timeline.
      const std::string base = trace::env_file();
      trace::stop_and_export_part(base + ".part0");
      std::vector<std::string> parts;
      parts.reserve(static_cast<std::size_t>(config.nprocs));
      for (int p = 0; p < config.nprocs; ++p) {
        parts.push_back(base + ".part" + std::to_string(p));
      }
      std::string err;
      if (!trace::merge_parts(parts, base, &err)) {
        MFC_LOG_WARN("trace merge failed: %s", err.c_str());
      }
    } else {
      trace::stop_and_export(trace::env_file());
    }
  }
  if (owns_hist) {
    hist::write_stats_json(config.nprocs > 1
                               ? hist::env_file() + ".proc0"
                               : hist::env_file());
    hist::enable(false);
  }

  // The shutdown-leak invariant: every envelope this run allocated came
  // back through destroy_message — including messages still queued in peer
  // inboxes or chaos delay stashes when the last main finished.
  MFC_CHECK_MSG(metrics::total(metrics::Counter::kMsgsAllocated) ==
                    metrics::total(metrics::Counter::kMsgsFreed),
                "message envelopes leaked at machine shutdown");
}

int my_pe() {
  MFC_CHECK_MSG(t_pe != nullptr, "not on a PE kernel thread");
  return t_pe->id;
}

int num_pes() {
  MFC_CHECK_MSG(g_machine != nullptr, "machine not running");
  return g_machine->npes;
}

bool in_pe_context() { return t_pe != nullptr; }

int num_procs() { return g_machine != nullptr ? g_machine->nprocs : 1; }

int my_proc() { return g_machine != nullptr ? g_machine->my_proc : 0; }

namespace detail {

Message* acquire_message(std::size_t payload_bytes) {
  MFC_CHECK(g_machine != nullptr);
  Message* m = (t_pe != nullptr && !g_machine->mutex_baseline)
                   ? pool_acquire(t_pe)
                   : create_message();
  m->payload.resize(payload_bytes);
  return m;
}

void send_message(int dest_pe, HandlerId handler, Message* m) {
  MFC_CHECK(g_machine != nullptr);
  MFC_CHECK(dest_pe >= 0 && dest_pe < g_machine->npes);
  // A ULT can lose the processor right at a send boundary — the classic
  // window where a racing handler observes half-updated thread state.
  chaos::preempt_point("converse.send");
  m->handler = handler;
  m->src_pe = t_pe != nullptr ? t_pe->id : -1;
  m->dest_pe = dest_pe;
  metrics::bump(Counter::kMsgsSent);
  // Cross-PE sends get a flow id so the exporter can draw an arrow from
  // this send to the remote dispatch; assigned per send (recycled
  // envelopes carry stale ids otherwise). The inline enabled() test keeps
  // the tracing-off cost to the same predictable branch emit() pays.
  m->trace_flow = 0;
  if (trace::enabled() && m->src_pe >= 0 && m->src_pe != dest_pe) {
    m->trace_flow = trace::next_flow_id();
  }
  // Queue-wait stamp, same per-send-assignment discipline as trace_flow
  // (recycled envelopes carry stale stamps otherwise). Wire sends are
  // re-stamped at the receiving process's enqueue hook.
  m->stamp = hist::on() ? rdtsc() : 0;
  trace::emit(trace::Ev::kMsgSend, m->trace_flow, handler,
              static_cast<std::uint32_t>(m->payload.size()),
              static_cast<std::int16_t>(dest_pe));

  if (g_machine->mutex_baseline) {
    Pe& dest = *g_machine->pes[static_cast<std::size_t>(dest_pe)];
    dest.legacy_queue.push(std::move(*m));
    release_message(m);
    return;
  }

  // Wire routing: loopback mode ships every cross-PE send; multi-process
  // ships only cross-process destinations (same-process PEs keep the
  // direct lock-free queues). The transport copies/writes the payload
  // before returning, so the envelope is released immediately.
  if (g_machine->transport != nullptr && m->src_pe >= 0 &&
      dest_pe != m->src_pe &&
      (g_machine->nprocs == 1 || !pe_local(dest_pe))) {
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(wire::Kind::kEager);
    h.handler = handler;
    h.src_pe = m->src_pe;
    h.dest_pe = dest_pe;
    h.payload_len = m->payload.size();
    h.total_len = h.payload_len;
    h.trace_flow = m->trace_flow;
    wire::Span s{m->payload.data(), m->payload.size()};
    g_machine->transport->send(h, &s, 1, nullptr);
    release_message(m);
    return;
  }
  MFC_CHECK_MSG(pe_local(dest_pe),
                "sends from non-PE threads must target local PEs");
  enqueue_or_inline(dest_pe, m);
}

}  // namespace detail

void send(int dest_pe, HandlerId handler, std::vector<char> payload) {
  Message* m = detail::acquire_message(0);
  m->payload.adopt(std::move(payload));
  detail::send_message(dest_pe, handler, m);
}

void send_spans(int dest_pe, HandlerId handler, const SendSpan* spans,
                std::size_t nspans, std::function<void()> on_consumed) {
  MFC_CHECK(g_machine != nullptr);
  MFC_CHECK(dest_pe >= 0 && dest_pe < g_machine->npes);
  MFC_CHECK_MSG(!g_machine->mutex_baseline,
                "send_spans requires the lock-free messaging path");
  chaos::preempt_point("converse.send");
  const int src = t_pe != nullptr ? t_pe->id : -1;
  const std::size_t total = wire::spans_total(spans, nspans);
  metrics::bump(Counter::kMsgsSent);
  metrics::bump(Counter::kSpanSends);
  std::uint64_t flow = 0;
  if (trace::enabled() && src >= 0 && src != dest_pe) {
    flow = trace::next_flow_id();
  }
  trace::emit(trace::Ev::kMsgSend, flow, handler,
              static_cast<std::uint32_t>(total),
              static_cast<std::int16_t>(dest_pe));
  if (g_machine->transport != nullptr && src >= 0 && dest_pe != src &&
      (g_machine->nprocs == 1 || !pe_local(dest_pe))) {
    wire::Header h;
    h.kind = static_cast<std::uint32_t>(wire::Kind::kEager);
    h.handler = handler;
    h.src_pe = src;
    h.dest_pe = dest_pe;
    h.payload_len = total;
    h.total_len = total;
    h.trace_flow = flow;
    g_machine->transport->send(h, spans, nspans, std::move(on_consumed));
    return;
  }
  MFC_CHECK_MSG(pe_local(dest_pe),
                "sends from non-PE threads must target local PEs");
  // In-process: the spans gather once, directly into the pooled delivery
  // envelope — the buffer the destination handler will read, not an
  // intermediate wire blob. on_consumed runs before the envelope becomes
  // reachable by the destination.
  Message* m = detail::acquire_message(total);
  wire::spans_gather(m->payload.data(), spans, nspans);
  if (on_consumed) on_consumed();
  m->handler = handler;
  m->src_pe = src;
  m->dest_pe = dest_pe;
  m->trace_flow = flow;
  m->stamp = hist::on() ? rdtsc() : 0;
  enqueue_or_inline(dest_pe, m);
}

void broadcast(HandlerId handler, const std::vector<char>& payload) {
  const int n = num_pes();
  for (int pe = 0; pe < n; ++pe) {
    Message* m = detail::acquire_message(payload.size());
    if (!payload.empty()) {
      std::memcpy(m->payload.data(), payload.data(), payload.size());
    }
    detail::send_message(pe, handler, m);
  }
}

void barrier() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr, "barrier() outside PE context");
  MFC_CHECK_MSG(pe->sched.in_thread(), "barrier() must run inside a ULT");
  MFC_CHECK_MSG(pe->barrier_waiter == nullptr,
                "one barrier waiter per PE at a time");
  pe->barrier_gen += 1;
  pe->barrier_waiter = pe->sched.running();
  BarrierMsg msg{pe->barrier_gen};
  send_value(0, h_barrier_arrive, msg);
  pe->sched.suspend();  // resumed by the release handler
}

void ready_thread(ult::Thread* t) {
  MFC_CHECK_MSG(t_pe != nullptr, "ready_thread outside PE context");
  t_pe->sched.ready(t);
}

ult::Scheduler& pe_scheduler() {
  MFC_CHECK_MSG(t_pe != nullptr, "pe_scheduler outside PE context");
  return t_pe->sched;
}

std::uint64_t messages_sent() {
  return g_machine != nullptr ? total_sent() : 0;
}

std::uint64_t messages_delivered() {
  return g_machine != nullptr ? total_delivered() : 0;
}

PoolStats pool_stats() {
  PoolStats s;
  s.allocated = metrics::total(metrics::Counter::kMsgsAllocated);
  s.freed = metrics::total(metrics::Counter::kMsgsFreed);
  s.recycled = metrics::total(metrics::Counter::kMsgsRecycled);
  s.drained_at_shutdown = metrics::total(metrics::Counter::kMsgsDrained);
  return s;
}

void wait_quiescence() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr && pe->sched.in_thread(),
                "wait_quiescence() must run inside a ULT on a PE");
  pe->quiescence_waiters.push_back(pe->sched.running());
  qd_send(0, h_qd_start, {});
  pe->sched.suspend();
}

void set_ft_machine_hooks(FtMachineHooks hooks) {
  MFC_CHECK_MSG(g_machine == nullptr,
                "install FT hooks before Machine::run");
  g_ft_hooks = std::move(hooks);
  g_ft_hooks_set = true;
}

void clear_ft_machine_hooks() {
  MFC_CHECK_MSG(g_machine == nullptr,
                "remove FT hooks after Machine::run returns");
  g_ft_hooks = FtMachineHooks{};
  g_ft_hooks_set = false;
}

namespace {

/// Remote-PE tail shared by kill_pe/revive_pe: ships a kFtCtl frame to the
/// process hosting `pe`; its comm thread flips the flags (hooks.ft_ctl).
void send_ft_ctl(int pe, std::uint64_t op) {
  MFC_CHECK_MSG(t_pe != nullptr && g_machine->transport != nullptr,
                "cross-process kill/revive requires a PE thread and a wire");
  wire::Header h;
  h.src_pe = t_pe->id;
  h.dest_pe = pe;
  h.msg_id = op;
  g_machine->transport->send_ctl(h);
}

}  // namespace

void kill_pe(int pe) {
  MFC_CHECK(g_machine != nullptr && g_machine->ft_on);
  MFC_CHECK_MSG(pe > 0 && pe < g_machine->npes,
                "PE 0 is the FT coordinator and cannot be killed");
  if (!pe_local(pe)) {
    send_ft_ctl(pe, 0);
    return;
  }
  g_machine->dead[pe].store(true, std::memory_order_release);
  // If the victim was parked idle, wake it so its loop observes the flag
  // (a wake with no data pops nullptr and re-enters the loop top).
  g_machine->pes[static_cast<std::size_t>(pe)]->queue.wake();
}

void revive_pe(int pe) {
  MFC_CHECK(g_machine != nullptr && g_machine->ft_on);
  MFC_CHECK(pe > 0 && pe < g_machine->npes);
  if (!pe_local(pe)) {
    // Rides the same ordered stream as ordinary sends from this PE, so the
    // revive (and its wipe) lands before any refill sent afterwards.
    send_ft_ctl(pe, 1);
    return;
  }
  // Order matters: the wipe flag must be visible before the loop escapes
  // its dead spin, so the on_revive hook always precedes the backlog drain.
  g_machine->wipe_pending[pe].store(true, std::memory_order_release);
  g_machine->dead[pe].store(false, std::memory_order_release);
}

bool pe_dead(int pe) {
  return g_machine != nullptr && g_machine->ft_on && pe >= 0 &&
         pe < g_machine->npes && pe_local(pe) &&
         g_machine->dead[pe].load(std::memory_order_acquire);
}

int respawn_generation() {
  return g_machine != nullptr ? g_machine->respawn_gen : 0;
}

bool ft_proc_respawn_enabled() {
  return g_machine != nullptr && g_machine->ft_respawn;
}

int take_dead_proc() {
  if (g_machine == nullptr || !g_machine->ft_respawn) return -1;
  return g_machine->dead_proc_event.exchange(-1, std::memory_order_acq_rel);
}

void request_respawn(int proc) {
  MachineState* st = g_machine;
  MFC_CHECK(st != nullptr && st->ft_respawn && st->my_proc == 0);
  MFC_CHECK(proc > 0 && proc < st->nprocs);
  st->proc_respawned[static_cast<std::size_t>(proc)] = true;
  ctl_send(st->ctl_fd, CtlRec{kCtlReqRespawn, proc, ++st->next_respawn_gen});
}

bool take_respawn_complete(int proc) {
  MachineState* st = g_machine;
  if (st == nullptr || !st->ft_respawn) return false;
  int expect = proc;
  return st->respawn_done_event.compare_exchange_strong(
      expect, -1, std::memory_order_acq_rel);
}

void kill_proc(int proc) {
  MachineState* st = g_machine;
  MFC_CHECK(st != nullptr && st->ft_respawn && st->my_proc == 0);
  MFC_CHECK_MSG(proc > 0 && proc < st->nprocs,
                "process 0 hosts the FT coordinator and cannot be killed");
  if (st->proc_respawned[static_cast<std::size_t>(proc)]) {
    // The current incarnation is a zygote grandchild; only the zygote
    // holds its pid.
    ctl_send(st->ctl_fd, CtlRec{kCtlReqKill, proc, 0});
    return;
  }
  const std::size_t k = static_cast<std::size_t>(proc - 1);
  if (!st->kids_reaped[k].load(std::memory_order_acquire)) {
    ::kill(st->kids[k], SIGKILL);
  }
}

void begin_qd_drain() {
  MFC_CHECK(g_machine != nullptr);
  g_machine->qd_drain.store(true, std::memory_order_release);
}

void end_qd_drain() {
  MFC_CHECK(g_machine != nullptr);
  g_machine->qd_drain.store(false, std::memory_order_release);
}

void iso_claim(const iso::SlotId& id) {
  MFC_CHECK(g_machine != nullptr && id.valid());
  if (pe_local(id.pe)) {
    iso::Region::instance().reassert(id);
    return;
  }
  metrics::bump(Counter::kFtSent);
  send_value(id.pe, h_iso_claim, id);
}

}  // namespace mfc::converse
