#include "converse/machine.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/log.h"
#include "util/queue.h"

namespace mfc::converse {

namespace {

// ---- Handler registry ----
//
// Registration is mutex-guarded (it is cold: module init / first use), but
// the table itself is a fixed-capacity array of atomic slots so dispatch()
// is a bounds check plus one acquire load — no lock, ever. Handler ids only
// reach other PEs through messages, and the queue's release/acquire pair
// makes the slot store visible before any message naming it can arrive.
constexpr std::size_t kMaxHandlers = 1024;

std::mutex g_register_mutex;
std::atomic<HandlerFn*> g_handler_slots[kMaxHandlers];
std::atomic<std::uint32_t> g_handler_count{0};

/// Self-sends from handler context deliver inline (no enqueue); the depth
/// cap bounds stack growth and guarantees handler chains that never go
/// idle still return to the scheduler loop.
constexpr int kMaxInlineDepth = 8;

// Message counters live in the metrics registry (trace/metrics.h): one
// cache-line-isolated slot per PE, written only by that PE's kernel thread
// via single-writer bumps — the same discipline the old private PeCounters
// had, now shared with every other instrumented layer. Readers sum slots.
using metrics::Counter;

/// Per-PE Message freelist, touched only by the owning PE's kernel thread.
/// A consumed message is adopted into the *consuming* PE's pool rather than
/// returned to its allocator, so recycling costs one vector push and no
/// cross-thread traffic; pools stay balanced because symmetric traffic
/// returns as many messages as it takes. The cap bounds memory under
/// one-way floods (excess messages are simply freed; the cap is
/// Config::pool_cap). Recycled messages keep their payload capacity, so
/// steady-state sends allocate nothing.
struct MsgPool {
  std::vector<Message*> cache;
};

/// Envelope lifecycle audit (PoolStats): every `new Message` / `delete` in
/// this file goes through create_message/destroy_message so Machine::run
/// can assert allocated == freed after the teardown drain. The books live
/// in the metrics registry (reset at run start, readable after run); the
/// teardown path runs on the joining thread, which the registry routes to
/// its shared slot automatically.
Message* create_message() {
  metrics::bump(Counter::kMsgsAllocated);
  return new Message();
}

void destroy_message(Message* m) {
  metrics::bump(Counter::kMsgsFreed);
  delete m;
}

/// Teardown-drain destruction: a message reclaimed from a queue, delay
/// stash, or legacy inbox after the machine stopped.
void drain_message(Message* m) {
  metrics::bump(Counter::kMsgsDrained);
  destroy_message(m);
}

/// A message whose delivery the chaos layer postponed: dispatch when the
/// owning PE's loop tick reaches `due`. Later arrivals with earlier dues
/// overtake it — exactly the cross-PE reorder the fault model wants.
struct Delayed {
  Message* m = nullptr;
  std::uint64_t due = 0;
};

struct Pe {
  int id = -1;
  IntrusiveMpscChannel<Message> queue;
  MutexMpscQueue<Message> legacy_queue;  // Config::mutex_baseline only
  ult::Scheduler sched;
  ult::Thread* barrier_waiter = nullptr;
  std::uint64_t barrier_gen = 0;
  std::vector<ult::Thread*> quiescence_waiters;
  MsgPool pool;
  int inline_depth = 0;
  std::vector<Delayed> delayed;  // chaos delivery-delay stash
  std::uint64_t tick = 0;        // loop-iteration clock for `delayed`

  /// Everything still held here drains through the counted teardown path;
  /// Machine::run asserts the books balance right after the PEs are gone.
  ~Pe() {
    while (Message* m = queue.try_pop()) drain_message(m);
    while (legacy_queue.try_pop()) {
    }
    for (const Delayed& d : delayed) drain_message(d.m);
    for (Message* m : pool.cache) destroy_message(m);
  }
};

struct MachineState {
  int npes = 0;
  bool mutex_baseline = false;
  /// Chaos delivery-delay active: consumer loops stash injected messages
  /// and the self-send inline bypass is off (inline delivery would let a
  /// self-send overtake a delayed earlier message).
  bool chaos_delay = false;
  /// FT hooks were installed before boot: loops test per-PE death flags
  /// and PE 0 runs the detector tick. Off ⇒ zero additional loads.
  bool ft_on = false;
  std::size_t pool_cap = 4096;
  std::vector<std::unique_ptr<Pe>> pes;
  std::atomic<int> mains_finished{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> qd_round_active{false};
  // Per-PE FT flags (allocated only when ft_on). `dead`: the PE's loop
  // stops dispatching and spin-sleeps; messages queue up for the revival
  // drain. `wipe_pending`: revive_pe was called — run the on_revive hook
  // on the PE's own thread before touching the backlog.
  std::unique_ptr<std::atomic<bool>[]> dead;
  std::unique_ptr<std::atomic<bool>[]> wipe_pending;
  // PE0-only barrier bookkeeping (touched exclusively from PE0's loop).
  std::unordered_map<std::uint64_t, int> barrier_counts;
};

MachineState* g_machine = nullptr;
thread_local Pe* t_pe = nullptr;

// FT hooks, installed before Machine::run and captured into ft_on at boot.
FtMachineHooks g_ft_hooks;
bool g_ft_hooks_set = false;

struct BarrierMsg {
  std::uint64_t gen = 0;
  void pup(pup::Er& p) { p | gen; }
};

HandlerId h_barrier_arrive = 0;
HandlerId h_barrier_release = 0;
HandlerId h_qd_start = 0;
HandlerId h_qd_token = 0;
HandlerId h_qd_release = 0;

struct QdToken {
  std::uint64_t app_sent_at_start = 0;
  std::int32_t hops = 0;
  std::uint8_t all_idle = 1;
  void pup(pup::Er& p) { p | app_sent_at_start | hops | all_idle; }
};

// Registry reads: per-PE slots plus the shared slot (sends from non-PE
// threads land there, which is what keeps the PE slots single-writer).
std::uint64_t total_sent() { return metrics::total(Counter::kMsgsSent); }
std::uint64_t total_delivered() {
  return metrics::total(Counter::kMsgsDelivered);
}
std::uint64_t total_qd_sent() { return metrics::total(Counter::kQdSent); }
std::uint64_t total_qd_delivered() {
  return metrics::total(Counter::kQdDelivered);
}

// "Application" traffic excludes both QD tokens and FT protocol messages
// (heartbeats, checkpoint shipments, recovery control): each is counted
// sent/delivered in its own pair so quiescence judges only the workload.
std::uint64_t app_sent() {
  return total_sent() - total_qd_sent() -
         metrics::total(Counter::kFtSent);
}
std::uint64_t app_delivered() {
  return total_delivered() - total_qd_delivered() -
         metrics::total(Counter::kFtDelivered);
}

/// QD system send: counted separately so tokens don't disturb the counts
/// they are observing.
void qd_send(int pe, HandlerId handler, const std::vector<char>& payload) {
  MFC_CHECK_MSG(t_pe != nullptr, "QD traffic originates on PEs");
  metrics::bump(Counter::kQdSent);
  send(pe, handler, payload);
}

void qd_start_round() {
  QdToken token;
  token.app_sent_at_start = app_sent();
  qd_send(0, h_qd_token, pup::to_bytes(token));
}

HandlerFn* handler_lookup(HandlerId id) {
  MFC_CHECK_MSG(id < kMaxHandlers, "unknown handler id");
  HandlerFn* fn = g_handler_slots[id].load(std::memory_order_acquire);
  MFC_CHECK_MSG(fn != nullptr, "unknown handler id");
  return fn;
}

void release_message(Message* m) {
  if (m->pool_pe < 0 || t_pe == nullptr ||
      t_pe->pool.cache.size() >= g_machine->pool_cap) {
    destroy_message(m);
    return;
  }
  m->pool_pe = t_pe->id;
  t_pe->pool.cache.push_back(m);
}

Message* pool_acquire(Pe* pe) {
  MsgPool& pool = pe->pool;
  if (!pool.cache.empty()) {
    // Chaos pool-miss injection: skip the freelist and take a one-shot heap
    // envelope (pool_pe = -1 so release frees instead of recycling) —
    // models allocator pressure without actually failing the send.
    if (chaos::should_inject(chaos::Point::kPoolAcquire)) {
      return create_message();
    }
    Message* m = pool.cache.back();
    pool.cache.pop_back();
    metrics::bump(Counter::kMsgsRecycled);
    return m;
  }
  Message* m = create_message();
  m->pool_pe = pe->id;
  return m;
}

/// Fast-path delivery: one acquire load for the handler, no lock.
void dispatch(Message* m) {
  HandlerFn* fn = handler_lookup(m->handler);
  metrics::bump(Counter::kMsgsDelivered);
  const HandlerId h = m->handler;
  trace::emit(trace::Ev::kHandlerBegin, m->trace_flow, h,
              static_cast<std::uint32_t>(m->payload.size()),
              static_cast<std::int16_t>(m->src_pe));
  (*fn)(std::move(*m));
  trace::emit(trace::Ev::kHandlerEnd, 0, h);
  release_message(m);
}

/// mutex_baseline delivery: the seed's behavior — handler looked up under
/// a global mutex, message passed by value.
void dispatch_value(Message&& m) {
  HandlerFn* fn;
  {
    std::lock_guard<std::mutex> lock(g_register_mutex);
    fn = handler_lookup(m.handler);
  }
  metrics::bump(Counter::kMsgsDelivered);
  const HandlerId h = m.handler;
  trace::emit(trace::Ev::kHandlerBegin, m.trace_flow, h,
              static_cast<std::uint32_t>(m.payload.size()),
              static_cast<std::int16_t>(m.src_pe));
  (*fn)(std::move(m));
  trace::emit(trace::Ev::kHandlerEnd, 0, h);
}

/// Dispatches every stashed message whose due tick has passed, in stash
/// order among equals — the reorder comes from unequal injected delays.
bool release_due_delayed(Pe* pe) {
  bool any = false;
  for (std::size_t i = 0; i < pe->delayed.size();) {
    if (pe->delayed[i].due <= pe->tick) {
      Message* m = pe->delayed[i].m;
      pe->delayed.erase(pe->delayed.begin() +
                        static_cast<std::ptrdiff_t>(i));
      dispatch(m);
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

void pe_loop(Pe* pe, const std::function<void(int)>& entry) {
  t_pe = pe;
  ult::Scheduler::set_current(&pe->sched);
  // Bind this kernel thread to its per-PE metrics slot and trace ring
  // (no-ops when the registry is unsized / no trace session is active),
  // plus the PE's chaos decision streams and — in deterministic-schedule
  // mode — the scheduler's seeded choice RNG.
  metrics::bind_pe(pe->id);
  trace::bind_pe(pe->id);
  chaos::bind_stream(pe->id);
  pe->sched.set_choice_rng(chaos::sched_choice_rng());

  auto* main_thread = new ult::StandardThread(
      [pe, &entry] {
        entry(pe->id);
        if (g_machine->mains_finished.fetch_add(1) + 1 == g_machine->npes) {
          g_machine->stop.store(true);
          for (auto& other : g_machine->pes) {
            other->queue.wake();
            other->legacy_queue.wake();
          }
        }
      },
      512 * 1024);
  main_thread->set_delete_on_exit(true);
  pe->sched.ready(main_thread);

  if (g_machine->mutex_baseline) {
    while (!g_machine->stop.load(std::memory_order_acquire)) {
      bool progress = false;
      while (auto m = pe->legacy_queue.try_pop()) {
        dispatch_value(std::move(*m));
        progress = true;
      }
      if (pe->sched.run_one()) progress = true;
      if (!progress) {
        if (auto m = pe->legacy_queue.pop_wait()) dispatch_value(std::move(*m));
      }
    }
  } else {
    const bool delay_on = g_machine->chaos_delay;
    const bool ft_on = g_machine->ft_on;
    const std::uint64_t max_ticks = delay_on ? chaos::config().max_delay_ticks : 0;
    while (!g_machine->stop.load(std::memory_order_acquire)) {
      if (ft_on) {
        // Dead PE: stop dispatching and running threads; messages keep
        // queueing and drain after revival. Spin-sleep (no park) so the
        // revival flag is observed without a wake protocol.
        if (g_machine->dead[pe->id].load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        // Just revived: wipe stale state on this PE's own thread BEFORE
        // the death-window backlog dispatches into it.
        if (g_machine->wipe_pending[pe->id].exchange(
                false, std::memory_order_acq_rel)) {
          if (g_ft_hooks.on_revive) g_ft_hooks.on_revive(pe->id);
        }
        // PE 0 is the failure detector: heartbeats + timeout checks.
        if (pe->id == 0 && g_ft_hooks.pe0_tick) g_ft_hooks.pe0_tick();
      }
      bool progress = false;
      if (delay_on) {
        ++pe->tick;
        if (release_due_delayed(pe)) progress = true;
      }
      while (Message* m = pe->queue.try_pop()) {
        if (delay_on && chaos::should_inject(chaos::Point::kDelivery)) {
          // Stash instead of dispatching; a later arrival with a shorter
          // injected delay overtakes this one. QD stays honest while the
          // stash is non-empty: the message counts as sent but not yet
          // delivered, so the machine cannot report quiescent around it.
          const std::uint64_t d =
              1 + chaos::draw(chaos::Point::kDelivery, max_ticks);
          pe->delayed.push_back({m, pe->tick + d});
        } else {
          dispatch(m);
        }
        progress = true;
        // A handler may have killed this very PE (self-kill at a chaos
        // injection point): stop mid-batch, leaving the rest queued.
        if (ft_on &&
            g_machine->dead[pe->id].load(std::memory_order_relaxed)) {
          break;
        }
      }
      if (ft_on &&
          g_machine->dead[pe->id].load(std::memory_order_relaxed)) {
        continue;  // no run_one/park for the freshly dead
      }
      if (pe->sched.run_one()) progress = true;
      if (!progress) {
        // A non-empty stash forbids parking — only loop ticks age it out.
        if (!pe->delayed.empty()) continue;
        // With FT on, PE 0 parks with a deadline so detector ticks keep
        // firing on an otherwise idle machine.
        if (ft_on && pe->id == 0) {
          if (Message* m = pe->queue.pop_wait_for(200)) dispatch(m);
          continue;
        }
        // Idle: bounded spin then park until a message arrives or shutdown
        // wakes us. On delivery, re-enter the drain loop immediately — the
        // batch behind this message is typically non-empty.
        if (Message* m = pe->queue.pop_wait()) {
          dispatch(m);
          continue;
        }
      }
    }
  }

  pe->sched.set_choice_rng(nullptr);
  chaos::unbind_stream();
  trace::unbind_pe();
  metrics::unbind_pe();
  ult::Scheduler::set_current(nullptr);
  t_pe = nullptr;
}

void register_builtin_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_barrier_arrive = register_handler([](Message&& m) {
      // Runs on PE0: count arrivals per generation; release when complete.
      auto msg = m.as<BarrierMsg>();
      int& count = g_machine->barrier_counts[msg.gen];
      if (++count == g_machine->npes) {
        g_machine->barrier_counts.erase(msg.gen);
        std::vector<char> payload = pup::to_bytes(msg);
        broadcast(h_barrier_release, payload);
      }
    });
    h_barrier_release = register_handler([](Message&& m) {
      auto msg = m.as<BarrierMsg>();
      Pe* pe = t_pe;
      MFC_CHECK_MSG(pe->barrier_waiter != nullptr && pe->barrier_gen == msg.gen,
                    "barrier release without waiter");
      ult::Thread* waiter = pe->barrier_waiter;
      pe->barrier_waiter = nullptr;
      pe->sched.ready(waiter);
    });
    // Quiescence detection: Mattern-style counting token ring. A token
    // visits every PE in order; if every PE was locally idle during its
    // visit AND the application send/deliver counts were equal and
    // unchanged across the whole round, the machine is quiet.
    h_qd_start = register_handler([](Message&&) {
      metrics::bump(Counter::kQdDelivered);
      MFC_CHECK(t_pe->id == 0);
      if (!g_machine->qd_round_active.exchange(true)) qd_start_round();
    });
    h_qd_token = register_handler([](Message&& m) {
      metrics::bump(Counter::kQdDelivered);
      auto token = m.as<QdToken>();
      Pe* pe = t_pe;
      if (token.hops == g_machine->npes) {
        // The token visited every PE and came back to PE 0: decide.
        MFC_CHECK(pe->id == 0);
        const bool quiet = token.all_idle != 0 &&
                           app_sent() == token.app_sent_at_start &&
                           app_delivered() == token.app_sent_at_start;
        if (quiet) {
          g_machine->qd_round_active.store(false);
          for (int p = 0; p < g_machine->npes; ++p) {
            qd_send(p, h_qd_release, {});
          }
        } else {
          qd_start_round();  // something moved: try again
        }
        return;
      }
      if (pe->sched.ready_count() > 0) token.all_idle = 0;
      token.hops += 1;
      qd_send((pe->id + 1) % g_machine->npes, h_qd_token,
              pup::to_bytes(token));
    });
    h_qd_release = register_handler([](Message&&) {
      metrics::bump(Counter::kQdDelivered);
      Pe* pe = t_pe;
      for (ult::Thread* t : pe->quiescence_waiters) pe->sched.ready(t);
      pe->quiescence_waiters.clear();
    });
  });
}

}  // namespace

HandlerId register_handler(HandlerFn fn) {
  std::lock_guard<std::mutex> lock(g_register_mutex);
  const std::uint32_t id = g_handler_count.load(std::memory_order_relaxed);
  MFC_CHECK_MSG(id < kMaxHandlers, "handler table full");
  g_handler_slots[id].store(new HandlerFn(std::move(fn)),
                            std::memory_order_release);
  g_handler_count.store(id + 1, std::memory_order_relaxed);
  return id;
}

void Machine::run(const Config& config, std::function<void(int)> entry) {
  MFC_CHECK_MSG(g_machine == nullptr, "Machine::run is not reentrant");
  MFC_CHECK(config.npes >= 1);
  register_builtin_handlers();

  // Chaos may also be installed by the caller before run (tests do this to
  // inspect injection counters afterwards); then the machine just uses it.
  const bool owns_chaos = config.chaos.enabled && !chaos::enabled();
  if (owns_chaos) chaos::install(config.chaos);

  // Fresh books for this run; pool_stats()/metrics::snapshot() read them
  // after the machine returns.
  metrics::reset(config.npes);

  // Env-gated tracing (MFC_TRACE=1): if no explicit session is active, the
  // machine records this run and exports at shutdown, so any test or bench
  // can be traced without code changes. An explicit session started by the
  // caller (storm driver, trace tests) is left for its owner to export.
  const bool owns_trace = trace::env_enabled() && !trace::active();
  if (owns_trace) trace::start(config.npes);

  const bool owns_region =
      config.iso_slots_per_pe > 0 && !iso::Region::initialized();
  if (owns_region) {
    iso::Region::Config iso_cfg;
    iso_cfg.npes = config.npes;
    iso_cfg.slot_bytes = config.iso_slot_bytes;
    iso_cfg.slots_per_pe = config.iso_slots_per_pe;
    iso::Region::init(iso_cfg);
  }

  g_machine = new MachineState();
  g_machine->npes = config.npes;
  g_machine->mutex_baseline = config.mutex_baseline;
  g_machine->chaos_delay =
      chaos::enabled() && chaos::config().delivery_delay > 0.0;
  g_machine->ft_on = g_ft_hooks_set;
  if (g_machine->ft_on) {
    MFC_CHECK_MSG(!config.mutex_baseline,
                  "FT hooks require the lock-free messaging path");
    g_machine->dead =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(config.npes));
    g_machine->wipe_pending =
        std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(config.npes));
  }
  g_machine->pool_cap = config.pool_cap;
  for (int i = 0; i < config.npes; ++i) {
    auto pe = std::make_unique<Pe>();
    pe->id = i;
    g_machine->pes.push_back(std::move(pe));
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.npes));
  for (int i = 0; i < config.npes; ++i) {
    threads.emplace_back(pe_loop, g_machine->pes[static_cast<std::size_t>(i)].get(),
                         std::cref(entry));
  }
  for (auto& t : threads) t.join();

  delete g_machine;  // ~Pe drains inboxes/stashes/pools via the counted path
  g_machine = nullptr;
  if (owns_region) iso::Region::shutdown();
  if (owns_chaos) chaos::uninstall();
  if (owns_trace) trace::stop_and_export(trace::env_file());

  // The shutdown-leak invariant: every envelope this run allocated came
  // back through destroy_message — including messages still queued in peer
  // inboxes or chaos delay stashes when the last main finished.
  MFC_CHECK_MSG(metrics::total(metrics::Counter::kMsgsAllocated) ==
                    metrics::total(metrics::Counter::kMsgsFreed),
                "message envelopes leaked at machine shutdown");
}

int my_pe() {
  MFC_CHECK_MSG(t_pe != nullptr, "not on a PE kernel thread");
  return t_pe->id;
}

int num_pes() {
  MFC_CHECK_MSG(g_machine != nullptr, "machine not running");
  return g_machine->npes;
}

bool in_pe_context() { return t_pe != nullptr; }

namespace detail {

Message* acquire_message(std::size_t payload_bytes) {
  MFC_CHECK(g_machine != nullptr);
  Message* m = (t_pe != nullptr && !g_machine->mutex_baseline)
                   ? pool_acquire(t_pe)
                   : create_message();
  m->payload.resize(payload_bytes);
  return m;
}

void send_message(int dest_pe, HandlerId handler, Message* m) {
  MFC_CHECK(g_machine != nullptr);
  MFC_CHECK(dest_pe >= 0 && dest_pe < g_machine->npes);
  // A ULT can lose the processor right at a send boundary — the classic
  // window where a racing handler observes half-updated thread state.
  chaos::preempt_point("converse.send");
  m->handler = handler;
  m->src_pe = t_pe != nullptr ? t_pe->id : -1;
  m->dest_pe = dest_pe;
  metrics::bump(Counter::kMsgsSent);
  // Cross-PE sends get a flow id so the exporter can draw an arrow from
  // this send to the remote dispatch; assigned per send (recycled
  // envelopes carry stale ids otherwise). The inline enabled() test keeps
  // the tracing-off cost to the same predictable branch emit() pays.
  m->trace_flow = 0;
  if (trace::enabled() && m->src_pe >= 0 && m->src_pe != dest_pe) {
    m->trace_flow = trace::next_flow_id();
  }
  trace::emit(trace::Ev::kMsgSend, m->trace_flow, handler,
              static_cast<std::uint32_t>(m->payload.size()),
              static_cast<std::int16_t>(dest_pe));
  Pe& dest = *g_machine->pes[static_cast<std::size_t>(dest_pe)];

  if (g_machine->mutex_baseline) {
    dest.legacy_queue.push(std::move(*m));
    release_message(m);
    return;
  }

  // Self-send fast path: a send from handler/scheduler context (between
  // scheduling quanta, not inside a ULT) to the calling PE delivers inline
  // — no enqueue, no wake. Gated on an empty consumer queue so inline
  // delivery cannot overtake messages already queued to this PE, and on a
  // depth cap so chained self-sends cannot starve the scheduler loop.
  Pe* self = t_pe;
  if (!g_machine->chaos_delay && self != nullptr && dest_pe == self->id &&
      !self->sched.in_thread() && self->inline_depth < kMaxInlineDepth &&
      self->queue.consumer_empty()) {
    ++self->inline_depth;
    dispatch(m);
    --self->inline_depth;
    return;
  }
  dest.queue.push(m);
}

}  // namespace detail

void send(int dest_pe, HandlerId handler, std::vector<char> payload) {
  Message* m = detail::acquire_message(0);
  m->payload.adopt(std::move(payload));
  detail::send_message(dest_pe, handler, m);
}

void broadcast(HandlerId handler, const std::vector<char>& payload) {
  const int n = num_pes();
  for (int pe = 0; pe < n; ++pe) {
    Message* m = detail::acquire_message(payload.size());
    if (!payload.empty()) {
      std::memcpy(m->payload.data(), payload.data(), payload.size());
    }
    detail::send_message(pe, handler, m);
  }
}

void barrier() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr, "barrier() outside PE context");
  MFC_CHECK_MSG(pe->sched.in_thread(), "barrier() must run inside a ULT");
  MFC_CHECK_MSG(pe->barrier_waiter == nullptr,
                "one barrier waiter per PE at a time");
  pe->barrier_gen += 1;
  pe->barrier_waiter = pe->sched.running();
  BarrierMsg msg{pe->barrier_gen};
  send_value(0, h_barrier_arrive, msg);
  pe->sched.suspend();  // resumed by the release handler
}

void ready_thread(ult::Thread* t) {
  MFC_CHECK_MSG(t_pe != nullptr, "ready_thread outside PE context");
  t_pe->sched.ready(t);
}

ult::Scheduler& pe_scheduler() {
  MFC_CHECK_MSG(t_pe != nullptr, "pe_scheduler outside PE context");
  return t_pe->sched;
}

std::uint64_t messages_sent() {
  return g_machine != nullptr ? total_sent() : 0;
}

std::uint64_t messages_delivered() {
  return g_machine != nullptr ? total_delivered() : 0;
}

PoolStats pool_stats() {
  PoolStats s;
  s.allocated = metrics::total(metrics::Counter::kMsgsAllocated);
  s.freed = metrics::total(metrics::Counter::kMsgsFreed);
  s.recycled = metrics::total(metrics::Counter::kMsgsRecycled);
  s.drained_at_shutdown = metrics::total(metrics::Counter::kMsgsDrained);
  return s;
}

void wait_quiescence() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr && pe->sched.in_thread(),
                "wait_quiescence() must run inside a ULT on a PE");
  pe->quiescence_waiters.push_back(pe->sched.running());
  qd_send(0, h_qd_start, {});
  pe->sched.suspend();
}

void set_ft_machine_hooks(FtMachineHooks hooks) {
  MFC_CHECK_MSG(g_machine == nullptr,
                "install FT hooks before Machine::run");
  g_ft_hooks = std::move(hooks);
  g_ft_hooks_set = true;
}

void clear_ft_machine_hooks() {
  MFC_CHECK_MSG(g_machine == nullptr,
                "remove FT hooks after Machine::run returns");
  g_ft_hooks = FtMachineHooks{};
  g_ft_hooks_set = false;
}

void kill_pe(int pe) {
  MFC_CHECK(g_machine != nullptr && g_machine->ft_on);
  MFC_CHECK_MSG(pe > 0 && pe < g_machine->npes,
                "PE 0 is the FT coordinator and cannot be killed");
  g_machine->dead[pe].store(true, std::memory_order_release);
  // If the victim was parked idle, wake it so its loop observes the flag
  // (a wake with no data pops nullptr and re-enters the loop top).
  g_machine->pes[static_cast<std::size_t>(pe)]->queue.wake();
}

void revive_pe(int pe) {
  MFC_CHECK(g_machine != nullptr && g_machine->ft_on);
  MFC_CHECK(pe > 0 && pe < g_machine->npes);
  // Order matters: the wipe flag must be visible before the loop escapes
  // its dead spin, so the on_revive hook always precedes the backlog drain.
  g_machine->wipe_pending[pe].store(true, std::memory_order_release);
  g_machine->dead[pe].store(false, std::memory_order_release);
}

bool pe_dead(int pe) {
  return g_machine != nullptr && g_machine->ft_on && pe >= 0 &&
         pe < g_machine->npes &&
         g_machine->dead[pe].load(std::memory_order_acquire);
}

}  // namespace mfc::converse
