#include "converse/machine.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/check.h"
#include "util/log.h"
#include "util/queue.h"

namespace mfc::converse {

namespace {

// ---- Handler registry (shared by every PE / address space; populated
// before the machine boots so ids agree machine-wide) ----

std::mutex g_handler_mutex;
std::vector<HandlerFn>& handler_table() {
  static std::vector<HandlerFn> table;
  return table;
}

struct Pe {
  int id = -1;
  MpscQueue<Message> queue;
  ult::Scheduler sched;
  ult::Thread* barrier_waiter = nullptr;
  std::uint64_t barrier_gen = 0;
  std::vector<ult::Thread*> quiescence_waiters;
};

struct MachineState {
  int npes = 0;
  std::vector<std::unique_ptr<Pe>> pes;
  std::atomic<int> mains_finished{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> delivered{0};
  // Quiescence-detection bookkeeping. QD's own messages are excluded from
  // the application counts via these counters.
  std::atomic<std::uint64_t> qd_sent{0};
  std::atomic<std::uint64_t> qd_delivered{0};
  std::atomic<bool> qd_round_active{false};
  // PE0-only barrier bookkeeping (touched exclusively from PE0's loop).
  std::unordered_map<std::uint64_t, int> barrier_counts;
};

MachineState* g_machine = nullptr;
thread_local Pe* t_pe = nullptr;

struct BarrierMsg {
  std::uint64_t gen = 0;
  void pup(pup::Er& p) { p | gen; }
};

HandlerId h_barrier_arrive = 0;
HandlerId h_barrier_release = 0;
HandlerId h_qd_start = 0;
HandlerId h_qd_token = 0;
HandlerId h_qd_release = 0;

struct QdToken {
  std::uint64_t app_sent_at_start = 0;
  std::int32_t hops = 0;
  std::uint8_t all_idle = 1;
  void pup(pup::Er& p) { p | app_sent_at_start | hops | all_idle; }
};

std::uint64_t app_sent() {
  return g_machine->sent.load() - g_machine->qd_sent.load();
}
std::uint64_t app_delivered() {
  return g_machine->delivered.load() - g_machine->qd_delivered.load();
}

/// QD system send: counted separately so tokens don't disturb the counts
/// they are observing.
void qd_send(int pe, HandlerId handler, const std::vector<char>& payload) {
  g_machine->qd_sent.fetch_add(1, std::memory_order_relaxed);
  send(pe, handler, payload);
}

void qd_start_round() {
  QdToken token;
  token.app_sent_at_start = app_sent();
  qd_send(0, h_qd_token, pup::to_bytes(token));
}

void dispatch(Message&& m) {
  HandlerFn* fn = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    MFC_CHECK_MSG(m.handler < handler_table().size(), "unknown handler id");
    fn = &handler_table()[m.handler];
  }
  g_machine->delivered.fetch_add(1, std::memory_order_relaxed);
  (*fn)(std::move(m));
}

void pe_loop(Pe* pe, const std::function<void(int)>& entry) {
  t_pe = pe;
  ult::Scheduler::set_current(&pe->sched);

  auto* main_thread = new ult::StandardThread(
      [pe, &entry] {
        entry(pe->id);
        if (g_machine->mains_finished.fetch_add(1) + 1 == g_machine->npes) {
          g_machine->stop.store(true);
          for (auto& other : g_machine->pes) other->queue.wake();
        }
      },
      512 * 1024);
  main_thread->set_delete_on_exit(true);
  pe->sched.ready(main_thread);

  while (!g_machine->stop.load(std::memory_order_acquire)) {
    bool progress = false;
    while (auto m = pe->queue.try_pop()) {
      dispatch(std::move(*m));
      progress = true;
    }
    if (pe->sched.run_one()) progress = true;
    if (!progress) {
      // Idle: block until a message arrives or shutdown wakes us.
      if (auto m = pe->queue.pop_wait()) dispatch(std::move(*m));
    }
  }

  ult::Scheduler::set_current(nullptr);
  t_pe = nullptr;
}

void register_builtin_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    h_barrier_arrive = register_handler([](Message&& m) {
      // Runs on PE0: count arrivals per generation; release when complete.
      auto msg = m.as<BarrierMsg>();
      int& count = g_machine->barrier_counts[msg.gen];
      if (++count == g_machine->npes) {
        g_machine->barrier_counts.erase(msg.gen);
        std::vector<char> payload = pup::to_bytes(msg);
        broadcast(h_barrier_release, payload);
      }
    });
    h_barrier_release = register_handler([](Message&& m) {
      auto msg = m.as<BarrierMsg>();
      Pe* pe = t_pe;
      MFC_CHECK_MSG(pe->barrier_waiter != nullptr && pe->barrier_gen == msg.gen,
                    "barrier release without waiter");
      ult::Thread* waiter = pe->barrier_waiter;
      pe->barrier_waiter = nullptr;
      pe->sched.ready(waiter);
    });
    // Quiescence detection: Mattern-style counting token ring. A token
    // visits every PE in order; if every PE was locally idle during its
    // visit AND the application send/deliver counts were equal and
    // unchanged across the whole round, the machine is quiet.
    h_qd_start = register_handler([](Message&&) {
      g_machine->qd_delivered.fetch_add(1);
      MFC_CHECK(t_pe->id == 0);
      if (!g_machine->qd_round_active.exchange(true)) qd_start_round();
    });
    h_qd_token = register_handler([](Message&& m) {
      g_machine->qd_delivered.fetch_add(1);
      auto token = m.as<QdToken>();
      Pe* pe = t_pe;
      if (token.hops == g_machine->npes) {
        // The token visited every PE and came back to PE 0: decide.
        MFC_CHECK(pe->id == 0);
        const bool quiet = token.all_idle != 0 &&
                           app_sent() == token.app_sent_at_start &&
                           app_delivered() == token.app_sent_at_start;
        if (quiet) {
          g_machine->qd_round_active.store(false);
          for (int p = 0; p < g_machine->npes; ++p) {
            qd_send(p, h_qd_release, {});
          }
        } else {
          qd_start_round();  // something moved: try again
        }
        return;
      }
      if (pe->sched.ready_count() > 0) token.all_idle = 0;
      token.hops += 1;
      qd_send((pe->id + 1) % g_machine->npes, h_qd_token,
              pup::to_bytes(token));
    });
    h_qd_release = register_handler([](Message&&) {
      g_machine->qd_delivered.fetch_add(1);
      Pe* pe = t_pe;
      for (ult::Thread* t : pe->quiescence_waiters) pe->sched.ready(t);
      pe->quiescence_waiters.clear();
    });
  });
}

}  // namespace

HandlerId register_handler(HandlerFn fn) {
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  handler_table().push_back(std::move(fn));
  return static_cast<HandlerId>(handler_table().size() - 1);
}

void Machine::run(const Config& config, std::function<void(int)> entry) {
  MFC_CHECK_MSG(g_machine == nullptr, "Machine::run is not reentrant");
  MFC_CHECK(config.npes >= 1);
  register_builtin_handlers();

  const bool owns_region =
      config.iso_slots_per_pe > 0 && !iso::Region::initialized();
  if (owns_region) {
    iso::Region::Config iso_cfg;
    iso_cfg.npes = config.npes;
    iso_cfg.slot_bytes = config.iso_slot_bytes;
    iso_cfg.slots_per_pe = config.iso_slots_per_pe;
    iso::Region::init(iso_cfg);
  }

  g_machine = new MachineState();
  g_machine->npes = config.npes;
  for (int i = 0; i < config.npes; ++i) {
    auto pe = std::make_unique<Pe>();
    pe->id = i;
    g_machine->pes.push_back(std::move(pe));
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.npes));
  for (int i = 0; i < config.npes; ++i) {
    threads.emplace_back(pe_loop, g_machine->pes[static_cast<std::size_t>(i)].get(),
                         std::cref(entry));
  }
  for (auto& t : threads) t.join();

  delete g_machine;
  g_machine = nullptr;
  if (owns_region) iso::Region::shutdown();
}

int my_pe() {
  MFC_CHECK_MSG(t_pe != nullptr, "not on a PE kernel thread");
  return t_pe->id;
}

int num_pes() {
  MFC_CHECK_MSG(g_machine != nullptr, "machine not running");
  return g_machine->npes;
}

bool in_pe_context() { return t_pe != nullptr; }

void send(int dest_pe, HandlerId handler, std::vector<char> payload) {
  MFC_CHECK(g_machine != nullptr);
  MFC_CHECK(dest_pe >= 0 && dest_pe < g_machine->npes);
  Message m;
  m.handler = handler;
  m.src_pe = t_pe ? t_pe->id : -1;
  m.dest_pe = dest_pe;
  m.payload = std::move(payload);
  g_machine->sent.fetch_add(1, std::memory_order_relaxed);
  g_machine->pes[static_cast<std::size_t>(dest_pe)]->queue.push(std::move(m));
}

void broadcast(HandlerId handler, const std::vector<char>& payload) {
  for (int pe = 0; pe < num_pes(); ++pe) send(pe, handler, payload);
}

void barrier() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr, "barrier() outside PE context");
  MFC_CHECK_MSG(pe->sched.in_thread(), "barrier() must run inside a ULT");
  MFC_CHECK_MSG(pe->barrier_waiter == nullptr,
                "one barrier waiter per PE at a time");
  pe->barrier_gen += 1;
  pe->barrier_waiter = pe->sched.running();
  BarrierMsg msg{pe->barrier_gen};
  send_value(0, h_barrier_arrive, msg);
  pe->sched.suspend();  // resumed by the release handler
}

void ready_thread(ult::Thread* t) {
  MFC_CHECK_MSG(t_pe != nullptr, "ready_thread outside PE context");
  t_pe->sched.ready(t);
}

ult::Scheduler& pe_scheduler() {
  MFC_CHECK_MSG(t_pe != nullptr, "pe_scheduler outside PE context");
  return t_pe->sched;
}

std::uint64_t messages_sent() {
  return g_machine ? g_machine->sent.load() : 0;
}

std::uint64_t messages_delivered() {
  return g_machine ? g_machine->delivered.load() : 0;
}

void wait_quiescence() {
  Pe* pe = t_pe;
  MFC_CHECK_MSG(pe != nullptr && pe->sched.in_thread(),
                "wait_quiescence() must run inside a ULT on a PE");
  pe->quiescence_waiters.push_back(pe->sched.running());
  qd_send(0, h_qd_start, {});
  pe->sched.suspend();
}

}  // namespace mfc::converse
