// Pluggable cross-process message transports for the machine layer.
//
// A Transport ships wire frames between the machine's processes. Two modes
// use it (see DESIGN.md "Machine layer"):
//
//   - loopback: nprocs == 1 but a wire transport is selected — every
//     cross-PE send is routed over the wire inside one process. This is the
//     conformance mode: the full ring/socket/codec path runs under tsan and
//     under every legacy storm (including FT kill storms) with no fork.
//   - multi-process: Machine::run forks nprocs-1 children after the shared
//     resources (chaos, trace, iso region, the transport itself) are set
//     up; process k hosts PEs [k*ppn, (k+1)*ppn). Only cross-process sends
//     hit the wire; same-process PEs keep the direct lock-free queues.
//
// Send contract: send() returns only after the span bytes have been
// consumed (copied into a ring/staging buffer or handed to the kernel) and
// `on_consumed`, if set, has run. Transports additionally guarantee
// on_consumed runs before the message can be *delivered* anywhere — the
// ring delays its final tail publish, the socket paths stage or block —
// which is what makes a destructive pack epilogue (evacuating the pages the
// spans point into) safe even when source and destination share a process.
//
// Producer discipline: send() may only be called on PE kernel threads (the
// header's src_pe names the calling PE), which gives the shm rings their
// single producer per (dest_proc, src_pe) pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "converse/wire.h"

namespace mfc::converse {
struct Message;
}

namespace mfc::converse::transport {

/// Machine-side callbacks, installed post-fork via start(). alloc/enqueue/
/// drop manage receive envelopes and run on the comm thread; the shutdown
/// hooks implement the ProcDone/Stop handshake.
struct Hooks {
  /// Allocates a delivery envelope for an incoming message of `total_len`
  /// payload bytes (header fields copied in; payload sized, unfilled).
  std::function<Message*(const wire::Header& h, std::uint64_t total_len)>
      alloc;
  /// Hands a filled envelope to its destination PE's queue.
  std::function<void(Message*)> enqueue;
  /// Frees an envelope that will never be delivered (stop-time cleanup).
  std::function<void(Message*)> drop;
  /// A process finished all its mains (invoked on process 0 only).
  std::function<void()> on_proc_done;
  /// Stop order received (every process; may fire on the comm thread).
  std::function<void()> on_stop;
  /// Comm-thread idle tick (the parent polls child liveness here).
  std::function<void()> idle;
  /// An FT control frame (kind == kFtCtl) arrived for a local PE: the
  /// machine flips that PE's dead/wipe flags. Comm-thread context.
  std::function<void(const wire::Header&)> ft_ctl;
  /// Cross-process FT respawn is armed: losing a peer is a recoverable
  /// event, not a protocol violation. EOF mid-frame discards the partial
  /// frame instead of aborting, and failed sends retry until the peer's
  /// stream is replaced (attach_peer) instead of being dropped silently.
  bool tolerate_peer_loss = false;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Post-fork, per process: installs hooks and spawns the comm thread.
  virtual void start(int my_proc, Hooks hooks) = 0;

  /// Ships one message; see the send contract above. The transport picks
  /// the wire strategy (eager / chunked / rendezvous) from the size; `h`
  /// arrives with kind == kEager and payload_len == total span bytes.
  virtual void send(const wire::Header& h, const wire::Span* spans,
                    std::size_t nspans,
                    std::function<void()> on_consumed) = 0;

  /// This process finished its mains (PE thread context). On process 0 the
  /// hook fires inline; children ship a kProcDone frame.
  virtual void send_proc_done(int src_pe) = 0;

  /// Process 0, from whichever thread saw the last ProcDone: orders every
  /// process (including this one) to stop.
  virtual void broadcast_stop() = 0;

  /// Sets the local stop flag and wakes the comm thread (idempotent).
  virtual void stop_local() = 0;

  /// Joins the comm thread. Call stop_local() first.
  virtual void join() = 0;

  /// Ships one control frame to the process hosting h.dest_pe (the kind is
  /// forced to kFtCtl, payload_len to 0). PE thread context: h.src_pe must
  /// name the calling PE (producer discipline, like send()).
  virtual void send_ctl(const wire::Header& h) = 0;

  /// True when no wire bytes are in flight toward this process and no
  /// receive is mid-frame here. Advisory between observations; exact when
  /// sampled under a quiescent machine — the QD drain wave ANDs one sample
  /// per process into its token.
  virtual bool quiescent() { return true; }

  /// Zygote-side, pre-start image only: replaces the wire resources of
  /// dead process `proc` before its respawn is forked (the fresh fork then
  /// inherits them). Fills `peer_fds` with one fd per surviving process to
  /// ship over SCM_RIGHTS (-1 = nothing to ship; the shm rings are crash-
  /// consistent and need no replacement). Caller owns the returned fds.
  virtual void respawn_refresh(int proc, std::vector<int>& peer_fds) {
    peer_fds.assign(peer_fds.size(), -1);
    (void)proc;
  }

  /// Survivor-side, comm-thread context: installs respawned peer `proc`'s
  /// fresh stream (`fd` < 0 when there is none to install) and discards
  /// every half-read frame, staged envelope, and parked rendezvous still
  /// referring to the old incarnation. `gen` is the respawn generation;
  /// senders blocked on the dead stream resume when they observe it move.
  virtual void attach_peer(int proc, int fd, std::uint64_t gen) {
    (void)proc;
    (void)fd;
    (void)gen;
  }
};

struct Options {
  int npes = 0;
  int nprocs = 1;
  /// Per-pair SPSC ring capacity (power of two). Messages that don't fit
  /// half a ring are chunked.
  std::size_t shm_ring_bytes = 64 * 1024;
  /// Socket payloads beyond this go rendezvous (kRts/kCts/kData) so the
  /// receiver can pre-size the landing buffer and the sender's spans go to
  /// writev with no staging copy.
  std::size_t rendezvous_bytes = 256 * 1024;
};

/// Pre-fork factories: create the shared segment / socketpairs so children
/// inherit them. Call before Machine::run forks.
std::unique_ptr<Transport> make_shm_transport(const Options& options);
std::unique_ptr<Transport> make_socket_transport(const Options& options);

}  // namespace mfc::converse::transport
