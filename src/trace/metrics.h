// Machine-wide metrics registry.
//
// One named counter set, stored as per-PE cache-line-isolated slots plus a
// shared slot for threads that never bind (the machine teardown path, test
// main threads). Replaces the ad-hoc counter globals that used to live in
// converse/machine.cc so benches, tests, and the storm driver read one
// snapshot/merge API instead of N private bookkeeping schemes.
//
// Write discipline mirrors the messaging layer: a counter slot is written
// only by its owning PE's kernel thread, so bump() on a bound thread is a
// relaxed load+store — no lock-prefixed RMW on the hot path. Unbound
// threads fall back to fetch_add on the shared slot (cold paths only).
#pragma once

#include <cstdint>

namespace mfc::metrics {

enum class Counter : int {
  // Messaging (converse layer).
  kMsgsSent = 0,
  kMsgsDelivered,
  kQdSent,       ///< quiescence-detection system traffic, counted apart
  kQdDelivered,
  kMsgsAllocated,  ///< envelope lifecycle books (pool audit)
  kMsgsFreed,
  kMsgsRecycled,
  kMsgsDrained,  ///< reclaimed from queues/stashes at shutdown
  // Thread migration packs/unpacks by technique (paper §3.4).
  kPackStackCopy,
  kPackIso,
  kPackMemAlias,
  kUnpackStackCopy,
  kUnpackIso,
  kUnpackMemAlias,
  // Higher layers.
  kElemMigrations,  ///< chare-array element departures
  kLbMigrations,    ///< migrations ordered by the LB strategy
  kChaosInjections,
  kTransportRespawns,  ///< chaos proc-transport child respawns
  // Fault tolerance (ft layer). Sent/delivered mirror the QD pair: FT
  // protocol traffic is subtracted from the app books so checkpoints and
  // recovery never perturb quiescence accounting.
  kFtSent,
  kFtDelivered,
  kFtCheckpoints,      ///< committed checkpoint epochs
  kFtCheckpointBytes,  ///< total bytes captured across epochs (local copies)
  kFtKills,
  kFtDetections,
  kFtRecoveries,
  kFtShipBytes,    ///< checkpoint payload bytes shipped to buddies (post-delta)
  kFtDeltaRanges,  ///< coalesced dirty ranges shipped in incremental stores
  kFtAsyncChunks,  ///< bounded stream chunks sent by async checkpointing
  kFtDirtyPages,   ///< pages caught by the write barrier between epochs
  // Cross-process wire transports (converse/transport). Sent-side counters
  // land in the sending PE's slot; delivered lands in the comm thread's
  // shared slot (it never binds a PE).
  kWireSentFrames,  ///< frames pushed onto a ring / written to a socket
  kWireSentBytes,   ///< payload bytes shipped over the wire
  kWireDelivered,   ///< messages enqueued from the wire to a local PE
  kWireChunks,      ///< kChunk frames (messages split to fit the shm ring)
  kWireRendezvous,  ///< rendezvous (RTS/CTS/DATA) transfers initiated
  kSpanSends,       ///< send_spans() calls (scatter-gather message sends)
  kWireRetries,     ///< transient socket errors retried (EAGAIN/EPIPE/ECONNRESET)
  // Process-tier fault tolerance (cross-process FT).
  kProcKills,       ///< whole processes SIGKILLed / declared dead
  kProcRespawns,    ///< dead processes respawned by the zygote
  kCount,
};
constexpr int kCounterCount = static_cast<int>(Counter::kCount);

const char* to_string(Counter c);

/// Zeroes every slot and (re)sizes to `npes` per-PE slots + 1 shared slot.
/// Must be called while no PE loop is running (Machine::run start does).
/// Values persist after the machine stops until the next reset, so
/// post-run reads (pool audits, bench reports) see the final books.
void reset(int npes);

/// PE slots currently allocated (0 before the first reset).
int npes();

/// Binds the calling kernel thread to PE `pe`'s slot; out-of-range or
/// pre-reset binds leave the thread on the shared slot.
void bind_pe(int pe);
void unbind_pe();

/// Declares this process's place in a multi-process machine. Machine::run
/// calls it post-fork (and resets to 0/1 for single-process runs); every
/// snapshot taken afterwards carries the proc id as provenance.
void set_proc(int proc, int nprocs);
int proc();
int nprocs();

/// Increments `c` by `n`: single-writer store on the bound PE slot, shared
/// fetch_add otherwise. Drops silently before the first reset.
void bump(Counter c, std::uint64_t n = 1);

/// Sum over all PE slots plus the shared slot.
std::uint64_t total(Counter c);

/// One PE's slot value (shared slot excluded); 0 if out of range.
std::uint64_t pe_value(Counter c, int pe);

/// Point-in-time copy of the merged counters — the one API benches, tests,
/// and the storm driver use instead of scraping layer-private globals.
struct Snapshot {
  std::uint64_t v[kCounterCount] = {};
  // Provenance: which process(es) these values came from. A fresh snapshot
  // covers exactly one process (`proc`; its bit set in `procs`). merge()
  // unions the masks and collapses `proc` to -1 when the sources differ,
  // so a merged multi-process snapshot is an explicit union across procs
  // instead of silently summing into one fake proc-0 view — and merging
  // the same process twice is detectable (`procs` unchanged).
  int proc = 0;
  int nprocs = 1;
  std::uint64_t procs = 1;  ///< bitmask of contributing proc ids (proc ≤ 63)

  std::uint64_t operator[](Counter c) const {
    return v[static_cast<int>(c)];
  }
  /// Counter deltas since `since` (per-counter saturating at 0).
  Snapshot diff(const Snapshot& since) const;
  /// Element-wise accumulate (merging snapshots from separate runs or,
  /// with distinct provenance, from the processes of one machine run).
  void merge(const Snapshot& other);
};

Snapshot snapshot();

}  // namespace mfc::metrics
