#include "trace/metrics.h"

#include <atomic>
#include <memory>

namespace mfc::metrics {

namespace {

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v[kCounterCount] = {};
};

// g_slots[0..g_npes-1] are the per-PE single-writer slots; g_slots[g_npes]
// is the shared slot. Swapped only by reset() under the quiescence
// contract; the epoch guard invalidates thread_local bindings from a
// previous generation (same pattern as the chaos streams / trace rings).
std::unique_ptr<Slot[]> g_slots;
int g_npes = 0;
std::atomic<std::uint64_t> g_epoch{0};
int g_proc = 0;
int g_nprocs = 1;

thread_local Slot* t_slot = nullptr;
thread_local std::uint64_t t_slot_epoch = 0;

Slot* bound_slot() {
  if (t_slot != nullptr &&
      t_slot_epoch == g_epoch.load(std::memory_order_relaxed)) {
    return t_slot;
  }
  return nullptr;
}

}  // namespace

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kMsgsSent: return "msgs-sent";
    case Counter::kMsgsDelivered: return "msgs-delivered";
    case Counter::kQdSent: return "qd-sent";
    case Counter::kQdDelivered: return "qd-delivered";
    case Counter::kMsgsAllocated: return "msgs-allocated";
    case Counter::kMsgsFreed: return "msgs-freed";
    case Counter::kMsgsRecycled: return "msgs-recycled";
    case Counter::kMsgsDrained: return "msgs-drained";
    case Counter::kPackStackCopy: return "pack-stackcopy";
    case Counter::kPackIso: return "pack-iso";
    case Counter::kPackMemAlias: return "pack-memalias";
    case Counter::kUnpackStackCopy: return "unpack-stackcopy";
    case Counter::kUnpackIso: return "unpack-iso";
    case Counter::kUnpackMemAlias: return "unpack-memalias";
    case Counter::kElemMigrations: return "elem-migrations";
    case Counter::kLbMigrations: return "lb-migrations";
    case Counter::kChaosInjections: return "chaos-injections";
    case Counter::kTransportRespawns: return "transport-respawns";
    case Counter::kFtSent: return "ft-sent";
    case Counter::kFtDelivered: return "ft-delivered";
    case Counter::kFtCheckpoints: return "ft-checkpoints";
    case Counter::kFtCheckpointBytes: return "ft-checkpoint-bytes";
    case Counter::kFtKills: return "ft-kills";
    case Counter::kFtDetections: return "ft-detections";
    case Counter::kFtRecoveries: return "ft-recoveries";
    case Counter::kFtShipBytes: return "ft-ship-bytes";
    case Counter::kFtDeltaRanges: return "ft-delta-ranges";
    case Counter::kFtAsyncChunks: return "ft-async-chunks";
    case Counter::kFtDirtyPages: return "ft-dirty-pages";
    case Counter::kWireSentFrames: return "wire-sent-frames";
    case Counter::kWireSentBytes: return "wire-sent-bytes";
    case Counter::kWireDelivered: return "wire-delivered";
    case Counter::kWireChunks: return "wire-chunks";
    case Counter::kWireRendezvous: return "wire-rendezvous";
    case Counter::kSpanSends: return "span-sends";
    case Counter::kWireRetries: return "wire-retries";
    case Counter::kProcKills: return "proc-kills";
    case Counter::kProcRespawns: return "proc-respawns";
    case Counter::kCount: break;
  }
  return "?";
}

void reset(int npes) {
  if (npes < 0) npes = 0;
  g_slots = std::make_unique<Slot[]>(static_cast<std::size_t>(npes) + 1);
  g_npes = npes;
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

int npes() { return g_npes; }

void bind_pe(int pe) {
  if (g_slots == nullptr || pe < 0 || pe >= g_npes) {
    t_slot = nullptr;
    return;
  }
  t_slot = &g_slots[static_cast<std::size_t>(pe)];
  t_slot_epoch = g_epoch.load(std::memory_order_relaxed);
}

void unbind_pe() { t_slot = nullptr; }

void set_proc(int proc, int nprocs) {
  g_proc = proc < 0 ? 0 : proc;
  g_nprocs = nprocs < 1 ? 1 : nprocs;
}

int proc() { return g_proc; }

int nprocs() { return g_nprocs; }

void bump(Counter c, std::uint64_t n) {
  const int i = static_cast<int>(c);
  if (Slot* s = bound_slot()) {
    // Single-writer: only the owning PE thread stores here, so a relaxed
    // load+store replaces the lock-prefixed RMW on the hot path.
    s->v[i].store(s->v[i].load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
    return;
  }
  if (g_slots == nullptr) return;
  g_slots[static_cast<std::size_t>(g_npes)].v[i].fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t total(Counter c) {
  if (g_slots == nullptr) return 0;
  const int i = static_cast<int>(c);
  std::uint64_t sum = 0;
  for (int s = 0; s <= g_npes; ++s) {
    sum += g_slots[static_cast<std::size_t>(s)].v[i].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t pe_value(Counter c, int pe) {
  if (g_slots == nullptr || pe < 0 || pe >= g_npes) return 0;
  return g_slots[static_cast<std::size_t>(pe)]
      .v[static_cast<int>(c)]
      .load(std::memory_order_relaxed);
}

Snapshot Snapshot::diff(const Snapshot& since) const {
  Snapshot out;
  for (int i = 0; i < kCounterCount; ++i) {
    out.v[i] = v[i] >= since.v[i] ? v[i] - since.v[i] : 0;
  }
  out.proc = proc;
  out.nprocs = nprocs;
  out.procs = procs;
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  for (int i = 0; i < kCounterCount; ++i) v[i] += other.v[i];
  procs |= other.procs;
  if (other.nprocs > nprocs) nprocs = other.nprocs;
  if (other.proc != proc) proc = -1;  // mixed provenance: no single owner
}

Snapshot snapshot() {
  Snapshot out;
  for (int i = 0; i < kCounterCount; ++i) {
    out.v[i] = total(static_cast<Counter>(i));
  }
  out.proc = g_proc;
  out.nprocs = g_nprocs;
  out.procs = g_proc < 64 ? (std::uint64_t{1} << g_proc) : 0;
  return out;
}

}  // namespace mfc::metrics
