#include "trace/hist.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/metrics.h"

namespace mfc::hist {

namespace detail {
bool g_on = false;
Slot* g_slots = nullptr;
int g_npes = 0;
std::atomic<std::uint64_t> g_epoch{0};
thread_local Slot* t_slot = nullptr;
thread_local std::uint64_t t_slot_epoch = 0;
}  // namespace detail

namespace {
TscAnchor g_anchor;
}

const char* to_string(Hist h) {
  switch (h) {
    case Hist::kQueueWait: return "queue-wait";
    case Hist::kHandlerService: return "handler-service";
    case Hist::kMigratePack: return "migrate-pack";
    case Hist::kMigrateUnpack: return "migrate-unpack";
    case Hist::kMigrateE2e: return "migrate-e2e";
    case Hist::kCount: break;
  }
  return "?";
}

bool env_enabled() {
  const char* env = std::getenv("MFC_STATS");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::string env_file() {
  const char* env = std::getenv("MFC_STATS_FILE");
  return (env != nullptr && *env != '\0') ? env : "mfc_stats.json";
}

void reset(int npes) {
  if (npes < 0) npes = 0;
  delete[] detail::g_slots;  // quiescence contract: no writer is live here
  detail::g_slots = new detail::Slot[static_cast<std::size_t>(npes) + 1];
  detail::g_npes = npes;
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
  g_anchor = TscAnchor::now();
}

void enable(bool on) { detail::g_on = on && detail::g_slots != nullptr; }

bool active() { return detail::g_slots != nullptr; }

int npes() { return detail::g_npes; }

void bind_pe(int pe) {
  if (detail::g_slots == nullptr || pe < 0 || pe >= detail::g_npes) {
    detail::t_slot = nullptr;
    return;
  }
  detail::t_slot = &detail::g_slots[static_cast<std::size_t>(pe)];
  detail::t_slot_epoch = detail::g_epoch.load(std::memory_order_relaxed);
}

void unbind_pe() { detail::t_slot = nullptr; }

double ns_per_tick_now() { return g_anchor.ns_per_tick(TscAnchor::now()); }

std::uint64_t Snapshot::count(Hist h) const {
  const int hi = static_cast<int>(h);
  std::uint64_t n = 0;
  for (int i = 0; i < kBucketCount; ++i) n += b[hi][i];
  return n;
}

std::uint64_t Snapshot::quantile(Hist h, double q) const {
  const std::uint64_t n = count(h);
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based, ceil'd so p999 on 1000 samples is
  // the 999th, not the 998.001th truncated down.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  const int hi = static_cast<int>(h);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += b[hi][i];
    if (seen >= rank) return bucket_floor(i) + bucket_width(i) / 2;
  }
  return bucket_floor(kBucketCount - 1);
}

double Snapshot::mean(Hist h) const {
  const std::uint64_t n = count(h);
  if (n == 0) return 0.0;
  return static_cast<double>(sum[static_cast<int>(h)]) /
         static_cast<double>(n);
}

void Snapshot::merge(const Snapshot& other) {
  for (int h = 0; h < kHistCount; ++h) {
    for (int i = 0; i < kBucketCount; ++i) b[h][i] += other.b[h][i];
    sum[h] += other.sum[h];
    if (other.max[h] > max[h]) max[h] = other.max[h];
  }
}

Snapshot snapshot() {
  Snapshot out;
  if (detail::g_slots == nullptr) return out;
  for (int s = 0; s <= detail::g_npes; ++s) {
    const detail::Slot& slot = detail::g_slots[s];
    for (int h = 0; h < kHistCount; ++h) {
      for (int i = 0; i < kBucketCount; ++i) {
        out.b[h][i] += slot.b[h][i].load(std::memory_order_relaxed);
      }
      out.sum[h] += slot.sum[h].load(std::memory_order_relaxed);
      const std::uint64_t m = slot.max[h].load(std::memory_order_relaxed);
      if (m > out.max[h]) out.max[h] = m;
    }
  }
  return out;
}

bool write_stats_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const metrics::Snapshot counters = metrics::snapshot();
  const Snapshot hists = snapshot();
  const double npt = ns_per_tick_now();
  auto ns = [&](std::uint64_t ticks) {
    return static_cast<unsigned long long>(
        static_cast<double>(ticks) * npt);
  };
  // Integer-only printing: locale-proof, same discipline as the exporter.
  std::fprintf(f, "{\"proc\":%d,\"nprocs\":%d,\"npes\":%d,\n",
               counters.proc, counters.nprocs, metrics::npes());
  std::fprintf(f, "\"counters\":{");
  for (int i = 0; i < metrics::kCounterCount; ++i) {
    std::fprintf(f, "%s\"%s\":%llu", i == 0 ? "" : ",",
                 metrics::to_string(static_cast<metrics::Counter>(i)),
                 static_cast<unsigned long long>(counters.v[i]));
  }
  std::fprintf(f, "},\n\"histograms\":{");
  for (int h = 0; h < kHistCount; ++h) {
    const Hist hh = static_cast<Hist>(h);
    std::fprintf(
        f,
        "%s\"%s\":{\"count\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
        "\"p999_ns\":%llu,\"max_ns\":%llu,\"mean_ns\":%llu}",
        h == 0 ? "" : ",", to_string(hh),
        static_cast<unsigned long long>(hists.count(hh)),
        ns(hists.quantile(hh, 0.50)), ns(hists.quantile(hh, 0.99)),
        ns(hists.quantile(hh, 0.999)), ns(hists.max[h]),
        static_cast<unsigned long long>(hists.mean(hh) * npt));
  }
  std::fprintf(f, "}}\n");
  bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace mfc::hist
