// Per-PE single-writer trace ring buffer.
//
// Fixed-size circular store of binary event records. One kernel thread (the
// owning PE's scheduler loop) writes; nobody reads until the machine has
// stopped and the exporter merges the rings, so the hot path is a couple of
// plain stores — no locks, no atomics, no allocation. When the ring is full
// the oldest record is overwritten (the most recent window is the one a
// failure triage needs) and a dropped-events counter keeps the books honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfc::trace {

/// Event taxonomy. Every record carries one of these; the exporter maps them
/// to Chrome trace-event phases (B/E duration pairs, instants, flow arrows).
enum class Ev : std::uint8_t {
  kHandlerBegin = 0,    ///< converse dispatch entered (a=handler, arg=flow id)
  kHandlerEnd,          ///< converse dispatch returned
  kMsgSend,             ///< message left the sender (a=handler, b=dest pe)
  kUltCreate,           ///< user-level thread constructed (arg=thread id)
  kUltSwitchIn,         ///< scheduler gave a ULT the processor
  kUltSwitchOut,        ///< ULT yielded/suspended/finished
  kUltSuspend,          ///< ULT blocked (no re-enqueue)
  kUltResume,           ///< ULT made runnable (ready())
  kMigratePackBegin,    ///< thread pack started (c=technique, arg=thread id)
  kMigratePackEnd,      ///< pack finished (size=wire bytes)
  kMigrateUnpackBegin,  ///< thread unpack started on the destination
  kMigrateUnpackEnd,    ///< unpack finished; thread resumable
  kIsoSlotAcquire,      ///< isomalloc slots acquired (a=index, size=count, b=strip)
  kIsoSlotRelease,      ///< isomalloc slots returned
  kElemDepart,          ///< chare-array element left a PE (arg=flow id)
  kElemArrive,          ///< chare-array element reconstructed
  kLbDecision,          ///< LB strategy issued orders (a=migrations)
  kChaosInject,         ///< fault injection fired (c=chaos point)
  kStormRound,          ///< storm driver round marker (a=round)
  kFtCheckpointBegin,   ///< checkpoint epoch started (arg=epoch)
  kFtCheckpointEnd,     ///< checkpoint epoch committed (size=bytes/KiB)
  kFtKill,              ///< PE declared dead (b=victim pe)
  kFtDetect,            ///< failure detector fired (b=victim pe)
  kFtRecoveryBegin,     ///< recovery coordinator started (b=victim pe)
  kFtRecoveryEnd,       ///< rollback complete, machine resumed (arg=epoch)
  kWireSendBegin,       ///< transport send entered (arg=flow, a=kind, b=dest pe)
  kWireSendEnd,         ///< transport send returned (size=wire bytes)
  kWireDeliver,         ///< comm thread enqueued an arrival (arg=flow, b=src pe)
  kWireAsmBegin,        ///< chunk reassembly started (arg=msg id, size=total)
  kWireAsmEnd,          ///< last chunk landed; message deliverable
  kWireRts,             ///< rendezvous RTS issued (arg=rdv id, b=dest pe)
  kWireCts,             ///< rendezvous CTS sent back (arg=rdv id)
  kWireRdvDone,         ///< rendezvous payload written span-direct (size=bytes)
  kFtProcDown,          ///< whole process declared dead (a=proc, b=first pe)
  kFtProcRespawn,       ///< dead process respawned (a=proc, arg=generation)
  kCount,
};
constexpr int kEvCount = static_cast<int>(Ev::kCount);

const char* to_string(Ev ev);

/// Fixed-size binary event record (32 bytes). Timestamps are raw rdtsc
/// ticks; the session calibrates them against steady_clock once, at export.
struct Record {
  std::uint64_t tsc = 0;
  std::uint64_t arg = 0;   ///< flow id / thread id / seed — event-specific
  std::uint32_t a = 0;     ///< handler id / slot index / round
  std::uint32_t size = 0;  ///< payload bytes / slot count / scaled metric
  std::int16_t b = -1;     ///< peer PE (src on recv, dest on send; -1 none)
  std::uint8_t ev = 0;     ///< Ev
  std::uint8_t c = 0;      ///< technique / chaos point / small flag
};
static_assert(sizeof(Record) == 32, "records are fixed-size binary");

class Ring {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit Ring(int pe, std::size_t capacity) : pe_(pe) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  int pe() const { return pe_; }

  /// Single-writer append; overwrites the oldest record when full. The
  /// head index is monotonic and masked on use, so the hot path is one
  /// count bump, one 32-byte store, and one increment — drop-oldest and
  /// the dropped counter fall out of `head_ - capacity` on the read side.
  /// (Non-temporal stores were tried here and measured ~10x WORSE on this
  /// host: emits are temporally sparse, so the write-combining buffers
  /// flush as partial lines instead of amortizing — plain cached stores
  /// plus the hardware prefetcher win for a sequential ring.)
  void write(const Record& r) {
    ++counts_[r.ev];
    buf_[head_ & mask_] = r;
    ++head_;
  }

  /// Retained records, oldest first. Reader-side only (post-quiescence).
  std::size_t size() const {
    return head_ < buf_.size() ? static_cast<std::size_t>(head_)
                               : buf_.size();
  }
  const Record& at(std::size_t i) const {
    return buf_[(head_ - size() + i) & mask_];
  }

  std::uint64_t dropped() const {
    return head_ > buf_.size() ? head_ - buf_.size() : 0;
  }
  /// Emitted-event count per type — counted at write time, so it is
  /// independent of how many records wrapped out of the ring.
  std::uint64_t count(Ev ev) const {
    return counts_[static_cast<std::uint8_t>(ev)];
  }
  std::uint64_t emitted() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts_) n += c;
    return n;
  }

  /// Per-PE flow-id sequence: unique machine-wide because the PE index is
  /// folded into the high bits (PE 0 ⇒ prefix 1, never 0 = "no flow").
  std::uint64_t next_flow() {
    return (static_cast<std::uint64_t>(pe_ + 1) << 40) | ++flow_seq_;
  }

 private:
  std::vector<Record> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  ///< monotonic write index, masked on use
  std::uint64_t flow_seq_ = 0;
  std::uint64_t counts_[kEvCount] = {};
  int pe_ = -1;
};

}  // namespace mfc::trace
