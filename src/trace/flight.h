// Failure flight recorder: an always-on black box for postmortems.
//
// The full trace subsystem is opt-in (MFC_TRACE) and sized for throughput;
// when a kill storm goes wrong with tracing off, all that survives is a
// digest mismatch. The flight recorder keeps a small per-process
// drop-oldest ring of only the *rare, triage-critical* events — FT
// checkpoints/kills/detections/recoveries, chaos injections, storm rounds,
// LB decisions, migrate pack/unpack — recorded unconditionally (default
// on; MFC_FLIGHT=0 disables). On a failure trigger (PE kill, wedge
// watchdog, invariant-checker failure) the ring freezes first-trigger-wins
// and dumps ready-to-open Perfetto JSON per process.
//
// Cost model: the noted events fire at per-round/per-migration cadence
// (microseconds apart, not nanoseconds), so each note takes an uncontended
// mutex and reads the clock fresh — ~50 ns where the event itself costs
// micros. The per-message hot path never calls into here.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace mfc::trace::flight {

namespace detail {
// Recording gate. Unlike the trace gate (flipped only while no PE loop
// runs), the freeze in dump() lands mid-run on another thread, so the
// gate is a relaxed atomic: same single-load cost on x86, and the
// mutex-guarded re-check in note_slow() provides the ordering that
// matters (no note lands after the freeze captured the ring).
extern std::atomic<bool> g_fl_on;
void note_slow(Ev ev, std::uint64_t arg, std::uint32_t a, std::uint32_t size,
               std::int16_t b, std::uint8_t c);
}  // namespace detail

/// False only when MFC_FLIGHT=0 (the recorder defaults ON).
bool env_enabled();
/// MFC_FLIGHT_FILE base name, defaulting to "mfc_flight". Dumps land at
/// "<base>.json", or "<base>.proc<k>.json" in a multi-process machine.
std::string env_file();

/// (Re)arms the recorder: allocates the ring (`cap` 0 ⇒ MFC_FLIGHT_CAP,
/// else 1024 records), re-anchors calibration, clears the dumped latch,
/// applies the env gate. Machine::run calls this at boot; a second init
/// while armed resets the window (quiescent callers only).
void init(int npes, std::size_t cap = 0);
void set_proc(int proc, int nprocs);

/// Binds the calling kernel thread's notes to PE `pe`'s track (machine PE
/// loops call this; unbound notes land on the "other" track).
void bind_pe(int pe);
void unbind_pe();

inline bool on() { return detail::g_fl_on.load(std::memory_order_relaxed); }

/// Records one flight event. One predicted branch when disabled.
inline void note(Ev ev, std::uint64_t arg = 0, std::uint32_t a = 0,
                 std::uint32_t size = 0, std::int16_t b = -1,
                 std::uint8_t c = 0) {
  if (!detail::g_fl_on.load(std::memory_order_relaxed)) return;
  detail::note_slow(ev, arg, a, size, b, c);
}

/// Freezes recording and writes this process's dump (first trigger wins;
/// later calls are no-ops returning false). `reason` lands in otherData.
bool dump(const char* reason);
bool dumped();
/// Path the last successful dump wrote (empty before the first).
std::string last_dump_path();

}  // namespace mfc::trace::flight

namespace mfc::trace {

/// emit() into the live trace AND note() into the flight recorder — used
/// at the triage-critical sites so the black box stays populated even when
/// MFC_TRACE is off.
inline void emit_flight(Ev ev, std::uint64_t arg = 0, std::uint32_t a = 0,
                        std::uint32_t size = 0, std::int16_t b = -1,
                        std::uint8_t c = 0) {
  emit(ev, arg, a, size, b, c);
  flight::note(ev, arg, a, size, b, c);
}

}  // namespace mfc::trace
