#include "trace/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/export_internal.h"
#include "util/check.h"
#include "util/digest.h"

namespace mfc::trace {

namespace detail {
bool g_on = false;
}

namespace {

// 8Ki records (256 KB) per PE: ~4x the event volume of a full storm run,
// and small enough to stay cache-resident — a larger default measurably
// slows traced runs by streaming cold lines through the cache (the 64Ki
// default this replaced cost ~3% extra on the pingpong overhead bench).
// Deep triage windows opt in via MFC_TRACE_CAP.
constexpr std::size_t kDefaultRingCap = std::size_t{1} << 13;

struct Session {
  // rings[0..npes-1] are the PE rings; rings[npes] is the wire ring the
  // transport comm thread binds (bind_comm).
  std::vector<std::unique_ptr<Ring>> rings;
  int npes = 0;
  // rdtsc ↔ steady_clock calibration samples. ns_per_tick is computed once
  // at stop from (steady elapsed / tsc elapsed) — one long baseline beats
  // a short warm-up measurement. mono0_ns anchors this process's timeline
  // on the machine-shared monotonic clock so parts from forked processes
  // merge onto one axis.
  std::uint64_t tsc0 = 0;
  std::chrono::steady_clock::time_point wall0;
  std::int64_t mono0_ns = 0;
  // Multi-process placement (set_proc) + handshake skew (set_clock_skew).
  int proc = 0;
  int nprocs = 1;
  int local_first = 0;
  int local_npes = 0;  // 0 ⇒ set_proc never called: all rings are local
  std::int64_t skew_ns = 0;
  std::map<std::string, std::string> meta;
  std::mutex meta_mu;
};

Session* g_session = nullptr;
Summary g_last;

std::size_t env_ring_cap() {
  if (const char* env = std::getenv("MFC_TRACE_CAP");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 0);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return kDefaultRingCap;
}

Summary summarize(const Session& s) {
  Summary out;
  out.npes = s.npes;
  for (const auto& ring : s.rings) {
    for (int e = 0; e < kEvCount; ++e) {
      out.by_type[e] += ring->count(static_cast<Ev>(e));
    }
    out.retained += ring->size();
    out.dropped += ring->dropped();
  }
  for (int e = 0; e < kEvCount; ++e) out.emitted += out.by_type[e];
  return out;
}

void teardown(Session* s) {
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
  delete s;
  g_session = nullptr;
}

// ---- Chrome trace-event JSON export --------------------------------------
//
// All numbers are printed with integer math (no %f) so the output is
// byte-identical under any LC_NUMERIC — a trace written under de_DE must
// not contain `1,5`.

/// Appends `s` JSON-escaped (quotes, backslashes, control chars).
void json_escape(std::string& out, const std::string& s) {
  for (char ch : s) {
    unsigned char u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  /// Process (track group) for subsequent events. Single-process exports
  /// stay at pid 0; the multi-process merge sets the originating proc id
  /// so each process renders as its own Perfetto track group.
  void set_pid(int pid) { pid_ = pid; }

  /// Starts one trace event object; follow with field() calls + done().
  void event(const char* name, char phase, int tid, std::uint64_t ts_ns) {
    std::string esc;
    json_escape(esc, name);
    std::fprintf(f_, "%s{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,"
                 "\"ts\":%llu.%03llu",
                 first_ ? "" : ",\n", esc.c_str(), phase, pid_, tid,
                 static_cast<unsigned long long>(ts_ns / 1000),
                 static_cast<unsigned long long>(ts_ns % 1000));
    first_ = false;
  }
  void raw(const char* key, const char* value) {
    std::fprintf(f_, ",\"%s\":%s", key, value);
  }
  void num(const char* key, long long value) {
    std::fprintf(f_, ",\"%s\":%lld", key, value);
  }
  /// Flow-event id as a hex string: ids use high bits for namespacing and
  /// would lose precision as JSON doubles.
  void id(std::uint64_t v) {
    std::fprintf(f_, ",\"id\":\"0x%llx\"",
                 static_cast<unsigned long long>(v));
  }
  void args_begin() { std::fprintf(f_, ",\"args\":{"); }
  void arg_num(const char* key, long long value, bool first = false) {
    std::fprintf(f_, "%s\"%s\":%lld", first ? "" : ",", key, value);
  }
  void args_end() { std::fprintf(f_, "}"); }
  void done() { std::fprintf(f_, "}"); }

 private:
  std::FILE* f_;
  int pid_ = 0;
  bool first_ = true;
};

const char* technique_name(std::uint8_t c) {
  switch (c) {
    case 1: return "stackcopy";
    case 2: return "iso";
    case 3: return "memalias";
  }
  return "?";
}

const char* wire_kind_name(std::uint32_t k) {
  switch (k) {
    case 0: return "eager";
    case 1: return "chunk";
    case 2: return "rdv";
  }
  return "?";
}

/// Rendezvous flow ids share the message-flow id space but are namespaced
/// into their own high-bit prefix so an RTS→CTS→writev chain never
/// collides with the payload message's own send→deliver→dispatch chain.
constexpr std::uint64_t kRdvFlowBit = std::uint64_t{1} << 62;

/// Per-track export pass over one ring's retained records. Records are
/// already chronological (single writer, monotonic per-core rdtsc); a
/// per-track clamp keeps B/E sane if the kernel migrated the PE thread
/// across cores with unsynced TSCs. `base_ns` offsets the whole track —
/// the multi-process merge aligns each part's monotonic anchor there.
void export_records(JsonWriter& w, const Record* recs, std::size_t n,
                    int tid, std::uint64_t tsc0, double ns_per_tick,
                    std::uint64_t base_ns) {
  std::vector<std::string> open;  // names of open B slices, innermost last
  std::uint64_t last_ns = base_ns;
  char name[64];

  auto to_ns = [&](std::uint64_t tsc) {
    double ns = tsc >= tsc0
                    ? static_cast<double>(tsc - tsc0) * ns_per_tick
                    : 0.0;
    auto v = base_ns + static_cast<std::uint64_t>(ns < 0.0 ? 0.0 : ns);
    if (v < last_ns) v = last_ns;  // keep each track monotonic
    last_ns = v;
    return v;
  };

  auto begin = [&](const char* n, std::uint64_t ns) {
    w.event(n, 'B', tid, ns);
    open.emplace_back(n);
  };
  // Drop-oldest truncation can orphan an E whose B wrapped out of the ring;
  // close only when the innermost open slice matches, else skip the E.
  auto end = [&](const char* n, std::uint64_t ns) -> bool {
    if (open.empty() || open.back() != n) return false;
    open.pop_back();
    w.event(n, 'E', tid, ns);
    return true;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Record& r = recs[i];
    const std::uint64_t ns = to_ns(r.tsc);
    switch (static_cast<Ev>(r.ev)) {
      case Ev::kHandlerBegin:
        std::snprintf(name, sizeof(name), "handler#%u", r.a);
        begin(name, ns);
        w.args_begin();
        w.arg_num("handler", r.a, true);
        w.arg_num("bytes", r.size);
        if (r.b >= 0) w.arg_num("src", r.b);
        w.args_end();
        w.done();
        if (r.arg != 0) {  // cross-PE message: finish the flow arrow here
          w.event("msg", 'f', tid, ns);
          w.raw("cat", "\"flow\"");
          w.raw("bp", "\"e\"");
          w.id(r.arg);
          w.done();
        }
        break;
      case Ev::kHandlerEnd:
        std::snprintf(name, sizeof(name), "handler#%u", r.a);
        if (end(name, ns)) w.done();
        break;
      case Ev::kMsgSend:
        w.event("send", 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("dest", r.b, true);
        w.arg_num("bytes", r.size);
        w.arg_num("handler", r.a);
        w.args_end();
        w.done();
        if (r.arg != 0) {  // flow start binds to the enclosing slice
          w.event("msg", 's', tid, ns);
          w.raw("cat", "\"flow\"");
          w.id(r.arg);
          w.done();
        }
        break;
      case Ev::kUltSwitchIn:
        std::snprintf(name, sizeof(name), "ult#%llu",
                      static_cast<unsigned long long>(r.arg));
        begin(name, ns);
        w.done();
        break;
      case Ev::kUltSwitchOut:
        std::snprintf(name, sizeof(name), "ult#%llu",
                      static_cast<unsigned long long>(r.arg));
        if (end(name, ns)) w.done();
        break;
      case Ev::kMigratePackBegin:
      case Ev::kMigrateUnpackBegin: {
        const bool pack = static_cast<Ev>(r.ev) == Ev::kMigratePackBegin;
        std::snprintf(name, sizeof(name), "%s:%s", pack ? "pack" : "unpack",
                      technique_name(r.c));
        begin(name, ns);
        w.args_begin();
        w.arg_num("thread", static_cast<long long>(r.arg), true);
        w.args_end();
        w.done();
        if (!pack) {  // migration flow arrow lands on the unpack slice
          w.event("migrate", 'f', tid, ns);
          w.raw("cat", "\"migrate\"");
          w.raw("bp", "\"e\"");
          w.id((std::uint64_t{1} << 63) | r.arg);
          w.done();
        }
        break;
      }
      case Ev::kMigratePackEnd:
      case Ev::kMigrateUnpackEnd: {
        const bool pack = static_cast<Ev>(r.ev) == Ev::kMigratePackEnd;
        std::snprintf(name, sizeof(name), "%s:%s", pack ? "pack" : "unpack",
                      technique_name(r.c));
        if (end(name, ns)) {
          w.args_begin();
          w.arg_num("bytes", r.size, true);
          w.args_end();
          w.done();
        }
        if (pack) {  // migration flow departs from the pack slice
          w.event("migrate", 's', tid, ns);
          w.raw("cat", "\"migrate\"");
          w.id((std::uint64_t{1} << 63) | r.arg);
          w.done();
        }
        break;
      }
      case Ev::kElemDepart:
      case Ev::kElemArrive: {
        const bool depart = static_cast<Ev>(r.ev) == Ev::kElemDepart;
        w.event(depart ? "elem-depart" : "elem-arrive", 'X', tid, ns);
        w.raw("dur", "0.500");  // sliver wide enough to anchor a flow arrow
        w.args_begin();
        w.arg_num("index", r.a, true);
        if (r.b >= 0) w.arg_num("peer", r.b);
        w.args_end();
        w.done();
        if (r.arg != 0) {
          w.event("elem", depart ? 's' : 'f', tid, ns);
          w.raw("cat", "\"elem\"");
          if (!depart) w.raw("bp", "\"e\"");
          w.id(r.arg);
          w.done();
        }
        break;
      }
      case Ev::kUltCreate:
      case Ev::kUltSuspend:
      case Ev::kUltResume: {
        const char* what =
            static_cast<Ev>(r.ev) == Ev::kUltCreate
                ? "ult-create"
                : static_cast<Ev>(r.ev) == Ev::kUltSuspend ? "ult-suspend"
                                                           : "ult-resume";
        w.event(what, 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("thread", static_cast<long long>(r.arg), true);
        w.args_end();
        w.done();
        break;
      }
      case Ev::kIsoSlotAcquire:
      case Ev::kIsoSlotRelease:
        w.event(static_cast<Ev>(r.ev) == Ev::kIsoSlotAcquire ? "iso-acquire"
                                                             : "iso-release",
                'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("slot", r.a, true);
        w.arg_num("count", r.size);
        w.args_end();
        w.done();
        break;
      case Ev::kLbDecision:
        w.event("lb-decision", 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("migrations", r.a, true);
        w.args_end();
        w.done();
        break;
      case Ev::kChaosInject:
        std::snprintf(name, sizeof(name), "chaos#%u", r.c);
        w.event(name, 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("point", r.c, true);
        w.arg_num("seed", static_cast<long long>(r.arg));
        w.args_end();
        w.done();
        break;
      case Ev::kStormRound:
        std::snprintf(name, sizeof(name), "round#%u", r.a);
        w.event(name, 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.done();
        break;
      case Ev::kFtCheckpointBegin:
        begin("ft-checkpoint", ns);
        w.args_begin();
        w.arg_num("epoch", static_cast<long long>(r.arg), true);
        w.args_end();
        w.done();
        break;
      case Ev::kFtCheckpointEnd:
        if (end("ft-checkpoint", ns)) {
          w.args_begin();
          w.arg_num("bytes", r.size, true);
          w.args_end();
          w.done();
        }
        break;
      case Ev::kFtRecoveryBegin:
        begin("ft-recovery", ns);
        w.args_begin();
        if (r.b >= 0) w.arg_num("victim", r.b, true);
        w.args_end();
        w.done();
        break;
      case Ev::kFtRecoveryEnd:
        if (end("ft-recovery", ns)) {
          w.args_begin();
          w.arg_num("epoch", static_cast<long long>(r.arg), true);
          w.args_end();
          w.done();
        }
        break;
      case Ev::kFtKill:
      case Ev::kFtDetect:
        w.event(static_cast<Ev>(r.ev) == Ev::kFtKill ? "ft-kill"
                                                     : "ft-detect",
                'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        if (r.b >= 0) w.arg_num("victim", r.b, true);
        w.args_end();
        w.done();
        break;
      case Ev::kFtProcDown:
      case Ev::kFtProcRespawn:
        w.event(static_cast<Ev>(r.ev) == Ev::kFtProcDown ? "ft-proc-down"
                                                         : "ft-proc-respawn",
                'i', tid, ns);
        w.raw("s", "\"g\"");
        w.args_begin();
        w.arg_num("proc", r.a, true);
        if (static_cast<Ev>(r.ev) == Ev::kFtProcRespawn) {
          w.arg_num("generation", static_cast<long long>(r.arg));
        } else if (r.b >= 0) {
          w.arg_num("first_pe", r.b);
        }
        w.args_end();
        w.done();
        break;
      case Ev::kWireSendBegin:
        std::snprintf(name, sizeof(name), "wire-send:%s",
                      wire_kind_name(r.a));
        begin(name, ns);
        w.args_begin();
        w.arg_num("dest", r.b, true);
        w.args_end();
        w.done();
        if (r.arg != 0) {  // the message's flow passes through this span
          w.event("msg", 't', tid, ns);
          w.raw("cat", "\"flow\"");
          w.id(r.arg);
          w.done();
        }
        break;
      case Ev::kWireSendEnd:
        std::snprintf(name, sizeof(name), "wire-send:%s",
                      wire_kind_name(r.a));
        if (end(name, ns)) {
          w.args_begin();
          w.arg_num("bytes", r.size, true);
          w.args_end();
          w.done();
        }
        break;
      case Ev::kWireDeliver:
        w.event("wire-deliver", 'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("bytes", r.size, true);
        if (r.b >= 0) w.arg_num("src", r.b);
        w.args_end();
        w.done();
        if (r.arg != 0) {  // flow step: send → (wire deliver) → dispatch
          w.event("msg", 't', tid, ns);
          w.raw("cat", "\"flow\"");
          w.id(r.arg);
          w.done();
        }
        break;
      case Ev::kWireAsmBegin:
        begin("wire-chunk-asm", ns);
        w.args_begin();
        w.arg_num("msg", static_cast<long long>(r.arg), true);
        w.arg_num("total", r.size);
        w.args_end();
        w.done();
        break;
      case Ev::kWireAsmEnd:
        if (end("wire-chunk-asm", ns)) {
          w.args_begin();
          w.arg_num("bytes", r.size, true);
          w.args_end();
          w.done();
        }
        break;
      case Ev::kWireRts:
      case Ev::kWireCts:
      case Ev::kWireRdvDone: {
        const Ev ev = static_cast<Ev>(r.ev);
        w.event(ev == Ev::kWireRts ? "wire-rts"
                : ev == Ev::kWireCts ? "wire-cts" : "wire-rdv-done",
                'i', tid, ns);
        w.raw("s", "\"t\"");
        w.args_begin();
        w.arg_num("rdv", static_cast<long long>(r.arg), true);
        if (r.size != 0) w.arg_num("bytes", r.size);
        if (r.b >= 0) w.arg_num("peer", r.b);
        w.args_end();
        w.done();
        // RTS starts the rendezvous flow, CTS is its step on the peer's
        // wire track, the span-direct writev finishes it back home.
        w.event("rdv", ev == Ev::kWireRts ? 's'
                       : ev == Ev::kWireCts ? 't' : 'f',
                tid, ns);
        w.raw("cat", "\"rdv\"");
        if (ev == Ev::kWireRdvDone) w.raw("bp", "\"e\"");
        w.id(kRdvFlowBit | r.arg);
        w.done();
        break;
      }
      case Ev::kCount:
        break;
    }
  }
  // Close slices still open at session stop so Perfetto draws them bounded.
  while (!open.empty()) {
    w.event(open.back().c_str(), 'E', tid, last_ns);
    w.done();
    open.pop_back();
  }
}

/// Copies a ring's retained records into chronological order (the ring's
/// storage wraps; exports and parts want a flat oldest-first run).
std::vector<Record> flatten(const Ring& ring) {
  std::vector<Record> out;
  out.reserve(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) out.push_back(ring.at(i));
  return out;
}

/// Track (tid) label: PE rings are "PE n"; the extra comm-thread ring is
/// the process's "wire" track.
void write_thread_name(JsonWriter& w, std::FILE* f, int tid, int npes) {
  char tname[32];
  if (tid == npes) {
    std::snprintf(tname, sizeof(tname), "\"wire\"");
  } else {
    std::snprintf(tname, sizeof(tname), "\"PE %d\"", tid);
  }
  w.event("thread_name", 'M', tid, 0);
  w.args_begin();
  std::fprintf(f, "\"name\":%s", tname);
  w.args_end();
  w.done();
}

bool export_json(Session& s, const std::string& path, double ns_per_tick,
                 const Summary& summary) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\":[\n");
  JsonWriter w(f);
  w.event("process_name", 'M', 0, 0);
  w.args_begin();
  std::fprintf(f, "\"name\":\"mfc\"");
  w.args_end();
  w.done();
  for (const auto& ring : s.rings) {
    // The wire track only exists when a wire transport ran (loopback or
    // multi-process); keep single-process traces byte-stable otherwise.
    if (ring->pe() == s.npes && ring->size() == 0) continue;
    write_thread_name(w, f, ring->pe(), s.npes);
  }
  for (const auto& ring : s.rings) {
    const std::vector<Record> recs = flatten(*ring);
    export_records(w, recs.data(), recs.size(), ring->pe(), s.tsc0,
                   ns_per_tick, 0);
  }
  std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
  std::fprintf(f, "\"npes\":\"%d\",\"emitted\":\"%llu\",\"dropped\":\"%llu\"",
               summary.npes,
               static_cast<unsigned long long>(summary.emitted),
               static_cast<unsigned long long>(summary.dropped));
  {
    std::lock_guard<std::mutex> lock(s.meta_mu);
    for (const auto& [key, value] : s.meta) {
      std::string k, v;
      json_escape(k, key);
      json_escape(v, value);
      std::fprintf(f, ",\"%s\":\"%s\"", k.c_str(), v.c_str());
    }
  }
  std::fprintf(f, "}}\n");
  bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

// ---- binary trace parts (multi-process merge) ----------------------------
//
// A part is one process's share of a machine run: the raw 32-byte records
// of its local PE rings + wire ring, plus everything needed to place them
// on a machine-global time axis — the pre-fork rdtsc/monotonic anchor,
// this process's tick-rate calibration, and the handshake skew estimate.
// Same-host binary (written and read on one machine), so the structs are
// fwritten directly; magic+version reject foreign or stale files.

constexpr char kPartMagic[8] = {'M', 'F', 'C', 'P', 'A', 'R', 'T', '1'};

struct PartHead {
  char magic[8];
  std::uint32_t version;
  std::int32_t proc;
  std::int32_t nprocs;
  std::int32_t npes;
  std::int32_t nrings;
  std::int32_t meta_count;
  std::uint32_t pad0;
  std::uint32_t pad1;
  std::uint64_t tsc0;
  std::int64_t mono0_ns;
  std::int64_t skew_ns;
  double ns_per_tick;
  std::uint64_t emitted;
  std::uint64_t dropped;
};
static_assert(sizeof(PartHead) == 88, "part header is fixed-layout");

struct PartRingHead {
  std::int32_t pe;
  std::uint32_t nrecords;
};
static_assert(sizeof(PartRingHead) == 8, "ring header is fixed-layout");

bool write_part(Session& s, const std::string& path, double ns_per_tick,
                const Summary& summary) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  // A part carries only the rings this process wrote: its local PE range
  // (everything when set_proc was never called) plus a non-empty wire ring.
  const int lo = s.local_npes > 0 ? s.local_first : 0;
  const int hi = s.local_npes > 0 ? s.local_first + s.local_npes : s.npes;
  std::vector<const Ring*> rings;
  for (const auto& r : s.rings) {
    const int pe = r->pe();
    if (pe == s.npes) {
      if (r->size() > 0) rings.push_back(r.get());
    } else if (pe >= lo && pe < hi) {
      rings.push_back(r.get());
    }
  }
  PartHead h{};
  std::memcpy(h.magic, kPartMagic, sizeof(h.magic));
  h.version = 1;
  h.proc = s.proc;
  h.nprocs = s.nprocs;
  h.npes = s.npes;
  h.nrings = static_cast<std::int32_t>(rings.size());
  h.tsc0 = s.tsc0;
  h.mono0_ns = s.mono0_ns;
  h.skew_ns = s.skew_ns;
  h.ns_per_tick = ns_per_tick;
  h.emitted = summary.emitted;
  h.dropped = summary.dropped;
  std::map<std::string, std::string> meta;
  {
    std::lock_guard<std::mutex> lock(s.meta_mu);
    meta = s.meta;
  }
  h.meta_count = static_cast<std::int32_t>(meta.size());
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  for (const auto& [key, value] : meta) {
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(value.size());
    ok = ok && std::fwrite(&klen, sizeof(klen), 1, f) == 1;
    ok = ok && std::fwrite(&vlen, sizeof(vlen), 1, f) == 1;
    ok = ok && (klen == 0 || std::fwrite(key.data(), 1, klen, f) == klen);
    ok = ok && (vlen == 0 || std::fwrite(value.data(), 1, vlen, f) == vlen);
  }
  for (const Ring* r : rings) {
    const std::vector<Record> recs = flatten(*r);
    PartRingHead rh{r->pe(), static_cast<std::uint32_t>(recs.size())};
    ok = ok && std::fwrite(&rh, sizeof(rh), 1, f) == 1;
    ok = ok && (recs.empty() ||
                std::fwrite(recs.data(), sizeof(Record), recs.size(), f) ==
                    recs.size());
  }
  if (std::ferror(f) != 0) ok = false;
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

struct LoadedRing {
  int pe = 0;
  std::vector<Record> recs;
};

struct LoadedPart {
  PartHead head{};
  std::map<std::string, std::string> meta;
  std::vector<LoadedRing> rings;
};

bool read_part(const std::string& path, LoadedPart& out, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = path + ": " + what;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open");
  auto closer = std::unique_ptr<std::FILE, int (*)(std::FILE*)>(f, &std::fclose);
  if (std::fread(&out.head, sizeof(out.head), 1, f) != 1) {
    return fail("truncated header");
  }
  if (std::memcmp(out.head.magic, kPartMagic, sizeof(kPartMagic)) != 0) {
    return fail("not a trace part (bad magic)");
  }
  if (out.head.version != 1) return fail("unsupported part version");
  if (out.head.npes <= 0 || out.head.nrings < 0 || out.head.meta_count < 0) {
    return fail("corrupt header");
  }
  for (std::int32_t i = 0; i < out.head.meta_count; ++i) {
    std::uint32_t klen = 0, vlen = 0;
    if (std::fread(&klen, sizeof(klen), 1, f) != 1 ||
        std::fread(&vlen, sizeof(vlen), 1, f) != 1 ||
        klen > (1u << 20) || vlen > (1u << 20)) {
      return fail("corrupt meta");
    }
    std::string key(klen, '\0'), value(vlen, '\0');
    if ((klen != 0 && std::fread(key.data(), 1, klen, f) != klen) ||
        (vlen != 0 && std::fread(value.data(), 1, vlen, f) != vlen)) {
      return fail("truncated meta");
    }
    out.meta.emplace(std::move(key), std::move(value));
  }
  for (std::int32_t i = 0; i < out.head.nrings; ++i) {
    PartRingHead rh{};
    if (std::fread(&rh, sizeof(rh), 1, f) != 1) return fail("truncated ring");
    LoadedRing ring;
    ring.pe = rh.pe;
    ring.recs.resize(rh.nrecords);
    if (rh.nrecords != 0 &&
        std::fread(ring.recs.data(), sizeof(Record), rh.nrecords, f) !=
            rh.nrecords) {
      return fail("truncated records");
    }
    out.rings.push_back(std::move(ring));
  }
  return true;
}

/// Ends the recording phase: gate off, calibrate tick rate from the full
/// session baseline. Caller must be quiescent (no PE loop running).
double end_recording(Session& s) {
  detail::g_on = false;
  const std::uint64_t tsc1 = rdtsc();
  const auto wall1 = std::chrono::steady_clock::now();
  const double elapsed_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall1 - s.wall0)
                              .count());
  const std::uint64_t ticks = tsc1 > s.tsc0 ? tsc1 - s.tsc0 : 1;
  double ns_per_tick = elapsed_ns / static_cast<double>(ticks);
  if (!(ns_per_tick > 0.0)) ns_per_tick = 1.0;
  return ns_per_tick;
}

}  // namespace

const char* to_string(Ev ev) {
  switch (ev) {
    case Ev::kHandlerBegin: return "handler-begin";
    case Ev::kHandlerEnd: return "handler-end";
    case Ev::kMsgSend: return "msg-send";
    case Ev::kUltCreate: return "ult-create";
    case Ev::kUltSwitchIn: return "ult-switch-in";
    case Ev::kUltSwitchOut: return "ult-switch-out";
    case Ev::kUltSuspend: return "ult-suspend";
    case Ev::kUltResume: return "ult-resume";
    case Ev::kMigratePackBegin: return "migrate-pack-begin";
    case Ev::kMigratePackEnd: return "migrate-pack-end";
    case Ev::kMigrateUnpackBegin: return "migrate-unpack-begin";
    case Ev::kMigrateUnpackEnd: return "migrate-unpack-end";
    case Ev::kIsoSlotAcquire: return "iso-slot-acquire";
    case Ev::kIsoSlotRelease: return "iso-slot-release";
    case Ev::kElemDepart: return "elem-depart";
    case Ev::kElemArrive: return "elem-arrive";
    case Ev::kLbDecision: return "lb-decision";
    case Ev::kChaosInject: return "chaos-inject";
    case Ev::kStormRound: return "storm-round";
    case Ev::kFtCheckpointBegin: return "ft-checkpoint-begin";
    case Ev::kFtCheckpointEnd: return "ft-checkpoint-end";
    case Ev::kFtKill: return "ft-kill";
    case Ev::kFtDetect: return "ft-detect";
    case Ev::kFtRecoveryBegin: return "ft-recovery-begin";
    case Ev::kFtRecoveryEnd: return "ft-recovery-end";
    case Ev::kWireSendBegin: return "wire-send-begin";
    case Ev::kWireSendEnd: return "wire-send-end";
    case Ev::kWireDeliver: return "wire-deliver";
    case Ev::kWireAsmBegin: return "wire-asm-begin";
    case Ev::kWireAsmEnd: return "wire-asm-end";
    case Ev::kWireRts: return "wire-rts";
    case Ev::kWireCts: return "wire-cts";
    case Ev::kWireRdvDone: return "wire-rdv-done";
    case Ev::kFtProcDown: return "ft-proc-down";
    case Ev::kFtProcRespawn: return "ft-proc-respawn";
    case Ev::kCount: break;
  }
  return "?";
}

namespace detail {

std::atomic<std::uint64_t> g_epoch{0};
thread_local TlsState t_tls;

}  // namespace detail

bool env_enabled() {
  const char* env = std::getenv("MFC_TRACE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::string env_file() {
  const char* env = std::getenv("MFC_TRACE_FILE");
  return (env != nullptr && *env != '\0') ? env : "mfc_trace.json";
}

bool start(int npes, std::size_t ring_capacity) {
  MFC_CHECK(npes > 0);
  if (g_session != nullptr) return false;
  if (ring_capacity == 0) ring_capacity = env_ring_cap();
  auto* s = new Session;
  s->npes = npes;
  // npes PE rings + one wire ring (index npes) for the comm thread.
  s->rings.reserve(static_cast<std::size_t>(npes) + 1);
  for (int pe = 0; pe <= npes; ++pe) {
    s->rings.push_back(std::make_unique<Ring>(pe, ring_capacity));
  }
  s->tsc0 = rdtsc();
  s->wall0 = std::chrono::steady_clock::now();
  s->mono0_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    s->wall0.time_since_epoch())
                    .count();
  g_session = s;
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_on = true;
  return true;
}

bool active() { return g_session != nullptr; }

void bind_pe(int pe) {
  Session* s = g_session;
  detail::TlsState& tls = detail::t_tls;
  if (s == nullptr || pe < 0 || pe >= s->npes) {
    tls.ring = nullptr;
    return;
  }
  tls.ring = s->rings[static_cast<std::size_t>(pe)].get();
  tls.epoch = detail::g_epoch.load(std::memory_order_relaxed);
  tls.tsc_age = 1u << 30;  // first emit on this binding reads the clock
}

void unbind_pe() { detail::t_tls.ring = nullptr; }

void bind_comm() {
  Session* s = g_session;
  detail::TlsState& tls = detail::t_tls;
  if (s == nullptr) {
    tls.ring = nullptr;
    return;
  }
  tls.ring = s->rings.back().get();
  tls.epoch = detail::g_epoch.load(std::memory_order_relaxed);
  tls.tsc_age = 1u << 30;
}

void set_proc(int proc, int nprocs, int local_first, int local_npes) {
  Session* s = g_session;
  if (s == nullptr) return;
  s->proc = proc;
  s->nprocs = nprocs;
  s->local_first = local_first;
  s->local_npes = local_npes;
}

void set_clock_skew(std::int64_t skew_ns) {
  Session* s = g_session;
  if (s == nullptr) return;
  s->skew_ns = skew_ns;
}

void set_meta(const std::string& key, const std::string& value) {
  Session* s = g_session;
  if (s == nullptr) return;
  std::lock_guard<std::mutex> lock(s->meta_mu);
  s->meta[key] = value;
}

std::uint64_t Summary::digest(std::initializer_list<Ev> evs) const {
  std::uint64_t h = kFnvOffset;
  for (Ev ev : evs) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(ev));
    h = fnv1a_mix(h, by_type[static_cast<std::uint8_t>(ev)]);
  }
  return h;
}

Summary stop() {
  Session* s = g_session;
  if (s == nullptr) return Summary{};
  end_recording(*s);
  g_last = summarize(*s);
  teardown(s);
  return g_last;
}

Summary stop_and_export(const std::string& path, bool* ok) {
  Session* s = g_session;
  if (s == nullptr) {
    if (ok != nullptr) *ok = false;
    return Summary{};
  }
  const double ns_per_tick = end_recording(*s);
  g_last = summarize(*s);
  const bool wrote = export_json(*s, path, ns_per_tick, g_last);
  if (ok != nullptr) *ok = wrote;
  teardown(s);
  return g_last;
}

Summary stop_and_export_part(const std::string& path, bool* ok) {
  Session* s = g_session;
  if (s == nullptr) {
    if (ok != nullptr) *ok = false;
    return Summary{};
  }
  const double ns_per_tick = end_recording(*s);
  g_last = summarize(*s);
  const bool wrote = write_part(*s, path, ns_per_tick, g_last);
  if (ok != nullptr) *ok = wrote;
  teardown(s);
  return g_last;
}

bool merge_parts(const std::vector<std::string>& part_paths,
                 const std::string& out_path, std::string* err) {
  if (part_paths.empty()) {
    if (err != nullptr) *err = "no parts to merge";
    return false;
  }
  std::vector<LoadedPart> parts(part_paths.size());
  for (std::size_t i = 0; i < part_paths.size(); ++i) {
    if (!read_part(part_paths[i], parts[i], err)) return false;
  }
  std::sort(parts.begin(), parts.end(),
            [](const LoadedPart& a, const LoadedPart& b) {
              return a.head.proc < b.head.proc;
            });
  const int npes = parts.front().head.npes;
  for (const LoadedPart& p : parts) {
    if (p.head.npes != npes) {
      if (err != nullptr) *err = "parts disagree on npes (different runs?)";
      return false;
    }
  }
  // Common origin: the earliest skew-corrected monotonic anchor. Every
  // part's track then starts at (its anchor − skew − origin) ≥ 0.
  std::int64_t origin = parts.front().head.mono0_ns - parts.front().head.skew_ns;
  for (const LoadedPart& p : parts) {
    origin = std::min(origin, p.head.mono0_ns - p.head.skew_ns);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) *err = out_path + ": cannot open for write";
    return false;
  }
  std::fprintf(f, "{\"traceEvents\":[\n");
  JsonWriter w(f);
  std::uint64_t emitted = 0, dropped = 0;
  for (const LoadedPart& p : parts) {
    w.set_pid(p.head.proc);
    w.event("process_name", 'M', 0, 0);
    w.args_begin();
    if (p.head.nprocs > 1) {
      std::fprintf(f, "\"name\":\"mfc proc %d\"", p.head.proc);
    } else {
      std::fprintf(f, "\"name\":\"mfc\"");
    }
    w.args_end();
    w.done();
    w.event("process_sort_index", 'M', 0, 0);
    w.args_begin();
    std::fprintf(f, "\"sort_index\":%d", p.head.proc);
    w.args_end();
    w.done();
    for (const LoadedRing& r : p.rings) {
      write_thread_name(w, f, r.pe, npes);
    }
    emitted += p.head.emitted;
    dropped += p.head.dropped;
  }
  for (const LoadedPart& p : parts) {
    w.set_pid(p.head.proc);
    const std::uint64_t base_ns = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, p.head.mono0_ns - p.head.skew_ns - origin));
    for (const LoadedRing& r : p.rings) {
      export_records(w, r.recs.data(), r.recs.size(), r.pe, p.head.tsc0,
                     p.head.ns_per_tick, base_ns);
    }
  }
  std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
  std::fprintf(f,
               "\"npes\":\"%d\",\"nprocs\":\"%d\",\"parts\":\"%d\","
               "\"emitted\":\"%llu\",\"dropped\":\"%llu\"",
               npes, parts.front().head.nprocs,
               static_cast<int>(parts.size()),
               static_cast<unsigned long long>(emitted),
               static_cast<unsigned long long>(dropped));
  std::map<std::string, std::string> meta;
  for (const LoadedPart& p : parts) {
    for (const auto& [key, value] : p.meta) meta.emplace(key, value);
  }
  for (const auto& [key, value] : meta) {
    std::string k, v;
    json_escape(k, key);
    json_escape(v, value);
    std::fprintf(f, ",\"%s\":\"%s\"", k.c_str(), v.c_str());
  }
  std::fprintf(f, "}}\n");
  bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok && err != nullptr) *err = out_path + ": write failed";
  return ok;
}

const Summary& last_summary() { return g_last; }

namespace internal {

bool write_tracks_json(
    const std::string& path, int pid, const std::string& proc_name,
    const std::vector<Track>& tracks, std::uint64_t tsc0, double ns_per_tick,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\":[\n");
  JsonWriter w(f);
  w.set_pid(pid);
  w.event("process_name", 'M', 0, 0);
  w.args_begin();
  {
    std::string esc;
    json_escape(esc, proc_name);
    std::fprintf(f, "\"name\":\"%s\"", esc.c_str());
  }
  w.args_end();
  w.done();
  for (const Track& t : tracks) {
    std::string esc;
    json_escape(esc, t.name);
    w.event("thread_name", 'M', t.tid, 0);
    w.args_begin();
    std::fprintf(f, "\"name\":\"%s\"", esc.c_str());
    w.args_end();
    w.done();
  }
  for (const Track& t : tracks) {
    export_records(w, t.recs.data(), t.recs.size(), t.tid, tsc0,
                   ns_per_tick, 0);
  }
  std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
  bool first = true;
  for (const auto& [key, value] : meta) {
    std::string k, v;
    json_escape(k, key);
    json_escape(v, value);
    std::fprintf(f, "%s\"%s\":\"%s\"", first ? "" : ",", k.c_str(),
                 v.c_str());
    first = false;
  }
  std::fprintf(f, "}}\n");
  bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace internal

}  // namespace mfc::trace
